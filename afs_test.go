package afs

import (
	"math"
	"testing"

	"afs/internal/core"
)

func TestEngineBasics(t *testing.T) {
	e := New(5)
	if e.Distance() != 5 || e.Rounds() != 5 {
		t.Fatalf("engine dims: d=%d rounds=%d", e.Distance(), e.Rounds())
	}
	if e.NumDataQubits() != 41 || e.NumAncillas() != 20 {
		t.Fatalf("qubit counts: %d data, %d ancilla", e.NumDataQubits(), e.NumAncillas())
	}
	e2 := New(5, WithRounds(1))
	if e2.Rounds() != 1 {
		t.Fatal("WithRounds ignored")
	}
	e3 := New(5, WithWindow())
	if !e3.Graph().TimeBoundary {
		t.Fatal("WithWindow ignored")
	}
}

func TestSampleDecodeRoundTrip(t *testing.T) {
	e := New(7)
	sp := e.NewSampler(5e-3, 42)
	var sy Syndrome
	decoded := 0
	for i := 0; i < 500; i++ {
		sp.Sample(&sy)
		res := e.Decode(&sy)
		if !res.Checked {
			t.Fatal("sampler syndromes must carry ground truth")
		}
		if res.LatencyNS < 0 {
			t.Fatal("negative latency")
		}
		if sy.Weight() > 0 {
			decoded++
			if res.LatencyNS == 0 {
				t.Fatal("non-trivial syndrome decoded in zero time")
			}
		}
		if res.GrGenNS+res.DFSNS+res.CorrNS < res.LatencyNS-1e-9 {
			t.Fatal("stage breakdown inconsistent with exposed latency")
		}
	}
	if decoded == 0 {
		t.Fatal("no non-trivial syndromes at p=5e-3")
	}
}

func TestDecodeWithoutGroundTruth(t *testing.T) {
	e := New(5)
	res := e.Decode(&Syndrome{Defects: []int32{e.Graph().VertexID(1, 2, 2)}})
	if res.Checked {
		t.Fatal("hand-built syndrome should not be checked for logical error")
	}
	if len(res.Correction) == 0 {
		t.Fatal("no correction emitted")
	}
}

func TestHeuristicLogicalErrorRate(t *testing.T) {
	// Paper design point: 6e-10 at d=11, p=1e-3.
	got := HeuristicLogicalErrorRate(11, 1e-3)
	if got < 5e-10 || got > 7e-10 {
		t.Fatalf("p_log(11, 1e-3) = %g, paper reports 6e-10", got)
	}
	// Eq. 1 literal check at d=3: 0.15*(40p)^2.
	want := 0.15 * math.Pow(0.04, 2)
	if got := HeuristicLogicalErrorRate(3, 1e-3); math.Abs(got-want) > 1e-12 {
		t.Fatalf("p_log(3,1e-3) = %g, want %g", got, want)
	}
	// Monotone: deeper codes and cleaner qubits are better.
	if HeuristicLogicalErrorRate(13, 1e-3) >= HeuristicLogicalErrorRate(11, 1e-3) {
		t.Fatal("p_log not decreasing in d")
	}
	if HeuristicLogicalErrorRate(11, 1e-4) >= HeuristicLogicalErrorRate(11, 1e-3) {
		t.Fatal("p_log not decreasing in p")
	}
}

func TestMeasureLogicalErrorRateValidation(t *testing.T) {
	if _, err := MeasureLogicalErrorRate(AccuracyConfig{Distance: 1, P: 0.01, Trials: 10}); err == nil {
		t.Fatal("d=1 accepted")
	}
	if _, err := MeasureLogicalErrorRate(AccuracyConfig{Distance: 3, P: 1.5, Trials: 10}); err == nil {
		t.Fatal("p=1.5 accepted")
	}
	if _, err := MeasureLogicalErrorRate(AccuracyConfig{Distance: 3, P: 0.01, Trials: 10, Decoder: "nonsense"}); err == nil {
		t.Fatal("unknown decoder accepted")
	}
}

func TestMeasureLogicalErrorRateSmoke(t *testing.T) {
	r, err := MeasureLogicalErrorRate(AccuracyConfig{
		Distance: 3, P: 0.02, Trials: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Failures == 0 {
		t.Fatal("d=3 at p=0.02 must fail sometimes")
	}
	if r.CILow > r.LogicalErrorRate || r.CIHigh < r.LogicalErrorRate {
		t.Fatalf("CI does not bracket rate: %+v", r)
	}
	if r.MeanSyndromeWeight <= 0 {
		t.Fatal("no syndrome weight recorded")
	}
	mw, err := MeasureLogicalErrorRate(AccuracyConfig{
		Distance: 3, P: 0.02, Trials: 20000, Seed: 1, Decoder: MWPM, Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mw.Rounds != 1 {
		t.Fatal("rounds override ignored")
	}
}

func TestMeasureLatencyAndCDA(t *testing.T) {
	lat, err := MeasureLatency(LatencyConfig{Distance: 5, P: 1e-3, Trials: 20000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if lat.Summary.Mean <= 0 || len(lat.Samples()) != 20000 {
		t.Fatalf("latency result wrong: %+v", lat.Summary)
	}
	if got := lat.UtilGrGen + lat.UtilDFS + lat.UtilCorr; math.Abs(got-1) > 1e-9 {
		t.Fatalf("utilizations sum to %v", got)
	}
	if lat.WithinBudget < 0.999 {
		t.Fatalf("d=5 should almost always meet the budget: %v", lat.WithinBudget)
	}
	cda, err := SimulateCDA(&lat, CDAConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cda.Summary.Mean <= lat.Summary.Mean {
		t.Fatalf("CDA sharing cannot be faster than dedicated: %.2f vs %.2f",
			cda.Summary.Mean, lat.Summary.Mean)
	}
	if cda.MeanSlowdown <= 1 {
		t.Fatalf("slowdown = %v", cda.MeanSlowdown)
	}
	if len(cda.Samples()) == 0 {
		t.Fatal("no CDA samples")
	}
}

func TestMeasureLatencyValidation(t *testing.T) {
	if _, err := MeasureLatency(LatencyConfig{Distance: 1, P: 0.01, Trials: 10}); err == nil {
		t.Fatal("d=1 accepted")
	}
	if _, err := MeasureLatency(LatencyConfig{Distance: 3, P: 0.01}); err == nil {
		t.Fatal("zero trials accepted")
	}
	var empty LatencyResult
	if _, err := SimulateCDA(&empty, CDAConfig{}); err == nil {
		t.Fatal("CDA without breakdowns accepted")
	}
}

func TestMemoryFacade(t *testing.T) {
	q := MemoryPerQubit(11)
	if kb := q.TotalKB(); kb < 8.8 || kb > 9.1 {
		t.Fatalf("per-qubit memory %.2f KB, Table I says 8.95", kb)
	}
	sys := SystemMemory(1000, 11, false)
	if mb := sys.TotalMB(); mb < 9.8 || mb > 10.2 {
		t.Fatalf("system memory %.2f MB, Table II says 9.96", mb)
	}
	if r := CDAMemoryReduction(1000, 11); r < 3.2 || r > 3.6 {
		t.Fatalf("CDA reduction %.2f, paper says 3.5x", r)
	}
}

func TestBandwidthFacade(t *testing.T) {
	if got := RequiredBandwidthGbps(1000, 11, 400); got != 550 {
		t.Fatalf("bandwidth = %v, paper says 550 Gbps", got)
	}
	if got := SyndromeBitsPerRound(1000, 11); got != 220000 {
		t.Fatalf("bits/round = %v", got)
	}
	if got := CompressedBandwidthGbps(1000, 11, 400, 10); got != 55 {
		t.Fatalf("compressed = %v", got)
	}
}

func TestMeasureCompressionSmoke(t *testing.T) {
	r, err := MeasureCompression(CompressionConfig{Distance: 5, P: 1e-3, Trials: 500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Frames != 500*5 {
		t.Fatalf("frames = %d, want %d", r.Frames, 500*5)
	}
	if r.MeanRatio < 1 {
		t.Fatalf("hybrid ratio %v < 1", r.MeanRatio)
	}
	if r.MeanRatio+1e-9 < r.MeanRatioDZC || r.MeanRatio+1e-9 < r.MeanRatioSparse ||
		r.MeanRatio+1e-9 < r.MeanRatioGeo {
		t.Fatalf("hybrid worse than a component scheme: %+v", r)
	}
	if _, err := MeasureCompression(CompressionConfig{Distance: 1, P: 0.01, Trials: 5}); err == nil {
		t.Fatal("d=1 accepted")
	}
	if _, err := MeasureCompression(CompressionConfig{Distance: 3, P: 0.01}); err == nil {
		t.Fatal("zero trials accepted")
	}
}

func TestAblationOptionsPropagate(t *testing.T) {
	e := New(5, WithDecoderOptions(core.Options{DisableWeightedUnion: true}))
	sp := e.NewSampler(0.01, 9)
	var sy Syndrome
	for i := 0; i < 100; i++ {
		sp.Sample(&sy)
		e.Decode(&sy) // must not panic or corrupt state
	}
}

func TestDecoderKinds(t *testing.T) {
	// All four decoders measurable on a d=3 cycle; LUT/hierarchical agree
	// in order of magnitude with Union-Find.
	var rates []float64
	for _, kind := range []DecoderKind{UnionFind, MWPM, Hierarchical, LUT} {
		r, err := MeasureLogicalErrorRate(AccuracyConfig{
			Distance: 3, P: 0.02, Trials: 30000, Seed: 21, Decoder: kind})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if r.Failures == 0 {
			t.Fatalf("%s: no failures at d=3, p=0.02", kind)
		}
		rates = append(rates, r.LogicalErrorRate)
	}
	for i, r := range rates {
		if r < rates[0]/3 || r > rates[0]*3 {
			t.Fatalf("decoder %d rate %g wildly off union-find's %g", i, r, rates[0])
		}
	}
	// LUT must refuse codes it cannot table.
	if _, err := MeasureLogicalErrorRate(AccuracyConfig{
		Distance: 11, P: 1e-3, Trials: 10, Decoder: LUT}); err == nil {
		t.Fatal("LUT at d=11 accepted")
	}
}

func TestRepeated2DFacade(t *testing.T) {
	r, err := MeasureLogicalErrorRate(AccuracyConfig{
		Distance: 5, P: 0.01, Trials: 5000, Seed: 6, Repeated2D: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Failures == 0 {
		t.Fatal("repeated-2D at p=1e-2 should fail visibly")
	}
}
