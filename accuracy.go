package afs

import (
	"fmt"

	"afs/internal/core"
	"afs/internal/hierarchical"
	"afs/internal/lattice"
	"afs/internal/lut"
	"afs/internal/montecarlo"
	"afs/internal/mwpm"
)

// DecoderKind selects which decoding algorithm a Monte-Carlo accuracy run
// uses.
type DecoderKind string

const (
	// UnionFind is the AFS decoder (the paper's design).
	UnionFind DecoderKind = "union-find"
	// MWPM is the minimum-weight perfect-matching baseline.
	MWPM DecoderKind = "mwpm"
	// Hierarchical routes easy syndromes to a local first stage and hard
	// ones to the Union-Find decoder (paper §VII-B related work).
	Hierarchical DecoderKind = "hierarchical"
	// LUT is the lookup-table decoder; only constructible for small codes
	// (2-D up to d=5, full cycles at d=3).
	LUT DecoderKind = "lut"
)

// AccuracyConfig describes one logical-error-rate measurement.
type AccuracyConfig struct {
	// Distance is the code distance d (>= 2).
	Distance int
	// P is the physical error rate of the phenomenological model.
	P float64
	// Rounds is the number of detector layers decoded together; 0 selects
	// d (a full logical cycle) and 1 the perfect-measurement 2-D model.
	Rounds int
	// Trials is the number of Monte-Carlo trials (the paper uses 1e7).
	Trials uint64
	// Decoder selects the algorithm; empty selects UnionFind.
	Decoder DecoderKind
	// Seed makes the run reproducible.
	Seed uint64
	// Workers bounds parallelism; 0 uses all CPUs.
	Workers int
	// Repeated2D runs the Figure 3(b) protocol instead: a 2-D decoder
	// applied every round while measurements are noisy, demonstrating why
	// decoders must process d rounds at once.
	Repeated2D bool
	// DecoderOptions selects Union-Find ablation variants.
	DecoderOptions core.Options
	// StopRelCI, when positive, enables adaptive early stopping: the run
	// ends once the 95% CI half-width falls to StopRelCI times the
	// observed rate (see montecarlo.AccuracyConfig.StopRelCI). 0 runs the
	// full trial budget. Ignored by Repeated2D.
	StopRelCI float64
	// StopMinFailures gates early stopping until this many failures have
	// been seen; 0 selects the engine default.
	StopMinFailures uint64
}

// AccuracyResult is the outcome of MeasureLogicalErrorRate.
type AccuracyResult struct {
	Distance int
	Rounds   int
	P        float64
	// Trials is the number executed; with early stopping it can be below
	// TrialsRequested.
	Trials           uint64
	TrialsRequested  uint64
	EarlyStopped     bool
	Failures         uint64
	LogicalErrorRate float64
	// CILow and CIHigh bound the rate at 95% confidence (bootstrap).
	CILow, CIHigh float64
	// MeanSyndromeWeight is the mean number of non-trivial detection
	// events per trial.
	MeanSyndromeWeight float64
}

func (c AccuracyConfig) factory() (montecarlo.Factory, error) {
	switch c.Decoder {
	case "", UnionFind:
		// Accuracy runs consume only the correction, so skip the per-decode
		// execution profile the latency model would need.
		opts := c.DecoderOptions
		opts.LeanStats = true
		return func(g *lattice.Graph) montecarlo.Decoder {
			return core.NewDecoder(g, opts)
		}, nil
	case MWPM:
		return func(g *lattice.Graph) montecarlo.Decoder {
			return mwpm.NewDecoder(g)
		}, nil
	case Hierarchical:
		opts := c.DecoderOptions
		opts.LeanStats = true
		return func(g *lattice.Graph) montecarlo.Decoder {
			return hierarchical.New(g, core.NewDecoder(g, opts))
		}, nil
	case LUT:
		// Validate constructibility eagerly so the caller gets an error
		// instead of a worker panic.
		rounds := c.Rounds
		if rounds == 0 {
			rounds = c.Distance
		}
		var probe *lattice.Graph
		if rounds == 1 {
			probe = lattice.Cached2D(c.Distance)
		} else {
			probe = lattice.Cached3D(c.Distance, rounds)
		}
		if _, err := lut.New(probe); err != nil {
			return nil, err
		}
		return func(g *lattice.Graph) montecarlo.Decoder {
			d, err := lut.New(g)
			if err != nil {
				panic(err) // unreachable: validated above on the same shape
			}
			return d
		}, nil
	default:
		return nil, fmt.Errorf("afs: unknown decoder kind %q", c.Decoder)
	}
}

// MeasureLogicalErrorRate estimates the logical error rate per logical
// cycle by Monte-Carlo simulation under the phenomenological noise model.
func MeasureLogicalErrorRate(cfg AccuracyConfig) (AccuracyResult, error) {
	if cfg.Distance < 2 {
		return AccuracyResult{}, fmt.Errorf("afs: distance %d < 2", cfg.Distance)
	}
	if cfg.P < 0 || cfg.P >= 1 {
		return AccuracyResult{}, fmt.Errorf("afs: physical error rate %v outside [0,1)", cfg.P)
	}
	factory, err := cfg.factory()
	if err != nil {
		return AccuracyResult{}, err
	}
	mcCfg := montecarlo.AccuracyConfig{
		Distance:        cfg.Distance,
		Rounds:          cfg.Rounds,
		P:               cfg.P,
		Trials:          cfg.Trials,
		Workers:         cfg.Workers,
		Seed:            cfg.Seed,
		New:             factory,
		StopRelCI:       cfg.StopRelCI,
		StopMinFailures: cfg.StopMinFailures,
	}
	var r montecarlo.AccuracyResult
	if cfg.Repeated2D {
		r = montecarlo.RunRepeated2D(mcCfg)
	} else {
		r = montecarlo.RunAccuracy(mcCfg)
	}
	return AccuracyResult{
		Distance:           r.Distance,
		Rounds:             r.Rounds,
		P:                  r.P,
		Trials:             r.Trials,
		TrialsRequested:    r.TrialsRequested,
		EarlyStopped:       r.EarlyStopped,
		Failures:           r.Failures,
		LogicalErrorRate:   r.LogicalErrorRate,
		CILow:              r.CI.Lo,
		CIHigh:             r.CI.Hi,
		MeanSyndromeWeight: r.MeanDefects,
	}, nil
}
