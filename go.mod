module afs

go 1.22
