// Benchmarks regenerating each of the paper's evaluation artifacts (one
// bench per table and figure — see DESIGN.md §5 for the index) plus the
// ablation studies of DESIGN.md §6. Domain results are attached to the
// benchmark output via ReportMetric, so
//
//	go test -bench=. -benchmem
//
// both exercises every experiment pipeline and reports its headline number
// (logical error rate, latency, compression ratio, ...) alongside the
// usual ns/op.
package afs_test

import (
	"testing"

	"afs"
	"afs/internal/backlog"
	"afs/internal/cda"
	"afs/internal/compress"
	"afs/internal/core"
	"afs/internal/hierarchical"
	"afs/internal/lattice"
	"afs/internal/lut"
	"afs/internal/microarch"
	"afs/internal/mwpm"
	"afs/internal/noise"
	"afs/internal/storage"
	"afs/internal/stream"
	"afs/internal/syndrome"
)

// --- Figure 3: MWPM baseline accuracy -----------------------------------

func BenchmarkFig3_MWPMPerfectMeasurement(b *testing.B) {
	g := lattice.New2D(7)
	dec := mwpm.NewDecoder(g)
	s := noise.NewSampler(g, 5e-3, 3, 1)
	cut := g.NorthCutQubits()
	var trial noise.Trial
	var residual noise.Bitset
	failures := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(&trial)
		corr := dec.Decode(trial.Defects)
		residual.Resize(g.NumDataQubits())
		residual.Clear()
		for _, e := range corr {
			residual.Flip(int(g.Edges[e].Qubit))
		}
		residual.Xor(trial.NetData)
		if residual.Parity(cut) {
			failures++
		}
	}
	b.ReportMetric(float64(failures)/float64(b.N), "LER")
}

func BenchmarkFig3_MWPMNoisyMeasurement(b *testing.B) {
	// One iteration = one logical cycle of the repeated-2-D protocol.
	r, err := afs.MeasureLogicalErrorRate(afs.AccuracyConfig{
		Distance: 5, P: 5e-3, Trials: uint64(b.N),
		Decoder: afs.MWPM, Repeated2D: true, Seed: 5, Workers: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(r.LogicalErrorRate, "LER")
}

// --- Figure 8: AFS accuracy ----------------------------------------------

func BenchmarkFig8_AFSLogicalErrorRate(b *testing.B) {
	r, err := afs.MeasureLogicalErrorRate(afs.AccuracyConfig{
		Distance: 5, P: 5e-3, Trials: uint64(b.N), Seed: 8, Workers: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(r.LogicalErrorRate, "LER")
	b.ReportMetric(afs.HeuristicLogicalErrorRate(5, 5e-3), "LER-Eq1")
}

// --- §IV-E: dedicated-decoder latency ------------------------------------

func BenchmarkLatencyDedicated(b *testing.B) {
	g := lattice.New3DWindow(11, 11)
	dec := core.NewDecoder(g, core.Options{})
	s := noise.NewSampler(g, 1e-3, 4, 1)
	model := microarch.Model{}
	var trial noise.Trial
	var total float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(&trial)
		dec.Decode(trial.Defects)
		total += model.Latency(&dec.Stats).Exposed
	}
	b.ReportMetric(total/float64(b.N), "model-ns/decode")
}

// --- Table I / Table II / Figure 9: storage ------------------------------

func BenchmarkTable1_Storage(b *testing.B) {
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += storage.ForQubit(11).TotalBits() + storage.ForQubit(25).TotalBits()
	}
	b.ReportMetric(storage.KB(storage.ForQubit(11).TotalBits()), "KB@d11")
	_ = sink
}

func BenchmarkTable2_CDAStorage(b *testing.B) {
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += storage.ForSystem(1000, 11, true).TotalBits()
	}
	b.ReportMetric(storage.Reduction(1000, 11), "reduction-x")
	_ = sink
}

func BenchmarkFig9_MemoryScaling(b *testing.B) {
	ls := []int{1, 10, 100, 1000}
	for i := 0; i < b.N; i++ {
		storage.MemoryCurve(ls, 11, false)
	}
	b.ReportMetric(storage.MB(storage.ForSystem(1000, 11, false).TotalBits()), "MB@1000q")
}

// --- Figure 12: CDA contention -------------------------------------------

func BenchmarkFig12_CDALatency(b *testing.B) {
	pool := latencyPool(b, 11, 1e-3, 50000)
	b.ResetTimer()
	r := cda.Simulate(cda.Config{}, pool, b.N, 12)
	b.ReportMetric(r.Summary.Mean, "mean-ns")
	b.ReportMetric(r.Summary.P999, "p99.9-ns")
}

// --- §V-F: threshold-regime decoding -------------------------------------

func BenchmarkThreshold(b *testing.B) {
	g := lattice.New3D(7, 7)
	dec := core.NewDecoder(g, core.Options{})
	s := noise.NewSampler(g, afs.UFThreshold, 6, 1)
	var trial noise.Trial
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(&trial)
		dec.Decode(trial.Defects)
	}
}

// --- Figure 13: bandwidth -------------------------------------------------

func BenchmarkFig13_Bandwidth(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for d := 3; d <= 25; d += 2 {
			sink += afs.RequiredBandwidthGbps(1000, d, 400)
		}
	}
	b.ReportMetric(afs.RequiredBandwidthGbps(1000, 11, 400), "Gbps@d11")
	_ = sink
}

// --- Figure 15: compression -----------------------------------------------

func BenchmarkFig15_Compression(b *testing.B) {
	layout := syndrome.NewLayout(11)
	comp := compress.New(layout, compress.Config{})
	g := lattice.New3D(11, 11)
	s := noise.NewSampler(g, 1e-3, 15, 1)
	var trial noise.Trial
	var frames []noise.Bitset
	var combined noise.Bitset
	var rawBits, encBits int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(&trial)
		frames = syndrome.RoundFrames(g, trial.Defects, frames)
		for t := range frames {
			syndrome.Combine(layout, frames[t], frames[t], &combined)
			_, size := comp.Best(combined)
			rawBits += comp.FrameBits()
			encBits += size
		}
	}
	if encBits > 0 {
		b.ReportMetric(float64(rawBits)/float64(encBits), "aggregate-ratio")
	}
}

// --- Backlog model (latency constraint, §II-C) ----------------------------

func BenchmarkBacklogStability(b *testing.B) {
	pool := exposedPool(b, 11, 1e-3, 20000)
	b.ResetTimer()
	r := backlog.Simulate(backlog.Config{ArrivalNS: 400, Jobs: b.N, Seed: 9}, pool)
	b.ReportMetric(r.Utilization, "utilization")
}

// --- Ablations (DESIGN.md §6) ---------------------------------------------

func BenchmarkAblationUnionFind(b *testing.B) {
	variants := []struct {
		name string
		opts core.Options
	}{
		{"full", core.Options{}},
		{"no-weighted-union", core.Options{DisableWeightedUnion: true}},
		{"no-path-compression", core.Options{DisablePathCompression: true}},
		{"neither", core.Options{DisableWeightedUnion: true, DisablePathCompression: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			g := lattice.New3DWindow(11, 11)
			dec := core.NewDecoder(g, v.opts)
			s := noise.NewSampler(g, 1e-2, 7, 1)
			var trial noise.Trial
			var accesses uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Sample(&trial)
				dec.Decode(trial.Defects)
				accesses += dec.Stats.RootTableAccesses + dec.Stats.SizeTableAccesses
			}
			b.ReportMetric(float64(accesses)/float64(b.N), "table-accesses/decode")
		})
	}
}

func BenchmarkAblationPipeline(b *testing.B) {
	for _, v := range []struct {
		name  string
		model microarch.Model
	}{
		{"pipelined", microarch.Model{}},
		{"serial", microarch.Model{DisablePipeline: true}},
	} {
		b.Run(v.name, func(b *testing.B) {
			g := lattice.New3DWindow(11, 11)
			dec := core.NewDecoder(g, core.Options{})
			s := noise.NewSampler(g, 1e-3, 8, 1)
			var trial noise.Trial
			var total float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Sample(&trial)
				dec.Decode(trial.Defects)
				total += v.model.Latency(&dec.Stats).Exposed
			}
			b.ReportMetric(total/float64(b.N), "model-ns/decode")
		})
	}
}

func BenchmarkAblationGrowthCost(b *testing.B) {
	for _, v := range []struct {
		name  string
		model microarch.Model
	}{
		{"full-edge-iterations", microarch.Model{}},
		{"half-edge-sweeps", microarch.Model{HalfEdgeGrowthCost: true}},
	} {
		b.Run(v.name, func(b *testing.B) {
			g := lattice.New3DWindow(11, 11)
			dec := core.NewDecoder(g, core.Options{})
			s := noise.NewSampler(g, 1e-3, 8, 1)
			var trial noise.Trial
			var total float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Sample(&trial)
				dec.Decode(trial.Defects)
				total += v.model.Latency(&dec.Stats).Exposed
			}
			b.ReportMetric(total/float64(b.N), "model-ns/decode")
		})
	}
}

// BenchmarkAblationZDR uses the access-count latency model to quantify the
// Zero Data Register: with it, the DFS Engine reads only occupied STM
// rows; without it, every row is scanned every decode.
func BenchmarkAblationZDR(b *testing.B) {
	g := lattice.New3DWindow(11, 11)
	for _, v := range []struct {
		name    string
		disable bool
	}{
		{"with-zdr", false},
		{"without-zdr", true},
	} {
		b.Run(v.name, func(b *testing.B) {
			m := microarch.NewAccessModel(g)
			m.DisableZDR = v.disable
			dec := core.NewDecoder(g, core.Options{})
			s := noise.NewSampler(g, 1e-3, 31, 1)
			var trial noise.Trial
			var total float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Sample(&trial)
				dec.Decode(trial.Defects)
				total += m.Latency(&dec.Stats).Exposed
			}
			b.ReportMetric(total/float64(b.N), "access-ns/decode")
		})
	}
}

func BenchmarkAblationCDASharing(b *testing.B) {
	pool := latencyPool(b, 11, 1e-3, 50000)
	for _, v := range []struct {
		name string
		cfg  cda.Config
	}{
		{"paper-N2-dfs1-corr1", cda.Config{}},
		{"dfs2-corr2", cda.Config{DFSUnits: 2, CorrUnits: 2}},
		{"no-shared-tables", cda.Config{NoSharedTables: true}},
		{"N4-dfs2-corr2", cda.Config{QubitsPerBlock: 4, DFSUnits: 2, CorrUnits: 2}},
	} {
		b.Run(v.name, func(b *testing.B) {
			r := cda.Simulate(v.cfg, pool, b.N, 21)
			b.ReportMetric(r.Summary.Mean, "mean-ns")
			b.ReportMetric(r.EmpiricalTimeoutRate, "timeout-rate")
		})
	}
}

func BenchmarkAblationCompression(b *testing.B) {
	layout := syndrome.NewLayout(11)
	comp := compress.New(layout, compress.Config{})
	g := lattice.New3D(11, 11)
	schemes := []struct {
		name string
		s    compress.Scheme
	}{
		{"dzc", compress.DZC}, {"sparse", compress.Sparse}, {"geo", compress.Geo},
	}
	for _, sc := range schemes {
		b.Run(sc.name, func(b *testing.B) {
			s := noise.NewSampler(g, 1e-3, 16, 1)
			var trial noise.Trial
			var frames []noise.Bitset
			var combined noise.Bitset
			var rawBits, encBits int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Sample(&trial)
				frames = syndrome.RoundFrames(g, trial.Defects, frames)
				for t := range frames {
					syndrome.Combine(layout, frames[t], frames[t], &combined)
					rawBits += comp.FrameBits()
					encBits += comp.SizeScheme(sc.s, combined)
				}
			}
			if encBits > 0 {
				b.ReportMetric(float64(rawBits)/float64(encBits), "aggregate-ratio")
			}
		})
	}
}

// BenchmarkAblationDecoderAlgorithms compares decode speed of the three
// implemented decoders on the same 2-D workload.
func BenchmarkAblationDecoderAlgorithms(b *testing.B) {
	g := lattice.New2D(4)
	lutDec, err := lut.New(g)
	if err != nil {
		b.Fatal(err)
	}
	decoders := []struct {
		name string
		dec  interface{ Decode([]int32) []int32 }
	}{
		{"union-find", core.NewDecoder(g, core.Options{})},
		{"mwpm", mwpm.NewDecoder(g)},
		{"lut", lutDec},
	}
	for _, d := range decoders {
		b.Run(d.name, func(b *testing.B) {
			s := noise.NewSampler(g, 1e-2, 17, 1)
			var trial noise.Trial
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Sample(&trial)
				d.dec.Decode(trial.Defects)
			}
		})
	}
}

// BenchmarkHierarchicalOffload measures the two-level decoding scheme of
// §VII-B related work: the first stage absorbs most syndromes at the
// design point, so the mean decode cost drops well below pure Union-Find.
func BenchmarkHierarchicalOffload(b *testing.B) {
	g := lattice.New3DWindow(11, 11)
	for _, v := range []struct {
		name string
		dec  interface{ Decode([]int32) []int32 }
	}{
		{"pure-union-find", core.NewDecoder(g, core.Options{})},
		{"hierarchical", hierarchical.New(g, core.NewDecoder(g, core.Options{}))},
	} {
		b.Run(v.name, func(b *testing.B) {
			s := noise.NewSampler(g, 1e-3, 23, 1)
			var trial noise.Trial
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Sample(&trial)
				v.dec.Decode(trial.Defects)
			}
			if h, ok := v.dec.(*hierarchical.Decoder); ok {
				b.ReportMetric(h.Stats.OffloadFraction(), "offload-fraction")
			}
		})
	}
}

// BenchmarkStreamingDecoder drives the sliding-window decoder over a
// continuous round stream (one iteration = one pushed round, amortizing
// window decodes).
func BenchmarkStreamingDecoder(b *testing.B) {
	const d = 11
	g := lattice.New3D(d, d)
	s := noise.NewSampler(g, 1e-3, 29, 1)
	dec, err := stream.New(d, d, 0)
	if err != nil {
		b.Fatal(err)
	}
	var trial noise.Trial
	per := g.LayerVertices()
	layers := make([][]int32, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%d == 0 {
			s.Sample(&trial)
			for t := range layers {
				layers[t] = layers[t][:0]
			}
			for _, v := range trial.Defects {
				t := int(v) / per
				layers[t] = append(layers[t], int32(int(v)%per))
			}
		}
		dec.PushLayer(layers[i%d])
	}
	b.StopTimer()
	dec.Flush()
}

// --- helpers ---------------------------------------------------------------

func latencyPool(b *testing.B, d int, p float64, trials int) []microarch.Breakdown {
	b.Helper()
	r := microarch.CollectLatencies(microarch.CollectConfig{
		Distance: d, P: p, Trials: trials, Seed: 100, KeepBreakdowns: true,
	})
	return r.Breakdowns
}

func exposedPool(b *testing.B, d int, p float64, trials int) []float64 {
	b.Helper()
	r := microarch.CollectLatencies(microarch.CollectConfig{
		Distance: d, P: p, Trials: trials, Seed: 101,
	})
	return r.ExposedNS
}
