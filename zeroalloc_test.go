package afs_test

import (
	"testing"

	"afs"
)

// TestSteadyStateSampleDecodeZeroAllocs audits the Monte-Carlo inner loop:
// after warm-up, drawing a syndrome and decoding it at the paper's design
// point (d=11, a full logical cycle) must not touch the heap. This is the
// property that keeps 10^7-trial sweeps GC-free.
func TestSteadyStateSampleDecodeZeroAllocs(t *testing.T) {
	e := afs.New(11)
	sp := e.NewSampler(1e-3, 42)
	var sy afs.Syndrome
	// Warm-up: let every reused slice reach its steady-state capacity.
	for i := 0; i < 2000; i++ {
		sp.Sample(&sy)
		e.Decode(&sy)
	}
	avg := testing.AllocsPerRun(500, func() {
		sp.Sample(&sy)
		e.Decode(&sy)
	})
	if avg != 0 {
		t.Fatalf("steady-state Sample+Decode allocates %.2f objects/op, want 0", avg)
	}
}

// TestSteadyStateZeroAllocsNearThreshold repeats the audit at a high error
// rate, where syndromes are dense and every scratch structure is stressed.
func TestSteadyStateZeroAllocsNearThreshold(t *testing.T) {
	e := afs.New(7)
	sp := e.NewSampler(0.02, 7)
	var sy afs.Syndrome
	for i := 0; i < 2000; i++ {
		sp.Sample(&sy)
		e.Decode(&sy)
	}
	avg := testing.AllocsPerRun(500, func() {
		sp.Sample(&sy)
		e.Decode(&sy)
	})
	if avg != 0 {
		t.Fatalf("near-threshold Sample+Decode allocates %.2f objects/op, want 0", avg)
	}
}
