package afs_test

import (
	"testing"

	"afs"
)

// TestSteadyStateSampleDecodeZeroAllocs audits the Monte-Carlo inner loop:
// after warm-up, drawing a syndrome and decoding it at the paper's design
// point (d=11, a full logical cycle) must not touch the heap. This is the
// property that keeps 10^7-trial sweeps GC-free.
func TestSteadyStateSampleDecodeZeroAllocs(t *testing.T) {
	e := afs.New(11)
	sp := e.NewSampler(1e-3, 42)
	var sy afs.Syndrome
	// Warm-up: let every reused slice reach its steady-state capacity.
	for i := 0; i < 2000; i++ {
		sp.Sample(&sy)
		e.Decode(&sy)
	}
	avg := testing.AllocsPerRun(500, func() {
		sp.Sample(&sy)
		e.Decode(&sy)
	})
	if avg != 0 {
		t.Fatalf("steady-state Sample+Decode allocates %.2f objects/op, want 0", avg)
	}
}

// TestStreamSteadyStatePushZeroAllocs audits the streaming hot path: a
// sliding-window StreamDecoder with an OnCorrection sink, fed pregenerated
// rounds at the design point (d=11, p=1e-3), must push — including the
// window decodes and commits the pushes trigger — without touching the
// heap. This is the property that lets one process decode thousands of
// logical-qubit streams without GC pressure.
func TestStreamSteadyStatePushZeroAllocs(t *testing.T) {
	const d = 11
	dec, err := afs.NewStreamDecoder(d, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var count uint64
	dec.OnCorrection(func(afs.StreamCorrection) { count++ })

	// Pregenerate rounds so the sampler is out of the measured loop.
	sampler := afs.NewStreamRoundSampler(d, 1e-3, 9)
	rounds := make([][]int32, 4096)
	for i := range rounds {
		rounds[i] = append([]int32(nil), sampler.SampleRound()...)
	}

	for i := 0; i < 2000; i++ { // warm to steady state
		dec.PushRound(rounds[i%len(rounds)])
	}
	avg := testing.AllocsPerRun(500, func() {
		dec.PushRound(rounds[0])
	})
	if avg != 0 {
		t.Fatalf("steady-state PushRound allocates %.2f objects/op, want 0", avg)
	}
	if count == 0 {
		t.Fatal("warm-up committed nothing at p=1e-3")
	}
}

// TestLaneEngineSteadyStateZeroAllocs audits the cross-stream lane-gather
// path: a lane-batched StreamEngine at the design point, once its bit
// planes, gather lists, and emit buffers reach steady-state capacity, must
// run rounds — transpose, word-parallel classification, heavy-lane scatter,
// commits — without touching the heap.
func TestLaneEngineSteadyStateZeroAllocs(t *testing.T) {
	eng, err := afs.NewStreamEngine(afs.StreamEngineConfig{
		Streams: 128, Distance: 11, P: 1e-3, Seed: 13,
		Workers: 2, LaneBatch: true,
		OnCorrection: func(int, afs.StreamCorrection) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.RunRounds(2000); err != nil { // warm to steady state
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(500, func() {
		if err := eng.RunRounds(1); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state lane-batched RunRounds allocates %.2f objects/op, want 0", avg)
	}
}

// TestSteadyStateZeroAllocsNearThreshold repeats the audit at a high error
// rate, where syndromes are dense and every scratch structure is stressed.
func TestSteadyStateZeroAllocsNearThreshold(t *testing.T) {
	e := afs.New(7)
	sp := e.NewSampler(0.02, 7)
	var sy afs.Syndrome
	for i := 0; i < 2000; i++ {
		sp.Sample(&sy)
		e.Decode(&sy)
	}
	avg := testing.AllocsPerRun(500, func() {
		sp.Sample(&sy)
		e.Decode(&sy)
	})
	if avg != 0 {
		t.Fatalf("near-threshold Sample+Decode allocates %.2f objects/op, want 0", avg)
	}
}
