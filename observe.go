package afs

import "afs/internal/obs"

// Trace is a bounded, deterministic model-time event trace of the decode
// fleet: windows, timeout failures, degraded commits, shed/recover
// episodes. Install one via StreamEngineConfig.Trace or
// StreamRobustnessConfig.Trace and export it with WriteChrome — the output
// opens directly in Perfetto or chrome://tracing, and for a fixed seed it
// is byte-identical for any worker count. See internal/obs.
type Trace = obs.Trace

// NewTrace creates a trace buffer holding at most capacity events
// (capacity <= 0 selects a default). Emission past capacity drops events
// and counts the drops instead of allocating.
func NewTrace(capacity int) *Trace { return obs.NewTrace(capacity) }

// MetricsRegistry returns the process-wide metrics registry that the
// decode subsystems (stream decoders, the Monte-Carlo engine, the chaos
// layer) publish into. Serve it over HTTP with ServeMetrics, or render it
// directly with WritePrometheus / WriteVarsJSON.
func MetricsRegistry() *obs.Registry { return obs.Default() }

// ServeMetrics starts an HTTP endpoint on addr (host:port; an empty port
// picks a free one) exposing /metrics (Prometheus text), /debug/vars
// (JSON), and /debug/pprof. It returns once the listener is bound; close
// the returned server when done.
func ServeMetrics(addr string) (*obs.Server, error) {
	return obs.Serve(addr, obs.Default())
}
