package afs

import (
	"afs/internal/lattice"
	"afs/internal/stream"
)

// StreamCorrection is one finalized decoding decision of a streaming
// decoder, in global round coordinates.
type StreamCorrection = stream.Correction

// StreamDecoder decodes an unbounded stream of syndrome rounds with
// sliding decoding windows — the continuous-operation mode a deployed AFS
// decoder runs in. Rounds are fed with PushRound; corrections become final
// window by window and are retrieved with Committed or, at the end of the
// stream, Flush.
type StreamDecoder struct {
	inner *stream.Decoder
}

// NewStreamDecoder creates a streaming decoder for a distance-d logical
// qubit. window is the number of rounds decoded together (0 selects d,
// the paper's logical cycle) and commit how many are finalized per slide
// (0 selects window/2; must stay below window).
func NewStreamDecoder(distance, window, commit int) (*StreamDecoder, error) {
	inner, err := stream.New(distance, window, commit)
	if err != nil {
		return nil, err
	}
	return &StreamDecoder{inner: inner}, nil
}

// Distance returns the code distance.
func (s *StreamDecoder) Distance() int { return s.inner.Distance }

// Window returns the decoding-window length in rounds.
func (s *StreamDecoder) Window() int { return s.inner.Window }

// PushRound feeds one round's detection events (per-round ancilla indices
// in [0, d(d-1))). The slice is copied.
func (s *StreamDecoder) PushRound(events []int32) { s.inner.PushLayer(events) }

// Committed returns the corrections finalized so far.
func (s *StreamDecoder) Committed() []StreamCorrection { return s.inner.Committed() }

// Flush ends the stream (its final round is taken as perfectly measured),
// decodes the remaining buffered rounds, and returns every committed
// correction. The decoder is reusable afterwards.
func (s *StreamDecoder) Flush() []StreamCorrection { return s.inner.Flush() }

// IsDataCorrection reports whether c fixes a data qubit (as opposed to
// flagging a measurement error).
func IsDataCorrection(c StreamCorrection) bool { return c.Kind == lattice.Spatial }
