package afs

import (
	"afs/internal/lattice"
	"afs/internal/noise"
	"afs/internal/stream"
)

// StreamCorrection is one finalized decoding decision of a streaming
// decoder, in global round coordinates.
type StreamCorrection = stream.Correction

// StreamDecoder decodes an unbounded stream of syndrome rounds with
// sliding decoding windows — the continuous-operation mode a deployed AFS
// decoder runs in. Rounds are fed with PushRound; corrections become final
// window by window and are delivered through the OnCorrection sink, or —
// when no sink is installed — retained for retrieval with Committed and,
// at the end of the stream, Flush. For unbounded streams install a sink:
// the decoder then holds no per-correction state, runs in O(window)
// memory, and its steady-state push path performs no allocation.
type StreamDecoder struct {
	inner *stream.Decoder
}

// NewStreamDecoder creates a streaming decoder for a distance-d logical
// qubit. window is the number of rounds decoded together (0 selects d,
// the paper's logical cycle) and commit how many are finalized per slide
// (0 selects window/2; must stay below window).
func NewStreamDecoder(distance, window, commit int) (*StreamDecoder, error) {
	inner, err := stream.New(distance, window, commit)
	if err != nil {
		return nil, err
	}
	return &StreamDecoder{inner: inner}, nil
}

// Distance returns the code distance.
func (s *StreamDecoder) Distance() int { return s.inner.Distance }

// Window returns the decoding-window length in rounds.
func (s *StreamDecoder) Window() int { return s.inner.Window }

// PushRound feeds one round's detection events (per-round ancilla indices
// in [0, d(d-1))). The slice is copied. An out-of-range index is rejected
// with an error before any decoder state changes.
func (s *StreamDecoder) PushRound(events []int32) error { return s.inner.PushLayer(events) }

// PushRounds feeds a batch of rounds in one call: rounds[r] holds the
// r-th round's detection events, exactly as PushRound takes them. The
// whole batch is validated before any state changes, so a malformed round
// anywhere rejects the batch atomically; results are bit-identical to the
// equivalent PushRound sequence. Batching amortizes call overhead when
// syndrome data arrives in blocks (the shape the batched Monte-Carlo
// pipeline and hardware round buffers produce).
func (s *StreamDecoder) PushRounds(rounds [][]int32) error { return s.inner.PushLayers(rounds) }

// OnCorrection routes every committed correction to fn the moment it is
// finalized instead of retaining it (Committed then stays empty and Flush
// returns nil). Passing nil restores the retaining behavior.
func (s *StreamDecoder) OnCorrection(fn func(StreamCorrection)) { s.inner.SetSink(fn) }

// Committed returns the corrections finalized and retained so far. With an
// OnCorrection sink installed it is always empty.
func (s *StreamDecoder) Committed() []StreamCorrection { return s.inner.Committed() }

// Flush ends the stream (its final round is taken as perfectly measured),
// decodes the remaining buffered rounds, and returns every retained
// committed correction (nil when an OnCorrection sink is installed — the
// sink already received them). The decoder is reusable afterwards.
func (s *StreamDecoder) Flush() []StreamCorrection { return s.inner.Flush() }

// IsDataCorrection reports whether c fixes a data qubit (as opposed to
// flagging a measurement error).
func IsDataCorrection(c StreamCorrection) bool { return c.Kind == lattice.Spatial }

// StreamSnapshot is a serializable checkpoint of a streaming decoder's
// dynamic state. Restoring it into a decoder with the same configuration
// and feeding the same subsequent rounds reproduces bit-identical
// corrections — the property the fleet's crash recovery is built on.
type StreamSnapshot = stream.Snapshot

// Snapshot captures the decoder's dynamic state (buffered rounds, window
// position, backpressure state, runtime ledger). The snapshot is
// JSON-serializable and independent of the decoder it came from.
func (s *StreamDecoder) Snapshot() StreamSnapshot { return s.inner.Snapshot() }

// Restore replaces the decoder's dynamic state with a snapshot taken from a
// decoder of the same configuration. On error the decoder is unchanged.
func (s *StreamDecoder) Restore(snap StreamSnapshot) error { return s.inner.Restore(snap) }

// StreamRoundSampler draws phenomenological noise round by round for one
// logical qubit — the event shape StreamDecoder.PushRound consumes. Each
// round every data qubit errs with probability p (accumulating until
// corrected) and every measurement flips with probability p; the emitted
// detection events are the XOR of consecutive observed syndromes. The
// steady-state SampleRound path performs no allocation.
type StreamRoundSampler = noise.RoundSampler

// NewStreamRoundSampler creates a per-round noise sampler for a distance-d
// code at physical error rate p. Distinct streams must use distinct seeds.
func NewStreamRoundSampler(distance int, p float64, seed uint64) *StreamRoundSampler {
	return noise.NewRoundSampler(distance, p, seed, 1)
}
