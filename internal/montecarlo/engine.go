package montecarlo

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"afs/internal/stats"
)

// point is one (d, p) measurement point flowing through the worker pool.
type point struct {
	cfg   AccuracyConfig
	chunk uint64 // trials per chunk
	// nChunks fixes the chunk set (and with it the random streams): chunk
	// c covers trials [c*chunk, min((c+1)*chunk, Trials)).
	nChunks uint64

	next     atomic.Uint64 // next unclaimed chunk index
	trials   atomic.Uint64 // trials executed
	failures atomic.Uint64
	defects  atomic.Uint64 // total defects observed (for MeanDefects)
	stopped  atomic.Bool   // adaptive early-stopping latch

	// Triage-class tallies (see kernel.run), folded in once per chunk.
	w0, w1, w2, multi, full atomic.Uint64

	// Bit-plane lane tallies (see bpKernel.run), zero under the scalar
	// kernel.
	bpFast, bpGathered atomic.Uint64

	// Partial-residual peel tallies (see chunkTally).
	peeled, peelResolved, residual atomic.Uint64
	resHist                        [5]atomic.Uint64

	// Wall-clock bookkeeping: a CAS-latched start and a plain store per
	// chunk end. The mutex-and-time.Time pair this replaces put two lock
	// round-trips and a time.Now on every claim; now a claim after the
	// first costs one atomic load.
	started atomic.Bool
	startNS atomic.Int64
	endNS   atomic.Int64
}

func newPoint(cfg AccuracyConfig) *point {
	pt := &point{cfg: cfg, chunk: cfg.chunkTrials()}
	pt.nChunks = (cfg.Trials + pt.chunk - 1) / pt.chunk
	return pt
}

// claim returns the next chunk's trial range, or ok=false when the point
// is exhausted or stopped.
func (pt *point) claim() (lo, hi uint64, c uint64, ok bool) {
	if pt.stopped.Load() {
		return 0, 0, 0, false
	}
	c = pt.next.Add(1) - 1
	if c >= pt.nChunks {
		return 0, 0, 0, false
	}
	if !pt.started.Load() && pt.started.CompareAndSwap(false, true) {
		pt.startNS.Store(time.Now().UnixNano())
	}
	lo = c * pt.chunk
	hi = lo + pt.chunk
	if hi > pt.cfg.Trials {
		hi = pt.cfg.Trials
	}
	return lo, hi, c, true
}

// finish records a completed chunk's tallies and evaluates the adaptive
// stopping rule.
func (pt *point) finish(trials uint64, t chunkTally) {
	pt.failures.Add(t.failures)
	pt.defects.Add(t.defects)
	if t.w0 != 0 {
		pt.w0.Add(t.w0)
	}
	if t.w1 != 0 {
		pt.w1.Add(t.w1)
	}
	if t.w2 != 0 {
		pt.w2.Add(t.w2)
	}
	if t.multi != 0 {
		pt.multi.Add(t.multi)
	}
	if t.full != 0 {
		pt.full.Add(t.full)
	}
	if t.bpFast != 0 {
		pt.bpFast.Add(t.bpFast)
	}
	if t.bpGathered != 0 {
		pt.bpGathered.Add(t.bpGathered)
	}
	if t.peeled != 0 {
		pt.peeled.Add(t.peeled)
	}
	if t.peelResolved != 0 {
		pt.peelResolved.Add(t.peelResolved)
	}
	if t.residual != 0 {
		pt.residual.Add(t.residual)
		for i, n := range t.resHist {
			if n != 0 {
				pt.resHist[i].Add(n)
			}
		}
	}
	done := pt.trials.Add(trials)
	pt.endNS.Store(time.Now().UnixNano())
	if pt.cfg.StopRelCI <= 0 || pt.stopped.Load() {
		return
	}
	fails := pt.failures.Load()
	if fails < pt.cfg.stopMinFailures() {
		return
	}
	// The (fails, done) pair is a racy snapshot across workers; that is
	// fine for a stopping heuristic — the final reported rate uses the
	// exact post-join tallies.
	ci := stats.WilsonInterval(fails, done, 0.95)
	rate := float64(fails) / float64(done)
	if (ci.Hi-ci.Lo)/2 <= pt.cfg.StopRelCI*rate {
		// CAS so concurrent finishers latch (and count) the stop exactly once.
		if pt.stopped.CompareAndSwap(false, true) {
			engineObs.earlyStops.Inc(0)
		}
	}
}

// result assembles the point's AccuracyResult after the pool has drained.
func (pt *point) result() AccuracyResult {
	executed := pt.trials.Load()
	failures := pt.failures.Load()
	res := AccuracyResult{
		Distance:        pt.cfg.Distance,
		Rounds:          pt.cfg.rounds(),
		P:               pt.cfg.P,
		Trials:          executed,
		TrialsRequested: pt.cfg.Trials,
		EarlyStopped:    pt.stopped.Load(),
		Failures:        failures,
	}
	if executed > 0 {
		res.LogicalErrorRate = float64(failures) / float64(executed)
		res.MeanDefects = float64(pt.defects.Load()) / float64(executed)
	}
	res.TriageW0 = pt.w0.Load()
	res.TriageW1 = pt.w1.Load()
	res.TriageW2 = pt.w2.Load()
	res.TriageMulti = pt.multi.Load()
	res.FullDecodes = pt.full.Load()
	res.BitPlaneFastLanes = pt.bpFast.Load()
	res.BitPlaneGatheredLanes = pt.bpGathered.Load()
	res.PeeledComponents = pt.peeled.Load()
	res.PeelResolved = pt.peelResolved.Load()
	res.ResidualDecodes = pt.residual.Load()
	for i := range res.ResidualDefects {
		res.ResidualDefects[i] = pt.resHist[i].Load()
	}
	res.CI = rateInterval(failures, executed, pt.cfg.Seed)
	if pt.started.Load() {
		res.Elapsed = time.Duration(pt.endNS.Load() - pt.startNS.Load())
	}
	return res
}

// runPoints drives a persistent worker pool over all points: every worker
// scans the points in order and claims chunks off each point's shared
// counter until the point is drained, then moves on. Nothing ever joins on
// a single point, so a hard point in one worker never idles the rest —
// this is chunked work stealing with points overlapping at their tails.
func runPoints(points []*point, workers int) {
	if len(points) == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	engineObs.points.Add(0, uint64(len(points)))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			shard := nextMCShard()
			for _, pt := range points {
				g := pt.cfg.graph()
				var k runner
				for {
					lo, hi, c, ok := pt.claim()
					if !ok {
						break
					}
					// Lazy per-point state: a worker that never claims a
					// chunk of this point builds nothing for it. Each chunk
					// owns the deterministic random stream
					// PCG(Seed, chunkIndex), so results do not depend on
					// which worker runs it — nor on the batch width, since
					// the batch sampler consumes the stream exactly like
					// the scalar one (the bit-plane kernel keeps the same
					// per-chunk contract on its own documented stream).
					if k == nil {
						k = newRunner(pt.cfg, g)
					}
					k.reseed(pt.cfg.Seed, c)
					t := k.run(hi - lo)
					pt.finish(hi-lo, t)
					engineObs.flushChunk(shard, hi-lo, t)
				}
			}
		}()
	}
	wg.Wait()
}

// RunAccuracy measures the logical error rate of cfg's decoder: each trial
// samples a phenomenological error, decodes the detection events, applies
// the correction, and declares a logical failure when the residual error
// crosses the north boundary cut an odd number of times.
//
// Trials are distributed over chunked work stealing with per-chunk seeding,
// so for a fixed (Seed, Trials, ChunkTrials) the result is bit-identical
// for every worker count (early stopping, when enabled, relaxes this —
// see AccuracyConfig.StopRelCI).
func RunAccuracy(cfg AccuracyConfig) AccuracyResult {
	start := time.Now()
	pt := newPoint(cfg)
	runPoints([]*point{pt}, cfg.Workers)
	res := pt.result()
	res.Elapsed = time.Since(start)
	return res
}

// SweepAccuracy runs RunAccuracy over the cross product of distances and
// error rates, returning results in row-major order (distance outer, p
// inner) regardless of execution order. It is the engine behind the
// paper's Figures 3 and 8.
//
// All points share one persistent worker pool and execute concurrently:
// workers drain points front to back, overlapping at point boundaries, so
// total wall time tracks total work instead of the sum of per-point
// critical paths. Per-point results are identical to calling RunAccuracy
// point by point with the same configuration.
func SweepAccuracy(base AccuracyConfig, distances []int, ps []float64) []AccuracyResult {
	points := make([]*point, 0, len(distances)*len(ps))
	for _, d := range distances {
		for _, p := range ps {
			cfg := base
			cfg.Distance = d
			cfg.P = p
			points = append(points, newPoint(cfg))
		}
	}
	runPoints(points, base.Workers)
	out := make([]AccuracyResult, len(points))
	for i, pt := range points {
		out[i] = pt.result()
	}
	return out
}
