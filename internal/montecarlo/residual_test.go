// Tests for the partial-residual peel wiring: failure-bit identity with
// peeling ablated, tally coherence through the engine, and the DisablePeel
// switch. The peel's soundness certificate itself is tested in
// internal/core (residual_test.go); these tests pin the kernels' use of it.
package montecarlo

import (
	"testing"
)

// Peeling must not change any trial's logical outcome — it only moves work
// from the full decoder to closed forms. Both kernels, peel on vs off,
// trial for trial. (TestTriagedBitIdenticalToFullPath separately checks
// the peeled pipeline against the fully untriaged path.)
func TestPeelBitIdenticalToUnpeeled(t *testing.T) {
	const trials, chunk = 4096, 1024
	for _, tc := range []struct {
		d int
		p float64
	}{{5, 0.01}, {7, 0.005}, {9, 0.003}} {
		for _, bitPlane := range []bool{false, true} {
			cfg := AccuracyConfig{
				Distance: tc.d, P: tc.p, Seed: 42, New: sparseUFFactory, BitPlane: bitPlane,
			}
			run := runLogged
			if bitPlane {
				run = runLoggedBP
			}
			peeled := run(cfg, trials, chunk)
			cfg.DisablePeel = true
			plain := run(cfg, trials, chunk)
			if len(peeled) != trials || len(plain) != trials {
				t.Fatalf("d=%d p=%g bp=%v: logged %d/%d of %d trials",
					tc.d, tc.p, bitPlane, len(peeled), len(plain), trials)
			}
			for i := range peeled {
				if peeled[i] != plain[i] {
					t.Fatalf("d=%d p=%g bp=%v: trial %d: peeled=%v unpeeled=%v",
						tc.d, tc.p, bitPlane, i, peeled[i], plain[i])
				}
			}
		}
	}
}

// The peel tallies must cohere with the triage-class partition: resolved
// trials are a subset of TriageMulti, residual decodes a subset of
// FullDecodes, the defect histogram partitions the residual decodes, and
// every peel outcome accounts for at least one peeled component. Run at an
// operating point with a real heavy tail so the tallies are exercised, for
// both kernels.
func TestPeelTalliesCoherent(t *testing.T) {
	for _, bitPlane := range []bool{false, true} {
		res := RunAccuracy(AccuracyConfig{
			Distance: 7, P: 0.01, Trials: 40000, Seed: 5, Workers: 2, New: sparseUFFactory,
			BitPlane: bitPlane,
		})
		if sum := res.TriageW0 + res.TriageW1 + res.TriageW2 + res.TriageMulti + res.FullDecodes; sum != res.Trials {
			t.Fatalf("bp=%v: triage classes sum to %d, trials %d", bitPlane, sum, res.Trials)
		}
		if res.PeeledComponents == 0 || res.PeelResolved == 0 || res.ResidualDecodes == 0 {
			t.Fatalf("bp=%v: peel never fired at d=7 p=0.01: %+v", bitPlane, res)
		}
		if res.PeelResolved > res.TriageMulti {
			t.Fatalf("bp=%v: peel-resolved %d exceeds TriageMulti %d", bitPlane, res.PeelResolved, res.TriageMulti)
		}
		if res.ResidualDecodes > res.FullDecodes {
			t.Fatalf("bp=%v: residual decodes %d exceed FullDecodes %d", bitPlane, res.ResidualDecodes, res.FullDecodes)
		}
		var hist uint64
		for _, n := range res.ResidualDefects {
			hist += n
		}
		if hist != res.ResidualDecodes {
			t.Fatalf("bp=%v: residual histogram sums to %d, residual decodes %d", bitPlane, hist, res.ResidualDecodes)
		}
		// Every resolved trial and every residual decode peeled >= 1
		// component.
		if res.PeeledComponents < res.PeelResolved+res.ResidualDecodes {
			t.Fatalf("bp=%v: %d components cannot cover %d resolved + %d residual trials",
				bitPlane, res.PeeledComponents, res.PeelResolved, res.ResidualDecodes)
		}
		resolved, residual := res.PeelFractions()
		if resolved <= 0 || residual <= 0 || resolved+residual > 1 {
			t.Fatalf("bp=%v: implausible peel fractions resolved=%g residual=%g", bitPlane, resolved, residual)
		}
	}
}

// DisablePeel (and DisableTriage, which implies it) must zero every peel
// tally.
func TestDisablePeelZeroesTallies(t *testing.T) {
	base := AccuracyConfig{
		Distance: 7, P: 0.01, Trials: 20000, Seed: 5, Workers: 2, New: sparseUFFactory,
	}
	for _, cfg := range []AccuracyConfig{
		func() AccuracyConfig { c := base; c.DisablePeel = true; return c }(),
		func() AccuracyConfig { c := base; c.DisableTriage = true; return c }(),
		func() AccuracyConfig { c := base; c.BitPlane = true; c.DisablePeel = true; return c }(),
	} {
		res := RunAccuracy(cfg)
		if res.PeeledComponents != 0 || res.PeelResolved != 0 || res.ResidualDecodes != 0 {
			t.Fatalf("peel tallies nonzero with peeling disabled (%+v): %+v", cfg, res)
		}
		for i, n := range res.ResidualDefects {
			if n != 0 {
				t.Fatalf("residual histogram bucket %d nonzero with peeling disabled", i)
			}
		}
	}
}
