package montecarlo

import (
	"math/bits"

	"afs/internal/core"
	"afs/internal/lattice"
	"afs/internal/noise"
)

// bpKernel is the bit-plane shot kernel (AccuracyConfig.BitPlane): the
// fused pipeline rebuilt around 64-trial lane groups. One PlaneSampler
// walk fills a group's defect planes, core.LaneTriage classifies all 64
// lanes in one fused word-parallel pass, and lanes resolve in two tiers:
//
//   - fast-pathed, straight from plane algebra with no per-lane loop at
//     all: W0 (fail = sampled cut parity bit), W1 off the north-parity
//     plane, Matched lanes (perfect matching of adjacent pairs — parity
//     0, covering both the adjacent W2 pair and the heavy all-pairs
//     decomposition), Chain4 lanes (pairs plus exactly one 4-defect
//     path — the dominant conflicted shape, also parity 0), and
//     SinglesOK lanes (pairs plus independent boundary singles — parity
//     from the single-parity plane). Their failure bits and tallies are
//     popcounts over mask words.
//   - gathered: the remainder (conflicted adjacency, deep or crowded
//     singles, W2 punt band, W1 ties) has its per-lane defect lists
//     extracted from the classifier's compact defect list — vertex order
//     ascends, so lists arrive sorted — and runs the existing scalar
//     core.Triage / full-decoder path, with core.Triage.PeelResidual
//     stripping certified components off punted lanes before the decoder
//     sees them.
//
// The fast/gathered split is what the afs_mc_bitplane_* counters publish;
// fast + gathered == trials by construction.
//
// Triage-class tallies keep the scalar kernel's semantics (Matched,
// Chain4, and SinglesOK heavy lanes count as TriageMulti — they are
// precisely pair/chain/single decompositions resolved without a walk), so
// the partition invariant w0+w1+w2+multi+full == trials carries over
// unchanged.
type bpKernel struct {
	g       *lattice.Graph
	s       *noise.PlaneSampler
	dec     Decoder
	tri     *core.Triage
	lt      *core.LaneTriage
	cutEdge []bool
	triage  bool
	peel    bool // run PeelResidual on gathered lanes the scalar triage punts
	pg      noise.PlaneGroup

	// tile mirrors the scalar kernel's heavy-tail routing
	// (AccuracyConfig.TileParallel): gathered lanes that reach fullDecode
	// with at least tileMin defects use the tile-parallel engine.
	tile    *core.TileDecoder
	tileMin int

	// Per-lane gather scratch, reused across groups: defect lists for the
	// gathered lanes.
	lists [64][]int32

	// failLog, when non-nil, records every trial's failure bit in lane
	// order (== trial order) for the parity property tests.
	failLog []bool
}

func newBPKernel(cfg AccuracyConfig, g *lattice.Graph) *bpKernel {
	k := &bpKernel{
		g:      g,
		s:      noise.NewPlaneSampler(g, cfg.P, cfg.Seed, 0, g.NorthCutQubits()),
		dec:    cfg.New(g),
		tri:    core.NewTriage(g),
		lt:     core.NewLaneTriage(g),
		triage: !cfg.DisableTriage,
	}
	k.peel = k.triage && !cfg.DisablePeel
	k.cutEdge = k.s.CutEdges()
	if cfg.TileParallel {
		k.tile = core.NewTileDecoder(g, core.Options{LeanStats: true},
			core.TileConfig{TileSize: cfg.TileSize, Workers: cfg.tileWorkers()})
		k.tileMin = cfg.tileMinDefects()
	}
	return k
}

func (k *bpKernel) reseed(seed1, seed2 uint64) { k.s.Reseed(seed1, seed2) }

// fullDecode resolves one lane through the full decoder, folding the
// correction's cut-edge crossings into the sampled parity.
func (k *bpKernel) fullDecode(df []int32, par bool) bool {
	var corr []int32
	if k.tile != nil && len(df) >= k.tileMin {
		corr = k.tile.Decode(df)
	} else {
		corr = k.dec.Decode(df)
	}
	for _, e := range corr {
		if k.cutEdge[e] {
			par = !par
		}
	}
	return par
}

// run executes n trials in groups of up to 64 lanes and returns the
// chunk's tally. Allocation is zero once the gather lists reach their
// high-water mark (test-enforced). The group decomposition is a function
// of n alone, so for the engine's fixed chunking the trial streams are
// deterministic exactly as in the scalar kernel.
func (k *bpKernel) run(n uint64) chunkTally {
	var t chunkTally
	for n > 0 {
		kk := 64
		if n < 64 {
			kk = int(n)
		}
		k.s.SampleGroup(&k.pg, kk)
		mask := k.pg.LaneMask
		cut := k.pg.CutParity
		var failMask uint64

		if k.triage {
			cls := k.lt.Classify(k.pg.Defects, k.pg.Touched, mask)
			t.defects += uint64(cls.Defects)
			w1Fast := cls.W1 &^ cls.TieAny
			resolved := (cls.Matched | cls.Chain4) & (cls.W2 | cls.Heavy)
			singles := cls.SinglesOK & (cls.W2 | cls.Heavy)
			fast := cls.W0 | w1Fast | resolved | singles
			// Bulk resolution: the fast classes are disjoint (Chain4
			// requires a conflict, Matched forbids one, SinglesOK needs
			// an isolated defect, Chain4 forbids one), and each one's
			// failure bits are a mask expression — Matched and Chain4
			// lanes have parity 0, so the sampled cut bit alone decides.
			failMask = cls.W0&cut |
				w1Fast&(cut^cls.NorthParity) |
				resolved&cut |
				singles&(cut^cls.SingleParity)
			t.w0 += uint64(bits.OnesCount64(cls.W0))
			t.w1 += uint64(bits.OnesCount64(w1Fast))
			t.w2 += uint64(bits.OnesCount64((resolved | singles) & cls.W2))
			t.multi += uint64(bits.OnesCount64((resolved | singles) & cls.Heavy))
			t.bpFast += uint64(bits.OnesCount64(fast))

			if gather := mask &^ fast; gather != 0 {
				// Gather scan over the classifier's compact defect list
				// (ascending vertex order → sorted lists), then the scalar
				// triage / full-decode path per gathered lane. The scan is
				// core.LaneTriage.GatherLanes, shared with the streaming
				// lane batcher.
				k.lt.GatherLanes(gather, &k.lists)
				for gw := gather; gw != 0; {
					lane := bits.TrailingZeros64(gw)
					gw &^= 1 << uint(lane)
					bit := uint64(1) << uint(lane)
					par := cut&bit != 0
					df := k.lists[lane]
					var fail bool
					t.bpGathered++
					if k.peel && len(df) >= 3 {
						// Multi-defect lanes go straight to the partial-
						// residual decomposition: its certified-whole set
						// strictly contains classifyMulti's with identical
						// parity (test-enforced containment), so one
						// PeelResidual pass replaces the classify-then-peel
						// double scan, peels certified components off
						// whatever remains ambiguous, and hands the decoder
						// only the residual (see core.Triage.PeelResidual).
						pp, res, comps := k.tri.PeelResidual(df)
						t.peeled += uint64(comps)
						if len(res) == 0 {
							// Everything certified: a pure pair/single/duo
							// decomposition resolved without a decoder walk.
							t.multi++
							t.peelResolved++
							fail = par != pp
						} else {
							t.full++
							if len(res) < len(df) {
								t.residual++
								t.resHist[resBucket(len(res))]++
							}
							fail = k.fullDecode(res, par != pp)
						}
					} else if class, p, ok := k.tri.ClassifySyndrome(df); ok {
						switch class {
						case core.TriageW1:
							t.w1++
						case core.TriageW2:
							t.w2++
						default:
							t.multi++
						}
						fail = par != p
					} else {
						t.full++
						fail = k.fullDecode(df, par)
					}
					if fail {
						failMask |= bit
					}
				}
			}
		} else {
			// Untriaged mode: every lane is gathered and fully decoded —
			// the ablation baseline, and the reference side of the
			// triaged-vs-full bit-identity property tests.
			for lane := 0; lane < kk; lane++ {
				k.lists[lane] = k.lists[lane][:0]
			}
			for wi, tw := range k.pg.Touched {
				base := wi << 6
				for tw != 0 {
					b := bits.TrailingZeros64(tw)
					tw &^= 1 << uint(b)
					v := int32(base + b)
					for lw := k.pg.Defects[v] & mask; lw != 0; {
						lane := bits.TrailingZeros64(lw)
						lw &^= 1 << uint(lane)
						k.lists[lane] = append(k.lists[lane], v)
						t.defects++
					}
				}
			}
			for lane := 0; lane < kk; lane++ {
				bit := uint64(1) << uint(lane)
				t.full++
				t.bpGathered++
				if k.fullDecode(k.lists[lane], cut&bit != 0) {
					failMask |= bit
				}
			}
		}

		t.failures += uint64(bits.OnesCount64(failMask))
		if k.failLog != nil {
			for lane := 0; lane < kk; lane++ {
				k.failLog = append(k.failLog, failMask>>uint(lane)&1 != 0)
			}
		}
		n -= uint64(kk)
	}
	return t
}
