package montecarlo

import (
	"sync/atomic"

	"afs/internal/obs"
)

// mcObs publishes the Monte-Carlo engine's live progress: trials and
// failures as they are tallied, chunks as workers claim them, and the
// early-stop decisions the Wilson-CI rule makes. Everything increments on
// the same code paths that update the per-point atomics, so a scrape
// mid-sweep shows exactly how far the sweep has gotten.
type mcObs struct {
	points     *obs.Counter
	chunks     *obs.Counter
	trials     *obs.Counter
	failures   *obs.Counter
	earlyStops *obs.Counter
}

var (
	engineObs = func() *mcObs {
		reg := obs.Default()
		const s = obs.DefaultShards
		return &mcObs{
			points:     reg.NewCounter("afs_mc_points_total", "(d, p) measurement points started", s),
			chunks:     reg.NewCounter("afs_mc_chunks_total", "trial chunks claimed by workers", s),
			trials:     reg.NewCounter("afs_mc_trials_total", "Monte-Carlo trials executed", s),
			failures:   reg.NewCounter("afs_mc_failures_total", "logical failures observed", s),
			earlyStops: reg.NewCounter("afs_mc_early_stops_total", "points stopped early by the Wilson-CI rule", s),
		}
	}()
	mcObsShardSeq atomic.Uint32
)

func nextMCShard() int { return int(mcObsShardSeq.Add(1) - 1) }
