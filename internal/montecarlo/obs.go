package montecarlo

import (
	"sync/atomic"

	"afs/internal/obs"
)

// mcObs publishes the Monte-Carlo engine's live progress: trials and
// failures as they are tallied, chunks as workers claim them, and the
// early-stop decisions the Wilson-CI rule makes. Everything increments on
// the same code paths that update the per-point atomics, so a scrape
// mid-sweep shows exactly how far the sweep has gotten.
type mcObs struct {
	points     *obs.Counter
	chunks     *obs.Counter
	trials     *obs.Counter
	failures   *obs.Counter
	earlyStops *obs.Counter

	// Triage-class tallies from the fused batch kernel: how many trials
	// each fast path resolved and how many fell through to the full
	// decoder. -metrics divides these by afs_mc_trials_total for live
	// fast-path hit rates.
	triageW0    *obs.Counter
	triageW1    *obs.Counter
	triageW2    *obs.Counter
	triageMulti *obs.Counter
	fullDecode  *obs.Counter

	// Bit-plane kernel lane tallies: how many trial lanes the plane
	// algebra resolved outright and how many were gathered into the
	// scalar path. Both stay zero under the scalar kernel;
	// bitplaneFast+bitplaneGathered == afs_mc_trials_total for pure
	// bit-plane runs.
	bitplaneFast     *obs.Counter
	bitplaneGathered *obs.Counter

	// Partial-residual peel tallies: components peeled off punted
	// syndromes, punted trials the peel resolved outright, full decodes
	// that ran on a strictly smaller residual, and a bucketed histogram
	// of residual defect counts (<=2, <=4, <=8, <=16, >16). -metrics
	// divides the split counters by afs_mc_full_decodes_total for the
	// live full-vs-residual decode picture.
	residualPeeled   *obs.Counter
	residualResolved *obs.Counter
	residualDecodes  *obs.Counter
	residualDefects  [5]*obs.Counter
}

// flushChunk folds one completed chunk's tally into the shared counters —
// the only obs traffic the engine generates, batch-granular by
// construction.
func (m *mcObs) flushChunk(shard int, trials uint64, t chunkTally) {
	m.chunks.Inc(shard)
	m.trials.Add(shard, trials)
	if t.failures != 0 {
		m.failures.Add(shard, t.failures)
	}
	if t.w0 != 0 {
		m.triageW0.Add(shard, t.w0)
	}
	if t.w1 != 0 {
		m.triageW1.Add(shard, t.w1)
	}
	if t.w2 != 0 {
		m.triageW2.Add(shard, t.w2)
	}
	if t.multi != 0 {
		m.triageMulti.Add(shard, t.multi)
	}
	if t.full != 0 {
		m.fullDecode.Add(shard, t.full)
	}
	if t.bpFast != 0 {
		m.bitplaneFast.Add(shard, t.bpFast)
	}
	if t.bpGathered != 0 {
		m.bitplaneGathered.Add(shard, t.bpGathered)
	}
	if t.peeled != 0 {
		m.residualPeeled.Add(shard, t.peeled)
	}
	if t.peelResolved != 0 {
		m.residualResolved.Add(shard, t.peelResolved)
	}
	if t.residual != 0 {
		m.residualDecodes.Add(shard, t.residual)
		for i, n := range t.resHist {
			if n != 0 {
				m.residualDefects[i].Add(shard, n)
			}
		}
	}
}

var (
	engineObs = func() *mcObs {
		reg := obs.Default()
		const s = obs.DefaultShards
		return &mcObs{
			points:      reg.NewCounter("afs_mc_points_total", "(d, p) measurement points started", s),
			chunks:      reg.NewCounter("afs_mc_chunks_total", "trial chunks claimed by workers", s),
			trials:      reg.NewCounter("afs_mc_trials_total", "Monte-Carlo trials executed", s),
			failures:    reg.NewCounter("afs_mc_failures_total", "logical failures observed", s),
			earlyStops:  reg.NewCounter("afs_mc_early_stops_total", "points stopped early by the Wilson-CI rule", s),
			triageW0:    reg.NewCounter("afs_mc_triage_w0_total", "trials resolved by the weight-0 fast path", s),
			triageW1:    reg.NewCounter("afs_mc_triage_w1_total", "trials resolved by the weight-1 closed form", s),
			triageW2:    reg.NewCounter("afs_mc_triage_w2_total", "trials resolved by the weight-2 closed form", s),
			triageMulti: reg.NewCounter("afs_mc_triage_multi_total", "trials resolved by the pair/single decomposition", s),
			fullDecode:  reg.NewCounter("afs_mc_full_decodes_total", "trials decoded by the full pipeline", s),
			bitplaneFast: reg.NewCounter("afs_mc_bitplane_fast_lanes_total",
				"trial lanes resolved by bit-plane algebra without gathering", s),
			bitplaneGathered: reg.NewCounter("afs_mc_bitplane_gathered_lanes_total",
				"trial lanes gathered from planes into the scalar decode path", s),
			residualPeeled: reg.NewCounter("afs_mc_residual_peeled_components_total",
				"certified components peeled off punted syndromes", s),
			residualResolved: reg.NewCounter("afs_mc_residual_peel_resolved_total",
				"punted trials fully resolved by partial-residual peeling", s),
			residualDecodes: reg.NewCounter("afs_mc_residual_decodes_total",
				"full decodes that ran on a strictly smaller peeled residual", s),
			residualDefects: [5]*obs.Counter{
				reg.NewCounter("afs_mc_residual_defects_le2_total", "residual decodes with <=2 defects", s),
				reg.NewCounter("afs_mc_residual_defects_le4_total", "residual decodes with 3-4 defects", s),
				reg.NewCounter("afs_mc_residual_defects_le8_total", "residual decodes with 5-8 defects", s),
				reg.NewCounter("afs_mc_residual_defects_le16_total", "residual decodes with 9-16 defects", s),
				reg.NewCounter("afs_mc_residual_defects_gt16_total", "residual decodes with >16 defects", s),
			},
		}
	}()
	mcObsShardSeq atomic.Uint32
)

func nextMCShard() int { return int(mcObsShardSeq.Add(1) - 1) }
