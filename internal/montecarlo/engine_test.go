package montecarlo

import (
	"runtime"
	"testing"

	"afs/internal/lattice"
	"afs/internal/noise"
)

// TestFailuresIndependentOfWorkerCount is the engine's reproducibility
// contract: per-chunk seeding makes the result a pure function of
// (Seed, Trials, ChunkTrials), bit-identical for every worker count —
// something the legacy per-worker striping could not offer.
func TestFailuresIndependentOfWorkerCount(t *testing.T) {
	base := AccuracyConfig{Distance: 5, P: 0.02, Trials: 20000, Seed: 7, New: ufFactory}
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	var ref AccuracyResult
	for i, w := range counts {
		cfg := base
		cfg.Workers = w
		r := RunAccuracy(cfg)
		if r.Trials != base.Trials {
			t.Fatalf("workers=%d executed %d trials, want %d", w, r.Trials, base.Trials)
		}
		if i == 0 {
			ref = r
			if ref.Failures == 0 {
				t.Fatal("test point produced no failures; pick a harder point")
			}
			continue
		}
		if r.Failures != ref.Failures {
			t.Fatalf("workers=%d: failures %d != reference %d", w, r.Failures, ref.Failures)
		}
		if r.MeanDefects != ref.MeanDefects {
			t.Fatalf("workers=%d: mean defects %g != reference %g", w, r.MeanDefects, ref.MeanDefects)
		}
		if r.CI != ref.CI {
			t.Fatalf("workers=%d: CI differs", w)
		}
	}
}

// TestChunkingIsPartOfTheContract documents that ChunkTrials participates
// in seeding: a different chunk size is a different (equally valid)
// random experiment.
func TestChunkingIsPartOfTheContract(t *testing.T) {
	base := AccuracyConfig{Distance: 3, P: 0.03, Trials: 8192, Seed: 3, New: ufFactory}
	a := RunAccuracy(base)
	smaller := base
	smaller.ChunkTrials = 256
	b := RunAccuracy(smaller)
	c := RunAccuracy(smaller)
	if b.Failures != c.Failures {
		t.Fatalf("same chunking not reproducible: %d vs %d", b.Failures, c.Failures)
	}
	if a.Trials != b.Trials {
		t.Fatalf("chunk size changed executed trials: %d vs %d", a.Trials, b.Trials)
	}
}

// TestSweepConcurrentPointsRowMajorOrder checks the documented ordering:
// however execution interleaves across the pool, results come back
// distance-outer, p-inner.
func TestSweepConcurrentPointsRowMajorOrder(t *testing.T) {
	ds := []int{3, 5, 7}
	ps := []float64{0.03, 0.02, 0.01}
	rs := SweepAccuracy(AccuracyConfig{Trials: 3000, Seed: 11, Workers: 4, New: ufFactory}, ds, ps)
	if len(rs) != len(ds)*len(ps) {
		t.Fatalf("sweep returned %d results, want %d", len(rs), len(ds)*len(ps))
	}
	i := 0
	for _, d := range ds {
		for _, p := range ps {
			if rs[i].Distance != d || rs[i].P != p {
				t.Fatalf("result %d is (d=%d, p=%g), want (d=%d, p=%g)",
					i, rs[i].Distance, rs[i].P, d, p)
			}
			if rs[i].Trials != 3000 {
				t.Fatalf("point %d ran %d trials", i, rs[i].Trials)
			}
			i++
		}
	}
}

// TestSweepMatchesPointwiseRuns: running points through the shared pool
// must give bit-identical statistics to running each point alone.
func TestSweepMatchesPointwiseRuns(t *testing.T) {
	base := AccuracyConfig{Trials: 10000, Seed: 19, Workers: 4, New: ufFactory}
	ds := []int{3, 5}
	ps := []float64{0.02, 0.01}
	swept := SweepAccuracy(base, ds, ps)
	i := 0
	for _, d := range ds {
		for _, p := range ps {
			cfg := base
			cfg.Distance = d
			cfg.P = p
			solo := RunAccuracy(cfg)
			if swept[i].Failures != solo.Failures || swept[i].MeanDefects != solo.MeanDefects {
				t.Fatalf("point (d=%d, p=%g): sweep %d failures, solo %d",
					d, p, swept[i].Failures, solo.Failures)
			}
			i++
		}
	}
}

func TestEarlyStoppingCutsEasyPoints(t *testing.T) {
	// d=3 at p=0.05 fails every ~30 trials; ±20% relative CI needs only a
	// few thousand trials, far below the 10^6 budget.
	cfg := AccuracyConfig{
		Distance: 3, P: 0.05, Trials: 1_000_000, Seed: 13, Workers: 2,
		New: ufFactory, StopRelCI: 0.2,
	}
	r := RunAccuracy(cfg)
	if !r.EarlyStopped {
		t.Fatal("easy point did not early-stop")
	}
	if r.Trials >= r.TrialsRequested {
		t.Fatalf("early stop executed the full budget: %d of %d", r.Trials, r.TrialsRequested)
	}
	if r.Trials < DefaultChunkTrials {
		t.Fatalf("executed only %d trials", r.Trials)
	}
	if r.Failures < cfg.stopMinFailures() {
		t.Fatalf("stopped with %d failures, below the %d gate", r.Failures, cfg.stopMinFailures())
	}
	// The estimate must still be sane: compare against a fixed-budget run.
	full := RunAccuracy(AccuracyConfig{
		Distance: 3, P: 0.05, Trials: 50_000, Seed: 99, New: ufFactory,
	})
	if r.LogicalErrorRate < full.LogicalErrorRate/2 || r.LogicalErrorRate > full.LogicalErrorRate*2 {
		t.Fatalf("early-stopped rate %g implausible vs reference %g",
			r.LogicalErrorRate, full.LogicalErrorRate)
	}
}

func TestEarlyStoppingOffByDefault(t *testing.T) {
	r := RunAccuracy(AccuracyConfig{Distance: 3, P: 0.05, Trials: 30000, Seed: 13, New: ufFactory})
	if r.EarlyStopped || r.Trials != 30000 {
		t.Fatalf("default config stopped early: %+v", r)
	}
}

// TestMeanDefectsWeightedByExecutedTrials guards the aggregation fix: with
// more workers than trials, the legacy code divided the per-worker means
// by the worker count, counting idle workers as zero-defect shares.
func TestMeanDefectsWeightedByExecutedTrials(t *testing.T) {
	cfg := AccuracyConfig{Distance: 5, P: 0.02, Trials: 3, Workers: 8, Seed: 21, New: ufFactory}
	r := RunAccuracy(cfg)
	if r.Trials != 3 {
		t.Fatalf("executed %d trials", r.Trials)
	}
	solo := cfg
	solo.Workers = 1
	ref := RunAccuracy(solo)
	if r.MeanDefects != ref.MeanDefects {
		t.Fatalf("mean defects depends on worker count: %g vs %g", r.MeanDefects, ref.MeanDefects)
	}
	if r.MeanDefects <= 0 {
		t.Fatalf("mean defects %g, want > 0 at p=0.02", r.MeanDefects)
	}
	// Same property on the legacy path, where the bug lived.
	legacy := RunAccuracyStatic(cfg)
	legacySolo := RunAccuracyStatic(solo)
	if legacy.MeanDefects == 0 || legacySolo.MeanDefects == 0 {
		t.Fatal("legacy path reports zero mean defects")
	}
	if legacy.MeanDefects < legacySolo.MeanDefects/3 {
		t.Fatalf("legacy mean defects still diluted by idle workers: %g vs %g",
			legacy.MeanDefects, legacySolo.MeanDefects)
	}
}

// TestEngineAgreesWithLegacyStatistically: the engine and the retained
// legacy executor sample different random streams, so rates differ by
// Monte-Carlo noise only — their confidence intervals must overlap.
func TestEngineAgreesWithLegacyStatistically(t *testing.T) {
	cfg := AccuracyConfig{Distance: 3, P: 0.02, Trials: 60000, Seed: 17, Workers: 2, New: ufFactory}
	a := RunAccuracy(cfg)
	b := RunAccuracyStatic(cfg)
	if a.Failures == 0 || b.Failures == 0 {
		t.Fatalf("expected failures from both executors: %d, %d", a.Failures, b.Failures)
	}
	if a.CI.Lo > b.CI.Hi || b.CI.Lo > a.CI.Hi {
		t.Fatalf("engine CI [%g,%g] and legacy CI [%g,%g] do not overlap",
			a.CI.Lo, a.CI.Hi, b.CI.Lo, b.CI.Hi)
	}
}

func BenchmarkDecode(b *testing.B) {
	// The steady-state Monte-Carlo inner loop at the paper's design point:
	// one sampled syndrome, one Union-Find decode, one residual check.
	g := lattice.Cached3D(11, 11)
	dec := ufFactory(g)
	s := noise.NewSampler(g, 1e-3, 7, 1)
	cut := g.NorthCutQubits()
	var trial noise.Trial
	var residual noise.Bitset
	var failures uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(&trial)
		corr := dec.Decode(trial.Defects)
		ApplyCorrection(g, corr, &trial, &residual)
		if residual.Parity(cut) {
			failures++
		}
	}
	_ = failures
}
