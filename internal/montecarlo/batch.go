package montecarlo

import (
	"afs/internal/core"
	"afs/internal/lattice"
	"afs/internal/noise"
)

// BatchTrials is the fused kernel's batch width: trials sampled per
// BatchSampler call. Big enough to amortize per-batch setup, small enough
// that a batch's structure-of-arrays block stays cache-resident.
const BatchTrials = 256

// chunkTally is one work chunk's outcome, accumulated locally and folded
// into the point's atomics once per chunk — the batch-granular accounting
// that keeps every per-trial cost out of the shared-state path.
type chunkTally struct {
	failures uint64
	defects  uint64
	w0       uint64 // trials resolved by the weight-0 fast path
	w1       uint64 // trials resolved by the weight-1 closed form
	w2       uint64 // trials resolved by the weight-2 closed form
	multi    uint64 // trials resolved by the pair/single decomposition
	full     uint64 // trials that fell through to the full decoder

	// Bit-plane kernel tallies (zero under the scalar kernel): lanes
	// resolved straight from plane algebra vs lanes whose defect lists
	// were gathered for the scalar path. bpFast+bpGathered == trials when
	// the bit-plane kernel ran the chunk.
	bpFast     uint64
	bpGathered uint64

	// Partial-residual peel tallies (core.Triage.PeelResidual): certified
	// components peeled off, trials fully resolved by the peel
	// decomposition without a decoder walk (those also count in multi),
	// full decodes that ran on a strictly smaller residual (those also
	// count in full), and the defect-count histogram of the residuals
	// actually decoded. Both kernels route every multi-defect (>= 3)
	// syndrome through the peel: the bit-plane kernel on its gathered
	// lanes, the scalar kernel fused into its triage loop (PeelResidual's
	// certified set contains classifyMulti's, test-enforced).
	peeled       uint64
	peelResolved uint64
	residual     uint64
	resHist      [5]uint64 // residual defect count: <=2, <=4, <=8, <=16, >16
}

// resBucket maps a residual defect count to its chunkTally.resHist bucket.
func resBucket(n int) int {
	switch {
	case n <= 2:
		return 0
	case n <= 4:
		return 1
	case n <= 8:
		return 2
	case n <= 16:
		return 3
	}
	return 4
}

// runner is the engine-facing contract both shot kernels satisfy: the
// scalar structure-of-arrays kernel and the bit-plane SWAR kernel.
type runner interface {
	reseed(seed1, seed2 uint64)
	run(n uint64) chunkTally
}

// newRunner picks the shot kernel for cfg.
func newRunner(cfg AccuracyConfig, g *lattice.Graph) runner {
	if cfg.BitPlane {
		return newBPKernel(cfg, g)
	}
	return newKernel(cfg, g)
}

// kernel is the fused sample+triage+decode pipeline for one measurement
// point: it pulls structure-of-arrays batches from a BatchSampler, resolves
// weight-<=2 syndromes through the closed-form triage layer, and routes
// only the heavy tail through the full decoder — folding corrections into
// the logical-cut parity instead of materializing residual data masks.
// A kernel is single-owner state; each engine worker builds its own per
// point, exactly like the decoder it wraps.
type kernel struct {
	g       *lattice.Graph
	s       *noise.BatchSampler
	dec     Decoder
	tri     *core.Triage
	cutEdge []bool // per edge: correction edge flips the logical cut
	triage  bool
	peel    bool // run PeelResidual on punted syndromes
	b       noise.Batch

	// tile, when non-nil, decodes full-pipeline trials with at least
	// tileMin defects through the tile-parallel Union-Find engine
	// (AccuracyConfig.TileParallel); every lighter trial keeps dec.
	tile    *core.TileDecoder
	tileMin int

	// failLog, when non-nil, records every trial's failure bit in order —
	// the hook the triage-equivalence property tests use to compare paths
	// trial for trial. Production runs leave it nil.
	failLog []bool
}

// newKernel builds the fused pipeline for cfg over graph g (which must be
// cfg.graph() or an equivalent). Seeding happens per chunk via reseed.
func newKernel(cfg AccuracyConfig, g *lattice.Graph) *kernel {
	k := &kernel{
		g:      g,
		s:      noise.NewBatchSampler(g, cfg.P, cfg.Seed, 0, g.NorthCutQubits()),
		dec:    cfg.New(g),
		triage: !cfg.DisableTriage,
	}
	k.cutEdge = k.s.CutEdges()
	if k.triage {
		k.tri = core.NewTriage(g)
		k.peel = !cfg.DisablePeel
	}
	if cfg.TileParallel {
		k.tile = core.NewTileDecoder(g, core.Options{LeanStats: true},
			core.TileConfig{TileSize: cfg.TileSize, Workers: cfg.tileWorkers()})
		k.tileMin = cfg.tileMinDefects()
	}
	return k
}

// reseed rewinds the kernel's random stream to the chunk stream
// PCG(seed1, seed2), preserving the engine's chunk-seeded determinism
// contract.
func (k *kernel) reseed(seed1, seed2 uint64) { k.s.Reseed(seed1, seed2) }

// run executes n trials and returns the chunk's tally. The loop touches no
// shared state: sampling, triage, decoding, and failure detection all work
// off kernel-local storage, and allocation is zero once the batch reaches
// its high-water mark (test-enforced).
func (k *kernel) run(n uint64) chunkTally {
	var t chunkTally
	for n > 0 {
		kk := BatchTrials
		if n < BatchTrials {
			kk = int(n)
		}
		k.s.SampleBatch(&k.b, kk)
		defOff := k.b.DefectOff
		for i := 0; i < kk; i++ {
			df := k.b.Defects[defOff[i]:defOff[i+1]]
			t.defects += uint64(len(df))
			par := k.b.CutParity[i]
			if k.triage {
				if len(df) == 0 {
					// Weight 0: identity correction, zero decoder work; the
					// sampled cut parity alone decides the trial.
					t.w0++
					if par {
						t.failures++
					}
					if k.failLog != nil {
						k.failLog = append(k.failLog, par)
					}
					continue
				}
				if k.peel && len(df) >= 3 {
					// Multi-defect syndromes go straight to the partial-
					// residual decomposition, exactly like the bit-plane
					// gather path: PeelResidual's certified-whole set
					// strictly contains classifyMulti's with identical
					// parity (test-enforced containment), so one pass
					// replaces the classify-then-peel double scan, peels
					// certified components off whatever remains ambiguous,
					// and hands the decoder only the residual (see
					// core.Triage.PeelResidual).
					df0 := len(df)
					pp, res, comps := k.tri.PeelResidual(df)
					t.peeled += uint64(comps)
					if pp {
						par = !par
					}
					if len(res) == 0 {
						// Everything certified: a pure pair/single/duo
						// decomposition resolved without a decoder walk.
						t.multi++
						t.peelResolved++
						if par {
							t.failures++
						}
						if k.failLog != nil {
							k.failLog = append(k.failLog, par)
						}
						continue
					}
					if len(res) < df0 {
						t.residual++
						t.resHist[resBucket(len(res))]++
					}
					df = res
				} else if class, p, ok := k.tri.ClassifySyndrome(df); ok {
					switch class {
					case core.TriageW1:
						t.w1++
					case core.TriageW2:
						t.w2++
					default:
						t.multi++
					}
					fail := par != p
					if fail {
						t.failures++
					}
					if k.failLog != nil {
						k.failLog = append(k.failLog, fail)
					}
					continue
				}
			}
			t.full++
			var corr []int32
			if k.tile != nil && len(df) >= k.tileMin {
				corr = k.tile.Decode(df)
			} else {
				corr = k.dec.Decode(df)
			}
			for _, e := range corr {
				if k.cutEdge[e] {
					par = !par
				}
			}
			if par {
				t.failures++
			}
			if k.failLog != nil {
				k.failLog = append(k.failLog, par)
			}
		}
		n -= uint64(kk)
	}
	return t
}
