// Package montecarlo implements the paper's Monte-Carlo simulation
// infrastructure (§III-A): for each configuration of physical error rate,
// code distance, and noise model it samples random trials, decodes them,
// counts logical failures, and attaches bootstrap confidence intervals to
// the measured rates. Trials are distributed over a worker pool with
// deterministic per-worker seeding, so every reported number is exactly
// reproducible.
package montecarlo

import (
	"runtime"
	"sync"
	"time"

	"afs/internal/lattice"
	"afs/internal/noise"
	"afs/internal/stats"
)

// Decoder is the minimal decoding contract: defects in, correction edge
// indices out. Both the Union-Find decoder (internal/core) and the MWPM
// baseline (internal/mwpm) satisfy it.
type Decoder interface {
	Decode(defects []int32) []int32
}

// Factory builds a fresh decoder bound to g. Each worker calls it once, so
// implementations need not be safe for concurrent use.
type Factory func(g *lattice.Graph) Decoder

// AccuracyConfig describes one logical-error-rate measurement point.
type AccuracyConfig struct {
	// Distance is the surface code distance d.
	Distance int
	// Rounds is the number of detector layers; 0 selects the paper's
	// default of d rounds (a full logical cycle), and 1 selects the
	// perfect-measurement 2-D model.
	Rounds int
	// P is the physical error rate of the phenomenological model.
	P float64
	// Trials is the number of Monte-Carlo trials (the paper uses 10^7).
	Trials uint64
	// Workers is the parallelism; 0 selects GOMAXPROCS.
	Workers int
	// Seed makes the run reproducible.
	Seed uint64
	// New builds the decoder under test.
	New Factory
}

func (c AccuracyConfig) rounds() int {
	if c.Rounds == 0 {
		return c.Distance
	}
	return c.Rounds
}

// AccuracyResult is the outcome of one measurement point.
type AccuracyResult struct {
	Distance         int
	Rounds           int
	P                float64
	Trials           uint64
	Failures         uint64
	LogicalErrorRate float64
	CI               stats.RateCI
	MeanDefects      float64
	Elapsed          time.Duration
}

// RunAccuracy measures the logical error rate of cfg's decoder: each trial
// samples a phenomenological error, decodes the detection events, applies
// the correction, and declares a logical failure when the residual error
// crosses the north boundary cut an odd number of times.
func RunAccuracy(cfg AccuracyConfig) AccuracyResult {
	start := time.Now()
	rounds := cfg.rounds()
	var g *lattice.Graph
	if rounds == 1 {
		g = lattice.New2D(cfg.Distance)
	} else {
		g = lattice.New3D(cfg.Distance, rounds)
	}
	cut := g.NorthCutQubits()

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if uint64(workers) > cfg.Trials && cfg.Trials > 0 {
		workers = int(cfg.Trials)
	}
	if workers < 1 {
		workers = 1
	}

	type partial struct {
		failures uint64
		defects  float64
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		share := cfg.Trials / uint64(workers)
		if uint64(w) < cfg.Trials%uint64(workers) {
			share++
		}
		wg.Add(1)
		go func(w int, share uint64) {
			defer wg.Done()
			dec := cfg.New(g)
			s := noise.NewSampler(g, cfg.P, cfg.Seed, uint64(w)+1)
			var trial noise.Trial
			var residual noise.Bitset
			var totalDefects uint64
			for i := uint64(0); i < share; i++ {
				s.Sample(&trial)
				totalDefects += uint64(len(trial.Defects))
				corr := dec.Decode(trial.Defects)
				ApplyCorrection(g, corr, &trial, &residual)
				if residual.Parity(cut) {
					parts[w].failures++
				}
			}
			if share > 0 {
				parts[w].defects = float64(totalDefects) / float64(share)
			}
		}(w, share)
	}
	wg.Wait()

	var failures uint64
	var meanDefects float64
	for _, p := range parts {
		failures += p.failures
		meanDefects += p.defects
	}
	meanDefects /= float64(workers)

	res := AccuracyResult{
		Distance:    cfg.Distance,
		Rounds:      rounds,
		P:           cfg.P,
		Trials:      cfg.Trials,
		Failures:    failures,
		MeanDefects: meanDefects,
		Elapsed:     time.Since(start),
	}
	if cfg.Trials > 0 {
		res.LogicalErrorRate = float64(failures) / float64(cfg.Trials)
	}
	res.CI = rateInterval(failures, cfg.Trials, cfg.Seed)
	return res
}

// rateInterval attaches a 95% confidence interval to a Monte-Carlo rate:
// percentile bootstrap in general, Wilson score when no failures were
// observed (the bootstrap is degenerate at k=0 and a zero-failure run
// still carries an informative upper bound).
func rateInterval(failures, trialCount, seed uint64) stats.RateCI {
	if failures == 0 {
		return stats.WilsonInterval(failures, trialCount, 0.95)
	}
	return stats.BootstrapRateCI(failures, trialCount, 2000, 0.95, seed^0xb00757aa)
}

// ApplyCorrection computes the residual data-error mask for a trial:
// residual = net injected data error XOR data effect of the correction.
func ApplyCorrection(g *lattice.Graph, correction []int32, trial *noise.Trial, residual *noise.Bitset) {
	residual.Resize(g.NumDataQubits())
	residual.Clear()
	for _, e := range correction {
		ed := &g.Edges[e]
		if ed.Kind == lattice.Spatial {
			residual.Flip(int(ed.Qubit))
		}
	}
	residual.Xor(trial.NetData)
}

// SweepAccuracy runs RunAccuracy over the cross product of distances and
// error rates, returning results in row-major order (distance outer, p
// inner). It is the engine behind the paper's Figures 3 and 8.
func SweepAccuracy(base AccuracyConfig, distances []int, ps []float64) []AccuracyResult {
	out := make([]AccuracyResult, 0, len(distances)*len(ps))
	for _, d := range distances {
		for _, p := range ps {
			cfg := base
			cfg.Distance = d
			cfg.P = p
			out = append(out, RunAccuracy(cfg))
		}
	}
	return out
}
