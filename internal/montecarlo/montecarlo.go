// Package montecarlo implements the paper's Monte-Carlo simulation
// infrastructure (§III-A): for each configuration of physical error rate,
// code distance, and noise model it samples random trials, decodes them,
// counts logical failures, and attaches bootstrap confidence intervals to
// the measured rates.
//
// Trials are executed by a work-stealing engine (see engine.go): work is
// split into fixed-size chunks claimed off a shared atomic counter, each
// chunk carrying its own deterministic seed, so measured numbers are exactly
// reproducible and — unlike per-worker seeding — independent of the worker
// count. Whole sweeps run through one persistent worker pool, so easy
// (d, p) points never leave workers idle while a hard point finishes, and an
// optional adaptive early-stopping rule terminates a point once its
// confidence interval is tight enough.
package montecarlo

import (
	"time"

	"afs/internal/core"
	"afs/internal/lattice"
	"afs/internal/noise"
	"afs/internal/stats"
)

// Decoder is the minimal decoding contract: defects in, correction edge
// indices out. Both the Union-Find decoder (internal/core) and the MWPM
// baseline (internal/mwpm) satisfy it.
type Decoder interface {
	Decode(defects []int32) []int32
}

// Factory builds a fresh decoder bound to g. Each worker calls it once per
// sweep point, so implementations need not be safe for concurrent use.
type Factory func(g *lattice.Graph) Decoder

// DefaultChunkTrials is the work-stealing chunk size used when
// AccuracyConfig.ChunkTrials is zero. It is part of the reproducibility
// contract: results are bit-identical across worker counts for a fixed
// (Seed, Trials, ChunkTrials) triple, because every chunk owns the
// deterministic random stream PCG(Seed, chunkIndex).
const DefaultChunkTrials = 1024

// AccuracyConfig describes one logical-error-rate measurement point.
type AccuracyConfig struct {
	// Distance is the surface code distance d.
	Distance int
	// Rounds is the number of detector layers; 0 selects the paper's
	// default of d rounds (a full logical cycle), and 1 selects the
	// perfect-measurement 2-D model.
	Rounds int
	// P is the physical error rate of the phenomenological model.
	P float64
	// Trials is the number of Monte-Carlo trials (the paper uses 10^7).
	Trials uint64
	// Workers is the parallelism; 0 selects GOMAXPROCS.
	Workers int
	// Seed makes the run reproducible.
	Seed uint64
	// New builds the decoder under test.
	New Factory

	// ChunkTrials is the number of trials per work-stealing chunk; 0
	// selects DefaultChunkTrials. Results depend on the chunking (each
	// chunk is its own random stream), not on how chunks land on workers.
	ChunkTrials uint64

	// BitPlane selects the bit-plane SWAR shot kernel (bitplane.go): 64
	// trials per machine word, sampled by noise.PlaneSampler and
	// classified by core.LaneTriage, with only heavy-tail lanes gathered
	// into the scalar triage/decoder path. The per-chunk determinism
	// contract is unchanged, but the random stream differs from the scalar
	// kernel's (the plane sampler interleaves 64 trials into one
	// geometric-skip walk — see the PlaneSampler draw-order contract), so
	// measured rates are reproducible per kernel, not across kernels;
	// equivalence in distribution is test-enforced.
	BitPlane bool

	// DisableTriage turns off the weight-class triage fast paths
	// (core.Triage) and routes every trial through New's full decoder.
	// Triage is provably failure-equivalent for every decoder in the repo
	// (punting whenever a closed form could be ambiguous), so this exists
	// for ablation benches and for custom Factory implementations whose
	// decoders deliberately deviate from minimal-correction behavior.
	DisableTriage bool

	// DisablePeel turns off the partial-residual decomposition
	// (core.Triage.PeelResidual) that strips certified components off
	// syndromes the triage layer punts before the full decoder runs.
	// Peeling is failure-equivalent for the Union-Find decoders the
	// kernels use (the radius-bound certificate guarantees the peeled
	// groups evolve independently), so this exists for ablation benches
	// and for custom Factory decoders that are not group-additive — i.e.
	// that may resolve an isolated defect group differently standalone
	// than in context (the hierarchical router is the in-repo example).
	// Implied by DisableTriage.
	DisablePeel bool

	// TileParallel routes trials that reach the full decoder with at least
	// TileMinDefects defects — the heavy tail that survives triage and
	// partial-residual peeling — through the tile-parallel Union-Find
	// engine (core.TileDecoder) instead of New's decoder. The tile engine
	// is bit-identical to the sequential full grow/peel pipeline for every
	// tile size and worker count (test-enforced), so measured rates are
	// unchanged whenever New builds a decoder failure-equivalent to it —
	// every Union-Find variant in the repo qualifies; the MWPM baseline
	// does not (its routed trials would be decoded by Union-Find).
	TileParallel bool
	// TileSize and TileWorkers configure the engine (core.TileConfig
	// semantics), except that TileWorkers=0 selects 1 worker here, not
	// GOMAXPROCS: the Monte-Carlo engine already runs one kernel per core,
	// so per-kernel growth pools would oversubscribe the host ~quadratically
	// (wall-clock only — decode results are worker-count deterministic).
	// Set TileWorkers explicitly to give each kernel a pool anyway.
	// TileMinDefects is the routing threshold; 0 selects
	// core.DefaultTileMinDefects.
	TileSize       int
	TileWorkers    int
	TileMinDefects int

	// StopRelCI, when positive, enables adaptive early stopping: the point
	// terminates once the Wilson 95% CI half-width divided by the observed
	// rate is <= StopRelCI (e.g. 0.1 stops at ±10% relative precision).
	// Easy points (high p, low d) then finish orders of magnitude sooner.
	// The default of 0 preserves exact fixed-trial-count behavior; early
	// stopping trades bit-exact reproducibility of the executed trial set
	// for speed (which chunks run depends on timing).
	StopRelCI float64
	// StopMinFailures gates early stopping until at least this many
	// failures have been observed; 0 selects 50, enough that the Wilson
	// interval is meaningful.
	StopMinFailures uint64
}

func (c AccuracyConfig) rounds() int {
	if c.Rounds == 0 {
		return c.Distance
	}
	return c.Rounds
}

func (c AccuracyConfig) chunkTrials() uint64 {
	if c.ChunkTrials == 0 {
		return DefaultChunkTrials
	}
	return c.ChunkTrials
}

// tileWorkers resolves TileWorkers for a kernel's TileDecoder: unset means
// one worker, since the engine already saturates the host with one kernel
// per core (see the TileWorkers field comment).
func (c AccuracyConfig) tileWorkers() int {
	if c.TileWorkers <= 0 {
		return 1
	}
	return c.TileWorkers
}

func (c AccuracyConfig) tileMinDefects() int {
	if c.TileMinDefects == 0 {
		return core.DefaultTileMinDefects
	}
	return c.TileMinDefects
}

func (c AccuracyConfig) stopMinFailures() uint64 {
	if c.StopMinFailures == 0 {
		return 50
	}
	return c.StopMinFailures
}

// graph returns the (shared, immutable) decoding graph for the point.
func (c AccuracyConfig) graph() *lattice.Graph {
	if c.rounds() == 1 {
		return lattice.Cached2D(c.Distance)
	}
	return lattice.Cached3D(c.Distance, c.rounds())
}

// AccuracyResult is the outcome of one measurement point.
type AccuracyResult struct {
	Distance int
	Rounds   int
	P        float64
	// Trials is the number of trials actually executed; it equals
	// TrialsRequested unless early stopping fired.
	Trials uint64
	// TrialsRequested is the configured trial budget.
	TrialsRequested uint64
	// EarlyStopped reports whether the adaptive stopping rule terminated
	// the point before its full budget.
	EarlyStopped     bool
	Failures         uint64
	LogicalErrorRate float64
	CI               stats.RateCI
	MeanDefects      float64
	Elapsed          time.Duration
	// Triage-class tallies: how many trials each closed-form fast path
	// resolved (weight 0, 1, 2, and the weight >= 3 pair/single
	// decomposition) and how many ran the full decoder.
	// TriageW0+TriageW1+TriageW2+TriageMulti+FullDecodes == Trials; with
	// DisableTriage set, FullDecodes == Trials.
	TriageW0    uint64
	TriageW1    uint64
	TriageW2    uint64
	TriageMulti uint64
	FullDecodes uint64
	// Bit-plane lane tallies, populated only by the bit-plane kernel
	// (AccuracyConfig.BitPlane): lanes resolved straight from plane
	// algebra vs lanes whose defect lists were gathered for the scalar
	// path. BitPlaneFastLanes+BitPlaneGatheredLanes == Trials when the
	// bit-plane kernel ran.
	BitPlaneFastLanes     uint64
	BitPlaneGatheredLanes uint64
	// Partial-residual peel tallies (core.Triage.PeelResidual): certified
	// components peeled, trials resolved entirely by the peel
	// decomposition (a subset of TriageMulti), full decodes that ran on a
	// strictly smaller residual (a subset of FullDecodes), and the
	// defect-count histogram of those residuals (buckets <=2, <=4, <=8,
	// <=16, >16). Both kernels route every multi-defect (>= 3) syndrome
	// through the peel — the bit-plane kernel on its gathered lanes, the
	// scalar kernel fused into its triage loop — so the tallies are
	// kernel-comparable; the triage partition
	// w0+w1+w2+multi+full == trials is unaffected either way.
	PeeledComponents uint64
	PeelResolved     uint64
	ResidualDecodes  uint64
	ResidualDefects  [5]uint64
}

// PeelFractions returns the partial-residual peel outcomes as fractions of
// executed trials: trials the peel resolved outright, and full decodes
// that ran on a strictly smaller residual syndrome. Their sum bounds the
// share of punted trials the decomposition touched.
func (r *AccuracyResult) PeelFractions() (resolved, residual float64) {
	if r.Trials == 0 {
		return 0, 0
	}
	n := float64(r.Trials)
	return float64(r.PeelResolved) / n, float64(r.ResidualDecodes) / n
}

// TriageFractions returns the triage-class tallies as fractions of the
// trials actually executed — the one consistent denominator (early
// stopping can leave Trials < TrialsRequested, and the executed count is
// what the tallies partition). The five fractions sum to 1 whenever any
// trials ran (test-enforced).
func (r *AccuracyResult) TriageFractions() (w0, w1, w2, multi, full float64) {
	if r.Trials == 0 {
		return 0, 0, 0, 0, 0
	}
	n := float64(r.Trials)
	return float64(r.TriageW0) / n, float64(r.TriageW1) / n,
		float64(r.TriageW2) / n, float64(r.TriageMulti) / n,
		float64(r.FullDecodes) / n
}

// BitPlaneFractions returns the bit-plane lane tallies as fractions of
// executed trials; fast+gathered == 1 whenever the bit-plane kernel ran
// (test-enforced). Both are 0 under the scalar kernel.
func (r *AccuracyResult) BitPlaneFractions() (fast, gathered float64) {
	if r.Trials == 0 {
		return 0, 0
	}
	n := float64(r.Trials)
	return float64(r.BitPlaneFastLanes) / n, float64(r.BitPlaneGatheredLanes) / n
}

// rateInterval attaches a 95% confidence interval to a Monte-Carlo rate:
// percentile bootstrap in general, Wilson score when no failures were
// observed (the bootstrap is degenerate at k=0 and a zero-failure run
// still carries an informative upper bound).
func rateInterval(failures, trialCount, seed uint64) stats.RateCI {
	if failures == 0 {
		return stats.WilsonInterval(failures, trialCount, 0.95)
	}
	return stats.BootstrapRateCI(failures, trialCount, 2000, 0.95, seed^0xb00757aa)
}

// ApplyCorrection computes the residual data-error mask for a trial:
// residual = net injected data error XOR data effect of the correction.
func ApplyCorrection(g *lattice.Graph, correction []int32, trial *noise.Trial, residual *noise.Bitset) {
	residual.CopyFrom(trial.NetData)
	for _, e := range correction {
		ed := &g.Edges[e]
		if ed.Kind == lattice.Spatial {
			residual.Flip(int(ed.Qubit))
		}
	}
}
