package montecarlo

import (
	"runtime"
	"sync"
	"time"

	"afs/internal/lattice"
	"afs/internal/noise"
)

// This file retains the pre-engine execution strategy — per-point graph
// construction, static per-worker trial striping, a join barrier between
// sweep points — as a living reference implementation. cmd/afs-bench runs
// it next to the work-stealing engine so every future change has a
// like-for-like scheduling comparison, and tests use it as an independent
// oracle for the engine's statistics.
//
// Note its per-worker seeding (PCG(Seed, worker+1)) makes results depend
// on the worker count, which is exactly the defect the engine's per-chunk
// seeding removes. Do not use these entry points for new measurements.

// RunAccuracyStatic measures a point with the legacy static-striping
// executor. Prefer RunAccuracy.
func RunAccuracyStatic(cfg AccuracyConfig) AccuracyResult {
	start := time.Now()
	rounds := cfg.rounds()
	var g *lattice.Graph
	if rounds == 1 {
		g = lattice.New2D(cfg.Distance)
	} else {
		g = lattice.New3D(cfg.Distance, rounds)
	}
	cut := g.NorthCutQubits()

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if uint64(workers) > cfg.Trials && cfg.Trials > 0 {
		workers = int(cfg.Trials)
	}
	if workers < 1 {
		workers = 1
	}

	type partial struct {
		trials   uint64
		failures uint64
		defects  uint64
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		share := cfg.Trials / uint64(workers)
		if uint64(w) < cfg.Trials%uint64(workers) {
			share++
		}
		wg.Add(1)
		go func(w int, share uint64) {
			defer wg.Done()
			dec := cfg.New(g)
			s := noise.NewSampler(g, cfg.P, cfg.Seed, uint64(w)+1)
			var trial noise.Trial
			var residual noise.Bitset
			for i := uint64(0); i < share; i++ {
				s.Sample(&trial)
				parts[w].defects += uint64(len(trial.Defects))
				corr := dec.Decode(trial.Defects)
				ApplyCorrection(g, corr, &trial, &residual)
				if residual.Parity(cut) {
					parts[w].failures++
				}
			}
			parts[w].trials = share
		}(w, share)
	}
	wg.Wait()

	var trials, failures, defects uint64
	for _, p := range parts {
		trials += p.trials
		failures += p.failures
		defects += p.defects
	}

	res := AccuracyResult{
		Distance:        cfg.Distance,
		Rounds:          rounds,
		P:               cfg.P,
		Trials:          trials,
		TrialsRequested: cfg.Trials,
		Failures:        failures,
		Elapsed:         time.Since(start),
	}
	if trials > 0 {
		res.LogicalErrorRate = float64(failures) / float64(trials)
		// Weight by trials actually executed, not by worker: per-worker
		// means averaged unweighted skew the statistic whenever shares are
		// unequal (or a worker receives zero trials).
		res.MeanDefects = float64(defects) / float64(trials)
	}
	res.CI = rateInterval(failures, trials, cfg.Seed)
	return res
}

// SweepAccuracySequential runs the cross product point by point with a
// join barrier after each point, exactly as the seed implementation did.
// Prefer SweepAccuracy.
func SweepAccuracySequential(base AccuracyConfig, distances []int, ps []float64) []AccuracyResult {
	out := make([]AccuracyResult, 0, len(distances)*len(ps))
	for _, d := range distances {
		for _, p := range ps {
			cfg := base
			cfg.Distance = d
			cfg.P = p
			out = append(out, RunAccuracyStatic(cfg))
		}
	}
	return out
}
