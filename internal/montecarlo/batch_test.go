package montecarlo

import (
	"math"
	"os"
	"testing"
	"time"

	"afs/internal/core"
	"afs/internal/lattice"
	"afs/internal/noise"
)

func sparseUFFactory(g *lattice.Graph) Decoder {
	return core.NewDecoder(g, core.Options{LeanStats: true, SparseShortcut: true})
}

// runLogged executes n trials through a kernel with the per-trial failure
// log enabled, chunk-seeded exactly like the engine.
func runLogged(cfg AccuracyConfig, n, chunk uint64) []bool {
	k := newKernel(cfg, cfg.graph())
	k.failLog = make([]bool, 0, n)
	for c := uint64(0); c*chunk < n; c++ {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > n {
			hi = n
		}
		k.reseed(cfg.Seed, c)
		k.run(hi - lo)
	}
	return k.failLog
}

// The tentpole's equivalence guarantee: at every (d, p) of the tier-1
// sweep, the triaged pipeline produces bit-identical logical outcomes,
// trial for trial, to the untriaged full-decoder path under the same
// seeds — for the plain Union-Find decoder, the sparse-shortcut variant,
// and (at the smallest distances) the MWPM baseline.
func TestTriagedBitIdenticalToFullPath(t *testing.T) {
	const trials, chunk = 4096, 1024
	for _, d := range []int{3, 5, 7, 9, 11} {
		for _, p := range []float64{0.001, 0.003, 0.01} {
			for name, factory := range map[string]Factory{
				"uf":        ufFactory,
				"uf-sparse": sparseUFFactory,
			} {
				cfg := AccuracyConfig{Distance: d, P: p, Seed: 42, New: factory}
				triaged := runLogged(cfg, trials, chunk)
				cfg.DisableTriage = true
				full := runLogged(cfg, trials, chunk)
				if len(triaged) != trials || len(full) != trials {
					t.Fatalf("d=%d p=%g %s: logged %d/%d of %d trials", d, p, name, len(triaged), len(full), trials)
				}
				for i := range triaged {
					if triaged[i] != full[i] {
						t.Fatalf("d=%d p=%g %s: trial %d: triaged=%v full=%v",
							d, p, name, i, triaged[i], full[i])
					}
				}
			}
		}
	}
	// MWPM cross-check at small d (its decode is much slower).
	for _, d := range []int{3, 5} {
		cfg := AccuracyConfig{Distance: d, P: 0.01, Seed: 23, New: mwpmFactory}
		triaged := runLogged(cfg, 2048, 512)
		cfg.DisableTriage = true
		full := runLogged(cfg, 2048, 512)
		for i := range triaged {
			if triaged[i] != full[i] {
				t.Fatalf("d=%d mwpm: trial %d: triaged=%v full=%v", d, i, triaged[i], full[i])
			}
		}
	}
}

// The fused kernel's untriaged path must reproduce the legacy scalar
// pipeline (Sampler → Decode → ApplyCorrection → residual cut parity)
// trial for trial: the cut-parity formulation is algebraically identical
// to materializing the residual data mask.
func TestBatchKernelMatchesScalarPath(t *testing.T) {
	for _, tc := range []struct {
		d int
		p float64
	}{{3, 0.01}, {5, 0.003}, {7, 0.001}, {5, 0.02}} {
		const trials, chunk = 3072, 1024
		cfg := AccuracyConfig{Distance: tc.d, P: tc.p, Seed: 7, New: ufFactory, DisableTriage: true}
		got := runLogged(cfg, trials, chunk)

		g := cfg.graph()
		cut := g.NorthCutQubits()
		dec := ufFactory(g)
		var trial noise.Trial
		var residual noise.Bitset
		var want []bool
		for c := uint64(0); c*chunk < trials; c++ {
			s := noise.NewSampler(g, tc.p, cfg.Seed, c)
			for i := uint64(0); i < chunk && c*chunk+i < trials; i++ {
				s.Sample(&trial)
				corr := dec.Decode(trial.Defects)
				ApplyCorrection(g, corr, &trial, &residual)
				want = append(want, residual.Parity(cut))
			}
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("d=%d p=%g: trial %d: kernel=%v scalar=%v", tc.d, tc.p, i, got[i], want[i])
			}
		}
	}
}

// Triage-class tallies must partition the trial count, and the engine must
// report them through AccuracyResult.
func TestTriageTalliesPartitionTrials(t *testing.T) {
	res := RunAccuracy(AccuracyConfig{
		Distance: 5, P: 0.003, Trials: 20000, Seed: 5, Workers: 2, New: sparseUFFactory,
	})
	sum := res.TriageW0 + res.TriageW1 + res.TriageW2 + res.TriageMulti + res.FullDecodes
	if sum != res.Trials {
		t.Fatalf("triage classes sum to %d, trials %d", sum, res.Trials)
	}
	if res.TriageW0 == 0 || res.TriageW1 == 0 || res.TriageW2 == 0 || res.TriageMulti == 0 {
		t.Fatalf("expected every fast class to fire at d=5 p=0.003: %+v", res)
	}
	res = RunAccuracy(AccuracyConfig{
		Distance: 5, P: 0.003, Trials: 20000, Seed: 5, Workers: 2, New: sparseUFFactory,
		DisableTriage: true,
	})
	if res.FullDecodes != res.Trials || res.TriageW0+res.TriageW1+res.TriageW2+res.TriageMulti != 0 {
		t.Fatalf("DisableTriage still triaged: %+v", res)
	}

	// Under early stopping Trials < TrialsRequested — the case where a
	// requested-trials denominator would break the fractions. They must
	// still sum to 1±ε because TriageFractions divides by executed trials.
	res = RunAccuracy(AccuracyConfig{
		Distance: 3, P: 0.01, Trials: 1 << 22, Seed: 5, Workers: 2, New: sparseUFFactory,
		StopRelCI: 0.2,
	})
	if !res.EarlyStopped || res.Trials >= res.TrialsRequested {
		t.Fatalf("early stopping did not fire: executed %d of %d", res.Trials, res.TrialsRequested)
	}
	w0, w1, w2, multi, full := res.TriageFractions()
	if sum := w0 + w1 + w2 + multi + full; math.Abs(sum-1) > 1e-12 {
		t.Fatalf("triage fractions sum to %v under early stopping", sum)
	}
}

// TestFractionsPartitionWithFusedPeel audits the fraction denominators on
// the post-fusion pipelines: at a heavy near-threshold point, where both
// kernels route every multi-defect syndrome through PeelResidual, the
// triage classes must still partition the executed trials exactly, the
// fractions must sum to 1, and the peel tallies must stay subsets of the
// classes they refine (PeelResolved of TriageMulti, ResidualDecodes of
// FullDecodes) on the scalar and bit-plane kernels alike.
func TestFractionsPartitionWithFusedPeel(t *testing.T) {
	for _, bitplane := range []bool{false, true} {
		res := RunAccuracy(AccuracyConfig{
			Distance: 7, P: 0.02, Trials: 20000, Seed: 12, Workers: 2, New: sparseUFFactory,
			BitPlane: bitplane,
		})
		if sum := res.TriageW0 + res.TriageW1 + res.TriageW2 + res.TriageMulti + res.FullDecodes; sum != res.Trials {
			t.Fatalf("bitplane=%v: triage classes sum to %d, trials %d", bitplane, sum, res.Trials)
		}
		w0, w1, w2, multi, full := res.TriageFractions()
		if s := w0 + w1 + w2 + multi + full; math.Abs(s-1) > 1e-12 {
			t.Fatalf("bitplane=%v: triage fractions sum to %g, want 1", bitplane, s)
		}
		if res.PeelResolved == 0 || res.ResidualDecodes == 0 {
			t.Fatalf("bitplane=%v: peel never fired at a heavy point: %+v", bitplane, res)
		}
		if res.PeelResolved > res.TriageMulti {
			t.Fatalf("bitplane=%v: PeelResolved %d exceeds TriageMulti %d — not a refinement",
				bitplane, res.PeelResolved, res.TriageMulti)
		}
		if res.ResidualDecodes > res.FullDecodes {
			t.Fatalf("bitplane=%v: ResidualDecodes %d exceeds FullDecodes %d — not a refinement",
				bitplane, res.ResidualDecodes, res.FullDecodes)
		}
		resolved, residual := res.PeelFractions()
		if resolved > multi || residual > full {
			t.Fatalf("bitplane=%v: peel fractions (%g, %g) exceed their classes (%g, %g)",
				bitplane, resolved, residual, multi, full)
		}
	}
}

// Steady-state batch decoding must not allocate — the 0 allocs/op contract
// extends from the scalar pipeline to the fused kernel.
func TestBatchKernelZeroAllocSteadyState(t *testing.T) {
	for _, p := range []float64{0.001, 0.02} {
		cfg := AccuracyConfig{Distance: 11, P: p, Seed: 9, New: sparseUFFactory}
		k := newKernel(cfg, cfg.graph())
		k.reseed(cfg.Seed, 0)
		k.run(4 * BatchTrials) // reach the high-water mark
		if avg := testing.AllocsPerRun(20, func() { k.run(BatchTrials) }); avg != 0 {
			t.Fatalf("p=%g: batch kernel allocates %.1f times per batch in steady state", p, avg)
		}
	}
}

// TestPerfSmokeWeight0FastPath is the CI perf-smoke gate: at a weight-0
// dominated operating point the fused kernel must sustain a pinned
// throughput floor. The floor is ~10x below observed dev-machine numbers
// so only a real fast-path regression (not CI jitter) trips it. Enabled by
// AFS_PERF_SMOKE=1.
func TestPerfSmokeWeight0FastPath(t *testing.T) {
	if os.Getenv("AFS_PERF_SMOKE") == "" {
		t.Skip("set AFS_PERF_SMOKE=1 to run the pinned-floor perf smoke")
	}
	const floorTPS = 2_000_000.0
	cfg := AccuracyConfig{Distance: 3, P: 1e-4, Seed: 1, New: sparseUFFactory}
	k := newKernel(cfg, cfg.graph())
	k.reseed(cfg.Seed, 0)
	k.run(1 << 16) // warm
	const trials = 1 << 21
	start := time.Now()
	tally := k.run(trials)
	tps := float64(trials) / time.Since(start).Seconds()
	w0Frac := float64(tally.w0) / float64(trials)
	t.Logf("weight-0 fast path: %.2fM trials/s (w0 fraction %.4f)", tps/1e6, w0Frac)
	if w0Frac < 0.95 {
		t.Fatalf("operating point not weight-0 dominated (w0 %.3f); smoke floor meaningless", w0Frac)
	}
	if tps < floorTPS {
		t.Fatalf("weight-0 fast-path throughput %.0f trials/s below pinned floor %.0f", tps, floorTPS)
	}
}

// BenchmarkBatchKernel measures the fused pipeline at the paper's design
// point (d=11, p=0.001); ns/op is ns per trial. BENCH_5.json records this
// alongside the legacy scalar micro benchmark.
func BenchmarkBatchKernel(b *testing.B) {
	benchKernel(b, false)
}

// BenchmarkBatchKernelUntriaged isolates the triage layer's contribution.
func BenchmarkBatchKernelUntriaged(b *testing.B) {
	benchKernel(b, true)
}

func benchKernel(b *testing.B, disableTriage bool) {
	cfg := AccuracyConfig{
		Distance: 11, P: 0.001, Seed: 2, New: sparseUFFactory, DisableTriage: disableTriage,
	}
	k := newKernel(cfg, cfg.graph())
	k.reseed(cfg.Seed, 0)
	k.run(4 * BatchTrials)
	b.ReportAllocs()
	b.ResetTimer()
	k.run(uint64(b.N))
}
