package montecarlo

import (
	"testing"
)

// tileCfg returns a near-threshold point heavy enough that trials actually
// route through the tile engine (threshold 4, well under the defect counts
// p=0.06 produces at d=7).
func tileCfg(bitplane bool, tile bool) AccuracyConfig {
	return AccuracyConfig{
		Distance:       7,
		P:              0.06,
		Trials:         4000,
		Seed:           424242,
		Workers:        2,
		New:            ufFactory,
		BitPlane:       bitplane,
		TileParallel:   tile,
		TileSize:       3,
		TileWorkers:    3,
		TileMinDefects: 4,
	}
}

// TestTileParallelBitIdenticalRates is the Monte-Carlo half of the tile
// engine's determinism contract: routing the heavy tail through the
// tile-parallel engine changes no measured number — failures, defect
// totals, and every triage/peel tally are identical to the sequential run
// on both kernels.
func TestTileParallelBitIdenticalRates(t *testing.T) {
	for _, bitplane := range []bool{false, true} {
		seq := RunAccuracy(tileCfg(bitplane, false))
		tiled := RunAccuracy(tileCfg(bitplane, true))
		if tiled.FullDecodes == 0 {
			t.Fatalf("bitplane=%v: no trials reached the full decoder", bitplane)
		}
		seq.Elapsed, tiled.Elapsed = 0, 0
		if seq != tiled {
			t.Fatalf("bitplane=%v: tile-parallel run diverged from sequential\n seq  %+v\n tile %+v",
				bitplane, seq, tiled)
		}
	}
}

// TestTileParallelWorkerCountInvariance re-runs the tiled point with
// different tile worker counts; results must stay bit-identical (the
// engine's worker pool affects scheduling only).
func TestTileParallelWorkerCountInvariance(t *testing.T) {
	base := tileCfg(false, true)
	base.TileWorkers = 1
	want := RunAccuracy(base)
	for _, workers := range []int{2, 6} {
		cfg := base
		cfg.TileWorkers = workers
		got := RunAccuracy(cfg)
		want.Elapsed, got.Elapsed = 0, 0
		if got != want {
			t.Fatalf("TileWorkers=%d: result diverged\n got  %+v\n want %+v", workers, got, want)
		}
	}
}
