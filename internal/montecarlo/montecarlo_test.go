package montecarlo

import (
	"testing"

	"afs/internal/core"
	"afs/internal/lattice"
	"afs/internal/mwpm"
	"afs/internal/noise"
)

func ufFactory(g *lattice.Graph) Decoder   { return core.NewDecoder(g, core.Options{}) }
func mwpmFactory(g *lattice.Graph) Decoder { return mwpm.NewDecoder(g) }

func TestZeroNoiseNeverFails(t *testing.T) {
	r := RunAccuracy(AccuracyConfig{Distance: 5, P: 0, Trials: 1000, Seed: 1, New: ufFactory})
	if r.Failures != 0 {
		t.Fatalf("p=0 produced %d failures", r.Failures)
	}
	if r.LogicalErrorRate != 0 || r.MeanDefects != 0 {
		t.Fatalf("p=0 stats wrong: %+v", r)
	}
}

func TestDeterministicGivenSeedAndWorkers(t *testing.T) {
	cfg := AccuracyConfig{Distance: 5, P: 0.02, Trials: 20000, Seed: 7, Workers: 1, New: ufFactory}
	a := RunAccuracy(cfg)
	b := RunAccuracy(cfg)
	if a.Failures != b.Failures {
		t.Fatalf("same seed produced %d vs %d failures", a.Failures, b.Failures)
	}
}

// TestBelowThresholdSuppression: at p well below the UF threshold, larger
// distance must suppress the logical error rate (the defining property of
// Figure 8).
func TestBelowThresholdSuppression(t *testing.T) {
	r3 := RunAccuracy(AccuracyConfig{Distance: 3, P: 0.01, Trials: 60000, Seed: 3, New: ufFactory})
	r7 := RunAccuracy(AccuracyConfig{Distance: 7, P: 0.01, Trials: 60000, Seed: 3, New: ufFactory})
	if r7.LogicalErrorRate >= r3.LogicalErrorRate {
		t.Fatalf("no suppression: d=3 %.4g vs d=7 %.4g",
			r3.LogicalErrorRate, r7.LogicalErrorRate)
	}
	if r3.LogicalErrorRate == 0 {
		t.Fatal("d=3 at p=0.01 should show failures in 60k trials")
	}
}

// TestRepeated2DDegradesWithDistance reproduces the paper's Figure 3(b)
// effect: a 2-D decoder under noisy measurements gets WORSE with distance.
func TestRepeated2DDegradesWithDistance(t *testing.T) {
	r3 := RunRepeated2D(AccuracyConfig{Distance: 3, P: 0.01, Trials: 20000, Seed: 5, New: ufFactory})
	r7 := RunRepeated2D(AccuracyConfig{Distance: 7, P: 0.01, Trials: 20000, Seed: 5, New: ufFactory})
	if r7.LogicalErrorRate <= r3.LogicalErrorRate {
		t.Fatalf("repeated-2D should degrade with d: d=3 %.4g vs d=7 %.4g",
			r3.LogicalErrorRate, r7.LogicalErrorRate)
	}
}

// TestMWPMAtLeastAsAccurateAsUF2D: on the 2-D perfect-measurement problem,
// exact matching is the more accurate decoder (UF approximates it).
func TestMWPMAtLeastAsAccurateAsUF2D(t *testing.T) {
	uf := RunAccuracy(AccuracyConfig{Distance: 5, P: 0.03, Rounds: 1, Trials: 60000, Seed: 9, New: ufFactory})
	mw := RunAccuracy(AccuracyConfig{Distance: 5, P: 0.03, Rounds: 1, Trials: 60000, Seed: 9, New: mwpmFactory})
	// Allow Monte-Carlo noise: MWPM must not be meaningfully worse.
	if mw.LogicalErrorRate > uf.LogicalErrorRate*1.15 {
		t.Fatalf("MWPM (%.4g) worse than UF (%.4g)", mw.LogicalErrorRate, uf.LogicalErrorRate)
	}
}

func TestCIBracketsRate(t *testing.T) {
	r := RunAccuracy(AccuracyConfig{Distance: 3, P: 0.02, Trials: 30000, Seed: 11, New: ufFactory})
	if r.Failures == 0 {
		t.Fatal("expected failures at d=3, p=0.02")
	}
	if r.CI.Lo > r.LogicalErrorRate || r.CI.Hi < r.LogicalErrorRate {
		t.Fatalf("CI [%g,%g] does not bracket %g", r.CI.Lo, r.CI.Hi, r.LogicalErrorRate)
	}
}

func TestApplyCorrectionResidual(t *testing.T) {
	g := lattice.New2D(5)
	trial := noise.Trial{NetData: noise.NewBitset(g.NumDataQubits())}
	trial.NetData.Set(3)
	var residual noise.Bitset
	// Correction on the same qubit cancels the error.
	ApplyCorrection(g, []int32{g.SpatialEdge(3, 0)}, &trial, &residual)
	if residual.PopCount() != 0 {
		t.Fatal("matching correction left residual")
	}
	// Correction elsewhere leaves both.
	ApplyCorrection(g, []int32{g.SpatialEdge(7, 0)}, &trial, &residual)
	if residual.PopCount() != 2 || !residual.Get(3) || !residual.Get(7) {
		t.Fatal("residual wrong")
	}
}

func TestSweepAccuracyShape(t *testing.T) {
	rs := SweepAccuracy(AccuracyConfig{Trials: 1000, Seed: 1, New: ufFactory},
		[]int{3, 5}, []float64{0.01, 0.02})
	if len(rs) != 4 {
		t.Fatalf("sweep returned %d results", len(rs))
	}
	if rs[0].Distance != 3 || rs[0].P != 0.01 || rs[3].Distance != 5 || rs[3].P != 0.02 {
		t.Fatalf("sweep order wrong: %+v", rs)
	}
}

func TestWorkerSplitCoversAllTrials(t *testing.T) {
	// 7 trials over 3 workers must still run exactly 7 trials.
	r := RunAccuracy(AccuracyConfig{Distance: 3, P: 0.01, Trials: 7, Workers: 3, Seed: 1, New: ufFactory})
	if r.Trials != 7 {
		t.Fatalf("trials = %d", r.Trials)
	}
}
