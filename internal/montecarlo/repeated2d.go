package montecarlo

import (
	"runtime"
	"sync"
	"time"

	"afs/internal/lattice"
	"afs/internal/noise"
)

// RunRepeated2D reproduces the failure mode behind the paper's Figure 3(b):
// a decoder that assumes perfect measurements (it decodes each round's
// syndrome on the 2-dimensional graph) is run for cfg.Rounds consecutive
// rounds of noisy syndrome extraction. Because every syndrome bit is
// flipped with probability p, the decoder regularly miscorrects, and the
// logical error rate per logical cycle *increases* with code distance —
// the paper's motivation for processing d rounds at once.
//
// cfg.Rounds = 0 selects d rounds (one logical cycle); cfg.New builds the
// 2-D decoder applied every round.
func RunRepeated2D(cfg AccuracyConfig) AccuracyResult {
	start := time.Now()
	rounds := cfg.rounds()
	g := lattice.Cached2D(cfg.Distance)
	cut := g.NorthCutQubits()

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if uint64(workers) > cfg.Trials && cfg.Trials > 0 {
		workers = int(cfg.Trials)
	}
	if workers < 1 {
		workers = 1
	}

	failuresPer := make([]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		share := cfg.Trials / uint64(workers)
		if uint64(w) < cfg.Trials%uint64(workers) {
			share++
		}
		wg.Add(1)
		go func(w int, share uint64) {
			defer wg.Done()
			dec := cfg.New(g)
			// The sampler is used purely as a seeded random stream here;
			// fault placement is done round by round below.
			s := noise.NewSampler(g, cfg.P, cfg.Seed^0x2d2d, uint64(w)+1)
			rng := s.RNG()
			nq := g.NumDataQubits()
			data := noise.NewBitset(nq)
			marks := make([]bool, g.V)
			var defects []int32
			for i := uint64(0); i < share; i++ {
				data.Clear()
				for r := 0; r < rounds; r++ {
					// A round of data-qubit noise.
					noise.SparseBernoulli(rng, nq, cfg.P, func(q int) {
						data.Flip(q)
					})
					// True syndrome of the accumulated data error.
					defects = defects[:0]
					data.ForEachSet(func(q int) {
						e := g.SpatialEdge(int32(q), 0)
						ed := &g.Edges[e]
						if !g.IsBoundary(ed.U) {
							marks[ed.U] = !marks[ed.U]
						}
						if !g.IsBoundary(ed.V) {
							marks[ed.V] = !marks[ed.V]
						}
					})
					// Measurement errors flip observed syndrome bits.
					noise.SparseBernoulli(rng, g.V, cfg.P, func(v int) {
						marks[v] = !marks[v]
					})
					for v := int32(0); v < int32(g.V); v++ {
						if marks[v] {
							marks[v] = false
							defects = append(defects, v)
						}
					}
					// Decode on the 2-D graph and apply immediately.
					for _, e := range dec.Decode(defects) {
						ed := &g.Edges[e]
						if ed.Kind == lattice.Spatial {
							data.Flip(int(ed.Qubit))
						}
					}
				}
				if data.Parity(cut) {
					failuresPer[w]++
				}
			}
		}(w, share)
	}
	wg.Wait()

	var failures uint64
	for _, f := range failuresPer {
		failures += f
	}
	res := AccuracyResult{
		Distance:        cfg.Distance,
		Rounds:          rounds,
		P:               cfg.P,
		Trials:          cfg.Trials,
		TrialsRequested: cfg.Trials,
		Failures:        failures,
		Elapsed:         time.Since(start),
	}
	if cfg.Trials > 0 {
		res.LogicalErrorRate = float64(failures) / float64(cfg.Trials)
	}
	res.CI = rateInterval(failures, cfg.Trials, cfg.Seed^0x3b3b)
	return res
}
