package montecarlo

import (
	"math"
	"os"
	"testing"
	"time"

	"afs/internal/core"
	"afs/internal/noise"
)

// runLoggedBP executes n trials through the bit-plane kernel with the
// per-trial failure log enabled, chunk-seeded exactly like the engine.
func runLoggedBP(cfg AccuracyConfig, n, chunk uint64) []bool {
	k := newBPKernel(cfg, cfg.graph())
	k.failLog = make([]bool, 0, n)
	for c := uint64(0); c*chunk < n; c++ {
		lo, hi := c*chunk, (c+1)*chunk
		if hi > n {
			hi = n
		}
		k.reseed(cfg.Seed, c)
		k.run(hi - lo)
	}
	return k.failLog
}

// The bit-plane analogue of TestTriagedBitIdenticalToFullPath: at every
// (d, p) of the tier-1 sweep, the lane fast paths (W0/W1/Paired plane
// algebra, captured-pair W2, gathered scalar triage) must produce
// bit-identical logical outcomes, trial for trial, to routing every lane
// through the full decoder on the same sampled planes.
func TestBitPlaneTriagedBitIdenticalToFullPath(t *testing.T) {
	const trials, chunk = 4096, 1024
	for _, d := range []int{3, 5, 7, 9, 11} {
		for _, p := range []float64{0.001, 0.003, 0.01} {
			for name, factory := range map[string]Factory{
				"uf":        ufFactory,
				"uf-sparse": sparseUFFactory,
			} {
				cfg := AccuracyConfig{Distance: d, P: p, Seed: 42, New: factory, BitPlane: true}
				triaged := runLoggedBP(cfg, trials, chunk)
				cfg.DisableTriage = true
				full := runLoggedBP(cfg, trials, chunk)
				if len(triaged) != trials || len(full) != trials {
					t.Fatalf("d=%d p=%g %s: logged %d/%d of %d trials",
						d, p, name, len(triaged), len(full), trials)
				}
				for i := range triaged {
					if triaged[i] != full[i] {
						t.Fatalf("d=%d p=%g %s: trial %d: triaged=%v full=%v",
							d, p, name, i, triaged[i], full[i])
					}
				}
			}
		}
	}
	// MWPM cross-check at small d (its decode is much slower).
	for _, d := range []int{3, 5} {
		cfg := AccuracyConfig{Distance: d, P: 0.01, Seed: 23, New: mwpmFactory, BitPlane: true}
		triaged := runLoggedBP(cfg, 2048, 512)
		cfg.DisableTriage = true
		full := runLoggedBP(cfg, 2048, 512)
		for i := range triaged {
			if triaged[i] != full[i] {
				t.Fatalf("d=%d mwpm: trial %d: triaged=%v full=%v", d, i, triaged[i], full[i])
			}
		}
	}
}

// The bit-plane kernel must reproduce, trial for trial, the straightforward
// per-lane scalar resolution of the SAME plane-sampled trials: extract each
// lane's sorted defect list, run it through scalar triage, punt to the full
// decoder. This pins every piece of the lane machinery — weight masks,
// north parity, captured W2 pairs, the Paired rule, and the gather scan —
// against the code path the repo already trusts. The reference deliberately
// decodes punted lanes whole (no PeelResidual), so agreement here also
// differentially validates the kernel's partial-residual peel against
// undecomposed decodes on exactly the syndrome population the kernel sees.
func TestBitPlaneKernelMatchesPerLaneReference(t *testing.T) {
	for _, tc := range []struct {
		d int
		p float64
	}{{3, 0.01}, {5, 0.003}, {7, 0.001}, {5, 0.02}, {9, 0.005}} {
		const trials, chunk = 3072, 1024
		cfg := AccuracyConfig{Distance: tc.d, P: tc.p, Seed: 7, New: ufFactory, BitPlane: true}
		got := runLoggedBP(cfg, trials, chunk)

		g := cfg.graph()
		dec := ufFactory(g)
		tri := core.NewTriage(g)
		var pg noise.PlaneGroup
		var buf []int32
		var want []bool
		for c := uint64(0); c*chunk < trials; c++ {
			s := noise.NewPlaneSampler(g, tc.p, cfg.Seed, c, g.NorthCutQubits())
			cutEdge := s.CutEdges()
			remaining := uint64(chunk)
			if c*chunk+remaining > trials {
				remaining = trials - c*chunk
			}
			for remaining > 0 {
				kk := 64
				if remaining < 64 {
					kk = int(remaining)
				}
				s.SampleGroup(&pg, kk)
				for lane := 0; lane < kk; lane++ {
					buf = pg.AppendLaneDefects(lane, buf[:0])
					par := pg.CutParity&(1<<uint(lane)) != 0
					if _, p, ok := tri.ClassifySyndrome(buf); ok {
						want = append(want, par != p)
					} else {
						for _, e := range dec.Decode(buf) {
							if cutEdge[e] {
								par = !par
							}
						}
						want = append(want, par)
					}
				}
				remaining -= uint64(kk)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("d=%d p=%g: logged %d trials, reference %d", tc.d, tc.p, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("d=%d p=%g: trial %d: kernel=%v reference=%v", tc.d, tc.p, i, got[i], want[i])
			}
		}
	}
}

// Engine determinism: bit-plane results must be identical across worker
// counts, exactly like the scalar kernel's contract.
func TestBitPlaneEngineWorkerInvariance(t *testing.T) {
	base := AccuracyConfig{
		Distance: 5, P: 0.005, Trials: 30000, Seed: 77, New: sparseUFFactory, BitPlane: true,
	}
	base.Workers = 1
	one := RunAccuracy(base)
	base.Workers = 4
	four := RunAccuracy(base)
	if one.Failures != four.Failures || one.Trials != four.Trials {
		t.Fatalf("worker count changed bit-plane results: 1w=%d/%d 4w=%d/%d",
			one.Failures, one.Trials, four.Failures, four.Trials)
	}
}

// Tallies: the triage classes must partition the trials, the bit-plane
// fast/gathered lane split must partition them too, and both sets of
// fractions must sum to 1 (the satellite-1 invariant extended to the
// bit-plane counters).
func TestBitPlaneTalliesPartitionTrials(t *testing.T) {
	res := RunAccuracy(AccuracyConfig{
		Distance: 5, P: 0.003, Trials: 20000, Seed: 5, Workers: 2, New: sparseUFFactory,
		BitPlane: true,
	})
	if sum := res.TriageW0 + res.TriageW1 + res.TriageW2 + res.TriageMulti + res.FullDecodes; sum != res.Trials {
		t.Fatalf("triage classes sum to %d, trials %d", sum, res.Trials)
	}
	if sum := res.BitPlaneFastLanes + res.BitPlaneGatheredLanes; sum != res.Trials {
		t.Fatalf("bit-plane lanes sum to %d, trials %d", sum, res.Trials)
	}
	if res.BitPlaneFastLanes == 0 || res.BitPlaneGatheredLanes == 0 {
		t.Fatalf("expected both lane tiers to fire at d=5 p=0.003: %+v", res)
	}
	w0, w1, w2, multi, full := res.TriageFractions()
	if s := w0 + w1 + w2 + multi + full; math.Abs(s-1) > 1e-9 {
		t.Fatalf("triage fractions sum to %g, want 1", s)
	}
	fast, gathered := res.BitPlaneFractions()
	if s := fast + gathered; math.Abs(s-1) > 1e-9 {
		t.Fatalf("bit-plane fractions sum to %g, want 1", s)
	}
}

// Seeded distribution equivalence at the engine level: the bit-plane and
// scalar kernels sample from the same per-site Bernoulli distribution, so
// their measured logical error rates over a large fixed-seed run must
// agree within tight Monte-Carlo tolerance (~6 sigma; both runs are
// deterministic, so this never flakes).
func TestBitPlaneLogicalRateMatchesScalarKernel(t *testing.T) {
	base := AccuracyConfig{
		Distance: 3, P: 0.01, Trials: 300000, Seed: 31, Workers: 4, New: sparseUFFactory,
	}
	scalar := RunAccuracy(base)
	base.BitPlane = true
	base.Seed = 77 // independent stream on purpose: this is a distribution check
	plane := RunAccuracy(base)
	rs, rp := scalar.LogicalErrorRate, plane.LogicalErrorRate
	// Pooled ~6-sigma bound on the difference of two binomial rates.
	n := float64(base.Trials)
	pool := (rs + rp) / 2
	sigma := math.Sqrt(2 * pool * (1 - pool) / n)
	if math.Abs(rs-rp) > 6*sigma {
		t.Fatalf("logical error rates diverge: scalar %.5g bit-plane %.5g (6σ=%.5g)",
			rs, rp, 6*sigma)
	}
	if math.Abs(scalar.MeanDefects-plane.MeanDefects)/scalar.MeanDefects > 0.02 {
		t.Fatalf("mean defects diverge: scalar %.4f bit-plane %.4f",
			scalar.MeanDefects, plane.MeanDefects)
	}
}

// Steady-state bit-plane decoding must not allocate. The measured pass
// replays the warmed chunk (per-lane gather lists grow to the high-water
// mark of the trials they have seen; replaying makes "steady state"
// deterministic rather than hostage to extreme-value record growth).
func TestBitPlaneKernelZeroAllocSteadyState(t *testing.T) {
	for _, p := range []float64{0.001, 0.02} {
		cfg := AccuracyConfig{Distance: 11, P: p, Seed: 9, New: sparseUFFactory, BitPlane: true}
		k := newBPKernel(cfg, cfg.graph())
		k.reseed(cfg.Seed, 0)
		k.run(4 * BatchTrials) // reach the high-water mark
		avg := testing.AllocsPerRun(20, func() {
			k.reseed(cfg.Seed, 0)
			k.run(BatchTrials)
		})
		if avg != 0 {
			t.Fatalf("p=%g: bit-plane kernel allocates %.1f times per batch in steady state", p, avg)
		}
	}
}

// TestPerfSmokeBitPlaneKernel pins the bit-plane kernel's floors at the
// paper's design point (d=11, p=1e-3) — the tentpole's speedup claim lives
// at this point, so a regression that silently falls back to scalar speed
// trips here. Three floors: raw throughput (set ~2x under dev-machine
// numbers, so only real regressions — not CI jitter — fail), the
// machine-independent fast-lane fraction (dev machines measure ~0.96; a
// broken Matched/Chain4/SinglesOK/duo class drops it far below the 0.90
// floor), and the machine-independent residual-peel fraction — the share
// of full-decoder visits that peeling resolved or shrank (dev machines
// measure ~0.94; a broken PeelResidual certificate or kernel wiring drops
// it far below 0.60). Enabled by AFS_PERF_SMOKE=1.
func TestPerfSmokeBitPlaneKernel(t *testing.T) {
	if os.Getenv("AFS_PERF_SMOKE") == "" {
		t.Skip("set AFS_PERF_SMOKE=1 to run the pinned-floor perf smoke")
	}
	const floorTPS = 1_500_000.0
	const floorFastFrac = 0.90
	const floorPeelFrac = 0.60
	cfg := AccuracyConfig{Distance: 11, P: 1e-3, Seed: 1, New: sparseUFFactory, BitPlane: true}
	k := newBPKernel(cfg, cfg.graph())
	k.reseed(cfg.Seed, 0)
	k.run(1 << 16) // warm
	const trials = 1 << 21
	start := time.Now()
	tally := k.run(trials)
	tps := float64(trials) / time.Since(start).Seconds()
	fastFrac := float64(tally.bpFast) / float64(trials)
	peelFrac := float64(tally.residual+tally.peelResolved) / float64(tally.full+tally.peelResolved)
	t.Logf("bit-plane kernel: %.2fM trials/s (fast-lane fraction %.4f, peel fraction %.4f)",
		tps/1e6, fastFrac, peelFrac)
	if tally.bpFast+tally.bpGathered != trials {
		t.Fatalf("lane tallies %d+%d do not partition %d trials", tally.bpFast, tally.bpGathered, trials)
	}
	if tps < floorTPS {
		t.Fatalf("bit-plane throughput %.0f trials/s below pinned floor %.0f", tps, floorTPS)
	}
	if fastFrac < floorFastFrac {
		t.Fatalf("fast-lane fraction %.4f below pinned floor %.2f", fastFrac, floorFastFrac)
	}
	if peelFrac < floorPeelFrac {
		t.Fatalf("residual-peel fraction %.4f below pinned floor %.2f", peelFrac, floorPeelFrac)
	}
}

// BenchmarkBitPlaneKernel measures the bit-plane pipeline at the paper's
// design point (d=11, p=0.001); ns/op is ns per trial. BENCH_6.json
// records this against the scalar batch kernel's 515 ns/trial.
func BenchmarkBitPlaneKernel(b *testing.B) {
	benchBPKernel(b, false, false)
}

// BenchmarkBitPlaneKernelUntriaged isolates the lane fast paths'
// contribution.
func BenchmarkBitPlaneKernelUntriaged(b *testing.B) {
	benchBPKernel(b, true, false)
}

// BenchmarkBitPlaneKernelNoPeel ablates only the partial-residual peel —
// the same-run baseline the BENCH_7 comparison uses (it is the BENCH_6
// kernel's routing: punted lanes decode whole).
func BenchmarkBitPlaneKernelNoPeel(b *testing.B) {
	benchBPKernel(b, false, true)
}

func benchBPKernel(b *testing.B, disableTriage, disablePeel bool) {
	cfg := AccuracyConfig{
		Distance: 11, P: 0.001, Seed: 2, New: sparseUFFactory,
		BitPlane: true, DisableTriage: disableTriage, DisablePeel: disablePeel,
	}
	k := newBPKernel(cfg, cfg.graph())
	k.reseed(cfg.Seed, 0)
	k.run(4 * BatchTrials)
	b.ReportAllocs()
	b.ResetTimer()
	k.run(uint64(b.N))
}
