package mwpm

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"afs/internal/core"
	"afs/internal/lattice"
	"afs/internal/noise"
)

// bruteForceCost enumerates every partition of the defects into pairs and
// boundary singletons and returns the minimum total cost. It is the oracle
// the DP is validated against.
func bruteForceCost(d *Decoder, n int, used uint32) int32 {
	if used == uint32(1<<uint(n))-1 {
		return 0
	}
	i := 0
	for used&(1<<uint(i)) != 0 {
		i++
	}
	best := d.bnd[i] + bruteForceCost(d, n, used|1<<uint(i))
	for j := i + 1; j < n; j++ {
		if used&(1<<uint(j)) != 0 {
			continue
		}
		c := d.w[i*n+j] + bruteForceCost(d, n, used|1<<uint(i)|1<<uint(j))
		if c < best {
			best = c
		}
	}
	return best
}

// correctionCost measures the length (edge count) of an emitted correction.
func correctionCost(corr []int32) int32 { return int32(len(corr)) }

func TestExactDPMatchesBruteForce(t *testing.T) {
	g := lattice.New3D(5, 5)
	dec := NewDecoder(g)
	rng := rand.New(rand.NewPCG(7, 3))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.IntN(9)
		seen := map[int32]bool{}
		var defects []int32
		for len(defects) < n {
			v := int32(rng.IntN(g.V))
			if !seen[v] {
				seen[v] = true
				defects = append(defects, v)
			}
		}
		corr := dec.Decode(defects)
		// The emitted chain length must equal the optimal matching cost.
		dec.prepare(defects)
		want := bruteForceCost(dec, n, 0)
		if got := correctionCost(corr); got != want {
			t.Fatalf("trial %d: correction cost %d != optimal matching cost %d (defects %v)",
				trial, got, want, defects)
		}
	}
}

func TestCorrectionReproducesSyndrome(t *testing.T) {
	for _, build := range []func() *lattice.Graph{
		func() *lattice.Graph { return lattice.New2D(5) },
		func() *lattice.Graph { return lattice.New2D(9) },
		func() *lattice.Graph { return lattice.New3D(5, 5) },
	} {
		g := build()
		dec := NewDecoder(g)
		s := noise.NewSampler(g, 0.02, 11, 13)
		var trial noise.Trial
		for i := 0; i < 500; i++ {
			s.Sample(&trial)
			corr := dec.Decode(trial.Defects)
			got := core.SyndromeOf(g, corr)
			want := trial.Defects
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v: syndrome mismatch\n got  %v\n want %v", g, got, want)
			}
		}
	}
}

func TestGreedyFallbackReproducesSyndrome(t *testing.T) {
	g := lattice.New3D(5, 5)
	dec := NewDecoder(g)
	dec.MaxExact = 2 // force the greedy path for anything bigger
	s := noise.NewSampler(g, 0.03, 21, 23)
	var trial noise.Trial
	greedyUsed := false
	for i := 0; i < 500; i++ {
		s.Sample(&trial)
		corr := dec.Decode(trial.Defects)
		got := core.SyndromeOf(g, corr)
		want := trial.Defects
		if len(trial.Defects) > 2 {
			greedyUsed = true
		}
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("greedy syndrome mismatch\n got  %v\n want %v", got, want)
		}
	}
	if !greedyUsed || dec.Stats.GreedyInstances == 0 {
		t.Fatal("test never exercised the greedy fallback")
	}
}

func TestGreedyNearOptimal(t *testing.T) {
	// The refined greedy matcher should rarely be worse than optimal and
	// never invalid; quantify the gap on random instances.
	g := lattice.New3D(7, 7)
	exact := NewDecoder(g)
	greedy := NewDecoder(g)
	greedy.MaxExact = 1 // every multi-defect instance takes the greedy path
	rng := rand.New(rand.NewPCG(5, 9))
	worse := 0
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.IntN(10)
		seen := map[int32]bool{}
		var defects []int32
		for len(defects) < n {
			v := int32(rng.IntN(g.V))
			if !seen[v] {
				seen[v] = true
				defects = append(defects, v)
			}
		}
		ce := correctionCost(exact.Decode(defects))
		cg := correctionCost(greedy.Decode(defects))
		if cg < ce {
			t.Fatalf("greedy beat the exact optimum: %d < %d", cg, ce)
		}
		if cg > ce {
			worse++
		}
	}
	if worse > 40 { // >20% suboptimal would indicate a broken refinement
		t.Fatalf("greedy suboptimal on %d/200 instances", worse)
	}
}

func TestSingleDefectMatchesNearestBoundary(t *testing.T) {
	g := lattice.New2D(7)
	dec := NewDecoder(g)
	for r := 0; r < g.Distance-1; r++ {
		corr := dec.Decode([]int32{g.VertexID(r, 3, 0)})
		want := r + 1
		if s := g.Distance - 1 - r; s < want {
			want = s
		}
		if len(corr) != want {
			t.Fatalf("defect at row %d corrected with %d edges, want %d", r, len(corr), want)
		}
	}
}

func TestDecodeEmpty(t *testing.T) {
	dec := NewDecoder(lattice.New2D(5))
	if corr := dec.Decode(nil); len(corr) != 0 {
		t.Fatalf("empty syndrome produced correction %v", corr)
	}
}

// TestMWPMCorrectsMinimumWeightProperty: any error of weight at most
// floor((d-1)/2) is corrected without logical error.
func TestMWPMCorrectsLowWeightErrors(t *testing.T) {
	g := lattice.New2D(5)
	dec := NewDecoder(g)
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		k := 1 + rng.IntN(2) // weight 1 or 2 on a distance-5 code
		var edges []int32
		seen := map[int32]bool{}
		for len(edges) < k {
			q := int32(rng.IntN(g.NumDataQubits()))
			if !seen[q] {
				seen[q] = true
				edges = append(edges, g.SpatialEdge(q, 0))
			}
		}
		defects := core.SyndromeOf(g, edges)
		corr := dec.Decode(defects)
		var residual noise.Bitset
		residual.Resize(g.NumDataQubits())
		for _, e := range edges {
			residual.Flip(int(g.Edges[e].Qubit))
		}
		for _, e := range corr {
			if g.Edges[e].Kind == lattice.Spatial {
				residual.Flip(int(g.Edges[e].Qubit))
			}
		}
		return !residual.Parity(g.NorthCutQubits())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecode2D(b *testing.B) {
	g := lattice.New2D(11)
	dec := NewDecoder(g)
	s := noise.NewSampler(g, 5e-3, 1, 1)
	var trial noise.Trial
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(&trial)
		dec.Decode(trial.Defects)
	}
}

func BenchmarkDecode3D(b *testing.B) {
	g := lattice.New3D(7, 7)
	dec := NewDecoder(g)
	s := noise.NewSampler(g, 1e-3, 2, 1)
	var trial noise.Trial
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(&trial)
		dec.Decode(trial.Defects)
	}
}
