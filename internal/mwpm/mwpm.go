// Package mwpm implements the Minimum-Weight Perfect-Matching decoder
// [Dennis et al., J. Math. Phys. 43, 4452 (2002)], the accuracy baseline
// the paper measures Figure 3 with.
//
// Decoding as matching. Each defect (non-trivial detection event) must be
// paired either with another defect or with the code boundary; the decoder
// picks the pairing minimizing the total length of the implied error
// chains. On the surface-code grid the chain length between two defects is
// the L1 distance between their coordinates, and a defect may instead be
// matched to the nearest boundary at its boundary distance. Pairing defect
// i with defect j costs min(dist(i,j), bnd(i)+bnd(j)) — routing both chains
// to the boundary is sometimes cheaper than connecting them directly — and
// leaving i alone costs bnd(i).
//
// Exact matching. Rather than a Blossom implementation, the decoder
// computes the exact optimum with dynamic programming over defect subsets
// (O(2^n · n) time). The evaluation only ever runs MWPM on single-round
// 2-D syndromes (Fig. 3), whose defect counts are Poisson with mean ~4p·n_q
// — a handful; the DP is exact for every instance up to MaxExact defects
// and the probability of exceeding that is negligible (< 1e-9 at the
// figure's parameters). Larger instances fall back to a greedy matcher
// with pair-swap refinement, and the fallback count is reported so any run
// where it matters is visible.
package mwpm

import (
	"math/bits"

	"afs/internal/lattice"
)

// boundaryChoice marks "match this defect to the boundary" in the DP
// reconstruction table.
const boundaryChoice = 0xff

// DefaultMaxExact bounds the exact-DP instance size. 2^20 int32 cost
// entries plus choice bytes is ~5.2 MB, allocated only when an instance
// that large appears.
const DefaultMaxExact = 20

// Stats counts how instances were solved.
type Stats struct {
	ExactInstances  uint64
	GreedyInstances uint64
	MaxDefects      int
}

// Decoder is a reusable MWPM decoder bound to one decoding graph. Not safe
// for concurrent use.
type Decoder struct {
	G *lattice.Graph
	// MaxExact is the largest defect count solved exactly; 0 selects
	// DefaultMaxExact.
	MaxExact int
	Stats    Stats

	rows, cols, lays []int16 // defect coordinates
	bnd              []int32 // boundary distances
	w                []int32 // pair costs, n*n row-major
	dp               []int32
	choice           []uint8
	partner          []int16 // greedy fallback matching
	correction       []int32
}

// NewDecoder builds an MWPM decoder for g.
func NewDecoder(g *lattice.Graph) *Decoder {
	return &Decoder{G: g, MaxExact: DefaultMaxExact}
}

// Decode returns the correction for the given defects as edge indices into
// G.Edges. The returned slice is reused by the next call.
func (d *Decoder) Decode(defects []int32) []int32 {
	d.correction = d.correction[:0]
	n := len(defects)
	if n == 0 {
		return d.correction
	}
	if n > d.Stats.MaxDefects {
		d.Stats.MaxDefects = n
	}
	d.prepare(defects)
	maxExact := d.MaxExact
	if maxExact <= 0 {
		maxExact = DefaultMaxExact
	}
	if n <= maxExact {
		d.Stats.ExactInstances++
		d.solveExact(n)
	} else {
		d.Stats.GreedyInstances++
		d.solveGreedy(n)
	}
	return d.correction
}

// prepare caches defect coordinates, boundary distances, and the pairwise
// cost matrix.
func (d *Decoder) prepare(defects []int32) {
	n := len(defects)
	d.rows = grow16(d.rows, n)
	d.cols = grow16(d.cols, n)
	d.lays = grow16(d.lays, n)
	d.bnd = grow32(d.bnd, n)
	d.w = grow32(d.w, n*n)
	for i, v := range defects {
		r, c, t := d.G.VertexCoords(v)
		d.rows[i], d.cols[i], d.lays[i] = int16(r), int16(c), int16(t)
		d.bnd[i] = int32(d.G.BoundaryDistance(v))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist := absI32(int32(d.rows[i])-int32(d.rows[j])) +
				absI32(int32(d.cols[i])-int32(d.cols[j])) +
				absI32(int32(d.lays[i])-int32(d.lays[j]))
			via := d.bnd[i] + d.bnd[j]
			if via < dist {
				dist = via
			}
			d.w[i*n+j] = dist
			d.w[j*n+i] = dist
		}
	}
}

// solveExact runs the subset DP and emits the optimal correction.
func (d *Decoder) solveExact(n int) {
	size := 1 << uint(n)
	d.dp = grow32(d.dp, size)
	if cap(d.choice) < size {
		d.choice = make([]uint8, size)
	}
	choice := d.choice[:size]
	dp := d.dp[:size]
	dp[0] = 0
	for s := 1; s < size; s++ {
		i := bits.TrailingZeros(uint(s))
		rest := s &^ (1 << uint(i))
		best := dp[rest] + d.bnd[i]
		bestC := uint8(boundaryChoice)
		for t := rest; t != 0; t &= t - 1 {
			j := bits.TrailingZeros(uint(t))
			cost := dp[rest&^(1<<uint(j))] + d.w[i*n+j]
			if cost < best {
				best = cost
				bestC = uint8(j)
			}
		}
		dp[s] = best
		choice[s] = bestC
	}
	for s := size - 1; s != 0; {
		i := bits.TrailingZeros(uint(s))
		if choice[s] == boundaryChoice {
			d.emitBoundary(i)
			s &^= 1 << uint(i)
		} else {
			j := int(choice[s])
			d.emitPair(i, j)
			s &^= 1<<uint(i) | 1<<uint(j)
		}
	}
}

// solveGreedy matches defects by repeatedly taking the cheapest available
// option (pair or boundary), then improves the result with pair-swap
// refinement until no 2-exchange lowers the cost.
func (d *Decoder) solveGreedy(n int) {
	d.partner = grow16(d.partner, n)
	partner := d.partner[:n]
	for i := range partner {
		partner[i] = -2 // unmatched
	}
	remaining := n
	for remaining > 0 {
		bestCost := int32(1 << 30)
		bi, bj := -1, -1
		for i := 0; i < n; i++ {
			if partner[i] != -2 {
				continue
			}
			if d.bnd[i] < bestCost {
				bestCost, bi, bj = d.bnd[i], i, -1
			}
			for j := i + 1; j < n; j++ {
				if partner[j] != -2 {
					continue
				}
				if c := d.w[i*n+j]; c < bestCost {
					bestCost, bi, bj = c, i, j
				}
			}
		}
		if bj < 0 {
			partner[bi] = -1
			remaining--
		} else {
			partner[bi], partner[bj] = int16(bj), int16(bi)
			remaining -= 2
		}
	}
	d.refine(n, partner)
	for i := 0; i < n; i++ {
		switch {
		case partner[i] == -1:
			d.emitBoundary(i)
		case int(partner[i]) > i:
			d.emitPair(i, int(partner[i]))
		}
	}
}

// refine applies 2-exchange improvements: for every pair of matched
// structures, try the alternative pairings and keep any strict improvement.
func (d *Decoder) refine(n int, partner []int16) {
	cost := func(i int) int32 {
		if partner[i] == -1 {
			return d.bnd[i]
		}
		return d.w[i*n+int(partner[i])]
	}
	improved := true
	for iter := 0; improved && iter < n; iter++ {
		improved = false
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if int(partner[i]) == j {
					continue
				}
				pi, pj := partner[i], partner[j]
				old := cost(i) + cost(j)
				// Option: pair i with j, and pair (or boundary) the
				// leftovers with each other.
				leftover := int32(0)
				switch {
				case pi >= 0 && pj >= 0:
					leftover = d.w[int(pi)*n+int(pj)]
				case pi >= 0:
					leftover = d.bnd[pi]
				case pj >= 0:
					leftover = d.bnd[pj]
				}
				if d.w[i*n+j]+leftover < old {
					if pi >= 0 && pj >= 0 {
						partner[pi], partner[pj] = pj, pi
					} else if pi >= 0 {
						partner[pi] = -1
					} else if pj >= 0 {
						partner[pj] = -1
					}
					partner[i], partner[j] = int16(j), int16(i)
					improved = true
				}
			}
		}
	}
}

// emitPair appends the correction chain between defects i and j; when
// routing both to the boundary is cheaper, it does that instead (matching
// the cost the solvers minimized).
func (d *Decoder) emitPair(i, j int) {
	dist := absI32(int32(d.rows[i])-int32(d.rows[j])) +
		absI32(int32(d.cols[i])-int32(d.cols[j])) +
		absI32(int32(d.lays[i])-int32(d.lays[j]))
	if d.bnd[i]+d.bnd[j] < dist {
		d.emitBoundary(i)
		d.emitBoundary(j)
		return
	}
	r1, c1, t1 := int(d.rows[i]), int(d.cols[i]), int(d.lays[i])
	r2, c2, t2 := int(d.rows[j]), int(d.cols[j]), int(d.lays[j])
	d.emitPath(r1, c1, t1, r2, c2, t2)
}

// emitPath walks from (r1,c1,t1) to (r2,c2,t2): rows first (vertical data
// qubits in column c1), then columns (horizontal qubits in row r2), then
// layers (temporal edges). Any monotone path has minimal length on this
// grid.
func (d *Decoder) emitPath(r1, c1, t1, r2, c2, t2 int) {
	g := d.G
	dr := 1
	if r2 < r1 {
		dr = -1
	}
	for r := r1; r != r2; r += dr {
		k := r + 1 // edge between ancilla rows r and r+1
		if dr < 0 {
			k = r
		}
		d.correction = append(d.correction, g.SpatialEdge(g.VerticalQubit(k, c1), t1))
	}
	dc := 1
	if c2 < c1 {
		dc = -1
	}
	for c := c1; c != c2; c += dc {
		h := c // horizontal qubit between columns c and c+1
		if dc < 0 {
			h = c - 1
		}
		d.correction = append(d.correction, g.SpatialEdge(g.HorizontalQubit(r2, h), t1))
	}
	dt := 1
	if t2 < t1 {
		dt = -1
	}
	for t := t1; t != t2; t += dt {
		tt := t // temporal edge between layers t and t+1
		if dt < 0 {
			tt = t - 1
		}
		d.correction = append(d.correction, g.TemporalEdge(r2, c2, tt))
	}
}

// emitBoundary appends the chain from defect i to its nearest boundary
// (north/south code boundary, or the temporal window boundary when that is
// closer).
func (d *Decoder) emitBoundary(i int) {
	g := d.G
	r, c, t := int(d.rows[i]), int(d.cols[i]), int(d.lays[i])
	north := r + 1
	south := g.Distance - 1 - r
	if g.TimeBoundary && g.Rounds-t < north && g.Rounds-t < south {
		for tt := t; tt < g.Rounds; tt++ {
			d.correction = append(d.correction, g.TemporalEdge(r, c, tt))
		}
		return
	}
	if north <= south {
		for k := r; k >= 0; k-- {
			d.correction = append(d.correction, g.SpatialEdge(g.VerticalQubit(k, c), t))
		}
	} else {
		for k := r + 1; k <= g.Distance-1; k++ {
			d.correction = append(d.correction, g.SpatialEdge(g.VerticalQubit(k, c), t))
		}
	}
}

func absI32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}

func grow16(s []int16, n int) []int16 {
	if cap(s) < n {
		return make([]int16, n)
	}
	return s[:n]
}

func grow32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
