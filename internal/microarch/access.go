package microarch

import (
	"afs/internal/core"
	"afs/internal/lattice"
)

// AccessModel is the second, finer-grained latency model: instead of the
// paper's closed-form Eqs. (2)-(3) it charges the memory accesses the
// decode actually performed — boundary-list visits and half-edge
// read-modify-writes in the STM, Root/Size table operations, the DFS
// Engine's row scan, and the stack traffic — at AccessNS per access.
//
// Its main purpose is the Zero Data Register ablation: with the ZDR, the
// DFS Engine reads only the STM rows that hold cluster state
// (DecodeStats.TouchedRows); without it, every row of the memory is
// scanned every decode. The difference is the ZDR's entire value
// proposition (paper §IV-C), invisible to the closed-form model.
//
// TouchedRows slightly undercounts rows occupied by vertices absorbed in a
// cluster's final growth sweep, so the model is a (tight) lower bound on
// the ZDR-enabled scan cost.
type AccessModel struct {
	// STMRows is the number of 32-bit vertex rows in the STM,
	// ceil(V/WordBits); set by NewAccessModel.
	STMRows int
	// DisableZDR makes the DFS Engine scan the full STM instead of only
	// occupied rows (ablation).
	DisableZDR bool
	// AccessNS overrides the per-access latency; 0 selects AccessNS.
	AccessNS float64
	// DisablePipeline serializes DFS and CORR (no alternate edge stack).
	DisablePipeline bool
}

// NewAccessModel builds the model for graph g.
func NewAccessModel(g *lattice.Graph) AccessModel {
	return AccessModel{STMRows: (g.V + WordBits - 1) / WordBits}
}

// Latency charges the decode's counted accesses per stage.
func (m AccessModel) Latency(st *core.DecodeStats) Breakdown {
	a := m.AccessNS
	if a <= 0 {
		a = AccessNS
	}
	// Gr-Gen: one row read per boundary-list visit, a read-modify-write
	// (2 accesses) per half-edge growth increment, plus Union-Find table
	// traffic.
	gg := float64(st.GrowthVisits) +
		2*float64(st.GrowthIncrements) +
		float64(st.RootTableAccesses+st.SizeTableAccesses)

	// DFS Engine: the ZDR-directed row scan, then one STM read per cluster
	// vertex and one edge-stack write per spanning-tree edge.
	scan := st.TouchedRows
	if m.DisableZDR {
		scan = m.STMRows
	}
	vertices := 0
	lastV := 0
	for _, c := range st.Clusters {
		vertices += c.Vertices
		lastV = c.Vertices
	}
	dfs := float64(scan) + float64(vertices) + float64(st.SupportEdges)

	// CORR Engine: one edge-stack pop per tree edge plus one correction
	// write per emitted edge; syndrome state lives in hold registers.
	corr := float64(st.SupportEdges) + float64(st.CorrectionEdges)

	b := Breakdown{GrGen: gg * a, DFS: dfs * a, Corr: corr * a}
	if m.DisablePipeline {
		b.Exposed = b.GrGen + b.DFS + b.Corr
	} else {
		// Only the last cluster's peel is exposed behind the double edge
		// stack; approximate its share of CORR by its vertex fraction.
		last := 0.0
		if vertices > 0 {
			last = b.Corr * float64(lastV) / float64(vertices)
		}
		b.Exposed = b.GrGen + b.DFS + last
	}
	return b
}
