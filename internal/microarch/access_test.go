package microarch

import (
	"testing"

	"afs/internal/core"
	"afs/internal/lattice"
	"afs/internal/noise"
)

func TestAccessModelBasics(t *testing.T) {
	g := lattice.New3DWindow(11, 11)
	m := NewAccessModel(g)
	if m.STMRows != (g.V+31)/32 {
		t.Fatalf("STM rows = %d", m.STMRows)
	}
	dec := core.NewDecoder(g, core.Options{})
	s := noise.NewSampler(g, 1e-3, 41, 1)
	var trial noise.Trial
	for i := 0; i < 500; i++ {
		s.Sample(&trial)
		dec.Decode(trial.Defects)
		b := m.Latency(&dec.Stats)
		if b.GrGen < 0 || b.DFS < 0 || b.Corr < 0 {
			t.Fatalf("negative stage latency: %+v", b)
		}
		if len(trial.Defects) == 0 {
			continue
		}
		if b.Exposed <= 0 {
			t.Fatalf("non-trivial decode with zero access latency: %+v", b)
		}
		if b.Exposed > b.GrGen+b.DFS+b.Corr+1e-9 {
			t.Fatalf("pipelined exposure exceeds serial: %+v", b)
		}
	}
}

// TestZDRAblation: without the Zero Data Register the DFS Engine scans the
// whole STM every decode, so its latency must be strictly larger for
// sparse syndromes — and by roughly the full-scan cost.
func TestZDRAblation(t *testing.T) {
	g := lattice.New3DWindow(11, 11)
	withZDR := NewAccessModel(g)
	noZDR := NewAccessModel(g)
	noZDR.DisableZDR = true

	dec := core.NewDecoder(g, core.Options{})
	s := noise.NewSampler(g, 1e-3, 43, 1)
	var trial noise.Trial
	var sumWith, sumWithout float64
	n := 0
	for i := 0; i < 2000; i++ {
		s.Sample(&trial)
		if len(trial.Defects) == 0 {
			continue
		}
		dec.Decode(trial.Defects)
		bw := withZDR.Latency(&dec.Stats)
		bo := noZDR.Latency(&dec.Stats)
		if bo.DFS < bw.DFS {
			t.Fatalf("full scan cheaper than ZDR scan: %+v vs %+v", bo, bw)
		}
		if dec.Stats.TouchedRows > 0 && bo.DFS == bw.DFS {
			t.Fatalf("ZDR made no difference on a %d-row syndrome", dec.Stats.TouchedRows)
		}
		sumWith += bw.Exposed
		sumWithout += bo.Exposed
		n++
	}
	if n == 0 {
		t.Fatal("no non-trivial syndromes")
	}
	meanWith, meanWithout := sumWith/float64(n), sumWithout/float64(n)
	// The d=11 STM has ceil(1210/32) = 38 rows; sparse syndromes touch a
	// handful, so the ablation should cost tens of nanoseconds.
	if meanWithout < meanWith+10 {
		t.Fatalf("ZDR saving implausibly small: %.1f vs %.1f ns", meanWith, meanWithout)
	}
	t.Logf("mean exposed latency: %.1f ns with ZDR, %.1f ns without", meanWith, meanWithout)
}

func TestTouchedRowsCounted(t *testing.T) {
	g := lattice.New3D(5, 5)
	dec := core.NewDecoder(g, core.Options{})
	// A single fault pair in one row region.
	e := g.SpatialEdge(g.HorizontalQubit(1, 1), 2)
	defects := core.SyndromeOf(g, []int32{e})
	dec.Decode(defects)
	if dec.Stats.TouchedRows < 1 || dec.Stats.TouchedRows > 2 {
		t.Fatalf("TouchedRows = %d for an adjacent defect pair", dec.Stats.TouchedRows)
	}
	// Empty syndrome touches nothing.
	dec.Decode(nil)
	if dec.Stats.TouchedRows != 0 {
		t.Fatalf("empty decode touched %d rows", dec.Stats.TouchedRows)
	}
}

func TestAccessModelPipelineAblation(t *testing.T) {
	g := lattice.New3DWindow(7, 7)
	m := NewAccessModel(g)
	serial := NewAccessModel(g)
	serial.DisablePipeline = true
	dec := core.NewDecoder(g, core.Options{})
	s := noise.NewSampler(g, 5e-3, 47, 1)
	var trial noise.Trial
	for i := 0; i < 300; i++ {
		s.Sample(&trial)
		if len(trial.Defects) == 0 {
			continue
		}
		dec.Decode(trial.Defects)
		if serial.Latency(&dec.Stats).Exposed < m.Latency(&dec.Stats).Exposed-1e-9 {
			t.Fatal("serial execution faster than pipelined")
		}
	}
}
