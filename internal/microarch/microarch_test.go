package microarch

import (
	"math"
	"testing"

	"afs/internal/core"
)

func TestLatencyEquations(t *testing.T) {
	// One cluster grown for 2 full-edge iterations with 5 vertices, one
	// cluster grown 1 iteration with 2 vertices.
	st := &core.DecodeStats{Clusters: []core.ClusterStat{
		{Vertices: 5, GrowthSteps: 4}, // 4 half-steps = 2 iterations
		{Vertices: 2, GrowthSteps: 1}, // 1 half-step = 1 iteration
	}}
	m := Model{}
	b := m.Latency(st)
	a := AccessNS * SequentialReadsPerOp
	// Eq. 2: (1+4) + (1) = 6 ops.
	if want := 6 * a; !almost(b.GrGen, want) {
		t.Errorf("GrGen = %v, want %v", b.GrGen, want)
	}
	// Eq. 3: 7 ops each.
	if want := 7 * a; !almost(b.DFS, want) || !almost(b.Corr, want) {
		t.Errorf("DFS/Corr = %v/%v, want %v", b.DFS, b.Corr, want)
	}
	// Pipelined: GG + DFS + last cluster's peel (2 vertices).
	if want := 6*a + 7*a + 2*a; !almost(b.Exposed, want) {
		t.Errorf("Exposed = %v, want %v", b.Exposed, want)
	}
	// Unpipelined ablation exposes the full CORR time.
	b2 := Model{DisablePipeline: true}.Latency(st)
	if want := 6*a + 7*a + 7*a; !almost(b2.Exposed, want) {
		t.Errorf("unpipelined Exposed = %v, want %v", b2.Exposed, want)
	}
	// Half-edge ablation: Eq. 2 over 4 and 1 steps.
	b3 := Model{HalfEdgeGrowthCost: true}.Latency(st)
	if want := float64(1+4+9+16+1) * a; !almost(b3.GrGen, want) {
		t.Errorf("half-edge GrGen = %v, want %v", b3.GrGen, want)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestModelOverrides(t *testing.T) {
	st := &core.DecodeStats{Clusters: []core.ClusterStat{{Vertices: 1, GrowthSteps: 1}}}
	b := Model{AccessNS: 2, ReadsPerOp: 1}.Latency(st)
	if !almost(b.GrGen, 2) || !almost(b.DFS, 2) {
		t.Fatalf("override model wrong: %+v", b)
	}
}

func TestEmptySyndromeZeroLatency(t *testing.T) {
	b := Model{}.Latency(&core.DecodeStats{})
	if b.Exposed != 0 || b.GrGen != 0 {
		t.Fatalf("empty decode has nonzero latency: %+v", b)
	}
}

func TestCollectLatenciesBasics(t *testing.T) {
	r := CollectLatencies(CollectConfig{Distance: 5, P: 1e-3, Trials: 5000, Seed: 1, KeepBreakdowns: true})
	if len(r.ExposedNS) != 5000 || len(r.Breakdowns) != 5000 {
		t.Fatalf("sample counts: %d exposed, %d breakdowns", len(r.ExposedNS), len(r.Breakdowns))
	}
	for i, b := range r.Breakdowns {
		if b.Exposed != r.ExposedNS[i] {
			t.Fatalf("breakdown %d inconsistent with exposed series", i)
		}
		if b.Exposed > b.GrGen+b.DFS+b.Corr+1e-9 {
			t.Fatalf("pipelined exposure exceeds serial time: %+v", b)
		}
		if b.GrGen < 0 || b.DFS < 0 || b.Corr < 0 {
			t.Fatalf("negative stage time: %+v", b)
		}
	}
	u := r.Utilization
	if math.Abs(u.GrGen+u.DFS+u.Corr-1) > 1e-9 {
		t.Fatalf("utilization does not sum to 1: %+v", u)
	}
	if r.MeanDefects <= 0 {
		t.Fatal("no defects sampled at p=1e-3")
	}
}

func TestCollectLatenciesDeterministicAcrossWorkerCounts(t *testing.T) {
	a := CollectLatencies(CollectConfig{Distance: 5, P: 1e-3, Trials: 2000, Seed: 9, Workers: 1})
	b := CollectLatencies(CollectConfig{Distance: 5, P: 1e-3, Trials: 2000, Seed: 9, Workers: 1})
	if len(a.ExposedNS) != len(b.ExposedNS) {
		t.Fatal("trial counts differ")
	}
	for i := range a.ExposedNS {
		if a.ExposedNS[i] != b.ExposedNS[i] {
			t.Fatal("same seed, same workers produced different samples")
		}
	}
}

func TestPercentileNS(t *testing.T) {
	r := CollectResult{ExposedNS: []float64{4, 1, 3, 2}}
	if got := r.PercentileNS(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := r.PercentileNS(100); got != 4 {
		t.Fatalf("p100 = %v", got)
	}
	if got := r.PercentileNS(50); got != 2.5 {
		t.Fatalf("p50 = %v", got)
	}
}

// TestZeroErrorRateZeroLatency: with no faults there is nothing to decode.
func TestZeroErrorRateZeroLatency(t *testing.T) {
	r := CollectLatencies(CollectConfig{Distance: 5, P: 0, Trials: 100, Seed: 1})
	for _, x := range r.ExposedNS {
		if x != 0 {
			t.Fatalf("p=0 produced latency %v", x)
		}
	}
}

// TestLatencyGrowsWithErrorRate: more faults mean more decoding work.
func TestLatencyGrowsWithErrorRate(t *testing.T) {
	lo := CollectLatencies(CollectConfig{Distance: 7, P: 1e-3, Trials: 20000, Seed: 2})
	hi := CollectLatencies(CollectConfig{Distance: 7, P: 1e-2, Trials: 20000, Seed: 2})
	if meanOf(hi.ExposedNS) <= meanOf(lo.ExposedNS) {
		t.Fatalf("latency did not grow with p: %.2f vs %.2f",
			meanOf(hi.ExposedNS), meanOf(lo.ExposedNS))
	}
}

// TestDesignPointCalibration pins the paper's §IV-E numbers: 42 ns mean and
// <150 ns p99.9 at d=11, p=1e-3 (tolerances cover Monte-Carlo noise).
func TestDesignPointCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo calibration test")
	}
	r := CollectLatencies(CollectConfig{Distance: 11, P: 1e-3, Trials: 300000, Seed: 3})
	mean := meanOf(r.ExposedNS)
	if mean < 35 || mean > 50 {
		t.Errorf("mean latency = %.1f ns, paper reports 42 ns", mean)
	}
	if p999 := r.PercentileNS(99.9); p999 > 160 {
		t.Errorf("p99.9 = %.1f ns, paper reports <150 ns", p999)
	}
}

func meanOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
