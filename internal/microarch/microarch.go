// Package microarch models the AFS decoder micro-architecture of paper
// Fig. 6 — the three pipeline stages (Graph Generator, DFS Engine,
// Correction Engine) with their memory structures (Spanning Tree Memory,
// Zero Data Register, Root/Size tables, runtime and edge stacks, syndrome
// hold registers) — and charges decoding latency exactly the way the paper
// does (§IV-E):
//
//   - latency is dominated by reads from on-chip memory, modeled as 1 ns
//     per 32-bit access (4 cycles at a 4 GHz clock, [CryoCache]);
//   - the Gr-Gen stage costs tau_GG = sum_i sum_{j=1..diam(C_i)} j^2
//     (Eq. 2): growing cluster C_i for its j-th half-edge step touches a
//     boundary that has grown quadratically with j;
//   - the DFS Engine and CORR Engine each cost tau = sum_i |V(C_i)|
//     (Eq. 3): one access per cluster vertex;
//   - the design is fully pipelined across clusters: thanks to the
//     alternate edge stack (S1), the CORR Engine peels one cluster while
//     the DFS Engine traverses the next, so only the last cluster's
//     peeling is exposed after DFS completes. Spanning-forest generation
//     cannot begin before clusters stop growing, so Gr-Gen is not
//     overlapped.
//
// There is no single number that quantifies a decoder's latency — easier
// syndromes decode faster — so the model is evaluated over Monte-Carlo
// syndrome distributions (CollectLatencies) and reported as mean /
// percentile statistics, matching the paper's "42 ns average, <150 ns
// 99.9th percentile" methodology.
package microarch

import (
	"runtime"
	"sort"
	"sync"

	"afs/internal/core"
	"afs/internal/lattice"
	"afs/internal/noise"
)

// Hardware constants of the paper's design point.
const (
	// ClockGHz is the decoder clock frequency.
	ClockGHz = 4.0
	// AccessCycles is the latency of a 32-bit on-chip memory access.
	AccessCycles = 4
	// AccessNS is the resulting memory access time in nanoseconds.
	AccessNS = float64(AccessCycles) / ClockGHz
	// WordBits is the memory word width.
	WordBits = 32
	// SequentialReadsPerOp is the number of dependent memory reads issued
	// per counted operation: the paper states the decoder "requires up to
	// three sequential memory reads every cycle" (§IV-E), so each unit of
	// Eqs. (2)-(3) costs three back-to-back accesses. With this factor the
	// model reproduces the paper's dedicated-decoder numbers (42 ns mean,
	// <150 ns 99.9th percentile at d=11, p=1e-3).
	SequentialReadsPerOp = 3
	// SyndromeRoundNS is the syndrome-generation cycle time for
	// superconducting qubits; decoding d rounds must finish within one
	// round to avoid the backlog problem.
	SyndromeRoundNS = 400.0
)

// Model selects latency-model variants for ablation; the zero value is the
// paper's pipelined design.
type Model struct {
	// DisablePipeline serializes the three stages per cluster (no S1
	// alternate edge stack): the full CORR time is exposed.
	DisablePipeline bool
	// AccessNS overrides the per-access latency; 0 selects AccessNS.
	AccessNS float64
	// ReadsPerOp overrides the sequential reads charged per operation;
	// 0 selects SequentialReadsPerOp.
	ReadsPerOp int
	// HalfEdgeGrowthCost charges Eq. 2 per half-edge growth sweep instead
	// of per full-edge growth iteration. The STM stores half-edge growth
	// state (2 bits per edge), but a growth iteration of the hardware
	// advances a cluster boundary by a full edge; charging per half sweep
	// doubles the iteration count of isolated odd clusters and inflates
	// the latency tail. Kept as an ablation.
	HalfEdgeGrowthCost bool
}

func (m Model) accessNS() float64 {
	a := m.AccessNS
	if a <= 0 {
		a = AccessNS
	}
	r := m.ReadsPerOp
	if r <= 0 {
		r = SequentialReadsPerOp
	}
	return a * float64(r)
}

// Breakdown is the per-stage latency of one decode, in nanoseconds.
type Breakdown struct {
	GrGen float64 // Eq. 2
	DFS   float64 // Eq. 3
	Corr  float64 // Eq. 3
	// Exposed is the end-to-end decoding latency after pipelining.
	Exposed float64
}

// Latency applies the paper's latency equations to one decode's execution
// profile.
func (m Model) Latency(st *core.DecodeStats) Breakdown {
	var b Breakdown
	lastV := 0
	for _, c := range st.Clusters {
		// Eq. 2: sum of j^2 for j = 1..diam(C_i), with diam measured in
		// full-edge growth iterations (the decoder tracks half-edge state,
		// two sweeps per iteration).
		s := c.GrowthSteps
		if !m.HalfEdgeGrowthCost {
			s = (s + 1) / 2
		}
		b.GrGen += float64(s * (s + 1) * (2*s + 1) / 6)
		b.DFS += float64(c.Vertices)
		b.Corr += float64(c.Vertices)
		lastV = c.Vertices
	}
	a := m.accessNS()
	b.GrGen *= a
	b.DFS *= a
	b.Corr *= a
	if m.DisablePipeline {
		b.Exposed = b.GrGen + b.DFS + b.Corr
	} else {
		// DFS/CORR overlap through the double edge stack: only the last
		// cluster's peeling remains exposed after DFS drains.
		b.Exposed = b.GrGen + b.DFS + float64(lastV)*a
	}
	return b
}

// WindowCost estimates the exposed latency of one *streaming-window*
// decode in model nanoseconds, so the stream runtime can charge each window
// against a deadline budget deterministically (wall-clock time would break
// bit-identical replay across worker counts). Defect groups that ran the
// full grow/DFS/peel pipeline carry per-cluster stats and are charged
// exactly like Latency; defects the sparse shortcut resolved in closed form
// carry none, so they are charged the fast path's worst closed-form
// profile — a pair merging in one growth iteration (Eq. 2 with j=1) and
// DFS+CORR over its two vertices, i.e. 5 charged operations per pair,
// 2.5 per defect. Boundary singles cost slightly more per defect (2 growth
// iterations over ~5 vertices) but are rarer than pairs at deployed error
// rates; the pair profile is the deliberate middle estimate.
func (m Model) WindowCost(st *core.DecodeStats) float64 {
	b := m.Latency(st)
	if fast := st.NumDefects - st.PipelineDefects(); fast > 0 {
		b.Exposed += 2.5 * float64(fast) * m.accessNS()
	}
	return b.Exposed
}

// StageUtilization is the fraction of decode time spent in each stage,
// averaged over a syndrome distribution. These fractions motivate the CDA
// sharing ratios: stages with low utilization are shared across more
// logical qubits.
type StageUtilization struct {
	GrGen, DFS, Corr float64
}

// LatencySample is one decoded syndrome's latency profile.
type LatencySample struct {
	Breakdown
	Defects int
}

// CollectConfig configures a Monte-Carlo latency collection run.
type CollectConfig struct {
	Distance int
	Rounds   int // 0 => Distance
	P        float64
	Trials   int
	Seed     uint64
	Workers  int // 0 => GOMAXPROCS
	Model    Model
	Decoder  core.Options
	// ClosedCycle decodes isolated logical cycles (accuracy-style graphs)
	// instead of the default continuous decoding windows the hardware is
	// provisioned for (temporal boundary at the window end).
	ClosedCycle bool
	// KeepBreakdowns retains the per-trial stage breakdown (needed by the
	// CDA contention simulation).
	KeepBreakdowns bool
}

// CollectResult holds the latency distribution of a dedicated (conflict
// free) AFS decoder over random syndromes.
type CollectResult struct {
	// ExposedNS is the per-trial end-to-end latency, unsorted (trial
	// order), suitable for histogramming and tail fitting.
	ExposedNS []float64
	// Utilization is the average fraction of (unpipelined) work per stage.
	Utilization StageUtilization
	// MeanDefects is the mean syndrome weight.
	MeanDefects float64
	// MaxRuntimeStack and MaxEdgeStack are hardware high-water marks over
	// the whole run, used to validate stack provisioning.
	MaxRuntimeStack int
	MaxEdgeStack    int
	// Breakdowns holds the per-trial stage latencies when the run was
	// configured with KeepBreakdowns.
	Breakdowns []Breakdown
}

// CollectLatencies samples cfg.Trials random syndromes, decodes each, and
// returns the latency distribution under the hardware model. The workload
// is split over a deterministic worker pool.
func CollectLatencies(cfg CollectConfig) CollectResult {
	rounds := cfg.Rounds
	if rounds == 0 {
		rounds = cfg.Distance
	}
	var g *lattice.Graph
	switch {
	case rounds == 1:
		g = lattice.New2D(cfg.Distance)
	case cfg.ClosedCycle:
		g = lattice.New3D(cfg.Distance, rounds)
	default:
		g = lattice.New3DWindow(cfg.Distance, rounds)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials && cfg.Trials > 0 {
		workers = cfg.Trials
	}
	if workers < 1 {
		workers = 1
	}

	type part struct {
		exposed       []float64
		breakdowns    []Breakdown
		gg, dfs, corr float64
		defects       uint64
		maxRT, maxES  int
	}
	parts := make([]part, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		share := cfg.Trials / workers
		if w < cfg.Trials%workers {
			share++
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			dec := core.NewDecoder(g, cfg.Decoder)
			s := noise.NewSampler(g, cfg.P, cfg.Seed, uint64(w)+1)
			var trial noise.Trial
			pt := &parts[w]
			pt.exposed = make([]float64, 0, share)
			for i := 0; i < share; i++ {
				s.Sample(&trial)
				dec.Decode(trial.Defects)
				b := cfg.Model.Latency(&dec.Stats)
				pt.exposed = append(pt.exposed, b.Exposed)
				if cfg.KeepBreakdowns {
					pt.breakdowns = append(pt.breakdowns, b)
				}
				pt.gg += b.GrGen
				pt.dfs += b.DFS
				pt.corr += b.Corr
				pt.defects += uint64(len(trial.Defects))
				if dec.Stats.MaxRuntimeStack > pt.maxRT {
					pt.maxRT = dec.Stats.MaxRuntimeStack
				}
				if dec.Stats.MaxEdgeStack > pt.maxES {
					pt.maxES = dec.Stats.MaxEdgeStack
				}
			}
		}(w, share)
	}
	wg.Wait()

	var res CollectResult
	var gg, dfs, corr float64
	var defects uint64
	for i := range parts {
		res.ExposedNS = append(res.ExposedNS, parts[i].exposed...)
		if cfg.KeepBreakdowns {
			res.Breakdowns = append(res.Breakdowns, parts[i].breakdowns...)
		}
		gg += parts[i].gg
		dfs += parts[i].dfs
		corr += parts[i].corr
		defects += parts[i].defects
		if parts[i].maxRT > res.MaxRuntimeStack {
			res.MaxRuntimeStack = parts[i].maxRT
		}
		if parts[i].maxES > res.MaxEdgeStack {
			res.MaxEdgeStack = parts[i].maxES
		}
	}
	total := gg + dfs + corr
	if total > 0 {
		res.Utilization = StageUtilization{GrGen: gg / total, DFS: dfs / total, Corr: corr / total}
	}
	if cfg.Trials > 0 {
		res.MeanDefects = float64(defects) / float64(cfg.Trials)
	}
	return res
}

// PercentileNS returns the p-th percentile of the collected exposed
// latencies (sorting a copy).
func (r *CollectResult) PercentileNS(p float64) float64 {
	if len(r.ExposedNS) == 0 {
		return 0
	}
	sorted := make([]float64, len(r.ExposedNS))
	copy(sorted, r.ExposedNS)
	sort.Float64s(sorted)
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
