// Package noise implements the phenomenological noise model used throughout
// the paper's evaluation (§III-B): in every round of syndrome measurement,
// each data qubit suffers an independent X error with probability p, and
// each syndrome bit is flipped independently with probability p to model
// measurement errors. X-type and Z-type errors are corrected independently,
// so the simulation focuses on one error type at a time, exactly as the
// paper does.
//
// Every potential fault is an edge of the decoding graph (spatial edges are
// data-qubit errors, temporal edges are measurement errors), so a trial is
// sampled as a sparse Bernoulli subset of the edge list, and the detection
// events are the vertices with an odd number of sampled incident edges.
// Sparse (geometric-skip) sampling makes the cost of a trial proportional
// to the number of faults rather than the number of fault locations, which
// is what makes the paper's 10-million-trial Monte-Carlo runs tractable.
package noise

import (
	"math"
	"math/bits"
	"math/rand/v2"

	"afs/internal/lattice"
)

// Trial is one sampled error configuration together with its observable
// consequences. The slices are reused across samples to avoid allocation;
// callers that retain a Trial across samples must copy it.
type Trial struct {
	// ErrorEdges lists the decoding-graph edges on which a fault occurred.
	ErrorEdges []int32
	// Defects lists the vertices with a non-trivial detection event,
	// in increasing order.
	Defects []int32
	// NetData is a bitset over data qubits: bit q is set iff qubit q has a
	// net (odd cumulative) X error at the end of the logical cycle.
	NetData Bitset
}

// Sampler draws phenomenological-noise trials for a decoding graph.
type Sampler struct {
	G *lattice.Graph
	P float64

	pcg  *rand.PCG
	rng  *rand.Rand
	logq float64 // ln(1-p), cached for geometric skips
	// marks holds epoch-stamped defect parities: marks[v] == epoch means v
	// currently has an odd number of sampled incident edges. Stamping
	// replaces per-sample clearing, so a trial costs O(faults), never O(V).
	marks  []uint64
	epoch  uint64
	faults uint64 // total faults sampled (for statistics)
	trials uint64
}

// NewSampler creates a sampler for graph g with physical error rate p. The
// two seed words make every run reproducible; distinct workers must use
// distinct seeds.
func NewSampler(g *lattice.Graph, p float64, seed1, seed2 uint64) *Sampler {
	if p < 0 || p >= 1 {
		panic("noise: physical error rate must be in [0,1)")
	}
	pcg := rand.NewPCG(seed1, seed2)
	return &Sampler{
		G:     g,
		P:     p,
		pcg:   pcg,
		rng:   rand.New(pcg),
		logq:  math.Log1p(-p),
		marks: make([]uint64, g.V),
	}
}

// Reseed rewinds the sampler onto a fresh deterministic random stream
// without allocating, reusing the scratch state. The Monte-Carlo engine
// uses it to give every work chunk its own seed so results are independent
// of how chunks land on workers.
func (s *Sampler) Reseed(seed1, seed2 uint64) {
	s.pcg.Seed(seed1, seed2)
}

// RNG exposes the sampler's random stream for auxiliary draws that must
// remain coupled to the trial sequence (used by the sequential-round
// simulation).
func (s *Sampler) RNG() *rand.Rand { return s.rng }

// MeanFaults returns the empirical mean number of faults per trial sampled
// so far.
func (s *Sampler) MeanFaults() float64 {
	if s.trials == 0 {
		return 0
	}
	return float64(s.faults) / float64(s.trials)
}

// Sample draws one trial into t, reusing its storage.
func (s *Sampler) Sample(t *Trial) {
	t.ErrorEdges = t.ErrorEdges[:0]
	t.Defects = t.Defects[:0]
	t.NetData.Resize(s.G.NumDataQubits())
	t.NetData.Clear()

	// Geometric-skip sampling, inlined from SparseBernoulliLogQ so the
	// per-fault callback costs nothing on this hottest path.
	edges := s.G.Edges
	if s.logq < 0 {
		n := len(edges)
		i := -1
		for {
			u := s.rng.Float64()
			if u == 0 {
				break // skip of +inf
			}
			skip := math.Floor(math.Log(u) / s.logq)
			if skip >= float64(n) { // also catches +inf
				break
			}
			i += int(skip) + 1
			if i >= n {
				break
			}
			t.ErrorEdges = append(t.ErrorEdges, int32(i))
		}
	}
	s.faults += uint64(len(t.ErrorEdges))
	s.trials++

	// Epoch-stamped parity toggles: == epoch is odd, anything else even.
	// A fresh epoch per trial makes every stale stamp read as even, so no
	// clearing pass over the marks is ever needed.
	s.epoch += 2
	odd, even := s.epoch, s.epoch-1
	for _, ei := range t.ErrorEdges {
		e := &edges[ei]
		if !s.G.IsBoundary(e.U) {
			if s.marks[e.U] == odd {
				s.marks[e.U] = even
			} else {
				s.marks[e.U] = odd
			}
		}
		if !s.G.IsBoundary(e.V) {
			if s.marks[e.V] == odd {
				s.marks[e.V] = even
			} else {
				s.marks[e.V] = odd
			}
		}
		if e.Kind == lattice.Spatial {
			t.NetData.Flip(int(e.Qubit))
		}
	}
	// Collect the odd vertices, demoting each stamp so it is reported once.
	for _, ei := range t.ErrorEdges {
		e := &edges[ei]
		for _, v := range [2]int32{e.U, e.V} {
			if !s.G.IsBoundary(v) && s.marks[v] == odd {
				s.marks[v] = even
				t.Defects = append(t.Defects, v)
			}
		}
	}
	sortInt32(t.Defects)
}

// SparseBernoulli invokes f(i) for each i in [0, n) selected independently
// with probability p, in increasing order of i, using geometric skips so the
// cost is O(np + 1) rather than O(n).
func SparseBernoulli(rng *rand.Rand, n int, p float64, f func(int)) {
	if p <= 0 || n <= 0 {
		return
	}
	if p >= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	SparseBernoulliLogQ(rng, n, math.Log1p(-p), f)
}

// SparseBernoulliLogQ is SparseBernoulli with ln(1-p) precomputed.
func SparseBernoulliLogQ(rng *rand.Rand, n int, logq float64, f func(int)) {
	if logq >= 0 { // p <= 0
		return
	}
	i := -1
	for {
		u := rng.Float64()
		if u == 0 {
			return // skip of +inf
		}
		skip := math.Floor(math.Log(u) / logq)
		if skip >= float64(n) { // also catches +inf
			return
		}
		i += int(skip) + 1
		if i >= n {
			return
		}
		f(i)
	}
}

// Bitset is a dense bitset used for data-qubit error and correction masks.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a bitset of n bits, all zero.
func NewBitset(n int) Bitset {
	return Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Resize grows or shrinks the bitset to n bits. Contents are preserved up
// to min(old, new) bits; bits beyond that are zero. The call is cheap when
// the size already matches.
func (b *Bitset) Resize(n int) {
	w := (n + 63) / 64
	old := len(b.words)
	switch {
	case w > cap(b.words):
		nw := make([]uint64, w)
		copy(nw, b.words)
		b.words = nw
	default:
		b.words = b.words[:w]
		// Words re-exposed from a previous larger incarnation hold stale
		// bits; zero them.
		for i := old; i < w; i++ {
			b.words[i] = 0
		}
	}
	// Mask bits past n in the last word so PopCount/ForEachSet never see
	// remnants of a longer previous use.
	if w > 0 && n&63 != 0 {
		b.words[w-1] &= (1 << uint(n&63)) - 1
	}
	b.n = n
}

// Len returns the number of bits.
func (b *Bitset) Len() int { return b.n }

// Clear zeroes every bit.
func (b *Bitset) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Get reports bit i.
func (b *Bitset) Get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i to 1.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Flip toggles bit i.
func (b *Bitset) Flip(i int) { b.words[i>>6] ^= 1 << (uint(i) & 63) }

// CopyFrom makes b an exact copy of other (length and contents), reusing
// b's storage when it is large enough. It replaces the Resize/Clear/Xor
// triple callers previously needed, touching each word exactly once.
func (b *Bitset) CopyFrom(other Bitset) {
	w := len(other.words)
	if w > cap(b.words) {
		b.words = make([]uint64, w)
	} else {
		b.words = b.words[:w]
	}
	copy(b.words, other.words)
	b.n = other.n
}

// Xor xors other into b. The bitsets must have equal length.
func (b *Bitset) Xor(other Bitset) {
	if other.n != b.n {
		panic("noise: bitset length mismatch")
	}
	for i := range b.words {
		b.words[i] ^= other.words[i]
	}
}

// Parity returns the XOR of the bits at the given indices.
func (b *Bitset) Parity(idx []int32) bool {
	var p bool
	for _, i := range idx {
		if b.Get(int(i)) {
			p = !p
		}
	}
	return p
}

// ForEachSet calls f for the index of every set bit, in increasing order.
func (b *Bitset) ForEachSet(f func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			f(wi<<6 + bit)
			w &^= 1 << uint(bit)
		}
	}
}

// PopCount returns the number of set bits.
func (b *Bitset) PopCount() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

func sortInt32(a []int32) {
	// Insertion sort: defect lists are tiny (mean ~6d^3*p entries), so this
	// beats sort.Slice and allocates nothing.
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
