package noise

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"afs/internal/lattice"
)

func TestSampleReproducesDetectionEvents(t *testing.T) {
	g := lattice.New3D(5, 5)
	s := NewSampler(g, 0.05, 1, 2)
	var trial Trial
	for i := 0; i < 500; i++ {
		s.Sample(&trial)
		// Recompute detection events from the error edges independently.
		marks := map[int32]bool{}
		for _, ei := range trial.ErrorEdges {
			e := g.Edges[ei]
			for _, v := range [2]int32{e.U, e.V} {
				if !g.IsBoundary(v) {
					marks[v] = !marks[v]
				}
			}
		}
		want := 0
		for _, odd := range marks {
			if odd {
				want++
			}
		}
		if len(trial.Defects) != want {
			t.Fatalf("trial %d: %d defects, recomputed %d", i, len(trial.Defects), want)
		}
		for _, v := range trial.Defects {
			if !marks[v] {
				t.Fatalf("trial %d: defect %d not odd in recomputation", i, v)
			}
		}
		// Defects must be sorted and unique.
		for j := 1; j < len(trial.Defects); j++ {
			if trial.Defects[j] <= trial.Defects[j-1] {
				t.Fatalf("defects not sorted/unique: %v", trial.Defects)
			}
		}
	}
}

func TestSampleNetDataMatchesSpatialErrors(t *testing.T) {
	g := lattice.New3D(5, 5)
	s := NewSampler(g, 0.05, 3, 4)
	var trial Trial
	for i := 0; i < 300; i++ {
		s.Sample(&trial)
		counts := map[int32]int{}
		for _, ei := range trial.ErrorEdges {
			e := g.Edges[ei]
			if e.Kind == lattice.Spatial {
				counts[e.Qubit]++
			}
		}
		for q := 0; q < g.NumDataQubits(); q++ {
			want := counts[int32(q)]%2 == 1
			if trial.NetData.Get(q) != want {
				t.Fatalf("qubit %d net error = %v, want %v", q, trial.NetData.Get(q), want)
			}
		}
	}
}

func TestSampleZeroRate(t *testing.T) {
	g := lattice.New2D(5)
	s := NewSampler(g, 0, 1, 1)
	var trial Trial
	for i := 0; i < 100; i++ {
		s.Sample(&trial)
		if len(trial.ErrorEdges) != 0 || len(trial.Defects) != 0 {
			t.Fatal("p=0 produced errors")
		}
	}
}

// TestSparseBernoulliRate: the geometric-skip sampler must be unbiased.
func TestSparseBernoulliRate(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	const n, p, iters = 1000, 0.01, 2000
	total := 0
	for i := 0; i < iters; i++ {
		SparseBernoulli(rng, n, p, func(int) { total++ })
	}
	got := float64(total) / float64(n*iters)
	// Standard error ~ sqrt(p/(n*iters)) ~ 7e-5; allow 5 sigma.
	if math.Abs(got-p) > 4e-4 {
		t.Fatalf("empirical rate %.5f, want %.3f", got, p)
	}
}

func TestSparseBernoulliOrderedAndInRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 1))
		prev := -1
		ok := true
		SparseBernoulli(r, 500, 0.05, func(i int) {
			if i <= prev || i < 0 || i >= 500 {
				ok = false
			}
			prev = i
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseBernoulliEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	calls := 0
	SparseBernoulli(rng, 0, 0.5, func(int) { calls++ })
	SparseBernoulli(rng, 100, 0, func(int) { calls++ })
	if calls != 0 {
		t.Fatal("n=0 or p=0 invoked the callback")
	}
	// p=1 must visit every index exactly once in order.
	var got []int
	SparseBernoulli(rng, 10, 1, func(i int) { got = append(got, i) })
	if len(got) != 10 {
		t.Fatalf("p=1 visited %d of 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("p=1 order wrong: %v", got)
		}
	}
}

func TestMeanFaultsTracksExpectation(t *testing.T) {
	g := lattice.New3D(7, 7)
	p := 2e-3
	s := NewSampler(g, p, 11, 12)
	var trial Trial
	for i := 0; i < 20000; i++ {
		s.Sample(&trial)
	}
	want := p * float64(len(g.Edges))
	if got := s.MeanFaults(); math.Abs(got-want)/want > 0.05 {
		t.Fatalf("mean faults %.3f, want ~%.3f", got, want)
	}
}

func TestSamplerDeterminism(t *testing.T) {
	g := lattice.New3D(5, 5)
	a := NewSampler(g, 0.01, 42, 1)
	b := NewSampler(g, 0.01, 42, 1)
	var ta, tb Trial
	for i := 0; i < 100; i++ {
		a.Sample(&ta)
		b.Sample(&tb)
		if len(ta.Defects) != len(tb.Defects) {
			t.Fatal("same-seed samplers diverged")
		}
		for j := range ta.Defects {
			if ta.Defects[j] != tb.Defects[j] {
				t.Fatal("same-seed samplers diverged")
			}
		}
	}
	c := NewSampler(g, 0.01, 42, 2)
	var tc Trial
	diverged := false
	a = NewSampler(g, 0.01, 42, 1)
	for i := 0; i < 100 && !diverged; i++ {
		a.Sample(&ta)
		c.Sample(&tc)
		if len(ta.ErrorEdges) != len(tc.ErrorEdges) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different worker seeds produced identical streams")
	}
}

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 || b.PopCount() != 0 {
		t.Fatal("fresh bitset not empty")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.PopCount() != 3 || !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Fatal("set/get broken")
	}
	b.Flip(64)
	if b.Get(64) || b.PopCount() != 2 {
		t.Fatal("flip broken")
	}
	var got []int
	b.ForEachSet(func(i int) { got = append(got, i) })
	if len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Fatalf("ForEachSet = %v", got)
	}
	if !b.Parity([]int32{0, 1}) || b.Parity([]int32{0, 129}) {
		t.Fatal("parity broken")
	}
	b.Clear()
	if b.PopCount() != 0 {
		t.Fatal("clear broken")
	}
}

func TestBitsetXor(t *testing.T) {
	a, b := NewBitset(100), NewBitset(100)
	a.Set(3)
	a.Set(50)
	b.Set(50)
	b.Set(99)
	a.Xor(b)
	if !a.Get(3) || a.Get(50) || !a.Get(99) || a.PopCount() != 2 {
		t.Fatal("xor broken")
	}
}

func TestBitsetResizePreservesPrefix(t *testing.T) {
	b := NewBitset(64)
	b.Set(10)
	b.Resize(256)
	if !b.Get(10) || b.Len() != 256 {
		t.Fatal("grow lost data")
	}
	if b.Get(200) {
		t.Fatal("grown area not zero")
	}
}

func TestBitsetResizeClearsStaleBits(t *testing.T) {
	b := NewBitset(100)
	b.Set(99)
	b.Set(68)
	b.Resize(70) // drops bit 99, keeps bit 68
	if b.PopCount() != 1 || !b.Get(68) {
		t.Fatalf("shrink kept wrong bits: popcount %d", b.PopCount())
	}
	b.Resize(100) // regrow: bit 99 must stay gone
	if b.Get(99) || b.PopCount() != 1 {
		t.Fatal("regrow resurrected stale bits")
	}
}

func TestBitsetCopyFrom(t *testing.T) {
	src := NewBitset(100)
	src.Set(3)
	src.Set(99)
	var dst Bitset
	dst.CopyFrom(src)
	if dst.Len() != 100 || dst.PopCount() != 2 || !dst.Get(3) || !dst.Get(99) {
		t.Fatalf("copy into zero bitset wrong: len=%d popcount=%d", dst.Len(), dst.PopCount())
	}
	// Mutating the copy must not touch the source (no aliasing).
	dst.Flip(3)
	if !src.Get(3) {
		t.Fatal("CopyFrom aliased the source storage")
	}
	// Copying a shorter bitset over a longer one must shed the old bits.
	short := NewBitset(10)
	short.Set(5)
	dst.CopyFrom(short)
	if dst.Len() != 10 || dst.PopCount() != 1 || !dst.Get(5) {
		t.Fatalf("copy of shorter bitset wrong: len=%d popcount=%d", dst.Len(), dst.PopCount())
	}
}

func TestBitsetCopyFromShrinkThenGrow(t *testing.T) {
	// The stale-word hazard Resize guards against: a bitset that was large,
	// shrank, and is then the target of a larger copy must not resurrect
	// old high words.
	big := NewBitset(200)
	big.Set(199)
	big.Set(130)
	big.Resize(10) // high words become stale capacity
	src := NewBitset(150)
	src.Set(1)
	big.CopyFrom(src)
	if big.Len() != 150 || big.PopCount() != 1 || !big.Get(1) {
		t.Fatalf("shrink-then-grow copy kept stale bits: popcount=%d", big.PopCount())
	}
	if big.Get(130) {
		t.Fatal("stale bit 130 resurrected")
	}
}

func TestBitsetCopyFromEquivalentToResizeClearXor(t *testing.T) {
	src := NewBitset(77)
	for _, i := range []int{0, 13, 63, 64, 76} {
		src.Set(i)
	}
	a := NewBitset(5)
	a.Set(2)
	b := NewBitset(5)
	b.Set(2)
	a.CopyFrom(src)
	b.Resize(src.Len())
	b.Clear()
	b.Xor(src)
	if a.Len() != b.Len() || a.PopCount() != b.PopCount() {
		t.Fatalf("CopyFrom disagrees with Resize/Clear/Xor: %d/%d bits vs %d/%d",
			a.PopCount(), a.Len(), b.PopCount(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Get(i) != b.Get(i) {
			t.Fatalf("bit %d differs", i)
		}
	}
}

func TestSamplerReseedReproducesStream(t *testing.T) {
	g := lattice.New3D(5, 5)
	fresh := NewSampler(g, 0.02, 9, 4)
	reseeded := NewSampler(g, 0.02, 1, 1)
	var a, b Trial
	// Burn some trials so the reseeded sampler has dirty scratch state.
	for i := 0; i < 50; i++ {
		reseeded.Sample(&b)
	}
	reseeded.Reseed(9, 4)
	for i := 0; i < 50; i++ {
		fresh.Sample(&a)
		reseeded.Sample(&b)
		if len(a.Defects) != len(b.Defects) {
			t.Fatalf("trial %d: defect counts differ (%d vs %d)", i, len(a.Defects), len(b.Defects))
		}
		for j := range a.Defects {
			if a.Defects[j] != b.Defects[j] {
				t.Fatalf("trial %d: defects differ at %d", i, j)
			}
		}
	}
}

func TestBitsetXorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("xor with mismatched lengths did not panic")
		}
	}()
	a, b := NewBitset(10), NewBitset(20)
	a.Xor(b)
}

func BenchmarkSample(b *testing.B) {
	for _, d := range []int{11, 25} {
		g := lattice.New3D(d, d)
		s := NewSampler(g, 1e-3, 1, 1)
		var trial Trial
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Sample(&trial)
			}
		})
	}
}
