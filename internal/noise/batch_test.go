package noise

import (
	"testing"

	"afs/internal/lattice"
)

// The batch sampler must consume its random stream exactly like the scalar
// sampler: same seeds, same trials, edge-for-edge and defect-for-defect.
// The Monte-Carlo engine's determinism contract (results independent of
// worker count and of batching) rides on this equivalence, and the
// bit-plane sampler's seeded distribution-equivalence harness leans on it
// as the pinned draw-for-draw baseline — so beyond a few edge geometries
// (2-D, above-sweep rate, p = 0) the table covers every tier-1 sweep
// point d in {3,5,7,9,11} x p in {1e-3, 3e-3, 1e-2}.
func TestBatchSamplerMatchesScalarSampler(t *testing.T) {
	type tcase struct {
		d, rounds int
		p         float64
	}
	cases := []tcase{
		{3, 1, 0.01}, {7, 7, 0.02}, {5, 5, 0},
	}
	for _, d := range []int{3, 5, 7, 9, 11} {
		for _, p := range []float64{0.001, 0.003, 0.01} {
			cases = append(cases, tcase{d, d, p})
		}
	}
	for _, tc := range cases {
		g := lattice.New3D(tc.d, tc.rounds)
		if tc.rounds == 1 {
			g = lattice.New2D(tc.d)
		}
		cut := g.NorthCutQubits()
		scalar := NewSampler(g, tc.p, 42, 99)
		batched := NewBatchSampler(g, tc.p, 42, 99, cut)

		const trials, k = 503, 64 // deliberately not a multiple of k
		var tr Trial
		var b Batch
		done := 0
		for done < trials {
			n := k
			if trials-done < n {
				n = trials - done
			}
			batched.SampleBatch(&b, n)
			if b.K != n {
				t.Fatalf("batch K = %d, want %d", b.K, n)
			}
			for i := 0; i < n; i++ {
				scalar.Sample(&tr)
				if !equalInt32(b.TrialEdges(i), tr.ErrorEdges) {
					t.Fatalf("d=%d p=%g trial %d: edges %v != scalar %v",
						tc.d, tc.p, done+i, b.TrialEdges(i), tr.ErrorEdges)
				}
				if !equalInt32(b.TrialDefects(i), tr.Defects) {
					t.Fatalf("d=%d p=%g trial %d: defects %v != scalar %v",
						tc.d, tc.p, done+i, b.TrialDefects(i), tr.Defects)
				}
				if want := tr.NetData.Parity(cut); b.CutParity[i] != want {
					t.Fatalf("d=%d p=%g trial %d: cut parity %v, NetData says %v",
						tc.d, tc.p, done+i, b.CutParity[i], want)
				}
			}
			done += n
		}
		if scalar.MeanFaults() != batched.MeanFaults() {
			t.Fatalf("mean faults diverge: scalar %g batched %g",
				scalar.MeanFaults(), batched.MeanFaults())
		}
	}
}

// Reseeding mid-run must reproduce the same batches, and the batch width
// must not affect the trial sequence.
func TestBatchSamplerReseedAndWidthInvariance(t *testing.T) {
	g := lattice.New3D(5, 5)
	cut := g.NorthCutQubits()
	s := NewBatchSampler(g, 0.01, 7, 7, cut)
	var one, b Batch
	s.Reseed(1234, 5)
	s.SampleBatch(&b, 100)
	ref := append([]int32(nil), b.Defects...)
	refOff := append([]int32(nil), b.DefectOff...)

	s.Reseed(1234, 5)
	var got []int32
	var gotOff []int32
	gotOff = append(gotOff, 0)
	for i := 0; i < 100; i += 10 {
		s.SampleBatch(&one, 10)
		for j := 0; j < 10; j++ {
			got = append(got, one.TrialDefects(j)...)
			gotOff = append(gotOff, gotOff[len(gotOff)-1]+int32(len(one.TrialDefects(j))))
		}
	}
	if !equalInt32(got, ref) || !equalInt32(gotOff, refOff) {
		t.Fatal("batch width changed the sampled trial sequence")
	}
}

// Steady-state batch sampling must not allocate.
func TestBatchSamplerZeroAllocSteadyState(t *testing.T) {
	g := lattice.New3D(11, 11)
	s := NewBatchSampler(g, 0.001, 3, 4, g.NorthCutQubits())
	var b Batch
	for i := 0; i < 8; i++ { // warm storage to high-water mark
		s.SampleBatch(&b, 256)
	}
	if avg := testing.AllocsPerRun(50, func() { s.SampleBatch(&b, 256) }); avg != 0 {
		t.Fatalf("SampleBatch allocates %.1f times per call in steady state", avg)
	}
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
