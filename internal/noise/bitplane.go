package noise

import (
	"math"
	"math/bits"
	"math/rand/v2"

	"afs/internal/lattice"
)

// logTab backs fastLog: bucket i covers mantissas [h, h+1/128) with
// h = 1 + i/128, storing ln(h) and 1/h.
var logTab [128]struct{ ln, inv float64 }

func init() {
	for i := range logTab {
		h := 1 + float64(i)/128
		logTab[i].ln = math.Log(h)
		logTab[i].inv = 1 / h
	}
}

// fastLog returns ln(u) for normal u in (0, 1) — every nonzero value the
// 53-bit uniform conversion can produce — with absolute error below 1e-10
// (test-enforced): split u = 2^e * f with f in [1, 2), reduce f against
// its 7-bit mantissa bucket via a reciprocal multiply, and finish with a
// 4-term ln(1+r) series on r < 1/128. About 2.5x cheaper than math.Log,
// which the geometric-skip walk calls once per fault; the error budget
// only perturbs which site a skip lands on (a sub-ulp effect on the
// quotient), never the per-site Bernoulli distribution.
func fastLog(u float64) float64 {
	b := math.Float64bits(u)
	e := int(b>>52) - 1023
	m := b & (1<<52 - 1)
	t := &logTab[m>>45]
	f := math.Float64frombits(m | 0x3FF0000000000000)
	r := f*t.inv - 1
	r2 := r * r
	return float64(e)*math.Ln2 + t.ln + (r - r2*0.5 + r2*r*(1.0/3) - r2*r2*0.25)
}

// PlaneGroup is a bit-plane block of up to 64 sampled trials — the
// transpose of the structure-of-arrays Batch: instead of per-trial index
// lists, every vertex owns one uint64 word whose bit t is "trial t has a
// defect here". Weight classification and parity bookkeeping then run as
// word-parallel bitwise ops across all lanes at once (see internal/swar
// and core.LaneTriage); only heavy-tail lanes are ever gathered back into
// index-list form. All storage is reused by the next SampleGroup call.
type PlaneGroup struct {
	// K is the number of live trial lanes (1..64); LaneMask has the low K
	// bits set. Dead lanes carry no bits anywhere in the group.
	K        int
	LaneMask uint64
	// Defects[v] bit t reports a defect at vertex v in lane t: the XOR of
	// the lane's sampled incident edges, exactly the parity the scalar
	// sampler's mark stamps compute one trial at a time.
	Defects []uint64
	// Touched is a bitmap over vertices: bit v is set iff any lane toggled
	// v while sampling (a superset of the vertices with defects — a lane
	// pair of faults can cancel). Scanning it in word order visits vertices
	// in increasing id order, which is what hands the heavy-tail gather its
	// sorted defect lists for free.
	Touched []uint64
	// CutParity bit t is the parity of lane t's net data error over the
	// sampler's logical cut — the bit-plane form of Batch.CutParity.
	CutParity uint64
}

// ensure sizes the group's storage for a graph with v vertices. Defects
// gets one extra slot at index v — the boundary sentinel, never written,
// always zero — so lane classifiers can pad fixed-width neighbor tables
// with index v and load through it unconditionally (see core.LaneTriage).
// Freshly exposed storage is zero; reused storage was zeroed by reset.
func (pg *PlaneGroup) ensure(v int) {
	if cap(pg.Defects) < v+1 {
		pg.Defects = make([]uint64, v+1)
		pg.Touched = make([]uint64, (v+63)/64)
	}
	pg.Defects = pg.Defects[:v+1]
	pg.Touched = pg.Touched[:(v+63)/64]
}

// reset zeroes exactly the vertices the previous group touched — O(faults),
// never O(V), mirroring the scalar sampler's epoch-stamp trick.
func (pg *PlaneGroup) reset() {
	for wi, tw := range pg.Touched {
		if tw == 0 {
			continue
		}
		base := wi << 6
		for tw != 0 {
			b := bits.TrailingZeros64(tw)
			tw &^= 1 << uint(b)
			pg.Defects[base+b] = 0
		}
		pg.Touched[wi] = 0
	}
	pg.CutParity = 0
}

// AppendLaneDefects appends lane t's defect vertices, in increasing vertex
// order (exactly as Sampler.Sample would report them), and returns the
// extended slice.
func (pg *PlaneGroup) AppendLaneDefects(lane int, out []int32) []int32 {
	bit := uint64(1) << uint(lane)
	for wi, tw := range pg.Touched {
		base := wi << 6
		for tw != 0 {
			b := bits.TrailingZeros64(tw)
			tw &^= 1 << uint(b)
			if pg.Defects[base+b]&bit != 0 {
				out = append(out, int32(base+b))
			}
		}
	}
	return out
}

// PlaneSampler draws phenomenological-noise trials 64 lanes at a time into
// PlaneGroup bit-planes.
//
// RNG draw-order contract. The sampler performs ONE geometric-skip walk per
// group over the edge-major bit space of 64*len(Edges) Bernoulli(p) sites:
// site index b covers edge b>>6, lane b&63, so consecutive sites of one
// edge are the 64 lanes and the walk visits edges in increasing index
// order. Each fault costs exactly one draw — u = Float64 from the PCG
// stream (the identical 53-bit conversion the scalar sampler uses) and
// skip = floor(fastLog(u) * (1/ln(1-p))) — plus one terminating draw per
// group, Sampler.Sample's per-draw arithmetic applied to a 64x larger
// index space, with two strength reductions that are part of this
// sampler's stream contract: the division becomes a reciprocal multiply
// and ln is the table-accelerated fastLog (absolute error < 1e-10, which
// can shift an individual skip by one site in the last ulp but leaves the
// per-site Bernoulli distribution untouched). The walk ALWAYS spans the full 64-lane space; for a partial group
// (K < 64) faults landing in dead lanes are discarded after the draw, so
// the stream position after a group is independent of K and the fault
// pattern of lanes 0..K-1 is independent of K (test-enforced).
//
// Draw-for-draw parity with the scalar sampler is deliberately abandoned —
// interleaving 64 trials into one walk reorders the stream by construction
// — in exchange for ~1 draw per fault across the whole group with no
// per-trial loop restart. Equivalence is instead enforced two ways:
// per-site the walk is exactly SparseBernoulliLogQ over the enlarged index
// space (each site independently faulted with probability p — the same
// distribution the scalar sampler draws from), and bitplane_test.go pins a
// seeded distribution-equivalence harness comparing fault rates, defect-
// weight classes, cut parity, and downstream logical error rates against
// the scalar sampler.
type PlaneSampler struct {
	G *lattice.Graph
	P float64

	pcg *rand.PCG
	// logq = ln(1-p); invLogq is its precomputed reciprocal, so the hot
	// loop's skip division becomes a multiply (same floor for every
	// non-negative quotient; the rounding of a*inv vs a/b can differ in
	// the last ulp, which only perturbs which site a fault lands on — the
	// per-site Bernoulli distribution is unchanged).
	logq    float64
	invLogq float64
	// ep and cutEdge mirror BatchSampler: per-edge endpoints with boundary
	// pre-resolved to -1, and the per-edge logical-cut membership.
	ep      []edgeEP
	cutEdge []bool
	faults  uint64
	trials  uint64

	// FaultLog, when non-nil, receives every live-lane fault as (edge,
	// lane) in draw order — the hook the equivalence tests use to replay a
	// group through the scalar defect derivation. Production runs leave it
	// nil.
	FaultLog func(edge int32, lane int)
}

// NewPlaneSampler creates a bit-plane sampler for graph g at physical
// error rate p, tracking cut parity over the data qubits in cut (normally
// g.NorthCutQubits()). The seed words mirror NewSampler.
func NewPlaneSampler(g *lattice.Graph, p float64, seed1, seed2 uint64, cut []int32) *PlaneSampler {
	if p < 0 || p >= 1 {
		panic("noise: physical error rate must be in [0,1)")
	}
	inCut := make([]bool, g.NumDataQubits())
	for _, q := range cut {
		inCut[q] = true
	}
	cutEdge := make([]bool, len(g.Edges))
	ep := make([]edgeEP, len(g.Edges))
	for e := range g.Edges {
		ed := &g.Edges[e]
		cutEdge[e] = ed.Kind == lattice.Spatial && inCut[ed.Qubit]
		u, v := ed.U, ed.V
		if g.IsBoundary(u) {
			u = -1
		}
		if g.IsBoundary(v) {
			v = -1
		}
		ep[e] = edgeEP{u, v}
	}
	s := &PlaneSampler{
		G:       g,
		P:       p,
		pcg:     rand.NewPCG(seed1, seed2),
		logq:    math.Log1p(-p),
		ep:      ep,
		cutEdge: cutEdge,
	}
	if s.logq < 0 {
		s.invLogq = 1 / s.logq
	}
	return s
}

// Reseed rewinds the sampler onto a fresh deterministic stream without
// allocating (per-chunk seeding, as for the other samplers).
func (s *PlaneSampler) Reseed(seed1, seed2 uint64) {
	s.pcg.Seed(seed1, seed2)
}

// CutEdges exposes the per-edge cut-flip table (not to be modified).
func (s *PlaneSampler) CutEdges() []bool { return s.cutEdge }

// MeanFaults returns the empirical mean number of live-lane faults per
// trial sampled so far.
func (s *PlaneSampler) MeanFaults() float64 {
	if s.trials == 0 {
		return 0
	}
	return float64(s.faults) / float64(s.trials)
}

// SampleGroup fills pg with k freshly sampled trial lanes (1 <= k <= 64),
// reusing its storage.
func (s *PlaneSampler) SampleGroup(pg *PlaneGroup, k int) {
	if k < 1 || k > 64 {
		panic("noise: plane group width must be in [1,64]")
	}
	pg.ensure(s.G.V)
	pg.reset()
	pg.K = k
	live := ^uint64(0) >> uint(64-k)
	pg.LaneMask = live

	if s.logq < 0 {
		// One geometric-skip walk over the 64*E-site edge-major bit space
		// (see the draw-order contract above). The skip arithmetic is
		// Sampler.Sample's with the division replaced by a reciprocal
		// multiply and the floor by integer truncation (identical for the
		// non-negative quotients the walk produces).
		nSites := len(s.ep) << 6
		defects, touched, ep, cutEdge := pg.Defects, pg.Touched, s.ep, s.cutEdge
		var cutPar, faults uint64
		limit := float64(nSites)
		invLogq := s.invLogq
		i := -1
		for {
			ub := s.pcg.Uint64() << 11 >> 11
			if ub == 0 {
				break // skip of +inf
			}
			// fastLog(u) * invLogq with fastLog inlined by hand — the
			// function body exceeds the compiler's inlining budget and the
			// walk makes one call per fault. u = ub/2^53 is normal, so its
			// exponent/mantissa split below is exact; keep in lockstep with
			// fastLog, which the accuracy test pins.
			b := math.Float64bits(float64(ub) / (1 << 53))
			ex := int(b>>52) - 1023
			m := b & (1<<52 - 1)
			lt := &logTab[m>>45]
			f := math.Float64frombits(m | 0x3FF0000000000000)
			r := f*lt.inv - 1
			r2 := r * r
			skip := (float64(ex)*math.Ln2 + lt.ln + (r - r2*0.5 + r2*r*(1.0/3) - r2*r2*0.25)) * invLogq
			if skip >= limit { // also catches +inf
				break
			}
			i += int(skip) + 1
			if i >= nSites {
				break
			}
			lane := uint(i) & 63
			bit := uint64(1) << lane
			if bit&live == 0 {
				continue // dead lane of a partial group: draw consumed, fault discarded
			}
			edge := i >> 6
			e := ep[edge]
			if e.U >= 0 {
				defects[e.U] ^= bit
				touched[e.U>>6] |= 1 << (uint(e.U) & 63)
			}
			if e.V >= 0 {
				defects[e.V] ^= bit
				touched[e.V>>6] |= 1 << (uint(e.V) & 63)
			}
			if cutEdge[edge] {
				cutPar ^= bit
			}
			faults++
			if s.FaultLog != nil {
				s.FaultLog(int32(edge), int(lane))
			}
		}
		pg.CutParity = cutPar
		s.faults += faults
	}
	s.trials += uint64(k)
}
