package noise

import (
	"math"
	"math/rand/v2"
	"testing"

	"afs/internal/lattice"
)

// Replaying the sampler's own fault log through the scalar defect
// derivation (per-lane XOR toggles over edge endpoints) must reproduce the
// planes exactly: defect sets per lane, cut parity, and the touched
// bitmap's superset property.
func TestPlaneSamplerMatchesFaultLogReplay(t *testing.T) {
	for _, tc := range []struct {
		d, rounds int
		p         float64
	}{
		{3, 3, 0.02}, {5, 5, 0.01}, {7, 7, 0.003}, {5, 5, 0},
	} {
		g := lattice.New3D(tc.d, tc.rounds)
		cut := g.NorthCutQubits()
		s := NewPlaneSampler(g, tc.p, 11, 13, cut)
		type fault struct {
			edge int32
			lane int
		}
		var log []fault
		s.FaultLog = func(edge int32, lane int) { log = append(log, fault{edge, lane}) }

		var pg PlaneGroup
		for _, k := range []int{64, 64, 17, 1, 64} {
			log = log[:0]
			s.SampleGroup(&pg, k)
			if pg.K != k || pg.LaneMask != ^uint64(0)>>uint(64-k) {
				t.Fatalf("d=%d: group K=%d mask=%#x, want k=%d", tc.d, pg.K, pg.LaneMask, k)
			}
			// Replay per lane.
			for lane := 0; lane < k; lane++ {
				marks := map[int32]bool{}
				cutPar := false
				for _, f := range log {
					if f.lane != lane {
						continue
					}
					ed := &g.Edges[f.edge]
					if !g.IsBoundary(ed.U) {
						marks[ed.U] = !marks[ed.U]
					}
					if !g.IsBoundary(ed.V) {
						marks[ed.V] = !marks[ed.V]
					}
					if s.cutEdge[f.edge] {
						cutPar = !cutPar
					}
				}
				var want []int32
				for v := int32(0); v < int32(g.V); v++ {
					if marks[v] {
						want = append(want, v)
					}
				}
				got := pg.AppendLaneDefects(lane, nil)
				if !equalInt32(got, want) {
					t.Fatalf("d=%d p=%g lane %d: defects %v, replay says %v",
						tc.d, tc.p, lane, got, want)
				}
				if gotPar := pg.CutParity&(1<<uint(lane)) != 0; gotPar != cutPar {
					t.Fatalf("d=%d p=%g lane %d: cut parity %v, replay says %v",
						tc.d, tc.p, lane, gotPar, cutPar)
				}
			}
			// Dead lanes must be empty everywhere.
			for _, w := range pg.Defects {
				if w&^pg.LaneMask != 0 {
					t.Fatalf("d=%d: dead lanes carry defect bits", tc.d)
				}
			}
			if pg.CutParity&^pg.LaneMask != 0 {
				t.Fatalf("d=%d: dead lanes carry cut parity", tc.d)
			}
			// Touched must cover every vertex with a defect bit.
			for v, w := range pg.Defects {
				if w != 0 && pg.Touched[v>>6]&(1<<(uint(v)&63)) == 0 {
					t.Fatalf("d=%d: defect vertex %d not in touched bitmap", tc.d, v)
				}
			}
		}
	}
}

// The geometric-skip walk always spans the full 64-lane site space, so the
// fault pattern of lanes 0..k-1 must not depend on k.
func TestPlaneSamplerLanePrefixInvariance(t *testing.T) {
	g := lattice.New3D(5, 5)
	cut := g.NorthCutQubits()
	s := NewPlaneSampler(g, 0.01, 21, 34, cut)
	var full, part PlaneGroup
	s.SampleGroup(&full, 64)
	for _, k := range []int{1, 7, 17, 33, 63} {
		s.Reseed(21, 34)
		s.SampleGroup(&part, k)
		mask := part.LaneMask
		for v := range full.Defects {
			if full.Defects[v]&mask != part.Defects[v] {
				t.Fatalf("k=%d: lane prefix diverges at vertex %d", k, v)
			}
		}
		if full.CutParity&mask != part.CutParity {
			t.Fatalf("k=%d: lane-prefix cut parity diverges", k)
		}
	}
}

// Reseeding must reproduce identical groups.
func TestPlaneSamplerDeterministicReseed(t *testing.T) {
	g := lattice.New3D(7, 7)
	s := NewPlaneSampler(g, 0.005, 5, 6, g.NorthCutQubits())
	var a, b PlaneGroup
	s.Reseed(99, 7)
	s.SampleGroup(&a, 64)
	ref := append([]uint64(nil), a.Defects...)
	refCut := a.CutParity
	s.Reseed(99, 7)
	s.SampleGroup(&b, 64)
	for v := range ref {
		if b.Defects[v] != ref[v] {
			t.Fatalf("reseeded group diverges at vertex %d", v)
		}
	}
	if b.CutParity != refCut {
		t.Fatal("reseeded group cut parity diverges")
	}
}

// Seeded distribution-equivalence harness: the plane sampler abandons
// draw-for-draw parity with the scalar sampler (documented on
// PlaneSampler), so this test pins the aggregate statistics that must
// still agree — mean faults per trial, syndrome-weight class fractions,
// and the logical-cut parity rate — between the two samplers over a large
// fixed-seed run. Tolerances sit at ~6+ standard deviations of the
// Monte-Carlo estimates, so the test is deterministic in practice while a
// systematically biased sampler (wrong index space, off-by-one skip,
// dropped lane) fails it immediately.
func TestPlaneSamplerMatchesScalarInDistribution(t *testing.T) {
	const groups = 2000
	const trials = groups * 64
	g := lattice.New3D(5, 5)
	cut := g.NorthCutQubits()

	scalar := NewSampler(g, 0.01, 1001, 17)
	var tr Trial
	var sW0, sW1, sW2, sHeavy, sCut int
	for i := 0; i < trials; i++ {
		scalar.Sample(&tr)
		switch len(tr.Defects) {
		case 0:
			sW0++
		case 1:
			sW1++
		case 2:
			sW2++
		default:
			sHeavy++
		}
		if tr.NetData.Parity(cut) {
			sCut++
		}
	}

	plane := NewPlaneSampler(g, 0.01, 2002, 23, cut)
	var pg PlaneGroup
	var pW0, pW1, pW2, pHeavy, pCut int
	var buf []int32
	for i := 0; i < groups; i++ {
		plane.SampleGroup(&pg, 64)
		for lane := 0; lane < 64; lane++ {
			buf = pg.AppendLaneDefects(lane, buf[:0])
			switch len(buf) {
			case 0:
				pW0++
			case 1:
				pW1++
			case 2:
				pW2++
			default:
				pHeavy++
			}
			if pg.CutParity&(1<<uint(lane)) != 0 {
				pCut++
			}
		}
	}

	if relDiff(scalar.MeanFaults(), plane.MeanFaults()) > 0.015 {
		t.Fatalf("mean faults diverge: scalar %g plane %g",
			scalar.MeanFaults(), plane.MeanFaults())
	}
	n := float64(trials)
	for _, c := range []struct {
		name           string
		scalar, planes int
		tol            float64
	}{
		{"w0", sW0, pW0, 0.006},
		{"w1", sW1, pW1, 0.006},
		{"w2", sW2, pW2, 0.006},
		{"heavy", sHeavy, pHeavy, 0.008},
		{"cut-parity", sCut, pCut, 0.008},
	} {
		fs, fp := float64(c.scalar)/n, float64(c.planes)/n
		if math.Abs(fs-fp) > c.tol {
			t.Fatalf("%s fraction diverges: scalar %.4f plane %.4f (tol %g)",
				c.name, fs, fp, c.tol)
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// Steady-state group sampling must not allocate.
func TestPlaneSamplerZeroAllocSteadyState(t *testing.T) {
	g := lattice.New3D(11, 11)
	s := NewPlaneSampler(g, 0.001, 3, 4, g.NorthCutQubits())
	var pg PlaneGroup
	for i := 0; i < 8; i++ {
		s.SampleGroup(&pg, 64)
	}
	if avg := testing.AllocsPerRun(50, func() { s.SampleGroup(&pg, 64) }); avg != 0 {
		t.Fatalf("SampleGroup allocates %.1f times per call in steady state", avg)
	}
}

// fastLog must stay within 1e-10 of math.Log over the full range the
// 53-bit uniform conversion produces, including the extremes and the
// mantissa-bucket boundaries where the table reduction switches entries.
func TestFastLogAccuracy(t *testing.T) {
	check := func(u float64) {
		t.Helper()
		got, want := fastLog(u), math.Log(u)
		if d := math.Abs(got - want); d > 1e-10 {
			t.Fatalf("fastLog(%g) = %.17g, want %.17g (err %g)", u, got, want, d)
		}
	}
	check(1.0 / (1 << 53))      // smallest nonzero uniform
	check(math.Nextafter(1, 0)) // largest below 1
	check(0.5)
	for i := 0; i < 128; i++ {
		h := 1 + float64(i)/128
		check(h / 2)                  // exact bucket boundary
		check(math.Nextafter(h/2, 0)) // just below it
		check(math.Nextafter(h/2, 1)) // just above it
	}
	rng := rand.NewPCG(99, 0)
	for i := 0; i < 200000; i++ {
		u := float64(rng.Uint64()<<11>>11) / (1 << 53)
		if u == 0 {
			continue
		}
		check(u)
	}
}
