package noise

import (
	"math"
	"math/bits"
	"math/rand/v2"

	"afs/internal/lattice"
)

// RoundSampler draws the phenomenological noise model round by round for
// one logical qubit and one error type — the shape a streaming decoder
// consumes, where Sampler draws whole closed logical cycles at once. Each
// round, every data qubit suffers an X error with probability p (errors
// accumulate across rounds until corrected, so the sampler tracks the
// cumulative true syndrome) and every syndrome-bit measurement flips with
// probability p. The emitted detection events are the XOR of consecutive
// observed syndromes, exactly the quantity stream.Decoder.PushLayer
// ingests.
//
// The steady-state SampleRound path performs no allocation: faults are
// geometric-skip sampled, syndromes live in fixed bitsets, and the event
// slice is reused.
type RoundSampler struct {
	g    *lattice.Graph // 2-D code graph: data-qubit q is edge q
	p    float64
	logq float64
	pcg  *rand.PCG
	rng  *rand.Rand

	trueSyn Bitset  // cumulative data-error syndrome parity per ancilla
	obs     Bitset  // this round's observed syndrome (scratch)
	prev    Bitset  // previous round's observed syndrome
	events  []int32 // reused output
	rounds  uint64
}

// NewRoundSampler creates a per-round sampler for a distance-d code at
// physical error rate p. The two seed words make the stream reproducible;
// distinct qubits must use distinct seeds.
func NewRoundSampler(distance int, p float64, seed1, seed2 uint64) *RoundSampler {
	if p < 0 || p >= 1 {
		panic("noise: physical error rate must be in [0,1)")
	}
	g := lattice.Cached2D(distance)
	pcg := rand.NewPCG(seed1, seed2)
	return &RoundSampler{
		g:       g,
		p:       p,
		logq:    math.Log1p(-p),
		pcg:     pcg,
		rng:     rand.New(pcg),
		trueSyn: NewBitset(g.V),
		obs:     NewBitset(g.V),
		prev:    NewBitset(g.V),
	}
}

// Reset rewinds the sampler onto a fresh deterministic stream: pristine
// data qubits, no pending syndrome, and the given seed.
func (s *RoundSampler) Reset(seed1, seed2 uint64) {
	s.pcg.Seed(seed1, seed2)
	s.trueSyn.Clear()
	s.prev.Clear()
	s.rounds = 0
}

// Rounds returns the number of rounds sampled since construction or Reset.
func (s *RoundSampler) Rounds() uint64 { return s.rounds }

// SampleRound advances one round and returns its detection events as
// sorted ancilla indices in [0, d(d-1)). The slice is reused by the next
// call.
func (s *RoundSampler) SampleRound() []int32 {
	// New data errors this round fold into the cumulative true syndrome.
	// On the 2-D graph, edge index == data-qubit index, so a geometric-skip
	// sweep over the edge list is a sweep over the qubits.
	g := s.g
	edges := g.Edges
	SparseBernoulliLogQ(s.rng, len(edges), s.logq, func(q int) {
		e := &edges[q]
		if !g.IsBoundary(e.U) {
			s.trueSyn.Flip(int(e.U))
		}
		if !g.IsBoundary(e.V) {
			s.trueSyn.Flip(int(e.V))
		}
	})
	// Observed syndrome: the true parities, each measurement independently
	// flipped with probability p.
	s.obs.CopyFrom(s.trueSyn)
	SparseBernoulliLogQ(s.rng, g.V, s.logq, func(a int) {
		s.obs.Flip(a)
	})
	// Detection events: ancillas whose observed value changed since the
	// previous round.
	s.events = s.events[:0]
	for wi := range s.obs.words {
		w := s.obs.words[wi] ^ s.prev.words[wi]
		base := int32(wi << 6)
		for w != 0 {
			bit := int32(bits.TrailingZeros64(w))
			s.events = append(s.events, base+bit)
			w &= w - 1
		}
	}
	s.prev.CopyFrom(s.obs)
	s.rounds++
	return s.events
}
