package noise

import (
	"slices"
	"testing"

	"afs/internal/lattice"
)

func TestRoundSamplerDeterministic(t *testing.T) {
	a := NewRoundSampler(5, 0.01, 3, 9)
	b := NewRoundSampler(5, 0.01, 3, 9)
	for r := 0; r < 500; r++ {
		ea := append([]int32(nil), a.SampleRound()...)
		eb := append([]int32(nil), b.SampleRound()...)
		if !slices.Equal(ea, eb) {
			t.Fatalf("round %d diverged: %v vs %v", r, ea, eb)
		}
	}
	// Reset replays the identical stream.
	a.Reset(3, 9)
	c := NewRoundSampler(5, 0.01, 3, 9)
	for r := 0; r < 100; r++ {
		if !slices.Equal(a.SampleRound(), c.SampleRound()) {
			t.Fatalf("round %d diverged after Reset", r)
		}
	}
	if a.Rounds() != 100 {
		t.Fatalf("Rounds() = %d after Reset+100", a.Rounds())
	}
}

func TestRoundSamplerEventsWellFormed(t *testing.T) {
	const d = 4
	per := int32(d * (d - 1))
	s := NewRoundSampler(d, 0.05, 7, 1)
	for r := 0; r < 2000; r++ {
		ev := s.SampleRound()
		for i, x := range ev {
			if x < 0 || x >= per {
				t.Fatalf("round %d: event %d outside [0,%d)", r, x, per)
			}
			if i > 0 && ev[i-1] >= x {
				t.Fatalf("round %d: events not strictly increasing: %v", r, ev)
			}
		}
	}
}

// TestRoundSamplerEventRate checks the first-order detection-event rate:
// an ancilla fires when an odd number of its deg(v) adjacent data qubits
// flipped this round, or its measurement flipped this round or last round
// — so to first order the expected events per round are
// p * sum_v(deg(v) + 2).
func TestRoundSamplerEventRate(t *testing.T) {
	const d = 9
	const p = 0.004
	const rounds = 60000
	g := lattice.Cached2D(d)
	want := 0.0
	for v := int32(0); v < int32(g.V); v++ {
		want += p * float64(g.Degree(v)+2)
	}
	s := NewRoundSampler(d, p, 11, 4)
	total := 0
	for r := 0; r < rounds; r++ {
		total += len(s.SampleRound())
	}
	got := float64(total) / rounds
	if got < 0.85*want || got > 1.15*want {
		t.Fatalf("mean events/round = %.3f, want ~%.3f (first order)", got, want)
	}
}

// TestRoundSamplerZeroAllocSteadyState: the streaming engines call
// SampleRound once per stream per round; it must stay off the heap.
func TestRoundSamplerZeroAllocSteadyState(t *testing.T) {
	s := NewRoundSampler(11, 1e-3, 5, 6)
	for i := 0; i < 2000; i++ {
		s.SampleRound()
	}
	avg := testing.AllocsPerRun(500, func() {
		s.SampleRound()
	})
	if avg != 0 {
		t.Fatalf("steady-state SampleRound allocates %.2f objects/op, want 0", avg)
	}
}
