package noise

import (
	"math"
	"math/rand/v2"

	"afs/internal/lattice"
)

// Batch is a structure-of-arrays block of K sampled trials: all trials'
// fault edges in one slice, all defect lists in another, offsets delimiting
// each trial. The layout amortizes per-trial setup across the block and
// keeps the fused Monte-Carlo kernel's working set contiguous. All storage
// is reused by the next SampleBatch call.
type Batch struct {
	// K is the number of trials currently held.
	K int
	// EdgeOff has K+1 entries; trial i's fault edges are
	// Edges[EdgeOff[i]:EdgeOff[i+1]].
	EdgeOff []int32
	Edges   []int32
	// DefectOff has K+1 entries; trial i's defects (sorted, exactly as
	// Sampler.Sample produces them) are Defects[DefectOff[i]:DefectOff[i+1]].
	DefectOff []int32
	Defects   []int32
	// CutParity[i] is the parity of trial i's net data error over the
	// sampler's logical cut — the XOR over sampled cut-qubit spatial edges.
	// By linearity this replaces the per-trial NetData bitset: the residual
	// parity the failure check needs is CutParity XOR the correction's own
	// cut parity, so the batch pipeline never materializes data-qubit masks.
	CutParity []bool
}

// TrialEdges returns trial i's fault edges (aliasing batch storage).
func (b *Batch) TrialEdges(i int) []int32 {
	return b.Edges[b.EdgeOff[i]:b.EdgeOff[i+1]]
}

// TrialDefects returns trial i's sorted defect list (aliasing batch
// storage).
func (b *Batch) TrialDefects(i int) []int32 {
	return b.Defects[b.DefectOff[i]:b.DefectOff[i+1]]
}

// BatchSampler draws phenomenological-noise trials in structure-of-arrays
// batches. It consumes its random stream exactly like Sampler — one
// Float64 per geometric skip, trial after trial — so a BatchSampler seeded
// like a Sampler produces bit-identical trial sequences; the Monte-Carlo
// determinism contract (chunk-seeded results independent of worker count
// and of batching) rides on this equivalence, which batch_test.go enforces.
type BatchSampler struct {
	G *lattice.Graph
	P float64

	pcg  *rand.PCG
	rng  *rand.Rand
	logq float64
	// marks and epoch: the same stamped-parity scheme as Sampler, shared
	// across the whole batch — the epoch bump is all the per-trial reset.
	marks []uint64
	epoch uint64
	// cutEdge[e] reports whether a fault on edge e flips the logical cut:
	// spatial edges on the cut qubits, in any detector layer.
	cutEdge []bool
	// ep is a compact per-edge endpoint table with boundary endpoints
	// pre-resolved to -1: the stamping loops touch 8 bytes per fault edge
	// instead of the full lattice.Edge record and skip the IsBoundary test.
	ep     []edgeEP
	faults uint64
	trials uint64
}

type edgeEP struct{ U, V int32 }

// NewBatchSampler creates a batch sampler for graph g at physical error
// rate p, tracking net-error parity over the data qubits in cut (normally
// g.NorthCutQubits()). The seed words mirror NewSampler.
func NewBatchSampler(g *lattice.Graph, p float64, seed1, seed2 uint64, cut []int32) *BatchSampler {
	if p < 0 || p >= 1 {
		panic("noise: physical error rate must be in [0,1)")
	}
	inCut := make([]bool, g.NumDataQubits())
	for _, q := range cut {
		inCut[q] = true
	}
	cutEdge := make([]bool, len(g.Edges))
	ep := make([]edgeEP, len(g.Edges))
	for e := range g.Edges {
		ed := &g.Edges[e]
		cutEdge[e] = ed.Kind == lattice.Spatial && inCut[ed.Qubit]
		u, v := ed.U, ed.V
		if g.IsBoundary(u) {
			u = -1
		}
		if g.IsBoundary(v) {
			v = -1
		}
		ep[e] = edgeEP{u, v}
	}
	pcg := rand.NewPCG(seed1, seed2)
	return &BatchSampler{
		G:       g,
		P:       p,
		pcg:     pcg,
		rng:     rand.New(pcg),
		logq:    math.Log1p(-p),
		marks:   make([]uint64, g.V),
		cutEdge: cutEdge,
		ep:      ep,
	}
}

// Reseed rewinds the sampler onto a fresh deterministic stream without
// allocating (the per-chunk seeding the engine's determinism contract
// needs).
func (s *BatchSampler) Reseed(seed1, seed2 uint64) {
	s.pcg.Seed(seed1, seed2)
}

// CutEdges exposes the per-edge cut-flip table so the decode kernel can
// fold a full decoder's correction into the same parity. The slice must
// not be modified.
func (s *BatchSampler) CutEdges() []bool { return s.cutEdge }

// MeanFaults returns the empirical mean number of faults per trial sampled
// so far.
func (s *BatchSampler) MeanFaults() float64 {
	if s.trials == 0 {
		return 0
	}
	return float64(s.faults) / float64(s.trials)
}

// SampleBatch fills b with k freshly sampled trials, reusing its storage.
func (s *BatchSampler) SampleBatch(b *Batch, k int) {
	b.K = k
	b.EdgeOff = append(b.EdgeOff[:0], 0)
	b.DefectOff = append(b.DefectOff[:0], 0)
	b.Edges = b.Edges[:0]
	b.Defects = b.Defects[:0]
	if cap(b.CutParity) < k {
		b.CutParity = make([]bool, k)
	}
	b.CutParity = b.CutParity[:k]

	n := len(s.G.Edges)
	rng, logq := s.rng, s.logq
	cutEdge, ep, marks := s.cutEdge, s.ep, s.marks
	for t := 0; t < k; t++ {
		edgeStart := len(b.Edges)
		par := false
		// Geometric-skip sampling; draw-for-draw identical to Sampler.Sample.
		if logq < 0 {
			i := -1
			for {
				u := rng.Float64()
				if u == 0 {
					break // skip of +inf
				}
				skip := math.Floor(math.Log(u) / logq)
				if skip >= float64(n) { // also catches +inf
					break
				}
				i += int(skip) + 1
				if i >= n {
					break
				}
				b.Edges = append(b.Edges, int32(i))
				if cutEdge[i] {
					par = !par
				}
			}
		}
		b.CutParity[t] = par
		trialEdges := b.Edges[edgeStart:]
		s.faults += uint64(len(trialEdges))

		// Epoch-stamped parity toggles, one fresh epoch per trial (see
		// Sampler.Sample); boundary endpoints arrive pre-resolved to -1.
		s.epoch += 2
		odd, even := s.epoch, s.epoch-1
		for _, ei := range trialEdges {
			e := ep[ei]
			if e.U >= 0 {
				if marks[e.U] == odd {
					marks[e.U] = even
				} else {
					marks[e.U] = odd
				}
			}
			if e.V >= 0 {
				if marks[e.V] == odd {
					marks[e.V] = even
				} else {
					marks[e.V] = odd
				}
			}
		}
		defectStart := len(b.Defects)
		for _, ei := range trialEdges {
			e := ep[ei]
			if e.U >= 0 && marks[e.U] == odd {
				marks[e.U] = even
				b.Defects = append(b.Defects, e.U)
			}
			if e.V >= 0 && marks[e.V] == odd {
				marks[e.V] = even
				b.Defects = append(b.Defects, e.V)
			}
		}
		sortInt32(b.Defects[defectStart:])
		b.EdgeOff = append(b.EdgeOff, int32(len(b.Edges)))
		b.DefectOff = append(b.DefectOff, int32(len(b.Defects)))
	}
	s.trials += uint64(k)
}
