// Package faults is the deterministic fault-injection ("chaos") layer for
// the streaming decoder: a seeded, reproducible model of everything that
// can go wrong on the classical side of a fault-tolerant quantum computer's
// decoding path. The paper's CDA section (§V, Eq. 4) makes timeout failures
// a first-class failure mode — a decode past its deadline is as fatal as a
// logical error — and the FPGA-decoder literature treats the qubit→decoder
// link and the per-round deadline as the real-time contract the classical
// hardware must survive. This package supplies the adversary side of that
// contract:
//
//   - dropped, duplicated and reordered syndrome rounds on the link;
//   - bit flips on the CRC-framed (and payload-compressed) wire format,
//     detected by the receiver unless the flips forge a valid frame;
//   - artificial decoder stalls and per-window service-time inflation,
//     charged against the stream decoder's deadline budget.
//
// A Channel wraps the transfer of one stream's rounds. It is push-style —
// Transfer(events) returns what the decoder receives — so stream.Decoder,
// stream.Engine and cmd/afs-sim all compose with it without duplicating
// the injection logic; Wrap adapts it to a pull-style Source. The receiver
// retries a failed round up to a bounded budget with exponential backoff
// (penalized in model nanoseconds) and past the budget marks the round
// *erased*: the decoder gets an empty, flagged layer and the next window
// re-derives context instead of the stream stalling. Every injected fault
// lands in a Report whose identities Check verifies.
//
// Determinism: a Channel draws from its own seeded PCG, and faults depend
// only on the channel's own history — never on wall-clock time or on other
// streams — so a fixed-seed chaos run is bit-identical across worker
// counts.
package faults

import (
	"bytes"
	"math/rand/v2"

	"afs/internal/compress"
)

// Defaults for Config fields left zero.
const (
	// DefaultRetryBudget is the number of retransmissions before a round is
	// declared erased.
	DefaultRetryBudget = 2
	// DefaultRetryNS is the first retransmission's backoff penalty; each
	// further retry doubles it.
	DefaultRetryNS = 40.0
	// DefaultStallNS is the service-time inflation of one injected stall.
	DefaultStallNS = 200.0
	// DefaultReorderNS is the latency cost of the receiver's one-round
	// reorder buffer absorbing an out-of-order frame.
	DefaultReorderNS = 40.0
)

// Config parameterizes a Channel. The zero value injects nothing and models
// a perfect wire: since no link fault can occur, the CRC frame round-trip is
// provably the identity (a property the codec tests pin), so the channel
// elides it and the fault-free overhead reduces to bookkeeping. Set
// ForceFraming to run the full encode/verify/parse path regardless.
type Config struct {
	// Seed makes the injection sequence reproducible. Distinct streams must
	// use distinct seeds.
	Seed uint64
	// DropRate, DuplicateRate, ReorderRate, CorruptRate are per-transmission
	// fault probabilities in [0,1).
	DropRate      float64
	DuplicateRate float64
	ReorderRate   float64
	CorruptRate   float64
	// CorruptBits is the number of wire bits flipped per corruption event;
	// 0 selects 1. Higher values exercise the CRC's undetected-error floor.
	CorruptBits int
	// StallRate is the per-round probability of an artificial decoder
	// stall of StallNS (0 selects DefaultStallNS) model nanoseconds.
	StallRate float64
	StallNS   float64
	// InflateNS is a constant per-round service-time inflation, modeling a
	// decoder running slower than provisioned.
	InflateNS float64
	// RetryBudget bounds retransmissions per round (0 selects
	// DefaultRetryBudget; negative disables retries). RetryNS is the first
	// retry's backoff penalty, doubling per attempt (0 selects
	// DefaultRetryNS).
	RetryBudget int
	RetryNS     float64
	// ForceFraming runs the CRC encode/verify/parse round-trip even when no
	// link-fault class is active, so the framed path's host cost can be
	// measured in isolation.
	ForceFraming bool
}

// linkActive reports whether any wire-visible fault class can fire (stalls
// and inflation are latency-only and never touch the frame bytes).
func (c Config) linkActive() bool {
	return c.DropRate > 0 || c.DuplicateRate > 0 || c.ReorderRate > 0 ||
		c.CorruptRate > 0 || c.ForceFraming
}

// Active reports whether the configuration injects any fault at all.
func (c Config) Active() bool {
	return c.DropRate > 0 || c.DuplicateRate > 0 || c.ReorderRate > 0 ||
		c.CorruptRate > 0 || c.StallRate > 0 || c.InflateNS > 0
}

func (c Config) retryBudget() int {
	if c.RetryBudget < 0 {
		return 0
	}
	if c.RetryBudget == 0 {
		return DefaultRetryBudget
	}
	return c.RetryBudget
}

func (c Config) retryNS() float64 {
	if c.RetryNS <= 0 {
		return DefaultRetryNS
	}
	return c.RetryNS
}

func (c Config) stallNS() float64 {
	if c.StallNS <= 0 {
		return DefaultStallNS
	}
	return c.StallNS
}

func (c Config) corruptBits() int {
	if c.CorruptBits <= 0 {
		return 1
	}
	return c.CorruptBits
}

// StreamSeed derives stream i's channel seed from a fleet-wide base seed.
// Every fleet driver — the in-process stream.Engine, the sharded fleet
// router, the robustness harness — must use this one formula, so a fleet
// run and its in-process reference inject the identical fault sequence per
// stream and bit-identity checks across deployment shapes are meaningful.
func StreamSeed(base uint64, stream int) uint64 {
	return base + uint64(stream)*0x9e3779b9
}

// Source yields successive syndrome rounds of one stream (the pull-style
// shape cmd drivers use); the returned slice may be reused by the next
// call.
type Source func() []int32

// Channel models one stream's qubit→decoder link under injected faults.
// Not safe for concurrent use; in a fleet each stream owns one Channel,
// advanced only by the worker that owns the stream.
type Channel struct {
	cfg     Config
	per     int
	link    bool // any wire-visible fault class active (or framing forced)
	perfect bool // no fault class at all: Transfer is identity + counters
	rng     *rand.Rand
	pcg     *rand.PCG
	seq     uint32
	rep     Report
	omShard int // padded-slot hint for the live link ledger (linkObs)

	frame   []byte  // reused encode buffer
	corrupt []byte  // reused corrupted-copy buffer
	out     []int32 // reused decode buffer

	// perfectRounds batches Rounds/CleanRounds for the perfect-wire fast
	// path so its Transfer prologue stays small enough to inline; Report
	// folds it back in.
	perfectRounds uint64
}

// NewChannel builds a channel for rounds whose events index [0, per).
func NewChannel(per int, cfg Config) *Channel {
	pcg := rand.NewPCG(cfg.Seed, 0xc4a05)
	return &Channel{
		cfg:     cfg,
		per:     per,
		link:    cfg.linkActive(),
		perfect: !cfg.linkActive() && cfg.StallRate <= 0 && cfg.InflateNS <= 0,
		pcg:     pcg,
		rng:     rand.New(pcg),
		out:     make([]int32, 0, per),
		omShard: int(linkObsShardSeq.Add(1) - 1),
	}
}

// Reset rewinds the channel onto a fresh deterministic fault stream and
// clears the report.
func (c *Channel) Reset(seed uint64) {
	c.pcg.Seed(seed, 0xc4a05)
	c.seq = 0
	c.rep = Report{}
	c.perfectRounds = 0
}

// Report returns a snapshot of the link-side fault ledger.
func (c *Channel) Report() Report {
	rep := c.rep
	rep.Rounds += c.perfectRounds
	rep.CleanRounds += c.perfectRounds
	return rep
}

// roll draws a Bernoulli(rate) without consuming randomness when the rate
// is zero, so inactive fault classes cost nothing on the hot path.
func (c *Channel) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	return c.rng.Float64() < rate
}

// Transfer passes one round through the faulty link and returns what the
// decoder receives: the delivered events (aliasing an internal buffer
// reused by the next call — possibly *wrong* events, if corruption beat the
// CRC), whether the round was erased past the retry budget, and the model
// nanoseconds of injected service-time penalty (stalls, inflation, retry
// backoff, reorder buffering) to charge against the decode deadline. The
// fault-free steady state allocates nothing.
func (c *Channel) Transfer(events []int32) (delivered []int32, erased bool, penaltyNS float64) {
	if c.perfect {
		// No fault class at all: the transfer is the identity. This branch
		// is small enough to inline into the per-round push loop, which is
		// what keeps an always-hardened but fault-free stream within a few
		// percent of a bare one. (seq is not advanced — only the framed
		// path reads it, and a channel is perfect for its whole lifetime.)
		c.perfectRounds++
		return events, false, 0
	}
	return c.transfer(events)
}

func (c *Channel) transfer(events []int32) (delivered []int32, erased bool, penaltyNS float64) {
	// Publish this round's ledger movement to the live metrics on the way
	// out. The snapshot-diff keeps the fault logic free of metric calls,
	// and the open-coded defer plus the stack copies stay allocation-free.
	before := c.rep
	defer func() { linkObs.record(c.omShard, before, c.rep, penaltyNS) }()
	c.rep.Rounds++
	seq := c.seq
	c.seq++
	pen := c.cfg.InflateNS
	if c.roll(c.cfg.StallRate) {
		c.rep.Injected.Stalls++
		pen += c.cfg.stallNS()
	}
	if !c.link {
		// Perfect wire: no fault class can touch the frame bytes, so the
		// encode/verify/parse round-trip is the identity and is elided.
		c.rep.CleanRounds++
		return events, false, pen
	}

	faulted := false
	attempts := 1 + c.cfg.retryBudget()
	for a := 0; a < attempts; a++ {
		if a > 0 {
			c.rep.Retries++
			pen += c.cfg.retryNS() * float64(uint64(1)<<(a-1))
		}
		// The frame never arrives: the receiver sees the sequence gap (or an
		// ack timeout) and requests a retransmission.
		if c.roll(c.cfg.DropRate) {
			c.rep.Injected.Drops++
			c.rep.Detected++
			faulted = true
			continue
		}
		c.frame = compress.AppendRoundFrame(c.frame[:0], seq, events, c.per)
		wire := c.frame
		corrupted := false
		if c.roll(c.cfg.CorruptRate) {
			c.corrupt = append(c.corrupt[:0], c.frame...)
			for k := c.cfg.corruptBits(); k > 0; k-- {
				bit := c.rng.IntN(len(c.corrupt) * 8)
				c.corrupt[bit>>3] ^= 1 << (uint(bit) & 7)
			}
			// Flips that cancel leave the wire intact: nothing was injected.
			if !bytes.Equal(c.corrupt, c.frame) {
				c.rep.Injected.Corruptions++
				corrupted = true
				wire = c.corrupt
			}
		}
		gotSeq, out, err := compress.DecodeRoundFrame(wire, c.per, c.out[:0])
		c.out = out
		if err != nil || gotSeq != seq {
			// CRC/format failure or a forged sequence number: detected,
			// retransmit if budget remains.
			c.rep.Detected++
			faulted = true
			continue
		}
		if corrupted {
			// The corruption forged a frame the CRC accepts: the decoder is
			// silently fed wrong syndromes — the failure mode the framing
			// exists to make negligible.
			c.rep.Undetected++
			c.rep.CorruptRounds++
			return out, false, pen
		}
		// Delivered intact. Post-delivery link faults the receiver absorbs:
		// a duplicate copy is discarded by its stale sequence number; an
		// out-of-order arrival sits one slot in the reorder buffer, reaching
		// the decoder in order but late.
		if c.roll(c.cfg.DuplicateRate) {
			c.rep.Injected.Duplicates++
			c.rep.Detected++
			faulted = true
		}
		if c.roll(c.cfg.ReorderRate) {
			c.rep.Injected.Reorders++
			c.rep.Detected++
			pen += DefaultReorderNS
			faulted = true
		}
		if faulted {
			c.rep.RecoveredRounds++
		} else {
			c.rep.CleanRounds++
		}
		return out, false, pen
	}
	// Retry budget exhausted: the round is erased. The decoder gets an
	// empty, flagged layer and the next window re-derives context.
	c.rep.ErasedRounds++
	return nil, true, pen
}

// Wrap composes the channel over a pull-style source: the returned Source
// yields what the decoder receives (an erased round becomes an empty event
// list), and onRound — when non-nil — observes each round's erasure flag
// and service-time penalty so the caller can charge its deadline budget.
func (c *Channel) Wrap(src Source, onRound func(erased bool, penaltyNS float64)) Source {
	return func() []int32 {
		events, erased, pen := c.Transfer(src())
		if onRound != nil {
			onRound(erased, pen)
		}
		if erased {
			return nil
		}
		return events
	}
}
