package faults

import "fmt"

// Injected tallies the faults a Channel actually injected (a rolled fault
// that provably had no effect on the wire — e.g. corruption flips that
// cancel — is not counted). Stalls are latency-only faults: they inflate
// service time but put nothing wrong on the link, so they sit outside the
// detected/undetected identity.
type Injected struct {
	Drops       uint64 `json:"drops"`
	Duplicates  uint64 `json:"duplicates"`
	Reorders    uint64 `json:"reorders"`
	Corruptions uint64 `json:"corruptions"`
	Stalls      uint64 `json:"stalls"`
}

// Link returns the link-visible injected faults — the ones the receiver
// must detect or silently consume.
func (i Injected) Link() uint64 {
	return i.Drops + i.Duplicates + i.Reorders + i.Corruptions
}

// Report is the fault ledger of one stream (or, after Merge, a fleet): what
// was injected, what the link detected and recovered, what was erased, and
// how the deadline-aware decode path degraded. Every injected link fault is
// accounted for — Check enforces the identities the chaos tests rely on.
type Report struct {
	// Rounds is the number of syndrome rounds offered to the link.
	Rounds uint64 `json:"rounds"`
	// Retries is the number of retransmissions the receiver requested.
	Retries uint64 `json:"retries"`

	Injected Injected `json:"injected"`

	// Detected counts injected link faults the receiver noticed (CRC or
	// format failure, sequence gap, duplicate or out-of-order sequence
	// number); Undetected counts corruptions that passed the CRC and were
	// delivered as wrong syndromes. Detected+Undetected == Injected.Link().
	Detected   uint64 `json:"detected"`
	Undetected uint64 `json:"undetected"`

	// Per-round outcomes; Clean+Recovered+Corrupt+Erased == Rounds.
	CleanRounds     uint64 `json:"clean_rounds"`     // no fault on the path
	RecoveredRounds uint64 `json:"recovered_rounds"` // faulted but delivered intact
	CorruptRounds   uint64 `json:"corrupt_rounds"`   // delivered wrong (undetected)
	ErasedRounds    uint64 `json:"erased_rounds"`    // retry budget exhausted

	// Stream-runtime counters, filled by the deadline-aware decoder.
	Windows         uint64  `json:"windows"`          // sliding-window decodes
	Timeouts        uint64  `json:"timeouts"`         // decodes past the budget
	DegradedCommits uint64  `json:"degraded_commits"` // one-layer commits: the decode itself overran
	ShedRounds      uint64  `json:"shed_rounds"`      // rounds dropped by backpressure
	BacklogSheds    uint64  `json:"backlog_sheds"`    // shedding episodes entered
	BacklogRecovers uint64  `json:"backlog_recovers"` // episodes the queue drained from
	PenaltyNS       float64 `json:"penalty_ns"`       // injected service-time inflation charged
}

// Merge folds o into r (fleet aggregation).
func (r *Report) Merge(o Report) {
	r.Rounds += o.Rounds
	r.Retries += o.Retries
	r.Injected.Drops += o.Injected.Drops
	r.Injected.Duplicates += o.Injected.Duplicates
	r.Injected.Reorders += o.Injected.Reorders
	r.Injected.Corruptions += o.Injected.Corruptions
	r.Injected.Stalls += o.Injected.Stalls
	r.Detected += o.Detected
	r.Undetected += o.Undetected
	r.CleanRounds += o.CleanRounds
	r.RecoveredRounds += o.RecoveredRounds
	r.CorruptRounds += o.CorruptRounds
	r.ErasedRounds += o.ErasedRounds
	r.Windows += o.Windows
	r.Timeouts += o.Timeouts
	r.DegradedCommits += o.DegradedCommits
	r.ShedRounds += o.ShedRounds
	r.BacklogSheds += o.BacklogSheds
	r.BacklogRecovers += o.BacklogRecovers
	r.PenaltyNS += o.PenaltyNS
}

// PTimeout is the empirical timeout-failure probability per window decode —
// the p_tof the paper's Eq. 4 requires to stay far below p_log.
func (r Report) PTimeout() float64 {
	if r.Windows == 0 {
		return 0
	}
	return float64(r.Timeouts) / float64(r.Windows)
}

// PErasure is the fraction of rounds lost past the retry budget.
func (r Report) PErasure() float64 {
	if r.Rounds == 0 {
		return 0
	}
	return float64(r.ErasedRounds) / float64(r.Rounds)
}

// Check verifies the ledger's internal identities: every injected link
// fault is either detected or undetected, every round has exactly one
// outcome, and the degradation counters are mutually consistent. A non-nil
// error means the chaos layer lost track of a fault.
func (r Report) Check() error {
	if got, want := r.Detected+r.Undetected, r.Injected.Link(); got != want {
		return fmt.Errorf("faults: detected %d + undetected %d != injected link faults %d",
			r.Detected, r.Undetected, want)
	}
	if got := r.CleanRounds + r.RecoveredRounds + r.CorruptRounds + r.ErasedRounds; got != r.Rounds {
		return fmt.Errorf("faults: round outcomes %d != rounds %d", got, r.Rounds)
	}
	if r.Undetected != r.CorruptRounds {
		return fmt.Errorf("faults: undetected %d != corrupt rounds %d", r.Undetected, r.CorruptRounds)
	}
	if r.DegradedCommits > r.Timeouts {
		return fmt.Errorf("faults: %d degraded commits over %d timeouts", r.DegradedCommits, r.Timeouts)
	}
	if r.Timeouts > r.Windows {
		return fmt.Errorf("faults: %d timeouts over %d windows", r.Timeouts, r.Windows)
	}
	if r.BacklogRecovers > r.BacklogSheds {
		return fmt.Errorf("faults: %d backlog recoveries over %d shed episodes",
			r.BacklogRecovers, r.BacklogSheds)
	}
	return nil
}

// CheckFinal verifies the ledger of a run whose streams have all ended
// (flushed): on top of Check's identities, every shedding episode entered
// must have been closed — a stream's Flush closes a still-open episode, so
// a surviving imbalance is exactly the cross-stream drift a reset that
// silently cleared the shedding flag used to leak. A live mid-stream
// snapshot may legitimately hold one open episode per stream; use Check
// for those.
func (r Report) CheckFinal() error {
	if err := r.Check(); err != nil {
		return err
	}
	if r.BacklogSheds != r.BacklogRecovers {
		return fmt.Errorf("faults: %d shedding episodes never closed (%d sheds, %d recoveries)",
			r.BacklogSheds-r.BacklogRecovers, r.BacklogSheds, r.BacklogRecovers)
	}
	return nil
}

func (r Report) String() string {
	return fmt.Sprintf(
		"rounds %d (clean %d, recovered %d, corrupt %d, erased %d) | injected: %d drop, %d dup, %d reorder, %d corrupt, %d stall | detected %d, undetected %d, retries %d | windows %d, timeouts %d (p_tof %.2e), shed %d",
		r.Rounds, r.CleanRounds, r.RecoveredRounds, r.CorruptRounds, r.ErasedRounds,
		r.Injected.Drops, r.Injected.Duplicates, r.Injected.Reorders,
		r.Injected.Corruptions, r.Injected.Stalls,
		r.Detected, r.Undetected, r.Retries,
		r.Windows, r.Timeouts, r.PTimeout(), r.ShedRounds)
}
