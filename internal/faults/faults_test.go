package faults

import (
	"math/rand/v2"
	"testing"
)

// randRounds generates a reproducible stream of event rounds over per
// ancillas.
func randRounds(seed uint64, per, n int) [][]int32 {
	rng := rand.New(rand.NewPCG(seed, 1))
	rounds := make([][]int32, n)
	for i := range rounds {
		var ev []int32
		for x := 0; x < per; x++ {
			if rng.Float64() < 0.05 {
				ev = append(ev, int32(x))
			}
		}
		rounds[i] = ev
	}
	return rounds
}

func chaosConfig(seed uint64) Config {
	return Config{
		Seed:          seed,
		DropRate:      0.05,
		DuplicateRate: 0.04,
		ReorderRate:   0.03,
		CorruptRate:   0.08,
		StallRate:     0.02,
		InflateNS:     1,
	}
}

func TestChannelDeterministic(t *testing.T) {
	const per = 110
	rounds := randRounds(3, per, 2000)
	a := NewChannel(per, chaosConfig(99))
	b := NewChannel(per, chaosConfig(99))
	for i, ev := range rounds {
		da, ea, pa := a.Transfer(ev)
		db, eb, pb := b.Transfer(ev)
		if ea != eb || pa != pb || len(da) != len(db) {
			t.Fatalf("round %d diverged: (%v,%v,%v) vs (%v,%v,%v)", i, len(da), ea, pa, len(db), eb, pb)
		}
		for j := range da {
			if da[j] != db[j] {
				t.Fatalf("round %d event %d diverged", i, j)
			}
		}
	}
	if a.Report() != b.Report() {
		t.Fatalf("reports diverged:\n%v\n%v", a.Report(), b.Report())
	}
}

func TestChannelAccountingIdentities(t *testing.T) {
	const per = 110
	for _, cfg := range []Config{
		{Seed: 1}, // fault-free
		chaosConfig(2),
		{Seed: 3, DropRate: 0.5, RetryBudget: 1},
		{Seed: 4, CorruptRate: 0.9, CorruptBits: 4},
		{Seed: 5, DuplicateRate: 0.5, ReorderRate: 0.5},
		{Seed: 6, DropRate: 0.95, RetryBudget: -1}, // heavy erasure
	} {
		ch := NewChannel(per, cfg)
		for _, ev := range randRounds(cfg.Seed, per, 3000) {
			ch.Transfer(ev)
		}
		rep := ch.Report()
		if err := rep.Check(); err != nil {
			t.Errorf("cfg %+v: %v\n%v", cfg, err, rep)
		}
		if rep.Rounds != 3000 {
			t.Errorf("cfg %+v: %d rounds recorded, want 3000", cfg, rep.Rounds)
		}
	}
}

func TestChannelFaultFreeIsTransparent(t *testing.T) {
	const per = 110
	ch := NewChannel(per, Config{Seed: 7})
	for _, ev := range randRounds(11, per, 500) {
		got, erased, pen := ch.Transfer(ev)
		if erased || pen != 0 {
			t.Fatalf("fault-free transfer erased=%v pen=%v", erased, pen)
		}
		if len(got) != len(ev) {
			t.Fatalf("fault-free transfer changed event count: %d != %d", len(got), len(ev))
		}
		for i := range got {
			if got[i] != ev[i] {
				t.Fatalf("fault-free transfer changed event %d", i)
			}
		}
	}
	rep := ch.Report()
	if rep.CleanRounds != rep.Rounds || rep.Injected.Link() != 0 {
		t.Fatalf("fault-free run not clean: %v", rep)
	}
}

func TestChannelErasesPastRetryBudget(t *testing.T) {
	ch := NewChannel(20, Config{Seed: 8, DropRate: 1})
	_, erased, pen := ch.Transfer([]int32{1, 2})
	if !erased {
		t.Fatal("certain drop did not erase the round")
	}
	if pen <= 0 {
		t.Fatal("erasure charged no retry backoff")
	}
	rep := ch.Report()
	if rep.ErasedRounds != 1 || rep.Retries != uint64(DefaultRetryBudget) {
		t.Fatalf("erasure ledger wrong: %v", rep)
	}
	if rep.Injected.Drops != uint64(1+DefaultRetryBudget) || rep.Detected != rep.Injected.Drops {
		t.Fatalf("drop attempts unaccounted: %v", rep)
	}
}

func TestChannelDetectsCorruption(t *testing.T) {
	// Single-bit corruption can never beat the CRC: with retries disabled
	// every corrupted round must surface as erased, never as wrong events.
	const per = 110
	ch := NewChannel(per, Config{Seed: 9, CorruptRate: 1, RetryBudget: -1})
	rounds := randRounds(13, per, 2000)
	for _, ev := range rounds {
		got, erased, _ := ch.Transfer(ev)
		if !erased {
			t.Fatalf("single-bit corruption slipped through: delivered %d events", len(got))
		}
	}
	rep := ch.Report()
	if rep.Undetected != 0 || rep.CorruptRounds != 0 {
		t.Fatalf("CRC missed a single-bit flip: %v", rep)
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestChannelResetRewindsDeterministically(t *testing.T) {
	const per = 50
	rounds := randRounds(17, per, 300)
	ch := NewChannel(per, chaosConfig(21))
	var first []int
	for _, ev := range rounds {
		got, erased, _ := ch.Transfer(ev)
		if erased {
			first = append(first, -1)
		} else {
			first = append(first, len(got))
		}
	}
	ch.Reset(21)
	for i, ev := range rounds {
		got, erased, _ := ch.Transfer(ev)
		want := first[i]
		if erased && want != -1 || !erased && len(got) != want {
			t.Fatalf("round %d: replay diverged after Reset", i)
		}
	}
}

func TestWrapDeliversErasedAsEmpty(t *testing.T) {
	ch := NewChannel(20, Config{Seed: 30, DropRate: 1, RetryBudget: -1})
	var sawErased bool
	src := ch.Wrap(func() []int32 { return []int32{3, 4} }, func(erased bool, pen float64) {
		sawErased = sawErased || erased
	})
	if got := src(); len(got) != 0 {
		t.Fatalf("erased round delivered %d events", len(got))
	}
	if !sawErased {
		t.Fatal("onRound never saw the erasure")
	}
}

func TestTransferZeroAllocFaultFree(t *testing.T) {
	const per = 110
	ch := NewChannel(per, Config{Seed: 40})
	ev := []int32{3, 17, 44, 91, 109}
	ch.Transfer(ev) // reach steady-state buffer capacities
	allocs := testing.AllocsPerRun(500, func() {
		ch.Transfer(ev)
	})
	if allocs != 0 {
		t.Fatalf("fault-free Transfer allocates %.1f/op, want 0", allocs)
	}
}

func TestTransferZeroAllocUnderChaos(t *testing.T) {
	const per = 110
	ch := NewChannel(per, chaosConfig(41))
	ev := []int32{3, 17, 44, 91, 109}
	for i := 0; i < 200; i++ {
		ch.Transfer(ev)
	}
	allocs := testing.AllocsPerRun(500, func() {
		ch.Transfer(ev)
	})
	if allocs != 0 {
		t.Fatalf("chaos Transfer allocates %.1f/op, want 0", allocs)
	}
}

// TestCheckFinalCatchesEpisodeDrift: CheckFinal extends the ledger
// identities to flushed runs — every shedding episode entered must have
// been closed. An imbalance is exactly what a reset that silently dropped
// the shedding flag used to leak.
func TestCheckFinalCatchesEpisodeDrift(t *testing.T) {
	rep := Report{
		Rounds: 10, CleanRounds: 10,
		Windows: 5, BacklogSheds: 2, BacklogRecovers: 2,
	}
	if err := rep.CheckFinal(); err != nil {
		t.Fatalf("balanced ledger rejected: %v", err)
	}
	rep.BacklogRecovers = 1
	if err := rep.Check(); err != nil {
		t.Fatalf("Check must tolerate an open episode (live snapshot): %v", err)
	}
	if err := rep.CheckFinal(); err == nil {
		t.Fatal("CheckFinal accepted a never-closed shedding episode")
	}
	// CheckFinal still enforces everything Check does.
	rep.BacklogRecovers = 3
	if err := rep.CheckFinal(); err == nil {
		t.Fatal("CheckFinal accepted more recoveries than episodes")
	}
}
