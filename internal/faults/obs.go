package faults

import (
	"sync/atomic"

	"afs/internal/obs"
)

// faultsObs publishes the live link-side ledger: every counter mirrors a
// Report field, incremented on the same code path that updates the ledger,
// so a scrape mid-run sees exactly what the merged post-run Report will
// say. Only fault-active channels pay for it — the perfect-wire fast path
// (Transfer's inlined prologue) stays untouched, and a perfect link's
// rounds are already visible through the stream-side counters.
type faultsObs struct {
	rounds    *obs.Counter
	retries   *obs.Counter
	injected  *obs.Counter // link-visible injected faults (drops+dups+reorders+corruptions)
	stalls    *obs.Counter
	detected  *obs.Counter
	undetect  *obs.Counter
	recovered *obs.Counter
	erased    *obs.Counter
	penaltyNS *obs.Counter // injected service time, in whole model ns
}

var (
	linkObs = func() *faultsObs {
		reg := obs.Default()
		const s = obs.DefaultShards
		return &faultsObs{
			rounds:    reg.NewCounter("afs_link_rounds_total", "rounds carried over fault-active links", s),
			retries:   reg.NewCounter("afs_link_retries_total", "retransmissions requested by the receiver", s),
			injected:  reg.NewCounter("afs_link_injected_total", "link-visible faults injected (drop/dup/reorder/corrupt)", s),
			stalls:    reg.NewCounter("afs_link_stalls_total", "injected decoder stalls", s),
			detected:  reg.NewCounter("afs_link_detected_total", "injected link faults the receiver detected", s),
			undetect:  reg.NewCounter("afs_link_undetected_total", "corruptions delivered past the CRC as wrong syndromes", s),
			recovered: reg.NewCounter("afs_link_recovered_rounds_total", "faulted rounds delivered intact", s),
			erased:    reg.NewCounter("afs_link_erased_rounds_total", "rounds erased past the retry budget", s),
			penaltyNS: reg.NewCounter("afs_link_penalty_ns_total", "injected service-time penalty in model ns", s),
		}
	}()
	linkObsShardSeq atomic.Uint32
)

// record publishes the delta between two ledger snapshots bracketing one
// transfer. Zero deltas skip the atomic entirely, so a mostly-clean round
// costs a handful of predictable branches.
func (o *faultsObs) record(shard int, before, after Report, penaltyNS float64) {
	o.rounds.Inc(shard)
	addDelta := func(c *obs.Counter, b, a uint64) {
		if a != b {
			c.Add(shard, a-b)
		}
	}
	addDelta(o.retries, before.Retries, after.Retries)
	addDelta(o.injected, before.Injected.Link(), after.Injected.Link())
	addDelta(o.stalls, before.Injected.Stalls, after.Injected.Stalls)
	addDelta(o.detected, before.Detected, after.Detected)
	addDelta(o.undetect, before.Undetected, after.Undetected)
	addDelta(o.recovered, before.RecoveredRounds, after.RecoveredRounds)
	addDelta(o.erased, before.ErasedRounds, after.ErasedRounds)
	if penaltyNS > 0 {
		o.penaltyNS.Add(shard, uint64(penaltyNS))
	}
}
