// Package fleet turns the in-process stream engine into a horizontally
// sharded decode service: a front-end router assigns logical-qubit streams
// to N decode-shard processes over TCP or Unix sockets, speaking a
// versioned wire protocol that reuses the CRC-32C round framing and §VII
// syndrome compression of internal/compress for the per-round payload.
//
// The robustness core is crash recovery with byte-identical decoding:
// shards checkpoint each stream's decoder (stream.Snapshot) every
// CheckpointEvery rounds, the router journals every post-chaos round since
// the last checkpoint, and a shard crash — detected by read/write errors or
// heartbeat loss — triggers bounded-backoff reconnect and, past the retry
// budget, deterministic failover to the surviving shards. Either way the
// replacement decoder restores the checkpoint, replays the journal, and
// continues the stream as if nothing happened; duplicate corrections
// regenerated during replay are deduplicated by per-stream sequence number,
// so the corrections the router delivers are bit-identical to an
// uninterrupted in-process stream.Engine run under the same seeds
// (test-enforced).
//
// Chaos (internal/faults) runs router-side, *before* the socket: the wire
// carries post-fault syndromes. That keeps decoding deterministic under
// real transport timing, keeps the fault ledger exact across shard death
// (the channels live in the router, which survives), and guarantees a
// replayed round re-uses the original fault outcome instead of rolling new
// faults.
package fleet

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"afs/internal/compress"
	"afs/internal/lattice"
	"afs/internal/stream"
)

// ProtoVersion is the fleet wire-protocol version. A peer speaking a
// different version is rejected at decode time — version skew must fail
// loudly, never mis-decode.
const ProtoVersion = 1

// Message types. Router→shard: open, round, flush, ping. Shard→router:
// openOK/refuse, corr, checkpoint, flushOK, pong.
const (
	msgOpen       = 1  // open or adopt a stream (JSON openPayload)
	msgOpenOK     = 2  // stream admitted
	msgRefuse     = 3  // admission refused (payload = reason)
	msgRound      = 4  // one syndrome round (roundPayload)
	msgCorr       = 5  // one committed correction (corrPayload)
	msgCheckpoint = 6  // periodic decoder snapshot (ckptPayload)
	msgFlush      = 7  // flush every stream on the shard
	msgFlushOK    = 8  // per-stream ledgers (JSON map[uint32]faults.Report)
	msgPing       = 9  // heartbeat probe
	msgPong       = 10 // heartbeat reply
	msgClose      = 11 // drop a stream without flushing (it moved elsewhere)
)

// Envelope layout (little-endian):
//
//	length  u32  bytes that follow, version through crc
//	version u8   ProtoVersion
//	type    u8   message type
//	stream  u32  stream id (0 where not applicable)
//	payload      type-specific
//	crc     u32  CRC-32C of version..payload
//
// The envelope CRC covers the header the round-frame CRC cannot see, so a
// bit flip in the type or stream field is detected instead of routing a
// round to the wrong decoder.
const (
	envHeadBytes = 1 + 1 + 4 // version + type + stream
	envTailBytes = 4         // crc

	// maxEnvelope bounds a single message. The largest legitimate payload
	// is a checkpoint snapshot (JSON of a near-full window at high
	// distance, tens of KiB); anything past this is garbage framing, and
	// bounding it keeps a corrupted length field from provoking a huge
	// allocation.
	maxEnvelope = 1 << 22
)

var envCRC = crc32.MakeTable(crc32.Castagnoli)

// Protocol decode failures. Like compress's frame errors, these are
// *detected* corruption: arbitrary bytes must never panic or mis-decode.
var (
	ErrEnvelope = errors.New("fleet: malformed envelope")
	ErrVersion  = errors.New("fleet: protocol version mismatch")
	ErrCRC      = errors.New("fleet: envelope CRC mismatch")
)

// envelope is one decoded wire message. Payload aliases the decode buffer
// and is only valid until the next read.
type envelope struct {
	typ     uint8
	stream  uint32
	payload []byte
}

// appendEnvelope appends one framed message to dst and returns the extended
// slice. The steady-state path allocates nothing once dst has capacity.
func appendEnvelope(dst []byte, typ uint8, streamID uint32, payload []byte) []byte {
	n := envHeadBytes + len(payload) + envTailBytes
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	start := len(dst)
	dst = append(dst, ProtoVersion, typ)
	dst = binary.LittleEndian.AppendUint32(dst, streamID)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[start:], envCRC)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// decodeEnvelope parses the post-length body of one message (version
// through crc). Any corruption — truncation, a version skew, a CRC
// mismatch — yields an error and never a panic.
func decodeEnvelope(body []byte) (envelope, error) {
	if len(body) < envHeadBytes+envTailBytes {
		return envelope{}, ErrEnvelope
	}
	head, tail := body[:len(body)-envTailBytes], body[len(body)-envTailBytes:]
	if crc32.Checksum(head, envCRC) != binary.LittleEndian.Uint32(tail) {
		return envelope{}, ErrCRC
	}
	if head[0] != ProtoVersion {
		return envelope{}, fmt.Errorf("%w: got %d, want %d", ErrVersion, head[0], ProtoVersion)
	}
	return envelope{
		typ:     head[1],
		stream:  binary.LittleEndian.Uint32(head[2:6]),
		payload: head[envHeadBytes:],
	}, nil
}

// readEnvelope reads one length-prefixed message from r, reusing *buf
// across calls. io.EOF is returned untouched on a clean close between
// messages so callers can distinguish shutdown from mid-message truncation.
func readEnvelope(r io.Reader, buf *[]byte) (envelope, error) {
	var lb [4]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return envelope{}, err
	}
	n := binary.LittleEndian.Uint32(lb[:])
	if n < envHeadBytes+envTailBytes || n > maxEnvelope {
		return envelope{}, ErrEnvelope
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	body := (*buf)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return envelope{}, err
	}
	return decodeEnvelope(body)
}

// roundPayload carries one syndrome round:
//
//	penalty u64  IEEE-754 bits of the injected service-time penalty (ns)
//	flags   u8   bit 0: round erased (an explicit seq follows, no frame)
//	seq     u32  round sequence number (erased rounds only)
//	frame        compress round frame (non-erased rounds; carries its own seq)
//
// The frame reuses the §VII hybrid encoding (sparse indices or bitmap,
// whichever is smaller) plus its own CRC-32C — the same bytes the
// qubit→decoder link of the paper would carry, now inside a routed
// envelope. Erased rounds have no frame to carry the sequence number, so
// they carry it explicitly: the shard's end-to-end ordering check must
// cover every round, or a replayed erased round would desynchronize a
// recovered stream undetected.
const roundFlagErased = 1

func appendRoundPayload(dst []byte, seq uint32, events []int32, erased bool, penaltyNS float64, per int) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(penaltyNS))
	if erased {
		dst = append(dst, roundFlagErased)
		return binary.LittleEndian.AppendUint32(dst, seq)
	}
	dst = append(dst, 0)
	return compress.AppendRoundFrame(dst, seq, events, per)
}

// decodeRoundPayload parses a roundPayload. events aliases out's backing
// array, like compress.DecodeRoundFrame.
func decodeRoundPayload(p []byte, per int, out []int32) (seq uint32, events []int32, erased bool, penaltyNS float64, err error) {
	if len(p) < 9 {
		return 0, out[:0], false, 0, ErrEnvelope
	}
	penaltyNS = math.Float64frombits(binary.LittleEndian.Uint64(p))
	if math.IsNaN(penaltyNS) || math.IsInf(penaltyNS, 0) || penaltyNS < 0 {
		return 0, out[:0], false, 0, ErrEnvelope
	}
	flags := p[8]
	if flags&^roundFlagErased != 0 {
		return 0, out[:0], false, 0, ErrEnvelope
	}
	if flags&roundFlagErased != 0 {
		if len(p) != 13 {
			return 0, out[:0], false, 0, ErrEnvelope
		}
		return binary.LittleEndian.Uint32(p[9:]), out[:0], true, penaltyNS, nil
	}
	seq, events, err = compress.DecodeRoundFrame(p[9:], per, out)
	return seq, events, false, penaltyNS, err
}

// corrPayload carries one committed correction:
//
//	seq     u64  per-stream correction sequence number, 1-based
//	kind    u8   lattice.EdgeKind
//	qubit   i32
//	ancilla i32
//	round   i64
//
// The sequence number is the replay-dedup key: a restored shard replaying
// journaled rounds regenerates corrections the router already delivered,
// byte-identical and with the same seq, and the router drops seq <= the
// last delivered.
const corrPayloadBytes = 8 + 1 + 4 + 4 + 8

func appendCorrPayload(dst []byte, seq uint64, c stream.Correction) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = append(dst, uint8(c.Kind))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(c.Qubit))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(c.Ancilla))
	return binary.LittleEndian.AppendUint64(dst, uint64(int64(c.Round)))
}

func decodeCorrPayload(p []byte) (seq uint64, c stream.Correction, err error) {
	if len(p) != corrPayloadBytes {
		return 0, c, ErrEnvelope
	}
	seq = binary.LittleEndian.Uint64(p)
	if p[8] > uint8(lattice.Temporal) {
		return 0, c, ErrEnvelope
	}
	c.Kind = lattice.EdgeKind(p[8])
	c.Qubit = int32(binary.LittleEndian.Uint32(p[9:]))
	c.Ancilla = int32(binary.LittleEndian.Uint32(p[13:]))
	c.Round = int(int64(binary.LittleEndian.Uint64(p[17:])))
	return seq, c, nil
}

// ckptPayload carries one checkpoint:
//
//	rounds  u64  rounds the stream had ingested when the snapshot was taken
//	corrSeq u64  corrections the stream had emitted by then
//	snap         JSON of stream.Snapshot
const ckptHeadBytes = 16

func appendCkptPayload(dst []byte, rounds, corrSeq uint64, snapJSON []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, rounds)
	dst = binary.LittleEndian.AppendUint64(dst, corrSeq)
	return append(dst, snapJSON...)
}

func decodeCkptPayload(p []byte) (rounds, corrSeq uint64, snapJSON []byte, err error) {
	if len(p) < ckptHeadBytes {
		return 0, 0, nil, ErrEnvelope
	}
	return binary.LittleEndian.Uint64(p), binary.LittleEndian.Uint64(p[8:]), p[ckptHeadBytes:], nil
}

// openPayload is the JSON body of msgOpen: the stream's static decoder
// configuration plus, when adopting a stream across a crash, the checkpoint
// to restore and the counters to resume from. A nil Snapshot opens a fresh
// stream at round 0.
type openPayload struct {
	Distance   int     `json:"distance"`
	Window     int     `json:"window"`
	Commit     int     `json:"commit"`
	DeadlineNS float64 `json:"deadline_ns,omitempty"`
	QueueCap   int     `json:"queue_cap,omitempty"`

	// LaneBatch asks the shard to resolve this stream's windows through its
	// cross-stream lane batcher (stream.LaneBatcher): ready windows from up
	// to 64 same-shape streams decode word-parallel as bit-plane lanes. The
	// router sets it only for non-robust configurations (robust decoders
	// never defer), and committed corrections are bit-identical either way.
	LaneBatch bool `json:"lane_batch,omitempty"`

	// Rounds and CorrSeq are the checkpoint's counters; the shard resumes
	// its round count and correction sequence from them so replayed rounds
	// regenerate the original sequence numbers. Snapshot holds the
	// checkpoint's stream.Snapshot verbatim (the router stores and forwards
	// the shard-encoded JSON without re-marshaling it).
	Rounds   uint64          `json:"rounds,omitempty"`
	CorrSeq  uint64          `json:"corr_seq,omitempty"`
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
}
