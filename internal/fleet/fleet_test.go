package fleet

import (
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"afs/internal/faults"
	"afs/internal/noise"
	"afs/internal/stream"
)

// testShard runs an in-process decode shard that a test can kill abruptly
// (listener and live connections closed with no warning — the in-process
// stand-in for kill -9) and later restart on the same address.
type testShard struct {
	t    *testing.T
	cfg  ShardConfig
	addr string

	mu    sync.Mutex
	ln    net.Listener
	conns []net.Conn
	wg    sync.WaitGroup
}

// trackConns wraps the shard listener so the test can sever live sessions.
type trackConns struct {
	net.Listener
	s *testShard
}

func (t *trackConns) Accept() (net.Conn, error) {
	c, err := t.Listener.Accept()
	if err == nil {
		t.s.mu.Lock()
		t.s.conns = append(t.s.conns, c)
		t.s.mu.Unlock()
	}
	return c, err
}

func newTestShard(t *testing.T, cfg ShardConfig) *testShard {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &testShard{t: t, cfg: cfg, addr: ln.Addr().String()}
	s.start(ln)
	t.Cleanup(s.crash)
	return s
}

func (s *testShard) start(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		Serve(&trackConns{Listener: ln, s: s}, s.cfg)
	}()
}

// crash kills the shard without ceremony: every live session's socket and
// the listener close at once, and the serve goroutine exits. All decoder
// state is lost, exactly like a killed process.
func (s *testShard) crash() {
	s.mu.Lock()
	ln := s.ln
	conns := s.conns
	s.ln, s.conns = nil, nil
	s.mu.Unlock()
	if ln == nil {
		return
	}
	ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// restart brings the shard back, empty, on its original address.
func (s *testShard) restart() {
	s.t.Helper()
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		s.t.Fatal(err)
	}
	s.start(ln)
}

// feedFrom builds an Engine/Router feed from per-stream round samplers, all
// derived from one base seed — call it twice with the same arguments to
// give the fleet and its in-process reference identical syndrome streams.
func feedFrom(streams, distance int, p float64, seed uint64) func(int, int) []int32 {
	samplers := make([]*noise.RoundSampler, streams)
	for i := range samplers {
		samplers[i] = noise.NewRoundSampler(distance, p, seed, uint64(i)+1)
	}
	return func(i, _ int) []int32 { return samplers[i].SampleRound() }
}

// runEngine decodes the same fleet configuration in-process and returns the
// per-stream corrections and merged reports — the ground truth a fleet run
// must match bit for bit.
func runEngine(t *testing.T, cfg Config, rounds int, seed uint64, p float64, chunks []int) ([][]stream.Correction, []faults.Report) {
	t.Helper()
	eng, err := stream.NewEngine(stream.EngineConfig{
		Streams:  cfg.Streams,
		Distance: cfg.Distance,
		Window:   cfg.Window,
		Commit:   cfg.Commit,
		Robust:   stream.Robust{DeadlineNS: cfg.DeadlineNS, QueueCap: cfg.QueueCap},
		Chaos:    cfg.Chaos,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	feed := feedFrom(cfg.Streams, cfg.Distance, p, seed)
	done := 0
	for _, c := range chunks {
		if err := eng.RunRounds(c, feed); err != nil {
			t.Fatal(err)
		}
		done += c
	}
	if done != rounds {
		t.Fatalf("chunks sum to %d, want %d", done, rounds)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	corrs := make([][]stream.Correction, cfg.Streams)
	reps := make([]faults.Report, cfg.Streams)
	for i := 0; i < cfg.Streams; i++ {
		corrs[i] = eng.Committed(i)
		reps[i] = eng.StreamReport(i)
	}
	return corrs, reps
}

// checkIdentical asserts the router's post-Flush corrections and ledgers
// are bit-identical to the in-process reference.
func checkIdentical(t *testing.T, r *Router, wantCorrs [][]stream.Correction, wantReps []faults.Report) {
	t.Helper()
	for i := 0; i < r.Streams(); i++ {
		got := r.Committed(i)
		if len(got) == 0 && len(wantCorrs[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, wantCorrs[i]) {
			t.Fatalf("stream %d: fleet corrections diverge from in-process engine\n got %d corrections, want %d", i, len(got), len(wantCorrs[i]))
		}
	}
	for i := 0; i < r.Streams(); i++ {
		if got := r.StreamReport(i); !reflect.DeepEqual(got, wantReps[i]) {
			t.Fatalf("stream %d ledger diverges:\n got  %+v\nwant %+v", i, got, wantReps[i])
		}
	}
	rep := r.FaultReport()
	if err := rep.CheckFinal(); err != nil {
		t.Fatalf("fleet fault ledger does not close: %v", err)
	}
}

func shardAddrs(shards []*testShard) []string {
	addrs := make([]string, len(shards))
	for i, s := range shards {
		addrs[i] = s.addr
	}
	return addrs
}

func TestFleetMatchesEngine(t *testing.T) {
	const (
		streams = 12
		rounds  = 160
		d       = 5
		p       = 0.01
		seed    = 42
	)
	shards := []*testShard{
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
	}
	cfg := Config{
		Network: "tcp", Shards: shardAddrs(shards),
		Streams: streams, Distance: d,
	}
	wantCorrs, wantReps := runEngine(t, cfg, rounds, seed, p, []int{rounds})

	r, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.RunRounds(rounds, feedFrom(streams, d, p, seed)); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, r, wantCorrs, wantReps)
	if rec := r.Recoveries(); rec != 0 {
		t.Fatalf("clean run recovered %d times", rec)
	}
	if tx, rx := r.WireBytes(); tx == 0 || rx == 0 {
		t.Fatalf("wire byte counters did not move: tx=%d rx=%d", tx, rx)
	}
}

func chaosCfg(seed uint64) *faults.Config {
	return &faults.Config{
		Seed:          seed,
		DropRate:      0.02,
		DuplicateRate: 0.01,
		ReorderRate:   0.01,
		CorruptRate:   0.02,
		StallRate:     0.05,
		InflateNS:     20,
		// No retries: a dropped or corrupted round erases outright, so the
		// erased-round wire encoding is exercised by every chaos test —
		// including journal replay of erased rounds after a shard crash.
		RetryBudget: -1,
	}
}

func TestFleetChaosRobustMatchesEngine(t *testing.T) {
	const (
		streams = 9
		rounds  = 200
		d       = 5
		p       = 0.012
		seed    = 7
	)
	shards := []*testShard{
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
	}
	cfg := Config{
		Network: "tcp", Shards: shardAddrs(shards),
		Streams: streams, Distance: d,
		DeadlineNS: 600, QueueCap: 8,
		Chaos: chaosCfg(99),
	}
	wantCorrs, wantReps := runEngine(t, cfg, rounds, seed, p, []int{rounds})

	r, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.RunRounds(rounds, feedFrom(streams, d, p, seed)); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, r, wantCorrs, wantReps)
	if rep := r.FaultReport(); rep.Injected.Link() == 0 {
		t.Fatal("chaos injected nothing")
	}
	if rep := r.FaultReport(); rep.ErasedRounds == 0 {
		t.Fatal("chaos dropped nothing — the erased-round wire path went unexercised")
	}
	// A healthy fleet under link chaos must not churn sessions: chaos lives
	// on the syndrome link, not the shard transport. (A protocol bug that
	// kills sessions can hide behind its own recovery machinery — recovery
	// is bit-identical — so assert quiescence explicitly.)
	if rec := r.Recoveries(); rec != 0 {
		t.Fatalf("chaos-only run recovered %d times — sessions are churning", rec)
	}
}

// TestFleetCrashFailoverBitIdentical is the core robustness property: a
// shard killed mid-stream (state gone, listener gone) must not change a
// single correction — the survivors adopt its streams from checkpoints,
// replay the journals, and the fleet's output stays bit-identical to an
// uninterrupted in-process run.
func TestFleetCrashFailoverBitIdentical(t *testing.T) {
	const (
		streams = 12
		d       = 5
		p       = 0.012
		seed    = 11
	)
	chunks := []int{70, 90}
	rounds := 160
	shards := []*testShard{
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
	}
	cfg := Config{
		Network: "tcp", Shards: shardAddrs(shards),
		Streams: streams, Distance: d,
		DeadlineNS: 600, QueueCap: 8,
		Chaos:             chaosCfg(5),
		ReconnectAttempts: -1, // shard stays dead: fail over immediately
	}
	wantCorrs, wantReps := runEngine(t, cfg, rounds, seed, p, []int{rounds})

	r, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	feed := feedFrom(streams, d, p, seed)
	if err := r.RunRounds(chunks[0], feed); err != nil {
		t.Fatal(err)
	}
	shards[1].crash()
	time.Sleep(20 * time.Millisecond) // let the reader notice the EOF
	if err := r.RunRounds(chunks[1], feed); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, r, wantCorrs, wantReps)
	if r.Recoveries() == 0 {
		t.Fatal("crash went unrecovered")
	}
	rec := r.LastRecovery()
	if rec.Shard != 1 || rec.Reconnected || rec.Streams == 0 {
		t.Fatalf("unexpected recovery stats: %+v", rec)
	}
}

// TestFleetCrashReconnectReplay kills a shard and restarts it (empty)
// before the router's retry budget runs out: the router must re-adopt the
// streams on the reborn shard via checkpoint + replay, bit-identically.
func TestFleetCrashReconnectReplay(t *testing.T) {
	const (
		streams = 8
		d       = 5
		p       = 0.012
		seed    = 23
	)
	rounds := 150
	shards := []*testShard{
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
	}
	cfg := Config{
		Network: "tcp", Shards: shardAddrs(shards),
		Streams: streams, Distance: d,
		Chaos: chaosCfg(17),
	}
	wantCorrs, wantReps := runEngine(t, cfg, rounds, seed, p, []int{rounds})

	r, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	feed := feedFrom(streams, d, p, seed)
	if err := r.RunRounds(60, feed); err != nil {
		t.Fatal(err)
	}
	shards[0].crash()
	shards[0].restart()
	time.Sleep(20 * time.Millisecond)
	if err := r.RunRounds(rounds-60, feed); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, r, wantCorrs, wantReps)
	if r.Recoveries() == 0 {
		t.Fatal("crash went unrecovered")
	}
	rec := r.LastRecovery()
	if !rec.Reconnected {
		t.Fatalf("expected reconnection to the restarted shard, got %+v", rec)
	}
	if rec.ReplayedRounds == 0 {
		t.Fatalf("reconnection replayed nothing: %+v", rec)
	}
}

// TestFleetRebalance exercises the full kill → failover → restart →
// re-home cycle: after the dead shard's streams fail over, Rebalance moves
// them back to the restarted shard, and the output still matches the
// uninterrupted reference.
func TestFleetRebalance(t *testing.T) {
	const (
		streams = 10
		d       = 5
		p       = 0.012
		seed    = 31
	)
	rounds := 180
	shards := []*testShard{
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
	}
	cfg := Config{
		Network: "tcp", Shards: shardAddrs(shards),
		Streams: streams, Distance: d,
		Chaos:             chaosCfg(3),
		ReconnectAttempts: -1,
	}
	wantCorrs, wantReps := runEngine(t, cfg, rounds, seed, p, []int{rounds})

	r, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	feed := feedFrom(streams, d, p, seed)
	if err := r.RunRounds(60, feed); err != nil {
		t.Fatal(err)
	}
	shards[2].crash()
	time.Sleep(20 * time.Millisecond)
	if err := r.RunRounds(60, feed); err != nil { // failover period
		t.Fatal(err)
	}
	if r.Recoveries() == 0 {
		t.Fatal("crash went unrecovered")
	}
	shards[2].restart()
	if err := r.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if err := r.RunRounds(rounds-120, feed); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, r, wantCorrs, wantReps)
}

// TestFleetAdmissionSpill gives one shard fewer CDA blocks than its share
// of streams: the refused opens must spill deterministically onto the shard
// with spare block slots, and the run still matches the reference.
func TestFleetAdmissionSpill(t *testing.T) {
	const (
		streams = 5
		d       = 5
		p       = 0.01
		seed    = 13
		rounds  = 80
	)
	shards := []*testShard{
		newTestShard(t, ShardConfig{Blocks: 1, CheckpointEvery: 16}), // cap 2 (N=2 per block)
		newTestShard(t, ShardConfig{Blocks: 2, CheckpointEvery: 16}), // cap 4
	}
	cfg := Config{
		Network: "tcp", Shards: shardAddrs(shards),
		Streams: streams, Distance: d,
	}
	wantCorrs, wantReps := runEngine(t, cfg, rounds, seed, p, []int{rounds})

	// Homes: shard0 {0,2,4}, shard1 {1,3}. Shard0 admits two and refuses
	// stream 4, which must land on shard1.
	r, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.streams[4].cur; got != 1 {
		t.Fatalf("refused stream placed on shard %d, want spill to 1", got)
	}
	if err := r.RunRounds(rounds, feedFrom(streams, d, p, seed)); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, r, wantCorrs, wantReps)
}

func TestFleetAdmissionExhausted(t *testing.T) {
	shards := []*testShard{
		newTestShard(t, ShardConfig{Blocks: 1}),
		newTestShard(t, ShardConfig{Blocks: 1}),
	}
	_, err := Dial(Config{
		Network: "tcp", Shards: shardAddrs(shards),
		Streams: 5, Distance: 5,
	})
	if err == nil || !strings.Contains(err.Error(), "no shard admits") {
		t.Fatalf("want admission exhaustion error, got %v", err)
	}
}

// TestFleetThousandStreams is the scale acceptance check: 1000 concurrent
// streams across 3 shard processes, a shard killed mid-soak, and the full
// output still bit-identical to the in-process engine.
func TestFleetThousandStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-stream soak skipped in -short mode")
	}
	const (
		streams = 1000
		d       = 5
		p       = 0.01
		seed    = 101
		rounds  = 60
	)
	shards := []*testShard{
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
	}
	cfg := Config{
		Network: "tcp", Shards: shardAddrs(shards),
		Streams: streams, Distance: d,
		ReconnectAttempts: -1,
	}
	wantCorrs, wantReps := runEngine(t, cfg, rounds, seed, p, []int{rounds})

	r, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	feed := feedFrom(streams, d, p, seed)
	if err := r.RunRounds(30, feed); err != nil {
		t.Fatal(err)
	}
	shards[1].crash()
	time.Sleep(20 * time.Millisecond)
	if err := r.RunRounds(rounds-30, feed); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, r, wantCorrs, wantReps)
	if rec := r.LastRecovery(); rec.Streams < streams/4 {
		t.Fatalf("crash should have displaced ~a third of the fleet, moved %d", rec.Streams)
	}
}

// TestFleetMidSheddingCrashLedger kills a shard while backpressure shedding
// episodes are in flight. The flushed fleet ledger must still close
// (BacklogSheds == BacklogRecovers, every fault accounted) and match the
// uninterrupted reference — shed windows must be neither lost nor double
// counted across checkpoint, crash, and replay.
func TestFleetMidSheddingCrashLedger(t *testing.T) {
	const (
		streams = 8
		d       = 5
		p       = 0.015
		seed    = 3
	)
	rounds := 180
	shards := []*testShard{
		newTestShard(t, ShardConfig{CheckpointEvery: 8}),
		newTestShard(t, ShardConfig{CheckpointEvery: 8}),
		newTestShard(t, ShardConfig{CheckpointEvery: 8}),
	}
	// Heavy stalls plus a tight queue keep streams inside shedding episodes
	// much of the time, so the crash lands mid-episode with high
	// probability on several streams at once.
	chaos := &faults.Config{Seed: 77, StallRate: 0.4, StallNS: 4000, InflateNS: 100}
	cfg := Config{
		Network: "tcp", Shards: shardAddrs(shards),
		Streams: streams, Distance: d,
		DeadlineNS: 500, QueueCap: 3,
		Chaos:             chaos,
		ReconnectAttempts: -1,
	}
	wantCorrs, wantReps := runEngine(t, cfg, rounds, seed, p, []int{rounds})
	var totalSheds uint64
	for _, rep := range wantReps {
		totalSheds += rep.BacklogSheds
	}
	if totalSheds == 0 {
		t.Fatal("reference run shed nothing — the test exercises no episode")
	}

	r, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	feed := feedFrom(streams, d, p, seed)
	if err := r.RunRounds(90, feed); err != nil {
		t.Fatal(err)
	}
	shards[0].crash()
	time.Sleep(20 * time.Millisecond)
	if err := r.RunRounds(rounds-90, feed); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, r, wantCorrs, wantReps)
}

// TestFleetLaneBatchKillMidBatch is the lane-batching crash-identity case:
// shards resolve windows through the cross-stream lane batcher, a shard is
// killed while its sessions hold deferred (pending) windows, and the
// surviving shards adopt the streams from checkpoints — whose Snapshot
// resolved any pending window scalar first. The fleet's corrections must
// stay bit-identical to a scalar in-process engine (runEngine never enables
// lane batching), so this doubles as the lane-vs-scalar end-to-end proof
// under failover.
func TestFleetLaneBatchKillMidBatch(t *testing.T) {
	const (
		streams = 12
		rounds  = 160
		d       = 5
		p       = 0.012
		seed    = 23
	)
	shards := []*testShard{
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
	}
	cfg := Config{
		Network: "tcp", Shards: shardAddrs(shards),
		Streams: streams, Distance: d,
		LaneBatch:         true,
		Chaos:             chaosCfg(31),
		ReconnectAttempts: -1, // shard stays dead: fail over immediately
	}
	wantCorrs, wantReps := runEngine(t, cfg, rounds, seed, p, []int{rounds})

	r, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	feed := feedFrom(streams, d, p, seed)
	if err := r.RunRounds(75, feed); err != nil {
		t.Fatal(err)
	}
	shards[1].crash()
	time.Sleep(20 * time.Millisecond) // let the reader notice the EOF
	if err := r.RunRounds(rounds-75, feed); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, r, wantCorrs, wantReps)
	if r.Recoveries() == 0 {
		t.Fatal("crash went unrecovered")
	}
}

// TestFleetLaneBatchRobustIgnored: LaneBatch must be dropped, not refused,
// when the config is robust — robust decoders never defer their windows.
func TestFleetLaneBatchRobustIgnored(t *testing.T) {
	const (
		streams = 6
		rounds  = 120
		d       = 5
		p       = 0.012
		seed    = 3
	)
	shards := []*testShard{
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
		newTestShard(t, ShardConfig{CheckpointEvery: 16}),
	}
	cfg := Config{
		Network: "tcp", Shards: shardAddrs(shards),
		Streams: streams, Distance: d,
		DeadlineNS: 600, QueueCap: 8,
		LaneBatch: true, // silently ignored: robust mode wins
	}
	wantCorrs, wantReps := runEngine(t, cfg, rounds, seed, p, []int{rounds})

	r, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.RunRounds(rounds, feedFrom(streams, d, p, seed)); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, r, wantCorrs, wantReps)
}
