package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sort"

	"afs/internal/cda"
	"afs/internal/faults"
	"afs/internal/stream"
)

// DefaultCheckpointEvery is the per-stream checkpoint cadence in rounds. It
// bounds the router's replay journal (and so the worst-case recovery work
// per stream) without putting a snapshot on every round's wire.
const DefaultCheckpointEvery = 64

// ShardConfig configures one decode shard.
type ShardConfig struct {
	// Blocks is the number of CDA decoder blocks the shard is provisioned
	// with; its admission cap is cda.AdmissionCap(Blocks, CDA) streams, and
	// opens past the cap are refused so the router places the stream on a
	// shard that still has a Gr-Gen slot instead of overcommitting the
	// shared pipeline units. Blocks <= 0 disables admission control.
	Blocks int
	// CDA is the block configuration behind the cap; the zero value is the
	// paper's N=2 design point.
	CDA cda.Config
	// CheckpointEvery is the per-stream checkpoint cadence in rounds; 0
	// selects DefaultCheckpointEvery.
	CheckpointEvery int
	// Logf, when non-nil, receives session lifecycle messages (accepted,
	// closed, protocol errors). The decode path never logs.
	Logf func(format string, args ...any)
}

func (c ShardConfig) ckptEvery() int {
	if c.CheckpointEvery <= 0 {
		return DefaultCheckpointEvery
	}
	return c.CheckpointEvery
}

func (c ShardConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Serve runs a decode shard on l until the listener is closed, handling one
// router session at a time. A session owns its streams exclusively: when the
// connection drops (router crash, network fault) the shard discards all
// per-stream state and the next session starts empty — the router holds the
// checkpoints and the round journal, so it re-opens each stream with a
// snapshot and replays the tail. That asymmetry is deliberate: shards are
// the crash domain under test, and keeping them stateless across sessions
// means a kill -9'd shard and a cleanly restarted one look identical to the
// recovery protocol.
func Serve(l net.Listener, cfg ShardConfig) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		cfg.logf("fleet shard: session from %v", conn.RemoteAddr())
		if err := session(conn, cfg); err != nil && err != io.EOF {
			cfg.logf("fleet shard: session ended: %v", err)
		}
		conn.Close()
	}
}

// shardStream is one logical-qubit stream resident on the shard.
type shardStream struct {
	dec     *stream.Decoder
	per     int
	rounds  uint64 // rounds ingested (resumes from the adopted checkpoint)
	corrSeq uint64 // corrections emitted (resumes likewise)
	ckptAt  uint64 // rounds at the last checkpoint sent
	out     []int32
}

// shardSession handles one router connection. All message handling is
// single-goroutine, so per-stream decoding is trivially deterministic: the
// shard's outputs are a pure function of the message sequence it reads.
type shardSession struct {
	cfg     ShardConfig
	cap     int
	br      *bufio.Reader
	bw      *bufio.Writer
	rbuf    []byte // envelope read buffer
	wbuf    []byte // envelope write scratch
	pbuf    []byte // payload write scratch
	streams map[uint32]*shardStream
	werr    error // sticky write error, surfaced at the next message boundary

	// lane is the session's cross-stream lane batcher, built lazily on the
	// first open that asks for lane batching. Streams opened with LaneBatch
	// defer their window decodes (stream.SetDeferDecode); flushPendingLanes
	// resolves the deferred windows in 64-lane bit-plane groups at three
	// points: when a round arrives for a stream that is already pending
	// (its window must resolve before the next ingest), at the session idle
	// boundary (liveness: corrections must not wait for more traffic), and
	// at the head of a fleet flush. laneIDs/laneDecs are reused scratch.
	lane     *stream.LaneBatcher
	laneIDs  []uint32
	laneDecs []*stream.Decoder
}

func (s *shardSession) send(typ uint8, id uint32, payload []byte) error {
	s.wbuf = appendEnvelope(s.wbuf[:0], typ, id, payload)
	_, err := s.bw.Write(s.wbuf)
	return err
}

func session(conn net.Conn, cfg ShardConfig) error {
	s := &shardSession{
		cfg:     cfg,
		cap:     cda.AdmissionCap(cfg.Blocks, cfg.CDA),
		br:      bufio.NewReaderSize(conn, 1<<16),
		bw:      bufio.NewWriterSize(conn, 1<<16),
		streams: map[uint32]*shardStream{},
	}
	for {
		// Everything queued for the router goes out before the session
		// blocks on an empty connection: corrections, checkpoints and
		// heartbeat replies must not sit in the buffer while both sides
		// wait on each other.
		if s.br.Buffered() == 0 {
			s.flushPendingLanes()
			if err := s.bw.Flush(); err != nil {
				return err
			}
		}
		if s.werr != nil {
			return s.werr
		}
		env, err := readEnvelope(s.br, &s.rbuf)
		if err != nil {
			return err
		}
		if err := s.handle(env); err != nil {
			return err
		}
	}
}

func (s *shardSession) handle(env envelope) error {
	switch env.typ {
	case msgOpen:
		return s.handleOpen(env)
	case msgRound:
		return s.handleRound(env)
	case msgClose:
		// The stream moved to another shard (rebalance): drop it without a
		// flush — its state travels in the router's checkpoint + journal,
		// and flushing here would double-count its ledger.
		delete(s.streams, env.stream)
		return nil
	case msgFlush:
		return s.handleFlush()
	case msgPing:
		return s.send(msgPong, env.stream, env.payload)
	default:
		return fmt.Errorf("fleet: shard got unexpected message type %d", env.typ)
	}
}

func (s *shardSession) handleOpen(env envelope) error {
	var op openPayload
	if err := json.Unmarshal(env.payload, &op); err != nil {
		return fmt.Errorf("fleet: malformed open payload: %w", err)
	}
	id := env.stream
	if _, dup := s.streams[id]; dup {
		return s.refuse(id, "stream already open on this shard")
	}
	if s.cap > 0 && len(s.streams) >= s.cap {
		fObs.refusals.Inc(0)
		return s.refuse(id, fmt.Sprintf("admission cap %d streams reached (%d CDA blocks)", s.cap, s.cfg.Blocks))
	}
	dec, err := stream.New(op.Distance, op.Window, op.Commit)
	if err != nil {
		return s.refuse(id, err.Error())
	}
	if err := dec.SetRobust(stream.Robust{DeadlineNS: op.DeadlineNS, QueueCap: op.QueueCap}); err != nil {
		return s.refuse(id, err.Error())
	}
	if len(op.Snapshot) > 0 {
		var snap stream.Snapshot
		if err := json.Unmarshal(op.Snapshot, &snap); err != nil {
			return s.refuse(id, "malformed snapshot: "+err.Error())
		}
		if err := dec.Restore(snap); err != nil {
			return s.refuse(id, err.Error())
		}
	}
	if op.LaneBatch {
		if err := dec.SetDeferDecode(true); err != nil {
			return s.refuse(id, err.Error())
		}
		if s.lane == nil {
			s.lane = stream.NewLaneBatcher()
		}
	}
	st := &shardStream{
		dec:     dec,
		per:     op.Distance * (op.Distance - 1),
		rounds:  op.Rounds,
		corrSeq: op.CorrSeq,
		ckptAt:  op.Rounds,
	}
	// The sink regenerates deterministic per-stream sequence numbers: a
	// replayed round re-emits its corrections with the original seq, which
	// is exactly what lets the router dedup them.
	st.dec.SetSink(func(c stream.Correction) {
		st.corrSeq++
		s.pbuf = appendCorrPayload(s.pbuf[:0], st.corrSeq, c)
		if err := s.send(msgCorr, id, s.pbuf); err != nil && s.werr == nil {
			s.werr = err
		}
	})
	s.streams[id] = st
	return s.send(msgOpenOK, id, nil)
}

func (s *shardSession) refuse(id uint32, reason string) error {
	return s.send(msgRefuse, id, []byte(reason))
}

func (s *shardSession) handleRound(env envelope) error {
	st, ok := s.streams[env.stream]
	if !ok {
		return fmt.Errorf("fleet: round for unknown stream %d", env.stream)
	}
	seq, events, erased, pen, err := decodeRoundPayload(env.payload, st.per, st.out[:0])
	if err != nil {
		return fmt.Errorf("fleet: stream %d round: %w", env.stream, err)
	}
	st.out = events[:0]
	// End-to-end ordering check: the round-frame sequence number must match
	// the stream's ingest count. A gap here means the transport delivered
	// out of order or the router's journal drifted — either way decoding on
	// would silently corrupt, so the session dies and recovery replays.
	if seq != uint32(st.rounds) {
		return fmt.Errorf("fleet: stream %d got round seq %d, want %d", env.stream, seq, uint32(st.rounds))
	}
	if st.dec.Pending() {
		// The stream's previous window is still deferred and the ring has no
		// room for another layer: resolve the pending lanes now. Lane-batched
		// decoding only ever defers to the next message boundary, never past
		// a stream's own next round.
		s.flushPendingLanes()
	}
	st.dec.AddPenaltyNS(pen)
	if erased {
		st.dec.PushErased()
	} else if err := st.dec.PushLayer(events); err != nil {
		return fmt.Errorf("fleet: stream %d: %w", env.stream, err)
	}
	st.rounds++
	if s.werr != nil {
		return s.werr
	}
	if st.rounds-st.ckptAt >= uint64(s.cfg.ckptEvery()) {
		return s.checkpoint(env.stream, st)
	}
	return nil
}

// flushPendingLanes resolves every deferred (pending) window on the shard
// through the lane batcher, in ascending stream id so the per-stream
// correction sequence — the identity the router checks and dedups on — is a
// pure function of the rounds ingested. Which windows share a lane group
// depends on how many rounds the socket delivered before an idle boundary,
// but grouping never changes any stream's corrections, only the cross-stream
// interleaving on the wire.
func (s *shardSession) flushPendingLanes() {
	if s.lane == nil {
		return
	}
	s.laneIDs = s.laneIDs[:0]
	for id, st := range s.streams {
		if st.dec.Pending() {
			s.laneIDs = append(s.laneIDs, id)
		}
	}
	if len(s.laneIDs) == 0 {
		return
	}
	sort.Slice(s.laneIDs, func(i, j int) bool { return s.laneIDs[i] < s.laneIDs[j] })
	s.laneDecs = s.laneDecs[:0]
	for _, id := range s.laneIDs {
		s.laneDecs = append(s.laneDecs, s.streams[id].dec)
	}
	s.lane.Decode(s.laneDecs)
}

// checkpoint snapshots the stream and ships it to the router, which trims
// its replay journal up to the snapshot's round count on receipt. The
// corrections the sink emitted while decoding this round precede the
// checkpoint on the wire, so by the time the router processes it, every
// correction the snapshot assumes delivered has been.
func (s *shardSession) checkpoint(id uint32, st *shardStream) error {
	snap, err := json.Marshal(st.dec.Snapshot())
	if err != nil {
		return err
	}
	st.ckptAt = st.rounds
	s.pbuf = appendCkptPayload(s.pbuf[:0], st.rounds, st.corrSeq, snap)
	return s.send(msgCheckpoint, id, s.pbuf)
}

// handleFlush ends every stream on the shard: remaining buffered layers are
// decoded as closed windows (their corrections go out as usual), and the
// per-stream decoder ledgers are returned in one msgFlushOK. Streams are
// flushed in ascending id so the correction interleaving on the wire is
// deterministic; the per-stream state is discarded afterwards — a session
// that flushed a stream is done with it, and the router re-opens if it
// wants more.
func (s *shardSession) handleFlush() error {
	s.flushPendingLanes()
	ids := make([]uint32, 0, len(s.streams))
	for id := range s.streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ledgers := make(map[uint32]faults.Report, len(ids))
	for _, id := range ids {
		st := s.streams[id]
		st.dec.Flush()
		if s.werr != nil {
			return s.werr
		}
		ledgers[id] = st.dec.Report()
		delete(s.streams, id)
	}
	blob, err := json.Marshal(ledgers)
	if err != nil {
		return err
	}
	return s.send(msgFlushOK, 0, blob)
}
