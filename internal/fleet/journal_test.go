package fleet

import (
	"net"
	"reflect"
	"sync"
	"testing"
)

// silentShard speaks just enough of the wire protocol to look perfectly
// healthy — it admits every open and answers every ping — but swallows
// rounds without decoding, so it never checkpoints and never delivers a
// correction. This is the stalled-but-alive failure mode (wedged decode
// loop, kill -STOP) that neither socket errors nor heartbeats detect: only
// the journal byte cap notices the lack of progress.
type silentShard struct {
	t    *testing.T
	addr string
	ln   net.Listener

	mu    sync.Mutex
	conns []net.Conn
}

func newSilentShard(t *testing.T) *silentShard {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &silentShard{t: t, addr: ln.Addr().String(), ln: ln}
	go s.serve()
	t.Cleanup(s.close)
	return s
}

func (s *silentShard) serve() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.conns = append(s.conns, conn)
		s.mu.Unlock()
		go s.session(conn)
	}
}

// session drains the router's messages (so TCP backpressure never blocks
// the router's writes) and replies only to opens and pings.
func (s *silentShard) session(conn net.Conn) {
	var rbuf, wbuf []byte
	for {
		env, err := readEnvelope(conn, &rbuf)
		if err != nil {
			return
		}
		switch env.typ {
		case msgOpen:
			wbuf = appendEnvelope(wbuf[:0], msgOpenOK, env.stream, nil)
		case msgPing:
			wbuf = appendEnvelope(wbuf[:0], msgPong, 0, nil)
		default:
			continue // rounds, flushes, closes: into the void
		}
		if _, err := conn.Write(wbuf); err != nil {
			return
		}
	}
}

func (s *silentShard) close() {
	s.ln.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.conns {
		c.Close()
	}
}

// TestJournalBoundedWithSilentShard is the regression test for the
// unbounded replay journal: a stream homed on a shard that accepts rounds
// but never checkpoints must not grow the router's journal without limit.
// The byte cap sheds the silent shard, the stream fails over to the
// survivor with its journal replayed intact, and the delivered corrections
// stay bit-identical to an uninterrupted in-process run.
func TestJournalBoundedWithSilentShard(t *testing.T) {
	const (
		d      = 5
		rounds = 400
		p      = 0.05
		seed   = uint64(7)
		budget = 8 << 10
	)
	silent := newSilentShard(t)
	healthy := newTestShard(t, ShardConfig{CheckpointEvery: 16})
	cfg := Config{
		Network: "tcp", Shards: []string{silent.addr, healthy.addr},
		Streams: 1, Distance: d,
		JournalMaxBytes:   budget,
		ReconnectAttempts: -1, // shed straight to the survivor
		HeartbeatEvery:    -1, // liveness is not what catches this shard
	}
	wantCorrs, _ := runEngine(t, cfg, rounds, seed, p, []int{rounds})

	r, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	feed := feedFrom(cfg.Streams, d, p, seed)
	maxBytes := 0
	for done := 0; done < rounds; done += 16 {
		if err := r.RunRounds(16, feed); err != nil {
			t.Fatal(err)
		}
		if _, b := r.JournalStats(0); b > maxBytes {
			maxBytes = b
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}

	// The hard bound: the configured cap plus one round's worth of slack
	// for the entry that trips the threshold.
	if limit := budget + 512; maxBytes > limit {
		t.Fatalf("journal reached %d bytes, want <= %d (cap %d)", maxBytes, limit, budget)
	}
	if r.Recoveries() == 0 {
		t.Fatal("silent shard was never shed — journal cap did not fire")
	}
	if rec := r.LastRecovery(); rec.Reconnected {
		t.Fatalf("expected failover to the survivor, got reconnection: %+v", rec)
	}
	if got := r.Committed(0); !reflect.DeepEqual(got, wantCorrs[0]) {
		t.Fatalf("corrections diverge after journal shed: got %d, want %d", len(got), len(wantCorrs[0]))
	}
}
