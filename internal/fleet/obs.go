package fleet

import (
	"io"
	"sync/atomic"

	"afs/internal/obs"
)

// fleetObs bundles the fleet health metrics. One instance registers on
// obs.Default() at init and is shared by every Router in the process; each
// counter uses the *shard index* as its obs slot, so a scrape of the
// expvar/Prometheus endpoint exposes the failure history per decode shard
// (modulo obs.DefaultShards) while the rendered totals aggregate the fleet.
// Everything here is a pure sink — the router never reads a metric to make
// a decision — so fixed-seed fleet runs are bit-identical with metrics on
// or off.
type fleetObs struct {
	roundsRouted *obs.Counter // rounds sent to shards (incl. replays)
	corrections  *obs.Counter // corrections delivered to the sink
	replayDups   *obs.Counter // replayed corrections dropped by seq dedup
	checkpoints  *obs.Counter // shard checkpoints received
	replayed     *obs.Counter // journal rounds replayed during recovery
	reconnects   *obs.Counter // sessions re-established to a crashed shard
	failovers    *obs.Counter // streams re-homed onto a different shard
	crashes      *obs.Counter // shard sessions lost (read/write error or heartbeat)
	hbTimeouts   *obs.Counter // crashes declared by heartbeat loss specifically
	refusals     *obs.Counter // admission refusals (CDA block capacity)
	shedWindows  *obs.Counter // rounds shed by shard-side backpressure (from flush ledgers)
	journalSheds *obs.Counter // sessions shed for exceeding the replay-journal byte cap
	wireTx       *obs.Counter // bytes written to shard sockets
	wireRx       *obs.Counter // bytes read from shard sockets
}

var (
	fObs = func() *fleetObs {
		reg := obs.Default()
		const s = obs.DefaultShards
		return &fleetObs{
			roundsRouted: reg.NewCounter("afs_fleet_rounds_routed_total", "syndrome rounds routed to decode shards (including replays)", s),
			corrections:  reg.NewCounter("afs_fleet_corrections_total", "corrections delivered to the router sink", s),
			replayDups:   reg.NewCounter("afs_fleet_replay_dup_corrections_total", "replayed corrections dropped by per-stream sequence dedup", s),
			checkpoints:  reg.NewCounter("afs_fleet_checkpoints_total", "decoder checkpoints received from shards", s),
			replayed:     reg.NewCounter("afs_fleet_replayed_rounds_total", "journal rounds replayed during crash recovery", s),
			reconnects:   reg.NewCounter("afs_fleet_reconnects_total", "shard sessions re-established after a crash", s),
			failovers:    reg.NewCounter("afs_fleet_failovers_total", "streams re-homed onto a surviving shard", s),
			crashes:      reg.NewCounter("afs_fleet_shard_crashes_total", "shard sessions lost to read/write errors or heartbeat loss", s),
			hbTimeouts:   reg.NewCounter("afs_fleet_heartbeat_timeouts_total", "shard crashes declared by heartbeat loss", s),
			refusals:     reg.NewCounter("afs_fleet_admission_refusals_total", "stream opens refused by CDA block admission", s),
			shedWindows:  reg.NewCounter("afs_fleet_shed_rounds_total", "rounds shed by shard-side backpressure (folded in at flush)", s),
			journalSheds: reg.NewCounter("afs_fleet_journal_shed_sessions_total", "shard sessions shed for exceeding the replay-journal byte cap", s),
			wireTx:       reg.NewCounter("afs_fleet_wire_tx_bytes_total", "bytes written to shard sockets", s),
			wireRx:       reg.NewCounter("afs_fleet_wire_rx_bytes_total", "bytes read from shard sockets", s),
		}
	}()

	// shardsUp is the process-wide count of live shard sessions, exported as
	// a gauge so a dashboard shows a crash the moment it is detected.
	shardsUp atomic.Int64
)

func init() {
	obs.Default().RegisterGauge("afs_fleet_shards_up", "live shard sessions across all routers", func() float64 {
		return float64(shardsUp.Load())
	})
}

// countingReader counts bytes read off a shard socket into the per-shard
// wire-RX slot (and a router-local total), without buffering or copying.
type countingReader struct {
	r     io.Reader
	shard int
	total *atomic.Uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		fObs.wireRx.Add(c.shard, uint64(n))
		c.total.Add(uint64(n))
	}
	return n, err
}
