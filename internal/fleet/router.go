package fleet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"afs/internal/faults"
	"afs/internal/stream"
)

// Config configures a fleet router.
type Config struct {
	// Network is the socket family ("tcp" or "unix"); Shards the shard
	// addresses. Every shard must be reachable at Dial time.
	Network string
	Shards  []string

	// Streams is the number of logical-qubit streams L; Distance, Window
	// and Commit configure every stream's decoder with the same defaults as
	// stream.New. DeadlineNS and QueueCap are the per-stream Robust
	// settings applied shard-side.
	Streams                  int
	Distance, Window, Commit int
	DeadlineNS               float64
	QueueCap                 int

	// LaneBatch asks every shard to batch ready windows from up to 64 of its
	// streams into bit-plane lane groups decoded word-parallel
	// (stream.LaneBatcher). Committed corrections stay bit-identical to
	// per-stream scalar decoding; ignored when DeadlineNS or QueueCap enable
	// robust mode, because robust decoders never defer their windows.
	LaneBatch bool

	// Chaos, when non-nil, injects link faults on every stream's
	// qubit→decoder channel — router-side, before the socket, so the wire
	// carries post-fault syndromes. Each stream's channel is seeded with
	// faults.StreamSeed(Chaos.Seed, i), the same formula stream.Engine
	// uses, so a fleet run and its in-process reference inject identical
	// fault sequences.
	Chaos *faults.Config

	// Sink, when non-nil, receives every committed correction instead of
	// the router retaining it. Calls for one stream arrive in sequence
	// order; the sink runs under the router's lock and must not block.
	Sink func(stream int, c stream.Correction)

	// ReconnectAttempts bounds the dial retries to a crashed shard before
	// the router fails its streams over to the survivors (0 selects 4;
	// negative disables reconnection — immediate failover).
	// ReconnectBackoff is the first retry's delay, doubling per attempt (0
	// selects 25ms).
	ReconnectAttempts int
	ReconnectBackoff  time.Duration

	// HeartbeatEvery is the ping cadence per shard session (0 selects
	// 250ms; negative disables heartbeats). A session whose pong is older
	// than HeartbeatMiss periods (0 selects 4) is declared dead even if the
	// socket never errors — the stalled-shard case a kill -9 on a remote
	// box produces.
	HeartbeatEvery time.Duration
	HeartbeatMiss  int

	// DialTimeout bounds each connection attempt (0 selects 2s).
	DialTimeout time.Duration

	// JournalMaxBytes caps each stream's replay journal (0 selects 4 MiB;
	// negative disables the cap). The journal only trims on shard
	// checkpoints, so a shard that keeps accepting rounds without ever
	// checkpointing — stalled decode loop, wedged disk, a kill -STOP —
	// would otherwise grow the router's memory without bound while the
	// socket and heartbeats stay healthy. Crossing the cap first gives the
	// shard a bounded wait to deliver a trimming checkpoint (it may simply
	// be catching up on a replayed journal); if the journal stays over
	// budget the laggard is shed: the session is declared dead exactly like a crash, and the
	// usual recovery (reconnect or failover, checkpoint restore, journal
	// replay) moves its streams to a shard that makes progress. No rounds
	// are dropped — the journal survives intact through the failover and
	// trims as soon as the adopting shard checkpoints.
	JournalMaxBytes int
}

func (c Config) reconnectAttempts() int {
	if c.ReconnectAttempts < 0 {
		return 0
	}
	if c.ReconnectAttempts == 0 {
		return 4
	}
	return c.ReconnectAttempts
}

func (c Config) reconnectBackoff() time.Duration {
	if c.ReconnectBackoff <= 0 {
		return 25 * time.Millisecond
	}
	return c.ReconnectBackoff
}

func (c Config) heartbeatEvery() time.Duration {
	if c.HeartbeatEvery == 0 {
		return 250 * time.Millisecond
	}
	return c.HeartbeatEvery
}

func (c Config) heartbeatMiss() int {
	if c.HeartbeatMiss <= 0 {
		return 4
	}
	return c.HeartbeatMiss
}

func (c Config) dialTimeout() time.Duration {
	if c.DialTimeout <= 0 {
		return 2 * time.Second
	}
	return c.DialTimeout
}

func (c Config) journalMaxBytes() int {
	if c.JournalMaxBytes < 0 {
		return 0 // unlimited
	}
	if c.JournalMaxBytes == 0 {
		return 4 << 20
	}
	return c.JournalMaxBytes
}

// journalEntryCost is the router's accounting charge for one replay-journal
// entry: the entry struct and slice header overhead plus four bytes per
// retained event. Charged on append, refunded on checkpoint trim.
func journalEntryCost(events []int32) int { return 48 + 4*len(events) }

// maxFreeSlices bounds each stream's recycled-slice pool. Checkpoints can
// trim hundreds of entries at once; keeping them all would just move the
// unbounded-memory problem from the journal to the free list.
const maxFreeSlices = 64

// journalEntry is one post-chaos round retained for replay: exactly what
// went (or would have gone) on the wire — the delivered events, the erasure
// flag, and the injected service-time penalty. Replaying journal entries
// re-uses the original fault outcomes instead of rolling new ones, which is
// what keeps recovery byte-identical.
type journalEntry struct {
	events  []int32
	erased  bool
	penalty float64
}

// streamState is the router's view of one logical-qubit stream.
type streamState struct {
	id   int
	home int // preferred shard (deterministic placement)
	cur  int // shard currently decoding the stream

	ch *faults.Channel // router-side chaos link, nil without Chaos

	sent      uint64 // rounds journaled (and sent, modulo an in-flight crash)
	delivered uint64 // last correction seq delivered to the sink

	// The bounded replay journal: entries for rounds [jbase, sent), where
	// jbase equals the last received checkpoint's round count. ckptSnap is
	// that checkpoint's snapshot JSON (nil before the first checkpoint —
	// recovery then re-opens fresh and replays from round 0).
	jbase       uint64
	journal     []journalEntry
	jbytes      int       // accounted journal size (journalEntryCost per entry)
	free        [][]int32 // recycled event slices from trimmed entries
	ckptCorrSeq uint64
	ckptSnap    []byte

	ledger  faults.Report // decoder ledger received at flush
	flushed bool
}

// link is one shard connection. Writes (rounds, opens, pings) serialize
// under wmu; reads run on a dedicated goroutine per session. gen increments
// per session so messages and deaths of a stale session cannot affect its
// successor.
type link struct {
	idx  int
	addr string

	wmu  sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	gen  uint64
	wbuf []byte
	pbuf []byte

	up       atomic.Bool
	lastPong atomic.Int64 // unix nanos
}

// RecoveryStats describes the router's last completed crash recovery.
type RecoveryStats struct {
	// Shard is the crashed shard's index; Reconnected reports whether the
	// same shard came back within the backoff budget (false means the
	// streams failed over to survivors).
	Shard       int
	Reconnected bool
	// Streams is how many streams were re-homed; ReplayedRounds how many
	// journal rounds were replayed to restore them.
	Streams        int
	ReplayedRounds int
	// Detect is the wall time from the crash being detected to recovery
	// completing (reconnect/backoff plus adopt and replay for every
	// affected stream).
	Duration time.Duration
}

// Router is the fleet front end: it owns stream placement, the per-stream
// chaos channels, the bounded replay journals, and crash recovery. Router
// methods must not be called concurrently with each other; the concurrency
// inside (per-shard reader and heartbeat goroutines) is invisible to the
// caller beyond sink invocations.
type Router struct {
	cfg Config
	per int

	links   []*link
	streams []*streamState
	retain  [][]stream.Correction // when cfg.Sink == nil

	// mu guards stream state (journals, checkpoints, delivery counters),
	// the pending-open table, and flush signaling. Never held across a
	// socket write.
	mu      sync.Mutex
	pending map[pendingKey]chan pendingResult
	flushCh chan int // receives link indices whose flushOK arrived
	// trimCond (on mu) is broadcast whenever a checkpoint trims a journal;
	// awaitJournalTrim waits on it instead of sleep-polling mu.
	trimCond *sync.Cond

	recoveries   int
	lastRecovery RecoveryStats
	wireTx       atomic.Uint64
	wireRx       atomic.Uint64

	closed bool
	ended  bool // Flush completed: streams are over
}

type pendingKey struct {
	gen uint64
	id  uint32
}

type pendingResult struct {
	ok     bool
	reason string
}

var (
	errShardDown       = errors.New("fleet: shard down")
	errJournalOverflow = errors.New("fleet: replay journal over budget, shedding shard")
)

// Dial connects to every shard, opens the fleet's streams across them
// (stream i prefers shard i mod N; admission refusals spill to the next
// shard in order), and returns the ready router.
func Dial(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("fleet: no shards configured")
	}
	if cfg.Streams < 1 {
		return nil, errors.New("fleet: need at least one stream")
	}
	if _, err := stream.New(cfg.Distance, cfg.Window, cfg.Commit); err != nil {
		return nil, err
	}
	r := &Router{
		cfg:     cfg,
		per:     cfg.Distance * (cfg.Distance - 1),
		pending: map[pendingKey]chan pendingResult{},
		flushCh: make(chan int, len(cfg.Shards)*4),
	}
	r.trimCond = sync.NewCond(&r.mu)
	if cfg.Sink == nil {
		r.retain = make([][]stream.Correction, cfg.Streams)
	}
	for i, addr := range cfg.Shards {
		r.links = append(r.links, &link{idx: i, addr: addr})
	}
	r.streams = make([]*streamState, cfg.Streams)
	for i := range r.streams {
		st := &streamState{id: i, home: i % len(r.links), cur: -1}
		if cfg.Chaos != nil {
			c := *cfg.Chaos
			c.Seed = faults.StreamSeed(cfg.Chaos.Seed, i)
			st.ch = faults.NewChannel(r.per, c)
		}
		r.streams[i] = st
	}
	for _, l := range r.links {
		if err := r.connect(l); err != nil {
			r.Close()
			return nil, fmt.Errorf("fleet: shard %d (%s): %w", l.idx, l.addr, err)
		}
	}
	// Place every stream: batches of opens per shard, pipelined, spilling
	// on refusal.
	for _, st := range r.streams {
		if err := r.place(st); err != nil {
			r.Close()
			return nil, err
		}
	}
	return r, nil
}

// connect establishes a fresh session on l and starts its reader and
// heartbeat goroutines.
func (r *Router) connect(l *link) error {
	conn, err := net.DialTimeout(r.cfg.Network, l.addr, r.cfg.dialTimeout())
	if err != nil {
		return err
	}
	l.wmu.Lock()
	l.conn = conn
	l.bw = bufio.NewWriterSize(conn, 1<<16)
	l.gen++
	gen := l.gen
	l.lastPong.Store(time.Now().UnixNano())
	l.up.Store(true)
	l.wmu.Unlock()
	shardsUp.Add(1)
	go r.reader(l, conn, gen)
	if r.cfg.HeartbeatEvery >= 0 {
		go r.heartbeat(l, gen)
	}
	return nil
}

// markDead tears the session down once: later calls for the same
// generation, and any call for a stale generation, are no-ops. It runs from
// reader goroutines, the heartbeat, or the caller thread on a write error;
// actual recovery (reconnect, failover, replay) happens only on the caller
// thread.
func (r *Router) markDead(l *link, gen uint64, cause error, heartbeat bool) {
	l.wmu.Lock()
	if l.gen != gen || !l.up.Load() {
		l.wmu.Unlock()
		return
	}
	l.up.Store(false)
	l.conn.Close()
	l.wmu.Unlock()
	shardsUp.Add(-1)
	fObs.crashes.Inc(l.idx)
	if heartbeat {
		fObs.hbTimeouts.Inc(l.idx)
	}
	// Fail pending opens and wake a flush waiter so the caller thread can
	// run recovery instead of blocking forever.
	r.mu.Lock()
	for k, ch := range r.pending {
		if k.gen>>32 == uint64(l.idx) { // see pendKey
			delete(r.pending, k)
			ch <- pendingResult{ok: false, reason: errShardDown.Error()}
		}
	}
	r.mu.Unlock()
	select {
	case r.flushCh <- -1 - l.idx: // negative: death notice, not a flushOK
	default:
	}
}

// pendKey packs (link, session generation) so markDead can sweep exactly
// the opens in flight on the session that died.
func pendKey(l *link, gen uint64, id uint32) pendingKey {
	return pendingKey{gen: uint64(l.idx)<<32 | (gen & 0xffffffff), id: id}
}

// reader drains one session's messages. Corrections and checkpoints from a
// session that died microseconds ago are still valid — the shard really did
// decode them, and replay dedup makes re-delivery harmless — so only the
// pending-open table is generation-checked.
func (r *Router) reader(l *link, conn net.Conn, gen uint64) {
	br := bufio.NewReaderSize(&countingReader{r: conn, shard: l.idx, total: &r.wireRx}, 1<<16)
	var buf []byte
	for {
		env, err := readEnvelope(br, &buf)
		if err != nil {
			r.markDead(l, gen, err, false)
			return
		}
		switch env.typ {
		case msgCorr:
			if err := r.handleCorr(l, env); err != nil {
				r.markDead(l, gen, err, false)
				return
			}
		case msgCheckpoint:
			if err := r.handleCheckpoint(l, env); err != nil {
				r.markDead(l, gen, err, false)
				return
			}
		case msgOpenOK, msgRefuse:
			r.mu.Lock()
			k := pendKey(l, gen, env.stream)
			if ch, ok := r.pending[k]; ok {
				delete(r.pending, k)
				ch <- pendingResult{ok: env.typ == msgOpenOK, reason: string(env.payload)}
			}
			r.mu.Unlock()
		case msgFlushOK:
			if err := r.handleFlushOK(l, env); err != nil {
				r.markDead(l, gen, err, false)
				return
			}
		case msgPong:
			l.lastPong.Store(time.Now().UnixNano())
		default:
			r.markDead(l, gen, fmt.Errorf("fleet: router got unexpected message type %d", env.typ), false)
			return
		}
	}
}

func (r *Router) handleCorr(l *link, env envelope) error {
	seq, c, err := decodeCorrPayload(env.payload)
	if err != nil {
		return err
	}
	i := int(env.stream)
	if i >= len(r.streams) {
		return fmt.Errorf("fleet: correction for unknown stream %d", i)
	}
	st := r.streams[i]
	r.mu.Lock()
	defer r.mu.Unlock()
	if seq <= st.delivered {
		// A replay regenerated a correction the fleet already delivered:
		// the dedup that makes recovery invisible downstream.
		fObs.replayDups.Inc(l.idx)
		return nil
	}
	if seq != st.delivered+1 {
		return fmt.Errorf("fleet: stream %d correction seq %d after %d", i, seq, st.delivered)
	}
	st.delivered = seq
	fObs.corrections.Inc(l.idx)
	if r.cfg.Sink != nil {
		r.cfg.Sink(i, c)
	} else {
		r.retain[i] = append(r.retain[i], c)
	}
	return nil
}

func (r *Router) handleCheckpoint(l *link, env envelope) error {
	rounds, corrSeq, snap, err := decodeCkptPayload(env.payload)
	if err != nil {
		return err
	}
	i := int(env.stream)
	if i >= len(r.streams) {
		return fmt.Errorf("fleet: checkpoint for unknown stream %d", i)
	}
	st := r.streams[i]
	r.mu.Lock()
	defer r.mu.Unlock()
	if rounds <= st.jbase {
		// Stale: a late checkpoint from a dying session, or one taken at a
		// round an earlier checkpoint already covered. Nothing to trim.
		return nil
	}
	if rounds > st.sent {
		return fmt.Errorf("fleet: stream %d checkpoint at round %d past %d sent", i, rounds, st.sent)
	}
	st.ckptCorrSeq = corrSeq
	st.ckptSnap = append(st.ckptSnap[:0], snap...)
	// Trim the journal up to the snapshot: those rounds are now durable in
	// the checkpoint and will never need replay. Their event slices go to
	// the free list so the steady state stops allocating.
	drop := int(rounds - st.jbase)
	for k := 0; k < drop; k++ {
		st.jbytes -= journalEntryCost(st.journal[k].events)
		if ev := st.journal[k].events; ev != nil && len(st.free) < maxFreeSlices {
			st.free = append(st.free, ev[:0])
		}
	}
	st.journal = append(st.journal[:0], st.journal[drop:]...)
	st.jbase = rounds
	r.trimCond.Broadcast()
	fObs.checkpoints.Inc(l.idx)
	return nil
}

func (r *Router) handleFlushOK(l *link, env envelope) error {
	var ledgers map[uint32]faults.Report
	if err := json.Unmarshal(env.payload, &ledgers); err != nil {
		return err
	}
	r.mu.Lock()
	for id, rep := range ledgers {
		if int(id) >= len(r.streams) {
			r.mu.Unlock()
			return fmt.Errorf("fleet: flush ledger for unknown stream %d", id)
		}
		st := r.streams[id]
		if !st.flushed {
			st.ledger = rep
			st.flushed = true
			fObs.shedWindows.Add(l.idx, rep.ShedRounds)
		}
	}
	r.mu.Unlock()
	r.flushCh <- l.idx
	return nil
}

// heartbeat probes one session until it dies. Heartbeats are wall-clock and
// affect only liveness detection — never decode results.
func (r *Router) heartbeat(l *link, gen uint64) {
	every := r.cfg.heartbeatEvery()
	miss := time.Duration(r.cfg.heartbeatMiss()) * every
	t := time.NewTicker(every)
	defer t.Stop()
	for range t.C {
		l.wmu.Lock()
		if l.gen != gen || !l.up.Load() {
			l.wmu.Unlock()
			return
		}
		if time.Since(time.Unix(0, l.lastPong.Load())) > miss {
			l.wmu.Unlock()
			r.markDead(l, gen, errors.New("fleet: heartbeat timeout"), true)
			return
		}
		err := r.sendLocked(l, msgPing, 0, nil)
		if err == nil {
			err = l.bw.Flush()
		}
		l.wmu.Unlock()
		if err != nil {
			r.markDead(l, gen, err, false)
			return
		}
	}
}

// sendLocked frames one message into l's write buffer and hands it to the
// buffered writer, counting the wire bytes against the router and per-shard
// totals. It is the single emit point for every outbound message; callers
// hold l.wmu.
func (r *Router) sendLocked(l *link, typ uint8, id uint32, payload []byte) error {
	l.wbuf = appendEnvelope(l.wbuf[:0], typ, id, payload)
	n, err := l.bw.Write(l.wbuf)
	r.wireTx.Add(uint64(n))
	fObs.wireTx.Add(l.idx, uint64(n))
	return err
}

// write frames and sends one message on l, counting wire bytes. Returns
// errShardDown (after marking the session dead) on any failure.
func (r *Router) write(l *link, typ uint8, id uint32, payload []byte) error {
	l.wmu.Lock()
	if !l.up.Load() {
		l.wmu.Unlock()
		return errShardDown
	}
	gen := l.gen
	err := r.sendLocked(l, typ, id, payload)
	l.wmu.Unlock()
	if err != nil {
		r.markDead(l, gen, err, false)
		return errShardDown
	}
	return nil
}

// flushLink flushes l's buffered writes to the socket.
func (r *Router) flushLink(l *link) error {
	l.wmu.Lock()
	if !l.up.Load() {
		l.wmu.Unlock()
		return errShardDown
	}
	gen := l.gen
	err := l.bw.Flush()
	l.wmu.Unlock()
	if err != nil {
		r.markDead(l, gen, err, false)
		return errShardDown
	}
	return nil
}

// replayPlan is an atomic capture of a stream's recovery state: the round
// the open's checkpoint resumes from and a private copy of the journal
// entries to replay after it. The copy makes the replay immune to the
// journal being trimmed (shifted in place) by checkpoints that land while
// the replay is still on the wire.
type replayPlan struct {
	base    uint64
	entries []journalEntry
}

// openOn sends one open for st on l and waits for the verdict, returning
// the replay plan captured atomically with the open's checkpoint.
func (r *Router) openOn(st *streamState, l *link) (ok bool, reason string, plan replayPlan, err error) {
	op := openPayload{
		Distance:   r.cfg.Distance,
		Window:     r.cfg.Window,
		Commit:     r.cfg.Commit,
		DeadlineNS: r.cfg.DeadlineNS,
		QueueCap:   r.cfg.QueueCap,
		LaneBatch:  r.cfg.LaneBatch && r.cfg.DeadlineNS == 0 && r.cfg.QueueCap == 0,
	}
	// The open and the replay plan must be one atomic read of the stream's
	// recovery state: a checkpoint arriving between them would trim the
	// journal in place under the replay's feet (and advance jbase past the
	// base the open just promised). Marshal inside the lock too — ckptSnap
	// is rewritten in place when the next checkpoint lands.
	r.mu.Lock()
	op.Rounds = st.jbase
	op.CorrSeq = st.ckptCorrSeq
	if len(st.ckptSnap) > 0 {
		op.Snapshot = json.RawMessage(st.ckptSnap)
	}
	blob, err := json.Marshal(op)
	plan = replayPlan{base: st.jbase, entries: append([]journalEntry(nil), st.journal...)}
	r.mu.Unlock()
	if err != nil {
		return false, "", plan, err
	}
	ch := make(chan pendingResult, 1)
	l.wmu.Lock()
	gen := l.gen
	l.wmu.Unlock()
	k := pendKey(l, gen, uint32(st.id))
	r.mu.Lock()
	r.pending[k] = ch
	r.mu.Unlock()
	if r.write(l, msgOpen, uint32(st.id), blob) != nil || r.flushLink(l) != nil {
		// The session may have died before the pending entry was registered,
		// in which case markDead's sweep missed it: remove it here so the
		// table cannot accumulate dead entries.
		r.mu.Lock()
		delete(r.pending, k)
		r.mu.Unlock()
		return false, errShardDown.Error(), plan, nil
	}
	res := <-ch
	return res.ok, res.reason, plan, nil
}

// place finds a shard for a homeless stream: its home shard first, then the
// others in deterministic order, skipping dead links and admission
// refusals.
func (r *Router) place(st *streamState) error {
	n := len(r.links)
	var lastReason string
	for k := 0; k < n; k++ {
		l := r.links[(st.home+k)%n]
		if !l.up.Load() {
			lastReason = errShardDown.Error()
			continue
		}
		ok, reason, plan, err := r.openOn(st, l)
		if err != nil {
			return err
		}
		if ok {
			st.cur = l.idx
			if err := r.replay(st, l, plan); err != nil {
				// The target died mid-replay; try the remaining shards.
				lastReason = err.Error()
				continue
			}
			return nil
		}
		lastReason = reason
	}
	return fmt.Errorf("fleet: no shard admits stream %d: %s", st.id, lastReason)
}

// replay re-sends st's captured journal to l: rounds [plan.base, sent at
// capture) with their original sequence numbers, fault outcomes and
// penalties. The shard regenerates any corrections the fleet already
// delivered; seq dedup drops them.
func (r *Router) replay(st *streamState, l *link, plan replayPlan) error {
	entries := plan.entries
	base := plan.base
	for k := range entries {
		e := &entries[k]
		l.wmu.Lock()
		if !l.up.Load() {
			l.wmu.Unlock()
			return errShardDown
		}
		gen := l.gen
		l.pbuf = appendRoundPayload(l.pbuf[:0], uint32(base+uint64(k)), e.events, e.erased, e.penalty, r.per)
		err := r.sendLocked(l, msgRound, uint32(st.id), l.pbuf)
		l.wmu.Unlock()
		if err != nil {
			r.markDead(l, gen, err, false)
			return errShardDown
		}
	}
	if len(entries) > 0 {
		fObs.replayed.Add(l.idx, uint64(len(entries)))
		fObs.roundsRouted.Add(l.idx, uint64(len(entries)))
	}
	return r.flushLink(l)
}

// recover handles the death of shard idx: bounded-backoff reconnection,
// then — same shard or survivors — deterministic re-placement of every
// stream it was decoding, restoring each from its last checkpoint and
// replaying its journal. On return every affected stream is live again (or
// an error says the fleet is out of capacity).
func (r *Router) recover(idx int) error {
	start := time.Now()
	l := r.links[idx]
	reconnected := false
	attempts := r.cfg.reconnectAttempts()
	backoff := r.cfg.reconnectBackoff()
	for a := 0; a < attempts; a++ {
		if a > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if err := r.connect(l); err == nil {
			reconnected = true
			fObs.reconnects.Inc(idx)
			break
		}
	}
	var affected []*streamState
	for _, st := range r.streams {
		if st.cur == idx {
			affected = append(affected, st)
		}
	}
	replayedBefore := fObs.replayed.Value()
	for _, st := range affected {
		st.cur = -1
		var err error
		if reconnected {
			// Prefer the reborn shard; fall back to the survivors if it
			// refuses or dies again.
			err = r.place(st)
		} else {
			// Immediate failover: place skips the dead link.
			err = r.place(st)
		}
		if err != nil {
			return err
		}
		if st.cur != idx {
			fObs.failovers.Inc(idx)
		}
	}
	r.recoveries++
	r.lastRecovery = RecoveryStats{
		Shard:          idx,
		Reconnected:    reconnected,
		Streams:        len(affected),
		ReplayedRounds: int(fObs.replayed.Value() - replayedBefore),
		Duration:       time.Since(start),
	}
	return nil
}

// sendRound journals and sends one post-chaos round for st. The journal
// append happens first, so a send that dies mid-flight is replayed by the
// recovery the failure triggers.
func (r *Router) sendRound(st *streamState, events []int32, erased bool, penalty float64) error {
	r.mu.Lock()
	var ev []int32
	if n := len(st.free); n > 0 && !erased {
		ev = append(st.free[n-1], events...)
		st.free = st.free[:n-1]
	} else if !erased {
		ev = append([]int32(nil), events...)
	}
	seq := st.sent
	st.journal = append(st.journal, journalEntry{events: ev, erased: erased, penalty: penalty})
	st.jbytes += journalEntryCost(ev)
	st.sent++
	budget := r.cfg.journalMaxBytes()
	over := budget > 0 && st.jbytes > budget
	r.mu.Unlock()

	l := r.links[st.cur]
	if over {
		// The journal is over budget: the shard has taken a cap's worth of
		// rounds without a checkpoint. Flush the link (it cannot checkpoint
		// rounds still sitting in our write buffer) and give it a bounded
		// wall-clock window to catch up — a healthy shard that just adopted
		// the stream answers with a trimming checkpoint almost immediately.
		// If the journal is still over budget after the wait, the shard is
		// wedged: shed it. Declaring the session dead routes this through
		// the same recovery as a crash — the journal is replayed (nothing
		// sheds data), and the adopting shard's first checkpoint trims it.
		if r.flushLink(l) != nil {
			return errShardDown
		}
		if !r.awaitJournalTrim(st, budget) {
			fObs.journalSheds.Inc(l.idx)
			l.wmu.Lock()
			gen := l.gen
			l.wmu.Unlock()
			r.markDead(l, gen, errJournalOverflow, false)
			return errShardDown
		}
	}
	if !l.up.Load() {
		return errShardDown
	}
	l.wmu.Lock()
	if !l.up.Load() {
		l.wmu.Unlock()
		return errShardDown
	}
	gen := l.gen
	l.pbuf = appendRoundPayload(l.pbuf[:0], uint32(seq), ev, erased, penalty, r.per)
	err := r.sendLocked(l, msgRound, uint32(st.id), l.pbuf)
	l.wmu.Unlock()
	if err != nil {
		r.markDead(l, gen, err, false)
		return errShardDown
	}
	fObs.roundsRouted.Inc(l.idx)
	return nil
}

// journalTrimWait bounds how long an over-budget journal waits for the
// shard's trimming checkpoint before the session is shed. A shard making
// any progress at all checkpoints within microseconds of draining its
// socket; a quarter second of silence past a full cap of rounds means it
// is not decoding.
const journalTrimWait = 250 * time.Millisecond

// awaitJournalTrim waits for st's journal accounting (trimmed by the
// reader goroutine as checkpoints land) to fall back under budget, or for
// the wait to expire. Trims signal trimCond, so the waiter wakes the
// moment the shard catches up instead of on a poll tick; the deadline
// arrives as one extra broadcast from a timer. Wall-clock only affects
// *when* a laggard is shed, never decode results — the journal replays
// identically either way.
func (r *Router) awaitJournalTrim(st *streamState, budget int) bool {
	expired := false
	timer := time.AfterFunc(journalTrimWait, func() {
		r.mu.Lock()
		expired = true
		r.mu.Unlock()
		r.trimCond.Broadcast()
	})
	defer timer.Stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	for st.jbytes > budget && !expired {
		r.trimCond.Wait()
	}
	return st.jbytes <= budget
}

// flushEveryRounds bounds how long routed rounds may sit in the write
// buffers: the shard cannot decode (or checkpoint) what it has not
// received, and the journals only trim on checkpoints.
const flushEveryRounds = 16

// RunRounds feeds n rounds to every stream, pulling each round's detection
// events from feed(stream, round) — invoked exactly once per (stream,
// round), in round order per stream, exactly like stream.Engine.RunRounds.
// Each round passes through the stream's chaos channel (when configured),
// is journaled, and is routed to the stream's shard; a shard crash anywhere
// in the batch triggers recovery (reconnect or failover plus replay) and
// the batch continues. Corrections arrive asynchronously; Flush is the
// barrier that makes them all visible.
func (r *Router) RunRounds(n int, feed func(stream, round int) []int32) error {
	if r.closed || r.ended {
		return errors.New("fleet: router used after Flush or Close")
	}
	for round := 0; round < n; round++ {
		for _, st := range r.streams {
			events := feed(st.id, round)
			erased := false
			var penalty float64
			if st.ch != nil {
				events, erased, penalty = st.ch.Transfer(events)
			}
			if err := r.sendRound(st, events, erased, penalty); err != nil {
				if err := r.recover(st.cur); err != nil {
					return err
				}
			}
		}
		if (round+1)%flushEveryRounds == 0 {
			if err := r.flushAll(); err != nil {
				return err
			}
		}
	}
	return r.flushAll()
}

// flushAll flushes every live link's write buffer, running recovery for any
// link found dead (crashed between rounds, detected by its reader).
func (r *Router) flushAll() error {
	for _, l := range r.links {
		owns := false
		for _, st := range r.streams {
			if st.cur == l.idx {
				owns = true
				break
			}
		}
		if !owns {
			continue
		}
		if !l.up.Load() || r.flushLink(l) != nil {
			if err := r.recover(l.idx); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush ends every stream: shards decode the remaining buffered layers as
// closed windows, deliver the final corrections, and return each stream's
// decoder ledger. A shard crash during the flush is recovered like any
// other (checkpoint + replay on a survivor, then re-flush). After Flush the
// fleet session is over: corrections and ledgers are complete and stable.
func (r *Router) Flush() error {
	if r.closed || r.ended {
		return errors.New("fleet: router used after Flush or Close")
	}
	if err := r.flushAll(); err != nil {
		return err
	}
	// Drain signals left over from earlier activity: death notices of
	// crashes RunRounds already recovered, and flushOKs a previous Flush
	// attempt stopped waiting for. Everything that matters now is re-derived
	// below — dead links fail their writes, flushed streams are skipped.
drain:
	for {
		select {
		case <-r.flushCh:
		default:
			break drain
		}
	}
	for try := 0; try < 1+len(r.links)*(1+r.cfg.reconnectAttempts()); try++ {
		// Ask every live link that still owns unflushed streams to flush.
		asked := map[int]bool{}
		for _, st := range r.streams {
			r.mu.Lock()
			done := st.flushed
			r.mu.Unlock()
			if done || asked[st.cur] {
				continue
			}
			asked[st.cur] = true
			l := r.links[st.cur]
			if r.write(l, msgFlush, 0, nil) != nil || r.flushLink(l) != nil {
				if err := r.recover(l.idx); err != nil {
					return err
				}
				return r.Flush()
			}
		}
		if len(asked) == 0 {
			r.ended = true
			return nil
		}
		// Wait for flushOKs (or death notices) from the asked links.
		waiting := len(asked)
		for waiting > 0 {
			sig := <-r.flushCh
			if sig < 0 {
				// A shard died while we were waiting for its flushOK. Only
				// recover if it still owns unflushed streams — a notice for
				// a link that owns nothing (or that a concurrent reader
				// raced us on) must not spin up a spurious recovery.
				idx := -1 - sig
				owns := false
				for _, st := range r.streams {
					r.mu.Lock()
					done := st.flushed
					r.mu.Unlock()
					if st.cur == idx && !done {
						owns = true
						break
					}
				}
				if !owns {
					continue
				}
				if err := r.recover(idx); err != nil {
					return err
				}
				return r.Flush()
			}
			if asked[sig] {
				asked[sig] = false
				waiting--
			}
		}
	}
	return errors.New("fleet: flush did not converge")
}

// Streams returns the fleet size L.
func (r *Router) Streams() int { return len(r.streams) }

// JournalStats reports stream i's replay-journal occupancy: entries not
// yet covered by a shard checkpoint, and their accounted bytes (the
// quantity Config.JournalMaxBytes caps).
func (r *Router) JournalStats(i int) (entries, bytes int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.streams[i]
	return len(st.journal), st.jbytes
}

// Committed returns the corrections retained for stream i (router built
// without a sink). Stable only after Flush.
func (r *Router) Committed(i int) []stream.Correction {
	if r.retain == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retain[i]
}

// StreamReport returns stream i's merged ledger: its decoder's runtime
// counters (from the flush ledger) plus its router-side chaos channel's.
// Complete only after Flush.
func (r *Router) StreamReport(i int) faults.Report {
	r.mu.Lock()
	rep := r.streams[i].ledger
	r.mu.Unlock()
	if ch := r.streams[i].ch; ch != nil {
		rep.Merge(ch.Report())
	}
	return rep
}

// FaultReport merges every stream's ledger into one fleet-wide report —
// the same identities as stream.Engine.FaultReport, now closed across
// shard crashes, failovers and replays.
func (r *Router) FaultReport() faults.Report {
	var rep faults.Report
	for i := range r.streams {
		rep.Merge(r.StreamReport(i))
	}
	return rep
}

// Recoveries returns how many crash recoveries the router has completed,
// and LastRecovery the most recent one's statistics.
func (r *Router) Recoveries() int             { return r.recoveries }
func (r *Router) LastRecovery() RecoveryStats { return r.lastRecovery }

// WireBytes returns the total bytes written to and read from shard sockets.
func (r *Router) WireBytes() (tx, rx uint64) { return r.wireTx.Load(), r.wireRx.Load() }

// Rebalance re-homes streams back onto their preferred shards where
// possible: for every dead link it attempts one reconnection, and every
// revived (or already live) home shard adopts its displaced streams via the
// usual checkpoint + replay, with the interim shard told to drop them
// (msgClose) first. Call it after restarting a crashed shard process to
// restore the original placement; streams whose home stays dead are left
// where they are.
func (r *Router) Rebalance() error {
	if r.closed || r.ended {
		return errors.New("fleet: router used after Flush or Close")
	}
	for _, l := range r.links {
		if !l.up.Load() {
			if err := r.connect(l); err != nil {
				continue
			}
			fObs.reconnects.Inc(l.idx)
		}
	}
	for _, st := range r.streams {
		home := r.links[st.home]
		if st.cur == st.home || !home.up.Load() {
			continue
		}
		interim := r.links[st.cur]
		// Tell the interim shard to drop the stream before the home shard
		// adopts it, so a later fleet-wide flush cannot double-count it.
		// The close and any later flush ride the same connection, so
		// ordering is guaranteed; if the interim shard is dead the drop is
		// implicit.
		if interim.up.Load() {
			if r.write(interim, msgClose, uint32(st.id), nil) == nil {
				if err := r.flushLink(interim); err == nil {
					// dropped cleanly
				}
			}
		}
		ok, _, plan, err := r.openOn(st, home)
		if err != nil {
			return err
		}
		if !ok {
			// Home refused (capacity); reopen on the interim shard.
			st.cur = -1
			if err := r.place(st); err != nil {
				return err
			}
			continue
		}
		st.cur = st.home
		if err := r.replay(st, home, plan); err != nil {
			st.cur = -1
			if err := r.place(st); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close tears down every shard session. It does not flush; call Flush first
// for a clean end of stream.
func (r *Router) Close() {
	if r.closed {
		return
	}
	r.closed = true
	for _, l := range r.links {
		l.wmu.Lock()
		gen := l.gen
		up := l.up.Load()
		conn := l.conn
		l.wmu.Unlock()
		if up {
			r.markDead(l, gen, errors.New("fleet: router closed"), false)
		} else if conn != nil {
			conn.Close()
		}
	}
}
