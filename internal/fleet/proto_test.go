package fleet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"testing"

	"afs/internal/lattice"
	"afs/internal/stream"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	cases := []struct {
		typ     uint8
		stream  uint32
		payload []byte
	}{
		{msgOpen, 0, []byte(`{"distance":5}`)},
		{msgOpenOK, 7, nil},
		{msgRefuse, 9, []byte("admission cap reached")},
		{msgRound, 1234, appendRoundPayload(nil, 3, []int32{0, 5, 19}, false, 1.5, 20)},
		{msgCorr, 42, appendCorrPayload(nil, 9, stream.Correction{Kind: lattice.Spatial, Qubit: 3, Ancilla: -1, Round: 17})},
		{msgCheckpoint, 42, appendCkptPayload(nil, 64, 12, []byte(`{"base":32}`))},
		{msgFlush, 0, nil},
		{msgFlushOK, 0, []byte(`{"1":{}}`)},
		{msgPing, 0, nil},
		{msgPong, 0, nil},
		{msgClose, 3, nil},
	}
	var wire []byte
	for _, c := range cases {
		wire = appendEnvelope(wire, c.typ, c.stream, c.payload)
	}
	br := bytes.NewReader(wire)
	var buf []byte
	for i, c := range cases {
		env, err := readEnvelope(br, &buf)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if env.typ != c.typ || env.stream != c.stream || !bytes.Equal(env.payload, c.payload) {
			t.Fatalf("case %d: got (%d,%d,%x), want (%d,%d,%x)",
				i, env.typ, env.stream, env.payload, c.typ, c.stream, c.payload)
		}
	}
	if _, err := readEnvelope(br, &buf); err != io.EOF {
		t.Fatalf("want clean EOF after last message, got %v", err)
	}
}

func TestEnvelopeRejectsCorruption(t *testing.T) {
	wire := appendEnvelope(nil, msgRound, 5, appendRoundPayload(nil, 0, []int32{1, 2}, false, 0, 20))

	// Truncation at every prefix length must error, never panic. A cut
	// before the full length prefix is a clean EOF boundary; anything past
	// it is mid-message.
	for n := 0; n < len(wire); n++ {
		var buf []byte
		_, err := readEnvelope(bytes.NewReader(wire[:n]), &buf)
		if err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded", n, len(wire))
		}
	}

	// Every single-bit flip in the body must be detected (the length field
	// is outside the CRC, but a flip there misframes the body and the CRC
	// or length bound catches it — all that matters is an error).
	for i := 0; i < len(wire)*8; i++ {
		mut := append([]byte(nil), wire...)
		mut[i/8] ^= 1 << (i % 8)
		var buf []byte
		if _, err := readEnvelope(bytes.NewReader(mut), &buf); err == nil {
			t.Fatalf("bit flip at %d decoded undetected", i)
		}
	}
}

func TestEnvelopeRejectsVersionSkew(t *testing.T) {
	wire := appendEnvelope(nil, msgPing, 0, nil)
	// Patch the version byte and re-seal the CRC so only the version is
	// wrong — decode must fail with ErrVersion specifically.
	body := wire[4:]
	body[0] = ProtoVersion + 1
	crc := crc32.Checksum(body[:len(body)-envTailBytes], envCRC)
	binary.LittleEndian.PutUint32(body[len(body)-envTailBytes:], crc)
	var buf []byte
	_, err := readEnvelope(bytes.NewReader(wire), &buf)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

func TestEnvelopeRejectsOversize(t *testing.T) {
	var wire []byte
	wire = binary.LittleEndian.AppendUint32(wire, maxEnvelope+1)
	wire = append(wire, make([]byte, 64)...)
	var buf []byte
	if _, err := readEnvelope(bytes.NewReader(wire), &buf); !errors.Is(err, ErrEnvelope) {
		t.Fatalf("want ErrEnvelope for oversize length, got %v", err)
	}
}

func TestRoundPayloadRoundTrip(t *testing.T) {
	const per = 30
	for _, tc := range []struct {
		seq     uint32
		events  []int32
		erased  bool
		penalty float64
	}{
		{0, nil, false, 0},
		{7, []int32{0, 1, 29}, false, 123.5},
		{1 << 30, []int32{14}, false, 0},
		{3, nil, true, 800},
	} {
		p := appendRoundPayload(nil, tc.seq, tc.events, tc.erased, tc.penalty, per)
		seq, ev, erased, pen, err := decodeRoundPayload(p, per, nil)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if erased != tc.erased || pen != tc.penalty {
			t.Fatalf("%+v: got erased=%v pen=%v", tc, erased, pen)
		}
		// Erased rounds carry the seq explicitly — every round participates
		// in the shard's ordering check, erased or not.
		if seq != tc.seq {
			t.Fatalf("%+v: got seq %d", tc, seq)
		}
		if !tc.erased {
			if len(ev) != len(tc.events) {
				t.Fatalf("%+v: got events %v", tc, ev)
			}
			for i := range ev {
				if ev[i] != tc.events[i] {
					t.Fatalf("%+v: got events %v", tc, ev)
				}
			}
		}
	}

	// Negative, NaN and Inf penalties are wire corruption, not data.
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		p := appendRoundPayload(nil, 0, nil, true, bad, per)
		if _, _, _, _, err := decodeRoundPayload(p, per, nil); err == nil {
			t.Fatalf("penalty %v decoded", bad)
		}
	}
}

func TestCorrPayloadRoundTrip(t *testing.T) {
	want := stream.Correction{Kind: lattice.Temporal, Qubit: -1, Ancilla: 19, Round: 1 << 40}
	p := appendCorrPayload(nil, 77, want)
	seq, got, err := decodeCorrPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 77 || got != want {
		t.Fatalf("got seq=%d %+v, want seq=77 %+v", seq, got, want)
	}
	// A kind byte past the enum is corruption.
	p[8] = uint8(lattice.Temporal) + 1
	if _, _, err := decodeCorrPayload(p); err == nil {
		t.Fatal("invalid edge kind decoded")
	}
	if _, _, err := decodeCorrPayload(p[:len(p)-1]); err == nil {
		t.Fatal("truncated corr payload decoded")
	}
}

func TestCkptPayloadRoundTrip(t *testing.T) {
	snap := []byte(`{"base":64,"layers":[]}`)
	p := appendCkptPayload(nil, 640, 12, snap)
	rounds, corrSeq, got, err := decodeCkptPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 640 || corrSeq != 12 || !bytes.Equal(got, snap) {
		t.Fatalf("got (%d,%d,%s)", rounds, corrSeq, got)
	}
	if _, _, _, err := decodeCkptPayload(p[:ckptHeadBytes-1]); err == nil {
		t.Fatal("truncated checkpoint payload decoded")
	}
}

// FuzzWireProtocol feeds arbitrary bytes to the envelope reader and the
// per-type payload decoders. Whatever the input — truncated, corrupted,
// version-skewed, adversarial lengths — decoding must return an error or a
// canonical message, and must never panic, hang, or mis-decode: any
// envelope that decodes successfully must re-encode to the identical bytes.
func FuzzWireProtocol(f *testing.F) {
	f.Add(appendEnvelope(nil, msgOpen, 0, []byte(`{"distance":5,"window":5,"commit":2}`)))
	f.Add(appendEnvelope(nil, msgRound, 3, appendRoundPayload(nil, 9, []int32{0, 7, 19}, false, 2.5, 20)))
	f.Add(appendEnvelope(nil, msgRound, 3, appendRoundPayload(nil, 0, nil, true, 100, 20)))
	f.Add(appendEnvelope(nil, msgCorr, 1, appendCorrPayload(nil, 4, stream.Correction{Kind: lattice.Spatial, Qubit: 2, Ancilla: -1, Round: 11})))
	f.Add(appendEnvelope(nil, msgCheckpoint, 1, appendCkptPayload(nil, 128, 40, []byte(`{"base":96}`))))
	f.Add(appendEnvelope(nil, msgFlushOK, 0, []byte(`{"0":{"Windows":3}}`)))
	f.Add(append(appendEnvelope(nil, msgPing, 0, nil), appendEnvelope(nil, msgPong, 0, nil)...))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bytes.NewReader(data)
		var buf []byte
		for {
			env, err := readEnvelope(br, &buf)
			if err != nil {
				return // detected corruption or end of input — both fine
			}
			// Canonical re-encode: a decoded envelope must serialize back
			// to exactly the bytes it came from (no second representation
			// of the same message).
			re := appendEnvelope(nil, env.typ, env.stream, env.payload)
			whole := len(data) - br.Len()
			n := len(re)
			if whole < n || !bytes.Equal(data[whole-n:whole], re) {
				t.Fatalf("envelope does not re-encode canonically")
			}
			// The payload decoders must tolerate arbitrary payloads for
			// their type.
			switch env.typ {
			case msgRound:
				const per = 20
				if seq, ev, erased, pen, err := decodeRoundPayload(env.payload, per, nil); err == nil {
					for _, e := range ev {
						if e < 0 || int(e) >= per {
							t.Fatalf("round payload decoded out-of-range event %d", e)
						}
					}
					rp := appendRoundPayload(nil, seq, ev, erased, pen, per)
					if !bytes.Equal(rp, env.payload) {
						t.Fatalf("round payload does not re-encode canonically")
					}
				}
			case msgCorr:
				if seq, c, err := decodeCorrPayload(env.payload); err == nil {
					if !bytes.Equal(appendCorrPayload(nil, seq, c), env.payload) {
						t.Fatalf("corr payload does not re-encode canonically")
					}
				}
			case msgCheckpoint:
				_, _, _, _ = func() (uint64, uint64, []byte, error) { return decodeCkptPayload(env.payload) }()
			}
		}
	})
}
