// Package bandwidth implements the paper's first-order syndrome
// transmission model (§VI-A): an FTQC with L logical qubits encoded in
// distance-d surface codes must move 2d(d-1)·L syndrome bits from the
// quantum substrate to the decoders at the end of every syndrome
// measurement round. Spending a window of t nanoseconds on the transfer
// requires an aggregate bandwidth of 2d(d-1)·L / t bits per nanosecond —
// i.e. hundreds to thousands of Gbps for realistic systems (Fig. 13) —
// which Syndrome Compression divides by the achieved compression ratio.
package bandwidth

// BitsPerRound returns the number of syndrome bits produced per measurement
// round by l logical qubits of distance d: both ancilla types contribute
// d(d-1) bits per qubit.
func BitsPerRound(l, d int) int64 {
	return 2 * int64(d) * int64(d-1) * int64(l)
}

// RequiredGbps returns the aggregate bandwidth needed to transmit one
// round's syndrome data within a window of windowNS nanoseconds, in
// gigabits per second. (1 bit/ns = 1 Gbps.)
func RequiredGbps(l, d int, windowNS float64) float64 {
	if windowNS <= 0 {
		panic("bandwidth: window must be positive")
	}
	return float64(BitsPerRound(l, d)) / windowNS
}

// CompressedGbps returns the bandwidth requirement after applying a
// compression scheme with the given average compression ratio.
func CompressedGbps(l, d int, windowNS, ratio float64) float64 {
	if ratio <= 0 {
		panic("bandwidth: compression ratio must be positive")
	}
	return RequiredGbps(l, d, windowNS) / ratio
}

// Point is one (distance, window) sample of the Figure 13 sweep.
type Point struct {
	Distance int
	WindowNS float64
	Gbps     float64
}

// Sweep evaluates the bandwidth requirement over every combination of the
// given distances and transmission windows for an l-qubit system,
// regenerating the series of Figure 13 (the paper uses l=1000 and windows
// of 100 ns, 400 ns and 1 us).
func Sweep(l int, distances []int, windowsNS []float64) []Point {
	out := make([]Point, 0, len(distances)*len(windowsNS))
	for _, w := range windowsNS {
		for _, d := range distances {
			out = append(out, Point{Distance: d, WindowNS: w, Gbps: RequiredGbps(l, d, w)})
		}
	}
	return out
}
