package bandwidth

import (
	"testing"
	"testing/quick"
)

// TestPaperReferencePoints pins the numbers quoted in §VI-A and Fig. 13.
func TestPaperReferencePoints(t *testing.T) {
	if got := BitsPerRound(1000, 11); got != 220000 {
		t.Fatalf("bits/round = %d, want 220000", got)
	}
	cases := []struct {
		window float64
		want   float64
	}{
		{400, 550},
		{100, 2200},
		{1000, 220},
	}
	for _, c := range cases {
		if got := RequiredGbps(1000, 11, c.window); got != c.want {
			t.Errorf("bandwidth at t=%.0fns = %v Gbps, paper %v", c.window, got, c.want)
		}
	}
}

func TestCompressedGbps(t *testing.T) {
	if got := CompressedGbps(1000, 11, 400, 30); got != 550.0/30 {
		t.Fatalf("compressed bandwidth = %v", got)
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero window", func() { RequiredGbps(1, 3, 0) })
	mustPanic("zero ratio", func() { CompressedGbps(1, 3, 100, 0) })
}

// TestBandwidthScalesLinearly: in L and quadratically in d.
func TestBandwidthScaling(t *testing.T) {
	f := func(lRaw uint16, dRaw uint8) bool {
		l := int(lRaw%1000) + 1
		d := 3 + int(dRaw%20)
		if BitsPerRound(2*l, d) != 2*BitsPerRound(l, d) {
			return false
		}
		return BitsPerRound(l, d) == 2*int64(d)*int64(d-1)*int64(l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSweepLayout(t *testing.T) {
	pts := Sweep(1000, []int{3, 11}, []float64{100, 400})
	if len(pts) != 4 {
		t.Fatalf("sweep size %d", len(pts))
	}
	// Window-major ordering: all distances for the first window first.
	if pts[0].WindowNS != 100 || pts[1].WindowNS != 100 || pts[2].WindowNS != 400 {
		t.Fatalf("sweep order wrong: %+v", pts)
	}
	if pts[3].Distance != 11 || pts[3].Gbps != 550 {
		t.Fatalf("sweep values wrong: %+v", pts[3])
	}
}
