package compress

import (
	"testing"

	"afs/internal/noise"
	"afs/internal/syndrome"
)

// FuzzRoundTrip drives arbitrary frames through every scheme's
// encode/decode pair; lossless round-tripping is the critical compression
// invariant (a corrupted syndrome means a miscorrection downstream).
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1})
	l := syndrome.NewLayout(6)
	c := New(l, Config{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		frame := noise.NewBitset(l.CombinedBits())
		for _, b := range raw {
			frame.Set(int(b) % l.CombinedBits())
		}
		for s := DZC; s < numSchemes; s++ {
			enc := append([]byte(nil), c.EncodeScheme(s, frame)...)
			if got := c.EncodedBits(); got != c.SizeScheme(s, frame) {
				t.Fatalf("scheme %v: size model %d != encoded %d bits",
					s, c.SizeScheme(s, frame), got)
			}
			var out noise.Bitset
			if err := c.Decode(enc, &out); err != nil {
				t.Fatalf("scheme %v: %v", s, err)
			}
			if !framesEqual(frame, out) {
				t.Fatalf("scheme %v: roundtrip mismatch", s)
			}
		}
	})
}
