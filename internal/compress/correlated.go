package compress

import (
	"afs/internal/noise"
	"afs/internal/syndrome"
)

// CorrelatedConfig drives a compression measurement under the correlated
// Pauli model (X, Z and Y data errors plus measurement errors), the regime
// geometry-based compression is designed for.
type CorrelatedConfig struct {
	Distance int
	// PX, PZ, PY, PM are the per-round fault probabilities (Y errors flip
	// both ancilla types in one neighborhood).
	PX, PZ, PY, PM float64
	// Rounds per sampled cycle; 0 selects Distance.
	Rounds int
	// Trials is the number of cycles.
	Trials int
	Seed   uint64
	Cfg    Config
}

// RunCorrelatedExperiment measures per-scheme compression under correlated
// noise. Unlike RunExperiment it runs single-threaded: the correlated
// sampler carries measurement-error state across rounds, and the trial
// counts involved are small.
func RunCorrelatedExperiment(cfg CorrelatedConfig) ExperimentResult {
	layout := syndrome.NewLayout(cfg.Distance)
	comp := New(layout, cfg.Cfg)
	rounds := cfg.Rounds
	if rounds == 0 {
		rounds = cfg.Distance
	}
	s := syndrome.NewCorrelatedSampler(layout, cfg.PX, cfg.PZ, cfg.PY, cfg.PM, cfg.Seed, 1)

	var res ExperimentResult
	res.Distance = cfg.Distance
	res.P = cfg.PX + cfg.PZ + cfg.PY
	var frame noise.Bitset
	var rawBits, encBits uint64
	var weight uint64
	for i := 0; i < cfg.Trials; i++ {
		s.Reset()
		for t := 0; t < rounds; t++ {
			s.SampleRound(&frame)
			res.Frames++
			weight += uint64(frame.PopCount())
			best, bestSize := comp.Best(frame)
			res.SchemeWins[best]++
			res.MeanRatioHybrid += float64(comp.FrameBits()) / float64(bestSize)
			rawBits += uint64(comp.FrameBits())
			encBits += uint64(bestSize)
			for sc := DZC; sc < numSchemes; sc++ {
				res.MeanRatio[sc] += float64(comp.FrameBits()) / float64(comp.SizeScheme(sc, frame))
			}
		}
	}
	if res.Frames > 0 {
		res.MeanRatioHybrid /= float64(res.Frames)
		res.MeanWeight = float64(weight) / float64(res.Frames)
		for sc := 0; sc < int(numSchemes); sc++ {
			res.MeanRatio[sc] /= float64(res.Frames)
		}
	}
	if encBits > 0 {
		res.AggregateRatio = float64(rawBits) / float64(encBits)
	}
	return res
}
