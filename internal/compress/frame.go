package compress

// Round framing for the qubit->decoder link.
//
// The hybrid Compressor above answers "how many bits does a syndrome frame
// need"; this file supplies the packet layer a real link needs around that
// payload: a sequence number so the receiver can detect dropped, duplicated
// and reordered rounds, a payload in the smaller of two encodings (sparse
// event indices or a raw bitmap — the same best-of selection the hybrid
// scheme uses), and a CRC-32C over the whole frame so corruption on the
// wire is detected rather than decoded into garbage syndromes. Decoding is
// fully bounds-checked: arbitrary corrupt bytes must never panic, only fail
// verification (the chaos layer and the fuzz target both depend on it).
//
// Frame layout (little-endian):
//
//	magic  u8   frameMagic
//	seq    u32  round sequence number
//	mode   u8   payloadSparse | payloadBitmap
//	count  u16  event count (sparse mode only)
//	payload     count*u16 ascending indices, or ceil(per/8) bitmap bytes
//	crc    u32  CRC-32C of everything above

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/bits"
)

const frameMagic = 0xA5

const (
	payloadSparse = 0 // count + u16 index per event
	payloadBitmap = 1 // one bit per ancilla
)

// Frame decode failures. ErrFrameCRC means the integrity check itself
// failed; ErrFrameMalformed means the CRC passed (or the frame was too
// short to carry one) but the contents violate the format — both count as
// *detected* corruption.
var (
	ErrFrameCRC       = errors.New("compress: frame CRC mismatch")
	ErrFrameMalformed = errors.New("compress: malformed frame")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderBytes is magic+seq+mode; sparse adds the u16 count.
const frameHeaderBytes = 1 + 4 + 1

// RoundFrameBytes returns the encoded size of a round with n events over a
// per-ancilla range of per bits (the smaller of the two payload modes plus
// header and CRC).
func RoundFrameBytes(n, per int) int {
	sparse := 2 + 2*n
	bitmap := (per + 7) / 8
	if bitmap < sparse {
		return frameHeaderBytes + bitmap + 4
	}
	return frameHeaderBytes + sparse + 4
}

// AppendRoundFrame appends one framed syndrome round to dst and returns the
// extended slice. events must be ascending ancilla indices in [0, per); the
// caller keeps ownership of the slice. The steady-state path allocates
// nothing once dst has reached frame capacity.
func AppendRoundFrame(dst []byte, seq uint32, events []int32, per int) []byte {
	start := len(dst)
	sparseBytes := 2 + 2*len(events)
	bitmapBytes := (per + 7) / 8
	dst = append(dst, frameMagic)
	dst = binary.LittleEndian.AppendUint32(dst, seq)
	if bitmapBytes < sparseBytes {
		dst = append(dst, payloadBitmap)
		plo := len(dst)
		for i := 0; i < bitmapBytes; i++ {
			dst = append(dst, 0)
		}
		for _, x := range events {
			dst[plo+int(x>>3)] |= 1 << (uint(x) & 7)
		}
	} else {
		dst = append(dst, payloadSparse)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(events)))
		for _, x := range events {
			dst = binary.LittleEndian.AppendUint16(dst, uint16(x))
		}
	}
	crc := crc32.Checksum(dst[start:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// DecodeRoundFrame parses one frame produced by AppendRoundFrame. The
// decoded events are appended to out[:0] (pass a reused slice for a
// zero-allocation steady state) and returned in ascending order. per must
// match the encoder's. Any corruption — truncation, a CRC mismatch, an
// out-of-range index, a non-ascending index list, trailing bytes — yields
// an error and never a panic.
func DecodeRoundFrame(frame []byte, per int, out []int32) (seq uint32, events []int32, err error) {
	out = out[:0]
	if len(frame) < frameHeaderBytes+4 {
		return 0, out, ErrFrameMalformed
	}
	body, tail := frame[:len(frame)-4], frame[len(frame)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return 0, out, ErrFrameCRC
	}
	if body[0] != frameMagic {
		return 0, out, ErrFrameMalformed
	}
	seq = binary.LittleEndian.Uint32(body[1:5])
	payload := body[frameHeaderBytes:]
	switch body[5] {
	case payloadSparse:
		if len(payload) < 2 {
			return seq, out, ErrFrameMalformed
		}
		n := int(binary.LittleEndian.Uint16(payload))
		payload = payload[2:]
		if len(payload) != 2*n {
			return seq, out, ErrFrameMalformed
		}
		prev := int32(-1)
		for i := 0; i < n; i++ {
			x := int32(binary.LittleEndian.Uint16(payload[2*i:]))
			if x <= prev || int(x) >= per {
				return seq, out, ErrFrameMalformed
			}
			out = append(out, x)
			prev = x
		}
	case payloadBitmap:
		if len(payload) != (per+7)/8 {
			return seq, out, ErrFrameMalformed
		}
		for i, b := range payload {
			base := int32(i << 3)
			for b != 0 {
				bit := int32(bits.TrailingZeros8(b))
				x := base + bit
				if int(x) >= per {
					return seq, out, ErrFrameMalformed
				}
				out = append(out, x)
				b &= b - 1
			}
		}
	default:
		return seq, out, ErrFrameMalformed
	}
	return seq, out, nil
}
