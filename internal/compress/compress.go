// Package compress implements Syndrome Compression (paper §VI): a hybrid of
// three schemes applied to each round's syndrome frame, always selecting
// the one that compresses best (Fig. 14).
//
//   - Dynamic Zero Compression (DZC): the frame is split into K blocks of W
//     bits; a K-bit Zero Indicator Bit vector marks all-zero blocks, and
//     only non-zero blocks are transmitted.
//   - Sparse representation: a Sparse Representation Bit marks an all-zero
//     frame; otherwise the indices of the non-zero bits are sent.
//   - Geometry-based compression (Geo-Comp): a DZC variant whose blocks
//     *are* square tiles of the qubit grid, covering ancillas of both
//     types, so the pairs of neighboring detection events produced by
//     single data-qubit errors (and the X/Z quadruples produced by Y
//     errors) fall into as few blocks as possible.
//
// Unlike a pure accounting model, the package actually encodes and decodes
// frames; compressed sizes are the exact bit counts of the real encodings,
// including the 2-bit scheme selector and, for the sparse scheme, the
// explicit count field a self-delimiting stream needs. Compression Ratio is
// raw frame bits divided by encoded bits.
package compress

import (
	"fmt"

	"afs/internal/noise"
	"afs/internal/syndrome"
)

// Scheme identifies one compression scheme.
type Scheme uint8

const (
	// DZC is dynamic zero compression.
	DZC Scheme = iota
	// Sparse is the non-zero-index representation.
	Sparse
	// Geo is geometry-based compression.
	Geo
	numSchemes
)

func (s Scheme) String() string {
	switch s {
	case DZC:
		return "dzc"
	case Sparse:
		return "sparse"
	case Geo:
		return "geo"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// selectorBits identify the chosen scheme in the hybrid stream.
const selectorBits = 2

// Config parameterizes a Compressor.
type Config struct {
	// DZCWidth is the block width W in bits; 0 selects 8.
	DZCWidth int
	// GeoTile is the tile side length in qubit-grid units; 0 selects 4
	// (a 4x4 grid tile holds ~8 ancillas of the two types).
	GeoTile int
}

func (c Config) dzcWidth() int {
	if c.DZCWidth <= 0 {
		return 8
	}
	return c.DZCWidth
}

func (c Config) geoTile() int {
	if c.GeoTile <= 0 {
		return 4
	}
	return c.GeoTile
}

// Compressor compresses per-round combined syndrome frames of one logical
// qubit. Not safe for concurrent use.
type Compressor struct {
	Layout *syndrome.Layout
	Cfg    Config

	n        int     // frame bits
	idxBits  int     // ceil(log2 n)
	cntBits  int     // ceil(log2 (n+1))
	geoTiles [][]int // bit indices per tile, tile-major geo order

	w bitWriter
}

// New builds a Compressor for the layout.
func New(l *syndrome.Layout, cfg Config) *Compressor {
	c := &Compressor{Layout: l, Cfg: cfg, n: l.CombinedBits()}
	c.idxBits = ceilLog2(c.n)
	c.cntBits = ceilLog2(c.n + 1)
	c.buildTiles(cfg.geoTile())
	return c
}

// buildTiles groups the combined-frame bits into square tiles of the qubit
// grid using the layout's geometry ordering; tiles become the Geo-Comp
// blocks.
func (c *Compressor) buildTiles(tileSize int) {
	perm := c.Layout.GeoOrder(tileSize)
	order := make([]int, c.n) // geo position -> bit
	for bit, pos := range perm {
		order[pos] = bit
	}
	side := 2*c.Layout.D - 1
	ntx := (side + tileSize - 1) / tileSize
	tileOf := func(bit int) int {
		i, j := c.Layout.GridPos(bit)
		return (i/tileSize)*ntx + j/tileSize
	}
	var cur []int
	curTile := -1
	for _, bit := range order {
		tl := tileOf(bit)
		if tl != curTile {
			if cur != nil {
				c.geoTiles = append(c.geoTiles, cur)
			}
			cur = nil
			curTile = tl
		}
		cur = append(cur, bit)
	}
	if cur != nil {
		c.geoTiles = append(c.geoTiles, cur)
	}
}

func ceilLog2(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}

// FrameBits returns the raw size of one frame.
func (c *Compressor) FrameBits() int { return c.n }

// SizeScheme returns the encoded size in bits of frame under one scheme,
// including the scheme selector.
func (c *Compressor) SizeScheme(s Scheme, frame noise.Bitset) int {
	switch s {
	case DZC:
		return selectorBits + c.sizeDZC(frame)
	case Sparse:
		return selectorBits + c.sizeSparse(frame)
	case Geo:
		return selectorBits + c.sizeGeo(frame)
	default:
		panic("compress: unknown scheme")
	}
}

func (c *Compressor) sizeGeo(frame noise.Bitset) int {
	size := len(c.geoTiles) // one ZIB bit per tile
	for _, tile := range c.geoTiles {
		if tileNonZero(frame, tile) {
			size += len(tile)
		}
	}
	return size
}

func (c *Compressor) sizeDZC(frame noise.Bitset) int {
	w := c.Cfg.dzcWidth()
	k := (c.n + w - 1) / w
	size := k
	for b := 0; b < k; b++ {
		lo, hi := b*w, min(c.n, (b+1)*w)
		if blockNonZero(frame, lo, hi) {
			size += hi - lo
		}
	}
	return size
}

func (c *Compressor) sizeSparse(frame noise.Bitset) int {
	nz := frame.PopCount()
	if nz == 0 {
		return 1
	}
	return 1 + c.cntBits + nz*c.idxBits
}

// Best returns the scheme with the smallest encoding for frame and that
// size in bits.
func (c *Compressor) Best(frame noise.Bitset) (Scheme, int) {
	best, bestSize := DZC, c.SizeScheme(DZC, frame)
	for s := Sparse; s < numSchemes; s++ {
		if size := c.SizeScheme(s, frame); size < bestSize {
			best, bestSize = s, size
		}
	}
	return best, bestSize
}

// Ratio returns the hybrid compression ratio for one frame: raw bits over
// best encoded bits.
func (c *Compressor) Ratio(frame noise.Bitset) float64 {
	_, size := c.Best(frame)
	return float64(c.n) / float64(size)
}

// Encode compresses frame with the best scheme and returns the encoded
// stream; the returned slice is reused by the next call. The bit length of
// the encoding equals Best's size.
func (c *Compressor) Encode(frame noise.Bitset) []byte {
	s, _ := c.Best(frame)
	return c.EncodeScheme(s, frame)
}

// EncodeScheme compresses frame with a specific scheme.
func (c *Compressor) EncodeScheme(s Scheme, frame noise.Bitset) []byte {
	if frame.Len() != c.n {
		panic("compress: frame size mismatch")
	}
	c.w.reset()
	c.w.writeBits(uint32(s), selectorBits)
	switch s {
	case DZC:
		c.encodeDZC(frame)
	case Sparse:
		c.encodeSparse(frame)
	case Geo:
		c.encodeGeo(frame)
	default:
		panic("compress: unknown scheme")
	}
	return c.w.buf
}

func (c *Compressor) encodeGeo(frame noise.Bitset) {
	for _, tile := range c.geoTiles {
		c.w.writeBit(!tileNonZero(frame, tile)) // ZIB: 1 = all-zero tile
	}
	for _, tile := range c.geoTiles {
		if !tileNonZero(frame, tile) {
			continue
		}
		for _, bit := range tile {
			c.w.writeBit(frame.Get(bit))
		}
	}
}

// EncodedBits returns the exact bit length of the last Encode result.
func (c *Compressor) EncodedBits() int { return c.w.len() }

func (c *Compressor) encodeDZC(frame noise.Bitset) {
	w := c.Cfg.dzcWidth()
	k := (c.n + w - 1) / w
	for b := 0; b < k; b++ {
		lo, hi := b*w, min(c.n, (b+1)*w)
		c.w.writeBit(!blockNonZero(frame, lo, hi)) // ZIB: 1 = all-zero block
	}
	for b := 0; b < k; b++ {
		lo, hi := b*w, min(c.n, (b+1)*w)
		if !blockNonZero(frame, lo, hi) {
			continue
		}
		for i := lo; i < hi; i++ {
			c.w.writeBit(frame.Get(i))
		}
	}
}

func (c *Compressor) encodeSparse(frame noise.Bitset) {
	nz := frame.PopCount()
	c.w.writeBit(nz == 0) // SRB: 1 = all-zero frame
	if nz == 0 {
		return
	}
	c.w.writeBits(uint32(nz), c.cntBits)
	frame.ForEachSet(func(i int) {
		c.w.writeBits(uint32(i), c.idxBits)
	})
}

// Decode reconstructs a frame from an encoded stream into out.
func (c *Compressor) Decode(data []byte, out *noise.Bitset) error {
	r := bitReader{buf: data}
	s := Scheme(r.readBits(selectorBits))
	out.Resize(c.n)
	out.Clear()
	switch s {
	case DZC:
		c.decodeDZC(&r, out)
	case Sparse:
		if r.readBit() {
			return nil
		}
		nz := int(r.readBits(c.cntBits))
		for i := 0; i < nz; i++ {
			out.Set(int(r.readBits(c.idxBits)))
		}
	case Geo:
		c.decodeGeo(&r, out)
	default:
		return fmt.Errorf("compress: invalid scheme %d in stream", s)
	}
	return nil
}

func (c *Compressor) decodeDZC(r *bitReader, out *noise.Bitset) {
	w := c.Cfg.dzcWidth()
	k := (c.n + w - 1) / w
	zero := make([]bool, k)
	for b := 0; b < k; b++ {
		zero[b] = r.readBit()
	}
	for b := 0; b < k; b++ {
		if zero[b] {
			continue
		}
		lo, hi := b*w, min(c.n, (b+1)*w)
		for i := lo; i < hi; i++ {
			if r.readBit() {
				out.Set(i)
			}
		}
	}
}

func (c *Compressor) decodeGeo(r *bitReader, out *noise.Bitset) {
	zero := make([]bool, len(c.geoTiles))
	for ti := range c.geoTiles {
		zero[ti] = r.readBit()
	}
	for ti, tile := range c.geoTiles {
		if zero[ti] {
			continue
		}
		for _, bit := range tile {
			if r.readBit() {
				out.Set(bit)
			}
		}
	}
}

func blockNonZero(frame noise.Bitset, lo, hi int) bool {
	for i := lo; i < hi; i++ {
		if frame.Get(i) {
			return true
		}
	}
	return false
}

func tileNonZero(frame noise.Bitset, tile []int) bool {
	for _, bit := range tile {
		if frame.Get(bit) {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
