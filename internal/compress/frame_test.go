package compress

import (
	"math/rand/v2"
	"testing"
)

func TestRoundFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for _, per := range []int{6, 20, 110, 930} {
		var buf []byte
		var out []int32
		for trial := 0; trial < 200; trial++ {
			n := rng.IntN(per / 2)
			seen := map[int32]bool{}
			var events []int32
			for len(events) < n {
				x := int32(rng.IntN(per))
				if !seen[x] {
					seen[x] = true
					events = append(events, x)
				}
			}
			sortInt32s(events)
			seq := rng.Uint32()
			buf = AppendRoundFrame(buf[:0], seq, events, per)
			if len(buf) != RoundFrameBytes(len(events), per) {
				t.Fatalf("per=%d n=%d: frame is %d bytes, RoundFrameBytes says %d",
					per, n, len(buf), RoundFrameBytes(len(events), per))
			}
			gotSeq, got, err := DecodeRoundFrame(buf, per, out)
			out = got
			if err != nil {
				t.Fatalf("per=%d n=%d: decode: %v", per, n, err)
			}
			if gotSeq != seq {
				t.Fatalf("seq %d round-tripped to %d", seq, gotSeq)
			}
			if len(got) != len(events) {
				t.Fatalf("per=%d: %d events round-tripped to %d", per, len(events), len(got))
			}
			for i := range got {
				if got[i] != events[i] {
					t.Fatalf("per=%d: event %d: got %d want %d", per, i, got[i], events[i])
				}
			}
		}
	}
}

func TestRoundFrameDetectsSingleBitFlips(t *testing.T) {
	per := 110
	events := []int32{3, 17, 44, 91, 109}
	frame := AppendRoundFrame(nil, 12345, events, per)
	var out []int32
	for bit := 0; bit < len(frame)*8; bit++ {
		corrupt := append([]byte(nil), frame...)
		corrupt[bit>>3] ^= 1 << (uint(bit) & 7)
		if _, _, err := DecodeRoundFrame(corrupt, per, out); err == nil {
			t.Fatalf("single-bit flip at bit %d went undetected", bit)
		}
	}
}

func TestRoundFrameRejectsGarbage(t *testing.T) {
	var out []int32
	cases := [][]byte{
		nil,
		{},
		{0xA5},
		make([]byte, frameHeaderBytes+3),
		AppendRoundFrame(nil, 1, []int32{0, 1}, 20)[:5],
	}
	for i, c := range cases {
		if _, _, err := DecodeRoundFrame(c, 20, out); err == nil {
			t.Errorf("case %d: garbage decoded without error", i)
		}
	}
}

func TestRoundFrameWrongPerFailsCleanly(t *testing.T) {
	// A frame encoded for a larger code must not decode under a smaller
	// per: bitmap payloads change length and sparse indices go out of range.
	frame := AppendRoundFrame(nil, 9, []int32{2, 50, 88}, 90)
	if _, _, err := DecodeRoundFrame(frame, 30, nil); err == nil {
		t.Fatal("frame for per=90 decoded under per=30")
	}
}

func TestRoundFrameZeroAlloc(t *testing.T) {
	per := 110
	events := []int32{3, 17, 44, 91}
	buf := AppendRoundFrame(nil, 0, events, per)
	out := make([]int32, 0, per)
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendRoundFrame(buf[:0], 42, events, per)
		_, got, err := DecodeRoundFrame(buf, per, out)
		if err != nil {
			t.Fatal(err)
		}
		out = got[:0]
	})
	if allocs != 0 {
		t.Fatalf("steady-state frame encode+decode allocates %.1f/op, want 0", allocs)
	}
}

func sortInt32s(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// FuzzRoundFrame feeds arbitrary bytes to the frame decoder: corrupt input
// must fail detection (or decode to a well-formed event list), never panic,
// and a valid re-encode of whatever decoded must round-trip.
func FuzzRoundFrame(f *testing.F) {
	f.Add([]byte{}, 20)
	f.Add(AppendRoundFrame(nil, 7, []int32{1, 5, 19}, 20), 20)
	f.Add(AppendRoundFrame(nil, 0xffffffff, nil, 6), 6)
	big := make([]int32, 0, 64)
	for i := int32(0); i < 64; i++ {
		big = append(big, i*2)
	}
	f.Add(AppendRoundFrame(nil, 3, big, 200), 200)
	f.Fuzz(func(t *testing.T, data []byte, per int) {
		if per < 1 || per > 1<<16 {
			return
		}
		seq, events, err := DecodeRoundFrame(data, per, nil)
		if err != nil {
			return
		}
		prev := int32(-1)
		for _, x := range events {
			if x <= prev || int(x) >= per {
				t.Fatalf("decoded event list invalid: %v (per=%d)", events, per)
			}
			prev = x
		}
		re := AppendRoundFrame(nil, seq, events, per)
		seq2, events2, err := DecodeRoundFrame(re, per, nil)
		if err != nil || seq2 != seq || len(events2) != len(events) {
			t.Fatalf("re-encode round-trip failed: %v seq %d->%d n %d->%d",
				err, seq, seq2, len(events), len(events2))
		}
	})
}
