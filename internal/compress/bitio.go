package compress

// bitWriter packs bits LSB-first into a byte slice.
type bitWriter struct {
	buf  []byte
	nbit int
}

func (w *bitWriter) reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// writeBits appends the low `width` bits of v (width <= 32).
func (w *bitWriter) writeBits(v uint32, width int) {
	for i := 0; i < width; i++ {
		if w.nbit&7 == 0 {
			w.buf = append(w.buf, 0)
		}
		if v&(1<<uint(i)) != 0 {
			w.buf[w.nbit>>3] |= 1 << uint(w.nbit&7)
		}
		w.nbit++
	}
}

func (w *bitWriter) writeBit(b bool) {
	if b {
		w.writeBits(1, 1)
	} else {
		w.writeBits(0, 1)
	}
}

// len returns the number of bits written.
func (w *bitWriter) len() int { return w.nbit }

// bitReader reads bits LSB-first from a byte slice.
type bitReader struct {
	buf []byte
	pos int
}

func (r *bitReader) readBits(width int) uint32 {
	var v uint32
	for i := 0; i < width; i++ {
		if r.buf[r.pos>>3]&(1<<uint(r.pos&7)) != 0 {
			v |= 1 << uint(i)
		}
		r.pos++
	}
	return v
}

func (r *bitReader) readBit() bool { return r.readBits(1) == 1 }
