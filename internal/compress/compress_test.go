package compress

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"afs/internal/noise"
	"afs/internal/syndrome"
)

func randomFrame(rng *rand.Rand, n, weight int) noise.Bitset {
	f := noise.NewBitset(n)
	for i := 0; i < weight; i++ {
		f.Set(rng.IntN(n))
	}
	return f
}

func framesEqual(a, b noise.Bitset) bool {
	if a.Len() != b.Len() {
		return false
	}
	eq := true
	a.ForEachSet(func(i int) {
		if !b.Get(i) {
			eq = false
		}
	})
	b.ForEachSet(func(i int) {
		if !a.Get(i) {
			eq = false
		}
	})
	return eq
}

// TestRoundTripAllSchemes: encode/decode must be lossless for every scheme
// and any frame — a decoder fed a corrupted syndrome miscorrects, so this
// is the critical compression invariant.
func TestRoundTripAllSchemes(t *testing.T) {
	for _, d := range []int{3, 5, 11} {
		l := syndrome.NewLayout(d)
		c := New(l, Config{})
		rng := rand.New(rand.NewPCG(uint64(d), 1))
		for trial := 0; trial < 200; trial++ {
			f := randomFrame(rng, l.CombinedBits(), rng.IntN(l.CombinedBits()/2+1))
			for s := DZC; s < numSchemes; s++ {
				enc := append([]byte(nil), c.EncodeScheme(s, f)...)
				var out noise.Bitset
				if err := c.Decode(enc, &out); err != nil {
					t.Fatalf("d=%d scheme %v: decode error: %v", d, s, err)
				}
				if !framesEqual(f, out) {
					t.Fatalf("d=%d scheme %v: roundtrip mismatch (weight %d)", d, s, f.PopCount())
				}
			}
		}
	}
}

// TestRoundTripHybridProperty uses testing/quick over arbitrary frames.
func TestRoundTripHybridProperty(t *testing.T) {
	l := syndrome.NewLayout(7)
	c := New(l, Config{})
	f := func(seed uint64, wRaw uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		frame := randomFrame(rng, l.CombinedBits(), int(wRaw)%l.CombinedBits())
		enc := append([]byte(nil), c.Encode(frame)...)
		var out noise.Bitset
		if err := c.Decode(enc, &out); err != nil {
			return false
		}
		return framesEqual(frame, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodedBitsMatchesSize: the size accounting used for the ratio
// figures must equal the real encoding length.
func TestEncodedBitsMatchesSize(t *testing.T) {
	l := syndrome.NewLayout(9)
	c := New(l, Config{})
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 200; trial++ {
		f := randomFrame(rng, l.CombinedBits(), rng.IntN(20))
		for s := DZC; s < numSchemes; s++ {
			c.EncodeScheme(s, f)
			if got, want := c.EncodedBits(), c.SizeScheme(s, f); got != want {
				t.Fatalf("scheme %v: encoded %d bits, size model says %d", s, got, want)
			}
		}
	}
}

func TestZeroFrameCompressesToMinimum(t *testing.T) {
	l := syndrome.NewLayout(11)
	c := New(l, Config{})
	zero := noise.NewBitset(l.CombinedBits())
	s, size := c.Best(zero)
	if s != Sparse {
		t.Fatalf("zero frame best scheme = %v, want sparse", s)
	}
	if size != selectorBits+1 {
		t.Fatalf("zero frame size = %d bits, want %d", size, selectorBits+1)
	}
}

// TestGeoBeatsDZCOnYErrors: a Y error flips two Z-type and two X-type
// ancillas in the same grid neighborhood (paper Fig. 2c). In the canonical
// bit order the Z pair and the X pair sit d(d-1) bits apart and so occupy
// up to four DZC blocks, while the geometry tiles keep the whole quadruple
// in one or two blocks — the insight behind Geo-Comp (paper §VI-C3).
func TestGeoBeatsDZCOnYErrors(t *testing.T) {
	d := 11
	l := syndrome.NewLayout(d)
	c := New(l, Config{})
	wins, cases := 0, 0
	// Y errors on data qubits at grid (2k, 2col), interior.
	for k := 1; k < d-1; k++ {
		for col := 1; col < d-1; col++ {
			f := noise.NewBitset(l.CombinedBits())
			f.Set(l.ZBit(k-1, col))
			f.Set(l.ZBit(k, col))
			f.Set(l.XBit(k, col-1))
			f.Set(l.XBit(k, col))
			cases++
			if c.SizeScheme(Geo, f) < c.SizeScheme(DZC, f) {
				wins++
			}
		}
	}
	if wins*2 < cases {
		t.Fatalf("geo beat dzc on only %d/%d Y-error quadruples", wins, cases)
	}
}

func TestHybridNeverWorseThanAnyScheme(t *testing.T) {
	l := syndrome.NewLayout(7)
	c := New(l, Config{})
	f := func(seed uint64, wRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		frame := randomFrame(rng, l.CombinedBits(), int(wRaw)%20)
		_, best := c.Best(frame)
		for s := DZC; s < numSchemes; s++ {
			if c.SizeScheme(s, frame) < best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestFig15Shape asserts the headline compression results: ~30x at the
// paper's default system point (d=11, p=1e-3), higher compression at lower
// error rates, and ratios spanning roughly 4x-400x over the sweep.
func TestFig15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo calibration test")
	}
	def := RunExperiment(ExperimentConfig{Distance: 11, P: 1e-3, Trials: 2000, Seed: 9})
	if def.MeanRatioHybrid < 25 || def.MeanRatioHybrid > 50 {
		t.Errorf("hybrid ratio at d=11, p=1e-3 = %.1f, paper reports ~30x", def.MeanRatioHybrid)
	}
	low := RunExperiment(ExperimentConfig{Distance: 11, P: 1e-4, Trials: 2000, Seed: 9})
	if low.MeanRatioHybrid <= def.MeanRatioHybrid {
		t.Errorf("lower p must compress better: %.1f (p=1e-4) vs %.1f (p=1e-3)",
			low.MeanRatioHybrid, def.MeanRatioHybrid)
	}
	small := RunExperiment(ExperimentConfig{Distance: 3, P: 1e-3, Trials: 2000, Seed: 9})
	if small.MeanRatioHybrid > 10 {
		t.Errorf("d=3 ratio = %.1f, expected the low end (~4-6x)", small.MeanRatioHybrid)
	}
}

func BenchmarkEncodeHybrid(b *testing.B) {
	l := syndrome.NewLayout(11)
	c := New(l, Config{})
	rng := rand.New(rand.NewPCG(1, 1))
	frames := make([]noise.Bitset, 64)
	for i := range frames {
		frames[i] = randomFrame(rng, l.CombinedBits(), rng.IntN(4))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(frames[i&63])
	}
}

// TestGeoShinesUnderCorrelatedYNoise: with a busy Y-dominated channel the
// X/Z detection quadruples cluster spatially, which is the regime Geo-Comp
// was designed for — it must beat plain DZC and win most hybrid selections.
// (On near-empty frames DZC's smaller indicator vector wins instead, which
// is exactly why Syndrome Compression is a hybrid.)
func TestGeoShinesUnderCorrelatedYNoise(t *testing.T) {
	r := RunCorrelatedExperiment(CorrelatedConfig{
		Distance: 11,
		PY:       1e-2, // Y-dominated, busy channel
		PM:       1e-3,
		Trials:   500,
		Seed:     7,
	})
	if r.Frames == 0 || r.MeanWeight == 0 {
		t.Fatal("correlated experiment sampled nothing")
	}
	if r.MeanRatio[Geo] <= r.MeanRatio[DZC] {
		t.Fatalf("geo (%.2fx) should beat dzc (%.2fx) under Y noise",
			r.MeanRatio[Geo], r.MeanRatio[DZC])
	}
	if r.SchemeWins[Geo] <= r.SchemeWins[DZC] {
		t.Fatalf("geo selected %d times vs dzc %d; expected geo to dominate dzc",
			r.SchemeWins[Geo], r.SchemeWins[DZC])
	}
	if r.MeanRatioHybrid+1e-9 < r.MeanRatio[Geo] {
		t.Fatalf("hybrid (%.2fx) worse than geo alone (%.2fx)",
			r.MeanRatioHybrid, r.MeanRatio[Geo])
	}
}
