package compress

import (
	"runtime"
	"sync"

	"afs/internal/lattice"
	"afs/internal/noise"
	"afs/internal/syndrome"
)

// ExperimentConfig drives the compression-ratio measurement of Fig. 15.
type ExperimentConfig struct {
	Distance int
	P        float64
	// Trials is the number of logical cycles sampled; each contributes d
	// per-round frames.
	Trials  int
	Seed    uint64
	Workers int // 0 => GOMAXPROCS
	Cfg     Config
}

// ExperimentResult reports average compression ratios over all sampled
// frames. MeanRatio* is the mean of per-frame (raw bits / encoded bits);
// AggregateRatio is total raw bits over total encoded bits (the bandwidth
// reduction a link actually sees); SchemeWins counts how often the hybrid
// selector picked each scheme.
type ExperimentResult struct {
	Distance        int
	P               float64
	Frames          uint64
	MeanRatioHybrid float64
	MeanRatio       [int(numSchemes)]float64
	AggregateRatio  float64
	SchemeWins      [int(numSchemes)]uint64
	MeanWeight      float64 // mean non-zero bits per frame
}

// RunExperiment samples logical cycles under the phenomenological model for
// both error types, forms each round's combined 2d(d-1)-bit frame, and
// measures the compression each scheme achieves.
func RunExperiment(cfg ExperimentConfig) ExperimentResult {
	layout := syndrome.NewLayout(cfg.Distance)
	gx := lattice.New3D(cfg.Distance, cfg.Distance)

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials && cfg.Trials > 0 {
		workers = cfg.Trials
	}
	if workers < 1 {
		workers = 1
	}

	type part struct {
		frames    uint64
		sumHybrid float64
		sum       [int(numSchemes)]float64
		rawBits   uint64
		encBits   uint64
		wins      [int(numSchemes)]uint64
		weight    uint64
	}
	parts := make([]part, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		share := cfg.Trials / workers
		if w < cfg.Trials%workers {
			share++
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			comp := New(layout, cfg.Cfg)
			// X- and Z-error streams are sampled independently; the two
			// graphs are congruent, so one geometry serves both.
			sx := noise.NewSampler(gx, cfg.P, cfg.Seed^0x5a5a, 2*uint64(w)+1)
			sz := noise.NewSampler(gx, cfg.P, cfg.Seed^0xa5a5, 2*uint64(w)+2)
			var tx, tz noise.Trial
			var fx, fz []noise.Bitset
			var combined noise.Bitset
			pt := &parts[w]
			for i := 0; i < share; i++ {
				sx.Sample(&tx)
				sz.Sample(&tz)
				fx = syndrome.RoundFrames(gx, tx.Defects, fx)
				fz = syndrome.RoundFrames(gx, tz.Defects, fz)
				for t := 0; t < gx.Rounds; t++ {
					syndrome.Combine(layout, fx[t], fz[t], &combined)
					pt.frames++
					pt.weight += uint64(combined.PopCount())
					best, bestSize := comp.Best(combined)
					pt.wins[best]++
					pt.sumHybrid += float64(comp.FrameBits()) / float64(bestSize)
					pt.rawBits += uint64(comp.FrameBits())
					pt.encBits += uint64(bestSize)
					for s := DZC; s < numSchemes; s++ {
						size := comp.SizeScheme(s, combined)
						pt.sum[s] += float64(comp.FrameBits()) / float64(size)
					}
				}
			}
		}(w, share)
	}
	wg.Wait()

	var res ExperimentResult
	res.Distance, res.P = cfg.Distance, cfg.P
	var tot part
	for i := range parts {
		tot.frames += parts[i].frames
		tot.sumHybrid += parts[i].sumHybrid
		tot.rawBits += parts[i].rawBits
		tot.encBits += parts[i].encBits
		tot.weight += parts[i].weight
		for s := 0; s < int(numSchemes); s++ {
			tot.sum[s] += parts[i].sum[s]
			tot.wins[s] += parts[i].wins[s]
		}
	}
	res.Frames = tot.frames
	res.SchemeWins = tot.wins
	if tot.frames > 0 {
		res.MeanRatioHybrid = tot.sumHybrid / float64(tot.frames)
		res.MeanWeight = float64(tot.weight) / float64(tot.frames)
		for s := 0; s < int(numSchemes); s++ {
			res.MeanRatio[s] = tot.sum[s] / float64(tot.frames)
		}
	}
	if tot.encBits > 0 {
		res.AggregateRatio = float64(tot.rawBits) / float64(tot.encBits)
	}
	return res
}
