package core

import (
	"math/rand/v2"
	"slices"
	"testing"

	"afs/internal/lattice"
)

// sortedCorrection decodes defects with dec and returns the correction as a
// sorted copy, so edge-set comparisons ignore emission order (the shortcut
// guarantees the same set, not the same order).
func sortedCorrection(dec *Decoder, defects []int32) []int32 {
	out := append([]int32(nil), dec.Decode(defects)...)
	slices.Sort(out)
	return out
}

// checkShortcutMatchesFull runs the same defect sets through a shortcut
// decoder and a full decoder bound to the same graph, reusing both across
// calls (which also exercises the shortcut's deferred-reset interplay).
func checkShortcutMatchesFull(t *testing.T, g *lattice.Graph, sets [][]int32) {
	t.Helper()
	full := NewDecoder(g, Options{})
	fast := NewDecoder(g, Options{SparseShortcut: true, LeanStats: true})
	for _, defects := range sets {
		want := sortedCorrection(full, defects)
		got := sortedCorrection(fast, defects)
		if !slices.Equal(got, want) {
			t.Fatalf("%v: defects %v: shortcut corrections %v != full %v",
				g, defects, got, want)
		}
		if syn := SyndromeOf(g, got); !slices.Equal(syn, defects) {
			t.Fatalf("%v: defects %v: correction %v reproduces syndrome %v",
				g, defects, got, syn)
		}
	}
}

// TestSparseShortcutExhaustiveSmall enumerates every single defect and every
// defect pair on small closed, window, and 2-D graphs: sizes 1 and 2 are
// exactly the syndromes the fast paths claim in closed form.
func TestSparseShortcutExhaustiveSmall(t *testing.T) {
	for _, g := range []*lattice.Graph{
		lattice.New2D(3), lattice.New2D(4),
		lattice.New3D(3, 3), lattice.New3DWindow(3, 3),
		lattice.New3D(2, 3), lattice.New3DWindow(2, 2),
	} {
		var sets [][]int32
		for u := int32(0); u < int32(g.V); u++ {
			sets = append(sets, []int32{u})
			for v := u + 1; v < int32(g.V); v++ {
				sets = append(sets, []int32{u, v})
			}
		}
		checkShortcutMatchesFull(t, g, sets)
	}
}

// TestSparseShortcutAllSubsetsTiny checks every defect subset of tiny
// graphs, covering mixed fast/slow decompositions and the all-slow
// fallback.
func TestSparseShortcutAllSubsetsTiny(t *testing.T) {
	for _, g := range []*lattice.Graph{
		lattice.New3D(2, 2), lattice.New3DWindow(2, 2), lattice.New2D(3),
	} {
		var sets [][]int32
		for m := 0; m < 1<<g.V; m++ {
			var defects []int32
			for v := 0; v < g.V; v++ {
				if m&(1<<v) != 0 {
					defects = append(defects, int32(v))
				}
			}
			sets = append(sets, defects)
		}
		checkShortcutMatchesFull(t, g, sets)
	}
}

// TestSparseShortcutRandomSubsets drives random syndromes of every size
// class — empty, fast-only, mixed, and beyond maxShortcutDefects (forcing
// the fallback) — through shortcut and full decoders on realistic graphs.
func TestSparseShortcutRandomSubsets(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 29))
	for _, g := range []*lattice.Graph{
		lattice.New3DWindow(5, 5), lattice.New3D(5, 5), lattice.New2D(7),
		lattice.New3DWindow(4, 8),
	} {
		var sets [][]int32
		for i := 0; i < 500; i++ {
			n := rng.IntN(maxShortcutDefects + 8)
			if i%7 == 0 {
				n = rng.IntN(3) // weight the sparse regime the shortcut targets
			}
			seen := map[int32]bool{}
			var defects []int32
			for len(defects) < n {
				v := int32(rng.IntN(g.V))
				if !seen[v] {
					seen[v] = true
					defects = append(defects, v)
				}
			}
			slices.Sort(defects)
			sets = append(sets, defects)
		}
		checkShortcutMatchesFull(t, g, sets)
	}
}

// TestSparseShortcutAdjacentClusters plants defect patterns engineered to
// sit at the isolation threshold: pairs one step outside each other's
// influence radius, chains that must coalesce into one slow group, and
// boundary-adjacent defects next to interior pairs.
func TestSparseShortcutAdjacentClusters(t *testing.T) {
	g := lattice.New3DWindow(7, 7)
	id := func(r, c, tt int) int32 { return g.VertexID(r, c, tt) }
	sets := [][]int32{
		// Two interior pairs at increasing separations.
		{id(2, 2, 2), id(2, 3, 2), id(2, 5, 2), id(2, 6, 2)},
		{id(2, 2, 2), id(2, 3, 2), id(4, 2, 2), id(4, 3, 2)},
		{id(2, 2, 2), id(3, 2, 2), id(2, 2, 4), id(3, 2, 4)},
		// A boundary single right next to an interior pair.
		{id(0, 3, 3), id(2, 3, 3), id(3, 3, 3)},
		{id(0, 0, 0), id(1, 0, 0), id(2, 0, 0)},
		// A diagonal chain (all mutually at distance 2).
		{id(1, 1, 1), id(2, 2, 1), id(3, 3, 1), id(4, 4, 1)},
		// Far-apart singles deep in the bulk (slow) and near boundaries.
		{id(3, 3, 3)},
		{id(0, 1, 1), id(5, 5, 5)},
		// Temporal pair at the window's temporal boundary.
		{id(3, 3, 5), id(3, 3, 6)},
		{id(3, 3, 6)},
	}
	for r := 0; r < len(sets); r++ {
		slices.Sort(sets[r])
	}
	checkShortcutMatchesFull(t, g, sets)
}

// TestSparseShortcutStatsContract: the shortcut must still report defect
// and correction counts, which the streaming layer and LeanStats consumers
// read.
func TestSparseShortcutStatsContract(t *testing.T) {
	g := lattice.New3DWindow(5, 5)
	dec := NewDecoder(g, Options{SparseShortcut: true, LeanStats: true})
	defects := []int32{g.VertexID(2, 2, 2), g.VertexID(2, 3, 2)}
	corr := dec.Decode(defects)
	if dec.Stats.NumDefects != 2 {
		t.Fatalf("NumDefects = %d, want 2", dec.Stats.NumDefects)
	}
	if dec.Stats.CorrectionEdges != len(corr) || len(corr) != 1 {
		t.Fatalf("CorrectionEdges = %d, corr %v", dec.Stats.CorrectionEdges, corr)
	}
}
