package core

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"afs/internal/lattice"
	"afs/internal/noise"
)

// tileGrids are the tier-1 (d, p) points the parity suite sweeps, p chosen
// near threshold so syndromes are heavy — the regime the tile engine
// exists for — plus a sparse point to exercise the mostly-idle partition.
var tileGrids = []struct {
	d int
	p float64
}{
	{5, 0.01},
	{5, 0.08},
	{7, 0.03},
	{7, 0.10},
	{11, 0.08},
}

// TestTileParityVsSequential is the bit-identity contract: for every tile
// size and worker count, the tile-parallel decode of every syndrome equals
// the sequential full-pipeline decode slice for slice — same correction
// edges in the same order — and the peeled cluster profiles agree.
func TestTileParityVsSequential(t *testing.T) {
	for _, grid := range tileGrids {
		g := lattice.New3D(grid.d, grid.d)
		seq := NewDecoder(g, Options{})
		s := noise.NewSampler(g, grid.p, 1234, uint64(grid.d))
		var trials []([]int32)
		var trial noise.Trial
		for i := 0; i < 60; i++ {
			s.Sample(&trial)
			trials = append(trials, append([]int32(nil), trial.Defects...))
		}
		for _, size := range []int{3, 5, 100} {
			for _, workers := range []int{1, 2, 5} {
				td := NewTileDecoder(g, Options{}, TileConfig{TileSize: size, Workers: workers})
				for i, defects := range trials {
					want := append([]int32(nil), seq.Decode(defects)...)
					got := td.Decode(defects)
					if !reflect.DeepEqual(got, want) && (len(got) != 0 || len(want) != 0) {
						t.Fatalf("d=%d p=%g size=%d workers=%d trial %d: tile correction %v, sequential %v",
							grid.d, grid.p, size, workers, i, got, want)
					}
					if !reflect.DeepEqual(seq.Stats.Clusters, td.Stats().Clusters) {
						t.Fatalf("d=%d p=%g size=%d workers=%d trial %d: cluster profiles diverge\n tile %+v\n seq  %+v",
							grid.d, grid.p, size, workers, i, td.Stats().Clusters, seq.Stats.Clusters)
					}
					if seq.Stats.GrowthRounds != td.Stats().GrowthRounds ||
						seq.Stats.SupportEdges != td.Stats().SupportEdges {
						t.Fatalf("d=%d p=%g size=%d workers=%d trial %d: growth profile diverges (rounds %d/%d, support %d/%d)",
							grid.d, grid.p, size, workers, i,
							td.Stats().GrowthRounds, seq.Stats.GrowthRounds,
							td.Stats().SupportEdges, seq.Stats.SupportEdges)
					}
				}
			}
		}
	}
}

// TestTileWorkerCountDeterminism pins the stronger half of the contract:
// not only the corrections but the deterministic work meters (SeqUnits,
// CritUnits, boundary merges) are identical across worker counts, so the
// critical-path speedup the perf floor pins cannot depend on scheduling.
func TestTileWorkerCountDeterminism(t *testing.T) {
	g := lattice.New3D(11, 11)
	s := noise.NewSampler(g, 0.08, 99, 11)
	var trials []([]int32)
	var trial noise.Trial
	for i := 0; i < 40; i++ {
		s.Sample(&trial)
		trials = append(trials, append([]int32(nil), trial.Defects...))
	}
	type profile struct {
		corr  []int32
		stats TileStats
	}
	var base []profile
	for _, workers := range []int{1, 2, 3, 8} {
		td := NewTileDecoder(g, Options{LeanStats: true}, TileConfig{TileSize: 4, Workers: workers})
		for i, defects := range trials {
			corr := append([]int32(nil), td.Decode(defects)...)
			st := td.LastStats()
			st.Speedup = 0 // float of the two int64s; compare the integers
			if workers == 1 {
				base = append(base, profile{corr, st})
				continue
			}
			if !reflect.DeepEqual(corr, base[i].corr) {
				t.Fatalf("workers=%d trial %d: correction differs from single-worker run", workers, i)
			}
			if st != base[i].stats {
				t.Fatalf("workers=%d trial %d: tile profile differs from single-worker run\n got  %+v\n want %+v",
					workers, i, st, base[i].stats)
			}
		}
	}
}

// TestTileArbitraryDefectSets extends the decoder's central invariant to
// the tile engine: for ANY defect set, it terminates and its correction
// reproduces the syndrome exactly.
func TestTileArbitraryDefectSets(t *testing.T) {
	g := lattice.New3D(5, 5)
	td := NewTileDecoder(g, Options{}, TileConfig{TileSize: 2, Workers: 4})
	f := func(seed uint64, kRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		k := int(kRaw) % (g.V / 2)
		seen := make(map[int32]bool, k)
		var defects []int32
		for len(defects) < k {
			v := int32(rng.IntN(g.V))
			if !seen[v] {
				seen[v] = true
				defects = append(defects, v)
			}
		}
		sortInt32(defects)
		corr := td.Decode(defects)
		got := SyndromeOf(g, corr)
		return reflect.DeepEqual(got, defects) || (len(got) == 0 && len(defects) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTileWindowGraphParity checks the contract on the open-time-boundary
// window graphs the streaming punt path decodes.
func TestTileWindowGraphParity(t *testing.T) {
	g := lattice.New3DWindow(7, 9)
	seq := NewDecoder(g, Options{LeanStats: true})
	td := NewTileDecoder(g, Options{LeanStats: true}, TileConfig{TileSize: 3, Workers: 3})
	s := noise.NewSampler(g, 0.06, 5, 5)
	var trial noise.Trial
	for i := 0; i < 80; i++ {
		s.Sample(&trial)
		want := append([]int32(nil), seq.Decode(trial.Defects)...)
		got := td.Decode(trial.Defects)
		if !reflect.DeepEqual(got, want) && (len(got) != 0 || len(want) != 0) {
			t.Fatalf("window trial %d: tile %v, sequential %v", i, got, want)
		}
	}
}

// TestTileEdgeCases exercises the empty syndrome, a lone boundary-adjacent
// defect, and decoder reuse across alternating heavy and trivial decodes.
func TestTileEdgeCases(t *testing.T) {
	g := lattice.New3D(5, 5)
	td := NewTileDecoder(g, Options{}, TileConfig{TileSize: 3, Workers: 2})
	if corr := td.Decode(nil); len(corr) != 0 {
		t.Fatalf("empty syndrome produced correction %v", corr)
	}
	if st := td.LastStats(); st.TilesTouched != 0 || st.SeqUnits != 0 {
		t.Fatalf("empty syndrome touched tiles: %+v", st)
	}
	seq := NewDecoder(g, Options{})
	single := []int32{0} // corner ancilla: one growth round to the boundary
	heavy := func() []int32 {
		var out []int32
		for v := int32(0); v < int32(g.V); v += 3 {
			out = append(out, v)
		}
		return out
	}()
	for i := 0; i < 4; i++ {
		for _, defects := range [][]int32{single, heavy, nil, single} {
			want := append([]int32(nil), seq.Decode(defects)...)
			got := td.Decode(defects)
			if !reflect.DeepEqual(got, want) && (len(got) != 0 || len(want) != 0) {
				t.Fatalf("reuse round %d: tile %v, sequential %v", i, got, want)
			}
		}
	}
}

// TestTileDirtyMembershipSurvivesPrune is the regression test for the
// duplicate-dirty-entry bug: growTile can prune a tile's live list to
// empty mid-decode while the tile stays in dirty (dirty is never pruned
// between rounds), so a later join into that tile — e.g. a fresh endpoint
// of a cross-tile merged edge — must NOT append a second dirty entry.
// With a duplicate entry runRound grows the same tile twice per round:
// single-worker that double-increments growth32 (an edge can go 0->2 in
// one round from one endpoint, breaking bit-identity); multi-worker two
// goroutines claim the two entries and race on the tile's slices.
func TestTileDirtyMembershipSurvivesPrune(t *testing.T) {
	g := lattice.New3D(5, 5)
	td := NewTileDecoder(g, Options{}, TileConfig{TileSize: 2, Workers: 1})

	// Pick two vertices of the same tile.
	var u, v int32 = -1, -1
	for w := int32(0); w < int32(g.V); w++ {
		if td.tileOf[w] != td.tileOf[0] {
			continue
		}
		if u < 0 {
			u = w
		} else {
			v = w
			break
		}
	}
	ti := td.tileOf[u]
	td.join(u)

	// Mimic growTile pruning the tile's live list to empty mid-decode:
	// interior vertices leave live, but the tile keeps its dirty slot.
	td.inLive[u] = false
	td.live[ti] = td.live[ti][:0]

	// A later join into the pruned tile must reuse that dirty slot.
	td.join(v)
	count := 0
	for _, d := range td.dirty {
		if d == ti {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("tile %d appears %d times in dirty after prune+rejoin, want 1", ti, count)
	}
	// Rewind through a real decode so the decoder is reusable, then check
	// the bit-identity contract still holds on a fresh heavy decode.
	td.Decode(nil)
	seq := NewDecoder(g, Options{})
	s := noise.NewSampler(g, 0.08, 31, 5)
	var trial noise.Trial
	for i := 0; i < 20; i++ {
		s.Sample(&trial)
		want := append([]int32(nil), seq.Decode(trial.Defects)...)
		got := td.Decode(trial.Defects)
		if !reflect.DeepEqual(got, want) && (len(got) != 0 || len(want) != 0) {
			t.Fatalf("trial %d after prune+rejoin: tile %v, sequential %v", i, got, want)
		}
	}
}

// TestTileStatsSanity checks the tile-level meters on a heavy syndrome:
// multiple tiles touched, cross-tile merges observed and reconciled, and a
// critical-path advantage over the sequential unit (the model quantity
// BENCH_9 and the CI floor consume).
func TestTileStatsSanity(t *testing.T) {
	g := lattice.New3D(11, 11)
	td := NewTileDecoder(g, Options{LeanStats: true}, TileConfig{TileSize: 4, Workers: 4})
	s := noise.NewSampler(g, 0.08, 77, 3)
	var trial noise.Trial
	for i := 0; i < 30; i++ {
		s.Sample(&trial)
		td.Decode(trial.Defects)
	}
	tot := td.Totals()
	if tot.Tiles != 9 { // ceil(10/4) x ceil(11/4) = 3 x 3
		t.Fatalf("partition has %d tiles, want 9", tot.Tiles)
	}
	if tot.TilesTouched == 0 || tot.BoundaryMerges == 0 || tot.ReconcileRounds == 0 {
		t.Fatalf("heavy syndromes left tile meters empty: %+v", tot)
	}
	if tot.SeqUnits <= tot.CritUnits {
		t.Fatalf("no critical-path advantage on heavy syndromes: %+v", tot)
	}
	if tot.Speedup <= 1 {
		t.Fatalf("aggregate model speedup %.2f, want > 1", tot.Speedup)
	}
}
