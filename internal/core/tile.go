package core

import (
	"math/bits"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"afs/internal/lattice"
)

// This file implements the tile-parallel Union-Find growth engine for the
// heavy tail: the near-threshold, high-weight windows that survive triage
// and partial-residual peeling and dominate worst-case decode latency
// (ROADMAP items 1 & 3). It follows the shape of the strictly-local and
// FPGA decoders (Actis, arXiv 2305.18534; Helios, arXiv 2301.08419): the
// spatial lattice is partitioned into tiles, each growth round runs
// concurrently within tiles, and cross-tile effects are reconciled by a
// deterministic merge schedule.
//
// # Bit-identity contract
//
// The engine produces the exact correction slice the sequential Decoder
// produces, for every tile size and worker count. The argument has two
// halves:
//
//  1. Per-round growth is order-free. Within one round, an edge's growth
//     increases by one per visiting endpoint that belongs to an active
//     (odd, boundary-free) cluster, saturating at 2. Which endpoints are
//     active is fixed before the round starts, so the set of edges that
//     reach the support this round — and the whole per-round support
//     evolution — does not depend on visit order. The parallel phase
//     therefore only needs atomic saturating adds; no ordering.
//
//  2. Everything order-sensitive is sequential and canonical. The union
//     sequence decides which spanning forest the peeler walks, so the
//     reconciliation phase processes each round's crossing edges in
//     ascending edge order — the same canonical schedule growClusters
//     uses — through the same unionRoots/treeAdj code. Identical union
//     sequence, identical parity/boundary/steps folds, identical forest,
//     identical peel, identical correction slice.
//
// The crossing *events* are detected concurrently (the endpoint whose
// atomic add observes growth 1 logs the edge), so which tile logs an edge
// is scheduling-dependent — but the union of the per-tile logs is exactly
// the round's crossing set, and sorting it erases the nondeterminism
// before any order-sensitive state is touched.
//
// # Cost model
//
// Wall-clock speedup from goroutines is bounded by the host's cores, which
// says nothing about the decoder ASIC/FPGA this models. The engine
// therefore also meters deterministic work units per round: the critical
// path of the parallel phase (the slowest tile, plus the sequential
// reconciliation) versus the sequential engine's total (active-cluster
// work plus reconciliation). The ratio is the speedup a machine with one
// growth unit per tile realizes, it is bit-identical across worker counts,
// and it is what the heavy-window perf floor pins (the same model-ns
// philosophy the streaming deadline ledger uses).

// DefaultTileSize is the spatial tile edge (in ancilla rows/columns) used
// when TileConfig.TileSize is zero. Seven gives a d=21 lattice a 3x3
// partition — nine growth units, comfortably past the 1.5x critical-path
// floor — while keeping per-tile state larger than the reconciliation
// constant.
const DefaultTileSize = 7

// DefaultTileMinDefects is the routing threshold consumers use when
// deciding whether a syndrome is heavy enough for the tile engine: below
// it, per-round tile dispatch overhead outweighs the parallel growth
// (matching the residual-histogram notion of a heavy decode, >16 defects).
const DefaultTileMinDefects = 16

// TileConfig configures a TileDecoder.
type TileConfig struct {
	// TileSize is the spatial tile edge in ancilla rows/columns; tiles span
	// the full time extent of the window (temporal edges never cross
	// tiles). 0 selects DefaultTileSize.
	TileSize int
	// Workers is the number of concurrent growth workers; 0 selects
	// GOMAXPROCS. The worker count never changes results (test-enforced),
	// only wall-clock behavior; it is capped at the tile count.
	Workers int
}

func (c TileConfig) tileSize() int {
	if c.TileSize <= 0 {
		return DefaultTileSize
	}
	return c.TileSize
}

// TileStats describes one tile-parallel decode (or, for the Total fields'
// consumers, an accumulation — see TileDecoder.Totals).
type TileStats struct {
	// Tiles is the partition size; TilesTouched how many tiles held any
	// cluster state this decode.
	Tiles        int
	TilesTouched int
	// BoundaryMerges counts support edges whose endpoints lie in different
	// tiles — the merges only the reconciliation phase may apply.
	BoundaryMerges int
	// ReconcileRounds counts growth rounds that produced at least one
	// crossing edge (rounds the sequential phase had real work).
	ReconcileRounds int
	// SeqUnits is the work the sequential engine performs for this decode
	// (active-cluster visits + growth increments + reconciliation);
	// CritUnits is the parallel engine's critical path (slowest tile per
	// round + reconciliation). Both are deterministic across worker counts.
	SeqUnits  int64
	CritUnits int64
	// Speedup is SeqUnits/CritUnits — the model speedup of one growth unit
	// per tile over a single sequential unit.
	Speedup float64
}

// TileDecoder decodes syndromes with tile-parallel cluster growth. It
// wraps a sequential Decoder (whose reset, union bookkeeping, and peeling
// it reuses) and replaces only the growth loop. Like Decoder it is
// single-owner: concurrency lives inside one Decode call, never across
// calls.
type TileDecoder struct {
	d *Decoder

	size    int
	workers int
	tilesR  int
	tilesC  int
	nTiles  int

	tileOf []int16 // per real vertex: owning tile
	bv     int32   // virtual boundary vertex (no tile)

	// growth32 mirrors Decoder.growth as int32 so the parallel phase can
	// use atomic adds; it is pristine zero between decodes (rewound through
	// the decoder's touched-edge log).
	growth32 []int32
	// eBitU/eBitV give each edge's adjacency-mask bit at its U/V endpoint
	// (zero at the maskless boundary vertex), so reconciliation can clear
	// both sides of a crossed edge without re-deriving slots.
	eBitU, eBitV []uint16

	// Per-tile live lists: cluster members that may still have growable
	// edges. Additions happen in the sequential phases (defect seeding and
	// union reconciliation); pruning of interior vertices happens in the
	// parallel phase by the tile's owning worker, so the lists are
	// single-writer at every instant.
	live   [][]int32
	inLive []bool
	// dirty lists the tiles that held live state this decode, in join
	// order; inDirty is the membership bitmap. Membership must be tracked
	// explicitly — a pruned-to-empty live list is NOT a proxy for "not in
	// dirty" (growTile prunes live lists mid-decode while the tile stays in
	// dirty), and a duplicate dirty entry would let two workers race on the
	// same tile's state.
	dirty   []int16
	inDirty []bool

	rootActive []int64 // per root: stamp of the round it is active in
	roundID    int64

	// Per-tile round logs and work meters, owned by the processing worker.
	touchedT [][]int32
	mergedT  [][]int32
	opsT     []int64 // total visits+increments (scan overhead included)
	activeT  []int64 // active-cluster visits+increments only

	merged  []int32 // gathered crossing edges, sorted ascending
	touched []int32 // gathered first-touched edges, sorted ascending

	cursor atomic.Int32 // tile-claim cursor for the worker pool
	nRound int32        // dirty-tile count visible to workers this round

	last   TileStats
	totals TileStats
	shard  int
}

// NewTileDecoder builds a tile-parallel decoder for g. The wrapped
// sequential decoder uses opts with the sparse shortcut forced off: the
// tile engine exists for exactly the syndromes the shortcut declines, and
// the bit-identity contract is against the full grow/peel pipeline.
func NewTileDecoder(g *lattice.Graph, opts Options, cfg TileConfig) *TileDecoder {
	opts.SparseShortcut = false
	size := cfg.tileSize()
	t := &TileDecoder{
		d:       NewDecoder(g, opts),
		size:    size,
		tilesR:  (g.Distance - 1 + size - 1) / size,
		tilesC:  (g.Distance + size - 1) / size,
		bv:      g.Boundary(),
		workers: cfg.Workers,
		shard:   nextTileShard(),
	}
	t.nTiles = t.tilesR * t.tilesC
	if t.workers <= 0 {
		t.workers = runtime.GOMAXPROCS(0)
	}
	if t.workers > t.nTiles {
		t.workers = t.nTiles
	}
	t.tileOf = make([]int16, g.V)
	per := g.LayerVertices()
	for v := 0; v < g.V; v++ {
		rc := v % per
		r, c := rc/g.Distance, rc%g.Distance
		t.tileOf[v] = int16((r/size)*t.tilesC + c/size)
	}
	t.growth32 = make([]int32, len(g.Edges))
	t.eBitU = make([]uint16, len(g.Edges))
	t.eBitV = make([]uint16, len(g.Edges))
	for v := int32(0); v < int32(g.V); v++ {
		for s, e := range g.AdjacentEdges(v) {
			if g.Edges[e].U == v {
				t.eBitU[e] = 1 << uint(s)
			} else {
				t.eBitV[e] = 1 << uint(s)
			}
		}
	}
	t.live = make([][]int32, t.nTiles)
	t.inLive = make([]bool, g.V)
	t.inDirty = make([]bool, t.nTiles)
	t.touchedT = make([][]int32, t.nTiles)
	t.mergedT = make([][]int32, t.nTiles)
	t.opsT = make([]int64, t.nTiles)
	t.activeT = make([]int64, t.nTiles)
	t.rootActive = make([]int64, g.V+1)
	return t
}

// Graph returns the decoding graph the decoder is bound to.
func (t *TileDecoder) Graph() *lattice.Graph { return t.d.G }

// Stats returns the wrapped decoder's per-syndrome execution profile
// (filled by peeling exactly as in a sequential decode).
func (t *TileDecoder) Stats() *DecodeStats { return &t.d.Stats }

// LastStats returns the tile-level profile of the most recent Decode;
// Totals the accumulation over the decoder's lifetime (with Speedup the
// aggregate SeqUnits/CritUnits ratio).
func (t *TileDecoder) LastStats() TileStats { return t.last }

func (t *TileDecoder) Totals() TileStats {
	tot := t.totals
	if tot.CritUnits > 0 {
		tot.Speedup = float64(tot.SeqUnits) / float64(tot.CritUnits)
	}
	return tot
}

// Decode processes one syndrome and returns the correction as edge
// indices into the graph, bit-identical to the sequential Decoder's
// output for the same defects. The returned slice is reused by the next
// call.
func (t *TileDecoder) Decode(defects []int32) []int32 {
	d := t.d
	d.reset(defects)
	t.last = TileStats{Tiles: t.nTiles}
	if len(defects) > 0 {
		for _, v := range defects {
			t.join(v)
		}
		t.grow()
		d.peel(defects)
	}
	d.Stats.NumDefects = len(defects)
	d.Stats.CorrectionEdges = len(d.correction)
	d.Stats.RootTableAccesses = d.uf.RootReads + d.uf.RootWrites
	d.Stats.SizeTableAccesses = d.uf.SizeReads + d.uf.SizeWrites

	// Rewind tile-engine state so the next decode starts pristine: the
	// shared growth mirror through the decoder's touched-edge log (every
	// edge whose growth left zero is logged exactly once), and the live
	// lists tile by tile.
	for _, e := range d.touchedEdges {
		t.growth32[e] = 0
	}
	for _, ti := range t.dirty {
		for _, v := range t.live[ti] {
			t.inLive[v] = false
		}
		t.live[ti] = t.live[ti][:0]
		t.inDirty[ti] = false
	}
	t.last.TilesTouched = len(t.dirty)
	t.dirty = t.dirty[:0]
	if t.last.CritUnits > 0 {
		t.last.Speedup = float64(t.last.SeqUnits) / float64(t.last.CritUnits)
	}
	t.totals.TilesTouched += t.last.TilesTouched
	t.totals.BoundaryMerges += t.last.BoundaryMerges
	t.totals.ReconcileRounds += t.last.ReconcileRounds
	t.totals.SeqUnits += t.last.SeqUnits
	t.totals.CritUnits += t.last.CritUnits
	t.totals.Tiles = t.nTiles
	tileObs.flush(t.shard, &t.last)
	return d.correction
}

// join adds a vertex that just entered a cluster to its tile's live list.
func (t *TileDecoder) join(v int32) {
	if v == t.bv || t.inLive[v] {
		return
	}
	t.inLive[v] = true
	ti := t.tileOf[v]
	if !t.inDirty[ti] {
		t.inDirty[ti] = true
		t.dirty = append(t.dirty, ti)
	}
	t.live[ti] = append(t.live[ti], v)
}

// grow runs the tile-parallel Gr-Gen loop: a concurrent intra-tile growth
// phase per round, then sequential canonical reconciliation, until no odd
// boundary-free cluster remains.
func (t *TileDecoder) grow() {
	d := t.d
	for len(d.active) > 0 {
		d.Stats.GrowthRounds++
		t.roundID++
		for _, r := range d.active {
			d.steps[r]++
			t.rootActive[r] = t.roundID
		}

		t.runRound()

		// Gather the per-tile logs. Tile order is fixed (join order), but
		// the split of events between tiles is scheduling-dependent, so
		// both gathered sets are sorted before any order-sensitive use.
		t.merged = t.merged[:0]
		t.touched = t.touched[:0]
		var maxOps, sumActive int64
		n := int(t.nRound)
		for i := 0; i < n; i++ {
			ti := t.dirty[i]
			t.merged = append(t.merged, t.mergedT[ti]...)
			t.touched = append(t.touched, t.touchedT[ti]...)
			t.mergedT[ti] = t.mergedT[ti][:0]
			t.touchedT[ti] = t.touchedT[ti][:0]
			if t.opsT[ti] > maxOps {
				maxOps = t.opsT[ti]
			}
			sumActive += t.activeT[ti]
		}
		recon := int64(2 * len(t.merged))
		t.last.SeqUnits += sumActive + recon
		t.last.CritUnits += maxOps + recon

		slices.Sort(t.touched)
		for _, e := range t.touched {
			d.growth[e] = 1
			d.touchedEdges = append(d.touchedEdges, e)
		}
		if len(t.merged) == 0 {
			// Merge-free round: roots, parities and boundary flags are
			// unchanged, so the active list stands exactly as it was.
			continue
		}
		t.last.ReconcileRounds++
		d.Stats.GrowthIncrements += uint64(len(t.merged))

		// Reconciliation: the canonical merge schedule. Ascending edge
		// order, the same unionRoots/treeAdj path the sequential engine
		// takes — this is what pins the spanning forest and with it the
		// correction.
		slices.Sort(t.merged)
		for _, e := range t.merged {
			t.growth32[e] = 2
			d.growth[e] = 2
			ed := &d.G.Edges[e]
			d.adjMask[ed.U] &^= t.eBitU[e]
			d.adjMask[ed.V] &^= t.eBitV[e]
			if ed.U != t.bv && ed.V != t.bv && t.tileOf[ed.U] != t.tileOf[ed.V] {
				t.last.BoundaryMerges++
			}
			ru, rv := d.find(ed.U), d.find(ed.V)
			if ru != rv {
				if d.resetStamp[ed.U] != d.resetEpoch {
					t.join(ed.U)
				}
				if d.resetStamp[ed.V] != d.resetEpoch {
					t.join(ed.V)
				}
				d.unionRoots(ru, rv)
				d.touch(ed.U)
				d.touch(ed.V)
				d.treeAdjNext[2*e] = d.treeAdjHead[ed.U]
				d.treeAdjHead[ed.U] = 2 * e
				d.treeAdjNext[2*e+1] = d.treeAdjHead[ed.V]
				d.treeAdjHead[ed.V] = 2*e + 1
			}
		}
		d.rebuildActive()
	}
	d.Stats.GrowthIncrements += uint64(len(d.touchedEdges))
}

// runRound executes one round's parallel phase: the dirty tiles are
// claimed off a shared cursor and grown concurrently. With one worker (or
// one dirty tile) everything runs inline.
func (t *TileDecoder) runRound() {
	n := len(t.dirty)
	t.nRound = int32(n)
	w := t.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			t.growTile(t.dirty[i])
		}
		return
	}
	t.cursor.Store(0)
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for k := 0; k < w-1; k++ {
		go func() {
			defer wg.Done()
			t.claimTiles()
		}()
	}
	t.claimTiles()
	wg.Wait()
}

// claimTiles drains the round's tile cursor on the calling goroutine.
func (t *TileDecoder) claimTiles() {
	for {
		i := t.cursor.Add(1) - 1
		if i >= t.nRound {
			return
		}
		t.growTile(t.dirty[i])
	}
}

// growTile runs one tile's growth for the current round: every live vertex
// in an active cluster adds half an edge to each of its growable edges via
// a saturating atomic add. The add's old value classifies the event — 0
// first-touches the edge, 1 crosses it into the support — and each event
// is observed by exactly one endpoint, so the tile logs need no
// deduplication. Interior vertices (no growable edges left) are pruned.
// Nothing outside the tile's own logs, meters and live list is written
// except growth32, which is atomic.
func (t *TileDecoder) growTile(ti int16) {
	d := t.d
	lv := t.live[ti]
	n := len(lv)
	var ops, active int64
	for i := 0; i < n; {
		v := lv[i]
		m := d.adjMask[v]
		if m == 0 {
			n--
			lv[i] = lv[n]
			t.inLive[v] = false
			ops++
			continue
		}
		ops++
		if t.rootActive[d.uf.FindReadOnly(v)] != t.roundID {
			i++
			continue
		}
		active++
		adj := d.G.AdjacentEdges(v)
		for mm := m; mm != 0; mm &= mm - 1 {
			e := adj[bits.TrailingZeros16(mm)]
			ops++
			active++
			switch atomic.AddInt32(&t.growth32[e], 1) {
			case 1: // first touch: growth 0 -> 1
				t.touchedT[ti] = append(t.touchedT[ti], e)
			case 2: // crossing: the edge joins the support this round
				t.mergedT[ti] = append(t.mergedT[ti], e)
			}
			// 3 means the far endpoint crossed it earlier this same round;
			// reconciliation normalizes the mirror back to 2.
		}
		i++
	}
	t.live[ti] = lv[:n]
	t.opsT[ti] = ops
	t.activeT[ti] = active
}
