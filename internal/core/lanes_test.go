package core

import (
	"math/rand/v2"
	"testing"

	"afs/internal/lattice"
	"afs/internal/lut"
	"afs/internal/swar"
)

// laneRef is the per-lane scalar reference for LaneTriage.Classify: weight
// class from the defect count, parities from the side table, the
// perfect-matching predicate and the pairs-plus-singles certificate from
// pairwise L1 distances.
type laneRef struct {
	weight      int
	north       bool
	tie         bool
	matched     bool
	chain4      bool
	singlesOK   bool
	singleNorth bool
}

func refClassify(g *lattice.Graph, bd *lut.Boundary, defs []int32) laneRef {
	var ref laneRef
	ref.weight = len(defs)
	for _, v := range defs {
		switch bd.Side[v] {
		case lut.SideNorth:
			ref.north = !ref.north
		case lut.SideTie:
			ref.tie = true
		}
	}
	deg := make([]int, len(defs))
	for i, u := range defs {
		for j, v := range defs {
			if i != j && g.GraphDistance(u, v) == 1 {
				deg[i]++
			}
		}
	}
	ref.matched = true
	for _, d := range deg {
		if d != 1 {
			ref.matched = false
			break
		}
	}
	// chain4: no isolated or degree >= 3 defect, exactly two degree-2
	// defects, and those two adjacent (dominoes plus one 4-path).
	ref.chain4 = len(defs) > 0
	var d2idx []int
	for i, d := range deg {
		if d == 0 || d >= 3 {
			ref.chain4 = false
		}
		if d == 2 {
			d2idx = append(d2idx, i)
		}
	}
	if len(d2idx) != 2 {
		ref.chain4 = false
	} else if ref.chain4 {
		ref.chain4 = g.GraphDistance(defs[d2idx[0]], defs[d2idx[1]]) == 1
	}
	// singlesOK: no defect with two adjacent partners, at least one
	// isolated defect, and every isolated defect certified — a strict-side
	// B <= 2 boundary single (no isolated defect at distance 2, no matched
	// defect within distance B+1) or a member of a certified distance-2
	// interior duo (unique mutual isolated partner, both B >= 2, no
	// matched defect within distance 2). This is a direct scalar
	// transcription of LaneTriage's isolated-defect post-pass, including
	// its pass order (candidate classification, then the pairwise
	// duo/kill sweep in ascending-index order).
	noDeg2 := true
	var iso []int
	for i, d := range deg {
		if d >= 2 {
			noDeg2 = false
		}
		if d == 0 {
			iso = append(iso, i)
		}
	}
	single := make([]bool, len(iso))
	duoCand := make([]bool, len(iso))
	duoPaired := make([]bool, len(iso))
	for a, i := range iso {
		u := defs[i]
		if bd.Side[u] == lut.SideTie {
			continue
		}
		b := int(bd.Dist[u])
		isoHits, matched2, matched3 := 0, false, false
		for j, v := range defs {
			if j == i {
				continue
			}
			switch d := g.GraphDistance(u, v); {
			case d == 2 && deg[j] == 0:
				isoHits++
			case d == 2:
				matched2 = true
			case d == 3 && deg[j] != 0:
				matched3 = true
			}
		}
		duoCand[a] = b >= 2 && isoHits == 1 && !matched2
		single[a] = b <= 2 && isoHits == 0 && !matched2 && !(b == 2 && matched3)
	}
	for a := 1; a < len(iso); a++ {
		u := defs[iso[a]]
		for b := 0; b < a; b++ {
			v := defs[iso[b]]
			switch d := g.GraphDistance(u, v); {
			case d == 2:
				if duoCand[a] && duoCand[b] {
					duoPaired[a], duoPaired[b] = true, true
				}
			case d <= int(bd.Dist[u])+int(bd.Dist[v])+1:
				single[a], single[b] = false, false
				duoCand[a], duoCand[b] = false, false
				duoPaired[a], duoPaired[b] = false, false
			}
		}
	}
	ok := noDeg2 && len(iso) > 0
	for a, i := range iso {
		if !single[a] && !duoPaired[a] {
			ok = false
		}
		if single[a] && bd.Side[defs[i]] == lut.SideNorth {
			ref.singleNorth = !ref.singleNorth
		}
	}
	ref.singlesOK = ok
	if !ref.singlesOK {
		ref.singleNorth = false
	}
	return ref
}

// buildPlanes scatters per-lane defect lists into plane + touched-bitmap
// form, optionally marking extra vertices touched with no defects (the
// cancelled-toggle case the classifier must skip). The planes carry the
// always-zero sentinel slot at index g.V, as PlaneGroup does.
func buildPlanes(g *lattice.Graph, lanes [][]int32, extraTouched []int32) (planes, touched []uint64) {
	planes = make([]uint64, g.V+1)
	touched = make([]uint64, (g.V+63)/64)
	for lane, defs := range lanes {
		swar.ScatterLane(planes, lane, defs)
		for _, v := range defs {
			touched[v>>6] |= 1 << (uint(v) & 63)
		}
	}
	for _, v := range extraTouched {
		touched[v>>6] |= 1 << (uint(v) & 63)
	}
	return planes, touched
}

// randomLanes draws 64 random defect sets: a mix of uniform scatters,
// adjacent pairs (so Matched lanes actually occur), and empty lanes.
func randomLanes(g *lattice.Graph, rng *rand.Rand) [][]int32 {
	lanes := make([][]int32, 64)
	for lane := range lanes {
		seen := map[int32]bool{}
		add := func(v int32) {
			if !seen[v] {
				seen[v] = true
				lanes[lane] = append(lanes[lane], v)
			}
		}
		switch rng.IntN(5) {
		case 0: // empty or tiny scatter
			for i := rng.IntN(3); i > 0; i-- {
				add(int32(rng.IntN(g.V)))
			}
		case 1: // uniform scatter
			for i := rng.IntN(8); i > 0; i-- {
				add(int32(rng.IntN(g.V)))
			}
		case 2: // an adjacency walk (4-paths and longer chains), sometimes
			// with a domino elsewhere
			cur := int32(rng.IntN(g.V))
			add(cur)
			for step := 1 + rng.IntN(4); step > 0; step-- {
				nbrs := testNeighbors(g, cur)
				cur = nbrs[rng.IntN(len(nbrs))]
				add(cur)
			}
			if rng.IntN(2) == 0 {
				u := int32(rng.IntN(g.V))
				nbrs := testNeighbors(g, u)
				add(u)
				add(nbrs[rng.IntN(len(nbrs))])
			}
		default: // adjacent pairs, sometimes polluted with a scatter
			for i := 1 + rng.IntN(4); i > 0; i-- {
				u := int32(rng.IntN(g.V))
				r, c, t := g.VertexCoords(u)
				var v int32 = -1
				switch rng.IntN(3) {
				case 0:
					if c+1 < g.Distance {
						v = g.VertexID(r, c+1, t)
					}
				case 1:
					if r+1 < g.Distance-1 {
						v = g.VertexID(r+1, c, t)
					}
				default:
					if t+1 < g.Rounds {
						v = g.VertexID(r, c, t+1)
					}
				}
				if v >= 0 {
					add(u)
					add(v)
				}
			}
			if rng.IntN(3) == 0 {
				add(int32(rng.IntN(g.V)))
			}
		}
		sortInt32Test(lanes[lane])
	}
	return lanes
}

// testNeighbors enumerates v's real lattice neighbors from coordinates.
func testNeighbors(g *lattice.Graph, v int32) []int32 {
	r, c, t := g.VertexCoords(v)
	d := g.Distance
	var out []int32
	if t > 0 {
		out = append(out, g.VertexID(r, c, t-1))
	}
	if r > 0 {
		out = append(out, g.VertexID(r-1, c, t))
	}
	if c > 0 {
		out = append(out, g.VertexID(r, c-1, t))
	}
	if c < d-1 {
		out = append(out, g.VertexID(r, c+1, t))
	}
	if r < d-2 {
		out = append(out, g.VertexID(r+1, c, t))
	}
	if t < g.Rounds-1 {
		out = append(out, g.VertexID(r, c, t+1))
	}
	return out
}

func sortInt32Test(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func checkClasses(t *testing.T, g *lattice.Graph, bd *lut.Boundary, lt *LaneTriage, lanes [][]int32, laneMask uint64, extra []int32) {
	t.Helper()
	planes, touched := buildPlanes(g, lanes, extra)
	cls := lt.Classify(planes, touched, laneMask)
	wantDefects := 0
	for lane, defs := range lanes {
		bit := uint64(1) << uint(lane)
		if bit&laneMask == 0 {
			continue
		}
		wantDefects += len(defs)
		ref := refClassify(g, bd, defs)
		var gotW int
		switch {
		case cls.W0&bit != 0:
			gotW = 0
		case cls.W1&bit != 0:
			gotW = 1
		case cls.W2&bit != 0:
			gotW = 2
		default:
			gotW = 3
		}
		wantW := ref.weight
		if wantW > 3 {
			wantW = 3
		}
		if gotW != wantW {
			t.Fatalf("lane %d: weight class %d, want %d (defects %v)", lane, gotW, wantW, defs)
		}
		if got := cls.Heavy&bit != 0; got != (ref.weight >= 3) {
			t.Fatalf("lane %d: heavy=%v, want %v", lane, got, ref.weight >= 3)
		}
		if got := cls.NorthParity&bit != 0; got != ref.north {
			t.Fatalf("lane %d: north parity %v, want %v (defects %v)", lane, got, ref.north, defs)
		}
		if got := cls.TieAny&bit != 0; got != ref.tie {
			t.Fatalf("lane %d: tie %v, want %v (defects %v)", lane, got, ref.tie, defs)
		}
		if got := cls.Matched&bit != 0; got != ref.matched {
			t.Fatalf("lane %d: matched %v, want %v (defects %v)", lane, got, ref.matched, defs)
		}
		if got := cls.Chain4&bit != 0; got != ref.chain4 {
			t.Fatalf("lane %d: chain4 %v, want %v (defects %v)", lane, got, ref.chain4, defs)
		}
		if got := cls.SinglesOK&bit != 0; got != ref.singlesOK {
			t.Fatalf("lane %d: singlesOK %v, want %v (defects %v)", lane, got, ref.singlesOK, defs)
		}
		if got := cls.SingleParity&bit != 0; got != ref.singleNorth {
			t.Fatalf("lane %d: single parity %v, want %v (defects %v)", lane, got, ref.singleNorth, defs)
		}
	}
	if cls.Defects != wantDefects {
		t.Fatalf("defect total %d, want %d", cls.Defects, wantDefects)
	}
	all := cls.W0 | cls.W1 | cls.W2 | cls.Heavy | cls.NorthParity | cls.TieAny |
		cls.Matched | cls.Chain4 | cls.SinglesOK | cls.SingleParity
	if all != all&laneMask {
		t.Fatal("class masks leak outside the lane mask")
	}
	if cls.Matched&cls.SinglesOK != 0 {
		t.Fatal("Matched and SinglesOK overlap")
	}
	if cls.Chain4&(cls.Matched|cls.SinglesOK) != 0 {
		t.Fatal("Chain4 overlaps Matched or SinglesOK")
	}
	// The compact defect list must enumerate exactly the nonzero plane
	// words, in ascending vertex order.
	prev := int32(-1)
	for i, v := range lt.DefV {
		if v <= prev {
			t.Fatalf("DefV not ascending at %d: %v", i, lt.DefV)
		}
		prev = v
		if lt.DefW[i] != planes[v] || planes[v] == 0 {
			t.Fatalf("DefW[%d] = %x, want nonzero %x", i, lt.DefW[i], planes[v])
		}
	}
}

// Steady-state lane classification must not allocate: every scratch slice
// — the d2 capture, the defect gather list, and the iso post-pass state
// (isoPlane, sOK/duoC/duoP) — is preallocated in NewLaneTriage or retained
// at its high-water mark across Classify calls.
func TestLaneClassifyZeroAllocSteadyState(t *testing.T) {
	g := lattice.New3D(7, 7)
	lt := NewLaneTriage(g)
	rng := rand.New(rand.NewPCG(21, 7))
	const groups = 8
	planes := make([][]uint64, groups)
	touched := make([][]uint64, groups)
	for i := range planes {
		planes[i], touched[i] = buildPlanes(g, randomLanes(g, rng), nil)
		lt.Classify(planes[i], touched[i], ^uint64(0)) // reach the high-water mark
	}
	i := 0
	avg := testing.AllocsPerRun(50, func() {
		lt.Classify(planes[i%groups], touched[i%groups], ^uint64(0))
		i++
	})
	if avg != 0 {
		t.Fatalf("LaneTriage.Classify allocates %.1f times per call in steady state", avg)
	}
}

// LaneTriage must agree lane for lane with the scalar reference, on closed
// graphs (no ties) and window graphs (temporal-boundary ties).
func TestLaneTriageMatchesScalarReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *lattice.Graph
	}{
		{"closed-5x5", lattice.New3D(5, 5)},
		{"closed-3x3", lattice.New3D(3, 3)},
		{"window-5x5", lattice.New3DWindow(5, 5)},
	} {
		g := tc.g
		bd := lut.NewBoundary(g)
		lt := NewLaneTriage(g)
		rng := rand.New(rand.NewPCG(42, uint64(g.V)))
		for trial := 0; trial < 60; trial++ {
			lanes := randomLanes(g, rng)
			var extra []int32
			for i := 0; i < 5; i++ {
				extra = append(extra, int32(rng.IntN(g.V)))
			}
			mask := ^uint64(0)
			if trial%3 == 1 {
				// Partial group: dead-lane defect sets must be ignored.
				k := 1 + rng.IntN(63)
				mask = ^uint64(0) >> uint(64-k)
			}
			live := lanes
			if mask != ^uint64(0) {
				live = make([][]int32, 64)
				for lane := range lanes {
					if mask&(1<<uint(lane)) != 0 {
						live[lane] = lanes[lane]
					}
				}
			}
			checkClasses(t, g, bd, lt, live, mask, extra)
		}
	}
}

// Every bitwise-resolved heavy lane must be exactly a syndrome the scalar
// pair/single decomposition resolves with the same parity — when it is
// small enough for the scalar walk at all. Larger resolved lanes (beyond
// maxTriageDefects) are the bit-plane layer's win over the scalar walk.
// Resolved W2 lanes must agree with the scalar weight-2 closed form.
func TestLaneTriageResolvedAgreesWithScalarTriage(t *testing.T) {
	g := lattice.New3D(7, 7)
	lt := NewLaneTriage(g)
	tri := NewTriage(g)
	rng := rand.New(rand.NewPCG(7, 11))
	matchedChecked, singlesChecked, chainChecked := 0, 0, 0
	for trial := 0; trial < 300 && (matchedChecked < 300 || singlesChecked < 100 || chainChecked < 50); trial++ {
		lanes := randomLanes(g, rng)
		planes, touched := buildPlanes(g, lanes, nil)
		cls := lt.Classify(planes, touched, ^uint64(0))
		for lane := 0; lane < 64; lane++ {
			bit := uint64(1) << uint(lane)
			if len(lanes[lane]) > maxTriageDefects || len(lanes[lane]) < 2 {
				continue
			}
			var wantParity bool
			switch {
			case cls.Matched&bit != 0:
				wantParity = false
				matchedChecked++
			case cls.Chain4&bit != 0:
				wantParity = false
				chainChecked++
			case cls.SinglesOK&bit != 0:
				wantParity = cls.SingleParity&bit != 0
				singlesChecked++
			default:
				continue
			}
			class, parity, ok := tri.ClassifySyndrome(lanes[lane])
			if !ok || parity != wantParity {
				t.Fatalf("resolved lane %v: scalar triage says class=%v parity=%v ok=%v, want parity=%v",
					lanes[lane], class, parity, ok, wantParity)
			}
			if len(lanes[lane]) == 2 && class != TriageW2 {
				t.Fatalf("resolved weight-2 lane %v: scalar class %v, want W2", lanes[lane], class)
			}
			if len(lanes[lane]) > 2 && class != TriageMulti {
				t.Fatalf("resolved heavy lane %v: scalar class %v, want multi", lanes[lane], class)
			}
		}
	}
	if matchedChecked == 0 || singlesChecked == 0 || chainChecked == 0 {
		t.Fatalf("vacuous: matched=%d singles=%d chain4=%d lanes checked",
			matchedChecked, singlesChecked, chainChecked)
	}
}

// FuzzLaneClassify feeds fuzzer-chosen defect scatters through Classify
// and cross-checks every lane against the scalar reference.
func FuzzLaneClassify(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(64))
	g := lattice.New3D(3, 3)
	bd := lut.NewBoundary(g)
	lt := NewLaneTriage(g)
	f.Fuzz(func(t *testing.T, data []byte, kByte uint8) {
		k := 1 + int(kByte)%64
		mask := ^uint64(0) >> uint(64-k)
		lanes := make([][]int32, 64)
		seen := map[[2]int32]bool{}
		for i := 0; i+1 < len(data); i += 2 {
			lane := int(data[i]) % k
			v := int32(data[i+1]) % int32(g.V)
			key := [2]int32{int32(lane), v}
			if seen[key] {
				continue
			}
			seen[key] = true
			lanes[lane] = append(lanes[lane], v)
		}
		for lane := range lanes {
			sortInt32Test(lanes[lane])
		}
		checkClasses(t, g, bd, lt, lanes, mask, nil)
	})
}
