package core

import (
	"os"
	"testing"

	"afs/internal/lattice"
	"afs/internal/noise"
)

// TestPerfSmokeTileHeavyWindow is the CI perf-smoke gate for the tile
// engine: at d=21 near threshold (the heavy-window regime the engine
// exists for) the model critical-path speedup — SeqUnits over CritUnits,
// the gain of one growth unit per tile over a single sequential unit —
// must clear a pinned floor. Unlike the throughput floors in
// internal/montecarlo this metric is fully deterministic (the worker
// count and host speed never enter it, test-enforced by
// TestTileWorkerCountDeterminism), so the floor can sit close to the
// measured value without CI jitter risk: dev machines measure ~2.4x
// against a floor of 1.5x. Enabled by AFS_PERF_SMOKE=1.
func TestPerfSmokeTileHeavyWindow(t *testing.T) {
	if os.Getenv("AFS_PERF_SMOKE") == "" {
		t.Skip("set AFS_PERF_SMOKE=1 to run the pinned-floor perf smoke")
	}
	const (
		d            = 21
		p            = 0.03 // near threshold: every window is heavy
		syndromes    = 32
		floorSpeedup = 1.5
	)
	g := lattice.New3D(d, d)
	s := noise.NewSampler(g, p, 9021, 1)
	td := NewTileDecoder(g, Options{LeanStats: true}, TileConfig{})
	var trial noise.Trial
	for i := 0; i < syndromes; i++ {
		s.Sample(&trial)
		td.Decode(trial.Defects)
	}
	tot := td.Totals()
	if tot.CritUnits <= 0 {
		t.Fatalf("no critical-path work recorded (seq=%d crit=%d)", tot.SeqUnits, tot.CritUnits)
	}
	speedup := float64(tot.SeqUnits) / float64(tot.CritUnits)
	t.Logf("d=%d p=%g: %d seq units / %d crit units = %.2fx model speedup (%d tiles)",
		d, p, tot.SeqUnits, tot.CritUnits, speedup, tot.Tiles)
	if speedup < floorSpeedup {
		t.Fatalf("model critical-path speedup %.3fx below pinned floor %.1fx", speedup, floorSpeedup)
	}
}
