package core

import "afs/internal/lut"

// Partial-residual decomposition (the triage layer's last line before the
// full decoder).
//
// classifyMulti answers all-or-nothing: one ambiguous defect punts the whole
// syndrome, and at the design point that tail — ~2% of trials at ~3.7 µs per
// full decode — is the batched pipeline's Amdahl floor. PeelResidual splits
// the punt instead: it re-derives the pair/single decomposition with
// per-component *demotion* in place of whole-syndrome rejection, applies the
// certified components' closed-form cut parities directly, and returns only
// the ambiguous remainder for the decoder. The full decode population
// shrinks (syndromes whose every component certifies resolve here outright)
// and each surviving decode gets smaller (the decoder sees the residual
// defect set, not the whole syndrome) — both factors of the floor.
//
// # The certificate
//
// Soundness rests on the same radius-bound argument as the sparse shortcut
// (see sparse.go): under half-edge growth a cluster born at defect u absorbs
// only vertices within L1 distance B(u) of u (B = fault distance to the
// nearest boundary — once that ball is absorbed the cluster has touched the
// boundary and gone inactive), and two groups of defects can interact only
// if some cross pair (i, j) satisfies L1(i, j) <= R(i)+R(j)+1, where R is a
// valid per-defect influence radius — otherwise no edge can ever complete
// between their absorbed regions and each group evolves exactly as it would
// alone. The certified component classes and their radii:
//
//   - adjacent pair / matchable quad (distance-1 component of size 2, or
//     size 4 with a perfect matching): merges in growth round one having
//     absorbed nothing beyond its defects. R = 0, cut parity 0 — exactly
//     classifyMulti's pairing classes.
//
//   - interior duo (two leftover singles at distance D with
//     2 <= D < 2*min(B(u), B(v)), each the other's unique such partner):
//     the W2 interior-merge rule generalized into the decomposition. Both
//     clusters stay active until they merge at round D — boundary contact
//     would take round 2B > D — with each frontier having grown D/2 edges
//     (for odd D one frontier completes the middle edge), so every absorbed
//     vertex is within R = ceil(D/2) of its own defect, and D < 2*min(B)
//     gives R <= min(B) <= B. The merged cluster is even and final: cut
//     parity 0. Minimal-
//     weight decoders concur: D < 2*min <= B(u)+B(v) makes the interior
//     chain strictly cheaper than any boundary-touching resolution, so the
//     u-v homology class is unique. (classifyMulti ships only the D == 2
//     case of this rule; the decomposition framework makes the general
//     band cheap to certify.)
//
//   - boundary single (strict side): resolves to its nearest boundary.
//     R = B, cut parity = the north-side bit — classifyMulti's singles rule.
//
//   - residual (everything demoted: oversize or unmatchable distance-1
//     components, side ties, singles with zero or multiple duo partners):
//     decoded as one group by the full pipeline. R = B per member — the
//     unconditional bound above, valid whatever the decoder does inside
//     the group.
//
// The demotion fixpoint then enforces the isolation invariant: any
// cross-group pair (i, j) with L1(i, j) <= R(i)+R(j)+1 demotes *both*
// groups to the residual (their isolation certificates cannot be
// established, so the decoder must see them together). Demotion only ever
// moves components into the residual and never back, and demoted members
// revert to the unconditional radius B, so the loop is monotone and
// terminates; the terminal partition satisfies the invariant with radii
// valid for the terminal classification. Certified components therefore
// evolve exactly as they would alone under every decoder the triage layer
// is sound for — regardless of what correction the decoder produces for
// the residual — and the whole syndrome's cut parity is the XOR of the
// certified closed forms with the residual decode's parity.
//
// Finally, a residual of weight <= 2 is retried through Classify: its
// closed forms (W1 single at R = B, W2 interior merge at R < B,
// W2 independent singles at R = B) all stay within the radius-B bound the
// fixpoint already validated for the residual members, so folding their
// parity in is sound and the trial resolves with no decoder work at all.
//
// The differential tests (residual_test.go) enforce the certificate the
// same way the triage layer's were: exhaustive small-d placements,
// randomized fault-shaped and adversarial syndromes, and fuzzing, with the
// peeled-plus-residual parity compared against an undecomposed full decode
// under every decoder in the repo including MWPM.

// Peel states (multiScratch.st): how each defect's component left the
// decomposition. plSingle doubles as the initial state — a defect not yet
// claimed by a pairing class is a candidate single until demoted.
const (
	plSingle uint8 = iota // certified strict-side boundary single (R = B)
	plPair                // member of a certified pair/quad (R = 0)
	plDuo                 // member of a certified interior duo (R = ceil(D/2))
	plResid               // demoted to the residual decode set (R = B)
)

// PeelResidual decomposes a syndrome the closed-form triage punted: it
// certifies the components whose isolation holds regardless of the
// ambiguous remainder, XORs their closed-form cut parities into parity, and
// returns the residual defect set the caller must still decode (empty when
// everything certified). peeled counts the certified components. The
// residual slice aliases either kernel-owned scratch or defects itself and
// is valid until the next PeelResidual call. defects must be sorted as
// produced by the samplers; the residual preserves that order.
//
// Syndromes beyond maxTriageDefects (or trivially small ones) return
// unpeeled: parity 0, the input as residual, peeled 0.
func (t *Triage) PeelResidual(defects []int32) (parity bool, residual []int32, peeled int) {
	k := len(defects)
	if k < 3 || k > maxTriageDefects {
		return false, defects, 0
	}
	s := &t.ms
	r, c, tt := s.r[:k], s.c[:k], s.t[:k]
	rad, grp, deg, cnt := s.rad[:k], s.grp[:k], s.deg[:k], s.cnt[:k]
	bnd, st := s.bnd[:k], s.st[:k]
	for i, v := range defects {
		p := t.g.PackedCoords(v)
		r[i] = int32(p & 0xffff)
		c[i] = int32(p >> 16 & 0xffff)
		tt[i] = int32(p >> 32 & 0xffff)
		bnd[i] = int32(p >> 48)
		rad[i] = bnd[i]
		grp[i] = int8(i)
		deg[i] = 0
		cnt[i] = 1
		st[i] = plSingle
	}
	// Pairwise distances (symmetric — the demotion fixpoint sweeps both
	// triangles), distance-1 adjacency degrees, and the d == 1 pair list.
	conflict := false
	n1 := 0
	for i := 0; i < k; i++ {
		di := s.d[i][:k]
		ri, ci, ti := r[i], c[i], tt[i]
		for j := i + 1; j < k; j++ {
			d := abs32(ri-r[j]) + abs32(ci-c[j]) + abs32(ti-tt[j])
			di[j] = d
			s.d[j][i] = d
			if d == 1 {
				deg[i]++
				deg[j]++
				conflict = conflict || deg[i] > 1 || deg[j] > 1
				s.adj1[n1] = [2]int8{int8(i), int8(j)}
				n1++
			}
		}
	}
	// Distance-1 components. Without adjacency conflicts the pairs are
	// disjoint dominoes (classifyMulti's fast case); with conflicts, label
	// propagation finds the components and each certifies or demotes on its
	// own — the per-component form of mergeComponents' accept-or-punt.
	if !conflict {
		for a := 0; a < n1; a++ {
			i, j := s.adj1[a][0], s.adj1[a][1]
			grp[j] = i
			cnt[i], cnt[j] = 2, 0
			rad[i], rad[j] = 0, 0
			st[i], st[j] = plPair, plPair
		}
	} else {
		for changed := true; changed; {
			changed = false
			for a := 0; a < n1; a++ {
				i, j := s.adj1[a][0], s.adj1[a][1]
				if grp[i] != grp[j] {
					m := grp[i]
					if grp[j] < m {
						m = grp[j]
					}
					grp[i], grp[j] = m, m
					changed = true
				}
			}
		}
		for i := 0; i < k; i++ {
			cnt[i] = 0
		}
		for i := 0; i < k; i++ {
			cnt[grp[i]]++
		}
		for i := 0; i < k; i++ {
			gi := int(grp[i])
			if gi != i {
				continue
			}
			certified := cnt[i] == 2 || (cnt[i] == 4 && t.quadMatchable(k, i))
			if cnt[i] == 1 {
				continue // leftover single: decided below
			}
			for m := 0; m < k; m++ {
				if int(grp[m]) != gi {
					continue
				}
				if certified {
					st[m], rad[m] = plPair, 0
				} else {
					st[m] = plResid // rad stays B
				}
			}
		}
	}
	// Interior-duo pairing among the leftover singles: each single's
	// candidates are the other singles within the interior-merge band
	// 2 <= D < 2*min(B). A unique mutual candidate certifies the duo at
	// radius ceil(D/2); zero or multiple candidates leave the defect a
	// single —
	// the ambiguity, if real, is caught by the isolation fixpoint below
	// (a spurned candidate sits at D <= B(i)+B(j)+1 by construction, so
	// uncertifiable closeness always demotes). deg is dead after the
	// pairing pass and is reused as the candidate store.
	for i := 0; i < k; i++ {
		deg[i] = -1
	}
	for i := 0; i < k; i++ {
		if cnt[i] != 1 || st[i] != plSingle {
			continue
		}
		di := s.d[i][:k]
		for j := i + 1; j < k; j++ {
			if cnt[j] != 1 || st[j] != plSingle {
				continue
			}
			mn := bnd[i]
			if bnd[j] < mn {
				mn = bnd[j]
			}
			if di[j] < 2*mn { // D >= 2 is automatic for singles
				if deg[i] == -1 {
					deg[i] = int8(j)
				} else {
					deg[i] = -2
				}
				if deg[j] == -1 {
					deg[j] = int8(i)
				} else {
					deg[j] = -2
				}
			}
		}
	}
	for i := 0; i < k; i++ {
		if cnt[i] != 1 || st[i] != plSingle {
			continue
		}
		j := int(deg[i])
		if j > i && deg[j] == int8(i) { // mutual uniqueness: see the doc
			grp[j] = int8(i)
			cnt[i], cnt[j] = 2, 0
			rd := (s.d[i][j] + 1) / 2 // ceil(D/2)
			rad[i], rad[j] = rd, rd
			st[i], st[j] = plDuo, plDuo
		}
	}
	// Remaining singles: strict side certifies (R = B, parity from the
	// side bit, folded after the fixpoint); ties demote.
	for i := 0; i < k; i++ {
		if cnt[i] == 1 && st[i] == plSingle && t.bd.Side[defects[i]] == lut.SideTie {
			st[i] = plResid // rad is already B
		}
	}
	// Isolation demotion fixpoint: a cross-group pair within the invariant
	// slack demotes both groups (residual members keep radius B; certified
	// members revert to it). Monotone — groups only ever enter the
	// residual — so the sweep repeats until clean.
	for changed := true; changed; {
		changed = false
		for i := 0; i < k; i++ {
			di := s.d[i][:k]
			slack := rad[i] + 1
			for j := i + 1; j < k; j++ {
				if grp[j] == grp[i] || (st[i] == plResid && st[j] == plResid) {
					continue
				}
				if di[j] > slack+rad[j] {
					continue
				}
				for _, x := range [2]int{i, j} {
					if st[x] == plResid {
						continue
					}
					gx := grp[x]
					for m := 0; m < k; m++ {
						if grp[m] == gx {
							st[m] = plResid
							rad[m] = bnd[m]
						}
					}
					changed = true
				}
				slack = rad[i] + 1 // i's radius may have just grown
			}
		}
	}
	// Collect: certified parities XOR together; residual keeps input order
	// (defects arrive sorted, so the residual is sorted too).
	t.res = t.res[:0]
	for i := 0; i < k; i++ {
		if st[i] == plResid {
			t.res = append(t.res, defects[i])
			continue
		}
		if int(grp[i]) == i {
			peeled++
		}
		if st[i] == plSingle && t.bd.Side[defects[i]] == lut.SideNorth {
			parity = !parity
		}
	}
	if len(t.res) == k {
		return false, defects, 0
	}
	// A weight <= 2 residual gets one more shot at a closed form: the W1/W2
	// rules' radii never exceed the B-per-member bound the fixpoint already
	// validated for the residual, so their parity folds in soundly.
	if n := len(t.res); n > 0 && n <= 2 {
		if _, p2, ok := t.Classify(t.res); ok {
			if p2 {
				parity = !parity
			}
			peeled++
			t.res = t.res[:0]
		}
	}
	return parity, t.res, peeled
}
