package core

import (
	"afs/internal/lattice"
	"afs/internal/noise"
)

// ApplyToData folds a correction (edge indices) into a per-data-qubit mask:
// each spatial edge toggles its data qubit; temporal edges identify
// measurement errors and touch no data qubit. Spatial corrections from
// different rounds of the 3-D graph land on the same physical qubit, so the
// mask accumulates their XOR, which is exactly the Pauli frame update the
// CORR Engine emits.
func ApplyToData(g *lattice.Graph, correction []int32, mask *noise.Bitset) {
	mask.Resize(g.NumDataQubits())
	for _, e := range correction {
		ed := &g.Edges[e]
		if ed.Kind == lattice.Spatial {
			mask.Flip(int(ed.Qubit))
		}
	}
}

// SyndromeOf computes the detection events a set of edges would produce:
// the vertices incident to an odd number of the given edges. It is the
// verification inverse of Decode — a valid correction satisfies
// SyndromeOf(correction) == defects.
func SyndromeOf(g *lattice.Graph, edges []int32) []int32 {
	marks := make(map[int32]bool, 2*len(edges))
	for _, e := range edges {
		ed := &g.Edges[e]
		for _, v := range [2]int32{ed.U, ed.V} {
			if !g.IsBoundary(v) {
				marks[v] = !marks[v]
			}
		}
	}
	var out []int32
	for v, odd := range marks {
		if odd {
			out = append(out, v)
		}
	}
	sortInt32(out)
	return out
}

func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
