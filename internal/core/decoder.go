// Package core implements the paper's primary contribution: the Union-Find
// decoder for surface codes [Delfosse & Nickerson, arXiv:1709.06218;
// Delfosse & Zémor, arXiv:1703.01517], structured as the three steps that
// become the AFS pipeline stages (paper §IV):
//
//  1. Cluster Growth (the Gr-Gen stage): clusters are grown by half an edge
//     at a time around the non-trivial detection events until every cluster
//     covers an even number of them or touches a code boundary.
//  2. Spanning-Forest Generation (the DFS Engine): a spanning tree is built
//     over each cluster with an explicit-stack depth-first search.
//  3. Peeling (the CORR Engine): each spanning tree is traversed in reverse,
//     emitting the correction edges that reproduce the measured syndrome.
//
// The decoder works unchanged on 2-dimensional graphs (perfect
// measurements) and on the 3-dimensional graphs used to tolerate
// measurement errors, because both are just lattice.Graphs with boundaries.
//
// The implementation deliberately exposes the quantities the hardware model
// needs — per-cluster growth steps and sizes, stack high-water marks, and
// memory-access counts — so that internal/microarch can charge latency to
// the same events the paper's Equations (2) and (3) count.
package core

import (
	"fmt"

	"afs/internal/lattice"
	"afs/internal/unionfind"
)

// Options configure decoder variants for the ablation studies in DESIGN.md.
// The zero value selects the full AFS configuration.
type Options struct {
	// DisableWeightedUnion turns off union by size (the Size Table).
	DisableWeightedUnion bool
	// DisablePathCompression turns off path compression (the tree-traversal
	// registers).
	DisablePathCompression bool
}

// ClusterStat describes one peeled cluster; the micro-architecture latency
// model consumes these (paper Eqs. 2-3).
type ClusterStat struct {
	// Vertices is |V(C_i)|, the number of real vertices in the cluster.
	Vertices int
	// GrowthSteps is the number of half-edge growth rounds the cluster
	// participated in while odd (the paper's diam(C_i) proxy: a cluster
	// grown for k rounds has radius k half-edges).
	GrowthSteps int
	// Defects is the number of non-trivial detection events it covers.
	Defects int
	// TouchesBoundary reports whether the cluster reached a code boundary.
	TouchesBoundary bool
}

// DecodeStats captures the per-syndrome execution profile of one decode.
type DecodeStats struct {
	NumDefects      int
	GrowthRounds    int // global growth iterations until no odd cluster remains
	SupportEdges    int // edges fully grown (the erasure handed to peeling)
	Clusters        []ClusterStat
	CorrectionEdges int
	// MaxRuntimeStack and MaxEdgeStack are the high-water marks of the DFS
	// Engine's runtime stack and edge stack, used to validate the storage
	// provisioning in internal/storage.
	MaxRuntimeStack int
	MaxEdgeStack    int
	// RootTableAccesses and SizeTableAccesses count Union-Find memory
	// operations (reads+writes) during Gr-Gen.
	RootTableAccesses uint64
	SizeTableAccesses uint64
	// GrowthIncrements counts STM edge-field updates (half-edge growth
	// writes) and GrowthVisits counts boundary-list vertex visits during
	// Gr-Gen; together they approximate the stage's STM traffic.
	GrowthIncrements uint64
	GrowthVisits     uint64
	// TouchedRows is the number of distinct 32-bit STM vertex rows holding
	// cluster state after this decode — exactly the rows whose Zero Data
	// Register bit is set, i.e. the rows the ZDR lets the DFS Engine visit
	// instead of scanning the whole memory.
	TouchedRows int
}

// Decoder is a reusable Union-Find decoder bound to one decoding graph.
// A Decoder is not safe for concurrent use; Monte-Carlo workers each own
// one, exactly as every logical qubit owns decoding hardware.
type Decoder struct {
	G    *lattice.Graph
	Opts Options

	uf     *unionfind.Forest
	growth []uint8 // 0, 1 (half-grown) or 2 (in the support)
	defect []bool  // per real vertex
	parOdd []bool  // per root: odd number of defects
	hasB   []bool  // per root: cluster contains a boundary vertex
	steps  []int32 // per root: growth rounds participated in
	nDef   []int32 // per root: number of defects covered

	// Per-cluster vertex lists ("boundary lists" in UF terminology): a
	// singly-linked list per root of vertices that may still have
	// non-fully-grown incident edges.
	listHead, listTail, listNext []int32

	active  []int32 // roots of odd, non-boundary clusters
	merged  []int32 // edges fully grown during the current sweep
	stamp   []int32 // deduplication stamps for active-list rebuild
	stampID int32

	rowStamp []int32 // per 32-vertex STM row: ZDR occupancy stamps
	rowEpoch int32

	// Peeling state.
	visited                         []bool
	visitLog                        []int32
	treeChild, treeParent, treeEdge []int32 // spanning-forest edges in DFS order
	runtime                         []dfsFrame

	correction []int32 // edge indices, reused across decodes
	Stats      DecodeStats
}

type dfsFrame struct {
	vertex     int32
	parentEdge int32
}

const nilList = int32(-1)

// NewDecoder builds a decoder for g with the given options.
func NewDecoder(g *lattice.Graph, opts Options) *Decoder {
	n := g.V + 1 // real vertices plus the virtual boundary vertex
	d := &Decoder{
		G:        g,
		Opts:     opts,
		uf:       unionfind.New(n),
		growth:   make([]uint8, len(g.Edges)),
		defect:   make([]bool, g.V),
		parOdd:   make([]bool, n),
		hasB:     make([]bool, n),
		steps:    make([]int32, n),
		nDef:     make([]int32, n),
		listHead: make([]int32, n),
		listTail: make([]int32, n),
		listNext: make([]int32, n),
		stamp:    make([]int32, n),
		rowStamp: make([]int32, (g.V+31)/32),
		visited:  make([]bool, n),
	}
	return d
}

// Decode processes one syndrome (the sorted list of vertices with
// non-trivial detection events) and returns the correction as a list of
// edge indices into G.Edges. The returned slice is reused by the next call.
func (d *Decoder) Decode(defects []int32) []int32 {
	d.reset(defects)
	if len(defects) > 0 {
		d.growClusters()
		d.peel(defects)
	}
	d.Stats.NumDefects = len(defects)
	d.Stats.CorrectionEdges = len(d.correction)
	d.Stats.RootTableAccesses = d.uf.RootReads + d.uf.RootWrites
	d.Stats.SizeTableAccesses = d.uf.SizeReads + d.uf.SizeWrites
	return d.correction
}

func (d *Decoder) reset(defects []int32) {
	d.Stats = DecodeStats{Clusters: d.Stats.Clusters[:0]}
	d.uf.Reset()
	for i := range d.growth {
		d.growth[i] = 0
	}
	n := d.G.V + 1
	for i := 0; i < n; i++ {
		d.parOdd[i] = false
		d.hasB[i] = false
		d.steps[i] = 0
		d.nDef[i] = 0
		d.listHead[i] = int32(i)
		d.listTail[i] = int32(i)
		d.listNext[i] = nilList
	}
	b := d.G.Boundary()
	d.hasB[b] = true
	d.rowEpoch++
	for _, v := range defects {
		d.defect[v] = true
		d.parOdd[v] = true
		d.nDef[v] = 1
		d.touchRow(v)
	}
	d.active = d.active[:0]
	for _, v := range defects {
		d.active = append(d.active, v)
	}
	d.correction = d.correction[:0]
}

func (d *Decoder) find(v int32) int32 {
	if d.Opts.DisablePathCompression {
		return d.uf.FindNoCompress(v)
	}
	return d.uf.Find(v)
}

func (d *Decoder) unionRoots(ra, rb int32) int32 {
	var rn int32
	if d.Opts.DisableWeightedUnion {
		rn = d.uf.UnionRootsUnweighted(ra, rb)
	} else {
		rn = d.uf.UnionRoots(ra, rb)
	}
	rd := ra
	if rd == rn {
		rd = rb
	}
	// Fold the dead root's cluster attributes into the survivor.
	d.parOdd[rn] = d.parOdd[rn] != d.parOdd[rd]
	d.hasB[rn] = d.hasB[rn] || d.hasB[rd]
	if d.steps[rd] > d.steps[rn] {
		d.steps[rn] = d.steps[rd]
	}
	d.nDef[rn] += d.nDef[rd]
	// Concatenate vertex lists in O(1).
	d.listNext[d.listTail[rn]] = d.listHead[rd]
	d.listTail[rn] = d.listTail[rd]
	return rn
}

// growClusters runs the Gr-Gen step: repeated half-edge growth of every
// odd cluster until all clusters are even or boundary-attached.
func (d *Decoder) growClusters() {
	for len(d.active) > 0 {
		d.Stats.GrowthRounds++
		d.merged = d.merged[:0]
		for _, r := range d.active {
			d.growOne(r)
		}
		for _, e := range d.merged {
			ed := &d.G.Edges[e]
			ru, rv := d.find(ed.U), d.find(ed.V)
			if ru != rv {
				d.unionRoots(ru, rv)
			}
		}
		d.rebuildActive()
	}
}

// growOne grows cluster r (a current root) by half an edge around every
// vertex on its boundary list, unlinking vertices that have become
// interior.
func (d *Decoder) growOne(r int32) {
	d.steps[r]++
	prev := nilList
	v := d.listHead[r]
	for v != nilList {
		nxt := d.listNext[v]
		d.Stats.GrowthVisits++
		if v != int32(d.G.V) { // cluster vertices light their ZDR row
			d.touchRow(v)
		}
		grewAny := false
		allFull := true
		for _, e := range d.G.AdjacentEdges(v) {
			switch d.growth[e] {
			case 2:
				continue
			case 1:
				d.growth[e] = 2
				d.merged = append(d.merged, e)
				d.Stats.GrowthIncrements++
				grewAny = true
			case 0:
				d.growth[e] = 1
				d.Stats.GrowthIncrements++
				grewAny = true
				allFull = false
			}
		}
		if !grewAny && allFull {
			// Interior vertex: unlink so later sweeps skip it.
			if prev == nilList {
				d.listHead[r] = nxt
			} else {
				d.listNext[prev] = nxt
			}
			if nxt == nilList {
				d.listTail[r] = prev
				if prev == nilList {
					// List emptied; keep the root itself as a sentinel so
					// concatenation during a later merge stays valid.
					d.listHead[r] = r
					d.listTail[r] = r
					d.listNext[r] = nilList
				}
			}
		} else {
			prev = v
		}
		v = nxt
	}
}

// touchRow marks vertex v's 32-bit STM row occupied (the Zero Data
// Register bit the DFS Engine consults) and counts first touches.
func (d *Decoder) touchRow(v int32) {
	row := v >> 5
	if d.rowStamp[row] != d.rowEpoch {
		d.rowStamp[row] = d.rowEpoch
		d.Stats.TouchedRows++
	}
}

// rebuildActive re-derives the odd-cluster worklist after a growth sweep.
func (d *Decoder) rebuildActive() {
	d.stampID++
	out := d.active[:0]
	for _, r := range d.active {
		rr := d.find(r)
		if d.stamp[rr] == d.stampID {
			continue
		}
		d.stamp[rr] = d.stampID
		if d.parOdd[rr] && !d.hasB[rr] {
			out = append(out, rr)
		}
	}
	d.active = out
}

// peel runs the DFS Engine and CORR Engine steps: it builds a spanning tree
// over every support component containing defects (rooting boundary-attached
// components at the boundary) and peels it leaf-first, emitting correction
// edges. After peeling, every defect mark has been cleared.
func (d *Decoder) peel(defects []int32) {
	d.visitLog = d.visitLog[:0]
	b := d.G.Boundary()

	// Boundary-attached components first, each boundary subtree counted as
	// its own cluster (physically distinct clusters share only the virtual
	// boundary vertex).
	d.visited[b] = true
	d.visitLog = append(d.visitLog, b)
	for _, e := range d.G.AdjacentEdges(b) {
		if d.growth[e] != 2 {
			continue
		}
		u := d.G.Other(e, b)
		if d.visited[u] {
			continue
		}
		d.peelTree(u, e, true)
	}
	// Interior components, rooted at a defect each.
	for _, v := range defects {
		if !d.visited[v] {
			d.peelTree(v, -1, false)
		}
	}
	for _, v := range d.visitLog {
		d.visited[v] = false
	}
}

// peelTree explores one spanning tree rooted at `root` (whose edge to the
// boundary, if any, is rootEdge) and peels it.
func (d *Decoder) peelTree(root int32, rootEdge int32, boundary bool) {
	d.treeChild = d.treeChild[:0]
	d.treeParent = d.treeParent[:0]
	d.treeEdge = d.treeEdge[:0]
	d.runtime = d.runtime[:0]

	b := d.G.Boundary()
	d.visited[root] = true
	d.visitLog = append(d.visitLog, root)
	vertices := 1
	origDefects := 0
	if d.defect[root] {
		origDefects++
	}
	d.runtime = append(d.runtime, dfsFrame{vertex: root, parentEdge: rootEdge})
	maxRT := 1
	for len(d.runtime) > 0 {
		fr := d.runtime[len(d.runtime)-1]
		d.runtime = d.runtime[:len(d.runtime)-1]
		v := fr.vertex
		for _, e := range d.G.AdjacentEdges(v) {
			if d.growth[e] != 2 || e == fr.parentEdge {
				continue
			}
			u := d.G.Other(e, v)
			if u == b || d.visited[u] {
				continue
			}
			d.visited[u] = true
			d.visitLog = append(d.visitLog, u)
			vertices++
			if d.defect[u] {
				origDefects++
			}
			d.treeChild = append(d.treeChild, u)
			d.treeParent = append(d.treeParent, v)
			d.treeEdge = append(d.treeEdge, e)
			d.runtime = append(d.runtime, dfsFrame{vertex: u, parentEdge: e})
			if len(d.runtime) > maxRT {
				maxRT = len(d.runtime)
			}
		}
	}

	// CORR: reverse traversal of the tree-edge stack. A defect on the child
	// side selects the edge into the correction and flips the parent's
	// defect state; defects reaching a boundary-rooted tree's root are
	// flushed through the root edge into the boundary.
	for i := len(d.treeEdge) - 1; i >= 0; i-- {
		child, parent, e := d.treeChild[i], d.treeParent[i], d.treeEdge[i]
		if d.defect[child] {
			d.defect[child] = false
			d.correction = append(d.correction, e)
			d.defect[parent] = !d.defect[parent]
		}
	}
	if d.defect[root] {
		d.defect[root] = false
		if boundary {
			d.correction = append(d.correction, rootEdge)
		} else {
			// An interior tree must cover an even number of defects; an odd
			// leftover indicates a broken growth invariant.
			panic(fmt.Sprintf("core: interior cluster at vertex %d left an unmatched defect", root))
		}
	}

	d.Stats.Clusters = append(d.Stats.Clusters, ClusterStat{
		Vertices:        vertices,
		GrowthSteps:     int(d.steps[d.find(root)]),
		Defects:         origDefects,
		TouchesBoundary: boundary,
	})
	if maxRT > d.Stats.MaxRuntimeStack {
		d.Stats.MaxRuntimeStack = maxRT
	}
	if len(d.treeEdge) > d.Stats.MaxEdgeStack {
		d.Stats.MaxEdgeStack = len(d.treeEdge)
	}
	d.Stats.SupportEdges += len(d.treeEdge)
}
