// Package core implements the paper's primary contribution: the Union-Find
// decoder for surface codes [Delfosse & Nickerson, arXiv:1709.06218;
// Delfosse & Zémor, arXiv:1703.01517], structured as the three steps that
// become the AFS pipeline stages (paper §IV):
//
//  1. Cluster Growth (the Gr-Gen stage): clusters are grown by half an edge
//     at a time around the non-trivial detection events until every cluster
//     covers an even number of them or touches a code boundary.
//  2. Spanning-Forest Generation (the DFS Engine): a spanning tree is built
//     over each cluster with an explicit-stack depth-first search.
//  3. Peeling (the CORR Engine): each spanning tree is traversed in reverse,
//     emitting the correction edges that reproduce the measured syndrome.
//
// The decoder works unchanged on 2-dimensional graphs (perfect
// measurements) and on the 3-dimensional graphs used to tolerate
// measurement errors, because both are just lattice.Graphs with boundaries.
//
// The implementation deliberately exposes the quantities the hardware model
// needs — per-cluster growth steps and sizes, stack high-water marks, and
// memory-access counts — so that internal/microarch can charge latency to
// the same events the paper's Equations (2) and (3) count.
package core

import (
	"fmt"
	"math/bits"
	"slices"

	"afs/internal/lattice"
	"afs/internal/unionfind"
)

// Options configure decoder variants for the ablation studies in DESIGN.md.
// The zero value selects the full AFS configuration.
type Options struct {
	// DisableWeightedUnion turns off union by size (the Size Table).
	DisableWeightedUnion bool
	// DisablePathCompression turns off path compression (the tree-traversal
	// registers).
	DisablePathCompression bool
	// LeanStats skips the per-decode execution profile — ZDR row tracking,
	// growth-traffic counters, and per-cluster stats — leaving only
	// NumDefects, GrowthRounds, SupportEdges and CorrectionEdges valid.
	// Bulk Monte-Carlo accuracy runs enable it: they consume none of the
	// profile, and the bookkeeping sits on the decode hot path. The
	// micro-architecture latency model must run with it off.
	LeanStats bool
	// ClusterStats, with LeanStats on, restores just the per-cluster
	// profiles (Stats.Clusters: vertices, growth steps, defects, boundary
	// contact) while keeping every per-access counter off. The traversal
	// already computes those values for peeling, so the cost is one append
	// per cluster — unlike the full profile, whose per-visit row tracking
	// and counting Union-Find variants sit on the growth hot path. The
	// streaming deadline model needs exactly this slice
	// (microarch.Model.WindowCost) and nothing else. Ignored when
	// LeanStats is off (the full profile subsumes it).
	ClusterStats bool
	// SparseShortcut enables a decision-identical fast path for sparse
	// syndromes (see sparse.go): isolated adjacent defect pairs and isolated
	// boundary-adjacent singles are resolved in O(1) each, and only the
	// remaining defects run the full grow/peel pipeline. The returned
	// correction is always the same edge set as the full algorithm's, though
	// possibly in a different order. Streaming decoders enable it — their
	// windows hold O(1) defects almost always. Intended for LeanStats
	// pipelines: with it on, the execution profile (GrowthRounds, Clusters,
	// table-access counters) covers only the defects that took the full
	// pipeline.
	SparseShortcut bool
}

// ClusterStat describes one peeled cluster; the micro-architecture latency
// model consumes these (paper Eqs. 2-3).
type ClusterStat struct {
	// Vertices is |V(C_i)|, the number of real vertices in the cluster.
	Vertices int
	// GrowthSteps is the number of half-edge growth rounds the cluster
	// participated in while odd (the paper's diam(C_i) proxy: a cluster
	// grown for k rounds has radius k half-edges).
	GrowthSteps int
	// Defects is the number of non-trivial detection events it covers.
	Defects int
	// TouchesBoundary reports whether the cluster reached a code boundary.
	TouchesBoundary bool
}

// DecodeStats captures the per-syndrome execution profile of one decode.
type DecodeStats struct {
	NumDefects      int
	GrowthRounds    int // global growth iterations until no odd cluster remains
	SupportEdges    int // edges fully grown (the erasure handed to peeling)
	Clusters        []ClusterStat
	CorrectionEdges int
	// MaxRuntimeStack and MaxEdgeStack are the high-water marks of the DFS
	// Engine's runtime stack and edge stack, used to validate the storage
	// provisioning in internal/storage.
	MaxRuntimeStack int
	MaxEdgeStack    int
	// RootTableAccesses and SizeTableAccesses count Union-Find memory
	// operations (reads+writes) during Gr-Gen.
	RootTableAccesses uint64
	SizeTableAccesses uint64
	// GrowthIncrements counts STM edge-field updates (half-edge growth
	// writes) and GrowthVisits counts boundary-list vertex visits during
	// Gr-Gen; together they approximate the stage's STM traffic.
	GrowthIncrements uint64
	GrowthVisits     uint64
	// TouchedRows is the number of distinct 32-bit STM vertex rows holding
	// cluster state after this decode — exactly the rows whose Zero Data
	// Register bit is set, i.e. the rows the ZDR lets the DFS Engine visit
	// instead of scanning the whole memory.
	TouchedRows int
}

// PipelineDefects returns the number of defects that ran the full
// grow/DFS/peel pipeline this decode — the ones the per-cluster stats
// cover. The remainder (NumDefects minus this) were resolved in closed form
// by the sparse shortcut or skipped past a decode horizon; streaming cost
// models charge them separately (microarch.Model.WindowCost).
func (st *DecodeStats) PipelineDefects() int {
	n := 0
	for _, c := range st.Clusters {
		n += c.Defects
	}
	return n
}

// Decoder is a reusable Union-Find decoder bound to one decoding graph.
// A Decoder is not safe for concurrent use; Monte-Carlo workers each own
// one, exactly as every logical qubit owns decoding hardware.
type Decoder struct {
	G    *lattice.Graph
	Opts Options

	uf     *unionfind.Forest
	growth []uint8 // 0, 1 (half-grown) or 2 (in the support)
	defect []bool  // per real vertex
	parOdd []bool  // per root: odd number of defects
	hasB   []bool  // per root: cluster contains a boundary vertex
	steps  []int32 // per root: growth rounds participated in
	nDef   []int32 // per root: number of defects covered

	// Per-cluster vertex lists ("boundary lists" in UF terminology): a
	// singly-linked list per root of vertices that may still have
	// non-fully-grown incident edges.
	listHead, listTail, listNext []int32

	active  []int32 // roots of odd, non-boundary clusters
	merged  []int32 // edges fully grown during the current sweep
	stamp   []int32 // deduplication stamps for active-list rebuild
	stampID int32

	// adjMask[v] has bit s set iff v's s-th adjacent edge is not yet fully
	// grown, so a growth sweep visits only growable edges instead of
	// rescanning full ones every round. fullMask holds the pristine
	// all-edges-growable masks. adjBase/adjFar/adjFarBit mirror the graph's
	// adjacency rows: entry adjBase[v]+s holds the far endpoint of v's s-th
	// adjacent edge and that endpoint's mask bit for the same edge, so
	// filling an edge clears the far side's bit without loading the edge
	// record. The virtual boundary vertex carries no mask (its degree
	// exceeds the mask width, and growth never sweeps it); far entries that
	// point at it use a zero bit, making the far clear a no-op.
	adjMask   []uint16
	fullMask  []uint16
	adjBase   []int32
	adjFar    []int32
	adjFarBit []uint16

	// Undo logs for the sparse reset: touchedEdges records every edge whose
	// growth state left 0, and touchedVerts every vertex that joined a
	// cluster (defects when marked, union-edge endpoints when merged).
	// Cluster and Union-Find state is only ever modified on cluster members
	// and the boundary vertex, so replaying the logs restores pristine state
	// in O(work done) instead of O(V+E). resetStamp dedupes touchedVerts at
	// insertion time, so the restore loop runs once per unique vertex.
	touchedEdges []int32
	touchedVerts []int32
	resetStamp   []int32
	resetEpoch   int32

	// Pristine images for the bulk-reset path: identVert is the identity
	// mapping (listHead/listTail at rest) and allNil is all nilList. When a
	// dense syndrome grows support over most of the lattice, replaying the
	// undo log costs more than rewriting every row with vectorized
	// copies/clears; bulkThreshold is the crossover in touched-work units.
	identVert     []int32
	allNil        []int32
	bulkThreshold int

	// Spanning forest built during Gr-Gen: every merged edge whose endpoints
	// were in distinct components at merge time is a tree edge, so the union
	// step yields each cluster's spanning tree for free. treeAdjHead[v]
	// heads a singly-linked list of adjacency slots (slot 2e is edge e in
	// U's list, 2e+1 in V's); peeling walks these lists instead of scanning
	// full lattice adjacency and growth state. treeAdjFar[s] is the static
	// far endpoint of slot s (V for 2e, U for 2e+1), so the walk never
	// consults the edge records.
	treeAdjHead []int32
	treeAdjNext []int32
	treeAdjFar  []int32

	rowStamp []int32 // per 32-vertex STM row: ZDR occupancy stamps
	rowEpoch int32

	// Peeling state.
	visited  []bool
	visitLog []int32
	tree     []treeRec // spanning-forest edges in DFS order
	runtime  []int32   // DFS Engine runtime stack (vertices)

	correction []int32 // edge indices, reused across decodes
	Stats      DecodeStats

	sp sparseScratch // Options.SparseShortcut working set (sparse.go)
}

// treeRec is one oriented spanning-forest edge: child joined the tree from
// parent via edge. One record per entry keeps the DFS append and the
// reverse CORR sweep on a single contiguous stream.
type treeRec struct {
	child, parent, edge int32
}

const nilList = int32(-1)

// NewDecoder builds a decoder for g with the given options.
func NewDecoder(g *lattice.Graph, opts Options) *Decoder {
	n := g.V + 1 // real vertices plus the virtual boundary vertex
	d := &Decoder{
		G:          g,
		Opts:       opts,
		uf:         unionfind.New(n),
		growth:     make([]uint8, len(g.Edges)),
		defect:     make([]bool, g.V),
		parOdd:     make([]bool, n),
		hasB:       make([]bool, n),
		steps:      make([]int32, n),
		nDef:       make([]int32, n),
		listHead:   make([]int32, n),
		listTail:   make([]int32, n),
		listNext:   make([]int32, n),
		stamp:      make([]int32, n),
		resetStamp: make([]int32, n),
		rowStamp:   make([]int32, (g.V+31)/32),
		visited:    make([]bool, n),
	}
	// Establish the pristine state the sparse reset maintains: every vertex
	// a singleton list, the boundary flagged. reset() only rewinds the
	// entries the previous decode touched.
	d.identVert = make([]int32, n)
	d.allNil = make([]int32, n)
	for i := 0; i < n; i++ {
		d.identVert[i] = int32(i)
		d.allNil[i] = nilList
	}
	copy(d.listHead, d.identVert)
	copy(d.listTail, d.identVert)
	copy(d.listNext, d.allNil)
	d.treeAdjHead = make([]int32, n)
	copy(d.treeAdjHead, d.allNil)
	d.treeAdjNext = make([]int32, 2*len(g.Edges))
	d.treeAdjFar = make([]int32, 2*len(g.Edges))
	for e := range g.Edges {
		d.treeAdjFar[2*e] = g.Edges[e].V
		d.treeAdjFar[2*e+1] = g.Edges[e].U
	}
	d.adjMask = make([]uint16, n)
	d.fullMask = make([]uint16, n)
	d.adjBase = make([]int32, g.V)
	b := g.Boundary()
	// First pass: per-vertex masks, row bases, and each edge's slot bit at
	// each endpoint.
	slotAt := make(map[[2]int32]uint16) // (vertex, edge) -> slot bit
	total := 0
	for v := int32(0); v < int32(g.V); v++ {
		adj := g.AdjacentEdges(v)
		if len(adj) > 16 {
			panic("core: vertex degree exceeds adjacency mask width")
		}
		d.fullMask[v] = uint16(1)<<uint(len(adj)) - 1
		d.adjBase[v] = int32(total)
		total += len(adj)
		for s, e := range adj {
			slotAt[[2]int32{v, e}] = 1 << uint(s)
		}
	}
	// Second pass: each row entry holds the far endpoint and its mask bit
	// for the shared edge (zero bit for the maskless boundary vertex).
	d.adjFar = make([]int32, total)
	d.adjFarBit = make([]uint16, total)
	for v := int32(0); v < int32(g.V); v++ {
		base := d.adjBase[v]
		for s, e := range g.AdjacentEdges(v) {
			far := g.Other(e, v)
			d.adjFar[base+int32(s)] = far
			if far != b {
				d.adjFarBit[base+int32(s)] = slotAt[[2]int32{far, e}]
			}
		}
	}
	copy(d.adjMask, d.fullMask)
	d.bulkThreshold = n
	d.hasB[g.Boundary()] = true
	if opts.SparseShortcut {
		d.sp = newSparseScratch()
	}
	return d
}

// Decode processes one syndrome (the sorted list of vertices with
// non-trivial detection events) and returns the correction as a list of
// edge indices into G.Edges. The returned slice is reused by the next call.
func (d *Decoder) Decode(defects []int32) []int32 {
	return d.DecodeHorizon(defects, noHorizon)
}

// noHorizon disables horizon filtering: every correction edge is produced.
const noHorizon = int32(1) << 30

// DecodeHorizon decodes like Decode, but the caller promises to use only
// correction edges with Round < horizon (a streaming decoder's commit
// region; tentative rounds are re-decoded later with more context). Edges
// at Round >= horizon may be present, absent, or differ from a full
// decode. With the sparse shortcut enabled, defect groups that provably
// cannot produce an edge below the horizon — every member's layer minus
// its influence radius is at or past it — are skipped outright, which is
// where a sliding window saves most of its work. Without the shortcut (or
// when it declines) the full pipeline runs and the result is simply the
// complete correction.
func (d *Decoder) DecodeHorizon(defects []int32, horizon int32) []int32 {
	if d.Opts.SparseShortcut {
		if corr, ok := d.decodeSparse(defects, horizon); ok {
			return corr
		}
	}
	d.reset(defects)
	if len(defects) > 0 {
		d.growClusters()
		d.peel(defects)
	}
	d.Stats.NumDefects = len(defects)
	d.Stats.CorrectionEdges = len(d.correction)
	d.Stats.RootTableAccesses = d.uf.RootReads + d.uf.RootWrites
	d.Stats.SizeTableAccesses = d.uf.SizeReads + d.uf.SizeWrites
	return d.correction
}

func (d *Decoder) reset(defects []int32) {
	d.Stats = DecodeStats{Clusters: d.Stats.Clusters[:0]}
	b := d.G.Boundary()
	if len(d.touchedEdges)+len(d.touchedVerts) >= d.bulkThreshold {
		// Dense rewind: the previous support covered so much of the lattice
		// that replaying the undo log would cost more than rewriting every
		// row with vectorized clears and copies of the pristine images.
		clear(d.growth)
		clear(d.parOdd)
		clear(d.hasB)
		clear(d.steps)
		clear(d.nDef)
		copy(d.listHead, d.identVert)
		copy(d.listTail, d.identVert)
		copy(d.listNext, d.allNil)
		copy(d.treeAdjHead, d.allNil)
		copy(d.adjMask, d.fullMask)
		d.uf.Reset()
	} else {
		// Sparse rewind: only state the previous decode touched needs
		// restoring. Cluster and Union-Find state is only ever modified on
		// cluster members — all logged in touchedVerts, each exactly once —
		// and on the boundary vertex.
		d.uf.ResetCounters()
		for _, e := range d.touchedEdges {
			d.growth[e] = 0
		}
		for _, v := range d.touchedVerts {
			d.restoreVertex(v)
		}
		d.restoreVertex(b)
	}
	d.touchedEdges = d.touchedEdges[:0]
	d.touchedVerts = d.touchedVerts[:0]
	d.resetEpoch++
	d.hasB[b] = true
	d.rowEpoch++
	lean := d.Opts.LeanStats
	for _, v := range defects {
		d.defect[v] = true
		d.parOdd[v] = true
		d.nDef[v] = 1
		d.touch(v)
		if !lean {
			d.touchRow(v)
		}
	}
	d.active = append(d.active[:0], defects...)
	d.correction = d.correction[:0]
}

// restoreVertex returns vertex v's cluster and Union-Find state to the
// pristine post-construction values.
func (d *Decoder) restoreVertex(v int32) {
	d.parOdd[v] = false
	d.hasB[v] = false
	d.steps[v] = 0
	d.nDef[v] = 0
	d.listHead[v] = v
	d.listTail[v] = v
	d.listNext[v] = nilList
	d.treeAdjHead[v] = nilList
	d.adjMask[v] = d.fullMask[v]
	d.uf.Reinit(v)
}

// touch logs v as a cluster member for the next sparse reset; the epoch
// stamp makes the log duplicate-free.
func (d *Decoder) touch(v int32) {
	if d.resetStamp[v] != d.resetEpoch {
		d.resetStamp[v] = d.resetEpoch
		d.touchedVerts = append(d.touchedVerts, v)
	}
}

func (d *Decoder) find(v int32) int32 {
	if d.Opts.DisablePathCompression {
		return d.uf.FindNoCompress(v)
	}
	if d.Opts.LeanStats {
		return d.uf.FindQuiet(v)
	}
	return d.uf.Find(v)
}

func (d *Decoder) unionRoots(ra, rb int32) int32 {
	var rn int32
	switch {
	case d.Opts.DisableWeightedUnion:
		rn = d.uf.UnionRootsUnweighted(ra, rb)
	case d.Opts.LeanStats:
		rn = d.uf.UnionRootsQuiet(ra, rb)
	default:
		rn = d.uf.UnionRoots(ra, rb)
	}
	rd := ra
	if rd == rn {
		rd = rb
	}
	// Fold the dead root's cluster attributes into the survivor.
	d.parOdd[rn] = d.parOdd[rn] != d.parOdd[rd]
	d.hasB[rn] = d.hasB[rn] || d.hasB[rd]
	if d.steps[rd] > d.steps[rn] {
		d.steps[rn] = d.steps[rd]
	}
	d.nDef[rn] += d.nDef[rd]
	// Concatenate vertex lists in O(1).
	d.listNext[d.listTail[rn]] = d.listHead[rd]
	d.listTail[rn] = d.listTail[rd]
	return rn
}

// growClusters runs the Gr-Gen step: repeated half-edge growth of every
// odd cluster until all clusters are even or boundary-attached.
func (d *Decoder) growClusters() {
	for len(d.active) > 0 {
		d.Stats.GrowthRounds++
		d.merged = d.merged[:0]
		for _, r := range d.active {
			d.growOne(r)
		}
		// Each 0→1 transition appended to touchedEdges and each 1→2 to
		// merged, so the STM write counters fall out of the log lengths
		// without per-event increments on the hot path.
		if len(d.merged) == 0 {
			// Roots, parities, and boundary flags only change in the merge
			// loop below, so a merge-free round (typical for the 0→1 half of
			// the grow cadence) leaves the active list exactly as it was.
			continue
		}
		d.Stats.GrowthIncrements += uint64(len(d.merged))
		// Canonical merge schedule: process the round's fully-grown edges in
		// ascending edge order, not discovery order. Within one round the set
		// of crossing edges is fixed (growth is additive and saturating, so
		// which edges reach 2 does not depend on sweep order), but the union
		// sequence decides which spanning tree the peeler walks. Fixing the
		// sequence to ascending edge index makes the whole decode a pure
		// function of the per-round support — the contract that lets the
		// tile-parallel engine (tile.go) reproduce this decoder bit for bit
		// from concurrently discovered merges.
		slices.Sort(d.merged)
		for _, e := range d.merged {
			ed := &d.G.Edges[e]
			ru, rv := d.find(ed.U), d.find(ed.V)
			if ru != rv {
				d.unionRoots(ru, rv)
				// A merge between distinct components is a tree edge: the
				// union step builds each cluster's spanning forest as a
				// side effect, which is what peeling traverses.
				d.touch(ed.U)
				d.touch(ed.V)
				d.treeAdjNext[2*e] = d.treeAdjHead[ed.U]
				d.treeAdjHead[ed.U] = 2 * e
				d.treeAdjNext[2*e+1] = d.treeAdjHead[ed.V]
				d.treeAdjHead[ed.V] = 2*e + 1
			}
		}
		d.rebuildActive()
	}
	d.Stats.GrowthIncrements += uint64(len(d.touchedEdges))
}

// growOne grows cluster r (a current root) by half an edge around every
// vertex on its boundary list, unlinking vertices that have become
// interior.
func (d *Decoder) growOne(r int32) {
	d.steps[r]++
	prev := nilList
	lean := d.Opts.LeanStats
	b := int32(d.G.V)
	v := d.listHead[r]
	for v != nilList {
		nxt := d.listNext[v]
		if !lean {
			d.Stats.GrowthVisits++
			if v != b { // cluster vertices light their ZDR row
				d.touchRow(v)
			}
		}
		m := d.adjMask[v]
		if m == 0 {
			// Interior vertex (every incident edge already full at the start
			// of this visit): unlink so later sweeps skip it.
			if prev == nilList {
				d.listHead[r] = nxt
			} else {
				d.listNext[prev] = nxt
			}
			if nxt == nilList {
				d.listTail[r] = prev
				if prev == nilList {
					// List emptied; keep the root itself as a sentinel so
					// concatenation during a later merge stays valid.
					d.listHead[r] = r
					d.listTail[r] = r
					d.listNext[r] = nilList
				}
			}
			v = nxt
			continue
		}
		adj := d.G.AdjacentEdges(v)
		base := d.adjBase[v]
		// Bits in m are exactly the slots whose edge has growth < 2, so the
		// sweep touches no fully-grown edge.
		for mm := m; mm != 0; mm &= mm - 1 {
			slot := bits.TrailingZeros16(mm)
			e := adj[slot]
			if d.growth[e] == 0 {
				d.growth[e] = 1
				d.touchedEdges = append(d.touchedEdges, e)
			} else {
				d.growth[e] = 2
				d.merged = append(d.merged, e)
				m &^= 1 << uint(slot)
				// Clear the far endpoint's slot too (a no-op zero bit when
				// the far endpoint is the maskless boundary vertex).
				pos := base + int32(slot)
				d.adjMask[d.adjFar[pos]] &^= d.adjFarBit[pos]
			}
		}
		d.adjMask[v] = m
		prev = v
		v = nxt
	}
}

// touchRow marks vertex v's 32-bit STM row occupied (the Zero Data
// Register bit the DFS Engine consults) and counts first touches.
func (d *Decoder) touchRow(v int32) {
	row := v >> 5
	if d.rowStamp[row] != d.rowEpoch {
		d.rowStamp[row] = d.rowEpoch
		d.Stats.TouchedRows++
	}
}

// rebuildActive re-derives the odd-cluster worklist after a growth sweep.
func (d *Decoder) rebuildActive() {
	d.stampID++
	out := d.active[:0]
	for _, r := range d.active {
		rr := d.find(r)
		if d.stamp[rr] == d.stampID {
			continue
		}
		d.stamp[rr] = d.stampID
		if d.parOdd[rr] && !d.hasB[rr] {
			out = append(out, rr)
		}
	}
	d.active = out
}

// peel runs the DFS Engine and CORR Engine steps: it walks the spanning
// forest Gr-Gen built (rooting boundary-attached components at the
// boundary) and peels each tree leaf-first, emitting correction edges.
// After peeling, every defect mark has been cleared.
func (d *Decoder) peel(defects []int32) {
	d.visitLog = d.visitLog[:0]
	b := d.G.Boundary()

	// Boundary-attached components first, each boundary subtree counted as
	// its own cluster (physically distinct clusters share only the virtual
	// boundary vertex). The boundary's tree-adjacency list holds exactly
	// the support edges that merged a cluster into the boundary.
	d.visited[b] = true
	d.visitLog = append(d.visitLog, b)
	for s := d.treeAdjHead[b]; s != nilList; s = d.treeAdjNext[s] {
		u := d.treeAdjFar[s]
		if d.visited[u] {
			continue
		}
		d.peelTree(u, s>>1, true)
	}
	// Interior components, rooted at a defect each.
	for _, v := range defects {
		if !d.visited[v] {
			d.peelTree(v, -1, false)
		}
	}
	for _, v := range d.visitLog {
		d.visited[v] = false
	}
}

// peelTree explores one spanning tree rooted at `root` (whose edge to the
// boundary, if any, is rootEdge) and peels it. The traversal follows the
// tree-adjacency lists only, so each vertex costs O(tree degree) instead
// of a scan over its full lattice adjacency.
func (d *Decoder) peelTree(root int32, rootEdge int32, boundary bool) {
	d.tree = d.tree[:0]
	d.runtime = d.runtime[:0]

	d.visited[root] = true
	d.visitLog = append(d.visitLog, root)
	vertices := 1
	origDefects := 0
	if d.defect[root] {
		origDefects++
	}
	d.runtime = append(d.runtime, root)
	maxRT := 1
	for len(d.runtime) > 0 {
		v := d.runtime[len(d.runtime)-1]
		d.runtime = d.runtime[:len(d.runtime)-1]
		for s := d.treeAdjHead[v]; s != nilList; s = d.treeAdjNext[s] {
			u := d.treeAdjFar[s]
			if d.visited[u] { // covers the parent and the boundary vertex
				continue
			}
			d.visited[u] = true
			d.visitLog = append(d.visitLog, u)
			vertices++
			if d.defect[u] {
				origDefects++
			}
			d.tree = append(d.tree, treeRec{child: u, parent: v, edge: s >> 1})
			d.runtime = append(d.runtime, u)
			if len(d.runtime) > maxRT {
				maxRT = len(d.runtime)
			}
		}
	}

	// CORR: reverse traversal of the tree-edge stack. A defect on the child
	// side selects the edge into the correction and flips the parent's
	// defect state; defects reaching a boundary-rooted tree's root are
	// flushed through the root edge into the boundary.
	for i := len(d.tree) - 1; i >= 0; i-- {
		r := &d.tree[i]
		if d.defect[r.child] {
			d.defect[r.child] = false
			d.correction = append(d.correction, r.edge)
			d.defect[r.parent] = !d.defect[r.parent]
		}
	}
	if d.defect[root] {
		d.defect[root] = false
		if boundary {
			d.correction = append(d.correction, rootEdge)
		} else {
			// An interior tree must cover an even number of defects; an odd
			// leftover indicates a broken growth invariant.
			panic(fmt.Sprintf("core: interior cluster at vertex %d left an unmatched defect", root))
		}
	}

	if !d.Opts.LeanStats || d.Opts.ClusterStats {
		d.Stats.Clusters = append(d.Stats.Clusters, ClusterStat{
			Vertices:        vertices,
			GrowthSteps:     int(d.steps[d.find(root)]),
			Defects:         origDefects,
			TouchesBoundary: boundary,
		})
	}
	if maxRT > d.Stats.MaxRuntimeStack {
		d.Stats.MaxRuntimeStack = maxRT
	}
	if len(d.tree) > d.Stats.MaxEdgeStack {
		d.Stats.MaxEdgeStack = len(d.tree)
	}
	d.Stats.SupportEdges += len(d.tree)
}
