package core

import (
	"reflect"
	"testing"

	"afs/internal/lattice"
)

// FuzzDecodeArbitraryDefects feeds arbitrary byte strings as defect
// selections and checks the decoder's fundamental contract: it never
// panics, terminates, and its correction reproduces the syndrome exactly.
// The seed corpus runs as part of `go test`; `go test -fuzz=FuzzDecode`
// explores further.
func FuzzDecodeArbitraryDefects(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{255, 254, 253, 0, 0, 1})
	g := lattice.New3D(4, 4)
	dec := NewDecoder(g, Options{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Interpret bytes as vertex picks; dedupe and sort.
		seen := make(map[int32]bool)
		var defects []int32
		for _, b := range raw {
			v := int32(int(b) % g.V)
			if !seen[v] {
				seen[v] = true
				defects = append(defects, v)
			}
		}
		sortInt32(defects)
		corr := dec.Decode(defects)
		got := SyndromeOf(g, corr)
		if len(got) == 0 && len(defects) == 0 {
			return
		}
		if !reflect.DeepEqual(got, defects) {
			t.Fatalf("correction does not reproduce syndrome:\n got  %v\n want %v", got, defects)
		}
	})
}

// FuzzSparseShortcutEquivalence feeds arbitrary defect selections to a
// shortcut-enabled decoder and a full decoder on the same window graph and
// requires identical correction edge sets — the shortcut's core claim.
func FuzzSparseShortcutEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{9, 10})
	f.Add([]byte{3, 60, 61, 200})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	g := lattice.New3DWindow(4, 4)
	full := NewDecoder(g, Options{})
	fast := NewDecoder(g, Options{SparseShortcut: true, LeanStats: true})
	f.Fuzz(func(t *testing.T, raw []byte) {
		seen := make(map[int32]bool)
		var defects []int32
		for _, b := range raw {
			v := int32(int(b) % g.V)
			if !seen[v] {
				seen[v] = true
				defects = append(defects, v)
			}
		}
		sortInt32(defects)
		want := append([]int32(nil), full.Decode(defects)...)
		got := append([]int32(nil), fast.Decode(defects)...)
		sortInt32(want)
		sortInt32(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("defects %v: shortcut corrections %v != full %v", defects, got, want)
		}
	})
}
