package core

import (
	"math/bits"

	"afs/internal/lattice"
	"afs/internal/lut"
	"afs/internal/swar"
)

// LaneTriage is the bit-plane counterpart of Triage: it classifies 64
// trial lanes at once from defect planes (one uint64 per vertex, bit t =
// lane t has a defect there — see noise.PlaneGroup), using the bit-sliced
// saturating counters of internal/swar instead of per-trial index lists.
// The output is a set of lane masks the bit-plane Monte-Carlo kernel
// resolves without ever materializing a defect list for the fast-path
// lanes:
//
//   - W0 (weight 0): identity correction, parity 0 — exactly Triage's W0.
//   - W1 (weight 1): NorthParity carries the lane's side bit (parity 1 iff
//     the lone defect's strictly nearest boundary is north); TieAny flags
//     lanes whose defect sits on a SideTie vertex, which must punt exactly
//     as Triage.Classify does.
//   - Matched: the lane's distance-1 graph on its defects is a perfect
//     matching — every defect has EXACTLY one defect at L1 distance 1.
//     Parity 0 for any weight >= 2 (see below). Matched ∩ W2 is the
//     adjacent defect pair of a single interior fault (Triage's W2
//     interior rule at D == 1); Matched ∩ Heavy is the all-pairs
//     decomposition of scattered interior faults.
//   - Chain4: like Matched except exactly two defects have adjacency
//     degree 2 and those two are adjacent to each other — the distance-1
//     graph is a perfect matching plus ONE 4-defect path (the signature
//     of two faults landing edge-adjacent, the dominant conflicted shape
//     at deployment error rates). Parity 0 (see below).
//   - SinglesOK: the lane decomposes into adjacent pairs plus certified
//     isolated defects — strict-side boundary singles at fault distance
//     B <= 2, and interior duos (two isolated defects at L1 distance 2,
//     each the other's unique such partner, both at B >= 2) — with every
//     isolation certificate checked against the ring tables. Parity is
//     SingleParity's bit — the XOR of the certified singles' north-side
//     bits; pairs and duos contribute parity 0.
//   - Everything else (conflicted adjacency, deep or crowded singles,
//     W2 pairs in the punt band, W1 ties) — gathered into index lists and
//     routed through the scalar Triage / full-decoder path.
//
// Soundness of the Matched rule. "Exactly one" makes the distance-1 graph
// on the lane's defects a perfect matching: my unique neighbor's unique
// neighbor is me (on this lattice L1 distance 1 between real vertices
// always means exactly one shared edge). This is precisely
// Triage.classifyMulti's conflict-free case with no leftover singles —
// every defect pairs with its unique adjacent partner (radius 0, parity 0
// per pair: the shared edge beats any alternative, and any two minimal
// corrections differ by interior cycles), and the cross-group isolation
// invariant L1(i,j) > R(i)+R(j)+1 = 1 holds automatically because a
// cross-pair distance of 1 would raise someone's degree above one. Total
// parity is therefore 0 for every decoder the triage layer is sound for,
// regardless of defect count — Matched lanes with more than
// maxTriageDefects defects are resolved here even though the scalar walk
// would have punted them to the full decoder (same failure outcome, less
// work; the lane-classification tests check both facts).
//
// Soundness of the Chain4 rule. Degrees are over the lane's distance-1
// defect graph. With no isolated defects, no degree >= 3, exactly two
// degree-2 defects, and those two adjacent, the components are forced:
// two adjacent degree-2 defects share a component whose shape around them
// is x–B–C–y with x, y at degree 1 (a fifth member would push a degree
// past 2), i.e. exactly one 4-path, and every other component is a domino
// (all remaining defects have degree 1; two 3-paths or longer chains
// would contribute the wrong degree-2 census). A 4-path A–B–C–D has a
// unique interior minimal correction — the matching {AB, CD} at weight 2;
// {BC} leaves A, D unmatched, and any correction touching a boundary
// costs at least 1 + B(A) + B(D) >= 3 — so every decoder resolves it
// interior: parity 0. Union-Find concurs: all gaps are distance 1, so the
// component merges into one even cluster in growth round one having
// absorbed nothing beyond its defects (radius 0), and peeling pairs the
// four defects through interior support edges. Cross-component isolation
// is automatic exactly as for Matched — distance 1 between components
// would change a degree. Total parity is 0 regardless of defect count,
// so (as with Matched) lanes beyond maxTriageDefects resolve here even
// though the scalar walk would punt them.
//
// Soundness of the SinglesOK rule. Every isolated defect in a qualifying
// lane is certified as one of classifyMulti's closed-form groups, with the
// sparse isolation invariant L1(i,j) > R(i)+R(j)+1 checked per certificate:
//
//   - Boundary single at B <= 2 on a strict side: influence radius B,
//     parity = its side bit. Against pair members (radius 0) it needs
//     L1 > B+1, established by an empty non-isolated distance-2 ring (and,
//     for B == 2, distance-3 ring); against other isolated defects the
//     exact pairwise check below applies. A single must also have NO
//     isolated defect at distance 2 — that would be a duo candidate, and
//     the scalar decomposition would never classify it a lone single.
//
//   - Interior duo: two isolated defects at L1 distance exactly 2, each
//     the other's UNIQUE distance-2 isolated partner in that lane (the
//     ring-2 hit counter saturates at two), both at B >= 2 — exactly
//     classifyMulti's D == 2 duo rule (merge at round 2 beats any boundary
//     resolution since 2 < 2*min(B); radius 1, parity 0). Against pair
//     members a duo member needs L1 > 2, again from the empty non-isolated
//     distance-2 ring. A distance-2 isolated pair that fails the duo
//     certificate (a second candidate, or a B < 2 member) marks both
//     members bad — the scalar walk punts those whole, so the lane must
//     too.
//
//   - Pairwise across isolated defects, the conservative bound R = B is
//     used: any two isolated defects at L1 <= B(i)+B(j)+1 (other than a
//     certified duo pair) mark both bad. For singles this is the exact
//     scalar invariant; for duo members (true radius 1) it punts slightly
//     more than the scalar walk accepts, which is sound — bad defects
//     route the lane to the scalar path.
//
// Pair-vs-pair isolation (L1 > 1) is automatic from degree-1 adjacency.
// Singles deeper than B == 2 are excluded: their independence radius
// exceeds what the distance-3 ring can certify, so those lanes punt to
// the scalar path (which re-derives the full invariant from coordinates).
// Every certificate here is strictly contained in what the scalar
// decomposition accepts, so resolved lanes agree with it bit for bit
// (test-enforced).
type LaneTriage struct {
	g    *lattice.Graph
	bd   *lut.Boundary
	side []uint8

	// nbr6 is the fixed-width coordinate-neighbor table: entries
	// [6v, 6v+6) are v's L1-distance-1 real neighbors, padded with the
	// sentinel index g.V whose plane word is always zero (PlaneGroup
	// guarantees the slot), so the per-vertex neighbor fold is six
	// unconditional loads with no length dispatch.
	nbr6 []int32
	// interior marks vertices away from every lattice face (bit v of word
	// v>>6): all six neighbors exist at the fixed layout strides ±1, ±sr,
	// ±st, so the fold skips the nbr6 line entirely for them.
	interior []uint64
	sr, st   int32
	// ring2/ring2Off is CSR over vertices: the real vertices at L1
	// distance exactly 2 (up to 18), consulted only for isolated defects.
	ring2    []int32
	ring2Off []int32
	// ring3/ring3Off: the vertices at L1 distance exactly 3 (up to 38),
	// consulted only for B == 2 single certificates.
	ring3    []int32
	ring3Off []int32
	// northBits/tieBits are per-vertex side bitmaps (bit v of word v>>6),
	// the branchless form of the side-switch on the hot path.
	northBits []uint64
	tieBits   []uint64

	// Per-Classify scratch: isolated-defect positions and lane masks for
	// the singles post-pass, and the degree-2 analog for the 4-path
	// post-pass. Preallocated by NewLaneTriage and truncated (never
	// reallocated) between calls so heavy batches see no regrowth churn.
	isoV []int32
	isoM []uint64
	d2V  []int32
	d2M  []uint64
	// isoPlane[v] = lanes in which v holds an ISOLATED defect, populated
	// over the touched isolated vertices for the post-pass (so ring scans
	// can split hits into isolated vs matched) and re-zeroed before
	// returning. sOK/duoC/duoP are per-iso-entry lane masks: certified
	// single, duo candidate, and certified duo member.
	isoPlane []uint64
	sOK      []uint64
	duoC     []uint64
	duoP     []uint64

	// fb/upNbr/upEdge serve ClassifySparse (the streaming fast set).
	// fb[v] is FirstBoundaryEdge(v) when v sits at boundary distance 1,
	// else -1 — the spSingle emit edge. upNbr/upEdge hold, per vertex, the
	// three id-increasing lattice neighbors (+1 column, +d row, +d(d-1)
	// layer) and the connecting edge, sentinel-padded (g.V / -1) at the
	// faces — the spPair emit edge, looked up from the smaller member so
	// each pair emits exactly once.
	fb     []int32
	upNbr  []int32
	upEdge []int32

	// DefV/DefW are the compact defect list of the most recent Classify or
	// ClassifySparse call: the touched vertices with a nonzero plane word,
	// in increasing vertex order, paired with those words. The kernel's
	// heavy-tail gather (GatherLanes) iterates this instead of re-scanning
	// the touched bitmap. Valid until the next classification call.
	DefV []int32
	DefW []uint64
}

// LaneClasses is LaneTriage.Classify's output: per-lane class masks (all
// confined to the group's LaneMask) plus the plane-level aggregates the
// kernel folds into parities and tallies.
type LaneClasses struct {
	W0, W1, W2 uint64 // syndrome weight exactly 0 / 1 / 2
	Heavy      uint64 // syndrome weight >= 3
	// Matched: every defect has exactly one defect at L1 distance 1 (a
	// perfect matching; vacuously true for W0 lanes — mask with W2|Heavy
	// before resolving). Parity 0.
	Matched uint64
	// Chain4: adjacent pairs plus exactly one 4-defect path (see the type
	// doc). Parity 0. Disjoint from Matched (it requires two degree-2
	// defects) and from SinglesOK (no isolated defects allowed).
	Chain4 uint64
	// SinglesOK: adjacent pairs plus >= 1 certified isolated defects —
	// B <= 2 boundary singles and distance-2 interior duos (see the type
	// doc); parity = SingleParity. Disjoint from Matched (it requires at
	// least one isolated defect).
	SinglesOK uint64
	// NorthParity bit t = XOR over lane t's defects of "strictly nearest
	// boundary is north". For W1 lanes this is the closed-form parity.
	NorthParity uint64
	// SingleParity bit t = XOR over lane t's certified singles of their
	// north-side bits (duos contribute 0); meaningful only on SinglesOK
	// lanes (masked so).
	SingleParity uint64
	// TieAny bit t = lane t contains a defect on a SideTie vertex. W1
	// lanes in TieAny must punt (closed 3-D accuracy graphs never tie;
	// window graphs do near the temporal boundary).
	TieAny uint64
	// Defects is the total defect count across all lanes (the kernel's
	// MeanDefects tally).
	Defects int
}

// NewLaneTriage builds the lane classifier for g, sharing the cached
// boundary tables.
func NewLaneTriage(g *lattice.Graph) *LaneTriage {
	bd := lut.BoundaryFor(g)
	lt := &LaneTriage{g: g, bd: bd, side: bd.Side}
	words := (g.V + 63) / 64
	lt.northBits = make([]uint64, words)
	lt.tieBits = make([]uint64, words)
	lt.nbr6 = make([]int32, 6*g.V)
	lt.interior = make([]uint64, words)
	lt.fb = make([]int32, g.V)
	lt.upNbr = make([]int32, 3*g.V)
	lt.upEdge = make([]int32, 3*g.V)
	lt.ring2Off = make([]int32, g.V+1)
	lt.ring3Off = make([]int32, g.V+1)
	d := g.Distance
	lt.sr = int32(d)
	lt.st = int32(d * (d - 1))
	inBounds := func(r, c, t int) bool {
		return r >= 0 && r <= d-2 && c >= 0 && c <= d-1 && t >= 0 && t < g.Rounds
	}
	for v := int32(0); v < int32(g.V); v++ {
		switch bd.Side[v] {
		case lut.SideNorth:
			lt.northBits[v>>6] |= 1 << (uint(v) & 63)
		case lut.SideTie:
			lt.tieBits[v>>6] |= 1 << (uint(v) & 63)
		}
		r, c, t := g.VertexCoords(v)
		if r > 0 && r < d-2 && c > 0 && c < d-1 && t > 0 && t < g.Rounds-1 {
			lt.interior[v>>6] |= 1 << (uint(v) & 63)
		}
		n := 0
		add := func(u int32) {
			lt.nbr6[6*int(v)+n] = u
			n++
		}
		if t > 0 {
			add(g.VertexID(r, c, t-1))
		}
		if r > 0 {
			add(g.VertexID(r-1, c, t))
		}
		if c > 0 {
			add(g.VertexID(r, c-1, t))
		}
		if c < d-1 {
			add(g.VertexID(r, c+1, t))
		}
		if r < d-2 {
			add(g.VertexID(r+1, c, t))
		}
		if t < g.Rounds-1 {
			add(g.VertexID(r, c, t+1))
		}
		for ; n < 6; n++ {
			lt.nbr6[6*int(v)+n] = int32(g.V) // always-zero sentinel plane
		}
		lt.fb[v] = -1
		if g.PackedCoords(v)>>48 == 1 {
			lt.fb[v] = g.FirstBoundaryEdge(v)
		}
		for k := 0; k < 3; k++ {
			lt.upNbr[3*int(v)+k] = int32(g.V)
			lt.upEdge[3*int(v)+k] = -1
		}
		if c < d-1 {
			u := g.VertexID(r, c+1, t)
			lt.upNbr[3*int(v)] = u
			lt.upEdge[3*int(v)] = g.EdgeBetween(v, u)
		}
		if r < d-2 {
			u := g.VertexID(r+1, c, t)
			lt.upNbr[3*int(v)+1] = u
			lt.upEdge[3*int(v)+1] = g.EdgeBetween(v, u)
		}
		if t < g.Rounds-1 {
			u := g.VertexID(r, c, t+1)
			lt.upNbr[3*int(v)+2] = u
			lt.upEdge[3*int(v)+2] = g.EdgeBetween(v, u)
		}
		for dr := -3; dr <= 3; dr++ {
			for dc := -3; dc <= 3; dc++ {
				for dt := -3; dt <= 3; dt++ {
					if !inBounds(r+dr, c+dc, t+dt) {
						continue
					}
					switch abs32i(dr) + abs32i(dc) + abs32i(dt) {
					case 2:
						lt.ring2 = append(lt.ring2, g.VertexID(r+dr, c+dc, t+dt))
					case 3:
						lt.ring3 = append(lt.ring3, g.VertexID(r+dr, c+dc, t+dt))
					}
				}
			}
		}
		lt.ring2Off[v+1] = int32(len(lt.ring2))
		lt.ring3Off[v+1] = int32(len(lt.ring3))
	}
	// Preallocate the per-Classify scratch so steady-state calls never
	// grow a slice: the iso/d2/defect lists are bounded by the touched
	// vertex count, for which 1/4 of the lattice is far beyond any
	// realistic batch; truncation keeps whatever larger capacity an
	// outlier forced.
	pre := g.V/4 + 16
	lt.isoV = make([]int32, 0, pre)
	lt.isoM = make([]uint64, 0, pre)
	lt.d2V = make([]int32, 0, pre)
	lt.d2M = make([]uint64, 0, pre)
	lt.DefV = make([]int32, 0, pre)
	lt.DefW = make([]uint64, 0, pre)
	lt.sOK = make([]uint64, 0, pre)
	lt.duoC = make([]uint64, 0, pre)
	lt.duoP = make([]uint64, 0, pre)
	lt.isoPlane = make([]uint64, g.V+1)
	return lt
}

func abs32i(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Classify runs the bitwise weight classification over a group's defect
// planes. planes[v] bit t = lane t has a defect at v; it must include the
// always-zero sentinel slot at index g.V (PlaneGroup provides it — the
// padded neighbor table loads through it). touched is the vertex bitmap
// of possibly-nonzero plane words (untouched vertices MUST be zero);
// laneMask confines every returned mask to the live lanes.
//
// Cost: one fused pass over the touched vertices computing the
// saturating weight counters, parity planes, and the bit-parallel
// unique-adjacent-pair matcher, plus a short post-pass over the isolated
// defects (rare) certifying the singles decomposition.
func (lt *LaneTriage) Classify(planes []uint64, touched []uint64, laneMask uint64) LaneClasses {
	var cnt, cnt2 swar.LaneCounts
	var north, tie, conflict, deg3, isoAny, s0, sOv uint64
	defects := 0
	lt.isoV = lt.isoV[:0]
	lt.isoM = lt.isoM[:0]
	lt.d2V = lt.d2V[:0]
	lt.d2M = lt.d2M[:0]
	lt.DefV = lt.DefV[:0]
	lt.DefW = lt.DefW[:0]
	nbr6 := lt.nbr6
	sr, st := int(lt.sr), int(lt.st)
	for wi, tw := range touched {
		base := wi << 6
		nb := lt.northBits[wi]
		tb := lt.tieBits[wi]
		in := lt.interior[wi]
		for tw != 0 {
			b := bits.TrailingZeros64(tw)
			tw &^= 1 << uint(b)
			v := base + b
			w := planes[v]
			if w == 0 {
				continue // toggles cancelled here
			}
			lt.DefV = append(lt.DefV, int32(v))
			lt.DefW = append(lt.DefW, w)
			cnt.Add(w)
			defects += bits.OnesCount64(w)
			north ^= w & -(nb >> uint(b) & 1)
			if tb != 0 {
				tie |= w & -(tb >> uint(b) & 1)
			}
			// Defect-neighbor count per lane, three-level saturating fold:
			// n0 = count bit 0, n1 = count reached 2, n2 = count reached 3
			// (the Chain4 class needs degree-2-exact). Interior vertices
			// (the common case away from the faces) read their six
			// neighbors at the fixed layout strides; face vertices go
			// through the sentinel-padded nbr6 table.
			var n0, n1, n2, p uint64
			if in>>uint(b)&1 != 0 {
				n0 = planes[v-st]
				p = planes[v-sr]
				n1 = n0 & p
				n0 ^= p
				p = planes[v-1]
				n2 |= n1 & p
				n1 |= n0 & p
				n0 ^= p
				p = planes[v+1]
				n2 |= n1 & p
				n1 |= n0 & p
				n0 ^= p
				p = planes[v+sr]
				n2 |= n1 & p
				n1 |= n0 & p
				n0 ^= p
				p = planes[v+st]
				n2 |= n1 & p
				n1 |= n0 & p
				n0 ^= p
			} else {
				o := 6 * v
				n0 = planes[nbr6[o]]
				p = planes[nbr6[o+1]]
				n1 = n0 & p
				n0 ^= p
				p = planes[nbr6[o+2]]
				n2 |= n1 & p
				n1 |= n0 & p
				n0 ^= p
				p = planes[nbr6[o+3]]
				n2 |= n1 & p
				n1 |= n0 & p
				n0 ^= p
				p = planes[nbr6[o+4]]
				n2 |= n1 & p
				n1 |= n0 & p
				n0 ^= p
				p = planes[nbr6[o+5]]
				n2 |= n1 & p
				n1 |= n0 & p
				n0 ^= p
			}
			conflict |= w & n1
			deg3 |= w & n2
			if d2 := w & n1 &^ n2; d2 != 0 {
				cnt2.Add(d2)
				lt.d2V = append(lt.d2V, int32(v))
				lt.d2M = append(lt.d2M, d2)
			}
			if is := w &^ (n0 | n1); is != 0 {
				isoAny |= is
				sOv |= s0 & is
				s0 ^= is
				lt.isoV = append(lt.isoV, int32(v))
				lt.isoM = append(lt.isoM, is)
			}
		}
	}
	cls := LaneClasses{
		W0:          cnt.Exactly0() & laneMask,
		W1:          cnt.Exactly1() & laneMask,
		W2:          cnt.Exactly2() & laneMask,
		Heavy:       cnt.AtLeast3() & laneMask,
		Matched:     ^(conflict | isoAny) & laneMask,
		NorthParity: north & laneMask,
		TieAny:      tie & laneMask,
		Defects:     defects,
	}
	// 4-path post-pass: a lane qualifies when it has exactly two degree-2
	// defects (cnt2), those two are lattice-adjacent, no defect reached
	// degree 3, and no defect is isolated.
	if cand := cnt2.Exactly2() &^ deg3 &^ isoAny & laneMask; cand != 0 && len(lt.d2V) >= 2 {
		var adjPair uint64
		for i := 1; i < len(lt.d2V); i++ {
			mi := lt.d2M[i]
			pi := lt.g.PackedCoords(lt.d2V[i])
			for j := 0; j < i; j++ {
				both := mi & lt.d2M[j]
				if both == 0 {
					continue
				}
				pj := lt.g.PackedCoords(lt.d2V[j])
				d := abs32(int32(pi&0xffff)-int32(pj&0xffff)) +
					abs32(int32(pi>>16&0xffff)-int32(pj>>16&0xffff)) +
					abs32(int32(pi>>32&0xffff)-int32(pj>>32&0xffff))
				if d == 1 {
					adjPair |= both
				}
			}
		}
		cls.Chain4 = cand & adjPair
	}
	if isoAny&^conflict == 0 {
		return cls
	}
	// Isolated-defect post-pass: certify each isolated defect as a B <= 2
	// strict-side single or a distance-2 interior duo member (see the type
	// doc). isoPlane lets the ring scans split hits into isolated defects
	// (potential duo partners / pairwise-checked peers) and matched ones
	// (hard radius obstructions).
	iso := lt.isoV
	lt.sOK, lt.duoC, lt.duoP = lt.sOK[:0], lt.duoC[:0], lt.duoP[:0]
	for i, v := range iso {
		lt.isoPlane[v] = lt.isoM[i]
	}
	for i, v := range iso {
		m := lt.isoM[i]
		bv := int32(lt.g.PackedCoords(v) >> 48)
		// h1/h2: lanes with >= 1 / >= 2 isolated ring-2 hits; ni2: lanes
		// with a matched (non-isolated) defect at distance 2.
		var h1, h2, ni2 uint64
		for _, u := range lt.ring2[lt.ring2Off[v]:lt.ring2Off[v+1]] {
			hit := m & lt.isoPlane[u]
			h2 |= h1 & hit
			h1 |= hit
			ni2 |= m & (planes[u] &^ lt.isoPlane[u])
		}
		var sOK, duoC uint64
		if lt.side[v] != lut.SideTie {
			if bv >= 2 {
				duoC = m & h1 &^ h2 &^ ni2
			}
			if bv <= 2 {
				sOK = m &^ h1 &^ ni2
				if bv == 2 && sOK != 0 {
					// Radius-2 single vs pair members: L1 > 3.
					var ni3 uint64
					for _, u := range lt.ring3[lt.ring3Off[v]:lt.ring3Off[v+1]] {
						ni3 |= planes[u] &^ lt.isoPlane[u]
					}
					sOK &^= ni3 & m
				}
			}
		}
		lt.sOK = append(lt.sOK, sOK)
		lt.duoC = append(lt.duoC, duoC)
		lt.duoP = append(lt.duoP, 0)
	}
	// Pairwise pass over isolated defects sharing a lane: distance-2
	// candidate pairs either certify as a duo (both sides unique, B >= 2)
	// or kill both; anything else within the conservative R = B invariant
	// slack kills both.
	for i := 1; i < len(iso); i++ {
		mi := lt.isoM[i]
		pi := lt.g.PackedCoords(iso[i])
		bi := int32(pi >> 48)
		for j := 0; j < i; j++ {
			both := mi & lt.isoM[j]
			if both == 0 {
				continue
			}
			pj := lt.g.PackedCoords(iso[j])
			d := abs32(int32(pi&0xffff)-int32(pj&0xffff)) +
				abs32(int32(pi>>16&0xffff)-int32(pj>>16&0xffff)) +
				abs32(int32(pi>>32&0xffff)-int32(pj>>32&0xffff))
			if d == 2 {
				duo := both & lt.duoC[i] & lt.duoC[j]
				lt.duoP[i] |= duo
				lt.duoP[j] |= duo
			} else if d <= bi+int32(pj>>48)+1 {
				lt.sOK[i] &^= both
				lt.sOK[j] &^= both
				lt.duoC[i] &^= both
				lt.duoC[j] &^= both
				lt.duoP[i] &^= both
				lt.duoP[j] &^= both
			}
		}
	}
	// A lane qualifies iff every isolated defect in it certified; the
	// certified singles' north bits form the lane parity (duos are 0).
	var badS, singleNorth uint64
	for i, v := range iso {
		badS |= lt.isoM[i] &^ (lt.sOK[i] | lt.duoP[i])
		if lt.side[v] == lut.SideNorth {
			singleNorth ^= lt.sOK[i]
		}
		lt.isoPlane[v] = 0
	}
	cls.SinglesOK = (s0 | sOv) &^ conflict &^ badS & laneMask
	cls.SingleParity = singleNorth & cls.SinglesOK
	return cls
}
