package core

import "math/bits"

// ClassifySparse is LaneTriage's streaming counterpart of Classify: it
// classifies up to 64 same-shape stream windows (one per lane) against the
// *sparse shortcut's* fast set rather than the Monte-Carlo kernel's
// failure-equivalent classes. The distinction matters because a stream
// window must reproduce decodeSparse's committed correction EDGES bit for
// bit, not merely its failure parity — so the fast set here is exactly the
// subset of syndromes decodeSparse resolves with every group fast:
//
//   - adjacent defect pairs (spPair), emitting the unique connecting edge;
//   - isolated defects at boundary distance 1 with a boundary edge
//     (spSingle), emitting lattice.FirstBoundaryEdge.
//
// A lane certifies fast iff (a) no defect has adjacency degree >= 2 — that
// kills every component of size >= 3, since any such component has a
// member of degree >= 2 — and (b) every isolated (degree-0) defect v has
// fb[v] != -1, no defect of any kind at L1 distance exactly 2 (ring-2 scan
// over the planes), and no isolated defect at L1 distance exactly 3
// (ring-3 scan over the isolated-defect plane). Those ring conditions are
// precisely decodeSparse's terminal isolation invariant for an all-fast
// partition: a single (radius 1) conflicts with a pair member (radius 0)
// within distance 1+0+1 = 2 and with another single within 1+1+1 = 3,
// while pair members (radius 0) conflict only at distance <= 1, which
// adjacency degree already rules out. Distances 0 and 1 to an isolated
// defect are impossible by isolation, so the two ring scans are the whole
// invariant.
//
// The certificate needs only soundness, never completeness: a gathered
// lane runs the identical scalar decode, so conservatively routing any
// ambiguous lane to the gather side can never change a correction.
//
// For each fast lane the emit list is rebuilt with decodeSparse's exact
// emission order: one edge per group, ascending by the group's root defect
// — the smallest vertex id among its members (sparseRegroup unions j into
// i for i < j). The single pass over the compact defect list in ascending
// vertex order reproduces that: a pair emits at its smaller member via the
// id-increasing neighbor table (at most one hit per lane — degree <= 1),
// and a certified single emits its boundary edge at its own position. All
// fast edges are emitted regardless of the caller's commit horizon; the
// stream's commit loop filters Round >= commit, which keeps exactly the
// edges decodeSparse's horizon skipping would keep (a pair's edge round
// equals its reach; a single's edge round t is skipped by decodeSparse
// only when t - 1 >= horizon, and the t == horizon edge it does emit is
// dropped by the same round filter).
//
// planes/touched follow Classify's contract (sentinel slot at g.V, touched
// bits only over possibly-nonzero words); laneMask confines the result and
// the emit rebuild to the live lanes. Returns the fast lane mask; DefV and
// DefW are left describing this call's defect list for GatherLanes.
func (lt *LaneTriage) ClassifySparse(planes, touched []uint64, laneMask uint64, emits *[64][]int32) uint64 {
	var conflict, isoAny uint64
	lt.isoV = lt.isoV[:0]
	lt.isoM = lt.isoM[:0]
	lt.DefV = lt.DefV[:0]
	lt.DefW = lt.DefW[:0]
	nbr6 := lt.nbr6
	sr, st := int(lt.sr), int(lt.st)
	for wi, tw := range touched {
		base := wi << 6
		in := lt.interior[wi]
		for tw != 0 {
			b := bits.TrailingZeros64(tw)
			tw &^= 1 << uint(b)
			v := base + b
			w := planes[v]
			if w == 0 {
				continue
			}
			lt.DefV = append(lt.DefV, int32(v))
			lt.DefW = append(lt.DefW, w)
			// Two-level saturating neighbor fold: n1 = "degree >= 2",
			// n0^n1-free parity distinguishes degree 0 (isolated).
			var n0, n1, p uint64
			if in>>uint(b)&1 != 0 {
				n0 = planes[v-st]
				p = planes[v-sr]
				n1 = n0 & p
				n0 ^= p
				p = planes[v-1]
				n1 |= n0 & p
				n0 ^= p
				p = planes[v+1]
				n1 |= n0 & p
				n0 ^= p
				p = planes[v+sr]
				n1 |= n0 & p
				n0 ^= p
				p = planes[v+st]
				n1 |= n0 & p
				n0 ^= p
			} else {
				o := 6 * v
				n0 = planes[nbr6[o]]
				p = planes[nbr6[o+1]]
				n1 = n0 & p
				n0 ^= p
				p = planes[nbr6[o+2]]
				n1 |= n0 & p
				n0 ^= p
				p = planes[nbr6[o+3]]
				n1 |= n0 & p
				n0 ^= p
				p = planes[nbr6[o+4]]
				n1 |= n0 & p
				n0 ^= p
				p = planes[nbr6[o+5]]
				n1 |= n0 & p
				n0 ^= p
			}
			conflict |= w & n1
			if is := w &^ (n0 | n1); is != 0 {
				isoAny |= is
				lt.isoV = append(lt.isoV, int32(v))
				lt.isoM = append(lt.isoM, is)
			}
		}
	}
	bad := conflict
	if isoAny&^bad != 0 {
		iso := lt.isoV
		for i, v := range iso {
			lt.isoPlane[v] = lt.isoM[i]
		}
		for i, v := range iso {
			m := lt.isoM[i]
			if lt.fb[v] < 0 {
				// Not a boundary-distance-1 vertex: no spSingle shape.
				bad |= m
				continue
			}
			var hit2 uint64
			for _, u := range lt.ring2[lt.ring2Off[v]:lt.ring2Off[v+1]] {
				hit2 |= planes[u]
			}
			var hit3 uint64
			for _, u := range lt.ring3[lt.ring3Off[v]:lt.ring3Off[v+1]] {
				hit3 |= lt.isoPlane[u]
			}
			bad |= m & (hit2 | hit3)
		}
		for _, v := range iso {
			lt.isoPlane[v] = 0
		}
	}
	fast := laneMask &^ bad
	if fast == 0 {
		return 0
	}
	for fw := fast; fw != 0; {
		lane := bits.TrailingZeros64(fw)
		fw &^= 1 << uint(lane)
		emits[lane] = emits[lane][:0]
	}
	ii := 0
	for di, v := range lt.DefV {
		w := lt.DefW[di] & fast
		var iso uint64
		if ii < len(lt.isoV) && lt.isoV[ii] == v {
			iso = lt.isoM[ii] & fast
			ii++
		}
		if w == 0 {
			continue
		}
		o := 3 * int(v)
		for k := 0; k < 3; k++ {
			e := lt.upEdge[o+k]
			if e < 0 {
				continue
			}
			for m := w & planes[lt.upNbr[o+k]]; m != 0; {
				lane := bits.TrailingZeros64(m)
				m &^= 1 << uint(lane)
				emits[lane] = append(emits[lane], e)
			}
		}
		if iso != 0 {
			e := lt.fb[v]
			for m := iso; m != 0; {
				lane := bits.TrailingZeros64(m)
				m &^= 1 << uint(lane)
				emits[lane] = append(emits[lane], e)
			}
		}
	}
	return fast
}

// GatherLanes extracts the per-lane defect index lists for the lanes in
// gather from the most recent classification's compact defect list. Vertex
// order ascends, so every list arrives sorted — exactly the order the
// scalar decode paths expect. Lists for lanes outside gather are left
// untouched; gathered lanes' lists are truncated and refilled in place, so
// steady-state callers allocate nothing once the lists reach their
// high-water capacity. Shared by the Monte-Carlo bit-plane kernel and the
// streaming lane batcher.
func (lt *LaneTriage) GatherLanes(gather uint64, lists *[64][]int32) {
	for gw := gather; gw != 0; {
		lane := bits.TrailingZeros64(gw)
		gw &^= 1 << uint(lane)
		lists[lane] = lists[lane][:0]
	}
	dw := lt.DefW
	for di, v := range lt.DefV {
		for lw := dw[di] & gather; lw != 0; {
			lane := bits.TrailingZeros64(lw)
			lw &^= 1 << uint(lane)
			lists[lane] = append(lists[lane], v)
		}
	}
}

// ClearPlanes zeroes the defect planes and touched bitmap populated by a
// scatter-only fill (every touched vertex has a nonzero plane word — true
// when callers only OR bits in, never toggle), using the most recent
// classification's compact defect list so the cost is O(defects) instead
// of O(V).
func (lt *LaneTriage) ClearPlanes(planes, touched []uint64) {
	for _, v := range lt.DefV {
		planes[v] = 0
		touched[v>>6] = 0
	}
}
