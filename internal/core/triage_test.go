// Exhaustive soundness tests for the weight-class triage layer: every
// weight-1 and weight-2 defect placement on small graphs, checked against
// every decoder in the repository. This is an external test package so it
// can pull in the decoders that themselves import core.
package core_test

import (
	"math/rand/v2"
	"slices"
	"testing"

	"afs/internal/core"
	"afs/internal/hierarchical"
	"afs/internal/lattice"
	"afs/internal/lut"
	"afs/internal/mwpm"
)

// cutParity counts north-cut edges (spatial edges on vertical k=0 qubits)
// mod 2 — the logical-failure contribution of a correction.
func cutParity(g *lattice.Graph, edges []int32) bool {
	p := false
	for _, e := range edges {
		ed := &g.Edges[e]
		if ed.Kind == lattice.Spatial && ed.Qubit < int32(g.Distance) {
			p = !p
		}
	}
	return p
}

// checkSyndrome verifies that corr's syndrome is exactly defects.
func checkSyndrome(t *testing.T, g *lattice.Graph, corr, defects []int32) {
	t.Helper()
	par := make(map[int32]int)
	for _, e := range corr {
		ed := &g.Edges[e]
		if !g.IsBoundary(ed.U) {
			par[ed.U] ^= 1
		}
		if !g.IsBoundary(ed.V) {
			par[ed.V] ^= 1
		}
	}
	for _, v := range defects {
		par[v] ^= 1
	}
	for v, p := range par {
		if p != 0 {
			t.Fatalf("correction syndrome mismatch at vertex %d (defects %v, corr %v)", v, defects, corr)
		}
	}
}

type namedDecoder struct {
	name   string
	decode func([]int32) []int32
}

// decodersFor builds every decoder variant in the repo that accepts g.
func decodersFor(g *lattice.Graph) []namedDecoder {
	out := []namedDecoder{
		{"uf", core.NewDecoder(g, core.Options{}).Decode},
		{"uf-lean", core.NewDecoder(g, core.Options{LeanStats: true}).Decode},
		{"uf-sparse", core.NewDecoder(g, core.Options{LeanStats: true, SparseShortcut: true}).Decode},
		{"mwpm", mwpm.NewDecoder(g).Decode},
		{"hierarchical", hierarchical.New(g, core.NewDecoder(g, core.Options{})).Decode},
	}
	if d, err := lut.New(g); err == nil {
		out = append(out, namedDecoder{"lut", d.Decode})
	}
	return out
}

func triageGraphs() []*lattice.Graph {
	return []*lattice.Graph{
		lattice.New2D(3), lattice.New2D(5),
		lattice.New3D(3, 3), lattice.New3D(5, 5),
		lattice.New3DWindow(3, 3), lattice.New3DWindow(5, 5),
	}
}

// TestTriageExhaustiveWeightLE2 runs triage on every weight-1 and weight-2
// placement and requires that (a) a materialized triage correction is valid
// (right syndrome) with cut parity matching Classify, and (b) every decoder
// in the repo produces a correction in the same homology class — the
// failure statistic triage substitutes for.
func TestTriageExhaustiveWeightLE2(t *testing.T) {
	for _, g := range triageGraphs() {
		tri := core.NewTriage(g)
		decs := decodersFor(g)
		classified, punted := 0, 0
		check := func(defects []int32) {
			corr, class, parity, ok := tri.Decode(defects)
			cl2, par2, ok2 := tri.Classify(defects)
			if cl2 != class || par2 != parity || ok2 != ok {
				t.Fatalf("%v: Classify/Decode disagree on %v", g, defects)
			}
			if !ok {
				punted++
				if class != core.TriageFull {
					t.Fatalf("%v: punt with class %v on %v", g, class, defects)
				}
				return
			}
			classified++
			if want := core.TriageClass(len(defects)) + core.TriageW0; class != want {
				t.Fatalf("%v: weight-%d syndrome %v classified %v", g, len(defects), defects, class)
			}
			checkSyndrome(t, g, corr, defects)
			if cutParity(g, corr) != parity {
				t.Fatalf("%v: triage corr parity != Classify parity on %v", g, defects)
			}
			for _, dec := range decs {
				got := dec.decode(defects)
				checkSyndrome(t, g, got, defects)
				if cutParity(g, got) != parity {
					t.Fatalf("%v: %s parity %v != triage parity %v on %v (corr %v)",
						g, dec.name, !parity, parity, defects, got)
				}
			}
		}
		check(nil)
		for u := int32(0); u < int32(g.V); u++ {
			check([]int32{u})
		}
		for u := int32(0); u < int32(g.V); u++ {
			for v := u + 1; v < int32(g.V); v++ {
				check([]int32{u, v})
			}
		}
		if classified == 0 {
			t.Fatalf("%v: triage classified nothing", g)
		}
		// Closed odd-d graphs must never punt a weight-1 syndrome.
		if !g.TimeBoundary && punted == 0 && g.V > 6 {
			// Weight-2 punts exist on any graph big enough to have the
			// ambiguous band; d=3's 2D graph is too small to require any.
			t.Logf("%v: no punts (all weight<=2 in closed form)", g)
		}
	}
}

// TestTriageMultiRandomSyndromes drives ClassifySyndrome — the weight >= 3
// pair/single decomposition — with two generators: fault-sampled syndromes
// (XOR of random edge sets, matching the structure the noise model
// produces) and adversarial uniform-random vertex sets. Wherever the
// decomposition claims a closed form, every decoder in the repo must land
// in the same homology class.
func TestTriageMultiRandomSyndromes(t *testing.T) {
	for _, g := range triageGraphs() {
		tri := core.NewTriage(g)
		decs := decodersFor(g)
		rng := rand.New(rand.NewPCG(7, uint64(g.V)))
		classified := 0
		check := func(defects []int32) {
			class, parity, ok := tri.ClassifySyndrome(defects)
			if len(defects) <= 2 {
				c2, p2, ok2 := tri.Classify(defects)
				if c2 != class || p2 != parity || ok2 != ok {
					t.Fatalf("%v: ClassifySyndrome/Classify disagree on %v", g, defects)
				}
				return
			}
			if !ok {
				return
			}
			if class != core.TriageMulti {
				t.Fatalf("%v: weight-%d syndrome %v classified %v", g, len(defects), defects, class)
			}
			classified++
			for _, dec := range decs {
				got := dec.decode(defects)
				checkSyndrome(t, g, got, defects)
				if cutParity(g, got) != parity {
					t.Fatalf("%v: %s parity %v != decomposition parity %v on %v (corr %v)",
						g, dec.name, !parity, parity, defects, got)
				}
			}
		}
		flip := make(map[int32]bool)
		for trial := 0; trial < 3000; trial++ {
			// Fault-sampled generator.
			clear(flip)
			for f := 2 + rng.IntN(5); f > 0; f-- {
				ed := &g.Edges[rng.IntN(len(g.Edges))]
				for _, v := range [2]int32{ed.U, ed.V} {
					if !g.IsBoundary(v) {
						flip[v] = !flip[v]
					}
				}
			}
			defects := make([]int32, 0, 12)
			for v, on := range flip {
				if on {
					defects = append(defects, v)
				}
			}
			slices.Sort(defects)
			check(defects)

			// Adversarial generator: uniform distinct vertices.
			clear(flip)
			for len(flip) < 3+rng.IntN(6) {
				flip[int32(rng.IntN(g.V))] = true
			}
			defects = defects[:0]
			for v := range flip {
				defects = append(defects, v)
			}
			slices.Sort(defects)
			check(defects)
		}
		if classified == 0 {
			t.Fatalf("%v: decomposition never applied", g)
		}
	}
}

// FuzzClassifySyndrome fuzzes the decomposition against the plain
// Union-Find decoder on the d=5 cubic graph: any syndrome the fuzzer
// constructs where ClassifySyndrome claims a closed form must land in the
// decoder's homology class.
func FuzzClassifySyndrome(f *testing.F) {
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{10, 40, 90, 91})
	f.Add([]byte{5, 6, 7, 8, 60, 61})
	g := lattice.New3D(5, 5)
	tri := core.NewTriage(g)
	dec := core.NewDecoder(g, core.Options{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 16 {
			raw = raw[:16]
		}
		seen := make(map[int32]bool)
		defects := make([]int32, 0, len(raw))
		for _, b := range raw {
			v := int32(b) % int32(g.V)
			if !seen[v] {
				seen[v] = true
				defects = append(defects, v)
			}
		}
		slices.Sort(defects)
		_, parity, ok := tri.ClassifySyndrome(defects)
		if !ok {
			return
		}
		corr := dec.Decode(defects)
		checkSyndrome(t, g, corr, defects)
		if cutParity(g, corr) != parity {
			t.Fatalf("uf parity %v != triage parity %v on %v", !parity, parity, defects)
		}
	})
}

// TestTriageW0 pins the trivial class.
func TestTriageW0(t *testing.T) {
	tri := core.NewTriage(lattice.New3D(3, 3))
	corr, class, parity, ok := tri.Decode(nil)
	if !ok || class != core.TriageW0 || parity || len(corr) != 0 {
		t.Fatalf("weight-0 triage: corr=%v class=%v parity=%v ok=%v", corr, class, parity, ok)
	}
}
