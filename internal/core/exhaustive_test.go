package core

import (
	"reflect"
	"testing"

	"afs/internal/lattice"
	"afs/internal/noise"
)

// residualAfter decodes the syndrome of the given fault edges and returns
// the residual data mask (error XOR correction).
func residualAfter(dec *Decoder, g *lattice.Graph, faults []int32) noise.Bitset {
	defects := SyndromeOf(g, faults)
	corr := dec.Decode(defects)
	residual := noise.NewBitset(g.NumDataQubits())
	for _, e := range faults {
		if g.Edges[e].Kind == lattice.Spatial {
			residual.Flip(int(g.Edges[e].Qubit))
		}
	}
	for _, e := range corr {
		if g.Edges[e].Kind == lattice.Spatial {
			residual.Flip(int(g.Edges[e].Qubit))
		}
	}
	return residual
}

// TestExhaustiveSingleFaults3D: on the full d=3 logical-cycle graph, every
// single fault (data error in any round, measurement error in any round)
// must be corrected with no logical error — the defining property of a
// distance-3 code under the phenomenological model.
func TestExhaustiveSingleFaults3D(t *testing.T) {
	for _, g := range []*lattice.Graph{lattice.New3D(3, 3), lattice.New3D(5, 5)} {
		dec := NewDecoder(g, Options{})
		cut := g.NorthCutQubits()
		for e := int32(0); e < int32(len(g.Edges)); e++ {
			residual := residualAfter(dec, g, []int32{e})
			if residual.Parity(cut) {
				t.Fatalf("%v: single fault on edge %d (%+v) caused a logical error",
					g, e, g.Edges[e])
			}
		}
	}
}

// TestExhaustivePairFaults3D: d=5 corrects every weight-2 fault pattern
// (floor((5-1)/2) = 2), including mixed data/measurement pairs. The d=3
// graph is exhaustively checked for syndrome validity (weight-2 errors may
// legitimately exceed d=3's correction radius).
func TestExhaustivePairFaults3D(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive pair enumeration")
	}
	g := lattice.New3D(5, 5)
	dec := NewDecoder(g, Options{})
	cut := g.NorthCutQubits()
	n := int32(len(g.Edges))
	// Full pair enumeration is ~O(n^2) = 1.5M decodes; stride the first
	// index to keep the test fast while covering all edge classes.
	for e1 := int32(0); e1 < n; e1 += 7 {
		for e2 := e1 + 1; e2 < n; e2++ {
			residual := residualAfter(dec, g, []int32{e1, e2})
			if residual.Parity(cut) {
				t.Fatalf("weight-2 fault {%d,%d} ({%+v},{%+v}) caused a logical error",
					e1, e2, g.Edges[e1], g.Edges[e2])
			}
		}
	}
}

// TestExhaustiveSyndromeValidityD3: for EVERY subset of faults on a tiny
// graph (d=2, 2 rounds: 10 edges), the correction reproduces the syndrome.
func TestExhaustiveSyndromeValidityD2(t *testing.T) {
	g := lattice.New3D(2, 2)
	dec := NewDecoder(g, Options{})
	n := len(g.Edges)
	if n > 16 {
		t.Fatalf("d=2 graph larger than expected: %d edges", n)
	}
	for mask := 0; mask < 1<<uint(n); mask++ {
		var faults []int32
		for e := 0; e < n; e++ {
			if mask&(1<<uint(e)) != 0 {
				faults = append(faults, int32(e))
			}
		}
		defects := SyndromeOf(g, faults)
		corr := dec.Decode(defects)
		got := SyndromeOf(g, corr)
		if len(got) == 0 && len(defects) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, defects) {
			t.Fatalf("fault mask %b: correction syndrome mismatch", mask)
		}
	}
}

// TestWindowGraphDecoding: the continuous-operation window graph (temporal
// boundary) must also decode every syndrome validly, since the hardware
// model collects latency on it.
func TestWindowGraphDecoding(t *testing.T) {
	g := lattice.New3DWindow(5, 5)
	dec := NewDecoder(g, Options{})
	s := noise.NewSampler(g, 0.02, 31, 7)
	var trial noise.Trial
	for i := 0; i < 1000; i++ {
		s.Sample(&trial)
		corr := dec.Decode(trial.Defects)
		got := SyndromeOf(g, corr)
		if len(got) == 0 && len(trial.Defects) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, trial.Defects) {
			t.Fatalf("window graph: syndrome mismatch")
		}
	}
}

// TestGrowthTerminates: growth rounds are bounded by the graph diameter
// even for adversarial defect sets (all vertices defective).
func TestGrowthTerminates(t *testing.T) {
	g := lattice.New3D(5, 5)
	dec := NewDecoder(g, Options{})
	all := make([]int32, g.V)
	for i := range all {
		all[i] = int32(i)
	}
	dec.Decode(all)
	// Diameter of the d=5 cycle graph is ~3d; half-edge growth doubles it.
	if dec.Stats.GrowthRounds > 6*g.Distance {
		t.Fatalf("growth took %d rounds on the all-defects syndrome", dec.Stats.GrowthRounds)
	}
}
