package core

import "math/bits"

// The sparse shortcut (Options.SparseShortcut).
//
// At the operating points a deployed decoder sees (p ~ 1e-3), almost every
// decoding window holds zero, one, or two detection events, and almost every
// non-empty syndrome is one of two trivial shapes:
//
//   - an isolated *pair* of defects at graph distance 1 (one data error or
//     one measurement flip), whose correction is the connecting edge;
//   - an isolated *single* defect one step from a boundary (a data error on
//     a boundary qubit, or an event awaiting its partner beyond a window's
//     temporal boundary), whose correction is one boundary edge.
//
// Running cluster growth, spanning-forest DFS, and peeling to rediscover
// these answers dominates the streaming decoder's run time. The shortcut
// classifies the syndrome into provably independent groups, emits fast
// groups' corrections directly, and routes everything else through the full
// pipeline — producing exactly the edge set the full algorithm would.
//
// Soundness. Under half-edge growth, a cluster born at defect u stops
// growing at the latest when it touches a boundary, which takes at most
// 2*B(u) growth rounds (B = L1 distance to the nearest boundary; the
// cluster's frontier advances half an edge toward the boundary every round
// it is active). Every vertex a cluster ever absorbs is therefore within
// L1 distance B(u) of some defect u it contains, and every edge it ever
// half-grows has an endpoint within that radius — L1 coordinate distance
// *is* the growth metric on this lattice, because any two real vertices at
// L1 distance 1 share an edge (lattice.EdgeBetween). A fast group's reach
// is even smaller: a pair's clusters merge in round 1 and stop, absorbing
// no vertex beyond the two defects themselves (an edge only completes when
// both halves grow, and only vertices already in a cluster grow halves, so
// a pair's outward half-edges never finish on their own); a single with
// B(v) == 1 merges into the boundary in round 2 after absorbing only v's
// direct neighbors. So with per-defect influence radii — the L1 reach of
// the vertices a group's clusters can ever absorb —
//
//	R(i) = 0               if i's group is a pair,
//	R(i) = 1               if i's group is a boundary single,
//	R(i) = min(B(i), D)    if i's group is two defects at distance D,
//	R(i) = B(i)            otherwise,
//
// where the two-defect case follows from watching the gap: while both
// clusters are active their frontiers close it by a full edge per round and
// they merge (going even, hence inactive) having each absorbed at most the
// ball it grew crossing its side of the gap, within distance D; if one
// freezes on a boundary first its radius is bounded by B, and the survivor
// grows until it meets the frozen cluster, which lies within distance D of
// it. Either way no absorbed vertex is farther than min(B(i), D) from its
// group's nearest defect.
//
// two groups can interact only if an edge can fully grow between their
// absorbed regions, i.e. only if some cross pair (i, j) satisfies
// L1(i, j) <= R(i) + R(j) + 1 (two absorbed endpoints joined by one edge;
// an edge with only one endpoint ever absorbed gains half-growth from one
// side only and never completes). The classifier iterates grouping and classification
// to a fixpoint whose terminal partition has no such cross pair; groups
// that remain distinct evolve exactly as they would alone. (Any partition
// satisfying the invariant yields the same edge set — the full decode's —
// so the iteration order is a performance choice, not a correctness one.) Fast groups'
// isolated evolutions are computed in closed form below; slow groups are
// decoded together by the real pipeline, which reproduces their joint part
// of a whole-syndrome decode verbatim. Boundary-vertex sharing between
// groups is benign: clusters that touch the boundary are already inactive,
// and peeling walks each boundary-rooted subtree independently.
//
// The closed forms match the full algorithm edge-for-edge, not just up to
// equivalence. A pair's clusters merge through their unique connecting
// edge, and peeling of a two-vertex tree emits exactly that edge. A
// boundary single's round-2 merge sweep visits v's adjacency in ascending
// edge order, so the first boundary edge becomes the spanning-tree edge to
// the boundary and peeling emits it; lattice.FirstBoundaryEdge returns the
// same edge. Only the *order* of edges within the returned correction may
// differ from a full decode.

// maxShortcutDefects bounds the syndromes the shortcut classifies; the
// pairwise isolation check is O(k^2) per fixpoint round, so large (rare)
// syndromes go straight to the full pipeline.
const maxShortcutDefects = 32

// MaxShortcutDefects is the sparse shortcut's syndrome-size bound, exported
// so the streaming lane batcher can pre-route windows the shortcut would
// refuse (k > bound) straight to the scalar path instead of scattering them
// into a lane group.
const MaxShortcutDefects = maxShortcutDefects

// sparseMaxFullRounds bounds the classification fixpoint's full regroup
// rounds. The two-defect distance cap can lower radii, so the fixpoint is
// not monotone on paper; real syndromes converge in one or two full rounds,
// and anything that reaches the cap falls back to the full pipeline.
const sparseMaxFullRounds = 6

const (
	spSlow   uint8 = iota // full grow/DFS/peel pipeline
	spPair                // two defects joined by one edge
	spSingle              // one defect with a direct boundary edge
)

// sparseScratch is the shortcut's preallocated working set; all slices hold
// maxShortcutDefects entries and are indexed by defect position, so a
// steady-state decode performs no allocation.
type sparseScratch struct {
	r, c, t []int32  // defect coordinates
	bd      []int32  // L1 distance to the nearest boundary
	root    []int32  // micro union-find over defect positions
	rad     []int32  // influence radius under the current classification
	kind    []uint8  // per-root group shape
	emit    []int32  // per-root fast correction edge
	mask    []uint32 // per-root member bitmask
	pmask   []uint32 // previous round's masks: cache key for kind/emit
	gd      []int32  // per-root two-defect distance cap on slow radii
	reach   []int32  // per-root min over members of t - rad
	slow    []int32  // defects routed to the full pipeline, in input order
	dirty   []int32  // defects whose radius the last classification raised
	maxRad  int32    // max rad over all defects this classification
}

func newSparseScratch() sparseScratch {
	const k = maxShortcutDefects
	return sparseScratch{
		r: make([]int32, k), c: make([]int32, k), t: make([]int32, k),
		bd: make([]int32, k), root: make([]int32, k), rad: make([]int32, k),
		kind: make([]uint8, k), emit: make([]int32, k),
		mask: make([]uint32, k), pmask: make([]uint32, k),
		gd: make([]int32, k), reach: make([]int32, k),
		slow: make([]int32, 0, k), dirty: make([]int32, 0, k),
	}
}

func (s *sparseScratch) find(i int32) int32 {
	for s.root[i] != i {
		s.root[i] = s.root[s.root[i]]
		i = s.root[i]
	}
	return i
}

func abs32(x int32) int32 {
	// Branchless: the triage and sparse classifiers call this in O(k^2)
	// loops over defect pairs where the sign is data-random.
	m := x >> 31
	return (x ^ m) - m
}

// decodeSparse attempts the shortcut. It returns (correction, true) when
// the syndrome decomposes into independent groups at least one of which is
// fast or skippable under the horizon; otherwise (nil, false) and the
// caller must run the full pipeline on the whole syndrome. A decode that
// never enters the pipeline leaves all cluster state and the undo logs
// untouched, deferring the rewind of the previous decode to the next
// reset.
//
// Horizon skipping: a group whose every touched edge provably has
// Round >= horizon contributes nothing the caller will use, so it is
// dropped before any work happens. By the soundness argument above, a
// group's edges all have Round >= min over members of (t - R), so the
// group is skippable when that bound reaches the horizon.
func (d *Decoder) decodeSparse(defects []int32, horizon int32) ([]int32, bool) {
	k := len(defects)
	if k == 0 || k > maxShortcutDefects {
		return nil, false
	}
	s := &d.sp
	s.maxRad = 0
	for i, v := range defects {
		p := d.G.PackedCoords(v)
		s.r[i] = int32(p & 0xffff)
		s.c[i] = int32((p >> 16) & 0xffff)
		s.t[i] = int32((p >> 32) & 0xffff)
		s.bd[i] = int32(p >> 48)
		s.rad[i] = 0
		s.mask[i] = 0 // invalidate the kind/emit cache from the last decode
	}
	// Fixpoint: group defects under the current radii, classify the groups,
	// and let the classification raise radii (pair members stay at 0,
	// boundary singles at 1, members of slow groups at B(i)). Crucially the
	// partition is re-derived from scratch each round rather than coarsened
	// by irreversible unions: radii start optimistic (every defect assumed a
	// pair member), so the first grouping is plain adjacency — exactly the
	// defect pairs single errors produce — and two independent measurement
	// pairs a few cells apart are recognized as separate fast pairs instead
	// of being lumped into one slow conglomerate by their members'
	// pre-classification B radii. Radii only ever grow — a pair cannot split
	// (distance 1 <= 0+0+1) and a slow group's superset can never reclassify
	// as fast — so the conflict set grows monotonically, the partition
	// monotonically coarsens, and the loop terminates, in practice in two
	// rounds. Only the terminal state is used, and it satisfies the isolation
	// invariant the soundness argument needs: no cross-group defect pair
	// within R(i)+R(j)+1, with R valid for the terminal classification.
	// Round 0: all radii are zero, so grouping is plain adjacency — exactly
	// the defect pairs isolated errors produce.
	d.sparseRegroup(k)
	if d.classifySparseGroups(defects, k) {
		// Pair-first round: union slow singletons among themselves before
		// anything else sees their radii. A slow singleton is almost always
		// one half of a separated defect pair; once the halves meet, the
		// group's two-defect distance cap (see classifySparseGroups) shrinks
		// both radii from B(i) to min(B(i), D), so the pessimistic
		// pre-pairing B radii never get to chain unrelated fast groups into
		// one slow conglomerate that the pipeline then decodes over
		// B-radius balls.
		fired := false
		for i := 0; i < k; i++ {
			ri := s.find(int32(i))
			if s.kind[ri] != spSlow || bits.OnesCount32(s.mask[ri]) != 1 {
				continue
			}
			for j := i + 1; j < k; j++ {
				rj := s.find(int32(j))
				if rj == ri || s.kind[rj] != spSlow || bits.OnesCount32(s.mask[rj]) != 1 {
					continue
				}
				dist := abs32(s.r[i]-s.r[j]) + abs32(s.c[i]-s.c[j]) + abs32(s.t[i]-s.t[j])
				if dist <= s.rad[i]+s.rad[j]+1 {
					s.root[rj] = ri
					fired = true
				}
			}
		}
		if fired {
			for i := int32(0); i < int32(k); i++ {
				s.root[i] = s.find(i)
			}
			d.classifySparseGroups(defects, k)
		}
		// Full rounds: regroup from scratch under the current radii and
		// reclassify until nothing changes. When the only state since the
		// last full regroup is a radius change (s.dirty), an incremental
		// check suffices: conflicts between two defects with unchanged radii
		// were already examined there and are intra-group, so only pairs
		// touching a dirty defect need the test — none firing means the
		// partition under the new radii is the one already classified. The
		// restricted pair round above changes the partition outside a full
		// regroup, so when it fires the first full round is unconditional.
		// The two-defect cap can lower radii, so the rounds are not
		// monotone; the cap on their number keeps termination trivial, and
		// a non-converged syndrome (never observed in practice) falls back
		// to the full pipeline — exact, just slower.
		converged := false
		for round := 0; round < sparseMaxFullRounds; round++ {
			if round > 0 || !fired {
				conflict := false
			scan:
				for _, di := range s.dirty {
					i := int(di)
					for j := 0; j < k; j++ {
						if s.root[j] == s.root[i] {
							continue
						}
						dist := abs32(s.r[i]-s.r[j]) + abs32(s.c[i]-s.c[j]) + abs32(s.t[i]-s.t[j])
						if dist <= s.rad[i]+s.rad[j]+1 {
							conflict = true
							break scan
						}
					}
				}
				if !conflict {
					converged = true
					break
				}
			}
			d.sparseRegroup(k)
			if !d.classifySparseGroups(defects, k) {
				converged = true
				break
			}
		}
		if !converged {
			return nil, false
		}
	}

	// Per-group reach bound: the earliest round any of the group's edges
	// can touch. Groups entirely at or past the horizon are skipped.
	for i := 0; i < k; i++ {
		if s.mask[i] != 0 {
			s.reach[i] = noHorizon
		}
	}
	for i := 0; i < k; i++ {
		ri := s.root[i]
		if reach := s.t[i] - s.rad[i]; reach < s.reach[ri] {
			s.reach[ri] = reach
		}
	}

	s.slow = s.slow[:0]
	fast, skipped := 0, 0
	for i := 0; i < k; i++ {
		if s.mask[i] != 0 { // root: account for its group once
			if s.reach[i] >= horizon {
				skipped++
			} else if s.kind[i] != spSlow {
				fast++
			}
		}
		ri := s.root[i]
		if s.reach[ri] < horizon && s.kind[ri] == spSlow {
			s.slow = append(s.slow, defects[i])
		}
	}
	if fast == 0 && skipped == 0 {
		return nil, false // nothing to shortcut; avoid classifying twice
	}

	if len(s.slow) > 0 {
		// Slow groups cannot interact with any fast group, so decoding them
		// together through the full pipeline reproduces exactly their share
		// of a whole-syndrome decode.
		d.reset(s.slow)
		d.growClusters()
		d.peel(s.slow)
	} else {
		// No cluster state is touched: the previous decode's undo logs stay
		// in place for a later reset, and only the outputs are refreshed.
		d.Stats = DecodeStats{Clusters: d.Stats.Clusters[:0]}
		d.correction = d.correction[:0]
		d.uf.ResetCounters()
	}
	for i := 0; i < k; i++ {
		if s.mask[i] != 0 && s.kind[i] != spSlow && s.reach[i] < horizon {
			d.correction = append(d.correction, s.emit[i])
		}
	}
	d.Stats.NumDefects = k
	d.Stats.CorrectionEdges = len(d.correction)
	d.Stats.RootTableAccesses = d.uf.RootReads + d.uf.RootWrites
	d.Stats.SizeTableAccesses = d.uf.SizeReads + d.uf.SizeWrites
	return d.correction, true
}

// sparseRegroup rebuilds the defect partition from scratch under the
// current radii and leaves the union-find flattened so every later lookup
// is a direct load.
func (d *Decoder) sparseRegroup(k int) {
	s := &d.sp
	for i := 0; i < k; i++ {
		s.root[i] = int32(i)
	}
	for i := 0; i < k; i++ {
		// Defects arrive sorted by vertex id, so t is nondecreasing: once
		// j's layer is beyond any possible conflict with i, later j are too.
		tmax := s.t[i] + s.rad[i] + s.maxRad + 1
		for j := i + 1; j < k; j++ {
			if s.t[j] > tmax {
				break
			}
			dist := abs32(s.r[i]-s.r[j]) + abs32(s.c[i]-s.c[j]) + abs32(s.t[i]-s.t[j])
			if dist <= s.rad[i]+s.rad[j]+1 {
				ri, rj := s.find(int32(i)), s.find(int32(j))
				if ri != rj {
					s.root[rj] = ri
				}
			}
		}
	}
	for i := int32(0); i < int32(k); i++ {
		s.root[i] = s.find(i)
	}
}

// classifySparseGroups recomputes, for the current grouping (roots already
// flattened), each root's shape and fast correction edge plus each defect's
// influence radius. A root whose member mask is unchanged from the previous
// round keeps its cached kind and emit edge — the shape probes
// (FirstBoundaryEdge, EdgeBetween) scan adjacency lists, and the fixpoint's
// later rounds mostly revisit unchanged groups. It reports whether any
// radius changed — false means the fixpoint has converged — and records the
// raised defects in s.dirty for the incremental convergence check.
func (d *Decoder) classifySparseGroups(defects []int32, k int) bool {
	s := &d.sp
	for i := 0; i < k; i++ {
		s.pmask[i], s.mask[i] = s.mask[i], 0
	}
	for i := 0; i < k; i++ {
		s.mask[s.root[i]] |= 1 << uint(i)
	}
	for i := 0; i < k; i++ {
		m := s.mask[i]
		if m == 0 || m == s.pmask[i] {
			continue // not a root, or cached from the previous round
		}
		kind, edge, gcap := spSlow, int32(-1), noHorizon
		switch bits.OnesCount32(m) {
		case 1:
			v := int32(bits.TrailingZeros32(m))
			if s.bd[v] == 1 {
				if e := d.G.FirstBoundaryEdge(defects[v]); e != -1 {
					kind, edge = spSingle, e
				}
			}
		case 2:
			a := int32(bits.TrailingZeros32(m))
			b := int32(bits.TrailingZeros32(m &^ (1 << uint(a))))
			dist := abs32(s.r[a]-s.r[b]) + abs32(s.c[a]-s.c[b]) + abs32(s.t[a]-s.t[b])
			if dist == 1 {
				if e := d.G.EdgeBetween(defects[a], defects[b]); e != -1 {
					kind, edge = spPair, e
				}
			} else {
				// A separated two-defect group stays slow, but its growth
				// stops within min(B, dist) of each defect (see the radius
				// table above), which keeps its conflict range far below the
				// raw B radii.
				gcap = dist
			}
		}
		s.kind[i], s.emit[i], s.gd[i] = kind, edge, gcap
	}
	s.dirty = s.dirty[:0]
	s.maxRad = 0
	for i := 0; i < k; i++ {
		var rad int32
		switch s.kind[s.root[i]] {
		case spPair:
			rad = 0
		case spSingle:
			rad = 1
		default:
			rad = s.bd[i]
			if g := s.gd[s.root[i]]; g < rad {
				rad = g
			}
		}
		if rad != s.rad[i] {
			s.rad[i] = rad
			s.dirty = append(s.dirty, int32(i))
		}
		if rad > s.maxRad {
			s.maxRad = rad
		}
	}
	return len(s.dirty) > 0
}
