// Differential soundness tests for the partial-residual decomposition:
// peeled closed-form parity XOR residual decode parity must equal the
// undecomposed full decode's parity, for every decoder in the repository,
// on exhaustive small placements, randomized fault-shaped and adversarial
// syndromes, and fuzzed inputs.
package core_test

import (
	"math/rand/v2"
	"slices"
	"testing"

	"afs/internal/core"
	"afs/internal/lattice"
)

// peelStats tallies how a body of syndromes moved through PeelResidual so
// the tests can require that every outcome class is actually exercised.
type peelStats struct {
	resolved int // everything certified: no decoder work left
	partial  int // some components peeled, residual decoded
	unpeeled int // nothing certified: input returned verbatim
}

// checkPeelResidual verifies the certificate on one syndrome: structural
// invariants of the returned residual, and parity equivalence
// peel ^ decode(residual) == decode(whole) under every decoder.
func checkPeelResidual(t *testing.T, g *lattice.Graph, tri *core.Triage, decs []namedDecoder, defects []int32, st *peelStats) {
	t.Helper()
	parity, res, peeled := tri.PeelResidual(defects)
	// Structural invariants.
	if !isSubsequence(res, defects) {
		t.Fatalf("%v: residual %v is not a subsequence of %v", g, res, defects)
	}
	switch {
	case len(res) == len(defects):
		if parity || peeled != 0 {
			t.Fatalf("%v: unpeeled syndrome %v returned parity=%v peeled=%d", g, defects, parity, peeled)
		}
		st.unpeeled++
	case len(res) == 0:
		if peeled == 0 {
			t.Fatalf("%v: fully resolved %v with peeled=0", g, defects)
		}
		st.resolved++
	default:
		if peeled == 0 {
			t.Fatalf("%v: partial residual %v of %v with peeled=0", g, res, defects)
		}
		st.partial++
	}
	// Parity equivalence vs every decoder. The residual aliases triage
	// scratch, so copy it before the decoders run.
	resCopy := slices.Clone(res)
	for _, dec := range decs {
		full := dec.decode(defects)
		checkSyndrome(t, g, full, defects)
		want := cutParity(g, full)
		got := parity
		if len(resCopy) > 0 {
			rc := dec.decode(resCopy)
			checkSyndrome(t, g, rc, resCopy)
			got = got != cutParity(g, rc)
		}
		if got != want {
			t.Fatalf("%v: %s peel parity %v != full parity %v on %v (residual %v, peeled %d)",
				g, dec.name, got, want, defects, resCopy, peeled)
		}
	}
	// Idempotence: the decomposition is a pure function of the syndrome
	// (scratch reuse must not leak state between calls).
	p2, r2, n2 := tri.PeelResidual(defects)
	if p2 != parity || n2 != peeled || !slices.Equal(r2, resCopy) {
		t.Fatalf("%v: PeelResidual not idempotent on %v: (%v,%v,%d) then (%v,%v,%d)",
			g, defects, parity, resCopy, peeled, p2, r2, n2)
	}
}

func isSubsequence(sub, full []int32) bool {
	j := 0
	for _, v := range full {
		if j < len(sub) && sub[j] == v {
			j++
		}
	}
	return j == len(sub)
}

// peelDecoders is decodersFor minus the hierarchical router. The strict
// XOR identity (peel ^ decode(residual) == decode(whole)) holds for any
// decoder that resolves an isolated defect group the same way standalone
// as inside the full syndrome — true for the Union-Find family (per-group
// evolution is context-free under the isolation invariant; decodeSparse is
// built on exactly that) and for deterministic min-weight matchers. The
// hierarchical router is context-sensitive by design: whether its local
// first stage or its fallback fires depends on the whole syndrome, so on a
// residual with a weight tie between homology classes (e.g. a B=1 pair at
// distance 2: boundary pair vs interior chain, both weight 2) the two
// routes can pick different — equally valid, equally minimal — classes,
// and the identity legitimately fails. The decomposition only claims
// outcome equivalence for the decoder that actually decodes the residual
// (the kernels use Union-Find), so hierarchical is checked everywhere else
// but not here.
func peelDecoders(g *lattice.Graph) []namedDecoder {
	all := decodersFor(g)
	out := all[:0]
	for _, d := range all {
		if d.name != "hierarchical" {
			out = append(out, d)
		}
	}
	return out
}

// TestPeelResidualExhaustiveWeight3 sweeps every weight-3 placement on the
// small graphs. Weight 3 is the smallest weight PeelResidual acts on and
// the richest source of peel/demote boundaries relative to its size:
// pair+single splits, near-boundary duo bands, and triangle components.
func TestPeelResidualExhaustiveWeight3(t *testing.T) {
	var st peelStats
	for _, g := range triageGraphs() {
		if g.V > 64 {
			continue // cubic-in-V sweep: the larger graphs are covered randomly
		}
		tri := core.NewTriage(g)
		decs := peelDecoders(g)
		for u := int32(0); u < int32(g.V); u++ {
			for v := u + 1; v < int32(g.V); v++ {
				for w := v + 1; w < int32(g.V); w++ {
					checkPeelResidual(t, g, tri, decs, []int32{u, v, w}, &st)
				}
			}
		}
	}
	// The tiniest graph demotes everything (no isolation room at d=3), so
	// the outcome-coverage assertion is over the whole sweep.
	if st.partial == 0 || st.resolved == 0 || st.unpeeled == 0 {
		t.Fatalf("exhaustive weight-3 sweep missed a peel outcome class (stats %+v)", st)
	}
}

// TestPeelResidualRandomSyndromes drives the decomposition with the same
// two generators as the triage-layer tests — fault-sampled syndromes and
// adversarial uniform vertex sets — across all tier-1 graphs.
func TestPeelResidualRandomSyndromes(t *testing.T) {
	var st peelStats
	for _, g := range triageGraphs() {
		tri := core.NewTriage(g)
		decs := peelDecoders(g)
		rng := rand.New(rand.NewPCG(11, uint64(g.V)))
		flip := make(map[int32]bool)
		defects := make([]int32, 0, 24)
		for trial := 0; trial < 1500; trial++ {
			// Fault-sampled generator.
			clear(flip)
			for f := 2 + rng.IntN(7); f > 0; f-- {
				ed := &g.Edges[rng.IntN(len(g.Edges))]
				for _, v := range [2]int32{ed.U, ed.V} {
					if !g.IsBoundary(v) {
						flip[v] = !flip[v]
					}
				}
			}
			defects = defects[:0]
			for v, on := range flip {
				if on {
					defects = append(defects, v)
				}
			}
			slices.Sort(defects)
			if len(defects) >= 3 {
				checkPeelResidual(t, g, tri, decs, defects, &st)
			}

			// Adversarial generator: uniform distinct vertices.
			clear(flip)
			for len(flip) < 3+rng.IntN(8) {
				flip[int32(rng.IntN(g.V))] = true
			}
			defects = defects[:0]
			for v := range flip {
				defects = append(defects, v)
			}
			slices.Sort(defects)
			checkPeelResidual(t, g, tri, decs, defects, &st)
		}
	}
	if st.resolved == 0 || st.partial == 0 || st.unpeeled == 0 {
		t.Fatalf("random sweep missed a peel outcome class (stats %+v)", st)
	}
}

// TestPeelResidualSubsumesClassify pins the containment relation between
// the two layers: any syndrome classifyMulti certifies whole must peel to
// an empty residual with the same parity. (PeelResidual re-derives the
// same decomposition with demotion in place of rejection, and its duo band
// strictly contains the D == 2 case classifyMulti ships, so certifying
// strictly less would be a regression.)
func TestPeelResidualSubsumesClassify(t *testing.T) {
	for _, g := range triageGraphs() {
		tri := core.NewTriage(g)
		rng := rand.New(rand.NewPCG(13, uint64(g.V)))
		agreed := 0
		flip := make(map[int32]bool)
		for trial := 0; trial < 4000; trial++ {
			clear(flip)
			for f := 2 + rng.IntN(6); f > 0; f-- {
				ed := &g.Edges[rng.IntN(len(g.Edges))]
				for _, v := range [2]int32{ed.U, ed.V} {
					if !g.IsBoundary(v) {
						flip[v] = !flip[v]
					}
				}
			}
			defects := make([]int32, 0, 16)
			for v, on := range flip {
				if on {
					defects = append(defects, v)
				}
			}
			slices.Sort(defects)
			if len(defects) < 3 {
				continue
			}
			_, want, ok := tri.ClassifySyndrome(defects)
			if !ok {
				continue
			}
			parity, res, _ := tri.PeelResidual(defects)
			if len(res) != 0 || parity != want {
				t.Fatalf("%v: classifyMulti certified %v (parity %v) but peel left residual %v parity %v",
					g, defects, want, res, parity)
			}
			agreed++
		}
		if agreed == 0 {
			t.Fatalf("%v: containment test never hit a certified syndrome", g)
		}
	}
}

// Steady-state peeling must not allocate: the residual buffer and the
// multi-defect scratch are owned by the Triage and reused across calls.
func TestPeelResidualZeroAllocSteadyState(t *testing.T) {
	g := lattice.New3D(7, 7)
	tri := core.NewTriage(g)
	rng := rand.New(rand.NewPCG(19, 7))
	var syndromes [][]int32
	flip := make(map[int32]bool)
	for len(syndromes) < 16 {
		clear(flip)
		for f := 3 + rng.IntN(6); f > 0; f-- {
			ed := &g.Edges[rng.IntN(len(g.Edges))]
			for _, v := range [2]int32{ed.U, ed.V} {
				if !g.IsBoundary(v) {
					flip[v] = !flip[v]
				}
			}
		}
		defects := make([]int32, 0, 16)
		for v, on := range flip {
			if on {
				defects = append(defects, v)
			}
		}
		slices.Sort(defects)
		if len(defects) >= 3 {
			syndromes = append(syndromes, defects)
		}
	}
	for _, s := range syndromes {
		tri.PeelResidual(s) // warm the residual buffer
	}
	i := 0
	avg := testing.AllocsPerRun(50, func() {
		tri.PeelResidual(syndromes[i%len(syndromes)])
		i++
	})
	if avg != 0 {
		t.Fatalf("PeelResidual allocates %.1f times per call in steady state", avg)
	}
}

// FuzzPeelResidual is the differential fuzz gate (CI fuzz-smoke): on the
// d=5 cubic graph, peel parity XOR residual decode parity must equal the
// undecomposed decode parity for every syndrome the fuzzer constructs. The
// seed corpus is built from captured punted syndromes — fault-sampled
// inputs classifyMulti rejects, exactly the population the kernels feed
// PeelResidual.
func FuzzPeelResidual(f *testing.F) {
	g := lattice.New3D(5, 5)
	tri := core.NewTriage(g)
	dec := core.NewDecoder(g, core.Options{})

	// Punted-syndrome captures as seeds (deterministic).
	rng := rand.New(rand.NewPCG(17, 5))
	flip := make(map[int32]bool)
	for seeds := 0; seeds < 12; {
		clear(flip)
		for fts := 2 + rng.IntN(6); fts > 0; fts-- {
			ed := &g.Edges[rng.IntN(len(g.Edges))]
			for _, v := range [2]int32{ed.U, ed.V} {
				if !g.IsBoundary(v) {
					flip[v] = !flip[v]
				}
			}
		}
		defects := make([]int32, 0, 16)
		for v, on := range flip {
			if on {
				defects = append(defects, v)
			}
		}
		slices.Sort(defects)
		if len(defects) < 3 {
			continue
		}
		if _, _, ok := tri.ClassifySyndrome(defects); ok {
			continue
		}
		raw := make([]byte, len(defects))
		for i, v := range defects {
			raw[i] = byte(v)
		}
		f.Add(raw)
		seeds++
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 20 {
			raw = raw[:20]
		}
		seen := make(map[int32]bool)
		defects := make([]int32, 0, len(raw))
		for _, b := range raw {
			v := int32(b) % int32(g.V)
			if !seen[v] {
				seen[v] = true
				defects = append(defects, v)
			}
		}
		slices.Sort(defects)
		parity, res, _ := tri.PeelResidual(defects)
		res = slices.Clone(res)
		full := dec.Decode(defects)
		checkSyndrome(t, g, full, defects)
		want := cutParity(g, full)
		got := parity
		if len(res) > 0 {
			rc := dec.Decode(res)
			checkSyndrome(t, g, rc, res)
			got = got != cutParity(g, rc)
		}
		if got != want {
			t.Fatalf("peel parity %v != full parity %v on %v (residual %v)", got, want, defects, res)
		}
	})
}
