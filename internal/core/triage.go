package core

import (
	"afs/internal/lattice"
	"afs/internal/lut"
)

// Weight-class triage (the batched shot pipeline's first stage).
//
// Where the sparse shortcut (sparse.go) reproduces the full algorithm's
// correction edge-for-edge, triage answers a weaker question that is all a
// logical-failure count needs: for syndromes of weight <= 2, what is the
// correction's parity over the north cut — does the decode flip the logical
// observable? Any two valid corrections for the same syndrome differ by a
// stabilizer (cycles and boundary-returning chains, even cut crossings)
// and/or a logical operator (odd crossings); triage is sound exactly when
// every correction a decoder could emit for the syndrome lies in one
// homology class, and it punts to the full decoder whenever both classes
// contain a minimal correction.
//
// The cut structure makes parity local: the north-cut edges
// (lattice.NorthCutQubits) are precisely the north boundary edges of the
// decoding graph, so a correction's cut parity is the number of north
// boundary edges it uses. A boundary-to-boundary chain uses exactly one
// boundary edge per attached endpoint, and an interior chain uses none.
//
// Weight classes, with B(v) the fault distance from v to the nearest
// boundary and Side(v) the side classification of lut.Boundary (punting on
// SideTie):
//
//   - W0 (no defects): the correction is empty; parity 0. Exact for every
//     decoder.
//
//   - W1 (defect v, Side(v) != SideTie): every minimal correction is a
//     weight-B(v) chain to the strictly nearest boundary — a chain to the
//     other side costs strictly more — so parity 1 iff Side(v) ==
//     SideNorth. Union-Find concurs dynamically: the cluster grows until
//     its first boundary contact at growth round 2B(v) (a vertex at fault
//     distance k joins the support in round 2k, so a boundary edge at
//     distance b completes in round 2b), at which point the only boundary
//     edges in the support sit on the winning side, and peeling routes v
//     through exactly one of them. On the closed (odd-d) graphs accuracy
//     runs decode, north and south distances r+1 and d-1-r can never tie,
//     so W1 never punts there; ties arise only from the temporal boundary
//     of window graphs.
//
//   - W2 (defects u, v at fault distance D = L1(u,v)):
//
//     interior: if D == 1 the correction is the connecting edge; if
//     2 <= D < 2*min(B(u), B(v)) the two clusters merge in growth round D
//     (their frontiers close the gap by one full edge per round), strictly
//     before any boundary edge can complete (round 2B >= D+1), and the
//     merged cluster is even and final — its support, and hence the peeled
//     u-v chain, contains no boundary edge: parity 0. Matching decoders
//     agree: D < 2Bu and D < 2Bv give D < Bu+Bv, so pairing u with v
//     strictly beats two boundary chains, and a weight-D u-v chain cannot
//     visit the boundary (that costs >= Bu+Bv > D).
//
//     independent: if D > B(u)+B(v)+1 and neither side ties, the two
//     clusters can never interact — a completing edge between their
//     absorbed balls (radii B(u), B(v)) would need D <= B(u)+B(v)+1 — so
//     each defect resolves as an isolated W1: parity is the XOR of the two
//     north bits. Matching decoders agree: boundary pairing at B(u)+B(v)
//     strictly beats the u-v chain at D >= B(u)+B(v)+2.
//
//     The band B(u)+B(v)-ish <= D <= B(u)+B(v)+1 between the two regimes —
//     where merge-vs-boundary is close enough for decoder-specific
//     tie-breaks to pick different homology classes — is conservatively
//     punted.
//
//   - Multi (weight >= 3, ClassifySyndrome): almost every heavier syndrome
//     at deployment error rates is a scatter of independent single-fault
//     signatures — adjacent defect pairs from interior faults, boundary
//     singles from boundary faults. The decomposition rule matches each
//     defect with a unique adjacent partner (pairs; parity 0, influence
//     radius 0 — a pair's clusters merge in round one having absorbed
//     nothing beyond the defects themselves; ambiguous adjacency falls to
//     the even-component rule of mergeComponents), then pairs unambiguous
//     distance-2 duos among the leftovers (the signature of two faults
//     sharing a vertex) when both members sit at fault distance >= 2 from
//     the boundary — the W2 interior-merge rule applies (D = 2 < 2B on
//     both sides), the clusters meet at growth round 2 having absorbed
//     radius-1 balls: parity 0, influence radius 1 — and classifies the
//     remaining defects as isolated W1 singles (radius B, parity from the
//     side bit), then
//     checks the sparse shortcut's isolation invariant in one pass: every
//     cross-group defect pair (i, j) must satisfy L1(i,j) > R(i)+R(j)+1,
//     so no edge can ever complete between two groups and each group
//     evolves exactly as it would alone (see sparse.go's soundness
//     argument; any partition satisfying the invariant is valid, so the
//     single conservative pass needs no fixpoint). Total parity is the XOR
//     over groups. Ambiguous adjacency (a defect with two adjacent
//     partners), side ties, isolation violations, or more than
//     maxTriageDefects defects punt the whole syndrome.
//
// The rules never inspect which decoder sits behind the triage layer, and
// the property tests in internal/montecarlo enforce trial-for-trial
// bit-identical failure outcomes against every untriaged decoder variant.
type Triage struct {
	g    *lattice.Graph
	bd   *lut.Boundary
	corr []int32
	res  []int32 // residual defect set reused across PeelResidual calls
	ms   multiScratch
}

// maxTriageDefects bounds the multi decomposition's scratch space; heavier
// syndromes (far above the design-point mean) punt to the full decoder.
const maxTriageDefects = 32

// multiScratch is the fixed-size working set of classifyMulti: unpacked
// defect coordinates, per-defect influence radii, the adjacency pairing,
// and the cached pairwise L1 distances (upper triangle) so the isolation
// pass reuses the pairing pass's arithmetic.
type multiScratch struct {
	r, c, t [maxTriageDefects]int32
	rad     [maxTriageDefects]int32
	bnd     [maxTriageDefects]int32 // boundary distance B (PeelResidual)
	grp     [maxTriageDefects]int8  // group id (smallest member index)
	deg     [maxTriageDefects]int8  // distance-1 adjacency degree
	cnt     [maxTriageDefects]int8  // members per group id
	st      [maxTriageDefects]uint8 // peel state (PeelResidual)
	d       [maxTriageDefects][maxTriageDefects]int32
	// Sparse pair lists filled by the pairwise pass so the merge and
	// duo-candidate passes touch only the pairs that matter instead of
	// re-sweeping the k x k matrix. A defect has at most 6 lattice
	// neighbours and 18 sites at L1 distance 2, which bounds the lists.
	adj1 [3 * maxTriageDefects][2]int8 // pairs at distance 1
	adj2 [9 * maxTriageDefects][2]int8 // pairs at distance 2
}

// TriageClass labels how a syndrome was resolved; the Monte-Carlo kernel
// tallies these through internal/obs so -metrics shows fast-path hit rates.
type TriageClass uint8

const (
	// TriageFull: punted — the full decoder pipeline must run.
	TriageFull TriageClass = iota
	// TriageW0: empty syndrome, identity correction.
	TriageW0
	// TriageW1: single defect resolved to its nearest boundary.
	TriageW1
	// TriageW2: defect pair resolved by the interior or independent rule.
	TriageW2
	// TriageMulti: weight >= 3 syndrome resolved by the pair/single
	// decomposition (ClassifySyndrome).
	TriageMulti
)

func (c TriageClass) String() string {
	switch c {
	case TriageW0:
		return "w0"
	case TriageW1:
		return "w1"
	case TriageW2:
		return "w2"
	case TriageMulti:
		return "multi"
	default:
		return "full"
	}
}

// NewTriage builds a triage layer for g, sharing the process-wide cached
// boundary tables.
func NewTriage(g *lattice.Graph) *Triage {
	return &Triage{g: g, bd: lut.BoundaryFor(g), res: make([]int32, 0, maxTriageDefects)}
}

// Classify resolves the syndrome's logical-cut parity without materializing
// a correction — the only output a failure count consumes. It returns the
// weight class, the correction's parity over the north cut, and whether the
// closed-form rules apply; ok == false (class TriageFull) means the caller
// must run a full decoder. defects must be sorted as produced by the
// samplers.
func (t *Triage) Classify(defects []int32) (class TriageClass, parity bool, ok bool) {
	switch len(defects) {
	case 0:
		return TriageW0, false, true
	case 1:
		v := defects[0]
		side := t.bd.Side[v]
		if side == lut.SideTie {
			return TriageFull, false, false
		}
		return TriageW1, side == lut.SideNorth, true
	case 2:
		u, v := defects[0], defects[1]
		pu, pv := t.g.PackedCoords(u), t.g.PackedCoords(v)
		d := abs32(int32(pu&0xffff)-int32(pv&0xffff)) +
			abs32(int32(pu>>16&0xffff)-int32(pv>>16&0xffff)) +
			abs32(int32(pu>>32&0xffff)-int32(pv>>32&0xffff))
		bu, bv := t.bd.Dist[u], t.bd.Dist[v]
		if d < 2*bu && d < 2*bv { // D == 1 included: 2B >= 2 > 1
			return TriageW2, false, true
		}
		if d > bu+bv+1 {
			su, sv := t.bd.Side[u], t.bd.Side[v]
			if su != lut.SideTie && sv != lut.SideTie {
				return TriageW2, (su == lut.SideNorth) != (sv == lut.SideNorth), true
			}
		}
		return TriageFull, false, false
	default:
		return TriageFull, false, false
	}
}

// ClassifySyndrome is Classify extended to syndromes of any weight: weights
// <= 2 go through the exact closed forms, heavier syndromes through the
// pair/single decomposition (class TriageMulti). This is the entry point the
// fused Monte-Carlo kernel calls per trial.
func (t *Triage) ClassifySyndrome(defects []int32) (class TriageClass, parity bool, ok bool) {
	if len(defects) <= 2 {
		return t.Classify(defects)
	}
	parity, ok = t.classifyMulti(defects)
	if !ok {
		return TriageFull, false, false
	}
	return TriageMulti, parity, true
}

// classifyMulti implements the weight >= 3 decomposition documented above:
// match unique adjacent pairs (radius 0, parity 0), classify the leftovers
// as isolated W1 singles (radius B, parity from the side bit), and accept
// only if every cross-group defect pair satisfies the isolation invariant
// L1(i,j) > R(i)+R(j)+1. Anything ambiguous returns ok == false.
func (t *Triage) classifyMulti(defects []int32) (parity bool, ok bool) {
	k := len(defects)
	if k > maxTriageDefects {
		return false, false
	}
	s := &t.ms
	r, c, tt := s.r[:k], s.c[:k], s.t[:k]
	rad, grp, deg, cnt := s.rad[:k], s.grp[:k], s.deg[:k], s.cnt[:k]
	for i, v := range defects {
		p := t.g.PackedCoords(v)
		r[i] = int32(p & 0xffff)
		c[i] = int32(p >> 16 & 0xffff)
		tt[i] = int32(p >> 32 & 0xffff)
		rad[i] = int32(p >> 48) // boundary distance B: the isolated-W1 radius
		grp[i] = int8(i)
		deg[i] = 0
		cnt[i] = 1
	}
	// Pairwise distances (cached symmetrically for the later passes),
	// distance-1 adjacency degrees, and the sparse d==1 / d==2 pair lists
	// the merge and duo passes iterate.
	conflict := false
	n1, n2 := 0, 0
	for i := 0; i < k; i++ {
		di := s.d[i][:k]
		ri, ci, ti := r[i], c[i], tt[i]
		for j := i + 1; j < k; j++ {
			d := abs32(ri-r[j]) + abs32(ci-c[j]) + abs32(ti-tt[j])
			di[j] = d
			s.d[j][i] = d
			if d > 2 {
				continue
			}
			if d == 1 {
				deg[i]++
				deg[j]++
				conflict = conflict || deg[i] > 1 || deg[j] > 1
				s.adj1[n1] = [2]int8{int8(i), int8(j)}
				n1++
			} else {
				s.adj2[n2] = [2]int8{int8(i), int8(j)}
				n2++
			}
		}
	}
	if !conflict {
		// Every adjacency is a mutually unique duo: pair them (the shared
		// edge beats any alternative — see the doc comment). Radius 0.
		// With all degrees <= 1 the d==1 pairs are disjoint dominoes.
		for a := 0; a < n1; a++ {
			i, j := s.adj1[a][0], s.adj1[a][1]
			grp[j] = i
			cnt[i], cnt[j] = 2, 0
			rad[i], rad[j] = 0, 0
		}
	} else if !t.mergeComponents(k, n1) {
		return false, false
	}
	// Distance-2 pairing among the leftover singles: a fault pair sharing a
	// vertex leaves its two defects at L1 distance 2. A single with exactly
	// one single distance-2 candidate pairs with it when both sit at fault
	// distance >= 2 from the boundary (the W2 interior-merge rule: D = 2 <
	// 2B on both sides, parity 0, influence radius 1); two candidates are
	// ambiguous, and a near-boundary duo (B == 1, where merge and boundary
	// pairing tie at cost 2) has no closed form — both punt. Note a unique
	// candidate is mutual: if i's unique candidate is j but j's is l != i,
	// then j sees both i and l and punts first. deg is dead after the
	// pairing phase and is reused as the candidate store.
	for i := 0; i < k; i++ {
		deg[i] = -1
	}
	for a := 0; a < n2; a++ {
		i, j := s.adj2[a][0], s.adj2[a][1]
		if cnt[i] != 1 || cnt[j] != 1 {
			continue
		}
		if deg[i] >= 0 || deg[j] >= 0 {
			return false, false // a second distance-2 candidate: ambiguous
		}
		deg[i], deg[j] = j, i
	}
	for i := 0; i < k; i++ {
		if cnt[i] != 1 {
			continue
		}
		j := int(deg[i])
		if j < i {
			continue
		}
		if rad[i] < 2 || rad[j] < 2 {
			return false, false
		}
		grp[j] = int8(i)
		cnt[i], cnt[j] = 2, 0
		rad[i], rad[j] = 1, 1
	}
	// Parity contributions of the remaining singles (their radius is
	// already B from the packed load).
	for i := 0; i < k; i++ {
		if cnt[i] != 1 {
			continue
		}
		side := t.bd.Side[defects[i]]
		if side == lut.SideTie {
			return false, false
		}
		if side == lut.SideNorth {
			parity = !parity
		}
	}
	// Isolation invariant across groups.
	for i := 0; i < k; i++ {
		di := s.d[i][:k]
		gi := grp[i]
		slack := rad[i] + 1
		for j := i + 1; j < k; j++ {
			if di[j] <= slack+rad[j] && grp[j] != gi {
				return false, false
			}
		}
	}
	return parity, true
}

// mergeComponents is classifyMulti's slow path for ambiguous distance-1
// adjacency (a defect with two neighbors — fault clusters; a few percent of
// syndromes at the design point). It merges distance-1 connected components
// by label propagation and accepts a component exactly when it must
// collapse into one even interior cluster in growth round one: size 2, or
// size 4 admitting a perfect matching in its distance-1 graph (the lattice
// is bipartite, so components are paths, stars, or even cycles — a star
// K_{1,3} has no perfect matching and punts, which is necessary: its
// cheapest resolutions mix interior and boundary chains at equal cost).
// Accepted components merge at round one having absorbed nothing beyond
// their defects (radius 0) and every minimal correction pairs them through
// interior edges (any two such pairings differ by interior cycles): parity
// 0. Odd or larger components punt the syndrome.
func (t *Triage) mergeComponents(k, n1 int) bool {
	s := &t.ms
	grp, rad, cnt := s.grp[:k], s.rad[:k], s.cnt[:k]
	for changed := true; changed; {
		changed = false
		for a := 0; a < n1; a++ {
			i, j := s.adj1[a][0], s.adj1[a][1]
			if grp[i] != grp[j] {
				m := grp[i]
				if grp[j] < m {
					m = grp[j]
				}
				grp[i], grp[j] = m, m
				changed = true
			}
		}
	}
	for i := 0; i < k; i++ {
		cnt[i] = 0
	}
	for i := 0; i < k; i++ {
		cnt[grp[i]]++
	}
	for i := 0; i < k; i++ {
		if int(grp[i]) != i {
			continue
		}
		switch cnt[i] {
		case 1, 2:
			// Single (keeps radius B) or plain pair.
		case 4:
			if !t.quadMatchable(k, i) {
				return false
			}
		default:
			return false
		}
	}
	for i := 0; i < k; i++ {
		if cnt[grp[i]] >= 2 {
			rad[i] = 0
		}
	}
	return true
}

// quadMatchable reports whether the 4-defect component with group id gid
// admits a perfect matching in its distance-1 graph.
func (t *Triage) quadMatchable(k, gid int) bool {
	s := &t.ms
	var m [4]int
	n := 0
	for i := 0; i < k; i++ {
		if int(s.grp[i]) == gid {
			m[n] = i
			n++
		}
	}
	d := &s.d
	return (d[m[0]][m[1]] == 1 && d[m[2]][m[3]] == 1) ||
		(d[m[0]][m[2]] == 1 && d[m[1]][m[3]] == 1) ||
		(d[m[0]][m[3]] == 1 && d[m[1]][m[2]] == 1)
}

// Decode is Classify plus a materialized correction: a valid edge set whose
// syndrome is exactly defects and whose cut parity equals Classify's. The
// returned slice is reused by the next call. The Monte-Carlo kernel only
// calls Classify; Decode serves the parity-vs-validity tests and any caller
// that needs real edges.
func (t *Triage) Decode(defects []int32) (corr []int32, class TriageClass, parity bool, ok bool) {
	class, parity, ok = t.Classify(defects)
	if !ok {
		return nil, class, false, false
	}
	t.corr = t.corr[:0]
	switch class {
	case TriageW1:
		t.corr = t.bd.AppendChain(defects[0], t.corr)
	case TriageW2:
		u, v := defects[0], defects[1]
		if t.g.GraphDistance(u, v) > int(t.bd.Dist[u]+t.bd.Dist[v]+1) {
			t.corr = t.bd.AppendChain(u, t.corr)
			t.corr = t.bd.AppendChain(v, t.corr)
		} else {
			t.corr = t.appendGeodesic(u, v, t.corr)
		}
	}
	return t.corr, class, parity, true
}

// appendGeodesic appends an L1 geodesic from u to v (stepping layers, then
// rows, then columns; consecutive coordinates always share an edge on this
// lattice) and returns the extended slice.
func (t *Triage) appendGeodesic(u, v int32, out []int32) []int32 {
	g := t.g
	rv, cv, tv := g.VertexCoords(v)
	x := u
	for x != v {
		rx, cx, tx := g.VertexCoords(x)
		var y int32
		switch {
		case tx != tv:
			y = g.VertexID(rx, cx, tx+sign(tv-tx))
		case rx != rv:
			y = g.VertexID(rx+sign(rv-rx), cx, tx)
		default:
			y = g.VertexID(rx, cx+sign(cv-cx), tx)
		}
		out = append(out, g.EdgeBetween(x, y))
		x = y
	}
	return out
}

func sign(x int) int {
	if x < 0 {
		return -1
	}
	return 1
}
