package core

import (
	"sync/atomic"

	"afs/internal/obs"
)

// tileCounters publishes the tile-parallel engine's live profile: how many
// heavy windows it decoded, how much of the partition they touched, how
// often clusters crossed tile boundaries (the merges only the sequential
// reconciliation phase may apply), and the per-decode critical-path
// speedup distribution — the quantity the heavy-window perf floor pins.
// Flushing is decode-granular, mirroring the Monte-Carlo engine's
// chunk-granular pattern.
type tileCounters struct {
	decodes        *obs.Counter
	tilesTouched   *obs.Counter
	boundaryMerges *obs.Counter
	reconRounds    *obs.Counter
	speedup        *obs.Histogram
}

func (o *tileCounters) flush(shard int, st *TileStats) {
	o.decodes.Inc(shard)
	if st.TilesTouched != 0 {
		o.tilesTouched.Add(shard, uint64(st.TilesTouched))
	}
	if st.BoundaryMerges != 0 {
		o.boundaryMerges.Add(shard, uint64(st.BoundaryMerges))
	}
	if st.ReconcileRounds != 0 {
		o.reconRounds.Add(shard, uint64(st.ReconcileRounds))
	}
	if st.CritUnits > 0 {
		o.speedup.Observe(shard, float64(st.SeqUnits)/float64(st.CritUnits))
	}
}

var (
	tileObs = func() *tileCounters {
		reg := obs.Default()
		const s = obs.DefaultShards
		return &tileCounters{
			decodes: reg.NewCounter("afs_uf_tile_decodes_total",
				"syndromes decoded by the tile-parallel Union-Find engine", s),
			tilesTouched: reg.NewCounter("afs_uf_tile_tiles_touched_total",
				"tiles that held cluster state during tile-parallel decodes", s),
			boundaryMerges: reg.NewCounter("afs_uf_tile_boundary_merges_total",
				"support edges merged across a tile boundary in reconciliation", s),
			reconRounds: reg.NewCounter("afs_uf_tile_reconcile_rounds_total",
				"growth rounds that required cross-tile reconciliation", s),
			speedup: reg.NewHistogram("afs_uf_tile_speedup",
				"per-decode critical-path model speedup (sequential units / slowest-tile units)",
				0, 16, 64, s),
		}
	}()
	tileShardSeq atomic.Uint32
)

func nextTileShard() int { return int(tileShardSeq.Add(1) - 1) }
