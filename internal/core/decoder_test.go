package core

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"afs/internal/lattice"
	"afs/internal/noise"
)

// syndromeMatches checks the defining property of a valid correction: it
// reproduces exactly the measured defects.
func syndromeMatches(t *testing.T, g *lattice.Graph, defects, correction []int32) {
	t.Helper()
	got := SyndromeOf(g, correction)
	want := append([]int32(nil), defects...)
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("correction syndrome mismatch:\n got  %v\n want %v\n correction %v", got, want, correction)
	}
}

func TestDecodeEmptySyndrome(t *testing.T) {
	g := lattice.New2D(5)
	d := NewDecoder(g, Options{})
	if corr := d.Decode(nil); len(corr) != 0 {
		t.Fatalf("empty syndrome produced correction %v", corr)
	}
	if d.Stats.NumDefects != 0 || len(d.Stats.Clusters) != 0 {
		t.Fatalf("unexpected stats for empty syndrome: %+v", d.Stats)
	}
}

func TestDecodeSingleDataError2D(t *testing.T) {
	for _, dist := range []int{3, 5, 7} {
		g := lattice.New2D(dist)
		dec := NewDecoder(g, Options{})
		// Every single data-qubit error must be corrected exactly: residual
		// (error XOR correction) must be trivial on the north cut.
		for q := 0; q < g.NumDataQubits(); q++ {
			e := g.SpatialEdge(int32(q), 0)
			defects := SyndromeOf(g, []int32{e})
			corr := dec.Decode(defects)
			syndromeMatches(t, g, defects, corr)

			var residual noise.Bitset
			ApplyToData(g, corr, &residual)
			residual.Flip(q)
			if residual.Parity(g.NorthCutQubits()) {
				t.Fatalf("d=%d: single error on qubit %d caused a logical error", dist, q)
			}
		}
	}
}

func TestDecodeSingleMeasurementError3D(t *testing.T) {
	g := lattice.New3D(5, 5)
	dec := NewDecoder(g, Options{})
	// A lone measurement error produces two time-adjacent defects; the
	// decoder must fix it without touching any data qubit.
	for tt := 0; tt < g.Rounds-1; tt++ {
		e := g.TemporalEdge(1, 2, tt)
		defects := SyndromeOf(g, []int32{e})
		if len(defects) != 2 {
			t.Fatalf("temporal edge produced %d defects, want 2", len(defects))
		}
		corr := dec.Decode(defects)
		syndromeMatches(t, g, defects, corr)
		var mask noise.Bitset
		ApplyToData(g, corr, &mask)
		if mask.PopCount() != 0 {
			t.Fatalf("measurement-error correction touched data qubits: %v", corr)
		}
	}
}

func TestDecodeAllWeightTwoErrors2D(t *testing.T) {
	g := lattice.New2D(5)
	dec := NewDecoder(g, Options{})
	n := g.NumDataQubits()
	for q1 := 0; q1 < n; q1++ {
		for q2 := q1 + 1; q2 < n; q2++ {
			e1, e2 := g.SpatialEdge(int32(q1), 0), g.SpatialEdge(int32(q2), 0)
			defects := SyndromeOf(g, []int32{e1, e2})
			corr := dec.Decode(defects)
			syndromeMatches(t, g, defects, corr)
			// Any weight-2 error on a distance-5 code must be corrected
			// (UF corrects up to floor((d-1)/2) = 2 errors).
			var residual noise.Bitset
			ApplyToData(g, corr, &residual)
			residual.Flip(q1)
			residual.Flip(q2)
			if residual.Parity(g.NorthCutQubits()) {
				t.Fatalf("weight-2 error (%d,%d) caused a logical error", q1, q2)
			}
		}
	}
}

func TestDecodeRandomErrors3D(t *testing.T) {
	g := lattice.New3D(7, 7)
	dec := NewDecoder(g, Options{})
	s := noise.NewSampler(g, 0.02, 42, 7)
	var trial noise.Trial
	for i := 0; i < 2000; i++ {
		s.Sample(&trial)
		corr := dec.Decode(trial.Defects)
		syndromeMatches(t, g, trial.Defects, corr)
	}
	if s.MeanFaults() == 0 {
		t.Fatal("sampler produced no faults at p=0.02")
	}
}

// TestDecodeArbitraryDefectSets is the central invariant, checked as a
// property: for ANY set of defects (not only ones produced by a physical
// error), the decoder terminates and its correction reproduces the
// syndrome exactly.
func TestDecodeArbitraryDefectSets(t *testing.T) {
	g := lattice.New3D(5, 5)
	dec := NewDecoder(g, Options{})
	f := func(seed uint64, kRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		k := int(kRaw) % (g.V / 2)
		seen := make(map[int32]bool, k)
		var defects []int32
		for len(defects) < k {
			v := int32(rng.IntN(g.V))
			if !seen[v] {
				seen[v] = true
				defects = append(defects, v)
			}
		}
		sortInt32(defects)
		corr := dec.Decode(defects)
		got := SyndromeOf(g, corr)
		return reflect.DeepEqual(got, defects) || (len(got) == 0 && len(defects) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeStatsSanity(t *testing.T) {
	g := lattice.New3D(5, 5)
	dec := NewDecoder(g, Options{})
	// Two adjacent defects from one data error: a single cluster with two
	// defects and one growth round.
	e := g.SpatialEdge(g.HorizontalQubit(1, 1), 2)
	defects := SyndromeOf(g, []int32{e})
	dec.Decode(defects)
	st := dec.Stats
	if st.NumDefects != 2 {
		t.Fatalf("NumDefects = %d, want 2", st.NumDefects)
	}
	if len(st.Clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(st.Clusters))
	}
	c := st.Clusters[0]
	if c.Defects != 2 || c.Vertices != 2 || c.TouchesBoundary {
		t.Fatalf("unexpected cluster stat: %+v", c)
	}
	if st.GrowthRounds != 1 {
		t.Fatalf("GrowthRounds = %d, want 1", st.GrowthRounds)
	}
	if st.CorrectionEdges != 1 {
		t.Fatalf("CorrectionEdges = %d, want 1", st.CorrectionEdges)
	}
}

func TestDecodeNearBoundary(t *testing.T) {
	g := lattice.New2D(5)
	dec := NewDecoder(g, Options{})
	// A single defect adjacent to the north boundary must be matched to
	// the boundary, not across the lattice.
	defects := []int32{g.VertexID(0, 2, 0)}
	corr := dec.Decode(defects)
	syndromeMatches(t, g, defects, corr)
	if len(corr) != 1 {
		t.Fatalf("boundary defect corrected with %d edges, want 1", len(corr))
	}
	ed := g.Edges[corr[0]]
	if !g.IsBoundary(ed.U) && !g.IsBoundary(ed.V) {
		t.Fatalf("correction edge %+v does not touch the boundary", ed)
	}
	if len(dec.Stats.Clusters) != 1 || !dec.Stats.Clusters[0].TouchesBoundary {
		t.Fatalf("cluster stats should record a boundary cluster: %+v", dec.Stats.Clusters)
	}
}

func TestDecoderAblationVariantsAgreeOnSyndrome(t *testing.T) {
	g := lattice.New3D(5, 5)
	variants := []Options{
		{},
		{DisableWeightedUnion: true},
		{DisablePathCompression: true},
		{DisableWeightedUnion: true, DisablePathCompression: true},
	}
	decs := make([]*Decoder, len(variants))
	for i, o := range variants {
		decs[i] = NewDecoder(g, o)
	}
	s := noise.NewSampler(g, 0.01, 5, 11)
	var trial noise.Trial
	for i := 0; i < 500; i++ {
		s.Sample(&trial)
		for vi, dec := range decs {
			corr := dec.Decode(trial.Defects)
			got := SyndromeOf(g, corr)
			want := trial.Defects
			if !(len(got) == 0 && len(want) == 0) && !reflect.DeepEqual(got, want) {
				t.Fatalf("variant %d (%+v) produced invalid correction", vi, variants[vi])
			}
		}
	}
}

func TestDecoderReuseIsDeterministic(t *testing.T) {
	g := lattice.New3D(5, 5)
	defects := SyndromeOf(g, []int32{
		g.SpatialEdge(g.HorizontalQubit(0, 0), 1),
		g.TemporalEdge(2, 3, 2),
		g.SpatialEdge(g.VerticalQubit(2, 2), 3),
	})
	dec := NewDecoder(g, Options{})
	first := append([]int32(nil), dec.Decode(defects)...)
	for i := 0; i < 10; i++ {
		got := dec.Decode(defects)
		if !reflect.DeepEqual(first, got) {
			t.Fatalf("decode %d differs: %v vs %v", i, got, first)
		}
	}
	// A fresh decoder must agree with a reused one.
	fresh := NewDecoder(g, Options{}).Decode(defects)
	if !reflect.DeepEqual(first, fresh) {
		t.Fatalf("fresh decoder disagrees: %v vs %v", fresh, first)
	}
}

func BenchmarkDecode3D(b *testing.B) {
	for _, cfg := range []struct {
		d int
		p float64
	}{{11, 1e-3}, {17, 1e-3}, {25, 1e-3}} {
		g := lattice.New3D(cfg.d, cfg.d)
		dec := NewDecoder(g, Options{})
		s := noise.NewSampler(g, cfg.p, 1, 2)
		var trial noise.Trial
		b.Run(benchName(cfg.d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Sample(&trial)
				dec.Decode(trial.Defects)
			}
		})
	}
}

func benchName(d int) string {
	return "d=" + string(rune('0'+d/10)) + string(rune('0'+d%10))
}
