package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler exposing the registry:
//
//	/metrics     Prometheus text exposition
//	/debug/vars  expvar-style JSON snapshot
//	/debug/pprof pprof index (profile, heap, goroutine, ...)
//
// The handlers only read atomics, so scraping a live fleet never blocks
// or perturbs the decode hot paths.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteVarsJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "afs metrics endpoint\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running metrics endpoint.
type Server struct {
	Addr string // actual listen address (resolves ":0" requests)
	srv  *http.Server
	ln   net.Listener
}

// Serve starts an HTTP metrics endpoint for reg on addr (host:port; an
// empty port picks a free one). It returns once the listener is bound, so
// a caller can print the resolved address before starting work.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 5 * time.Second}
	s := &Server{Addr: ln.Addr().String(), srv: srv, ln: ln}
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
