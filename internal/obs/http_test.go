package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeEndpoints boots a real endpoint on a free port and scrapes it —
// the smoke test CI runs to guarantee the -metrics flag's plumbing works
// end to end.
func TestServeEndpoints(t *testing.T) {
	r := New()
	r.NewCounter("afs_smoke_total", "smoke counter", 0).Add(0, 5)
	s, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	get := func(path string) (string, string) {
		t.Helper()
		resp, err := client.Get("http://" + s.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.Contains(metrics, "afs_smoke_total 5") {
		t.Fatalf("/metrics missing counter:\n%s", metrics)
	}
	if !strings.Contains(ctype, "text/plain") {
		t.Fatalf("/metrics content type %q", ctype)
	}

	vars, ctype := get("/debug/vars")
	var doc map[string]any
	if err := json.Unmarshal([]byte(vars), &doc); err != nil {
		t.Fatalf("/debug/vars not JSON: %v\n%s", err, vars)
	}
	if doc["afs_smoke_total"] != float64(5) {
		t.Fatalf("/debug/vars counter = %v, want 5", doc["afs_smoke_total"])
	}
	if !strings.Contains(ctype, "application/json") {
		t.Fatalf("/debug/vars content type %q", ctype)
	}

	if index, _ := get("/"); !strings.Contains(index, "/metrics") {
		t.Fatalf("index page missing endpoint listing:\n%s", index)
	}
	if pprofIdx, _ := get("/debug/pprof/"); !strings.Contains(pprofIdx, "goroutine") {
		t.Fatalf("pprof index missing profiles:\n%s", pprofIdx)
	}

	resp, err := client.Get("http://" + s.Addr + "/no-such-page")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: status %d, want 404", resp.StatusCode)
	}
}
