package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTraceBoundedDrops(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 6; i++ {
		tr.Emit(Event{TS: float64(i), Kind: EvWindow})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatalf("after Reset: len %d dropped %d, want 0/0", tr.Len(), tr.Dropped())
	}
	tr.Emit(Event{Kind: EvTimeout})
	if tr.Len() != 1 {
		t.Fatalf("Reset lost capacity: Len = %d, want 1", tr.Len())
	}
}

// TestTraceSnapshotOrder checks that export order is the deterministic
// (TS, TID, Kind, Arg) key, independent of emission order — the property
// that makes a fixed-seed trace byte-identical across worker counts.
func TestTraceSnapshotOrder(t *testing.T) {
	emit := []Event{
		{TS: 400, TID: 1, Kind: EvWindow},
		{TS: 400, TID: 0, Kind: EvTimeout},
		{TS: 400, TID: 0, Kind: EvWindow, Arg: 2},
		{TS: 400, TID: 0, Kind: EvWindow, Arg: 1},
		{TS: 100, TID: 7, Kind: EvShedStart},
	}
	want := []Event{
		{TS: 100, TID: 7, Kind: EvShedStart},
		{TS: 400, TID: 0, Kind: EvWindow, Arg: 1},
		{TS: 400, TID: 0, Kind: EvWindow, Arg: 2},
		{TS: 400, TID: 0, Kind: EvTimeout},
		{TS: 400, TID: 1, Kind: EvWindow},
	}
	// Two emission orders, one exported order.
	for _, order := range [][]int{{0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}} {
		tr := NewTrace(16)
		for _, i := range order {
			tr.Emit(emit[i])
		}
		got := tr.Snapshot()
		if len(got) != len(want) {
			t.Fatalf("snapshot has %d events, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
			}
		}
	}
}

func TestTraceWriteChrome(t *testing.T) {
	tr := NewTrace(2)
	tr.Emit(Event{TS: 800, Dur: 123.5, Arg: 3, TID: 1, Kind: EvWindow})
	tr.Emit(Event{TS: 1200, Arg: 350, TID: 1, Kind: EvTimeout})
	tr.Emit(Event{TS: 1600, Kind: EvShedRound}) // dropped at capacity
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
		OtherData struct {
			Dropped uint64 `json:"dropped_events"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("exported %d events, want 2", len(doc.TraceEvents))
	}
	if e := doc.TraceEvents[0]; e.Name != "window" || e.Ph != "X" || e.TS != 800 || e.Dur != 123.5 || e.TID != 1 {
		t.Fatalf("window event exported wrong: %+v", e)
	}
	if e := doc.TraceEvents[1]; e.Name != "timeout" || e.Ph != "i" {
		t.Fatalf("timeout event exported wrong: %+v", e)
	}
	if doc.OtherData.Dropped != 1 {
		t.Fatalf("dropped_events = %d, want 1", doc.OtherData.Dropped)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvWindow, EvTimeout, EvDegraded, EvShedRound,
		EvShedStart, EvShedEnd, EvErasedRound, EvEarlyStop}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("kind %d has bad or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(0).String() != "unknown" || EventKind(99).String() != "unknown" {
		t.Fatal("out-of-range kinds must stringify as unknown")
	}
}
