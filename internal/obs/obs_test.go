package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterTotalsAcrossShards(t *testing.T) {
	r := New()
	c := r.NewCounter("c", "test", 4)
	c.Inc(0)
	c.Inc(1)
	c.Inc(5) // masks onto shard 1
	c.Add(-3, 10)
	if got := c.Value(); got != 13 {
		t.Fatalf("Value = %d, want 13", got)
	}
}

// TestCounterConcurrentSnapshots hammers a counter from many goroutines
// using distinct shard hints while a reader snapshots continuously; run
// under -race this is the lock-freedom proof, and the final total must be
// exact — sharding must lose nothing.
func TestCounterConcurrentSnapshots(t *testing.T) {
	r := New()
	c := r.NewCounter("c", "test", DefaultShards)
	const writers, perWriter = 8, 10000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := c.Value()
			if v < last {
				t.Errorf("Value went backwards: %d after %d", v, last)
				return
			}
			last = v
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc(w)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("final Value = %d, want %d", got, writers*perWriter)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.NewHistogram("h", "test", 0, 10, 5, 2)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.999, 10, 42, math.NaN()} {
		h.Observe(0, x)
	}
	s := h.Snapshot()
	if s.Under != 1 || s.Over != 2 {
		t.Fatalf("under/over = %d/%d, want 1/2", s.Under, s.Over)
	}
	want := []uint64{2, 1, 1, 0, 1} // [0,2): {0, 1.9}; [2,4): {2}; [4,6): {5}; [8,10): {9.999}
	for i, b := range s.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, b, want[i], s.Buckets)
		}
	}
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8 (NaN must be ignored)", s.Count)
	}
	if wantSum := -1 + 0 + 1.9 + 2 + 5 + 9.999 + 10 + 42; math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", s.Sum, wantSum)
	}
	if got := s.UpperEdge(0); got != 2 {
		t.Fatalf("UpperEdge(0) = %g, want 2", got)
	}
	if got := s.UpperEdge(4); got != 10 {
		t.Fatalf("UpperEdge(4) = %g, want 10", got)
	}
}

// TestHistogramConcurrentSnapshots checks the histogram's lock-free claim
// the same way: concurrent observers on different shards, a continuous
// snapshot reader, and an exact final census.
func TestHistogramConcurrentSnapshots(t *testing.T) {
	r := New()
	h := r.NewHistogram("h", "test", 0, 100, 10, DefaultShards)
	const writers, perWriter = 8, 5000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = h.Snapshot()
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(w, float64(i%100))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", s.Count, writers*perWriter)
	}
	if s.Under != 0 || s.Over != 0 {
		t.Fatalf("under/over = %d/%d, want 0/0", s.Under, s.Over)
	}
}

// TestHotPathZeroAlloc pins the property the decode paths rely on: counter
// increments, histogram observations, and trace emission never allocate.
func TestHotPathZeroAlloc(t *testing.T) {
	r := New()
	c := r.NewCounter("c", "test", 0)
	h := r.NewHistogram("h", "test", 0, 100, 16, 0)
	tr := NewTrace(128)
	ev := Event{TS: 1, Dur: 2, Arg: 3, TID: 4, Kind: EvWindow}
	if n := testing.AllocsPerRun(1000, func() { c.Inc(3) }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3, 42.5) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { tr.Emit(ev) }); n != 0 {
		t.Fatalf("Trace.Emit allocates %v/op", n)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := New()
	r.NewCounter("dup", "first", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewCounter("dup", "second", 0)
}

func TestWritePrometheusFormat(t *testing.T) {
	r := New()
	c := r.NewCounter("afs_test_total", "a counter", 0)
	c.Add(0, 7)
	r.RegisterGauge("afs_test_gauge", "a gauge", func() float64 { return 2.5 })
	h := r.NewHistogram("afs_test_hist", "a histogram", 0, 4, 2, 0)
	h.Observe(0, -1) // underfolds into the first bucket
	h.Observe(0, 1)
	h.Observe(0, 3)
	h.Observe(0, 9) // overflow: only in +Inf
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE afs_test_total counter",
		"afs_test_total 7",
		"# TYPE afs_test_gauge gauge",
		"afs_test_gauge 2.5",
		"# TYPE afs_test_hist histogram",
		`afs_test_hist_bucket{le="2"} 2`,
		`afs_test_hist_bucket{le="4"} 3`,
		`afs_test_hist_bucket{le="+Inf"} 4`,
		"afs_test_hist_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteVarsJSONParses(t *testing.T) {
	r := New()
	r.NewCounter("counter", "c", 0).Add(0, 3)
	r.RegisterGauge("gauge", "g", func() float64 { return math.Inf(1) }) // must clamp to null
	h := r.NewHistogram("hist", "h", 0, 10, 4, 0)
	h.Observe(0, 5)
	var buf bytes.Buffer
	if err := r.WriteVarsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("vars output is not valid JSON: %v\n%s", err, buf.String())
	}
	if got["counter"] != float64(3) {
		t.Fatalf("counter = %v, want 3", got["counter"])
	}
	if got["gauge"] != nil {
		t.Fatalf("infinite gauge = %v, want null", got["gauge"])
	}
	hist, ok := got["hist"].(map[string]any)
	if !ok || hist["count"] != float64(1) {
		t.Fatalf("hist = %v, want count 1", got["hist"])
	}
}

func TestRoundUpPow2(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {9, 16},
	} {
		if got := roundUpPow2(tc.in); got != tc.want {
			t.Errorf("roundUpPow2(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestLocalHistMatchesDirect(t *testing.T) {
	r := New()
	direct := r.NewHistogram("direct", "test", 0, 10, 5, 0)
	buffered := r.NewHistogram("buffered", "test", 0, 10, 5, 0)
	l := buffered.NewLocal()
	samples := []float64{-3, 0, 1.5, 2, 4.4, 9.99, 10, 57, math.NaN(), 6}
	for _, x := range samples {
		direct.Observe(1, x)
		l.Observe(x)
	}
	if got := buffered.Snapshot(); got.Count != 0 {
		t.Fatalf("unflushed LocalHist leaked %d samples into the shared histogram", got.Count)
	}
	l.Flush(1)
	l.Flush(1) // idempotent when empty
	want, got := direct.Snapshot(), buffered.Snapshot()
	if got.Under != want.Under || got.Over != want.Over || got.Count != want.Count || got.Sum != want.Sum {
		t.Fatalf("flushed snapshot %+v != direct %+v", got, want)
	}
	for i := range want.Buckets {
		if got.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d: %d != %d", i, got.Buckets[i], want.Buckets[i])
		}
	}
	if n := testing.AllocsPerRun(1000, func() { l.Observe(4); l.Flush(2) }); n != 0 {
		t.Fatalf("LocalHist hot path allocates %v/op", n)
	}
}
