// Package obs is the allocation-free observability layer of the decode
// fleet: lock-free counters and fixed-bin histograms that the hot paths of
// the streaming decoder, the Monte-Carlo engine, and the chaos layer
// increment without ever touching the heap or a mutex, plus a deterministic
// model-time event trace (trace.go) and an optional HTTP endpoint
// (http.go) that renders everything as Prometheus text, expvar-style JSON,
// and pprof profiles.
//
// The design constraints come from the rest of the repository:
//
//   - zero allocations in steady state: incrementing a Counter or observing
//     into a Histogram is a single atomic add into a preallocated slot, so
//     the test-enforced 0 allocs/op properties of the decode hot paths
//     survive instrumentation;
//   - no perturbation: metrics are pure sinks — nothing in the decode path
//     ever reads them — so fixed-seed results stay bit-identical across
//     worker counts whether or not anything is scraping;
//   - low contention: every metric is sharded over cache-line-padded slots;
//     concurrent writers on different shards never share a line, and a
//     snapshot simply sums the shards (values are monotone, and a scrape
//     racing an increment reads a valid slightly-stale total).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// cacheLine is the padding granularity for shard slots. 128 bytes covers
// the spatial-prefetcher pairing on current x86 parts.
const cacheLine = 128

// DefaultShards is the shard count used by the package-level convenience
// constructors. It must be a power of two; writers pick shards by masking,
// so any int (a stream index, a worker index) is a valid shard hint.
const DefaultShards = 8

// padSlot is one cache-line-padded uint64.
type padSlot struct {
	v uint64
	_ [cacheLine - 8]byte
}

// Counter is a monotone, sharded, lock-free counter. Writers add into the
// shard named by an arbitrary hint (stream or worker index — masked to the
// shard count), readers sum all shards. The zero Counter is not usable;
// construct through a Registry.
type Counter struct {
	name, help string
	shards     []padSlot
	mask       uint32
}

// Inc adds one to the counter in the hinted shard.
func (c *Counter) Inc(shard int) { c.Add(shard, 1) }

// Add adds n to the counter in the hinted shard.
func (c *Counter) Add(shard int, n uint64) {
	atomic.AddUint64(&c.shards[uint32(shard)&c.mask].v, n)
}

// Value returns the counter's current total across all shards. A Value
// concurrent with writers is a valid point-in-time lower bound (each shard
// is read atomically; the sum may lag increments that land mid-scan).
func (c *Counter) Value() uint64 {
	var sum uint64
	for i := range c.shards {
		sum += atomic.LoadUint64(&c.shards[i].v)
	}
	return sum
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Histogram is a sharded fixed-width-bin histogram over [Lo, Hi). Samples
// below Lo or at/above Hi land in underflow/overflow slots, so every
// observation is accounted. Observing is one atomic add into the writer's
// shard row (rows are cache-line padded); Snapshot merges the rows.
type Histogram struct {
	name, help string
	lo, hi     float64
	width      float64 // bin width
	invWidth   float64 // 1/width — binning multiplies instead of dividing
	nbins      int
	stride     int // uint64 slots per shard row, padded to cache lines
	mask       uint32
	counts     []uint64  // shards * stride; per row: [0]=under, [1..nbins]=bins, [nbins+1]=over
	sums       []padSlot // per-shard float64 sum, as math.Float64bits
}

// Observe records one sample into the hinted shard.
func (h *Histogram) Observe(shard int, x float64) {
	row := int(uint32(shard)&h.mask) * h.stride
	var slot int
	switch {
	case math.IsNaN(x):
		return // an unmeasurable sample carries no information
	case x < h.lo:
		slot = 0
	case x >= h.hi:
		slot = h.nbins + 1
	default:
		i := int((x - h.lo) * h.invWidth)
		if i >= h.nbins { // floating-point edge
			i = h.nbins - 1
		}
		slot = i + 1
	}
	atomic.AddUint64(&h.counts[row+slot], 1)
	// Lock-free float accumulation: CAS on the bit pattern. Contention is
	// bounded by the shard fan-out and observation rates (per decode
	// window, not per round), so the loop settles immediately in practice.
	s := &h.sums[uint32(shard)&h.mask].v
	for {
		old := atomic.LoadUint64(s)
		next := math.Float64bits(math.Float64frombits(old) + x)
		if atomic.CompareAndSwapUint64(s, old, next) {
			return
		}
	}
}

// HistSnapshot is a merged point-in-time view of a Histogram.
type HistSnapshot struct {
	Lo, Hi      float64
	Buckets     []uint64 // len = bin count
	Under, Over uint64
	Count       uint64 // Under + sum(Buckets) + Over
	Sum         float64
}

// UpperEdge returns the exclusive upper edge of bucket i.
func (s *HistSnapshot) UpperEdge(i int) float64 {
	return s.Lo + (s.Hi-s.Lo)*float64(i+1)/float64(len(s.Buckets))
}

// Snapshot merges all shards. Concurrent with writers it returns a valid
// slightly-stale view (every slot is read atomically).
func (h *Histogram) Snapshot() HistSnapshot {
	out := HistSnapshot{Lo: h.lo, Hi: h.hi, Buckets: make([]uint64, h.nbins)}
	shards := int(h.mask) + 1
	for s := 0; s < shards; s++ {
		row := s * h.stride
		out.Under += atomic.LoadUint64(&h.counts[row])
		for i := 0; i < h.nbins; i++ {
			out.Buckets[i] += atomic.LoadUint64(&h.counts[row+1+i])
		}
		out.Over += atomic.LoadUint64(&h.counts[row+h.nbins+1])
		out.Sum += math.Float64frombits(atomic.LoadUint64(&h.sums[s].v))
	}
	out.Count = out.Under + out.Over
	for _, b := range out.Buckets {
		out.Count += b
	}
	return out
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// LocalHist is a single-owner accumulation buffer in front of a Histogram:
// Observe is plain (non-atomic) arithmetic into a private bin array, and
// Flush merges the buffered samples into the shared histogram in a handful
// of atomic adds. Hot paths that observe per event but can publish per
// batch (the stream decoder flushes every few dozen windows) use it to
// keep the per-event cost to a couple of plain adds. Not safe for
// concurrent use; each owner builds its own with Histogram.NewLocal.
type LocalHist struct {
	h    *Histogram
	bins []uint64 // same layout as a shard row: [0]=under, [1..nbins]=bins, [nbins+1]=over
	sum  float64
	n    uint64
}

// NewLocal returns a fresh accumulation buffer for h. The buffer allocates
// once here; Observe and Flush never allocate.
func (h *Histogram) NewLocal() *LocalHist {
	return &LocalHist{h: h, bins: make([]uint64, h.nbins+2)}
}

// Observe buffers one sample locally (no atomics).
func (l *LocalHist) Observe(x float64) {
	h := l.h
	var slot int
	switch {
	case math.IsNaN(x):
		return // an unmeasurable sample carries no information
	case x < h.lo:
		slot = 0
	case x >= h.hi:
		slot = h.nbins + 1
	default:
		i := int((x - h.lo) * h.invWidth)
		if i >= h.nbins { // floating-point edge
			i = h.nbins - 1
		}
		slot = i + 1
	}
	l.bins[slot]++
	l.sum += x
	l.n++
}

// Flush publishes the buffered samples into the shared histogram's hinted
// shard and resets the buffer. A no-op when nothing is buffered.
func (l *LocalHist) Flush(shard int) {
	if l.n == 0 {
		return
	}
	h := l.h
	row := int(uint32(shard)&h.mask) * h.stride
	for i, c := range l.bins {
		if c != 0 {
			atomic.AddUint64(&h.counts[row+i], c)
			l.bins[i] = 0
		}
	}
	s := &h.sums[uint32(shard)&h.mask].v
	for {
		old := atomic.LoadUint64(s)
		next := math.Float64bits(math.Float64frombits(old) + l.sum)
		if atomic.CompareAndSwapUint64(s, old, next) {
			break
		}
	}
	l.sum = 0
	l.n = 0
}

// gauge is a read-time callback metric; the callback must be safe to call
// from the scrape goroutine (read atomics or immutable state only).
type gauge struct {
	name, help string
	fn         func() float64
}

// Registry holds named metrics and renders them. Registration takes a
// mutex; reads and writes of the metrics themselves are lock-free.
type Registry struct {
	mu      sync.Mutex
	order   []string
	metrics map[string]any // *Counter | *Histogram | gauge
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{metrics: map[string]any{}}
}

var defaultRegistry = New()

// Default returns the process-wide registry that the instrumented
// subsystems (stream, montecarlo, faults) register into at init.
func Default() *Registry { return defaultRegistry }

func (r *Registry) register(name string, m any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.metrics[name] = m
	r.order = append(r.order, name)
}

// roundUpPow2 returns the smallest power of two >= n (minimum 1).
func roundUpPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewCounter registers a sharded counter. shards is rounded up to a power
// of two; 0 selects DefaultShards.
func (r *Registry) NewCounter(name, help string, shards int) *Counter {
	if shards <= 0 {
		shards = DefaultShards
	}
	shards = roundUpPow2(shards)
	c := &Counter{name: name, help: help, shards: make([]padSlot, shards), mask: uint32(shards - 1)}
	r.register(name, c)
	return c
}

// NewHistogram registers a sharded fixed-bin histogram over [lo, hi) with
// nbins bins. shards is rounded up to a power of two; 0 selects
// DefaultShards.
func (r *Registry) NewHistogram(name, help string, lo, hi float64, nbins, shards int) *Histogram {
	if nbins <= 0 || hi <= lo {
		panic(fmt.Sprintf("obs: invalid histogram %q: [%g,%g) with %d bins", name, lo, hi, nbins))
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	shards = roundUpPow2(shards)
	stride := nbins + 2
	if rem := stride % (cacheLine / 8); rem != 0 {
		stride += cacheLine/8 - rem
	}
	h := &Histogram{
		name: name, help: help,
		lo: lo, hi: hi, width: (hi - lo) / float64(nbins), invWidth: float64(nbins) / (hi - lo),
		nbins: nbins, stride: stride, mask: uint32(shards - 1),
		counts: make([]uint64, shards*stride),
		sums:   make([]padSlot, shards),
	}
	r.register(name, h)
	return h
}

// RegisterGauge registers a callback gauge evaluated at scrape time. fn
// must be safe to call from the scrape goroutine concurrently with the
// instrumented code (derive the value from Counters or immutable state).
func (r *Registry) RegisterGauge(name, help string, fn func() float64) {
	r.register(name, gauge{name: name, help: help, fn: fn})
}

// snapshotOrder returns the registered names sorted, so rendered output is
// deterministic regardless of registration interleaving.
func (r *Registry) snapshotOrder() ([]string, map[string]any) {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	metrics := make(map[string]any, len(r.metrics))
	for k, v := range r.metrics {
		metrics[k] = v
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names, metrics
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (counters, gauges, and cumulative-bucket histograms).
func (r *Registry) WritePrometheus(w io.Writer) error {
	names, metrics := r.snapshotOrder()
	for _, name := range names {
		var err error
		switch m := metrics[name].(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
				name, m.help, name, name, m.Value())
		case gauge:
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
				name, m.help, name, name, promFloat(m.fn()))
		case *Histogram:
			err = writePromHistogram(w, name, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, h *Histogram) error {
	s := h.Snapshot()
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, h.help, name); err != nil {
		return err
	}
	// The underflow slot folds into the first bucket (its upper edge still
	// bounds those samples); the overflow slot is covered by +Inf.
	cum := s.Under
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(s.UpperEdge(i)), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, s.Count, name, promFloat(s.Sum), name, s.Count)
	return err
}

// promFloat renders a float the way Prometheus expects.
func promFloat(x float64) string {
	switch {
	case math.IsInf(x, 1):
		return "+Inf"
	case math.IsInf(x, -1):
		return "-Inf"
	case math.IsNaN(x):
		return "NaN"
	}
	return fmt.Sprintf("%g", x)
}

// WriteVarsJSON renders every metric as one JSON object (the expvar
// /debug/vars shape): counters and gauges as numbers, histograms as
// {lo, hi, buckets, under, over, count, sum}.
func (r *Registry) WriteVarsJSON(w io.Writer) error {
	names, metrics := r.snapshotOrder()
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, name := range names {
		sep := ",\n"
		if i == 0 {
			sep = "\n"
		}
		var err error
		switch m := metrics[name].(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "%s%q: %d", sep, name, m.Value())
		case gauge:
			_, err = fmt.Fprintf(w, "%s%q: %s", sep, name, jsonFloat(m.fn()))
		case *Histogram:
			s := m.Snapshot()
			_, err = fmt.Fprintf(w, "%s%q: {\"lo\": %s, \"hi\": %s, \"buckets\": %s, \"under\": %d, \"over\": %d, \"count\": %d, \"sum\": %s}",
				sep, name, jsonFloat(s.Lo), jsonFloat(s.Hi), jsonUints(s.Buckets),
				s.Under, s.Over, s.Count, jsonFloat(s.Sum))
		}
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n}\n")
	return err
}

// jsonFloat renders a float as a JSON value (JSON has no Inf/NaN; clamp to
// null, which consumers treat as absent).
func jsonFloat(x float64) string {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		return "null"
	}
	return fmt.Sprintf("%g", x)
}

func jsonUints(xs []uint64) string {
	out := "["
	for i, x := range xs {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%d", x)
	}
	return out + "]"
}
