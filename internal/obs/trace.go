package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// EventKind names one class of traced event. Kinds map to Chrome-trace
// phases at export: EvWindow becomes a complete ("X") slice with its model
// duration; everything else becomes an instant ("i") marker.
type EventKind uint8

const (
	// EvWindow is one sliding-window decode; Dur is its model cost in ns
	// (zero when deadline accounting is off) and Arg the defect count.
	EvWindow EventKind = iota + 1
	// EvTimeout marks a window whose model response time missed the decode
	// deadline (Eq. 4's timeout failure); Arg is the response time in ns.
	EvTimeout
	// EvDegraded marks a deadline overrun committed degraded (one layer).
	EvDegraded
	// EvShedRound marks one round erased by backpressure shedding.
	EvShedRound
	// EvShedStart / EvShedEnd bracket a backlog shedding episode; Arg is
	// the queue lag in arrival periods at the transition.
	EvShedStart
	EvShedEnd
	// EvErasedRound marks a round lost on the link past the retry budget.
	EvErasedRound
	// EvEarlyStop marks a Monte-Carlo point stopping early; Arg is the
	// trial count executed.
	EvEarlyStop
)

// String returns the event name used in trace exports.
func (k EventKind) String() string {
	switch k {
	case EvWindow:
		return "window"
	case EvTimeout:
		return "timeout"
	case EvDegraded:
		return "degraded_commit"
	case EvShedRound:
		return "shed_round"
	case EvShedStart:
		return "shed_episode_start"
	case EvShedEnd:
		return "shed_episode_end"
	case EvErasedRound:
		return "erased_round"
	case EvEarlyStop:
		return "early_stop"
	}
	return "unknown"
}

// Event is one traced occurrence on a stream's model-time axis. TS and Dur
// are model nanoseconds — never wall clock — so a fixed-seed run produces
// the same set of events at the same timestamps for any worker count.
type Event struct {
	TS   float64 // model ns since stream start
	Dur  float64 // model ns, 0 for instant events
	Arg  float64 // kind-specific payload
	TID  int32   // stream (logical qubit) id
	Kind EventKind
}

// Trace is a bounded, preallocated event buffer. Emit never allocates:
// past capacity, events are dropped and counted, so tracing a long run
// costs bounded memory and the hot path stays flat. Emission order across
// streams depends on scheduling, but export sorts on the deterministic
// (TS, TID, Kind, Arg) key, so the exported trace of a fixed-seed run is
// byte-identical for any worker count.
type Trace struct {
	mu      sync.Mutex
	events  []Event
	dropped uint64
}

// NewTrace creates a trace buffer holding at most capacity events.
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Trace{events: make([]Event, 0, capacity)}
}

// Emit records one event, dropping it (and counting the drop) when the
// buffer is full. Safe for concurrent use; never allocates.
func (t *Trace) Emit(e Event) {
	t.mu.Lock()
	if len(t.events) < cap(t.events) {
		t.events = append(t.events, e)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns the number of events dropped at capacity.
func (t *Trace) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset empties the buffer, keeping its capacity.
func (t *Trace) Reset() {
	t.mu.Lock()
	t.events = t.events[:0]
	t.dropped = 0
	t.mu.Unlock()
}

// Snapshot returns a sorted copy of the buffered events (by TS, then TID,
// Kind, Arg — a total order on distinct events of a deterministic run).
func (t *Trace) Snapshot() []Event {
	t.mu.Lock()
	out := append([]Event(nil), t.events...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Arg < b.Arg
	})
	return out
}

// WriteChrome exports the trace in Chrome trace-event JSON (the format
// chrome://tracing, Perfetto, and speedscope open directly). Model
// nanoseconds map to trace microseconds, so one displayed "µs" is one
// model ns; every event carries its stream id as tid.
func (t *Trace) WriteChrome(w io.Writer) error {
	events := t.Snapshot()
	if _, err := io.WriteString(w, "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n"); err != nil {
		return err
	}
	for i, e := range events {
		sep := ",\n"
		if i == 0 {
			sep = ""
		}
		var err error
		if e.Kind == EvWindow {
			_, err = fmt.Fprintf(w,
				"%s{\"name\": %q, \"cat\": \"afs\", \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f, \"pid\": 0, \"tid\": %d, \"args\": {\"arg\": %g}}",
				sep, e.Kind.String(), e.TS, e.Dur, e.TID, e.Arg)
		} else {
			_, err = fmt.Fprintf(w,
				"%s{\"name\": %q, \"cat\": \"afs\", \"ph\": \"i\", \"s\": \"t\", \"ts\": %.3f, \"pid\": 0, \"tid\": %d, \"args\": {\"arg\": %g}}",
				sep, e.Kind.String(), e.TS, e.TID, e.Arg)
		}
		if err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\n], \"otherData\": {\"dropped_events\": %d}}\n", t.Dropped())
	return err
}
