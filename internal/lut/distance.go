// Boundary-distance lookup tables for the weight-class triage fast paths.
//
// The syndrome-space BFS above (New) proves min-weight corrections by
// first-visit order; the same level-order argument applied to the decoding
// graph itself gives per-vertex boundary distances: a breadth-first search
// seeded at the boundary edges of one side reaches vertex v at level k iff
// the cheapest fault chain connecting v to that side has weight k. Two such
// sweeps — one from the north boundary edges (the logical cut), one from
// every other boundary edge (south, and the temporal boundary on window
// graphs) — classify each vertex by which side its nearest boundary is on,
// which is all a closed-form weight-1 decode needs to know: a lone defect
// flips the logical observable iff its unique nearest boundary is north.
// Vertices equidistant from both sides are marked SideTie and the triage
// layer punts them to the full decoder.
package lut

import (
	"sync"

	"afs/internal/lattice"
)

// Side classification of a vertex's nearest boundary.
const (
	// SideOther: the strictly nearest boundary is south or temporal, so a
	// min-weight boundary chain from here never crosses the north cut.
	SideOther uint8 = iota
	// SideNorth: the strictly nearest boundary is north; every min-weight
	// boundary chain from here crosses the north cut exactly once.
	SideNorth
	// SideTie: north and non-north boundaries are equidistant; min-weight
	// chains of both logical classes exist and closed-form rules must punt.
	SideTie
)

// Boundary holds per-vertex distance, side, and first-step tables toward
// the nearest code boundary of a decoding graph. Build cost is two BFS
// sweeps (O(V+E)); storage is three words per vertex — negligible next to
// the graph itself, so instances are cached per graph (BoundaryFor).
type Boundary struct {
	G *lattice.Graph

	// DistNorth[v] / DistOther[v]: fault weight of the cheapest chain from
	// v to the north boundary / to any non-north boundary.
	DistNorth []int32
	DistOther []int32
	// Dist[v] = min(DistNorth[v], DistOther[v]); equals
	// lattice.BoundaryDistance(v) (asserted by tests).
	Dist []int32
	// Side[v] classifies the nearest boundary (SideNorth/SideOther/SideTie).
	Side []uint8
	// Step[v] is the edge of a min-weight chain leaving v toward the
	// winning side's nearest boundary (the boundary edge itself when
	// Dist[v] == 1). Along the walk v → Other(Step[v], v) → … the winning
	// side's distance strictly decreases and — because the losing side's
	// distance can drop by at most 1 per step — every interior vertex of
	// the walk keeps the same winning side, so following Step greedily
	// materializes a valid min-weight boundary correction. For SideTie
	// vertices it stores the north chain's step; triage never walks it.
	Step []int32
}

// BoundaryFor returns the cached Boundary tables for g, building them on
// first use. Safe for concurrent use.
func BoundaryFor(g *lattice.Graph) *Boundary {
	if b, ok := boundaryCache.Load(g); ok {
		return b.(*Boundary)
	}
	b, _ := boundaryCache.LoadOrStore(g, NewBoundary(g))
	return b.(*Boundary)
}

var boundaryCache sync.Map // *lattice.Graph → *Boundary

// NewBoundary builds the distance tables for g.
func NewBoundary(g *lattice.Graph) *Boundary {
	b := &Boundary{G: g}
	var stepNorth, stepOther []int32
	b.DistNorth, stepNorth = boundaryBFS(g, true)
	b.DistOther, stepOther = boundaryBFS(g, false)
	b.Dist = make([]int32, g.V)
	b.Side = make([]uint8, g.V)
	b.Step = make([]int32, g.V)
	for v := 0; v < g.V; v++ {
		dn, do := b.DistNorth[v], b.DistOther[v]
		switch {
		case dn < do:
			b.Dist[v], b.Side[v], b.Step[v] = dn, SideNorth, stepNorth[v]
		case do < dn:
			b.Dist[v], b.Side[v], b.Step[v] = do, SideOther, stepOther[v]
		default:
			b.Dist[v], b.Side[v], b.Step[v] = dn, SideTie, stepNorth[v]
		}
	}
	return b
}

// IsNorthEdge reports whether edge e is a north-boundary edge, i.e. a
// spatial edge on a vertical k=0 data qubit — exactly the edges of the
// logical cut (lattice.NorthCutQubits).
func IsNorthEdge(g *lattice.Graph, ed *lattice.Edge) bool {
	return ed.Kind == lattice.Spatial && ed.Qubit >= 0 && ed.Qubit < int32(g.Distance)
}

// boundaryBFS runs a multi-source BFS from the boundary edges of one side
// (north if wantNorth, everything else otherwise) and returns per-vertex
// distances and parent edges. Level-order first visits make dist[v] the
// min fault weight of a chain from v to that side, mirroring the
// syndrome-space BFS min-weight argument in New.
func boundaryBFS(g *lattice.Graph, wantNorth bool) (dist, step []int32) {
	dist = make([]int32, g.V)
	step = make([]int32, g.V)
	for i := range dist {
		dist[i] = -1
		step[i] = -1
	}
	bv := g.Boundary()
	queue := make([]int32, 0, g.V)
	// Seed: boundary-incident edges of the requested side, in increasing
	// edge-index order so Step deterministically records the lowest index.
	for _, e := range g.AdjacentEdges(bv) {
		ed := &g.Edges[e]
		if IsNorthEdge(g, ed) != wantNorth {
			continue
		}
		x := ed.U
		if g.IsBoundary(x) {
			x = ed.V
		}
		if dist[x] == -1 {
			dist[x], step[x] = 1, e
			queue = append(queue, x)
		}
	}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		for _, e := range g.AdjacentEdges(x) {
			u := g.Other(e, x)
			if g.IsBoundary(u) || dist[u] != -1 {
				continue
			}
			dist[u], step[u] = dist[x]+1, e
			queue = append(queue, u)
		}
	}
	return dist, step
}

// AppendChain appends the edges of the min-weight boundary chain from v
// (following Step) to out and returns the extended slice. v must not be a
// SideTie vertex; the chain has exactly Dist[v] edges and terminates in a
// boundary edge of the winning side.
func (b *Boundary) AppendChain(v int32, out []int32) []int32 {
	g := b.G
	for x := v; ; {
		e := b.Step[x]
		out = append(out, e)
		u := g.Other(e, x)
		if g.IsBoundary(u) {
			return out
		}
		x = u
	}
}
