// Package lut implements a Lookup-Table decoder for small surface codes
// (paper §VII-A, [Tomita & Svore]; used by near-term real-time decoding
// experiments such as Lilliput [Das, Locharla, Jones]). The table is
// indexed by the syndrome bits and each entry stores a minimum-weight
// correction, so decoding is a single memory access.
//
// The decoder works on any decoding graph whose syndrome fits the table:
// the 2-D perfect-measurement problem up to d=5 (20 syndrome bits) and the
// full 3-D logical cycle at d=3 (18 bits) — exactly the regime near-term
// real-time decoding experiments live in. It exists as the natural third
// baseline beside Union-Find and MWPM, and to make the paper's scalability
// argument quantitative: a d=11 cycle would need 2^1210 entries, which is
// exactly why AFS decodes algorithmically.
//
// Table construction is a breadth-first search over syndrome space: level k
// of the BFS reaches every syndrome producible by k faults (data errors or
// measurement errors — every graph edge is a fault mechanism), so the first
// visit to a syndrome records a minimum-weight fault set producing it, i.e.
// the minimum-weight decoding.
package lut

import (
	"fmt"

	"afs/internal/lattice"
)

// MaxTableBits bounds the syndrome width the decoder will build a table
// for; 2^24 entries (16 M) is ~64 MB of int32 and a few seconds of BFS.
const MaxTableBits = 24

// Decoder is a lookup-table decoder for a small decoding graph.
type Decoder struct {
	G *lattice.Graph

	// table[s] holds, for syndrome bitmask s, one edge of a minimum-weight
	// fault set producing s, or -1 for s = 0. Decoding peels one fault at
	// a time: apply table[s], XOR its syndrome mask, repeat. Storing one
	// edge index instead of the full correction keeps the table one word
	// per entry (as a hardware table would).
	table []int32
	// masks[e] is the syndrome produced by a fault on edge e.
	masks []uint32
	// weight[s] is the minimum fault weight for syndrome s.
	weight []uint8

	correction []int32
}

// New builds the lookup table for g, which must have at most MaxTableBits
// syndrome bits (vertices).
func New(g *lattice.Graph) (*Decoder, error) {
	m := g.V
	if m > MaxTableBits {
		return nil, fmt.Errorf("lut: syndrome width %d exceeds MaxTableBits=%d (table would need 2^%d entries)",
			m, MaxTableBits, m)
	}
	d := &Decoder{G: g}
	d.masks = make([]uint32, len(g.Edges))
	for e := range g.Edges {
		ed := &g.Edges[e]
		var mask uint32
		if !g.IsBoundary(ed.U) {
			mask |= 1 << uint(ed.U)
		}
		if !g.IsBoundary(ed.V) {
			mask |= 1 << uint(ed.V)
		}
		d.masks[e] = mask
	}
	size := 1 << uint(m)
	d.table = make([]int32, size)
	d.weight = make([]uint8, size)
	for i := range d.table {
		d.table[i] = -2 // unvisited
	}
	d.table[0] = -1
	// BFS over syndrome space: each level applies one more fault.
	frontier := []uint32{0}
	var next []uint32
	for level := uint8(1); len(frontier) > 0; level++ {
		next = next[:0]
		for _, s := range frontier {
			for e, mask := range d.masks {
				ns := s ^ mask
				if d.table[ns] == -2 {
					d.table[ns] = int32(e)
					d.weight[ns] = level
					next = append(next, ns)
				}
			}
		}
		frontier, next = next, frontier
	}
	return d, nil
}

// TableEntries returns the number of table entries, 2^V.
func (d *Decoder) TableEntries() int { return len(d.table) }

// TableBytes returns the storage a hardware table would need: one
// edge-index word of ceil(log2 E) bits per entry. This is the quantity
// that explodes with distance.
func (d *Decoder) TableBytes() int64 {
	w := bitsFor(len(d.G.Edges))
	return int64(len(d.table)) * int64(w) / 8
}

func bitsFor(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}

// MinWeight returns the minimum fault weight producing the given syndrome
// bitmask.
func (d *Decoder) MinWeight(s uint32) int { return int(d.weight[s]) }

// Decode looks up the correction for the given defects and returns it as
// edge indices into G.Edges. The returned slice is reused by the next call.
func (d *Decoder) Decode(defects []int32) []int32 {
	d.correction = d.correction[:0]
	var s uint32
	for _, v := range defects {
		s |= 1 << uint(v)
	}
	for s != 0 {
		e := d.table[s]
		if e < 0 {
			// Unreachable for any valid syndrome: BFS covers the whole
			// image of the fault map, and defects outside it indicate a
			// caller bug.
			panic(fmt.Sprintf("lut: syndrome %b not in table image", s))
		}
		d.correction = append(d.correction, e)
		s ^= d.masks[e]
	}
	return d.correction
}

// SyndromeMask returns the syndrome bitmask produced by a fault on edge e.
func (d *Decoder) SyndromeMask(e int) uint32 { return d.masks[e] }
