package lut_test

import (
	"testing"

	"afs/internal/lattice"
	"afs/internal/lut"
)

func distGraphs() []*lattice.Graph {
	return []*lattice.Graph{
		lattice.New2D(3), lattice.New2D(5), lattice.New2D(7),
		lattice.New3D(3, 3), lattice.New3D(5, 5),
		lattice.New3DWindow(3, 3), lattice.New3DWindow(5, 5),
	}
}

// The BFS distances must agree with the lattice's closed-form boundary
// distances on every graph flavor.
func TestBoundaryDistMatchesLattice(t *testing.T) {
	for _, g := range distGraphs() {
		b := lut.NewBoundary(g)
		for v := int32(0); v < int32(g.V); v++ {
			if got, want := int(b.Dist[v]), g.BoundaryDistance(v); got != want {
				t.Fatalf("%v: Dist[%d] = %d, BoundaryDistance = %d", g, v, got, want)
			}
			if min := min32(b.DistNorth[v], b.DistOther[v]); min != b.Dist[v] {
				t.Fatalf("%v: Dist[%d] = %d != min(north %d, other %d)",
					g, v, b.Dist[v], b.DistNorth[v], b.DistOther[v])
			}
		}
	}
}

// On closed graphs the north and south distances are r+1 and d-1-r, which
// never tie for odd d; window graphs may tie against the temporal boundary.
func TestBoundarySides(t *testing.T) {
	for _, g := range distGraphs() {
		b := lut.NewBoundary(g)
		for v := int32(0); v < int32(g.V); v++ {
			r, _, _ := g.VertexCoords(v)
			if dn := int32(r + 1); b.DistNorth[v] != dn {
				t.Fatalf("%v: DistNorth[%d] = %d, want %d", g, v, b.DistNorth[v], dn)
			}
			if !g.TimeBoundary {
				if ds := int32(g.Distance - 1 - r); b.DistOther[v] != ds {
					t.Fatalf("%v: DistOther[%d] = %d, want %d", g, v, b.DistOther[v], ds)
				}
				if b.Side[v] == lut.SideTie {
					t.Fatalf("%v: unexpected tie at vertex %d on a closed graph", g, v)
				}
			}
			want := lut.SideTie
			switch {
			case b.DistNorth[v] < b.DistOther[v]:
				want = lut.SideNorth
			case b.DistOther[v] < b.DistNorth[v]:
				want = lut.SideOther
			}
			if b.Side[v] != want {
				t.Fatalf("%v: Side[%d] = %d, want %d", g, v, b.Side[v], want)
			}
		}
	}
}

// AppendChain must produce a chain of exactly Dist[v] edges whose syndrome
// is {v} and whose single boundary edge sits on the winning side.
func TestBoundaryChains(t *testing.T) {
	for _, g := range distGraphs() {
		b := lut.NewBoundary(g)
		par := make(map[int32]int)
		for v := int32(0); v < int32(g.V); v++ {
			if b.Side[v] == lut.SideTie {
				continue
			}
			chain := b.AppendChain(v, nil)
			if len(chain) != int(b.Dist[v]) {
				t.Fatalf("%v: chain from %d has %d edges, want %d", g, v, len(chain), b.Dist[v])
			}
			clear(par)
			boundaryEdges := 0
			for _, e := range chain {
				ed := &g.Edges[e]
				for _, x := range []int32{ed.U, ed.V} {
					if g.IsBoundary(x) {
						boundaryEdges++
					} else {
						par[x] ^= 1
					}
				}
				if north := lut.IsNorthEdge(g, ed); g.IsBoundary(ed.U) || g.IsBoundary(ed.V) {
					if north != (b.Side[v] == lut.SideNorth) {
						t.Fatalf("%v: chain from %d exits north=%v, side=%d", g, v, north, b.Side[v])
					}
				}
			}
			if boundaryEdges != 1 {
				t.Fatalf("%v: chain from %d uses %d boundary edges", g, v, boundaryEdges)
			}
			odd := 0
			for x, p := range par {
				if p == 1 {
					odd++
					if x != v {
						t.Fatalf("%v: chain from %d has stray defect at %d", g, v, x)
					}
				}
			}
			if odd != 1 {
				t.Fatalf("%v: chain from %d produces syndrome of weight %d", g, v, odd)
			}
		}
	}
}

func TestBoundaryForCached(t *testing.T) {
	g := lattice.New2D(3)
	if lut.BoundaryFor(g) != lut.BoundaryFor(g) {
		t.Fatal("BoundaryFor did not cache per graph")
	}
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
