package lut_test

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"afs/internal/core"
	"afs/internal/lattice"
	"afs/internal/lut"
	"afs/internal/mwpm"
	"afs/internal/noise"
)

func TestTableDimensions(t *testing.T) {
	g := lattice.New2D(3)
	d, err := lut.New(g)
	if err != nil {
		t.Fatal(err)
	}
	if d.TableEntries() != 64 { // 2^(3*2)
		t.Fatalf("d=3 table entries = %d, want 64", d.TableEntries())
	}
	if d.TableBytes() <= 0 {
		t.Fatalf("table bytes = %d", d.TableBytes())
	}
}

func TestRejectsLargeGraphs(t *testing.T) {
	if _, err := lut.New(lattice.New2D(7)); err == nil {
		t.Fatal("d=7 (42 syndrome bits) accepted — the scalability wall should reject it")
	}
	if _, err := lut.New(lattice.New3D(5, 5)); err == nil {
		t.Fatal("d=5 cycle (100 syndrome bits) accepted")
	}
}

// TestThreeDimensionalD3: the full distance-3 logical cycle fits in an
// 18-bit table — the regime real-time LUT experiments (Lilliput) target.
// Every syndrome must decode validly, and single faults of either kind
// (data or measurement) must be corrected without logical error.
func TestThreeDimensionalD3(t *testing.T) {
	g := lattice.New3D(3, 3)
	dec, err := lut.New(g)
	if err != nil {
		t.Fatal(err)
	}
	if dec.TableEntries() != 1<<18 {
		t.Fatalf("table entries = %d, want 2^18", dec.TableEntries())
	}
	cut := g.NorthCutQubits()
	for e := int32(0); e < int32(len(g.Edges)); e++ {
		defects := core.SyndromeOf(g, []int32{e})
		corr := dec.Decode(defects)
		if !reflect.DeepEqual(core.SyndromeOf(g, corr), defects) {
			t.Fatalf("3-D fault %d: invalid correction", e)
		}
		residual := noise.NewBitset(g.NumDataQubits())
		for _, f := range append(corr, e) {
			if g.Edges[f].Kind == lattice.Spatial {
				residual.Flip(int(g.Edges[f].Qubit))
			}
		}
		if residual.Parity(cut) {
			t.Fatalf("3-D single fault %d caused a logical error", e)
		}
	}
	// Random syndromes decode validly.
	s := noise.NewSampler(g, 0.05, 3, 9)
	var trial noise.Trial
	for i := 0; i < 500; i++ {
		s.Sample(&trial)
		corr := dec.Decode(trial.Defects)
		got := core.SyndromeOf(g, corr)
		if len(got) == 0 && len(trial.Defects) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, trial.Defects) {
			t.Fatal("3-D random syndrome: invalid correction")
		}
	}
}

// TestThreeDimensionalMatchesMWPMWeight: on the d=3 cycle graph the LUT's
// minimum fault weight must equal the MWPM decoder's matching cost.
func TestThreeDimensionalMatchesMWPMWeight(t *testing.T) {
	g := lattice.New3D(3, 3)
	lutDec, err := lut.New(g)
	if err != nil {
		t.Fatal(err)
	}
	mwpmDec := mwpm.NewDecoder(g)
	s := noise.NewSampler(g, 0.03, 5, 11)
	var trial noise.Trial
	for i := 0; i < 400; i++ {
		s.Sample(&trial)
		wl := len(lutDec.Decode(trial.Defects))
		wm := len(mwpmDec.Decode(trial.Defects))
		if wl != wm {
			t.Fatalf("weights differ on 3-D syndrome: LUT %d vs MWPM %d (defects %v)",
				wl, wm, trial.Defects)
		}
	}
}

func TestDecodeReproducesSyndrome(t *testing.T) {
	for _, dist := range []int{3, 4, 5} {
		g := lattice.New2D(dist)
		dec, err := lut.New(g)
		if err != nil {
			t.Fatal(err)
		}
		s := noise.NewSampler(g, 0.05, uint64(dist), 2)
		var trial noise.Trial
		for i := 0; i < 300; i++ {
			s.Sample(&trial)
			corr := dec.Decode(trial.Defects)
			got := core.SyndromeOf(g, corr)
			if len(got) == 0 && len(trial.Defects) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, trial.Defects) {
				t.Fatalf("d=%d: syndrome mismatch: got %v want %v", dist, got, trial.Defects)
			}
		}
	}
}

// TestMinimumWeightAgreesWithMWPM: both decoders produce minimum-weight
// corrections, so their correction weights must be identical on every
// syndrome.
func TestMinimumWeightAgreesWithMWPM(t *testing.T) {
	g := lattice.New2D(4)
	lutDec, err := lut.New(g)
	if err != nil {
		t.Fatal(err)
	}
	mwpmDec := mwpm.NewDecoder(g)
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 500; trial++ {
		// Random error pattern; derive its syndrome.
		var edges []int32
		for q := 0; q < g.NumDataQubits(); q++ {
			if rng.Float64() < 0.1 {
				edges = append(edges, g.SpatialEdge(int32(q), 0))
			}
		}
		defects := core.SyndromeOf(g, edges)
		wl := len(lutDec.Decode(defects))
		wm := len(mwpmDec.Decode(defects))
		if wl != wm {
			t.Fatalf("correction weights differ: LUT %d vs MWPM %d (defects %v)", wl, wm, defects)
		}
		if wl != lutDec.MinWeight(maskOf(defects)) {
			t.Fatalf("decode weight %d != table weight %d", wl, lutDec.MinWeight(maskOf(defects)))
		}
	}
}

func maskOf(defects []int32) uint32 {
	var s uint32
	for _, v := range defects {
		s |= 1 << uint(v)
	}
	return s
}

// TestEveryTableEntryValid: for every possible syndrome of the d=3 code,
// decoding must terminate and reproduce it (the table is total).
func TestEveryTableEntryValid(t *testing.T) {
	g := lattice.New2D(3)
	dec, err := lut.New(g)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < dec.TableEntries(); s++ {
		var defects []int32
		for v := 0; v < g.V; v++ {
			if s&(1<<uint(v)) != 0 {
				defects = append(defects, int32(v))
			}
		}
		corr := dec.Decode(defects)
		got := core.SyndromeOf(g, corr)
		if len(got) == 0 && len(defects) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, defects) {
			t.Fatalf("syndrome %b: decode invalid", s)
		}
		if len(corr) != dec.MinWeight(uint32(s)) {
			t.Fatalf("syndrome %b: weight %d, table says %d", s, len(corr), dec.MinWeight(uint32(s)))
		}
	}
}

func TestSingleErrorsCorrectedExactly(t *testing.T) {
	g := lattice.New2D(5)
	dec, err := lut.New(g)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < g.NumDataQubits(); q++ {
		e := g.SpatialEdge(int32(q), 0)
		defects := core.SyndromeOf(g, []int32{e})
		corr := dec.Decode(defects)
		if len(defects) > 0 && len(corr) != 1 {
			t.Fatalf("single error on qubit %d corrected with %d edges", q, len(corr))
		}
	}
}

// TestScalingWall documents the exponential storage growth that rules LUT
// decoders out at AFS scales (the paper's scalability argument).
func TestScalingWall(t *testing.T) {
	g3 := lattice.New2D(3)
	d3, _ := lut.New(g3)
	g4 := lattice.New2D(4)
	d4, _ := lut.New(g4)
	if d4.TableBytes() <= d3.TableBytes()*10 {
		t.Fatalf("expected explosive growth: d=3 %d B, d=4 %d B",
			d3.TableBytes(), d4.TableBytes())
	}
}

func BenchmarkDecodeLUT(b *testing.B) {
	g := lattice.New3D(3, 3)
	dec, err := lut.New(g)
	if err != nil {
		b.Fatal(err)
	}
	s := noise.NewSampler(g, 1e-2, 3, 1)
	var trial noise.Trial
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(&trial)
		dec.Decode(trial.Defects)
	}
}
