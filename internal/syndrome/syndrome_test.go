package syndrome

import (
	"testing"
	"testing/quick"

	"afs/internal/lattice"
	"afs/internal/noise"
)

func TestLayoutPositions(t *testing.T) {
	for _, d := range []int{2, 3, 5, 11} {
		l := NewLayout(d)
		if l.BitsPerType != d*(d-1) {
			t.Fatalf("d=%d: bits per type = %d, want %d", d, l.BitsPerType, d*(d-1))
		}
		if l.CombinedBits() != 2*d*(d-1) {
			t.Fatalf("d=%d: combined bits wrong", d)
		}
		seen := map[[2]int]bool{}
		for bit := 0; bit < l.CombinedBits(); bit++ {
			i, j := l.GridPos(bit)
			if i < 0 || j < 0 || i > 2*d-2 || j > 2*d-2 {
				t.Fatalf("bit %d at (%d,%d) outside grid", bit, i, j)
			}
			if (i+j)%2 == 0 {
				t.Fatalf("bit %d at (%d,%d) on a data-qubit cell", bit, i, j)
			}
			if seen[[2]int{i, j}] {
				t.Fatalf("two bits at grid (%d,%d)", i, j)
			}
			seen[[2]int{i, j}] = true
		}
	}
}

func TestZBitXBitDisjointAndComplete(t *testing.T) {
	d := 5
	l := NewLayout(d)
	used := make([]bool, l.CombinedBits())
	for r := 0; r < d-1; r++ {
		for c := 0; c < d; c++ {
			b := l.ZBit(r, c)
			if used[b] {
				t.Fatalf("ZBit(%d,%d) duplicates", r, c)
			}
			used[b] = true
			if i, j := l.GridPos(b); i != 2*r+1 || j != 2*c {
				t.Fatalf("ZBit(%d,%d) at (%d,%d)", r, c, i, j)
			}
		}
	}
	for a := 0; a < d; a++ {
		for b2 := 0; b2 < d-1; b2++ {
			b := l.XBit(a, b2)
			if used[b] {
				t.Fatalf("XBit(%d,%d) duplicates", a, b2)
			}
			used[b] = true
			if i, j := l.GridPos(b); i != 2*a || j != 2*b2+1 {
				t.Fatalf("XBit(%d,%d) at (%d,%d)", a, b2, i, j)
			}
		}
	}
	for b, u := range used {
		if !u {
			t.Fatalf("bit %d unused", b)
		}
	}
}

func TestGeoOrderIsPermutation(t *testing.T) {
	f := func(dRaw, tileRaw uint8) bool {
		d := 3 + int(dRaw)%9
		tile := 1 + int(tileRaw)%6
		l := NewLayout(d)
		perm := l.GeoOrder(tile)
		seen := make([]bool, len(perm))
		for _, p := range perm {
			if p < 0 || p >= len(perm) || seen[p] {
				return false
			}
			seen[p] = true
		}
		return len(perm) == l.CombinedBits()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGeoOrderGroupsTiles(t *testing.T) {
	d := 7
	l := NewLayout(d)
	tile := 4
	perm := l.GeoOrder(tile)
	// Walk bits in geo order; their tile ids must be non-decreasing.
	order := make([]int, len(perm))
	for bit, pos := range perm {
		order[pos] = bit
	}
	side := 2*d - 1
	ntx := (side + tile - 1) / tile
	prev := -1
	for _, bit := range order {
		i, j := l.GridPos(bit)
		tl := (i/tile)*ntx + j/tile
		if tl < prev {
			t.Fatalf("geo order visits tile %d after tile %d", tl, prev)
		}
		prev = tl
	}
}

func TestRoundFrames(t *testing.T) {
	g := lattice.New3D(5, 5)
	per := g.LayerVertices()
	defects := []int32{
		int32(3),               // layer 0
		int32(per + 1),         // layer 1
		int32(per*4 + per - 1), // layer 4, last ancilla
	}
	frames := RoundFrames(g, defects, nil)
	if len(frames) != 5 {
		t.Fatalf("frames = %d, want 5", len(frames))
	}
	if !frames[0].Get(3) || frames[0].PopCount() != 1 {
		t.Fatal("layer 0 frame wrong")
	}
	if !frames[1].Get(1) || frames[1].PopCount() != 1 {
		t.Fatal("layer 1 frame wrong")
	}
	if !frames[4].Get(per-1) || frames[4].PopCount() != 1 {
		t.Fatal("layer 4 frame wrong")
	}
	if frames[2].PopCount() != 0 || frames[3].PopCount() != 0 {
		t.Fatal("empty layers not empty")
	}
	// Reuse must clear previous contents.
	frames = RoundFrames(g, nil, frames)
	for i := range frames {
		if frames[i].PopCount() != 0 {
			t.Fatalf("reused frame %d not cleared", i)
		}
	}
}

func TestRoundFramesTotalWeight(t *testing.T) {
	g := lattice.New3D(7, 7)
	s := noise.NewSampler(g, 0.01, 5, 6)
	var trial noise.Trial
	var frames []noise.Bitset
	for i := 0; i < 200; i++ {
		s.Sample(&trial)
		frames = RoundFrames(g, trial.Defects, frames)
		total := 0
		for _, f := range frames {
			total += Weight(f)
		}
		if total != len(trial.Defects) {
			t.Fatalf("frame weights sum to %d, want %d", total, len(trial.Defects))
		}
	}
}

func TestCombine(t *testing.T) {
	d := 5
	l := NewLayout(d)
	z := noise.NewBitset(l.BitsPerType)
	x := noise.NewBitset(l.BitsPerType)
	z.Set(2)
	x.Set(7)
	var out noise.Bitset
	Combine(l, z, x, &out)
	if out.Len() != l.CombinedBits() || out.PopCount() != 2 {
		t.Fatalf("combined frame wrong: len %d popcount %d", out.Len(), out.PopCount())
	}
	if !out.Get(2) || !out.Get(l.BitsPerType+7) {
		t.Fatal("combined bit positions wrong")
	}
}

func TestCombineSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched frames did not panic")
		}
	}()
	l := NewLayout(5)
	z := noise.NewBitset(3)
	x := noise.NewBitset(l.BitsPerType)
	var out noise.Bitset
	Combine(l, z, x, &out)
}
