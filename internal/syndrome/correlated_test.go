package syndrome

import (
	"testing"

	"afs/internal/noise"
)

func TestCorrelatedSamplerZeroNoise(t *testing.T) {
	l := NewLayout(5)
	s := NewCorrelatedSampler(l, 0, 0, 0, 0, 1, 1)
	var f noise.Bitset
	for i := 0; i < 20; i++ {
		s.SampleRound(&f)
		if f.PopCount() != 0 {
			t.Fatal("zero noise produced detection events")
		}
	}
}

func TestCorrelatedYErrorQuadruple(t *testing.T) {
	l := NewLayout(5)
	s := NewCorrelatedSampler(l, 0, 0, 0, 0, 1, 1)
	var f noise.Bitset
	f.Resize(l.CombinedBits())
	// Interior vertical qubit q = k*d + c with k=2, c=2 (grid (4,4)).
	s.toggleDataFault(&f, 2*5+2, true, true)
	want := []int{l.ZBit(1, 2), l.ZBit(2, 2), l.XBit(2, 1), l.XBit(2, 2)}
	if f.PopCount() != 4 {
		t.Fatalf("Y error lit %d bits, want 4", f.PopCount())
	}
	for _, b := range want {
		if !f.Get(b) {
			t.Fatalf("expected bit %d set", b)
		}
	}
}

func TestCorrelatedBoundaryFaults(t *testing.T) {
	l := NewLayout(3)
	s := NewCorrelatedSampler(l, 0, 0, 0, 0, 1, 1)
	var f noise.Bitset
	f.Resize(l.CombinedBits())
	// Vertical qubit at k=0 (north boundary): X component lights only one
	// Z ancilla.
	s.toggleDataFault(&f, 0*3+1, true, false)
	if f.PopCount() != 1 || !f.Get(l.ZBit(0, 1)) {
		t.Fatalf("boundary X fault wrong: %d bits", f.PopCount())
	}
	f.Clear()
	// Horizontal qubit always lights two of each selected type.
	s.toggleDataFault(&f, 9+0, true, true) // r=0, h=0
	if f.PopCount() != 4 {
		t.Fatalf("horizontal Y fault lit %d bits, want 4", f.PopCount())
	}
}

// TestCorrelatedMeasurementErrorCarriesOver: a flipped measurement toggles
// the detection event of its round AND the next, so with only measurement
// noise every bit's total detection count over a flushed stream is even.
func TestCorrelatedMeasurementErrorCarriesOver(t *testing.T) {
	l := NewLayout(3)
	s := NewCorrelatedSampler(l, 0, 0, 0, 0.2, 11, 5)
	counts := make([]int, l.CombinedBits())
	var f noise.Bitset
	total := 0
	for i := 0; i < 400; i++ {
		s.SampleRound(&f)
		f.ForEachSet(func(b int) { counts[b]++; total++ })
	}
	// Flush pending carryovers with one noiseless round.
	s.PM = 0
	s.SampleRound(&f)
	f.ForEachSet(func(b int) { counts[b]++; total++ })
	if total == 0 {
		t.Fatal("no measurement errors sampled at PM=0.2")
	}
	for b, c := range counts {
		if c%2 != 0 {
			t.Fatalf("bit %d saw %d detection events; measurement errors must pair up", b, c)
		}
	}
}

func TestCorrelatedInvalidProbabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=1.5 accepted")
		}
	}()
	NewCorrelatedSampler(NewLayout(3), 1.5, 0, 0, 0, 1, 1)
}
