package syndrome

import (
	"math/rand/v2"

	"afs/internal/noise"
)

// CorrelatedSampler samples per-round combined syndrome frames under a
// Pauli noise model with correlated X/Z components: each data qubit
// suffers, per round, an X error with probability PX, a Z error with
// probability PZ, and a Y error — simultaneous X and Z — with probability
// PY; each syndrome bit is flipped with probability PM to model measurement
// errors.
//
// The phenomenological model the accuracy studies use treats the two error
// types independently (they are decoded independently), but the *syndrome
// traffic* they generate is correlated whenever Y errors occur: a Y error
// lights up two Z-type and two X-type ancillas in the same lattice
// neighborhood (paper Fig. 2c). Geometry-based compression is designed
// around exactly this correlation (§VI-C3), so evaluating it honestly
// requires a sampler that produces it.
type CorrelatedSampler struct {
	Layout         *Layout
	PX, PZ, PY, PM float64

	rng *rand.Rand
	// pending holds measurement-error carryovers into the next round:
	// a flipped measurement toggles the detection event of round t and of
	// round t+1.
	pending []int
}

// NewCorrelatedSampler builds a sampler for the layout with the given fault
// probabilities. Seeds make the stream reproducible.
func NewCorrelatedSampler(l *Layout, pX, pZ, pY, pM float64, seed1, seed2 uint64) *CorrelatedSampler {
	for _, p := range []float64{pX, pZ, pY, pM} {
		if p < 0 || p >= 1 {
			panic("syndrome: fault probabilities must be in [0,1)")
		}
	}
	return &CorrelatedSampler{
		Layout: l,
		PX:     pX, PZ: pZ, PY: pY, PM: pM,
		rng: rand.New(rand.NewPCG(seed1, seed2^0xc0441)),
	}
}

// Reset discards measurement-error carryover (start of a fresh cycle).
func (s *CorrelatedSampler) Reset() { s.pending = s.pending[:0] }

// SampleRound writes one round's combined detection-event frame into out.
func (s *CorrelatedSampler) SampleRound(out *noise.Bitset) {
	l := s.Layout
	out.Resize(l.CombinedBits())
	out.Clear()

	// Carryover from last round's measurement errors.
	for _, bit := range s.pending {
		out.Flip(bit)
	}
	s.pending = s.pending[:0]

	d := l.D
	// Data-qubit faults. Enumerate data qubits on the (2d-1)x(2d-1) grid:
	// vertical-type at (2k, 2c) and horizontal-type at (2r+1, 2h+1).
	nVert := d * d
	nHorz := (d - 1) * (d - 1)
	sampleType := func(p float64, flipX, flipZ bool) {
		if p <= 0 {
			return
		}
		noise.SparseBernoulli(s.rng, nVert+nHorz, p, func(q int) {
			s.toggleDataFault(out, q, flipX, flipZ)
		})
	}
	sampleType(s.PX, true, false) // X errors flip Z-type ancillas
	sampleType(s.PZ, false, true) // Z errors flip X-type ancillas
	sampleType(s.PY, true, true)  // Y errors flip both (the correlation)

	// Measurement errors: flip a syndrome bit this round and carry the
	// toggle into the next round's difference.
	if s.PM > 0 {
		noise.SparseBernoulli(s.rng, l.CombinedBits(), s.PM, func(bit int) {
			out.Flip(bit)
			s.pending = append(s.pending, bit)
		})
	}
}

// toggleDataFault toggles the detection events adjacent to data qubit q.
// flipX selects the Z-ancilla (X-error) component, flipZ the X-ancilla
// (Z-error) component.
func (s *CorrelatedSampler) toggleDataFault(out *noise.Bitset, q int, flipX, flipZ bool) {
	l := s.Layout
	d := l.D
	nVert := d * d
	if q < nVert {
		// Vertical-type data qubit at grid (2k, 2c): Z-ancilla neighbors
		// at rows k-1 and k in column c; X-ancilla neighbors at (k, c-1)
		// and (k, c) in X coordinates.
		k, c := q/d, q%d
		if flipX {
			if k > 0 {
				out.Flip(l.ZBit(k-1, c))
			}
			if k < d-1 {
				out.Flip(l.ZBit(k, c))
			}
		}
		if flipZ {
			if c > 0 {
				out.Flip(l.XBit(k, c-1))
			}
			if c < d-1 {
				out.Flip(l.XBit(k, c))
			}
		}
		return
	}
	// Horizontal-type data qubit at grid (2r+1, 2h+1): Z-ancilla neighbors
	// at columns h and h+1 in row r; X-ancilla neighbors at rows r and r+1
	// in X-column h.
	q -= nVert
	r, h := q/(d-1), q%(d-1)
	if flipX {
		out.Flip(l.ZBit(r, h))
		out.Flip(l.ZBit(r, h+1))
	}
	if flipZ {
		out.Flip(l.XBit(r, h))
		out.Flip(l.XBit(r+1, h))
	}
}
