// Package syndrome handles the representation of syndrome data as it is
// transmitted from the quantum substrate to the decoders: per-round frames
// of detection-event bits for both ancilla types, and the lattice-aware bit
// orderings that the geometry-based compression scheme (paper §VI-C3)
// relies on.
//
// A distance-d surface code has d(d-1) Z-type ancillas (whose measurements
// detect X errors) and d(d-1) X-type ancillas (detecting Z errors), so one
// round of syndrome extraction produces 2d(d-1) bits per logical qubit —
// the quantity behind the paper's bandwidth analysis (§VI-A).
package syndrome

import (
	"sort"

	"afs/internal/lattice"
	"afs/internal/noise"
)

// Layout describes the canonical transmission order of one round of
// syndrome bits for a distance-d logical qubit: the d(d-1) Z-ancilla bits
// (row-major, r*d+c) followed by the d(d-1) X-ancilla bits (row-major,
// a*(d-1)+b). It also knows each bit's physical position on the
// (2d-1)x(2d-1) qubit grid, which geometry-based compression exploits.
type Layout struct {
	D int
	// BitsPerType is d(d-1).
	BitsPerType int
	// gridI, gridJ give the grid coordinates of each combined bit.
	gridI, gridJ []int16
}

// NewLayout builds the layout for distance d.
func NewLayout(d int) *Layout {
	if d < 2 {
		panic("syndrome: distance must be >= 2")
	}
	n := d * (d - 1)
	l := &Layout{D: d, BitsPerType: n,
		gridI: make([]int16, 2*n), gridJ: make([]int16, 2*n)}
	// Z-type ancillas sit at grid (2r+1, 2c), r in 0..d-2, c in 0..d-1.
	for r := 0; r < d-1; r++ {
		for c := 0; c < d; c++ {
			bit := r*d + c
			l.gridI[bit] = int16(2*r + 1)
			l.gridJ[bit] = int16(2 * c)
		}
	}
	// X-type ancillas sit at grid (2a, 2b+1), a in 0..d-1, b in 0..d-2.
	for a := 0; a < d; a++ {
		for b := 0; b < d-1; b++ {
			bit := n + a*(d-1) + b
			l.gridI[bit] = int16(2 * a)
			l.gridJ[bit] = int16(2*b + 1)
		}
	}
	return l
}

// CombinedBits returns the number of bits in one combined round frame,
// 2d(d-1).
func (l *Layout) CombinedBits() int { return 2 * l.BitsPerType }

// ZBit returns the combined-frame index of the Z-ancilla at (r, c).
func (l *Layout) ZBit(r, c int) int { return r*l.D + c }

// XBit returns the combined-frame index of the X-ancilla at (a, b).
func (l *Layout) XBit(a, b int) int { return l.BitsPerType + a*(l.D-1) + b }

// GridPos returns the (i, j) position of combined bit `bit` on the
// (2d-1)x(2d-1) qubit grid.
func (l *Layout) GridPos(bit int) (i, j int) {
	return int(l.gridI[bit]), int(l.gridJ[bit])
}

// GeoOrder returns a permutation perm such that perm[bit] is the position
// of combined bit `bit` in the geometry-aware ordering: the qubit grid is
// partitioned into tileSize x tileSize tiles and bits are ordered tile by
// tile. Neighboring ancillas — which light up together when a single data
// qubit fails, including the X/Z pairs produced by Y errors — land in the
// same tile and therefore in the same compression block.
func (l *Layout) GeoOrder(tileSize int) []int {
	if tileSize < 1 {
		panic("syndrome: tile size must be >= 1")
	}
	side := 2*l.D - 1
	ntiles := (side + tileSize - 1) / tileSize
	n := l.CombinedBits()
	keys := make([]geoKey, n)
	for bit := 0; bit < n; bit++ {
		i, j := l.GridPos(bit)
		keys[bit] = geoKey{(i/tileSize)*ntiles + j/tileSize, i, j, bit}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].less(keys[b]) })
	perm := make([]int, n)
	for pos, k := range keys {
		perm[k.bit] = pos
	}
	return perm
}

type geoKey struct{ tile, i, j, bit int }

func (a geoKey) less(b geoKey) bool {
	if a.tile != b.tile {
		return a.tile < b.tile
	}
	if a.i != b.i {
		return a.i < b.i
	}
	return a.j < b.j
}

// RoundFrames splits the detection events of one error type into per-round
// frames of d(d-1) bits each. defects must be sorted (as produced by
// noise.Sampler.Sample). The frames slice is reused when capacities allow.
func RoundFrames(g *lattice.Graph, defects []int32, frames []noise.Bitset) []noise.Bitset {
	per := g.LayerVertices()
	if cap(frames) < g.Rounds {
		frames = make([]noise.Bitset, g.Rounds)
	}
	frames = frames[:g.Rounds]
	for t := range frames {
		frames[t].Resize(per)
		frames[t].Clear()
	}
	for _, v := range defects {
		t := int(v) / per
		frames[t].Set(int(v) % per)
	}
	return frames
}

// Combine merges one round's Z-ancilla frame (X-error detection events) and
// X-ancilla frame into a single 2d(d-1)-bit frame in the canonical layout
// order. The two input frames must each have d(d-1) bits.
func Combine(l *Layout, zFrame, xFrame noise.Bitset, out *noise.Bitset) {
	n := l.BitsPerType
	if zFrame.Len() != n || xFrame.Len() != n {
		panic("syndrome: frame size mismatch")
	}
	out.Resize(2 * n)
	out.Clear()
	for b := 0; b < n; b++ {
		if zFrame.Get(b) {
			out.Set(b)
		}
		if xFrame.Get(b) {
			out.Set(n + b)
		}
	}
}

// Weight returns the number of non-trivial bits in frame.
func Weight(frame noise.Bitset) int { return frame.PopCount() }
