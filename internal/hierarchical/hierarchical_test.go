package hierarchical

import (
	"reflect"
	"testing"

	"afs/internal/core"
	"afs/internal/lattice"
	"afs/internal/montecarlo"
	"afs/internal/noise"
)

func newUF(g *lattice.Graph) *core.Decoder { return core.NewDecoder(g, core.Options{}) }

func TestSingleFaultSyndromesAreOffloaded(t *testing.T) {
	g := lattice.New3D(5, 5)
	dec := New(g, newUF(g))
	for e := int32(0); e < int32(len(g.Edges)); e++ {
		defects := core.SyndromeOf(g, []int32{e})
		corr := dec.Decode(defects)
		if len(defects) > 0 && len(corr) != 1 {
			t.Fatalf("single fault %d decoded with %d edges", e, len(corr))
		}
		got := core.SyndromeOf(g, corr)
		if len(got) == 0 && len(defects) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, defects) {
			t.Fatalf("single fault %d: invalid local correction", e)
		}
	}
	if dec.Stats.FellBack != 0 {
		t.Fatalf("single-fault syndromes fell back %d times", dec.Stats.FellBack)
	}
}

func TestHardSyndromesFallBack(t *testing.T) {
	g := lattice.New2D(7)
	dec := New(g, newUF(g))
	// Three defects in a row: the middle one has two defect neighbors.
	defects := []int32{g.VertexID(2, 2, 0), g.VertexID(2, 3, 0), g.VertexID(2, 4, 0)}
	corr := dec.Decode(defects)
	if dec.Stats.FellBack != 1 {
		t.Fatalf("chain syndrome should fall back: %+v", dec.Stats)
	}
	if !reflect.DeepEqual(core.SyndromeOf(g, corr), defects) {
		t.Fatal("fallback correction invalid")
	}
	// A lone defect in the bulk (its partner's event was lost to a
	// measurement error two rounds away) is also hard.
	g3 := lattice.New3D(7, 7)
	dec3 := New(g3, newUF(g3))
	lone := []int32{g3.VertexID(3, 3, 3)}
	corr3 := dec3.Decode(lone)
	if dec3.Stats.FellBack != 1 {
		t.Fatal("isolated bulk defect should fall back")
	}
	if !reflect.DeepEqual(core.SyndromeOf(g3, corr3), lone) {
		t.Fatal("fallback correction invalid for lone defect")
	}
}

func TestAlwaysValidOnRandomSyndromes(t *testing.T) {
	g := lattice.New3D(5, 5)
	dec := New(g, newUF(g))
	s := noise.NewSampler(g, 0.02, 9, 9)
	var trial noise.Trial
	for i := 0; i < 2000; i++ {
		s.Sample(&trial)
		corr := dec.Decode(trial.Defects)
		got := core.SyndromeOf(g, corr)
		if len(got) == 0 && len(trial.Defects) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, trial.Defects) {
			t.Fatalf("invalid correction (offloaded=%v)", dec.Stats.FellBack == 0)
		}
	}
	if dec.Stats.Offloaded == 0 || dec.Stats.FellBack == 0 {
		t.Fatalf("expected both paths exercised: %+v", dec.Stats)
	}
}

// TestOffloadEconomics: at the paper's design point most syndromes must be
// absorbed by the first stage — that is the premise of hierarchical
// decoding.
func TestOffloadEconomics(t *testing.T) {
	g := lattice.New3D(11, 11)
	dec := New(g, newUF(g))
	s := noise.NewSampler(g, 1e-3, 13, 13)
	var trial noise.Trial
	for i := 0; i < 20000; i++ {
		s.Sample(&trial)
		dec.Decode(trial.Defects)
	}
	frac := dec.Stats.OffloadFraction()
	if frac < 0.5 {
		t.Fatalf("offload fraction %.2f too low at d=11, p=1e-3", frac)
	}
	t.Logf("offload fraction at d=11, p=1e-3: %.3f", frac)
}

// TestAccuracyMatchesPureUF: routing through the hierarchy must not change
// the logical error rate materially (first-stage decisions are exact
// minimum-weight on the syndromes it accepts).
func TestAccuracyMatchesPureUF(t *testing.T) {
	pure := montecarlo.RunAccuracy(montecarlo.AccuracyConfig{
		Distance: 5, P: 0.015, Trials: 60000, Seed: 17, Workers: 1,
		New: func(g *lattice.Graph) montecarlo.Decoder { return newUF(g) },
	})
	hier := montecarlo.RunAccuracy(montecarlo.AccuracyConfig{
		Distance: 5, P: 0.015, Trials: 60000, Seed: 17, Workers: 1,
		New: func(g *lattice.Graph) montecarlo.Decoder { return New(g, newUF(g)) },
	})
	if pure.Failures == 0 {
		t.Fatal("no failures at p=0.015, d=5")
	}
	lo, hi := float64(pure.Failures)*0.7, float64(pure.Failures)*1.3
	if f := float64(hier.Failures); f < lo || f > hi {
		t.Fatalf("hierarchical LER diverged: %d vs pure %d failures", hier.Failures, pure.Failures)
	}
}

func TestStatsCounting(t *testing.T) {
	g := lattice.New2D(5)
	dec := New(g, newUF(g))
	dec.Decode(nil)
	if dec.Stats.Total != 1 || dec.Stats.Offloaded != 1 {
		t.Fatalf("empty syndrome stats wrong: %+v", dec.Stats)
	}
	if got := dec.Stats.OffloadFraction(); got != 1 {
		t.Fatalf("offload fraction = %v", got)
	}
	if (Stats{}).OffloadFraction() != 0 {
		t.Fatal("zero stats fraction should be 0")
	}
}

func BenchmarkDecodeHierarchical(b *testing.B) {
	g := lattice.New3DWindow(11, 11)
	dec := New(g, newUF(g))
	s := noise.NewSampler(g, 1e-3, 1, 1)
	var trial noise.Trial
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(&trial)
		dec.Decode(trial.Defects)
	}
}
