// Package hierarchical implements the two-level decoding scheme the paper
// cites as related work (§VII-B, [Delfosse, arXiv:2001.11427]): a cheap
// first-stage decoder resolves the overwhelmingly common easy syndromes —
// isolated fault signatures — with trivial local logic, and only the rare
// hard syndromes reach the sophisticated (and slower, or shared) full
// decoder.
//
// The first stage applies two local rules, which are exact minimum-weight
// decisions whenever they fire:
//
//   - a pair of defects connected by a single edge, each with no other
//     neighboring defect, is the signature of that one fault: commit the
//     connecting edge;
//   - a lone defect (no neighboring defect) sitting next to a boundary is
//     the signature of a single boundary fault: commit the boundary edge.
//
// If every defect of a syndrome is resolved by these rules the syndrome is
// decoded entirely locally; otherwise the first stage commits nothing and
// the whole syndrome goes to the fallback decoder. At the paper's design
// point (d=11, p=1e-3) roughly nine in ten syndromes never need the full
// decoder, which is the economics hierarchical decoding exploits.
package hierarchical

import (
	"afs/internal/lattice"
)

// Fallback is the full decoder invoked for hard syndromes; both the
// Union-Find decoder and the MWPM decoder satisfy it.
type Fallback interface {
	Decode(defects []int32) []int32
}

// Stats counts how syndromes were routed.
type Stats struct {
	Total     uint64
	Offloaded uint64 // fully handled by the first stage
	FellBack  uint64
}

// OffloadFraction returns the fraction of syndromes the first stage
// absorbed.
func (s Stats) OffloadFraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Offloaded) / float64(s.Total)
}

// Decoder is a hierarchical decoder. Not safe for concurrent use.
type Decoder struct {
	G        *lattice.Graph
	Fallback Fallback
	Stats    Stats

	isDefect   []bool
	partner    []int32 // candidate pairing per defect vertex
	partnerE   []int32
	correction []int32
}

const (
	unresolved = int32(-1)
	toBoundary = int32(-2)
	ambiguous  = int32(-3)
)

// New builds a hierarchical decoder over g with the given fallback.
func New(g *lattice.Graph, fallback Fallback) *Decoder {
	return &Decoder{
		G:        g,
		Fallback: fallback,
		isDefect: make([]bool, g.V),
		partner:  make([]int32, g.V),
		partnerE: make([]int32, g.V),
	}
}

// Decode routes the syndrome: local first stage when possible, fallback
// otherwise. The returned slice is reused by the next call (and may alias
// the fallback's buffer on the fallback path).
func (d *Decoder) Decode(defects []int32) []int32 {
	d.Stats.Total++
	if len(defects) == 0 {
		d.Stats.Offloaded++
		d.correction = d.correction[:0]
		return d.correction
	}

	for _, v := range defects {
		d.isDefect[v] = true
	}
	easy := true
	for _, v := range defects {
		d.partner[v] = d.classify(v)
		if d.partner[v] == ambiguous || d.partner[v] == unresolved {
			easy = false
			break
		}
	}
	// Mutuality check: a pair rule only fires if both sides chose each
	// other (classify guarantees it structurally, but keep the invariant
	// explicit and cheap).
	if easy {
		for _, v := range defects {
			p := d.partner[v]
			if p >= 0 && d.partner[p] != v {
				easy = false
				break
			}
		}
	}
	for _, v := range defects {
		d.isDefect[v] = false
	}

	if !easy {
		d.Stats.FellBack++
		return d.Fallback.Decode(defects)
	}
	d.Stats.Offloaded++
	d.correction = d.correction[:0]
	for _, v := range defects {
		p := d.partner[v]
		if p == toBoundary || p > v {
			// Emit each pair once (from its smaller endpoint) and every
			// boundary match.
			d.correction = append(d.correction, d.partnerE[v])
		}
	}
	return d.correction
}

// classify inspects defect v's neighborhood: exactly one neighboring
// defect -> pair with it; no neighboring defect but a boundary edge ->
// match to boundary; anything else -> ambiguous (hard syndrome).
func (d *Decoder) classify(v int32) int32 {
	neighborDefects := 0
	pair := unresolved
	pairEdge := int32(-1)
	boundaryEdge := int32(-1)
	for _, e := range d.G.AdjacentEdges(v) {
		u := d.G.Other(e, v)
		if d.G.IsBoundary(u) {
			if boundaryEdge < 0 {
				boundaryEdge = e
			}
			continue
		}
		if d.isDefect[u] {
			neighborDefects++
			pair, pairEdge = u, e
		}
	}
	switch {
	case neighborDefects == 1:
		d.partnerE[v] = pairEdge
		return pair
	case neighborDefects > 1:
		return ambiguous
	case boundaryEdge >= 0:
		d.partnerE[v] = boundaryEdge
		return toBoundary
	default:
		return unresolved
	}
}
