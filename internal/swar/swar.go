// Package swar provides the SIMD-within-a-register primitives behind the
// bit-plane Monte-Carlo kernel: 64 trials travel together, one bit per
// lane, through uint64 "plane" words. A plane array indexed by vertex (or
// edge) holds, in word i, bit t = "trial t has the property at index i" —
// the transpose of the structure-of-arrays batch layout, and the software
// analogue of the bit-exact parallel datapaths FPGA Union-Find decoders
// use in hardware.
//
// The package is deliberately tiny and decoder-agnostic: a 64x64 bit
// transpose, a bit-sliced saturating counter for per-lane popcount
// classification, and the lane gather/scatter pair that moves single
// trials between plane form and index-list form. Everything is pure
// word-parallel integer arithmetic with zero allocation.
package swar

import "math/bits"

// Transpose64 transposes the 64x64 bit matrix held in a, in place: after
// the call, bit j of a[i] is the former bit i of a[j]. Transposing twice
// restores the input (test-enforced). The implementation is the classic
// recursive block swap (Hacker's Delight §7-3) — six passes of masked
// XOR swaps, no branches on data.
func Transpose64(a *[64]uint64) {
	m := uint64(0x00000000FFFFFFFF)
	for j := 32; j != 0; j >>= 1 {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (a[k]>>uint(j) ^ a[k+j]) & m
			a[k] ^= t << uint(j)
			a[k+j] ^= t
		}
		m ^= m << uint(j>>1)
	}
}

// LaneCounts is a per-lane saturating counter, bit-sliced across 64 lanes:
// lane t's count is the two-bit value C1[t]C0[t], with Sat[t] latching once
// the count has ever reached 4 (the carry out of the two-bit adder). Counts
// 0, 1, and 2 are exact; everything >= 3 is distinguishable as "at least
// 3", which is all weight-class triage needs. Adding a plane word counts
// one unit into every lane whose bit is set — so streaming a trial group's
// defect planes through Add classifies all 64 trials' syndrome weights in
// a handful of word ops per vertex.
type LaneCounts struct {
	C0, C1 uint64 // bit-sliced two-bit counter, lane-parallel
	Sat    uint64 // sticky overflow: lane count reached 4 at some point
}

// Add increments the counter of every lane whose bit is set in w.
func (c *LaneCounts) Add(w uint64) {
	carry := c.C0 & w
	c.C0 ^= w
	c.Sat |= c.C1 & carry
	c.C1 ^= carry
}

// Reset zeroes every lane's count.
func (c *LaneCounts) Reset() { c.C0, c.C1, c.Sat = 0, 0, 0 }

// Exactly0 returns the mask of lanes whose count is exactly 0.
func (c *LaneCounts) Exactly0() uint64 { return ^(c.C0 | c.C1 | c.Sat) }

// Exactly1 returns the mask of lanes whose count is exactly 1.
func (c *LaneCounts) Exactly1() uint64 { return c.C0 &^ c.C1 &^ c.Sat }

// Exactly2 returns the mask of lanes whose count is exactly 2.
func (c *LaneCounts) Exactly2() uint64 { return c.C1 &^ c.C0 &^ c.Sat }

// AtLeast3 returns the mask of lanes whose count is 3 or more.
func (c *LaneCounts) AtLeast3() uint64 { return c.Sat | (c.C0 & c.C1) }

// LanePopcounts adds, into counts[t], the number of words in planes whose
// bit t is set — the exact per-lane popcount reduction (LaneCounts is its
// saturating sibling). It works by transposing 64-word blocks so each
// lane's bits land contiguous in one word, then popcounting that word; the
// tail block is zero-padded.
func LanePopcounts(planes []uint64, counts *[64]int32) {
	var chunk [64]uint64
	for off := 0; off < len(planes); off += 64 {
		n := copy(chunk[:], planes[off:])
		for i := n; i < 64; i++ {
			chunk[i] = 0
		}
		Transpose64(&chunk)
		for t := 0; t < 64; t++ {
			counts[t] += int32(bits.OnesCount64(chunk[t]))
		}
	}
}

// GatherLane appends to out the indices i, in increasing order, for which
// planes[i] has bit lane set — extracting one trial's sparse index list
// from plane form.
func GatherLane(planes []uint64, lane int, out []int32) []int32 {
	bit := uint64(1) << uint(lane)
	for i, w := range planes {
		if w&bit != 0 {
			out = append(out, int32(i))
		}
	}
	return out
}

// ScatterLane sets bit lane of planes[i] for every i in idx — the inverse
// of GatherLane for a lane that started empty.
func ScatterLane(planes []uint64, lane int, idx []int32) {
	bit := uint64(1) << uint(lane)
	for _, i := range idx {
		planes[i] |= bit
	}
}

// ClearLane clears bit lane in every word of planes.
func ClearLane(planes []uint64, lane int) {
	mask := ^(uint64(1) << uint(lane))
	for i := range planes {
		planes[i] &= mask
	}
}
