package swar

import (
	"encoding/binary"
	"math/bits"
	"math/rand/v2"
	"testing"
)

func randomMatrix(rng *rand.Rand) [64]uint64 {
	var m [64]uint64
	for i := range m {
		m[i] = rng.Uint64()
	}
	return m
}

// transposeRef is the obvious bit-by-bit reference implementation.
func transposeRef(a [64]uint64) [64]uint64 {
	var out [64]uint64
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			if a[i]&(1<<uint(j)) != 0 {
				out[j] |= 1 << uint(i)
			}
		}
	}
	return out
}

func TestTranspose64MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		m := randomMatrix(rng)
		want := transposeRef(m)
		got := m
		Transpose64(&got)
		if got != want {
			t.Fatalf("trial %d: transpose diverges from reference", trial)
		}
	}
}

// transpose ∘ transpose = id.
func TestTranspose64SelfInverse(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 200; trial++ {
		m := randomMatrix(rng)
		got := m
		Transpose64(&got)
		Transpose64(&got)
		if got != m {
			t.Fatalf("trial %d: double transpose is not the identity", trial)
		}
	}
}

// The saturating lane counter must agree with exact per-lane popcounts on
// counts 0..2 and classify everything >= 3 as heavy.
func TestLaneCountsMatchExactPopcounts(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.IntN(200)
		planes := make([]uint64, n)
		for i := range planes {
			// Sparse-ish planes so all weight classes appear.
			planes[i] = rng.Uint64() & rng.Uint64() & rng.Uint64()
		}
		var c LaneCounts
		for _, w := range planes {
			c.Add(w)
		}
		var exact [64]int32
		LanePopcounts(planes, &exact)
		for lane := 0; lane < 64; lane++ {
			bit := uint64(1) << uint(lane)
			var want int32
			switch {
			case c.Exactly0()&bit != 0:
				want = 0
			case c.Exactly1()&bit != 0:
				want = 1
			case c.Exactly2()&bit != 0:
				want = 2
			}
			if c.AtLeast3()&bit != 0 {
				if exact[lane] < 3 {
					t.Fatalf("lane %d: counter says >=3, exact %d", lane, exact[lane])
				}
				continue
			}
			if exact[lane] != want {
				t.Fatalf("lane %d: counter says %d, exact %d", lane, want, exact[lane])
			}
		}
	}
}

// popcount over planes = per-lane weight: LanePopcounts must equal the
// per-lane GatherLane list length, tying the reduction to the extraction.
func TestLanePopcountsMatchGatherLane(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	planes := make([]uint64, 173)
	for i := range planes {
		planes[i] = rng.Uint64() & rng.Uint64()
	}
	var counts [64]int32
	LanePopcounts(planes, &counts)
	var buf []int32
	for lane := 0; lane < 64; lane++ {
		buf = GatherLane(planes, lane, buf[:0])
		if int32(len(buf)) != counts[lane] {
			t.Fatalf("lane %d: popcount %d != gathered %d", lane, counts[lane], len(buf))
		}
		for i := 1; i < len(buf); i++ {
			if buf[i-1] >= buf[i] {
				t.Fatalf("lane %d: gathered indices not strictly increasing", lane)
			}
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	planes := make([]uint64, 97)
	for trial := 0; trial < 50; trial++ {
		lane := rng.IntN(64)
		var idx []int32
		for i := range planes {
			if rng.IntN(4) == 0 {
				idx = append(idx, int32(i))
			}
		}
		ClearLane(planes, lane)
		ScatterLane(planes, lane, idx)
		got := GatherLane(planes, lane, nil)
		if len(got) != len(idx) {
			t.Fatalf("round trip length %d != %d", len(got), len(idx))
		}
		for i := range got {
			if got[i] != idx[i] {
				t.Fatalf("round trip diverges at %d: %d != %d", i, got[i], idx[i])
			}
		}
	}
}

func FuzzTranspose64(f *testing.F) {
	f.Add(make([]byte, 512), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, _ uint8) {
		var m [64]uint64
		for i := 0; i+8 <= len(data) && i/8 < 64; i += 8 {
			m[i/8] = binary.LittleEndian.Uint64(data[i:])
		}
		got := m
		Transpose64(&got)
		if want := transposeRef(m); got != want {
			t.Fatal("transpose diverges from reference")
		}
		Transpose64(&got)
		if got != m {
			t.Fatal("double transpose is not the identity")
		}
	})
}

// FuzzLaneGatherScatter round-trips one lane of a fuzzer-chosen plane array
// through gather → clear → scatter and checks the planes are restored
// bit-for-bit, and that the per-lane popcount reduction agrees with the
// gathered list length.
func FuzzLaneGatherScatter(f *testing.F) {
	f.Add([]byte{0xff, 0x00, 0x12}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, laneByte uint8) {
		n := len(data) / 8
		if n == 0 {
			return
		}
		planes := make([]uint64, n)
		for i := range planes {
			planes[i] = binary.LittleEndian.Uint64(data[8*i:])
		}
		lane := int(laneByte) & 63
		ref := append([]uint64(nil), planes...)

		idx := GatherLane(planes, lane, nil)
		var counts [64]int32
		LanePopcounts(planes, &counts)
		if counts[lane] != int32(len(idx)) {
			t.Fatalf("popcount %d != gathered %d", counts[lane], len(idx))
		}
		ClearLane(planes, lane)
		if again := GatherLane(planes, lane, nil); len(again) != 0 {
			t.Fatal("lane not empty after ClearLane")
		}
		ScatterLane(planes, lane, idx)
		for i := range planes {
			if planes[i] != ref[i] {
				t.Fatalf("word %d not restored: %#x != %#x", i, planes[i], ref[i])
			}
		}
	})
}

func BenchmarkTranspose64(b *testing.B) {
	rng := rand.New(rand.NewPCG(11, 12))
	m := randomMatrix(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Transpose64(&m)
	}
	if bits.OnesCount64(m[0]) == 65 { // defeat dead-code elimination
		b.Fatal("impossible")
	}
}
