// Package storage computes the memory footprint of the AFS decoder
// hardware, reproducing the paper's Table I (per-logical-qubit memory for
// d=11 and d=25), Table II (a 1000-logical-qubit FTQC with and without the
// Conjoined-Decoder Architecture), and Figure 9 (total decoder memory
// versus the number of logical qubits).
//
// Sizing model (validated bit-for-bit against Table I):
//
//   - The decoding graph provisioned in hardware has V = d^2(d-1) vertices
//     (d detector layers of d(d-1) ancillas) and E = d(d^2+(d-1)^2) spatial
//     edges plus d^2(d-1) temporal edges — one temporal link per vertex,
//     including the decoding-window boundary links needed for continuous
//     operation.
//   - The Spanning Tree Memory stores 1 bit per vertex and 2 bits per edge
//     (clusters grow by half edges): STM = V + 2E bits.
//   - The Root Table stores one vertex index per vertex:
//     V * ceil(log2 V) bits.
//   - The Size Table stores one cluster size per vertex; sizes reach V, so
//     entries are one bit wider: V * (ceil(log2 V) + 1) bits.
//   - The DFS Engine stacks hold edge records of ceil(log2 E) + 4 bits
//     (edge index, 2 direction bits, 2 syndrome bits — paper §IV-C); the
//     aggregate stack capacity is provisioned for the p = 1e-3 workload and
//     scales with the expected total cluster volume, ~ d^3. The per-qubit
//     capacity coefficient (StackAlphaQubit) is fitted to Table I and the
//     deeper system-level provisioning (StackAlphaSystem) to Table II; see
//     EXPERIMENTS.md for the (small) residuals and the paper-internal
//     inconsistency between the two tables' stack rows.
//   - Every logical qubit needs two decoders, one for X and one for Z
//     errors, so per-qubit figures are twice the single-decoder figures.
package storage

import "math"

// Stack-capacity coefficients: capacity = ceil(alpha * d^3) entries per
// decoder.
const (
	// StackAlphaQubit reproduces Table I's per-qubit stack rows.
	StackAlphaQubit = 0.017
	// StackAlphaSystem reproduces Table II's system-level stack row, which
	// provisions deeper stacks per qubit than Table I.
	StackAlphaSystem = 0.265
)

// CDA sharing factors from the paper (§V-C, Table II): for L logical qubits
// the CDA uses L Gr-Gen units (each serving its qubit's X and Z syndromes),
// L/2 DFS Engines and L/2 CORR Engines, and pairs of Gr-Gen units share
// root/size tables.
const (
	CDAStmFactor   = 2
	CDARootFactor  = 4
	CDASizeFactor  = 4
	CDAStackFactor = 4
)

// GraphDims returns the provisioned decoding-graph dimensions for
// distance d.
func GraphDims(d int) (v, e int64) {
	dd := int64(d)
	v = dd * dd * (dd - 1)
	e = dd*(dd*dd+(dd-1)*(dd-1)) + dd*dd*(dd-1)
	return v, e
}

// ceilLog2 returns ceil(log2 n) for n >= 1.
func ceilLog2(n int64) int {
	b := 0
	for v := int64(1); v < n; v <<= 1 {
		b++
	}
	return b
}

// QubitMemory is the decoder memory of one logical qubit (both X and Z
// decoders), in bits, by component.
type QubitMemory struct {
	Distance  int
	STMBits   int64
	RootBits  int64
	SizeBits  int64
	StackBits int64
}

// ForQubit sizes the decoder pair of one distance-d logical qubit using the
// per-qubit (Table I) stack provisioning.
func ForQubit(d int) QubitMemory { return forQubit(d, StackAlphaQubit) }

// ForQubitSystem sizes one logical qubit with the deeper system-level
// (Table II) stack provisioning.
func ForQubitSystem(d int) QubitMemory { return forQubit(d, StackAlphaSystem) }

func forQubit(d int, stackAlpha float64) QubitMemory {
	v, e := GraphDims(d)
	rootW := int64(ceilLog2(v))
	stackEntryBits := int64(ceilLog2(e) + 4)
	stackEntries := int64(math.Ceil(stackAlpha * float64(d) * float64(d) * float64(d)))
	return QubitMemory{
		Distance:  d,
		STMBits:   2 * (v + 2*e),
		RootBits:  2 * v * rootW,
		SizeBits:  2 * v * (rootW + 1),
		StackBits: 2 * stackEntries * stackEntryBits,
	}
}

// TotalBits returns the per-qubit total.
func (q QubitMemory) TotalBits() int64 {
	return q.STMBits + q.RootBits + q.SizeBits + q.StackBits
}

// KB converts bits to kibibytes.
func KB(bits int64) float64 { return float64(bits) / 8 / 1024 }

// MB converts bits to mebibytes.
func MB(bits int64) float64 { return float64(bits) / 8 / 1024 / 1024 }

// SystemMemory is the decoder memory of an FTQC with L logical qubits,
// in bits, by component.
type SystemMemory struct {
	LogicalQubits int
	Distance      int
	CDA           bool
	STMBits       int64
	RootBits      int64
	SizeBits      int64
	StackBits     int64
}

// ForSystem sizes an FTQC with L distance-d logical qubits, with dedicated
// decoders (cda=false) or the Conjoined-Decoder Architecture (cda=true).
func ForSystem(l, d int, cda bool) SystemMemory {
	q := ForQubitSystem(d)
	s := SystemMemory{
		LogicalQubits: l,
		Distance:      d,
		CDA:           cda,
		STMBits:       int64(l) * q.STMBits,
		RootBits:      int64(l) * q.RootBits,
		SizeBits:      int64(l) * q.SizeBits,
		StackBits:     int64(l) * q.StackBits,
	}
	if cda {
		s.STMBits /= CDAStmFactor
		s.RootBits /= CDARootFactor
		s.SizeBits /= CDASizeFactor
		s.StackBits /= CDAStackFactor
	}
	return s
}

// TotalBits returns the system total.
func (s SystemMemory) TotalBits() int64 {
	return s.STMBits + s.RootBits + s.SizeBits + s.StackBits
}

// Reduction returns how much smaller a CDA system is than the dedicated
// design with the same parameters.
func Reduction(l, d int) float64 {
	ded := ForSystem(l, d, false).TotalBits()
	cda := ForSystem(l, d, true).TotalBits()
	return float64(ded) / float64(cda)
}

// MemoryCurve returns the dedicated-decoder total memory (MB) for each
// logical-qubit count in ls — the linear growth of Figure 9.
func MemoryCurve(ls []int, d int, cda bool) []float64 {
	out := make([]float64, len(ls))
	for i, l := range ls {
		out[i] = MB(ForSystem(l, d, cda).TotalBits())
	}
	return out
}
