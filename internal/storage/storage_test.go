package storage

import (
	"math"
	"testing"
	"testing/quick"
)

func near(got, want, tolFrac float64) bool {
	return math.Abs(got-want) <= tolFrac*want
}

// TestTable1D11 checks the per-component rows of paper Table I at d=11.
func TestTable1D11(t *testing.T) {
	q := ForQubit(11)
	cases := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"STM", KB(q.STMBits), 2.07, 0.01},
		{"Root", KB(q.RootBits), 3.25, 0.01},
		{"Size", KB(q.SizeBits), 3.54, 0.01},
		{"Stacks", KB(q.StackBits), 0.08, 0.25},
		{"Total", KB(q.TotalBits()), 8.95, 0.02},
	}
	for _, c := range cases {
		if !near(c.got, c.want, c.tol) {
			t.Errorf("d=11 %s = %.3f KB, paper %.2f KB", c.name, c.got, c.want)
		}
	}
}

// TestTable1D25 checks the per-component rows of paper Table I at d=25.
func TestTable1D25(t *testing.T) {
	q := ForQubit(25)
	cases := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"STM", KB(q.STMBits), 25.6, 0.01},
		{"Root", KB(q.RootBits), 51.3, 0.01},
		{"Size", KB(q.SizeBits), 54.9, 0.01},
		{"Stacks", KB(q.StackBits), 1.41, 0.10},
		{"Total", KB(q.TotalBits()), 133, 0.02},
	}
	for _, c := range cases {
		if !near(c.got, c.want, c.tol) {
			t.Errorf("d=25 %s = %.3f KB, paper %.2f KB", c.name, c.got, c.want)
		}
	}
}

// TestTable2 checks the system rows of paper Table II (1000 logical qubits,
// d=11) with and without CDA.
func TestTable2(t *testing.T) {
	ded := ForSystem(1000, 11, false)
	cda := ForSystem(1000, 11, true)
	cases := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"STM dedicated", MB(ded.STMBits), 1.97, 0.03},
		{"Root dedicated", MB(ded.RootBits), 3.17, 0.01},
		{"Size dedicated", MB(ded.SizeBits), 3.46, 0.01},
		{"Stacks dedicated", MB(ded.StackBits), 1.35, 0.03},
		{"Total dedicated", MB(ded.TotalBits()), 9.96, 0.02},
		{"STM CDA", MB(cda.STMBits), 0.99, 0.05},
		{"Root CDA", MB(cda.RootBits), 0.79, 0.02},
		{"Size CDA", MB(cda.SizeBits), 0.87, 0.01},
		{"Stacks CDA", MB(cda.StackBits), 0.34, 0.03},
		// The paper's CDA component rows sum to 2.99 MB, not the stated
		// 2.81 MB total; we match the component sum, so the tolerance on
		// the total is wider.
		{"Total CDA", MB(cda.TotalBits()), 2.81, 0.08},
	}
	for _, c := range cases {
		if !near(c.got, c.want, c.tol) {
			t.Errorf("%s = %.3f MB, paper %.2f MB", c.name, c.got, c.want)
		}
	}
	if r := Reduction(1000, 11); !near(r, 3.5, 0.06) {
		t.Errorf("CDA reduction = %.2fx, paper 3.5x", r)
	}
}

func TestGraphDims(t *testing.T) {
	v, e := GraphDims(11)
	if v != 1210 {
		t.Errorf("V(11) = %d, want 1210", v)
	}
	if e != 11*(121+100)+1210 {
		t.Errorf("E(11) = %d, want %d", e, 11*(121+100)+1210)
	}
	v25, e25 := GraphDims(25)
	if v25 != 15000 || e25 != 25*(625+576)+15000 {
		t.Errorf("d=25 dims = (%d,%d)", v25, e25)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int64]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1210: 11, 15000: 14}
	for n, want := range cases {
		if got := ceilLog2(n); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestMemoryGrowsLinearlyInQubits is Fig. 9's defining property.
func TestMemoryGrowsLinearlyInQubits(t *testing.T) {
	f := func(lRaw uint16) bool {
		l := int(lRaw%2000) + 1
		one := ForSystem(1, 11, false).TotalBits()
		return ForSystem(l, 11, false).TotalBits() == int64(l)*one
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCDAAlwaysSmaller: sharing can only reduce memory, for any system.
func TestCDAAlwaysSmaller(t *testing.T) {
	f := func(lRaw uint16, dRaw uint8) bool {
		l := int(lRaw%5000) + 1
		d := 3 + 2*int(dRaw%12) // odd distances 3..25
		return ForSystem(l, d, true).TotalBits() < ForSystem(l, d, false).TotalBits()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMemoryMonotoneInDistance: larger codes need more decoder memory.
func TestMemoryMonotoneInDistance(t *testing.T) {
	prev := int64(0)
	for d := 3; d <= 31; d += 2 {
		tot := ForQubit(d).TotalBits()
		if tot <= prev {
			t.Fatalf("memory not monotone at d=%d: %d <= %d", d, tot, prev)
		}
		prev = tot
	}
}
