// Package lattice models the unrotated distance-d surface code on the
// (2d-1)x(2d-1) grid of alternating data and ancilla qubits (paper Fig. 2)
// and builds the decoding graphs the AFS decoder operates on:
//
//   - the 2-dimensional graph used under perfect syndrome measurements
//     (one detector layer), and
//   - the 3-dimensional graph used to tolerate measurement errors, in which
//     d rounds of syndrome measurement are decoded together (paper Fig. 7).
//
// Geometry. Data qubits sit at grid positions (i, j) with i+j even; Z-type
// ancillas (which detect X errors) at (odd i, even j) form a (d-1) x d
// grid; X-type ancillas at (even i, odd j) form a d x (d-1) grid. Because
// X and Z errors are corrected independently and the two graphs are
// transposes of each other, the package exposes the X-error graph and the
// simulation runs it for both error types.
//
// In the decoding graph, ancillas are vertices and data qubits are edges
// (the standard representation in QEC, paper Fig. 5). Vertical edges in a
// column terminate on the north and south code boundaries, represented by a
// single virtual boundary vertex. In the 3-dimensional graph a vertex
// exists per ancilla per detector layer, and temporal edges between
// consecutive layers represent measurement errors.
package lattice

import "fmt"

// EdgeKind distinguishes data-qubit (spatial) edges from measurement-error
// (temporal) edges in the decoding graph.
type EdgeKind uint8

const (
	// Spatial edges correspond to a potential X error on a data qubit
	// (horizontal red edges in paper Fig. 7b).
	Spatial EdgeKind = iota
	// Temporal edges correspond to the flip of a measurement outcome
	// (vertical red edges in paper Fig. 7b).
	Temporal
)

func (k EdgeKind) String() string {
	switch k {
	case Spatial:
		return "spatial"
	case Temporal:
		return "temporal"
	default:
		return fmt.Sprintf("EdgeKind(%d)", uint8(k))
	}
}

// Edge is one edge of the decoding graph. V may be the virtual boundary
// vertex (Graph.Boundary). Qubit is the data-qubit index for spatial edges
// and -1 for temporal edges. Round is the detector layer the edge belongs
// to (for temporal edges, the earlier of the two layers it connects).
type Edge struct {
	U, V  int32
	Kind  EdgeKind
	Qubit int32
	Round int16
}

// Graph is a surface-code decoding graph for one error type.
type Graph struct {
	// Distance is the code distance d.
	Distance int
	// Rounds is the number of detector layers (1 for the 2-D graph, d for
	// the full 3-D logical-cycle graph).
	Rounds int
	// V is the number of real (non-boundary) vertices: d*(d-1)*Rounds.
	V int
	// TimeBoundary reports whether the final layer carries temporal
	// boundary edges (continuous-window decoding, see New3DWindow).
	TimeBoundary bool
	// Edges lists every edge; spatial edges of layer t precede the temporal
	// edges leaving layer t.
	Edges []Edge

	adjStart []int32 // CSR offsets, length V+2 (includes boundary vertex)
	adjList  []int32 // edge indices

	// Per-vertex coordinate and boundary-distance table, filled at build
	// time so the hot decode paths read one word instead of dividing: vertex
	// v's row, column, layer, and boundary distance packed into 16-bit
	// fields of vpack[v] (see PackedCoords). 16 bits bound d and rounds at
	// 65535, far past any simulable code.
	vpack []uint64
}

// LayerVertices returns the number of ancilla vertices per detector layer,
// d*(d-1).
func (g *Graph) LayerVertices() int { return g.Distance * (g.Distance - 1) }

// Boundary returns the index of the virtual boundary vertex (== V).
func (g *Graph) Boundary() int32 { return int32(g.V) }

// IsBoundary reports whether v is the virtual boundary vertex.
func (g *Graph) IsBoundary(v int32) bool { return int(v) == g.V }

// NumDataQubits returns the number of data qubits in the code,
// d^2 + (d-1)^2.
func (g *Graph) NumDataQubits() int {
	d := g.Distance
	return d*d + (d-1)*(d-1)
}

// NumAncillas returns the number of ancilla qubits per error type per
// round, d*(d-1).
func (g *Graph) NumAncillas() int { return g.Distance * (g.Distance - 1) }

// VertexID returns the vertex index of the ancilla at row r (0..d-2),
// column c (0..d-1) in detector layer t.
func (g *Graph) VertexID(r, c, t int) int32 {
	d := g.Distance
	return int32(t*d*(d-1) + r*d + c)
}

// VertexCoords returns the (row, column, layer) of vertex v.
func (g *Graph) VertexCoords(v int32) (r, c, t int) {
	p := g.vpack[v]
	return int(p & 0xffff), int((p >> 16) & 0xffff), int((p >> 32) & 0xffff)
}

// PackedCoords returns vertex v's row, column, layer, and boundary distance
// packed into one word: row in bits 0-15, column in 16-31, layer in 32-47,
// boundary distance in 48-63. The sparse decode path unpacks all four from
// a single load.
func (g *Graph) PackedCoords(v int32) uint64 { return g.vpack[v] }

// VerticalQubit returns the data-qubit index of the vertical data qubit in
// column c at vertical position k (0..d-1). k=0 touches the north boundary
// and k=d-1 the south boundary.
func (g *Graph) VerticalQubit(k, c int) int32 { return int32(k*g.Distance + c) }

// HorizontalQubit returns the data-qubit index of the horizontal data qubit
// in ancilla row r (0..d-2) between columns h and h+1 (h in 0..d-2).
func (g *Graph) HorizontalQubit(r, h int) int32 {
	d := g.Distance
	return int32(d*d + r*(d-1) + h)
}

// spatialEdgesPerLayer returns d^2 + (d-1)^2.
func (g *Graph) spatialEdgesPerLayer() int { return g.NumDataQubits() }

// SpatialEdge returns the edge index of data qubit q's edge in detector
// layer t.
func (g *Graph) SpatialEdge(q int32, t int) int32 {
	return int32(t*g.layerStride() + int(q))
}

// layerStride is the number of edges emitted per layer in construction
// order: spatial edges then temporal edges leaving the layer.
func (g *Graph) layerStride() int {
	s := g.spatialEdgesPerLayer()
	if g.Rounds > 1 {
		s += g.LayerVertices()
	}
	return s
}

// TemporalEdge returns the edge index of the measurement-error edge for
// ancilla (r, c) connecting layers t and t+1 (t in 0..Rounds-2); on a
// window graph, t = Rounds-1 addresses the temporal boundary edge. It
// panics for a 2-D graph.
func (g *Graph) TemporalEdge(r, c, t int) int32 {
	if g.Rounds < 2 {
		panic("lattice: no temporal edges in a 2-D graph")
	}
	maxT := g.Rounds - 1
	if g.TimeBoundary {
		maxT = g.Rounds
	}
	if t < 0 || t >= maxT {
		panic(fmt.Sprintf("lattice: temporal edge layer %d out of range [0,%d)", t, maxT))
	}
	d := g.Distance
	return int32(t*g.layerStride() + g.spatialEdgesPerLayer() + r*d + c)
}

// AdjacentEdges returns the indices of the edges incident to vertex v
// (which may be the boundary vertex), in increasing edge-index order. The
// returned slice aliases internal storage and must not be modified.
func (g *Graph) AdjacentEdges(v int32) []int32 {
	return g.adjList[g.adjStart[v]:g.adjStart[v+1]]
}

// AncillaIndex returns the per-layer ancilla index (row*d + column) of real
// vertex v — the coordinate streaming decoders exchange with the syndrome
// source, independent of which detector layer v sits in.
func (g *Graph) AncillaIndex(v int32) int32 {
	return v % int32(g.LayerVertices())
}

// LayerOf returns the detector layer of real vertex v.
func (g *Graph) LayerOf(v int32) int { return int(v) / g.LayerVertices() }

// EdgeBetween returns the lowest index of an edge connecting real vertices
// u and v, or -1 if they are not adjacent. On this lattice two real
// vertices at L1 (graph) distance 1 always share exactly one edge.
func (g *Graph) EdgeBetween(u, v int32) int32 {
	for _, e := range g.AdjacentEdges(u) {
		if g.Other(e, u) == v {
			return e
		}
	}
	return -1
}

// FirstBoundaryEdge returns the lowest index of an edge connecting real
// vertex v to the virtual boundary vertex, or -1 if v has no boundary edge.
// A vertex has one exactly when BoundaryDistance(v) == 1.
func (g *Graph) FirstBoundaryEdge(v int32) int32 {
	b := g.Boundary()
	for _, e := range g.AdjacentEdges(v) {
		if g.Other(e, v) == b {
			return e
		}
	}
	return -1
}

// Other returns the endpoint of edge e that is not v.
func (g *Graph) Other(e int32, v int32) int32 {
	ed := &g.Edges[e]
	if ed.U == v {
		return ed.V
	}
	return ed.U
}

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int32) int {
	return int(g.adjStart[v+1] - g.adjStart[v])
}

// New2D builds the single-layer decoding graph of a distance-d surface code
// under perfect measurements. It panics if d < 2.
func New2D(d int) *Graph { return build(d, 1, false) }

// New3D builds the decoding graph for a closed logical cycle: `rounds`
// detector layers with temporal edges between consecutive layers, the last
// round measured perfectly. The paper's configuration is rounds = d. This
// is the graph accuracy simulations use. It panics if d < 2 or rounds < 1.
func New3D(d, rounds int) *Graph { return build(d, rounds, false) }

// New3DWindow builds the continuous-operation decoding window the hardware
// is provisioned for: like New3D, but every layer (including the last) has
// a temporal edge, the last layer's edges terminating on the boundary —
// defects near the window's end may be matched forward into the next
// window. Its edge count, d(d^2+(d-1)^2) + d^2(d-1) for rounds = d, is the
// one the paper's storage model (Table I) provisions.
func New3DWindow(d, rounds int) *Graph { return build(d, rounds, true) }

func build(d, rounds int, window bool) *Graph {
	if d < 2 {
		panic(fmt.Sprintf("lattice: distance %d < 2", d))
	}
	if rounds < 1 {
		panic(fmt.Sprintf("lattice: rounds %d < 1", rounds))
	}
	if window && rounds < 2 {
		panic("lattice: a decoding window needs at least 2 rounds")
	}
	g := &Graph{Distance: d, Rounds: rounds, V: d * (d - 1) * rounds, TimeBoundary: window}
	nEdges := rounds * (d*d + (d-1)*(d-1))
	if rounds > 1 {
		temporalLayers := rounds - 1
		if window {
			temporalLayers = rounds
		}
		nEdges += temporalLayers * d * (d - 1)
	}
	g.Edges = make([]Edge, 0, nEdges)
	b := g.Boundary()
	for t := 0; t < rounds; t++ {
		// Vertical data qubits: column c, vertical position k. k=0 and
		// k=d-1 are boundary edges (north and south).
		for k := 0; k < d; k++ {
			for c := 0; c < d; c++ {
				e := Edge{Kind: Spatial, Qubit: g.VerticalQubit(k, c), Round: int16(t)}
				switch k {
				case 0:
					e.U, e.V = g.VertexID(0, c, t), b
				case d - 1:
					e.U, e.V = g.VertexID(d-2, c, t), b
				default:
					e.U, e.V = g.VertexID(k-1, c, t), g.VertexID(k, c, t)
				}
				g.Edges = append(g.Edges, e)
			}
		}
		// Horizontal data qubits: row r, between columns h and h+1.
		for r := 0; r < d-1; r++ {
			for h := 0; h < d-1; h++ {
				g.Edges = append(g.Edges, Edge{
					U: g.VertexID(r, h, t), V: g.VertexID(r, h+1, t),
					Kind: Spatial, Qubit: g.HorizontalQubit(r, h), Round: int16(t),
				})
			}
		}
		// Temporal edges leaving layer t (measurement error in round t);
		// on a window graph the final layer's edges lead to the boundary.
		if rounds > 1 && (t < rounds-1 || window) {
			for r := 0; r < d-1; r++ {
				for c := 0; c < d; c++ {
					to := b
					if t < rounds-1 {
						to = g.VertexID(r, c, t+1)
					}
					g.Edges = append(g.Edges, Edge{
						U: g.VertexID(r, c, t), V: to,
						Kind: Temporal, Qubit: -1, Round: int16(t),
					})
				}
			}
		}
	}
	g.buildAdjacency()
	g.buildVertexTables()
	return g
}

// buildVertexTables fills the per-vertex coordinate and boundary-distance
// lookups VertexCoords and BoundaryDistance serve.
func (g *Graph) buildVertexTables() {
	d := g.Distance
	g.vpack = make([]uint64, g.V)
	v := 0
	for t := 0; t < g.Rounds; t++ {
		for r := 0; r < d-1; r++ {
			for c := 0; c < d; c++ {
				best := r + 1
				if south := d - 1 - r; south < best {
					best = south
				}
				if g.TimeBoundary {
					if future := g.Rounds - t; future < best {
						best = future
					}
				}
				g.vpack[v] = uint64(r) | uint64(c)<<16 | uint64(t)<<32 | uint64(best)<<48
				v++
			}
		}
	}
}

func (g *Graph) buildAdjacency() {
	counts := make([]int32, g.V+2)
	for _, e := range g.Edges {
		counts[e.U+1]++
		counts[e.V+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	g.adjStart = counts
	g.adjList = make([]int32, counts[len(counts)-1])
	fill := make([]int32, g.V+1)
	copy(fill, counts[:g.V+1])
	for i, e := range g.Edges {
		g.adjList[fill[e.U]] = int32(i)
		fill[e.U]++
		g.adjList[fill[e.V]] = int32(i)
		fill[e.V]++
	}
}

// NorthCutQubits returns the data-qubit indices forming the north boundary
// cut: the d vertical qubits at vertical position k=0. Any error chain
// connecting the north boundary to the south boundary crosses this cut an
// odd number of times, while stabilizers (closed loops and chains returning
// to the same boundary) cross it an even number of times — so odd residual
// parity on this cut is exactly a logical error.
func (g *Graph) NorthCutQubits() []int32 {
	out := make([]int32, g.Distance)
	for c := 0; c < g.Distance; c++ {
		out[c] = g.VerticalQubit(0, c)
	}
	return out
}

// GraphDistance returns the shortest-path length between vertices u and v.
// On this grid the graph metric is the L1 (Manhattan) distance between
// coordinates, which lets the matching decoder avoid explicit shortest-path
// searches.
func (g *Graph) GraphDistance(u, v int32) int {
	ru, cu, tu := g.VertexCoords(u)
	rv, cv, tv := g.VertexCoords(v)
	return abs(ru-rv) + abs(cu-cv) + abs(tu-tv)
}

// BoundaryDistance returns the shortest-path length from vertex v to the
// nearest boundary: the north or south code boundary, or — on a window
// graph — the temporal boundary at the end of the window.
func (g *Graph) BoundaryDistance(v int32) int { return int(g.vpack[v] >> 48) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("lattice.Graph{d=%d rounds=%d V=%d E=%d}",
		g.Distance, g.Rounds, g.V, len(g.Edges))
}
