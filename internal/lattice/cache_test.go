package lattice

import (
	"sync"
	"testing"
)

func TestCachedReturnsSameInstance(t *testing.T) {
	a := Cached3D(3, 3)
	b := Cached3D(3, 3)
	if a != b {
		t.Fatal("Cached3D built two instances for one shape")
	}
	if Cached2D(3) == a || Cached3DWindow(3, 3) == a {
		t.Fatal("distinct shapes share a cache entry")
	}
}

func TestCachedMatchesDirectConstruction(t *testing.T) {
	for _, tc := range []struct {
		cached, direct *Graph
	}{
		{Cached2D(5), New2D(5)},
		{Cached3D(5, 5), New3D(5, 5)},
		{Cached3DWindow(5, 5), New3DWindow(5, 5)},
	} {
		if tc.cached.V != tc.direct.V || len(tc.cached.Edges) != len(tc.direct.Edges) ||
			tc.cached.Distance != tc.direct.Distance || tc.cached.Rounds != tc.direct.Rounds ||
			tc.cached.TimeBoundary != tc.direct.TimeBoundary {
			t.Fatalf("cached graph %v differs from direct %v", tc.cached, tc.direct)
		}
		for i := range tc.direct.Edges {
			if tc.cached.Edges[i] != tc.direct.Edges[i] {
				t.Fatalf("edge %d differs", i)
			}
		}
	}
}

func TestCachedConcurrentAccessSingleInstance(t *testing.T) {
	const goroutines = 16
	out := make([]*Graph, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = Cached3D(7, 4)
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if out[i] != out[0] {
			t.Fatal("concurrent Cached calls returned distinct instances")
		}
	}
}

func TestCachedInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Cached with d<2 did not panic")
		}
	}()
	Cached2D(1)
}
