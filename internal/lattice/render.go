package lattice

import "strings"

// Glyphs used by Render for unmarked sites.
const (
	GlyphData     = '.'
	GlyphZAncilla = 'o'
	GlyphXAncilla = 'x'
)

// Render draws one detector layer of the code as the (2d-1)x(2d-1) qubit
// grid of paper Fig. 2: data qubits as '.', Z-type ancillas (the vertices
// of this decoding graph) as 'o', X-type ancillas as 'x'.
//
// qubitMark, if non-nil, can override the glyph for a data qubit (return 0
// to keep the default) — used to draw error chains and corrections.
// vertexMark can likewise override ancilla glyphs for the given layer's
// vertices — used to draw detection events.
func (g *Graph) Render(layer int, qubitMark func(q int32) byte, vertexMark func(v int32) byte) string {
	d := g.Distance
	side := 2*d - 1
	var b strings.Builder
	b.Grow((side + 1) * (2 * side))
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteByte(g.glyphAt(i, j, layer, qubitMark, vertexMark))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (g *Graph) glyphAt(i, j, layer int, qubitMark func(q int32) byte, vertexMark func(v int32) byte) byte {
	switch {
	case (i+j)%2 == 0: // data qubit
		var q int32
		if i%2 == 0 { // vertical-type data qubit at (2k, 2c)
			q = g.VerticalQubit(i/2, j/2)
		} else { // horizontal-type at (2r+1, 2h+1)
			q = g.HorizontalQubit((i-1)/2, (j-1)/2)
		}
		if qubitMark != nil {
			if m := qubitMark(q); m != 0 {
				return m
			}
		}
		return GlyphData
	case i%2 == 1: // Z-type ancilla at (2r+1, 2c): a decoding-graph vertex
		v := g.VertexID((i-1)/2, j/2, layer)
		if vertexMark != nil {
			if m := vertexMark(v); m != 0 {
				return m
			}
		}
		return GlyphZAncilla
	default: // X-type ancilla
		return GlyphXAncilla
	}
}

// RenderSyndrome draws a layer with its detection events: defects as '#',
// and any data qubits marked in errQubits as 'E'.
func (g *Graph) RenderSyndrome(layer int, defects []int32, errQubits []int32) string {
	defectSet := make(map[int32]bool, len(defects))
	for _, v := range defects {
		defectSet[v] = true
	}
	errSet := make(map[int32]bool, len(errQubits))
	for _, q := range errQubits {
		errSet[q] = true
	}
	return g.Render(layer,
		func(q int32) byte {
			if errSet[q] {
				return 'E'
			}
			return 0
		},
		func(v int32) byte {
			if defectSet[v] {
				return '#'
			}
			return 0
		})
}
