package lattice

import "sync"

// Decoding graphs are immutable once built (nothing in the repository
// writes to a Graph after construction), so identical shapes can be shared
// freely between decoders, samplers, and goroutines. The cache below
// memoizes construction keyed on (distance, rounds, window): a Monte-Carlo
// sweep that visits the same distance at many error rates builds each graph
// once, and a System fleet of hundreds of logical qubits shares a single
// graph instead of holding one copy per qubit.
//
// The cache never evicts. Real workloads touch a handful of shapes (a few
// distances times closed-cycle/window), each a few hundred kilobytes, so
// unbounded retention is the right trade for a process-lifetime cache.

type graphKey struct {
	distance int
	rounds   int
	window   bool
}

var (
	cacheMu sync.Mutex
	cache   = map[graphKey]*Graph{}
)

// Cached returns the memoized decoding graph for the given shape, building
// it on first use. rounds == 1 yields the 2-D perfect-measurement graph
// (window must be false); otherwise the closed-cycle or window 3-D graph.
// The returned graph is shared: callers must treat it as read-only, which
// every decoder and sampler in this repository already does.
func Cached(distance, rounds int, window bool) *Graph {
	key := graphKey{distance, rounds, window}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := cache[key]; ok {
		return g
	}
	g := build(distance, rounds, window)
	cache[key] = g
	return g
}

// Cached2D returns the shared single-layer graph for distance d.
func Cached2D(d int) *Graph { return Cached(d, 1, false) }

// Cached3D returns the shared closed-logical-cycle graph.
func Cached3D(d, rounds int) *Graph { return Cached(d, rounds, false) }

// Cached3DWindow returns the shared continuous-operation window graph.
func Cached3DWindow(d, rounds int) *Graph { return Cached(d, rounds, true) }

// CacheSize reports the number of distinct graph shapes currently
// memoized (for tests and diagnostics).
func CacheSize() int {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return len(cache)
}
