package lattice

import (
	"testing"
	"testing/quick"
)

func TestGraphDimensions2D(t *testing.T) {
	for _, d := range []int{2, 3, 5, 7, 11, 25} {
		g := New2D(d)
		if got, want := g.V, d*(d-1); got != want {
			t.Errorf("d=%d: V = %d, want %d", d, got, want)
		}
		if got, want := len(g.Edges), d*d+(d-1)*(d-1); got != want {
			t.Errorf("d=%d: E = %d, want %d", d, got, want)
		}
		if got, want := g.NumDataQubits(), d*d+(d-1)*(d-1); got != want {
			t.Errorf("d=%d: data qubits = %d, want %d", d, got, want)
		}
		if got, want := g.NumAncillas(), d*(d-1); got != want {
			t.Errorf("d=%d: ancillas = %d, want %d", d, got, want)
		}
	}
}

func TestGraphDimensions3D(t *testing.T) {
	for _, d := range []int{3, 5, 11} {
		g := New3D(d, d)
		wantV := d * d * (d - 1)
		wantE := d*(d*d+(d-1)*(d-1)) + (d-1)*d*(d-1)
		if g.V != wantV {
			t.Errorf("d=%d: V = %d, want %d", d, g.V, wantV)
		}
		if len(g.Edges) != wantE {
			t.Errorf("d=%d: E = %d, want %d", d, len(g.Edges), wantE)
		}
	}
}

// TestWindowGraphMatchesStorageModel: the window graph is the one the
// hardware provisions memory for, so its dimensions must equal the storage
// model's V and E (paper Table I derivation).
func TestWindowGraphMatchesStorageModel(t *testing.T) {
	for _, d := range []int{3, 11, 25} {
		g := New3DWindow(d, d)
		wantV := d * d * (d - 1)
		wantE := d*(d*d+(d-1)*(d-1)) + d*d*(d-1)
		if g.V != wantV || len(g.Edges) != wantE {
			t.Errorf("d=%d window: (V,E) = (%d,%d), want (%d,%d)",
				d, g.V, len(g.Edges), wantV, wantE)
		}
	}
}

// TestHandshake: sum of degrees = 2E, counting the boundary vertex.
func TestHandshake(t *testing.T) {
	for _, g := range []*Graph{New2D(5), New3D(5, 5), New3DWindow(5, 5), New3D(4, 7)} {
		sum := 0
		for v := int32(0); v <= int32(g.V); v++ {
			sum += g.Degree(v)
		}
		if sum != 2*len(g.Edges) {
			t.Errorf("%v: degree sum %d != 2E = %d", g, sum, 2*len(g.Edges))
		}
	}
}

// TestInteriorDegrees: interior vertices of the 3-D graph have degree 6
// (4 spatial + 2 temporal), matching the cubic decoding lattice of Fig. 7.
func TestInteriorDegrees(t *testing.T) {
	g := New3D(7, 7)
	v := g.VertexID(3, 3, 3)
	if got := g.Degree(v); got != 6 {
		t.Errorf("interior 3-D vertex degree = %d, want 6", got)
	}
	g2 := New2D(7)
	if got := g2.Degree(g2.VertexID(3, 3, 0)); got != 4 {
		t.Errorf("interior 2-D vertex degree = %d, want 4", got)
	}
}

func TestVertexCoordsRoundTrip(t *testing.T) {
	g := New3D(7, 5)
	f := func(rRaw, cRaw, tRaw uint8) bool {
		r := int(rRaw) % (g.Distance - 1)
		c := int(cRaw) % g.Distance
		tt := int(tRaw) % g.Rounds
		v := g.VertexID(r, c, tt)
		gr, gc, gt := g.VertexCoords(v)
		return gr == r && gc == c && gt == tt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeAccessors(t *testing.T) {
	g := New3D(5, 5)
	// Spatial edge lookup must return an edge with the right qubit and
	// round.
	for tt := 0; tt < g.Rounds; tt++ {
		for q := int32(0); q < int32(g.NumDataQubits()); q++ {
			e := g.Edges[g.SpatialEdge(q, tt)]
			if e.Kind != Spatial || e.Qubit != q || int(e.Round) != tt {
				t.Fatalf("SpatialEdge(%d,%d) = %+v", q, tt, e)
			}
		}
	}
	for tt := 0; tt < g.Rounds-1; tt++ {
		e := g.Edges[g.TemporalEdge(2, 3, tt)]
		if e.Kind != Temporal || e.Qubit != -1 || int(e.Round) != tt {
			t.Fatalf("TemporalEdge(2,3,%d) = %+v", tt, e)
		}
		r1, c1, t1 := g.VertexCoords(e.U)
		r2, c2, t2 := g.VertexCoords(e.V)
		if r1 != 2 || c1 != 3 || t1 != tt || r2 != 2 || c2 != 3 || t2 != tt+1 {
			t.Fatalf("temporal edge endpoints wrong: %+v", e)
		}
	}
}

func TestWindowTemporalBoundary(t *testing.T) {
	g := New3DWindow(5, 5)
	e := g.Edges[g.TemporalEdge(1, 2, g.Rounds-1)]
	if e.Kind != Temporal || !g.IsBoundary(e.V) {
		t.Fatalf("final-layer temporal edge should hit the boundary: %+v", e)
	}
	// The closed-cycle graph must reject that index.
	defer func() {
		if recover() == nil {
			t.Fatal("closed-cycle TemporalEdge(_,_,rounds-1) did not panic")
		}
	}()
	New3D(5, 5).TemporalEdge(1, 2, 4)
}

// TestBoundaryEdgesPerLayer: each layer has exactly 2d spatial boundary
// edges (north and south ends of each column).
func TestBoundaryEdgesPerLayer(t *testing.T) {
	d := 7
	g := New3D(d, d)
	counts := make(map[int16]int)
	for _, e := range g.Edges {
		if e.Kind == Spatial && g.IsBoundary(e.V) {
			counts[e.Round]++
		}
	}
	for tt := 0; tt < d; tt++ {
		if counts[int16(tt)] != 2*d {
			t.Errorf("layer %d has %d boundary edges, want %d", tt, counts[int16(tt)], 2*d)
		}
	}
}

// TestGraphDistanceIsL1 validates the closed-form metric against BFS.
func TestGraphDistanceIsL1(t *testing.T) {
	g := New3D(4, 4)
	// BFS from a few sources over real vertices only.
	for _, src := range []int32{0, g.VertexID(1, 2, 1), g.VertexID(2, 3, 3)} {
		dist := bfs(g, src)
		for v := int32(0); v < int32(g.V); v++ {
			if dist[v] != g.GraphDistance(src, v) {
				t.Fatalf("distance(%d,%d): bfs %d, L1 %d", src, v, dist[v], g.GraphDistance(src, v))
			}
		}
	}
}

// TestBoundaryDistanceMatchesBFS validates the closed-form boundary
// distance.
func TestBoundaryDistanceMatchesBFS(t *testing.T) {
	for _, g := range []*Graph{New2D(5), New3D(4, 4), New3DWindow(4, 4)} {
		distB := bfsFromBoundary(g)
		for v := int32(0); v < int32(g.V); v++ {
			if distB[v] != g.BoundaryDistance(v) {
				r, c, tt := g.VertexCoords(v)
				t.Fatalf("%v: boundary distance of (%d,%d,%d): bfs %d, formula %d",
					g, r, c, tt, distB[v], g.BoundaryDistance(v))
			}
		}
	}
}

func bfs(g *Graph, src int32) []int {
	dist := make([]int, g.V+1)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.AdjacentEdges(v) {
			u := g.Other(e, v)
			if g.IsBoundary(u) || dist[u] >= 0 {
				continue
			}
			dist[u] = dist[v] + 1
			queue = append(queue, u)
		}
	}
	return dist
}

func bfsFromBoundary(g *Graph) []int {
	dist := make([]int, g.V+1)
	for i := range dist {
		dist[i] = -1
	}
	var queue []int32
	b := g.Boundary()
	for _, e := range g.AdjacentEdges(b) {
		u := g.Other(e, b)
		if dist[u] < 0 {
			dist[u] = 1
			queue = append(queue, u)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.AdjacentEdges(v) {
			u := g.Other(e, v)
			if g.IsBoundary(u) || dist[u] >= 0 {
				continue
			}
			dist[u] = dist[v] + 1
			queue = append(queue, u)
		}
	}
	return dist
}

func TestNorthCutQubits(t *testing.T) {
	g := New2D(5)
	cut := g.NorthCutQubits()
	if len(cut) != 5 {
		t.Fatalf("cut size %d, want 5", len(cut))
	}
	// Every cut qubit's edge must touch the boundary and row 0.
	for _, q := range cut {
		e := g.Edges[g.SpatialEdge(q, 0)]
		if !g.IsBoundary(e.V) && !g.IsBoundary(e.U) {
			t.Errorf("cut qubit %d edge does not touch boundary", q)
		}
	}
}

func TestInvalidConstructions(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("New2D(1)", func() { New2D(1) })
	mustPanic("New3D(3,0)", func() { New3D(3, 0) })
	mustPanic("New3DWindow(3,1)", func() { New3DWindow(3, 1) })
	mustPanic("2D TemporalEdge", func() { New2D(3).TemporalEdge(0, 0, 0) })
}

func TestQubitIndexingDisjoint(t *testing.T) {
	g := New2D(7)
	seen := make(map[int32]bool)
	d := g.Distance
	for k := 0; k < d; k++ {
		for c := 0; c < d; c++ {
			q := g.VerticalQubit(k, c)
			if seen[q] {
				t.Fatalf("duplicate qubit id %d", q)
			}
			seen[q] = true
		}
	}
	for r := 0; r < d-1; r++ {
		for h := 0; h < d-1; h++ {
			q := g.HorizontalQubit(r, h)
			if seen[q] {
				t.Fatalf("duplicate qubit id %d", q)
			}
			seen[q] = true
		}
	}
	if len(seen) != g.NumDataQubits() {
		t.Fatalf("indexed %d qubits, want %d", len(seen), g.NumDataQubits())
	}
}

func TestAncillaIndexAndLayer(t *testing.T) {
	for _, g := range []*Graph{New2D(5), New3D(4, 7), New3DWindow(3, 3)} {
		for v := int32(0); v < int32(g.V); v++ {
			r, c, layer := g.VertexCoords(v)
			if got := g.AncillaIndex(v); got != int32(r*g.Distance+c) {
				t.Fatalf("%v: AncillaIndex(%d) = %d, want %d", g, v, got, r*g.Distance+c)
			}
			if got := g.LayerOf(v); got != layer {
				t.Fatalf("%v: LayerOf(%d) = %d, want %d", g, v, got, layer)
			}
		}
	}
}

func TestEdgeBetween(t *testing.T) {
	for _, g := range []*Graph{New2D(4), New3D(3, 4), New3DWindow(4, 4)} {
		// Every real vertex pair at L1 distance 1 shares exactly one edge,
		// and EdgeBetween finds it; all other pairs have none.
		for u := int32(0); u < int32(g.V); u++ {
			for v := int32(0); v < int32(g.V); v++ {
				e := g.EdgeBetween(u, v)
				if u == v {
					if e != -1 {
						t.Fatalf("%v: self-edge %d at vertex %d", g, e, u)
					}
					continue
				}
				if g.GraphDistance(u, v) == 1 {
					if e == -1 {
						t.Fatalf("%v: adjacent vertices %d,%d have no edge", g, u, v)
					}
					if g.Other(e, u) != v {
						t.Fatalf("%v: EdgeBetween(%d,%d) = %d does not connect them", g, u, v, e)
					}
				} else if e != -1 {
					t.Fatalf("%v: non-adjacent vertices %d,%d got edge %d", g, u, v, e)
				}
			}
		}
	}
}

func TestFirstBoundaryEdge(t *testing.T) {
	for _, g := range []*Graph{New2D(4), New3D(3, 4), New3DWindow(4, 4)} {
		b := g.Boundary()
		for v := int32(0); v < int32(g.V); v++ {
			e := g.FirstBoundaryEdge(v)
			if (g.BoundaryDistance(v) == 1) != (e != -1) {
				t.Fatalf("%v: vertex %d: BoundaryDistance %d but FirstBoundaryEdge %d",
					g, v, g.BoundaryDistance(v), e)
			}
			if e == -1 {
				continue
			}
			if g.Other(e, v) != b {
				t.Fatalf("%v: FirstBoundaryEdge(%d) = %d does not reach the boundary", g, v, e)
			}
			// Lowest index: no earlier adjacent edge reaches the boundary.
			for _, e2 := range g.AdjacentEdges(v) {
				if e2 >= e {
					break
				}
				if g.Other(e2, v) == b {
					t.Fatalf("%v: vertex %d has earlier boundary edge %d < %d", g, v, e2, e)
				}
			}
		}
	}
}
