package lattice

import (
	"strings"
	"testing"
)

func TestRenderDistance3Layout(t *testing.T) {
	g := New2D(3)
	got := g.Render(0, nil, nil)
	want := strings.Join([]string{
		". x . x .",
		"o . o . o",
		". x . x .",
		"o . o . o",
		". x . x .",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("render mismatch:\n%s\nwant:\n%s", got, want)
	}
}

func TestRenderGlyphCounts(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		g := New2D(d)
		s := g.Render(0, nil, nil)
		if n := strings.Count(s, string(GlyphData)); n != g.NumDataQubits() {
			t.Errorf("d=%d: %d data glyphs, want %d", d, n, g.NumDataQubits())
		}
		if n := strings.Count(s, string(GlyphZAncilla)); n != d*(d-1) {
			t.Errorf("d=%d: %d Z glyphs, want %d", d, n, d*(d-1))
		}
		if n := strings.Count(s, string(GlyphXAncilla)); n != d*(d-1) {
			t.Errorf("d=%d: %d X glyphs, want %d", d, n, d*(d-1))
		}
	}
}

func TestRenderSyndromeMarksErrorAndDefects(t *testing.T) {
	g := New2D(3)
	// An error on the central horizontal qubit flips its two row ancillas.
	q := g.HorizontalQubit(0, 0)
	e := g.SpatialEdge(q, 0)
	ed := g.Edges[e]
	got := g.RenderSyndrome(0, []int32{ed.U, ed.V}, []int32{q})
	want := strings.Join([]string{
		". x . x .",
		"# E # . o",
		". x . x .",
		"o . o . o",
		". x . x .",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("syndrome render mismatch:\n%s\nwant:\n%s", got, want)
	}
}

func TestRenderLayerSelectsVertices(t *testing.T) {
	g := New3D(3, 3)
	v := g.VertexID(0, 0, 2) // defect in layer 2 only
	layer0 := g.RenderSyndrome(0, []int32{v}, nil)
	layer2 := g.RenderSyndrome(2, []int32{v}, nil)
	if strings.Contains(layer0, "#") {
		t.Fatal("layer 0 shows a layer-2 defect")
	}
	if !strings.Contains(layer2, "#") {
		t.Fatal("layer 2 misses its defect")
	}
}
