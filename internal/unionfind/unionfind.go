// Package unionfind implements the array-based disjoint-set forest used by
// the Gr-Gen stage of the AFS decoder. It mirrors the hardware structures
// described in the paper: a Root Table (parent pointers), a Size Table
// (weighted union), and tree-traversal registers that record the vertices
// visited by Find so the hardware can path-compress them in bulk.
//
// The implementation counts Root/Size table reads and writes so the
// micro-architecture model can charge memory-access latency for them.
package unionfind

// Forest is a disjoint-set forest over n elements with union by size and
// path compression. The zero value is not usable; construct with New.
type Forest struct {
	parent []int32
	size   []int32

	// traversal emulates the hardware tree-traversal registers: the
	// vertices visited during the most recent Find, recorded so they can be
	// re-pointed at the root (path compression) exactly as the Gr-Gen does.
	traversal []int32

	// ident holds the identity mapping and ones an all-ones column so Reset
	// can restore both tables with two vectorized copies instead of an
	// element-by-element loop.
	ident []int32
	ones  []int32

	// Access counters (Root Table and Size Table reads/writes) consumed by
	// the micro-architecture latency model.
	RootReads  uint64
	RootWrites uint64
	SizeReads  uint64
	SizeWrites uint64
}

// New returns a forest of n singleton sets.
func New(n int) *Forest {
	f := &Forest{
		parent:    make([]int32, n),
		size:      make([]int32, n),
		traversal: make([]int32, 0, 32),
		ident:     make([]int32, n),
		ones:      make([]int32, n),
	}
	for i := 0; i < n; i++ {
		f.ident[i] = int32(i)
		f.ones[i] = 1
	}
	f.Reset()
	return f
}

// Len returns the number of elements in the forest.
func (f *Forest) Len() int { return len(f.parent) }

// Reset restores every element to a singleton set and clears the access
// counters. It allows a decoder instance to be reused across syndromes
// without reallocating, which is what the hardware does between logical
// cycles.
func (f *Forest) Reset() {
	copy(f.parent, f.ident)
	copy(f.size, f.ones)
	f.ResetCounters()
}

// ResetCounters clears the access counters without touching set structure.
// Callers performing sparse resets (Reinit on the touched elements only)
// use it to start a fresh accounting period.
func (f *Forest) ResetCounters() {
	f.RootReads, f.RootWrites = 0, 0
	f.SizeReads, f.SizeWrites = 0, 0
}

// Reinit restores element v to a singleton set without charging table
// accesses. It is the sparse counterpart of Reset: a caller that knows
// which elements were touched since the last reset can restore exactly
// those in O(touched) instead of O(n), which is what makes decoder reuse
// cheap for sparse syndromes.
func (f *Forest) Reinit(v int32) {
	f.parent[v] = v
	f.size[v] = 1
}

// Find returns the representative of x, path-compressing every vertex
// visited along the way (recorded in the traversal registers first, then
// written back, as in the hardware design).
func (f *Forest) Find(x int32) int32 {
	f.traversal = f.traversal[:0]
	for {
		p := f.parent[x]
		f.RootReads++
		if p == x {
			break
		}
		f.traversal = append(f.traversal, x)
		x = p
	}
	// Bulk path compression from the traversal registers.
	for _, v := range f.traversal {
		if f.parent[v] != x {
			f.parent[v] = x
			f.RootWrites++
		}
	}
	return x
}

// FindQuiet is Find without access accounting, for bulk Monte-Carlo
// decoding where the memory-traffic profile is not consumed. It uses
// two-pass path compression instead of the traversal registers.
func (f *Forest) FindQuiet(x int32) int32 {
	root := x
	for f.parent[root] != root {
		root = f.parent[root]
	}
	for f.parent[x] != root {
		x, f.parent[x] = f.parent[x], root
	}
	return root
}

// UnionRootsQuiet is UnionRoots without access accounting.
func (f *Forest) UnionRootsQuiet(ra, rb int32) int32 {
	if ra == rb {
		return ra
	}
	if f.size[ra] < f.size[rb] {
		ra, rb = rb, ra
	}
	f.parent[rb] = ra
	f.size[ra] += f.size[rb]
	return ra
}

// FindReadOnly returns the representative of x without modifying the
// forest or its access counters. It is the only find safe to call from
// multiple goroutines concurrently (against a forest no goroutine is
// mutating): it performs no path compression and touches no shared
// bookkeeping, so the tile-parallel growth phase can resolve roots from
// every worker while unions remain confined to the sequential
// reconciliation phase.
func (f *Forest) FindReadOnly(x int32) int32 {
	for {
		p := f.parent[x]
		if p == x {
			return x
		}
		x = p
	}
}

// FindNoCompress returns the representative of x without modifying the
// forest. It exists for the ablation study of path compression.
func (f *Forest) FindNoCompress(x int32) int32 {
	for {
		p := f.parent[x]
		f.RootReads++
		if p == x {
			return x
		}
		x = p
	}
}

// Union merges the sets containing a and b and returns the representative
// of the merged set. Union by size: the smaller tree is attached beneath
// the larger one, minimizing Root Table updates (the optimization the
// paper's Size Table exists for).
func (f *Forest) Union(a, b int32) int32 {
	ra, rb := f.Find(a), f.Find(b)
	if ra == rb {
		return ra
	}
	f.SizeReads += 2
	if f.size[ra] < f.size[rb] {
		ra, rb = rb, ra
	}
	f.parent[rb] = ra
	f.RootWrites++
	f.size[ra] += f.size[rb]
	f.SizeWrites++
	return ra
}

// UnionUnweighted merges without consulting the Size Table (always attaches
// b's root under a's root). It exists for the ablation study of weighted
// union.
func (f *Forest) UnionUnweighted(a, b int32) int32 {
	ra, rb := f.Find(a), f.Find(b)
	if ra == rb {
		return ra
	}
	f.parent[rb] = ra
	f.RootWrites++
	f.size[ra] += f.size[rb]
	return ra
}

// UnionRoots merges the sets whose representatives are ra and rb (both must
// currently be roots) and returns the surviving representative. It performs
// union by size without the internal Find calls of Union, for callers that
// already hold the roots.
func (f *Forest) UnionRoots(ra, rb int32) int32 {
	if ra == rb {
		return ra
	}
	f.SizeReads += 2
	if f.size[ra] < f.size[rb] {
		ra, rb = rb, ra
	}
	f.parent[rb] = ra
	f.RootWrites++
	f.size[ra] += f.size[rb]
	f.SizeWrites++
	return ra
}

// UnionRootsUnweighted merges root rb under root ra unconditionally. It
// exists for the ablation study of weighted union.
func (f *Forest) UnionRootsUnweighted(ra, rb int32) int32 {
	if ra == rb {
		return ra
	}
	f.parent[rb] = ra
	f.RootWrites++
	f.size[ra] += f.size[rb]
	return ra
}

// Size returns the number of elements in the set containing x.
func (f *Forest) Size(x int32) int32 {
	f.SizeReads++
	return f.size[f.Find(x)]
}

// Same reports whether a and b are in the same set.
func (f *Forest) Same(a, b int32) bool { return f.Find(a) == f.Find(b) }
