package unionfind

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	f := New(10)
	for i := int32(0); i < 10; i++ {
		if f.Find(i) != i {
			t.Fatalf("fresh element %d not its own root", i)
		}
		if f.Size(i) != 1 {
			t.Fatalf("fresh element %d size != 1", i)
		}
	}
	if f.Len() != 10 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestUnionFindBasics(t *testing.T) {
	f := New(8)
	f.Union(0, 1)
	f.Union(2, 3)
	if !f.Same(0, 1) || !f.Same(2, 3) || f.Same(0, 2) {
		t.Fatal("union/same broken")
	}
	f.Union(1, 3)
	if !f.Same(0, 2) {
		t.Fatal("transitive union broken")
	}
	if f.Size(0) != 4 {
		t.Fatalf("size = %d, want 4", f.Size(0))
	}
	if f.Same(0, 7) {
		t.Fatal("disjoint elements reported same")
	}
}

func TestUnionReturnsRoot(t *testing.T) {
	f := New(6)
	r := f.Union(1, 2)
	if f.Find(1) != r || f.Find(2) != r {
		t.Fatal("Union did not return the representative")
	}
	if f.Union(1, 2) != r {
		t.Fatal("re-union of same set changed root")
	}
}

func TestUnionRootsRequiresRootsButMerges(t *testing.T) {
	f := New(6)
	ra, rb := f.Find(0), f.Find(5)
	rn := f.UnionRoots(ra, rb)
	if !f.Same(0, 5) || (rn != ra && rn != rb) {
		t.Fatal("UnionRoots broken")
	}
	if f.UnionRoots(rn, rn) != rn {
		t.Fatal("self-union changed root")
	}
}

func TestWeightedUnionAttachesSmallUnderLarge(t *testing.T) {
	f := New(10)
	// Build a 3-element set rooted at r3 and a singleton.
	r3 := f.Union(0, 1)
	r3 = f.UnionRoots(r3, f.Find(2))
	got := f.UnionRoots(r3, f.Find(9))
	if got != r3 {
		t.Fatalf("weighted union made the small tree's root survive")
	}
}

// TestAgainstNaive compares the forest against a naive labeling under a
// random operation sequence.
func TestAgainstNaive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		const n = 40
		forest := New(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for op := 0; op < 120; op++ {
			a, b := int32(rng.IntN(n)), int32(rng.IntN(n))
			switch rng.IntN(3) {
			case 0:
				forest.Union(a, b)
				relabel(label[a], label[b])
			case 1:
				if forest.Same(a, b) != (label[a] == label[b]) {
					return false
				}
			case 2:
				want := 0
				for i := range label {
					if label[i] == label[a] {
						want++
					}
				}
				if int(forest.Size(a)) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFindNoCompressDoesNotMutate(t *testing.T) {
	f := New(16)
	// Chain 0 <- 1 <- 2 <- 3 via unweighted unions.
	f.UnionRootsUnweighted(0, 1)
	f.UnionRootsUnweighted(1, 2) // 2 not a root anymore? ensure via find
	// Rebuild a deterministic chain directly.
	g := New(4)
	g.UnionRootsUnweighted(2, 3)
	g.UnionRootsUnweighted(1, 2)
	g.UnionRootsUnweighted(0, 1)
	reads0 := g.RootReads
	if g.FindNoCompress(3) != 0 {
		t.Fatal("chain root wrong")
	}
	steps1 := g.RootReads - reads0
	if g.FindNoCompress(3) != 0 {
		t.Fatal("chain root wrong on re-find")
	}
	steps2 := g.RootReads - reads0 - steps1
	if steps1 != steps2 {
		t.Fatalf("FindNoCompress mutated the tree: %d then %d reads", steps1, steps2)
	}
	// Compressing Find must shorten subsequent lookups.
	if g.Find(3) != 0 {
		t.Fatal("find root wrong")
	}
	before := g.RootReads
	g.Find(3)
	if got := g.RootReads - before; got != 2 {
		t.Fatalf("path compression ineffective: %d reads after compress", got)
	}
}

func TestResetRestoresSingletonsAndCounters(t *testing.T) {
	f := New(8)
	f.Union(0, 1)
	f.Union(2, 3)
	f.Reset()
	if f.RootReads != 0 || f.RootWrites != 0 || f.SizeReads != 0 || f.SizeWrites != 0 {
		t.Fatal("reset did not clear counters")
	}
	for i := int32(0); i < 8; i++ {
		if f.Find(i) != i || f.Size(i) != 1 {
			t.Fatal("reset did not restore singletons")
		}
	}
}

func TestAccessCountersMove(t *testing.T) {
	f := New(8)
	f.Union(0, 1)
	if f.RootReads == 0 || f.RootWrites == 0 || f.SizeReads == 0 || f.SizeWrites == 0 {
		t.Fatalf("union left counters untouched: %+v", f)
	}
}
