package cda

import (
	"math"
	"reflect"
	"testing"

	"afs/internal/microarch"
)

// constPool returns a pool with one fixed stage profile, so queueing
// behavior can be verified analytically.
func constPool(gg, dfs, corr float64) []microarch.Breakdown {
	return []microarch.Breakdown{{GrGen: gg, DFS: dfs, Corr: corr, Exposed: gg + dfs + corr}}
}

func TestSingleQubitBlockNoContentionOnFirstTask(t *testing.T) {
	// One qubit, one unit of each type: the X task flows through with zero
	// queueing; the Z task queues behind it at every stage.
	pool := constPool(10, 20, 30)
	r := Simulate(Config{QubitsPerBlock: 1, GrGenUnits: 1, DFSUnits: 1, CorrUnits: 1}, pool, 100, 1)
	if len(r.CompletionNS) != 200 {
		t.Fatalf("want 200 task completions, got %d", len(r.CompletionNS))
	}
	// First task: 10+20+30 = 60. Second: GG at 20, DFS waits for DFS-free
	// at 30 -> 50, CORR waits for corr-free at 60 -> 90.
	if r.CompletionNS[0] != 60 {
		t.Errorf("first task completion = %v, want 60", r.CompletionNS[0])
	}
	if r.CompletionNS[1] != 90 {
		t.Errorf("second task completion = %v, want 90", r.CompletionNS[1])
	}
}

func TestPaperBlockQueueing(t *testing.T) {
	// Paper configuration: N=2 qubits, shared tables (serialized Gr-Gen),
	// one DFS, one CORR. With constant profiles the completions are
	// deterministic: GG done at 10,20,30,40; DFS (one server, 20 each)
	// done at 30,50,70,90; CORR (30 each) done at 60,90,120,150.
	pool := constPool(10, 20, 30)
	r := Simulate(Config{}, pool, 1, 1)
	want := []float64{60, 90, 120, 150}
	if !reflect.DeepEqual(r.CompletionNS, want) {
		t.Fatalf("completions = %v, want %v", r.CompletionNS, want)
	}
}

func TestMoreUnitsNeverSlower(t *testing.T) {
	lat := microarch.CollectLatencies(microarch.CollectConfig{
		Distance: 7, P: 1e-3, Trials: 20000, Seed: 5, KeepBreakdowns: true})
	base := Simulate(Config{}, lat.Breakdowns, 20000, 3)
	moreDFS := Simulate(Config{DFSUnits: 2, CorrUnits: 2}, lat.Breakdowns, 20000, 3)
	if moreDFS.Summary.Mean > base.Summary.Mean+1e-9 {
		t.Errorf("adding DFS/CORR units increased mean latency: %.2f > %.2f",
			moreDFS.Summary.Mean, base.Summary.Mean)
	}
	noShare := Simulate(Config{NoSharedTables: true}, lat.Breakdowns, 20000, 3)
	if noShare.Summary.Mean > base.Summary.Mean+1e-9 {
		t.Errorf("unsharing tables increased mean latency: %.2f > %.2f",
			noShare.Summary.Mean, base.Summary.Mean)
	}
}

func TestTimeoutCounting(t *testing.T) {
	// Profiles that always exceed the deadline must time out every task.
	pool := constPool(200, 100, 100)
	r := Simulate(Config{}, pool, 10, 1)
	if r.Timeouts != uint64(len(r.CompletionNS)) {
		t.Fatalf("timeouts = %d, want all %d", r.Timeouts, len(r.CompletionNS))
	}
	if r.EmpiricalTimeoutRate != 1 {
		t.Fatalf("timeout rate = %v, want 1", r.EmpiricalTimeoutRate)
	}
	// And comfortable profiles must never time out.
	fast := Simulate(Config{}, constPool(5, 5, 5), 10, 1)
	if fast.Timeouts != 0 {
		t.Fatalf("fast profiles timed out %d times", fast.Timeouts)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	lat := microarch.CollectLatencies(microarch.CollectConfig{
		Distance: 5, P: 1e-3, Trials: 5000, Seed: 2, KeepBreakdowns: true})
	a := Simulate(Config{}, lat.Breakdowns, 5000, 11)
	b := Simulate(Config{}, lat.Breakdowns, 5000, 11)
	if !reflect.DeepEqual(a.CompletionNS, b.CompletionNS) {
		t.Fatal("same seed produced different traces")
	}
	c := Simulate(Config{}, lat.Breakdowns, 5000, 12)
	if reflect.DeepEqual(a.CompletionNS, c.CompletionNS) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestFig12Shape checks the Conjoined-Decoder headline behaviour at the
// paper's system point: contention roughly doubles the dedicated-decoder
// latency but the distribution stays comfortably inside the 400 ns round,
// with only a rare-event tail past the 350 ns deadline.
func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo calibration test")
	}
	lat := microarch.CollectLatencies(microarch.CollectConfig{
		Distance: 11, P: 1e-3, Trials: 100000, Seed: 4, KeepBreakdowns: true})
	r := Simulate(Config{}, lat.Breakdowns, 100000, 7)
	if r.Summary.Mean < 80 || r.Summary.Mean > 150 {
		t.Errorf("CDA mean latency = %.1f ns, paper reports 95 ns", r.Summary.Mean)
	}
	if r.Summary.Median < 70 || r.Summary.Median > 140 {
		t.Errorf("CDA median latency = %.1f ns, paper reports 85 ns", r.Summary.Median)
	}
	if r.Summary.P999 > DefaultTimeoutNS {
		t.Errorf("CDA p99.9 = %.1f ns exceeds the %v ns deadline", r.Summary.P999, DefaultTimeoutNS)
	}
	if r.EmpiricalTimeoutRate > 1e-3 {
		t.Errorf("timeout rate = %.2g, far above the rare-event regime", r.EmpiricalTimeoutRate)
	}
	if math.IsNaN(r.PTimeout) {
		t.Error("PTimeout is NaN")
	}
}

func TestSweepSharing(t *testing.T) {
	lat := microarch.CollectLatencies(microarch.CollectConfig{
		Distance: 7, P: 1e-3, Trials: 10000, Seed: 8, KeepBreakdowns: true})
	pts := SweepSharing(PaperDesignSpace(), lat.Breakdowns, 10000, 5)
	if len(pts) != len(PaperDesignSpace()) {
		t.Fatalf("sweep returned %d points", len(pts))
	}
	// The dedicated-equivalent configuration must be the fastest; the most
	// aggressively shared (N=4, 1 DFS) must be the slowest.
	fastest, slowest := pts[0].Result.Summary.Mean, pts[0].Result.Summary.Mean
	var slowestCfg Config
	for _, p := range pts {
		if p.Result.Summary.Mean < fastest {
			fastest = p.Result.Summary.Mean
		}
		if p.Result.Summary.Mean > slowest {
			slowest = p.Result.Summary.Mean
			slowestCfg = p.Config
		}
	}
	if pts[0].Result.Summary.Mean != fastest {
		t.Fatalf("dedicated-equivalent (%.1f ns) is not the fastest (%.1f ns)",
			pts[0].Result.Summary.Mean, fastest)
	}
	if slowestCfg.QubitsPerBlock != 4 || slowestCfg.DFSUnits != 1 {
		t.Fatalf("slowest configuration unexpectedly %+v", slowestCfg)
	}
}
