package cda

import "afs/internal/microarch"

// SweepPoint is one evaluated decoder-block configuration.
type SweepPoint struct {
	Config Config
	Result Result
}

// SweepSharing evaluates a set of block configurations over the same
// latency pool and cycle budget — the (alpha, beta) design-space
// exploration of paper §V-A. Configurations are evaluated with distinct
// deterministic seeds derived from the base seed.
func SweepSharing(configs []Config, pool []microarch.Breakdown, cycles int, seed uint64) []SweepPoint {
	out := make([]SweepPoint, 0, len(configs))
	for i, cfg := range configs {
		r := Simulate(cfg, pool, cycles, seed+uint64(i)*0x9e3779b9)
		out = append(out, SweepPoint{Config: r.Config, Result: r})
	}
	return out
}

// PaperDesignSpace returns the block configurations the extension study
// evaluates: the dedicated-equivalent baseline, the paper's chosen point,
// and its neighbors in sharing degree.
func PaperDesignSpace() []Config {
	return []Config{
		{QubitsPerBlock: 1, DFSUnits: 2, CorrUnits: 2, NoSharedTables: true}, // dedicated-equivalent
		{}, // paper point: N=2, 1 DFS, 1 CORR, shared tables
		{DFSUnits: 2, CorrUnits: 2},
		{NoSharedTables: true},
		{QubitsPerBlock: 4},
		{QubitsPerBlock: 4, DFSUnits: 2, CorrUnits: 2},
	}
}
