// Package cda models the Conjoined-Decoder Architecture (paper §V): decoder
// blocks in which N logical qubits share a reduced, non-uniform set of
// pipeline units instead of owning 2N dedicated decoders.
//
// The paper's chosen configuration, reproduced by DefaultConfig, gives an
// FTQC with L logical qubits L Gr-Gen units (one per qubit, each growing
// clusters for both the X and the Z syndrome), L/2 DFS Engines and L/2
// CORR Engines — a 2x/4x/4x unit reduction — with pairs of Gr-Gen units
// sharing their Root and Size tables, which serializes cluster growth
// within a block while the two STMs keep operating in parallel.
//
// Sharing introduces a second failure source beside logical errors: a
// *timeout failure*, when contention delays a logical qubit's decode past
// the timeout threshold (350 ns, inside the 400 ns syndrome round). The
// accuracy constraint is p_tof << p_log (Eq. 4). Timeout probabilities of
// order 1e-11 are unreachable by direct sampling, so — like the paper's
// "performance model embedded in our simulator" — the package combines a
// discrete-event contention simulation over Monte-Carlo syndrome profiles
// with tail extrapolation of the resulting completion-time distribution.
package cda

import (
	"math/rand/v2"
	"sort"

	"afs/internal/microarch"
	"afs/internal/stats"
)

// DefaultTimeoutNS is the decoding deadline within the 400 ns round.
const DefaultTimeoutNS = 350.0

// Config describes a decoder block and the workload used to evaluate it.
type Config struct {
	// QubitsPerBlock is N, the number of logical qubits sharing a block.
	// Each qubit contributes two decoding tasks per logical cycle (X and
	// Z). 0 selects the paper's N=2.
	QubitsPerBlock int
	// GrGenUnits, DFSUnits and CorrUnits are the pipeline units per block.
	// 0 selects the paper's configuration (N Gr-Gen, 1 DFS, 1 CORR for
	// N=2).
	GrGenUnits int
	DFSUnits   int
	CorrUnits  int
	// SharedTables serializes Gr-Gen growth across the block (paired
	// Gr-Gen units share Root/Size tables). Default true, as in the paper's
	// final design point.
	SharedTables bool
	// NoSharedTables disables table sharing (ablation).
	NoSharedTables bool
	// TimeoutNS is the decoding deadline; 0 selects DefaultTimeoutNS.
	TimeoutNS float64
}

func (c Config) withDefaults() Config {
	if c.QubitsPerBlock == 0 {
		c.QubitsPerBlock = 2
	}
	if c.GrGenUnits == 0 {
		c.GrGenUnits = c.QubitsPerBlock
	}
	if c.DFSUnits == 0 {
		c.DFSUnits = 1
	}
	if c.CorrUnits == 0 {
		c.CorrUnits = 1
	}
	if c.TimeoutNS == 0 {
		c.TimeoutNS = DefaultTimeoutNS
	}
	c.SharedTables = !c.NoSharedTables
	return c
}

// AdmissionCap returns the number of logical-qubit streams a decode shard
// provisioned with `blocks` CDA decoder blocks admits: QubitsPerBlock
// streams per block (each logical qubit owns one Gr-Gen slot in its block;
// the DFS/CORR engines are the shared resources whose contention Simulate
// models). A decode-fleet shard uses this as its admission policy — streams
// past the cap are refused at Open so the router places them on a block
// that still has a slot, instead of silently overcommitting the shared
// pipeline units and inflating p_tof. blocks <= 0 yields 0 (admit nothing).
func AdmissionCap(blocks int, cfg Config) int {
	if blocks <= 0 {
		return 0
	}
	return blocks * cfg.withDefaults().QubitsPerBlock
}

// Result summarizes a CDA contention run.
type Result struct {
	Config Config
	// CompletionNS holds every task's completion time (2N per cycle).
	CompletionNS []float64
	// Summary are the distribution statistics of CompletionNS (the paper's
	// Fig. 12 reports mean 95 ns, median 85 ns, p99.9 190 ns).
	Summary stats.Summary
	// Timeouts is the number of tasks that missed the deadline, and
	// EmpiricalTimeoutRate the direct-sampling estimate.
	Timeouts             uint64
	EmpiricalTimeoutRate float64
	// TailFit extrapolates the completion CCDF; PTimeout is the
	// extrapolated probability of exceeding the deadline (the paper's
	// p_tof = 2e-11). TailOK reports whether the fit succeeded.
	TailFit  stats.TailFit
	TailOK   bool
	PTimeout float64
}

// Simulate runs `cycles` logical cycles of one decoder block, drawing each
// task's stage profile from the per-syndrome latency breakdowns in pool
// (collected by microarch.CollectLatencies with KeepBreakdowns).
func Simulate(cfg Config, pool []microarch.Breakdown, cycles int, seed uint64) Result {
	cfg = cfg.withDefaults()
	if len(pool) == 0 {
		panic("cda: empty latency pool")
	}
	rng := rand.New(rand.NewPCG(seed, 0xcda))
	tasks := 2 * cfg.QubitsPerBlock
	res := Result{Config: cfg}
	res.CompletionNS = make([]float64, 0, cycles*tasks)

	ggFree := make([]float64, cfg.GrGenUnits)
	dfsFree := make([]float64, cfg.DFSUnits)
	corrFree := make([]float64, cfg.CorrUnits)
	ggDone := make([]float64, tasks)
	dfsDone := make([]float64, tasks)
	completions := make([]float64, tasks)
	draw := make([]microarch.Breakdown, tasks)

	for c := 0; c < cycles; c++ {
		for i := range draw {
			draw[i] = pool[rng.IntN(len(pool))]
		}
		for i := range ggFree {
			ggFree[i] = 0
		}
		for i := range dfsFree {
			dfsFree[i] = 0
		}
		for i := range corrFree {
			corrFree[i] = 0
		}

		// Gr-Gen. Tasks are interleaved round-robin across qubits: first
		// every qubit's X syndrome, then every qubit's Z syndrome. With
		// shared Root/Size tables only one Gr-Gen grows at a time, so the
		// block behaves as a single growth server; without sharing, each
		// qubit's Gr-Gen runs its own two tasks back to back.
		if cfg.SharedTables {
			clock := 0.0
			for i := 0; i < tasks; i++ {
				clock += draw[i].GrGen
				ggDone[i] = clock
			}
		} else {
			for i := 0; i < tasks; i++ {
				unit := (i % cfg.QubitsPerBlock) % cfg.GrGenUnits
				ggFree[unit] += draw[i].GrGen
				ggDone[i] = ggFree[unit]
			}
		}

		// DFS Engines: first-ready first-served onto the earliest-free
		// unit (the Select logic's round-robin arbitration).
		assignStage(ggDone, dfsFree, dfsDone, draw, stageDFS)
		// CORR Engines.
		assignStage(dfsDone, corrFree, completions, draw, stageCorr)
		res.CompletionNS = append(res.CompletionNS, completions...)
	}

	res.Summary = stats.Summarize(res.CompletionNS)
	for _, t := range res.CompletionNS {
		if t > cfg.TimeoutNS {
			res.Timeouts++
		}
	}
	res.EmpiricalTimeoutRate = float64(res.Timeouts) / float64(len(res.CompletionNS))
	if fit, err := stats.FitTail(res.CompletionNS, 0.999); err == nil {
		res.TailFit = fit
		res.TailOK = true
		res.PTimeout = fit.Exceedance(cfg.TimeoutNS)
		if res.EmpiricalTimeoutRate > res.PTimeout {
			res.PTimeout = res.EmpiricalTimeoutRate
		}
	} else {
		res.PTimeout = res.EmpiricalTimeoutRate
	}
	return res
}

type stageKind int

const (
	stageDFS stageKind = iota
	stageCorr
)

// assignStage schedules every task onto the stage's units: tasks are taken
// in order of readiness, each placed on the earliest-free unit, and their
// completion times written to done.
func assignStage(ready, free, done []float64, draw []microarch.Breakdown, kind stageKind) {
	n := len(ready)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return ready[order[a]] < ready[order[b]] })
	for _, i := range order {
		// Earliest-free unit; ties resolved by index (round robin across a
		// symmetric initial state).
		u := 0
		for j := 1; j < len(free); j++ {
			if free[j] < free[u] {
				u = j
			}
		}
		start := ready[i]
		if free[u] > start {
			start = free[u]
		}
		var dur float64
		if kind == stageDFS {
			dur = draw[i].DFS
		} else {
			dur = draw[i].Corr
		}
		free[u] = start + dur
		done[i] = free[u]
	}
}
