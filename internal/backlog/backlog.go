// Package backlog models the backlog problem (paper §II-C, [Terhal, RMP
// 87]): syndrome data arrives once per logical cycle, and if the decoder
// cannot keep up, undecoded syndromes accumulate. Because a fault-tolerant
// computation cannot execute a non-Clifford gate until the relevant
// syndromes are decoded, a growing backlog stalls the machine — this is
// why the paper insists decoders finish within one syndrome measurement
// round (400 ns).
//
// The model is a deterministic-arrival, general-service (D/G/1) queue:
// decoding jobs arrive every ArrivalNS nanoseconds and are served by one
// decoder whose service times are drawn from a measured latency
// distribution. The queue is stable exactly when the mean service time is
// below the arrival period; the simulation quantifies both regimes — how
// deep the queue gets at d=11 (never more than a job or two) and how fast
// it diverges when the decoder is too slow for the code.
package backlog

import (
	"math/rand/v2"

	"afs/internal/stats"
)

// Config describes a backlog simulation.
type Config struct {
	// ArrivalNS is the period between decoding jobs (one logical cycle per
	// syndrome round; the paper's superconducting round is 400 ns).
	ArrivalNS float64
	// Jobs is the number of arrivals to simulate.
	Jobs int
	// Seed makes the run reproducible.
	Seed uint64
}

// Result summarizes queue behaviour.
type Result struct {
	// Stable reports whether the mean service time is below the arrival
	// period (the queueing stability condition).
	Stable bool
	// Utilization is mean service time over arrival period.
	Utilization float64
	// MaxQueueDepth is the deepest backlog observed (jobs waiting or in
	// service).
	MaxQueueDepth int
	// FinalQueueDepth is the backlog when the run ends; for an unstable
	// system it grows linearly with the number of jobs.
	FinalQueueDepth int
	// WaitNS summarizes the time jobs spent queued before service began.
	WaitNS stats.Summary
	// SojournNS summarizes total time from arrival to completion.
	SojournNS stats.Summary
}

// Simulate runs the queue over service times drawn uniformly from the pool
// (a measured latency distribution, e.g. LatencyResult.Samples()).
func Simulate(cfg Config, pool []float64) Result {
	if cfg.ArrivalNS <= 0 {
		panic("backlog: arrival period must be positive")
	}
	if len(pool) == 0 {
		panic("backlog: empty service-time pool")
	}
	if cfg.Jobs <= 0 {
		panic("backlog: jobs must be positive")
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xbac1))

	var meanService float64
	for _, s := range pool {
		meanService += s
	}
	meanService /= float64(len(pool))

	res := Result{
		Stable:      meanService < cfg.ArrivalNS,
		Utilization: meanService / cfg.ArrivalNS,
	}

	waits := make([]float64, cfg.Jobs)
	sojourns := make([]float64, cfg.Jobs)
	// completion[i] is when job i finishes; the queue depth at an arrival
	// is the number of earlier jobs not yet complete. Track with a moving
	// window index since completions are monotone for a single server.
	serverFree := 0.0
	completions := make([]float64, cfg.Jobs)
	oldest := 0
	for i := 0; i < cfg.Jobs; i++ {
		arrive := float64(i) * cfg.ArrivalNS
		start := arrive
		if serverFree > start {
			start = serverFree
		}
		service := pool[rng.IntN(len(pool))]
		serverFree = start + service
		completions[i] = serverFree
		waits[i] = start - arrive
		sojourns[i] = serverFree - arrive

		for oldest < i && completions[oldest] <= arrive {
			oldest++
		}
		depth := i - oldest + 1
		if depth > res.MaxQueueDepth {
			res.MaxQueueDepth = depth
		}
	}
	endTime := float64(cfg.Jobs-1) * cfg.ArrivalNS
	final := 0
	for i := oldest; i < cfg.Jobs; i++ {
		if completions[i] > endTime {
			final++
		}
	}
	res.FinalQueueDepth = final
	res.WaitNS = stats.Summarize(waits)
	res.SojournNS = stats.Summarize(sojourns)
	return res
}
