package backlog

// BoundedQueue is the online form of the package's D/G/1 model, for use
// *inside* a running decoder rather than over a pre-measured latency pool:
// decode jobs arrive on a deterministic clock (one syndrome round per
// ArrivalNS), a single virtual server consumes model service time, and the
// backlog — how far the server lags behind arrivals — is bounded. When the
// lag exceeds Cap arrival periods the queue tells the caller to shed its
// oldest undecoded work (the paper's backlog problem, resolved by policy
// instead of by stalling the quantum machine), and it tracks shedding
// episodes and recoveries so graceful degradation is measurable, not
// silent.
//
// All time is model nanoseconds; nothing reads a wall clock, so runs are
// bit-identical across worker counts.
type BoundedQueue struct {
	// ArrivalNS is the period between job arrivals (a syndrome round).
	ArrivalNS float64
	// Cap is the backlog bound in arrival periods; 0 disables shedding.
	Cap int

	nowNS    float64 // arrival clock
	freeNS   float64 // when the virtual server frees up
	shedding bool

	// Sheds counts episodes in which the queue exceeded Cap and began
	// shedding; Recoveries counts episodes that drained back under Cap/2
	// (the hysteresis keeps a queue hovering at the bound from flapping).
	Sheds, Recoveries uint64
}

// Arrive advances the arrival clock by one period and reports whether the
// backlog bound is exceeded — i.e. whether the caller should shed its
// oldest undecoded round.
func (q *BoundedQueue) Arrive() (shed bool) {
	q.nowNS += q.ArrivalNS
	// Idle server and not mid-episode — the fault-free steady state. This
	// prologue inlines into the per-round ingest path; the episode logic
	// below stays out of line.
	if !q.shedding && q.freeNS <= q.nowNS {
		return false
	}
	return q.arrive()
}

func (q *BoundedQueue) arrive() (shed bool) {
	if q.Cap <= 0 {
		return false
	}
	lag := q.Lag()
	if lag > float64(q.Cap) {
		if !q.shedding {
			q.shedding = true
			q.Sheds++
		}
		return true
	}
	if q.shedding && lag <= float64(q.Cap)/2 {
		q.shedding = false
		q.Recoveries++
	}
	return false
}

// Serve charges one decode of serviceNS model nanoseconds to the virtual
// server and returns the job's response time: queueing delay behind earlier
// decodes plus its own service. The caller compares it to the deadline.
func (q *BoundedQueue) Serve(serviceNS float64) (responseNS float64) {
	start := q.nowNS
	if q.freeNS > start {
		start = q.freeNS
	}
	q.freeNS = start + serviceNS
	return q.freeNS - q.nowNS
}

// Lag is the server's current backlog in arrival periods.
func (q *BoundedQueue) Lag() float64 {
	if q.ArrivalNS <= 0 {
		return 0
	}
	lag := (q.freeNS - q.nowNS) / q.ArrivalNS
	if lag < 0 {
		return 0
	}
	return lag
}

// Now returns the arrival clock in model nanoseconds.
func (q *BoundedQueue) Now() float64 { return q.nowNS }

// QueueState is the serializable dynamic state of a BoundedQueue: the two
// model-time clocks, the shedding-episode flag, and the episode counters.
// It is the queue's contribution to a streaming decoder's checkpoint — a
// restored queue continues exactly where the snapshot was taken, including
// mid-episode, so a fleet ledger merged across a crash/replay failover
// balances Sheds against Recoveries the same way an uninterrupted run does.
type QueueState struct {
	NowNS      float64 `json:"now_ns"`
	FreeNS     float64 `json:"free_ns"`
	Shedding   bool    `json:"shedding"`
	Sheds      uint64  `json:"sheds"`
	Recoveries uint64  `json:"recoveries"`
}

// State captures the queue's dynamic state for a checkpoint.
func (q *BoundedQueue) State() QueueState {
	return QueueState{
		NowNS: q.nowNS, FreeNS: q.freeNS, Shedding: q.shedding,
		Sheds: q.Sheds, Recoveries: q.Recoveries,
	}
}

// SetState restores a checkpointed state, clocks and episode flag included.
// Unlike Reset it does NOT close an open shedding episode — the restored
// queue *is* that episode, still open, and will close it itself when the
// backlog drains (or when the stream eventually resets).
func (q *BoundedQueue) SetState(s QueueState) {
	q.nowNS, q.freeNS = s.NowNS, s.FreeNS
	q.shedding = s.Shedding
	q.Sheds, q.Recoveries = s.Sheds, s.Recoveries
}

// Reset rewinds the clocks and the shedding state for a new stream; the
// episode counters are cumulative and survive. A shedding episode still
// open when the stream ends is closed here and counted as a recovery —
// clearing the flag without the count would leave Sheds permanently ahead
// of Recoveries after a mid-episode reset, and a fleet ledger merged
// across stream resets would drift by one per such episode.
func (q *BoundedQueue) Reset() {
	if q.shedding {
		q.shedding = false
		q.Recoveries++
	}
	q.nowNS, q.freeNS = 0, 0
}
