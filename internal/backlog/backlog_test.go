package backlog

import (
	"testing"

	"afs/internal/microarch"
)

func TestFastDecoderNoBacklog(t *testing.T) {
	// Service always 100 ns against 400 ns arrivals: no job ever waits.
	r := Simulate(Config{ArrivalNS: 400, Jobs: 10000, Seed: 1}, []float64{100})
	if !r.Stable || r.Utilization != 0.25 {
		t.Fatalf("expected stable at 25%% utilization: %+v", r)
	}
	if r.MaxQueueDepth != 1 || r.WaitNS.Max != 0 {
		t.Fatalf("fast decoder queued: depth %d, max wait %v", r.MaxQueueDepth, r.WaitNS.Max)
	}
	if r.SojournNS.Mean != 100 {
		t.Fatalf("sojourn mean %v, want 100", r.SojournNS.Mean)
	}
}

func TestSlowDecoderDiverges(t *testing.T) {
	// Service 500 ns against 400 ns arrivals: each job adds 100 ns of lag,
	// so the final backlog grows linearly with the job count.
	r := Simulate(Config{ArrivalNS: 400, Jobs: 4000, Seed: 1}, []float64{500})
	if r.Stable {
		t.Fatal("utilization > 1 reported stable")
	}
	// Job j completes at 500(j+1); at the last arrival (400n) the jobs with
	// 500(j+1) > 400n are still queued: depth = n - 0.8n = 0.2n = 800.
	if r.FinalQueueDepth < 750 || r.FinalQueueDepth > 850 {
		t.Fatalf("unstable queue depth %d, want ~800", r.FinalQueueDepth)
	}
	if r.WaitNS.Max < 300000 {
		t.Fatalf("max wait %v ns too small for a diverging queue", r.WaitNS.Max)
	}
}

func TestCriticalLoadQueuesButRecovers(t *testing.T) {
	// Alternate fast and slow service around the arrival period.
	pool := []float64{200, 500, 300, 350}
	r := Simulate(Config{ArrivalNS: 400, Jobs: 50000, Seed: 2}, pool)
	if !r.Stable {
		t.Fatalf("mean 337.5 < 400 must be stable: %+v", r)
	}
	if r.MaxQueueDepth < 2 {
		t.Fatal("bursty service should queue occasionally")
	}
	if r.FinalQueueDepth > 10 {
		t.Fatalf("stable queue ended %d deep", r.FinalQueueDepth)
	}
}

// TestAFSDesignPointIsStable ties the model to the paper: the measured
// d=11 latency distribution (mean ~43 ns) against the 400 ns round leaves
// the decoder >85% idle and never builds a backlog.
func TestAFSDesignPointIsStable(t *testing.T) {
	lat := microarch.CollectLatencies(microarch.CollectConfig{
		Distance: 11, P: 1e-3, Trials: 50000, Seed: 3})
	r := Simulate(Config{ArrivalNS: microarch.SyndromeRoundNS, Jobs: 50000, Seed: 4}, lat.ExposedNS)
	if !r.Stable || r.Utilization > 0.15 {
		t.Fatalf("d=11 should be far from saturation: %+v", r)
	}
	if r.MaxQueueDepth > 2 {
		t.Fatalf("d=11 built a backlog: depth %d", r.MaxQueueDepth)
	}
}

// TestD25ExceedsTheBudget documents that the paper's memory-scaling
// distance (d=25) does NOT meet the 400 ns latency budget under the same
// 1 ns-access model — the backlog diverges.
func TestD25ExceedsTheBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo calibration test")
	}
	lat := microarch.CollectLatencies(microarch.CollectConfig{
		Distance: 25, P: 1e-3, Trials: 10000, Seed: 5})
	r := Simulate(Config{ArrivalNS: microarch.SyndromeRoundNS, Jobs: 10000, Seed: 6}, lat.ExposedNS)
	if r.Stable {
		t.Fatalf("d=25 mean latency %.0f ns should exceed the 400 ns round", r.Utilization*400)
	}
	if r.FinalQueueDepth < 100 {
		t.Fatalf("expected a diverging backlog, final depth %d", r.FinalQueueDepth)
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero arrival", func() { Simulate(Config{Jobs: 1}, []float64{1}) })
	mustPanic("empty pool", func() { Simulate(Config{ArrivalNS: 1, Jobs: 1}, nil) })
	mustPanic("zero jobs", func() { Simulate(Config{ArrivalNS: 1}, []float64{1}) })
}

// TestBoundedQueueResetClosesOpenEpisode is the regression test for the
// ledger-drift bug: Reset used to clear the shedding flag without counting
// a recovery, so a stream reset mid-episode left Sheds permanently ahead of
// Recoveries and a fleet ledger merged across resets drifted by one per
// such episode.
func TestBoundedQueueResetClosesOpenEpisode(t *testing.T) {
	q := BoundedQueue{ArrivalNS: 400, Cap: 2}
	q.Serve(10 * 400) // ten periods of backlog against a cap of two
	for i := 0; i < 3 && !q.Arrive(); i++ {
	}
	if q.Sheds != 1 || q.Recoveries != 0 {
		t.Fatalf("setup: sheds %d, recoveries %d, want 1, 0", q.Sheds, q.Recoveries)
	}
	q.Reset()
	if q.Recoveries != 1 {
		t.Fatalf("mid-episode Reset counted %d recoveries, want 1", q.Recoveries)
	}
	if q.Sheds != q.Recoveries {
		t.Fatalf("ledger drift after Reset: %d sheds vs %d recoveries", q.Sheds, q.Recoveries)
	}
	if q.Now() != 0 || q.Lag() != 0 {
		t.Fatalf("Reset left clocks running: now %v, lag %v", q.Now(), q.Lag())
	}
	// Reset outside an episode must not invent a recovery.
	q.Reset()
	if q.Recoveries != 1 {
		t.Fatalf("idle Reset counted a recovery: %d", q.Recoveries)
	}
	// The queue remains usable: a fresh overload opens a new episode.
	q.Serve(10 * 400)
	shed := false
	for i := 0; i < 3 && !shed; i++ {
		shed = q.Arrive()
	}
	if !shed || q.Sheds != 2 {
		t.Fatalf("queue wedged after Reset: shed=%v sheds=%d", shed, q.Sheds)
	}
}

// driveQueue runs a fixed overload/drain script against q, returning the
// shed-decision trace and serving slowNS while i < slowUntil, fastNS after
// — a load profile that opens a shedding episode and then drains it.
func driveQueue(q *BoundedQueue, rounds, slowUntil int) []bool {
	trace := make([]bool, rounds)
	for i := 0; i < rounds; i++ {
		trace[i] = q.Arrive()
		svc := 100.0
		if i < slowUntil {
			svc = 900
		}
		q.Serve(svc)
	}
	return trace
}

// TestBoundedQueueStateHandoffMidEpisode cuts the queue at every round of
// an overload → drain script and hands its state to a fresh queue — the
// shed-during-reconnect interleaving a fleet failover produces when a shard
// dies while its streams are inside a shedding episode. Whatever the cut
// point (before the episode, mid-shed, mid-drain, after recovery), the
// handed-off queue must make the identical shed decisions and finish with
// the identical episode counters, and Sheds must balance Recoveries once
// the episode drains — no lost and no double-counted episodes.
func TestBoundedQueueStateHandoffMidEpisode(t *testing.T) {
	const rounds, slowUntil = 40, 12
	ref := BoundedQueue{ArrivalNS: 400, Cap: 2}
	want := driveQueue(&ref, rounds, slowUntil)
	if ref.Sheds == 0 {
		t.Fatal("script opened no shedding episode")
	}
	if ref.Sheds != ref.Recoveries {
		t.Fatalf("reference did not drain: %d sheds vs %d recoveries", ref.Sheds, ref.Recoveries)
	}
	for cut := 0; cut <= rounds; cut++ {
		a := BoundedQueue{ArrivalNS: 400, Cap: 2}
		got := make([]bool, 0, rounds)
		for i := 0; i < cut; i++ {
			got = append(got, a.Arrive())
			svc := 100.0
			if i < slowUntil {
				svc = 900
			}
			a.Serve(svc)
		}
		// The reconnect: a fresh queue adopts the checkpointed state. An
		// open episode must stay open (SetState is not Reset).
		b := BoundedQueue{ArrivalNS: 400, Cap: 2}
		b.SetState(a.State())
		for i := cut; i < rounds; i++ {
			got = append(got, b.Arrive())
			svc := 100.0
			if i < slowUntil {
				svc = 900
			}
			b.Serve(svc)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cut %d: shed decision %d diverged after handoff", cut, i)
			}
		}
		if b.Sheds != ref.Sheds || b.Recoveries != ref.Recoveries {
			t.Fatalf("cut %d: counters (%d,%d) diverge from uninterrupted (%d,%d)",
				cut, b.Sheds, b.Recoveries, ref.Sheds, ref.Recoveries)
		}
	}
}

// TestBoundedQueueHandoffThenReset covers the other interleaving order: the
// stream sheds, the shard dies mid-episode, the replacement adopts the
// state, and the stream then ENDS (Reset) before the backlog drains. The
// adopted open episode must be closed by Reset exactly once.
func TestBoundedQueueHandoffThenReset(t *testing.T) {
	a := BoundedQueue{ArrivalNS: 400, Cap: 2}
	a.Serve(10 * 400)
	for i := 0; i < 3 && !a.Arrive(); i++ {
	}
	if a.Sheds != 1 || a.Recoveries != 0 {
		t.Fatalf("setup: sheds %d, recoveries %d, want 1, 0", a.Sheds, a.Recoveries)
	}
	b := BoundedQueue{ArrivalNS: 400, Cap: 2}
	b.SetState(a.State())
	if got := b.State(); !got.Shedding {
		t.Fatal("SetState closed the open episode — a handoff must preserve it")
	}
	b.Reset()
	if b.Sheds != 1 || b.Recoveries != 1 {
		t.Fatalf("after handoff+Reset: %d sheds vs %d recoveries, want 1 and 1", b.Sheds, b.Recoveries)
	}
	// And a double handoff (failover, then failover again) still counts the
	// episode once.
	c := BoundedQueue{ArrivalNS: 400, Cap: 2}
	c.SetState(a.State())
	d := BoundedQueue{ArrivalNS: 400, Cap: 2}
	d.SetState(c.State())
	d.Reset()
	if d.Sheds != 1 || d.Recoveries != 1 {
		t.Fatalf("after double handoff: %d sheds vs %d recoveries, want 1 and 1", d.Sheds, d.Recoveries)
	}
}
