package stream

import (
	"os"
	"testing"
	"time"

	"afs/internal/faults"
	"afs/internal/noise"
)

// TestABProbe is a diagnostic A/B measurement of the hardened push path's
// overhead (chaos channel + deadline accounting vs a plain decoder on
// identical rounds), interleaved in sub-millisecond segments so machine
// noise cancels in the ratio. It decodes ~40M rounds and asserts nothing —
// run it on demand with AFS_AB_PROBE=1 when investigating a BENCH
// regression; cmd/afs-bench records the tracked number.
func TestABProbe(t *testing.T) {
	if os.Getenv("AFS_AB_PROBE") == "" {
		t.Skip("measurement probe; set AFS_AB_PROBE=1 to run (~10s, no assertions)")
	}
	const d = 11
	s := noise.NewRoundSampler(d, 1e-3, 1234, 1)
	pool := make([][]int32, 1<<16)
	for i := range pool {
		pool[i] = append([]int32(nil), s.SampleRound()...)
	}
	const segRounds = 2000
	const segments = 10000 // 10M rounds per side

	run := func(name string, robust bool) {
		a, _ := New(d, d, 0)
		if robust {
			if err := a.SetRobust(Robust{DeadlineNS: 350, QueueCap: 16}); err != nil {
				t.Fatal(err)
			}
		}
		a.SetSink(func(Correction) {})
		ch := faults.NewChannel(d*(d-1), faults.Config{Seed: 5})
		b, _ := New(d, d, 0)
		b.SetSink(func(Correction) {})
		for i := 0; i < 4*d; i++ {
			a.PushLayer(pool[i%len(pool)])
			b.PushLayer(pool[i%len(pool)])
		}
		var aSecs, bSecs float64
		for seg := 0; seg < segments; seg++ {
			off := seg * segRounds
			if seg%2 == 0 {
				t0 := time.Now()
				for i := 0; i < segRounds; i++ {
					delivered, erased, pen := ch.Transfer(pool[(off+i)%len(pool)])
					a.AddPenaltyNS(pen)
					if erased {
						a.PushErased()
						continue
					}
					a.PushLayer(delivered)
				}
				aSecs += time.Since(t0).Seconds()
			} else {
				t0 := time.Now()
				for i := 0; i < segRounds; i++ {
					b.PushLayer(pool[(off+i)%len(pool)])
				}
				bSecs += time.Since(t0).Seconds()
			}
		}
		n := float64(segRounds * segments / 2)
		t.Logf("%-24s A %.0f r/s  B %.0f r/s  ratio %.3f", name, n/aSecs, n/bSecs, aSecs/bSecs)
	}

	run("control: A plain+chan", false)
	run("robust:  A robust+chan", true)
}
