package stream

import (
	"reflect"
	"testing"

	"afs/internal/core"
	"afs/internal/lattice"
	"afs/internal/noise"
)

// puntCfg keeps the punt threshold low enough that a near-threshold test
// stream actually routes windows through the tile engine.
func newPuntDecoder(t *testing.T, d, w, workers int) *Decoder {
	t.Helper()
	dec, err := New(d, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.EnableTilePunt(core.TileConfig{TileSize: 2, Workers: workers}, 3); err != nil {
		t.Fatal(err)
	}
	return dec
}

// TestTilePuntReproducesSyndrome is the streaming correctness invariant
// with the heavy-window punt active: committed corrections still reproduce
// every stream's syndrome exactly.
func TestTilePuntReproducesSyndrome(t *testing.T) {
	const d, T = 5, 20
	g := lattice.New3D(d, T)
	s := noise.NewSampler(g, 0.06, 11, 4) // near threshold: heavy windows
	var trial noise.Trial
	punted := false
	for i := 0; i < 150; i++ {
		s.Sample(&trial)
		dec := newPuntDecoder(t, d, d, 2)
		feed(dec, g, trial.Defects)
		corr := dec.Flush()
		verify(t, g, &trial, corr)
		if len(trial.Defects) >= 3 {
			punted = true
		}
	}
	if !punted {
		t.Fatal("no stream was heavy enough to exercise the punt")
	}
}

// TestTilePuntDeterministicAcrossWorkers pins the streaming determinism
// contract: the committed correction sequence is bit-identical for every
// tile worker count, including under robust-mode deadline accounting.
func TestTilePuntDeterministicAcrossWorkers(t *testing.T) {
	const d, T = 5, 40
	g := lattice.New3D(d, T)
	s := noise.NewSampler(g, 0.05, 21, 9)
	var trial noise.Trial
	s.Sample(&trial)

	run := func(workers int) ([]Correction, uint64, uint64) {
		dec := newPuntDecoder(t, d, d, workers)
		if err := dec.SetRobust(Robust{DeadlineNS: 2000, QueueCap: 4 * d}); err != nil {
			t.Fatal(err)
		}
		feed(dec, g, trial.Defects)
		corr := append([]Correction(nil), dec.Flush()...)
		rep := dec.Report()
		return corr, rep.Windows, rep.Timeouts
	}
	base, baseWin, baseTO := run(1)
	for _, workers := range []int{2, 4} {
		corr, win, to := run(workers)
		if !reflect.DeepEqual(corr, base) {
			t.Fatalf("workers=%d: committed corrections differ from single-worker stream", workers)
		}
		if win != baseWin || to != baseTO {
			t.Fatalf("workers=%d: fault ledger differs (windows %d/%d, timeouts %d/%d)",
				workers, win, baseWin, to, baseTO)
		}
	}
}

// TestTilePuntMatchesUnpunted checks decision identity against the
// sequential path: the punted stream commits exactly the same correction
// set as an unpunted decoder (order within a window may differ — the
// sparse shortcut and the full pipeline emit different edge orders).
func TestTilePuntMatchesUnpunted(t *testing.T) {
	const d, T = 5, 30
	g := lattice.New3D(d, T)
	s := noise.NewSampler(g, 0.05, 31, 2)
	var trial noise.Trial
	for i := 0; i < 60; i++ {
		s.Sample(&trial)
		plain, err := New(d, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		punt := newPuntDecoder(t, d, d, 2)
		feed(plain, g, trial.Defects)
		feed(punt, g, trial.Defects)
		want := append([]Correction(nil), plain.Flush()...)
		got := append([]Correction(nil), punt.Flush()...)
		sortCorrections(want)
		sortCorrections(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: punted committed set differs\n got  %v\n want %v", i, got, want)
		}
	}
}

// TestTilePuntValidation checks the empty-decoder precondition.
func TestTilePuntValidation(t *testing.T) {
	dec, err := New(5, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.PushLayer([]int32{0}); err != nil {
		t.Fatal(err)
	}
	if err := dec.EnableTilePunt(core.TileConfig{}, 0); err == nil {
		t.Fatal("EnableTilePunt accepted a decoder with buffered layers")
	}
}
