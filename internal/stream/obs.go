package stream

import (
	"sync/atomic"

	"afs/internal/obs"
)

// streamObs bundles the fleet-wide stream metrics. One instance is
// registered on obs.Default() at init and shared by every Decoder; each
// decoder carries a shard hint so concurrent streams hit different padded
// slots. All counters are pure sinks — nothing in the decode path reads
// them — so fixed-seed results are bit-identical with metrics on or off,
// and every increment is a single atomic add (no allocation).
type streamObs struct {
	rounds          *obs.Counter // rounds ingested (flushed per window decode)
	erasedRounds    *obs.Counter // rounds lost on the link, synthesized empty
	shedRounds      *obs.Counter // rounds erased by backpressure
	windows         *obs.Counter // window decodes (sliding + final)
	w0Windows       *obs.Counter // zero-defect windows resolved by the weight-0 skip
	horizonSkips    *obs.Counter // windows whose decode committed nothing despite defects
	timeouts        *obs.Counter // deadline overruns (Eq. 4 p_tof numerator)
	degraded        *obs.Counter // one-layer degraded commits
	corrections     *obs.Counter // corrections committed
	backlogSheds    *obs.Counter // shedding episodes entered
	backlogRecovers *obs.Counter // shedding episodes closed

	windowDefects *obs.Histogram // defects per decoded window
	windowCostNS  *obs.Histogram // model decode cost per window (robust mode)
	queueLag      *obs.Histogram // backlog in arrival periods after each window (robust mode)

	// Lane-batching signals (LaneBatcher): group formation and the
	// fast/gathered/ineligible split. laneWindows / (64 * laneGroups) is
	// the mean group fill fraction; laneFast / laneWindows the fraction of
	// batched windows resolved closed-form without a scalar decode.
	laneGroups     *obs.Counter // lane groups formed
	laneWindows    *obs.Counter // windows entering a lane group (any route)
	laneFast       *obs.Counter // lanes resolved by the closed-form fast path
	laneGathered   *obs.Counter // lanes scattered then routed to the scalar decode
	laneIneligible *obs.Counter // windows routed scalar without scattering (erased/heavy/W0-off)
}

func newStreamObs(reg *obs.Registry) *streamObs {
	const s = obs.DefaultShards
	return &streamObs{
		rounds:          reg.NewCounter("afs_stream_rounds_total", "syndrome rounds ingested by stream decoders", s),
		erasedRounds:    reg.NewCounter("afs_stream_erased_rounds_total", "rounds lost on the link and synthesized empty", s),
		shedRounds:      reg.NewCounter("afs_stream_shed_rounds_total", "rounds erased by backpressure shedding", s),
		windows:         reg.NewCounter("afs_stream_windows_total", "sliding-window decodes executed", s),
		w0Windows:       reg.NewCounter("afs_stream_w0_windows_total", "zero-defect windows resolved by the weight-0 skip (no decode)", s),
		horizonSkips:    reg.NewCounter("afs_stream_window_horizon_skips_total", "windows with defects but no committable correction below the horizon", s),
		timeouts:        reg.NewCounter("afs_stream_timeouts_total", "window decodes past the model deadline (p_tof numerator)", s),
		degraded:        reg.NewCounter("afs_stream_degraded_commits_total", "deadline overruns committed degraded (one layer)", s),
		corrections:     reg.NewCounter("afs_stream_corrections_total", "corrections committed across all streams", s),
		backlogSheds:    reg.NewCounter("afs_stream_backlog_sheds_total", "backlog shedding episodes entered", s),
		backlogRecovers: reg.NewCounter("afs_stream_backlog_recovers_total", "backlog shedding episodes closed (drained or stream reset)", s),
		laneGroups:      reg.NewCounter("afs_stream_lane_groups_total", "cross-stream lane groups formed by the lane batcher", s),
		laneWindows:     reg.NewCounter("afs_stream_lane_windows_total", "stream windows entering a lane group (fill = windows / (64*groups))", s),
		laneFast:        reg.NewCounter("afs_stream_lane_fast_total", "lane-batched windows resolved by the closed-form fast path", s),
		laneGathered:    reg.NewCounter("afs_stream_lane_gathered_total", "lane-batched windows gathered back to the scalar decode", s),
		laneIneligible:  reg.NewCounter("afs_stream_lane_ineligible_total", "lane-group windows routed scalar without scattering (erased, heavy, tile punt, W0 skip off)", s),
		windowDefects:   reg.NewHistogram("afs_stream_window_defects", "detection events per decoded window", 0, 64, 32, s),
		windowCostNS:    reg.NewHistogram("afs_stream_window_cost_ns", "model decode cost per window in ns (deadline mode)", 0, 800, 40, s),
		queueLag:        reg.NewHistogram("afs_stream_queue_lag_rounds", "decode backlog in arrival periods after each window (deadline mode)", 0, 32, 32, s),
	}
}

// registeredObs is the sink registered on the default registry; obsSink is
// what new decoders capture (nil when disabled via SetObsEnabled).
var (
	registeredObs = newStreamObs(obs.Default())
	obsSink       atomic.Pointer[streamObs]
	obsShardSeq   atomic.Uint32
)

func init() {
	obsSink.Store(registeredObs)
	reg := obs.Default()
	reg.RegisterGauge("afs_stream_p_timeout", "timeouts_total / windows_total (empirical p_tof)", func() float64 {
		w := registeredObs.windows.Value()
		if w == 0 {
			return 0
		}
		return float64(registeredObs.timeouts.Value()) / float64(w)
	})
	reg.RegisterGauge("afs_stream_backlog_open_episodes", "shedding episodes currently open across the fleet", func() float64 {
		return float64(registeredObs.backlogSheds.Value() - registeredObs.backlogRecovers.Value())
	})
}

// SetObsEnabled installs (true, the default) or removes (false) the metrics
// sink captured by decoders created afterwards. It exists so the perf
// harness can A/B the instrumentation cost on otherwise identical decoders;
// production callers never need it.
func SetObsEnabled(on bool) {
	if on {
		obsSink.Store(registeredObs)
	} else {
		obsSink.Store(nil)
	}
}

// nextObsShard spreads decoders over the metric shards.
func nextObsShard() int { return int(obsShardSeq.Add(1) - 1) }
