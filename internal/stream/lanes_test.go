package stream

import (
	"math/rand"
	"slices"
	"testing"

	"afs/internal/core"
	"afs/internal/faults"
	"afs/internal/noise"
)

// runLaneEngine mirrors runEngine with the lane batcher enabled (and an
// optional chaos config) so engine-level tests can diff the two paths on
// identical seeded feeds.
func runLaneEngine(t *testing.T, streams, workers, d, w, c, rounds int, lane bool, chaos *faults.Config) [][]Correction {
	t.Helper()
	out := make([][]Correction, streams)
	eng, err := NewEngine(EngineConfig{
		Streams: streams, Distance: d, Window: w, Commit: c, Workers: workers,
		LaneBatch: lane,
		Chaos:     chaos,
		Sink: func(stream int, corr Correction) {
			out[stream] = append(out[stream], corr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	samplers := make([]*noise.RoundSampler, streams)
	for i := range samplers {
		samplers[i] = noise.NewRoundSampler(d, 0.01, 42, uint64(i)*0x9e37+1)
	}
	if err := eng.RunRounds(rounds, func(stream, _ int) []int32 {
		return samplers[stream].SampleRound()
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestLaneEngineIdentity is the tentpole acceptance criterion at the engine
// level: the lane-batched engine must commit bit-identical corrections to
// the scalar engine for every worker count and fleet size — full 64-lane
// groups, partial groups, and single-lane remainders alike.
func TestLaneEngineIdentity(t *testing.T) {
	for _, d := range []int{3, 5} {
		const rounds = 120
		for _, streams := range []int{1, 2, 5, 64, 65, 130} {
			want := runLaneEngine(t, streams, 1, d, d, 0, rounds, false, nil)
			for _, workers := range []int{1, 2, 3} {
				got := runLaneEngine(t, streams, workers, d, d, 0, rounds, true, nil)
				for i := range want {
					if !slices.Equal(got[i], want[i]) {
						t.Fatalf("d=%d L=%d workers=%d stream %d: lane corrections diverge from scalar (%d vs %d)",
							d, streams, workers, i, len(got[i]), len(want[i]))
					}
				}
			}
		}
	}
}

// TestLaneEngineIdentityNonDefaultCommit: the commit depth is not part of
// the lane-shape key, so streams with a deeper commit must still match
// scalar decoding exactly (the horizon filter runs per lane).
func TestLaneEngineIdentityNonDefaultCommit(t *testing.T) {
	const streams, d, w, c, rounds = 33, 4, 6, 3, 150
	want := runLaneEngine(t, streams, 1, d, w, c, rounds, false, nil)
	got := runLaneEngine(t, streams, 2, d, w, c, rounds, true, nil)
	for i := range want {
		if !slices.Equal(got[i], want[i]) {
			t.Fatalf("stream %d: lane corrections diverge under commit=%d", i, c)
		}
	}
}

// TestLaneEngineIdentityUnderChaos: erased windows are ineligible for the
// bit planes and must fall out to the scalar path without disturbing any
// other lane in the group.
func TestLaneEngineIdentityUnderChaos(t *testing.T) {
	chaos := &faults.Config{Seed: 7, DropRate: 0.05, DuplicateRate: 0.02, ReorderRate: 0.02, CorruptRate: 0.03}
	const streams, d, rounds = 70, 3, 200
	want := runLaneEngine(t, streams, 1, d, d, 0, rounds, false, chaos)
	for _, workers := range []int{1, 3} {
		got := runLaneEngine(t, streams, workers, d, d, 0, rounds, true, chaos)
		for i := range want {
			if !slices.Equal(got[i], want[i]) {
				t.Fatalf("workers=%d stream %d: lane corrections diverge under chaos", workers, i)
			}
		}
	}
}

// laneTwinPair is one lane-batched decoder plus its scalar twin, fed
// identical rounds.
type laneTwinPair struct {
	lane, scalar       *Decoder
	laneOut, scalarOut []Correction
}

func newLaneTwinPair(t *testing.T, d, w, c int) *laneTwinPair {
	t.Helper()
	p := &laneTwinPair{}
	var err error
	if p.lane, err = New(d, w, c); err != nil {
		t.Fatal(err)
	}
	if p.scalar, err = New(d, w, c); err != nil {
		t.Fatal(err)
	}
	if err := p.lane.SetDeferDecode(true); err != nil {
		t.Fatal(err)
	}
	p.lane.SetSink(func(c Correction) { p.laneOut = append(p.laneOut, c) })
	p.scalar.SetSink(func(c Correction) { p.scalarOut = append(p.scalarOut, c) })
	return p
}

// push feeds one identical round to both twins (nil events = erased round).
func (p *laneTwinPair) push(t *testing.T, events []int32, erased bool) {
	t.Helper()
	if erased {
		p.lane.PushErased()
		p.scalar.PushErased()
		return
	}
	if err := p.lane.PushLayer(events); err != nil {
		t.Fatal(err)
	}
	if err := p.scalar.PushLayer(events); err != nil {
		t.Fatal(err)
	}
}

// randLayer draws a Bernoulli(p) layer over the per-round ancillas.
func randLayer(rng *rand.Rand, per int, p float64) []int32 {
	var ev []int32
	for x := 0; x < per; x++ {
		if rng.Float64() < p {
			ev = append(ev, int32(x))
		}
	}
	return ev
}

// TestLaneBatcherMatchesScalarTwins is the decoder-level property test: for
// every group size 1..64, a set of lane-batched decoders fed random rounds
// must commit exactly what scalar twins commit on the identical rounds —
// including erased rounds, a W0-skip-disabled lane, a tile-punting lane,
// and dense rounds past the sparse-shortcut defect cap.
func TestLaneBatcherMatchesScalarTwins(t *testing.T) {
	const d, w = 4, 4
	per := d * (d - 1)
	for _, n := range []int{1, 2, 3, 7, 16, 33, 64} {
		rng := rand.New(rand.NewSource(int64(1000 + n)))
		pairs := make([]*laneTwinPair, n)
		decs := make([]*Decoder, n)
		for i := range pairs {
			pairs[i] = newLaneTwinPair(t, d, w, 0)
			if i == 1 {
				// One lane with the weight-0 skip disabled: ineligible for
				// the planes, must route scalar inside the group.
				pairs[i].lane.disableW0Skip = true
				pairs[i].scalar.disableW0Skip = true
			}
			if i == 2 {
				// One lane that punts heavy windows to the tile engine.
				if err := pairs[i].lane.EnableTilePunt(core.TileConfig{}, 3); err != nil {
					t.Fatal(err)
				}
				if err := pairs[i].scalar.EnableTilePunt(core.TileConfig{}, 3); err != nil {
					t.Fatal(err)
				}
			}
			decs[i] = pairs[i].lane
		}
		b := NewLaneBatcher()
		const rounds = 160
		for r := 0; r < rounds; r++ {
			for i, p := range pairs {
				// Per-lane noise levels: quiet lanes (w0 and fast-path
				// traffic), busy lanes (gathered), and one dense lane that
				// overflows core.MaxShortcutDefects some windows.
				rate := []float64{0.0, 0.02, 0.08, 0.5}[i%4]
				erased := rng.Float64() < 0.03
				p.push(t, randLayer(rng, per, rate), erased)
			}
			b.Decode(decs)
		}
		for _, p := range pairs {
			p.lane.Flush()
			p.scalar.Flush()
		}
		for i, p := range pairs {
			if !slices.Equal(p.laneOut, p.scalarOut) {
				t.Fatalf("n=%d lane %d: lane-batched corrections diverge from scalar twin (%d vs %d)",
					n, i, len(p.laneOut), len(p.scalarOut))
			}
		}
	}
}

// TestLaneBatcherMixedShapes: decoders of different (distance, window)
// shapes interleaved in one slice must group per shape and still match
// their scalar twins.
func TestLaneBatcherMixedShapes(t *testing.T) {
	shapes := []struct{ d, w int }{{3, 3}, {4, 4}, {3, 5}}
	const perShape = 5
	rng := rand.New(rand.NewSource(77))
	var pairs []*laneTwinPair
	var decs []*Decoder
	for i := 0; i < perShape; i++ {
		for _, sh := range shapes { // interleaved, not contiguous
			p := newLaneTwinPair(t, sh.d, sh.w, 0)
			pairs = append(pairs, p)
			decs = append(decs, p.lane)
		}
	}
	b := NewLaneBatcher()
	for r := 0; r < 200; r++ {
		for _, p := range pairs {
			per := p.lane.Distance * (p.lane.Distance - 1)
			p.push(t, randLayer(rng, per, 0.05), false)
		}
		b.Decode(decs)
	}
	for _, p := range pairs {
		p.lane.Flush()
		p.scalar.Flush()
	}
	for i, p := range pairs {
		if !slices.Equal(p.laneOut, p.scalarOut) {
			t.Fatalf("pair %d (d=%d w=%d): mixed-shape group diverges from scalar twin",
				i, p.lane.Distance, p.lane.Window)
		}
	}
}

// TestLaneDeferredResolution covers the pending-window state machine: a
// deferred window reports Pending, resolves scalar on the next ingest if no
// batcher runs, resolves before a snapshot (so Restore's layer invariant
// holds), and resolves on Flush — all bit-identically to a scalar twin.
func TestLaneDeferredResolution(t *testing.T) {
	const d, w = 3, 3
	per := d * (d - 1)
	rng := rand.New(rand.NewSource(5))
	p := newLaneTwinPair(t, d, w, 0)
	b := NewLaneBatcher()
	for r := 0; r < 90; r++ {
		p.push(t, randLayer(rng, per, 0.1), false)
		if r >= w-1 && !p.lane.Pending() {
			t.Fatalf("round %d: full deferred window not pending", r)
		}
		switch r % 3 {
		case 0:
			b.Decode([]*Decoder{p.lane})
			if p.lane.Pending() {
				t.Fatal("pending after a batched decode")
			}
		case 1:
			// No batcher run: the next ingest must resolve the pending
			// window scalar before accepting the new layer.
		case 2:
			snap := p.lane.Snapshot()
			if len(snap.Layers) >= w {
				t.Fatalf("snapshot holds %d layers with window %d", len(snap.Layers), w)
			}
			if p.lane.Pending() {
				t.Fatal("pending survived a snapshot")
			}
		}
	}
	p.lane.Flush()
	p.scalar.Flush()
	if p.lane.Pending() {
		t.Fatal("pending after Flush")
	}
	if !slices.Equal(p.laneOut, p.scalarOut) {
		t.Fatalf("deferred-resolution stream diverges from scalar twin (%d vs %d corrections)",
			len(p.laneOut), len(p.scalarOut))
	}
}

// TestDeferDecodeRobustMutualExclusion: robust decoders must never defer
// (degraded/deadline windows cannot enter a lane group), in both orders.
func TestDeferDecodeRobustMutualExclusion(t *testing.T) {
	dec, err := New(4, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.SetRobust(Robust{DeadlineNS: 350, QueueCap: 8}); err != nil {
		t.Fatal(err)
	}
	if err := dec.SetDeferDecode(true); err == nil {
		t.Fatal("SetDeferDecode accepted on a robust decoder")
	}
	dec2, err := New(4, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec2.SetDeferDecode(true); err != nil {
		t.Fatal(err)
	}
	if err := dec2.SetRobust(Robust{DeadlineNS: 350, QueueCap: 8}); err == nil {
		t.Fatal("SetRobust accepted on a deferred decoder")
	}
	// Robust on a decoder that turned deferral back off is fine.
	if err := dec2.SetDeferDecode(false); err != nil {
		t.Fatal(err)
	}
	if err := dec2.SetRobust(Robust{DeadlineNS: 350, QueueCap: 8}); err != nil {
		t.Fatal(err)
	}
	// The lane engine silently ignores LaneBatch under Robust.
	eng, err := NewEngine(EngineConfig{
		Streams: 2, Distance: 4, LaneBatch: true,
		Robust: Robust{DeadlineNS: 350, QueueCap: 8},
		Sink:   func(int, Correction) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.lane {
		t.Fatal("robust engine enabled lane batching")
	}
}

// FuzzLaneIdentity feeds fuzzer-shaped rounds to a small lane group and its
// scalar twins; any divergence in committed corrections is a bug in the
// word-parallel classification or the fast-path emission order.
func FuzzLaneIdentity(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0xff, 0x03}, uint8(2))
	f.Add([]byte{0xaa, 0x55, 0x12, 0x34, 0x56, 0x78}, uint8(3))
	f.Add([]byte{}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, nLanes uint8) {
		const d, w = 3, 3
		per := d * (d - 1)
		n := 1 + int(nLanes)%5
		pairs := make([]*laneTwinPair, n)
		decs := make([]*Decoder, n)
		for i := range pairs {
			pairs[i] = newLaneTwinPair(t, d, w, 0)
			decs[i] = pairs[i].lane
		}
		b := NewLaneBatcher()
		// Each byte drives one lane-round: bit per ancilla (per=6 fits), with
		// 0xff meaning an erased round.
		for off := 0; off+n <= len(data); off += n {
			for i := 0; i < n; i++ {
				bits := data[off+i]
				if bits == 0xff {
					pairs[i].push(t, nil, true)
					continue
				}
				var ev []int32
				for x := 0; x < per; x++ {
					if bits>>uint(x)&1 != 0 {
						ev = append(ev, int32(x))
					}
				}
				pairs[i].push(t, ev, false)
			}
			b.Decode(decs)
		}
		for _, p := range pairs {
			p.lane.Flush()
			p.scalar.Flush()
		}
		for i, p := range pairs {
			if !slices.Equal(p.laneOut, p.scalarOut) {
				t.Fatalf("lane %d diverges from scalar twin (%d vs %d corrections)",
					i, len(p.laneOut), len(p.scalarOut))
			}
		}
	})
}
