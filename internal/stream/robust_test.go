package stream

import (
	"runtime"
	"slices"
	"testing"
	"time"

	"afs/internal/core"
	"afs/internal/faults"
	"afs/internal/lattice"
	"afs/internal/noise"
)

// blankLayers returns trial defects with the given layers erased (their
// detection events removed), plus the per-layer event lists for feeding.
func blankLayers(g *lattice.Graph, defects []int32, erase map[int]bool) (blanked []int32, layers [][]int32) {
	per := g.LayerVertices()
	layers = make([][]int32, g.Rounds)
	for _, v := range defects {
		t := int(v) / per
		if erase[t] {
			continue
		}
		layers[t] = append(layers[t], int32(int(v)%per))
		blanked = append(blanked, v)
	}
	return blanked, layers
}

// TestStreamDoubleFlush: a second Flush on an already-flushed decoder is a
// no-op, and the decoder decodes a fresh stream correctly afterwards.
func TestStreamDoubleFlush(t *testing.T) {
	const d, T = 4, 12
	g := lattice.New3D(d, T)
	s := noise.NewSampler(g, 0.02, 11, 4)
	dec, err := New(d, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var trial noise.Trial
	s.Sample(&trial)
	feed(dec, g, trial.Defects)
	verify(t, g, &trial, dec.Flush())
	if corr := dec.Flush(); len(corr) != 0 {
		t.Fatalf("second Flush produced %d corrections", len(corr))
	}
	if dec.Buffered() != 0 {
		t.Fatalf("double-flushed decoder still buffers %d layers", dec.Buffered())
	}
	s.Sample(&trial)
	feed(dec, g, trial.Defects)
	verify(t, g, &trial, dec.Flush())
}

// TestStreamAllErasedWindow: a window consisting entirely of erased rounds
// must decode cleanly (to nothing) and leave the decoder healthy.
func TestStreamAllErasedWindow(t *testing.T) {
	const d = 4
	dec, err := New(d, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*d; i++ { // several full windows of pure erasure
		dec.PushErased()
	}
	if corr := dec.Flush(); len(corr) != 0 {
		t.Fatalf("all-erased stream produced corrections: %v", corr)
	}
	// The decoder must still decode real data afterwards.
	const T = 8
	g := lattice.New3D(d, T)
	s := noise.NewSampler(g, 0.02, 17, 5)
	var trial noise.Trial
	s.Sample(&trial)
	feed(dec, g, trial.Defects)
	verify(t, g, &trial, dec.Flush())
}

// TestStreamErasedMatchesEmptyLayer: an erased round carries no detection
// events, so its committed corrections must be bit-identical to pushing an
// empty layer at the same position — erasure changes bookkeeping, never the
// decode.
func TestStreamErasedMatchesEmptyLayer(t *testing.T) {
	const d, T = 4, 13
	g := lattice.New3D(d, T)
	s := noise.NewSampler(g, 0.02, 23, 6)
	a, err := New(d, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(d, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	erase := map[int]bool{2: true, 5: true, 6: true, 11: true}
	var trial noise.Trial
	for i := 0; i < 60; i++ {
		s.Sample(&trial)
		_, layers := blankLayers(g, trial.Defects, erase)
		for tl, l := range layers {
			if erase[tl] {
				a.PushErased()
				if err := b.PushLayer(nil); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if err := a.PushLayer(l); err != nil {
				t.Fatal(err)
			}
			if err := b.PushLayer(l); err != nil {
				t.Fatal(err)
			}
		}
		got, want := a.Flush(), b.Flush()
		sortCorrections(got)
		sortCorrections(want)
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d: erased rounds decoded differently from empty rounds:\n erased %v\n empty  %v", i, got, want)
		}
	}
}

// TestStreamMonolithicParityUnderErasures: with a window larger than the
// stream, decoding under erasures must match the core decoder run on the
// blanked defect list exactly, edge for edge — the stream layer adds no
// decisions of its own.
func TestStreamMonolithicParityUnderErasures(t *testing.T) {
	const d, T = 4, 11
	g := lattice.Cached3D(d, T)
	mono := core.NewDecoder(g, core.Options{})
	s := noise.NewSampler(g, 0.02, 29, 7)
	dec, err := New(d, T+5, 1)
	if err != nil {
		t.Fatal(err)
	}
	erase := map[int]bool{1: true, 4: true, 8: true}
	var trial noise.Trial
	for i := 0; i < 150; i++ {
		s.Sample(&trial)
		blanked, layers := blankLayers(g, trial.Defects, erase)
		for tl, l := range layers {
			if erase[tl] {
				dec.PushErased()
				continue
			}
			if err := dec.PushLayer(l); err != nil {
				t.Fatal(err)
			}
		}
		got := correctionEdges(t, g, dec.Flush())
		want := append([]int32(nil), mono.Decode(blanked)...)
		slices.Sort(want)
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d: streamed edges %v != monolithic-on-blanked %v", i, got, want)
		}
	}
}

// TestStreamSlidingParityUnderErasures: a sliding window over a stream with
// erased rounds must still commit corrections that reproduce the (blanked)
// syndrome exactly — the erasure gap never leaves an unexplained event.
func TestStreamSlidingParityUnderErasures(t *testing.T) {
	const d, T = 5, 20
	g := lattice.New3D(d, T)
	s := noise.NewSampler(g, 0.015, 31, 8)
	dec, err := New(d, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	erase := map[int]bool{3: true, 9: true, 10: true, 16: true}
	var trial noise.Trial
	for i := 0; i < 120; i++ {
		s.Sample(&trial)
		blanked, layers := blankLayers(g, trial.Defects, erase)
		for tl, l := range layers {
			if erase[tl] {
				dec.PushErased()
				continue
			}
			if err := dec.PushLayer(l); err != nil {
				t.Fatal(err)
			}
		}
		// The decoder only saw the blanked stream, so verification runs
		// against a trial carrying the blanked defect list.
		bt := trial
		bt.Defects = blanked
		verify(t, g, &bt, dec.Flush())
	}
}

// TestStreamReuseAfterDegradedCommit: a deadline so tight every window
// overruns forces the degraded single-layer commit path; the decoder must
// keep decoding correctly through it, account every overrun, and run the
// next stream cleanly after Flush.
func TestStreamReuseAfterDegradedCommit(t *testing.T) {
	const d, T = 4, 12
	g := lattice.New3D(d, T)
	s := noise.NewSampler(g, 0.03, 37, 9)
	dec, err := New(d, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.SetRobust(Robust{DeadlineNS: 1e-9}); err != nil {
		t.Fatal(err)
	}
	var trial noise.Trial
	for i := 0; i < 40; i++ {
		s.Sample(&trial)
		feed(dec, g, trial.Defects)
		verify(t, g, &trial, dec.Flush())
	}
	rep := dec.Report()
	if rep.Timeouts == 0 {
		t.Fatal("a 1e-9 ns deadline produced no timeouts")
	}
	if rep.Timeouts != rep.DegradedCommits {
		t.Fatalf("timeouts %d != degraded commits %d", rep.Timeouts, rep.DegradedCommits)
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("ledger inconsistent after degraded commits: %v", err)
	}
	// Disabling robustness must restore the plain path on the same decoder.
	if err := dec.SetRobust(Robust{}); err != nil {
		t.Fatal(err)
	}
	s.Sample(&trial)
	feed(dec, g, trial.Defects)
	verify(t, g, &trial, dec.Flush())
	if after := dec.Report(); after.Timeouts != rep.Timeouts {
		t.Fatalf("plain decoding grew the timeout count: %d -> %d", rep.Timeouts, after.Timeouts)
	}
}

// TestStreamBackpressureSheds: enormous injected service time with a small
// queue cap must trigger the shed-oldest policy, account every shed round,
// and never wedge the stream.
func TestStreamBackpressureSheds(t *testing.T) {
	const d, T = 4, 40
	g := lattice.New3D(d, T)
	s := noise.NewSampler(g, 0.02, 41, 10)
	dec, err := New(d, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.SetRobust(Robust{QueueCap: 2}); err != nil {
		t.Fatal(err)
	}
	var trial noise.Trial
	s.Sample(&trial)
	per := g.LayerVertices()
	layers := make([][]int32, T)
	for _, v := range trial.Defects {
		layers[int(v)/per] = append(layers[int(v)/per], int32(int(v)%per))
	}
	for _, l := range layers {
		dec.AddPenaltyNS(1e6) // each window decodes ~2500 rounds late
		if err := dec.PushLayer(l); err != nil {
			t.Fatal(err)
		}
	}
	dec.Flush()
	rep := dec.Report()
	if rep.ShedRounds == 0 {
		t.Fatal("overloaded queue shed nothing")
	}
	if rep.BacklogSheds == 0 {
		t.Fatal("shedding episodes not counted")
	}
	if err := rep.Check(); err != nil {
		t.Fatalf("ledger inconsistent after shedding: %v", err)
	}
	// The decoder survives the overload and decodes a calm stream correctly.
	if err := dec.SetRobust(Robust{}); err != nil {
		t.Fatal(err)
	}
	s.Sample(&trial)
	feed(dec, g, trial.Defects)
	verify(t, g, &trial, dec.Flush())
}

func TestSetRobustValidation(t *testing.T) {
	dec, err := New(4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.SetRobust(Robust{DeadlineNS: -1}); err == nil {
		t.Error("negative deadline accepted")
	}
	if err := dec.SetRobust(Robust{QueueCap: -1}); err == nil {
		t.Error("negative queue cap accepted")
	}
	if err := dec.PushLayer(nil); err != nil {
		t.Fatal(err)
	}
	if err := dec.SetRobust(Robust{DeadlineNS: 350}); err == nil {
		t.Error("SetRobust accepted on a decoder with buffered layers")
	}
	dec.Flush()
	if err := dec.SetRobust(Robust{DeadlineNS: 350}); err != nil {
		t.Errorf("SetRobust rejected on a flushed decoder: %v", err)
	}
}

// TestStreamPushLayerRejectsOutOfRange: malformed input returns an error
// before any state changes — the decoder stays usable.
func TestStreamPushLayerRejectsOutOfRange(t *testing.T) {
	const d, T = 4, 8
	dec, err := New(d, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	per := int32(d * (d - 1))
	for _, bad := range [][]int32{{-1}, {per}, {0, 3, per + 7}} {
		if err := dec.PushLayer(bad); err == nil {
			t.Fatalf("out-of-range events %v accepted", bad)
		}
		if dec.Buffered() != 0 {
			t.Fatalf("rejected push buffered a layer (events %v)", bad)
		}
	}
	g := lattice.New3D(d, T)
	s := noise.NewSampler(g, 0.02, 43, 11)
	var trial noise.Trial
	s.Sample(&trial)
	feed(dec, g, trial.Defects)
	verify(t, g, &trial, dec.Flush())
}

// TestEngineZeroRoundBatch: a zero-round batch is a no-op, not an error,
// and a closed engine reports misuse instead of deadlocking or panicking.
func TestEngineZeroRoundBatch(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Streams: 3, Distance: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunRounds(0, nil); err != nil {
		t.Fatalf("zero-round batch errored: %v", err)
	}
	if err := eng.RunRounds(-5, nil); err != nil {
		t.Fatalf("negative-round batch errored: %v", err)
	}
	eng.Close()
	if err := eng.RunRounds(0, nil); err == nil {
		t.Error("zero-round batch on a closed engine accepted")
	}
	if err := eng.RunRounds(2, func(int, int) []int32 { return nil }); err == nil {
		t.Error("batch on a closed engine accepted")
	}
	if err := eng.PushRound(make([][]int32, 3)); err == nil {
		t.Error("PushRound on a closed engine accepted")
	}
	if err := eng.Flush(); err == nil {
		t.Error("Flush on a closed engine accepted")
	}
}

// TestEnginePushRoundMismatch: a mismatched event-list length is an error
// (the seed panicked here), and the engine keeps working afterwards.
func TestEnginePushRoundMismatch(t *testing.T) {
	const streams, d = 3, 4
	eng, err := NewEngine(EngineConfig{Streams: streams, Distance: d, Workers: 2,
		Sink: func(int, Correction) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.PushRound(make([][]int32, streams+1)); err == nil {
		t.Fatal("mismatched PushRound accepted")
	}
	if err := eng.PushRound(make([][]int32, streams-1)); err == nil {
		t.Fatal("short PushRound accepted")
	}
	if err := eng.PushRound(make([][]int32, streams)); err != nil {
		t.Fatalf("well-formed PushRound errored after rejected ones: %v", err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineStickyStreamError: one stream fed garbage is poisoned — its
// error is reported by the batch and again by later batches — while the
// other streams keep decoding; Flush clears the poison.
func TestEngineStickyStreamError(t *testing.T) {
	const streams, d, rounds = 4, 4, 40
	out := make([][]Correction, streams)
	eng, err := NewEngine(EngineConfig{Streams: streams, Distance: d, Workers: 2,
		Sink: func(i int, c Correction) { out[i] = append(out[i], c) }})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	samplers := make([]*noise.RoundSampler, streams)
	for i := range samplers {
		samplers[i] = noise.NewRoundSampler(d, 0.02, 47, uint64(i)+1)
	}
	bad := []int32{-7}
	if err := eng.RunRounds(rounds, func(stream, round int) []int32 {
		if stream == 1 && round == 3 {
			return bad
		}
		return samplers[stream].SampleRound()
	}); err == nil {
		t.Fatal("poisoned stream reported no error")
	}
	if err := eng.RunRounds(1, func(stream, _ int) []int32 { return nil }); err == nil {
		t.Fatal("sticky error not re-reported by the next batch")
	}
	if err := eng.Flush(); err == nil {
		t.Fatal("Flush did not surface the sticky error")
	}
	if err := eng.Flush(); err != nil {
		t.Fatalf("sticky error survived Flush: %v", err)
	}
	// The healthy streams match solo decoders over the same rounds.
	for _, i := range []int{0, 2, 3} {
		dec, err := New(d, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		s := noise.NewRoundSampler(d, 0.02, 47, uint64(i)+1)
		for r := 0; r < rounds; r++ {
			if err := dec.PushLayer(s.SampleRound()); err != nil {
				t.Fatal(err)
			}
		}
		want := dec.Flush()
		if !slices.Equal(out[i], want) {
			t.Fatalf("healthy stream %d diverged from a solo decoder after a sibling was poisoned", i)
		}
	}
}

// TestEngineCloseWaitsForWorkers: Close must join the worker goroutines —
// repeated create/run/close cycles leave the goroutine count where it
// started.
func TestEngineCloseWaitsForWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		eng, err := NewEngine(EngineConfig{Streams: 8, Distance: 4, Workers: 8,
			Sink: func(int, Correction) {}})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.RunRounds(12, func(int, int) []int32 { return nil }); err != nil {
			t.Fatal(err)
		}
		if err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
		eng.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after 10 engine lifecycles",
				before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}

// runChaosEngine drives a fleet under injected faults and a deadline and
// returns the committed corrections plus the merged fault ledger.
func runChaosEngine(t *testing.T, workers int) ([][]Correction, faults.Report) {
	t.Helper()
	const streams, d, rounds = 6, 5, 400
	out := make([][]Correction, streams)
	eng, err := NewEngine(EngineConfig{
		Streams: streams, Distance: d, Workers: workers,
		Sink:   func(i int, c Correction) { out[i] = append(out[i], c) },
		Robust: Robust{DeadlineNS: 350, QueueCap: 8},
		Chaos: &faults.Config{
			Seed:     1234,
			DropRate: 0.02, DuplicateRate: 0.01, ReorderRate: 0.01,
			CorruptRate: 0.02, StallRate: 0.005,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	samplers := make([]*noise.RoundSampler, streams)
	for i := range samplers {
		samplers[i] = noise.NewRoundSampler(d, 0.01, 53, uint64(i)*0x9e37+1)
	}
	if err := eng.RunRounds(rounds, func(stream, _ int) []int32 {
		return samplers[stream].SampleRound()
	}); err != nil {
		t.Fatal(err)
	}
	rep := eng.FaultReport()
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	return out, rep
}

// TestEngineChaosDeterministicAcrossWorkerCounts is the tentpole's
// acceptance criterion: a fixed-seed chaos run — faults, deadlines,
// backpressure and all — is bit-identical for any worker count, down to the
// merged fault ledger.
func TestEngineChaosDeterministicAcrossWorkerCounts(t *testing.T) {
	want, wantRep := runChaosEngine(t, 1)
	if wantRep.Injected.Link() == 0 {
		t.Fatal("chaos run injected no link faults")
	}
	if err := wantRep.Check(); err != nil {
		t.Fatalf("fault ledger inconsistent: %v", err)
	}
	for _, workers := range []int{2, 3, 6} {
		got, gotRep := runChaosEngine(t, workers)
		for i := range want {
			if !slices.Equal(got[i], want[i]) {
				t.Fatalf("workers=%d stream %d: chaos corrections diverged (%d vs %d)",
					workers, i, len(got[i]), len(want[i]))
			}
		}
		if gotRep != wantRep {
			t.Fatalf("workers=%d: fault ledger diverged:\n got  %v\n want %v", workers, gotRep, wantRep)
		}
	}
}

// TestStreamRobustZeroAlloc: the always-hardened configuration — CRC
// channel (fault-free), deadline accounting, backpressure — must allocate
// nothing per round in steady state, like the plain push path.
func TestStreamRobustZeroAlloc(t *testing.T) {
	const d = 11
	for _, tc := range []struct {
		name string
		cfg  faults.Config
	}{
		{"perfect-wire", faults.Config{Seed: 7}},
		{"forced-framing", faults.Config{Seed: 7, ForceFraming: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dec, err := New(d, d, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := dec.SetRobust(Robust{DeadlineNS: 350, QueueCap: 16}); err != nil {
				t.Fatal(err)
			}
			dec.SetSink(func(Correction) {})
			ch := faults.NewChannel(d*(d-1), tc.cfg)
			s := noise.NewRoundSampler(d, 1e-3, 59, 12)
			rounds := make([][]int32, 1024)
			for i := range rounds {
				rounds[i] = append([]int32(nil), s.SampleRound()...)
			}
			push := func(i int) {
				delivered, erased, pen := ch.Transfer(rounds[i%len(rounds)])
				dec.AddPenaltyNS(pen)
				if erased {
					dec.PushErased()
					return
				}
				if err := dec.PushLayer(delivered); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 4*d; i++ { // reach steady state
				push(i)
			}
			n := 0
			if avg := testing.AllocsPerRun(2000, func() { push(n); n++ }); avg != 0 {
				t.Fatalf("hardened push path allocates %.2f allocs/round in steady state", avg)
			}
		})
	}
}
