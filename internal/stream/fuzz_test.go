package stream

import (
	"testing"

	"afs/internal/lattice"
)

// FuzzStreamArbitraryLayers feeds arbitrary detection-event layers
// (including duplicates) and checks the streaming invariant: the committed
// corrections toggle exactly the fed detection events, for any input.
func FuzzStreamArbitraryLayers(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{7, 7, 7, 255, 0, 0, 9, 9})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	const d = 4
	per := d * (d - 1)
	f.Fuzz(func(t *testing.T, raw []byte) {
		dec, err := New(d, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Interpret the bytes as (round, events) groups of 3 events each.
		rounds := len(raw)/3 + 1
		if rounds > 24 {
			rounds = 24
		}
		fed := map[[2]int32]bool{} // (round, ancilla) -> present
		for r := 0; r < rounds; r++ {
			var events []int32
			for k := 0; k < 3 && r*3+k < len(raw); k++ {
				x := int32(int(raw[r*3+k]) % per)
				if !fed[[2]int32{int32(r), x}] {
					fed[[2]int32{int32(r), x}] = true
					events = append(events, x)
				}
				// Feed the duplicate anyway: PushLayer must ignore it.
				events = append(events, x)
			}
			dec.PushLayer(events)
		}
		corr := dec.Flush()

		// The corrections' detection-event toggles must equal fed.
		g := lattice.New3D(d, rounds)
		marks := map[int32]bool{}
		toggle := func(v int32) {
			if !g.IsBoundary(v) {
				marks[v] = !marks[v]
			}
		}
		for _, c := range corr {
			switch c.Kind {
			case lattice.Spatial:
				e := g.Edges[g.SpatialEdge(c.Qubit, c.Round)]
				toggle(e.U)
				toggle(e.V)
			case lattice.Temporal:
				toggle(int32(c.Round*per) + c.Ancilla)
				toggle(int32((c.Round+1)*per) + c.Ancilla)
			}
		}
		for key := range fed {
			marks[key[0]*int32(per)+key[1]] = !marks[key[0]*int32(per)+key[1]]
		}
		for v, odd := range marks {
			if odd {
				t.Fatalf("vertex %d unexplained after streaming arbitrary layers", v)
			}
		}
	})
}
