package stream

import (
	"slices"
	"testing"

	"afs/internal/core"
	"afs/internal/lattice"
)

// FuzzStreamArbitraryLayers feeds arbitrary detection-event layers
// (including duplicates) and checks the streaming invariant: the committed
// corrections toggle exactly the fed detection events, for any input.
func FuzzStreamArbitraryLayers(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{7, 7, 7, 255, 0, 0, 9, 9})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	const d = 4
	per := d * (d - 1)
	f.Fuzz(func(t *testing.T, raw []byte) {
		dec, err := New(d, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Interpret the bytes as (round, events) groups of 3 events each.
		rounds := len(raw)/3 + 1
		if rounds > 24 {
			rounds = 24
		}
		fed := map[[2]int32]bool{} // (round, ancilla) -> present
		for r := 0; r < rounds; r++ {
			var events []int32
			for k := 0; k < 3 && r*3+k < len(raw); k++ {
				x := int32(int(raw[r*3+k]) % per)
				if !fed[[2]int32{int32(r), x}] {
					fed[[2]int32{int32(r), x}] = true
					events = append(events, x)
				}
				// Feed the duplicate anyway: PushLayer must ignore it.
				events = append(events, x)
			}
			dec.PushLayer(events)
		}
		corr := dec.Flush()

		// The corrections' detection-event toggles must equal fed.
		g := lattice.New3D(d, rounds)
		marks := map[int32]bool{}
		toggle := func(v int32) {
			if !g.IsBoundary(v) {
				marks[v] = !marks[v]
			}
		}
		for _, c := range corr {
			switch c.Kind {
			case lattice.Spatial:
				e := g.Edges[g.SpatialEdge(c.Qubit, c.Round)]
				toggle(e.U)
				toggle(e.V)
			case lattice.Temporal:
				toggle(int32(c.Round*per) + c.Ancilla)
				toggle(int32((c.Round+1)*per) + c.Ancilla)
			}
		}
		for key := range fed {
			marks[key[0]*int32(per)+key[1]] = !marks[key[0]*int32(per)+key[1]]
		}
		for v, odd := range marks {
			if odd {
				t.Fatalf("vertex %d unexplained after streaming arbitrary layers", v)
			}
		}
	})
}

// fuzzLayers decodes raw bytes into per-round event lists (3 events per
// round, duplicates preserved so PushLayer's dedup stays under test).
func fuzzLayers(raw []byte, per, maxRounds int) [][]int32 {
	rounds := len(raw)/3 + 1
	if rounds > maxRounds {
		rounds = maxRounds
	}
	out := make([][]int32, rounds)
	for r := 0; r < rounds; r++ {
		for k := 0; k < 3 && r*3+k < len(raw); k++ {
			out[r] = append(out[r], int32(int(raw[r*3+k])%per))
		}
	}
	return out
}

// FuzzStreamMatchesBaseline is the differential fuzz target for the ring
// rebuild: arbitrary layers through the new Decoder and the preserved
// pre-rebuild Baseline must commit identical correction sets, across a
// window geometry that actually slides.
func FuzzStreamMatchesBaseline(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 3, 3, 0, 1, 2})
	f.Add([]byte{9, 14, 2, 9, 14, 2, 9, 14, 2, 1, 1, 1})
	const d, w, c = 4, 4, 2
	per := d * (d - 1)
	f.Fuzz(func(t *testing.T, raw []byte) {
		dec, err := New(d, w, c)
		if err != nil {
			t.Fatal(err)
		}
		bl, err := NewBaseline(d, w, c)
		if err != nil {
			t.Fatal(err)
		}
		for _, layer := range fuzzLayers(raw, per, 24) {
			dec.PushLayer(layer)
			bl.PushLayer(layer)
		}
		got := dec.Flush()
		want := bl.Flush()
		sortCorrections(got)
		sortCorrections(want)
		if !slices.Equal(got, want) {
			t.Fatalf("rebuilt decoder diverged from baseline:\n new  %v\n base %v", got, want)
		}
	})
}

// FuzzStreamMonolithicWindowMatchesClosedDecode checks the streaming-vs-
// monolithic parity property in its exact form: when the window exceeds the
// stream length it never slides, so Flush must reproduce a direct closed-
// graph core decode edge for edge.
func FuzzStreamMonolithicWindowMatchesClosedDecode(f *testing.F) {
	f.Add([]byte{0, 5, 11})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	const d, maxRounds = 4, 12
	per := d * (d - 1)
	f.Fuzz(func(t *testing.T, raw []byte) {
		layers := fuzzLayers(raw, per, maxRounds)
		if len(layers) < 2 {
			return // a 1-layer stream decodes on the 2-D graph; covered elsewhere
		}
		dec, err := New(d, maxRounds+1, 1)
		if err != nil {
			t.Fatal(err)
		}
		var defects []int32
		seen := map[int32]bool{}
		for r, layer := range layers {
			dec.PushLayer(layer)
			for _, x := range layer {
				// Duplicates within a round are ignored by PushLayer (an event
				// either happened or it did not), so dedup, don't toggle.
				v := int32(r*per) + x
				if !seen[v] {
					seen[v] = true
					defects = append(defects, v)
				}
			}
		}
		slices.Sort(defects)

		g := lattice.Cached3D(d, len(layers))
		got := correctionEdges(t, g, dec.Flush())
		want := append([]int32(nil), core.NewDecoder(g, core.Options{}).Decode(defects)...)
		slices.Sort(want)
		if !slices.Equal(got, want) {
			t.Fatalf("monolithic-window stream decode %v != closed core decode %v", got, want)
		}
	})
}
