package stream

import (
	"math/bits"

	"afs/internal/core"
	"afs/internal/lattice"
)

// LaneBatcher resolves deferred (SetDeferDecode) stream windows in
// cross-stream lane groups: up to 64 pending windows sharing a
// (distance, window) shape are transposed into bit-plane defect planes —
// one uint64 per window-graph vertex, bit t = lane t's window has a defect
// there — and classified word-parallel by core.LaneTriage.ClassifySparse.
// Lanes whose window certifies against the sparse shortcut's fast set
// commit their closed-form correction with no per-stream decode at all;
// the rest run the unchanged scalar path on the defect list the scatter
// pass already extracted (so the heavy tail re-reads nothing). Either route finishes through the same commit/slide code a
// scalar decodeWindow uses, so corrections are bit-identical to per-stream
// decoding for every group size and fill.
//
// Group-formation rules (deterministic — a pure function of the decs slice
// order and the decoders' pending flags, never of worker timing):
//
//   - only pending decoders join a group; the commit depth is NOT part of
//     the shape key, because classification is horizon-independent and
//     each lane commits against its own decoder's Commit;
//   - windows containing an erased round, decoders with the weight-0 skip
//     disabled, windows past core.MaxShortcutDefects, and windows at or
//     past a tile-punt threshold route straight to the scalar path without
//     touching the planes (counted laneIneligible) — erasure flags and
//     punt routing are per-stream state the planes cannot carry;
//   - robust (deadline/backpressure) decoders never defer in the first
//     place (SetDeferDecode rejects them), so degraded windows cannot
//     reach a lane group.
//
// Not safe for concurrent use; engines hold one batcher per worker.
type LaneBatcher struct {
	shapes map[laneKey]*laneShape
	om     *streamObs
	omSh   int
}

type laneKey struct {
	distance, window int
}

// laneShape is the per-(distance, window) working set: the shared window
// graph and classifier plus the transpose planes and per-lane scratch. All
// of it reaches a high-water capacity and is reused, so steady-state
// batches allocate nothing.
type laneShape struct {
	g       *lattice.Graph
	lt      *core.LaneTriage
	planes  []uint64 // g.V + 1: defect planes plus the always-zero sentinel
	touched []uint64
	emits   [64][]int32 // per-lane fast-path edge emits (ClassifySparse)
	lists   [64][]int32 // per-lane defect lists (collectScatter)
	counts  [64]int
	lanes   [64]*Decoder
}

// NewLaneBatcher returns an empty batcher; per-shape working sets build
// lazily on the first pending window of each shape.
func NewLaneBatcher() *LaneBatcher {
	return &LaneBatcher{
		shapes: map[laneKey]*laneShape{},
		om:     obsSink.Load(),
		omSh:   nextObsShard(),
	}
}

func (b *LaneBatcher) shapeFor(d *Decoder) *laneShape {
	k := laneKey{distance: d.Distance, window: d.Window}
	if sh, ok := b.shapes[k]; ok {
		return sh
	}
	sh := &laneShape{
		g:       d.g,
		lt:      core.NewLaneTriage(d.g),
		planes:  make([]uint64, d.g.V+1),
		touched: make([]uint64, (d.g.V+63)/64),
	}
	b.shapes[k] = sh
	return sh
}

// Decode resolves every pending decoder in decs, grouping same-shape
// pending windows into lane groups of up to 64 in slice order (skipping
// over non-pending and different-shape entries; those shapes form their
// own groups on later sweeps of the same pass). nil entries are ignored.
func (b *LaneBatcher) Decode(decs []*Decoder) {
	for i := 0; i < len(decs); i++ {
		d := decs[i]
		if d == nil || !d.pending {
			continue
		}
		sh := b.shapeFor(d)
		n := 0
		sh.lanes[n] = d
		n++
		for j := i + 1; j < len(decs) && n < 64; j++ {
			dj := decs[j]
			if dj == nil || !dj.pending || dj.Distance != d.Distance || dj.Window != d.Window {
				continue
			}
			sh.lanes[n] = dj
			n++
		}
		b.decodeGroup(sh, n)
	}
}

// decodeGroup resolves one formed group: scatter the eligible windows into
// the planes, classify, fast-commit the certified lanes, gather and
// scalar-decode the rest.
func (b *LaneBatcher) decodeGroup(sh *laneShape, n int) {
	var elig uint64
	scalar := 0
	for lane := 0; lane < n; lane++ {
		d := sh.lanes[lane]
		d.pending = false
		nd, anyErased := d.windowSummary()
		sh.counts[lane] = nd
		switch {
		case anyErased || d.disableW0Skip,
			nd > core.MaxShortcutDefects,
			d.tdec != nil && nd >= d.tileMin:
			// Per-stream state the planes cannot carry (erasure flags,
			// punt routing, the W0-skip test hook): the unchanged scalar
			// window decode, outside the group.
			d.decodeWindow(false)
			sh.lanes[lane] = nil
			scalar++
		case nd == 0:
			// The weight-0 skip, lane-side: nothing to scatter, nothing to
			// decode — commit the empty correction and slide.
			d.commitFast(nil, 0)
			sh.lanes[lane] = nil
		default:
			d.collectScatter(sh.planes, sh.touched, uint(lane), &sh.lists[lane])
			elig |= 1 << uint(lane)
		}
	}
	var fast uint64
	if elig != 0 {
		fast = sh.lt.ClassifySparse(sh.planes, sh.touched, elig, &sh.emits)
		for ew := elig; ew != 0; {
			lane := bits.TrailingZeros64(ew)
			ew &^= 1 << uint(lane)
			d := sh.lanes[lane]
			if fast>>uint(lane)&1 != 0 {
				d.commitFast(sh.emits[lane], sh.counts[lane])
			} else {
				d.decodeGathered(sh.lists[lane])
			}
			sh.lanes[lane] = nil
		}
		sh.lt.ClearPlanes(sh.planes, sh.touched)
	}
	if b.om != nil {
		b.om.laneGroups.Inc(b.omSh)
		b.om.laneWindows.Add(b.omSh, uint64(n))
		if scalar != 0 {
			b.om.laneIneligible.Add(b.omSh, uint64(scalar))
		}
		if fast != 0 {
			b.om.laneFast.Add(b.omSh, uint64(bits.OnesCount64(fast)))
		}
		if g := elig &^ fast; g != 0 {
			b.om.laneGathered.Add(b.omSh, uint64(bits.OnesCount64(g)))
		}
	}
}

// windowSummary scans the (full — pending implies ringLen == Window) ring
// for the window's defect count and whether any round was erased. Slot
// order is irrelevant for either, so the scan skips the ring rotation.
func (d *Decoder) windowSummary() (ndefects int, anyErased bool) {
	n := int32(0)
	for si := 0; si < d.Window; si++ {
		n += d.occ[si]
		anyErased = anyErased || d.erased[si]
	}
	return int(n), anyErased
}

// collectScatter extracts the window's defects in ascending window-local
// vertex order (layer t's ancilla x at vertex t*per + x), OR-ing each into
// a lane group's planes at bit `lane` and appending it to *list. One
// rotated pass serves both routes out of classification: the planes feed
// the word-parallel certifier, and if the lane is gathered the scalar
// fallback decodes the list without re-reading the ring. The scatter is
// OR-only, which is what licenses core.LaneTriage.ClearPlanes's
// O(defects) cleanup.
func (d *Decoder) collectScatter(planes, touched []uint64, lane uint, list *[]int32) {
	bit := uint64(1) << lane
	out := (*list)[:0]
	for t := 0; t < d.Window; t++ {
		si := d.ringStart + t
		if si >= d.Window {
			si -= d.Window
		}
		if d.occ[si] == 0 {
			continue
		}
		wi := si * d.perWords
		off := t * d.per
		for k := 0; k < d.perWords; k++ {
			w := d.ring[wi+k]
			base := off + k<<6
			for w != 0 {
				x := bits.TrailingZeros64(w)
				w &^= 1 << uint(x)
				v := base + x
				planes[v] |= bit
				touched[v>>6] |= 1 << (uint(v) & 63)
				out = append(out, int32(v))
			}
		}
	}
	*list = out
}
