package stream

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"afs/internal/faults"
	"afs/internal/noise"
)

// feedRounds pushes rounds [from, to) of a seeded per-round sampler through
// the decoder, carrying each through ch (when non-nil) exactly as a fleet
// link does.
func feedRounds(t *testing.T, d *Decoder, sampler *noise.RoundSampler, ch *faults.Channel, n int) {
	t.Helper()
	for r := 0; r < n; r++ {
		ev := sampler.SampleRound()
		if ch != nil {
			delivered, erased, pen := ch.Transfer(ev)
			d.AddPenaltyNS(pen)
			if erased {
				d.PushErased()
				continue
			}
			ev = delivered
		}
		if err := d.PushLayer(ev); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
}

// TestSnapshotRestoreBitIdentical proves the checkpoint contract: a fresh
// decoder restored from a mid-stream snapshot and fed the remaining rounds
// commits byte-identical corrections and reports an identical ledger,
// including under deadline enforcement, backpressure, and link faults, and
// including snapshots taken at every possible ring fill level.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	const d, rounds = 5, 160
	cases := []struct {
		name   string
		robust Robust
		chaos  *faults.Config
	}{
		{name: "plain"},
		{name: "robust", robust: Robust{DeadlineNS: 350, QueueCap: 4}},
		{name: "chaos+robust",
			robust: Robust{DeadlineNS: 120, QueueCap: 2},
			chaos: &faults.Config{Seed: 7, DropRate: 0.05, DuplicateRate: 0.03,
				ReorderRate: 0.03, CorruptRate: 0.05, StallRate: 0.2, StallNS: 400},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for cut := 1; cut < rounds; cut += 13 {
				per := d * (d - 1)

				// Reference run: one decoder sees the whole stream.
				ref, err := New(d, 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				if err := ref.SetRobust(tc.robust); err != nil {
					t.Fatal(err)
				}
				var refCorr []Correction
				ref.SetSink(func(c Correction) { refCorr = append(refCorr, c) })
				var ch *faults.Channel
				if tc.chaos != nil {
					ch = faults.NewChannel(per, *tc.chaos)
				}
				sampler := noise.NewRoundSampler(d, 0.02, 11, 1)
				feedRounds(t, ref, sampler, ch, cut)
				atCut := len(refCorr)
				snap := ref.Snapshot()

				// The snapshot crosses a wire in practice: round-trip JSON.
				blob, err := json.Marshal(snap)
				if err != nil {
					t.Fatal(err)
				}
				var wire Snapshot
				if err := json.Unmarshal(blob, &wire); err != nil {
					t.Fatal(err)
				}

				feedRounds(t, ref, sampler, ch, rounds-cut)
				ref.Flush()
				refRep := ref.Report()

				// Restored run: a different decoder instance continues from
				// the snapshot over the identical remaining rounds (replayed
				// post-chaos, as a fleet journal stores them).
				re, err := New(d, 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				if err := re.SetRobust(tc.robust); err != nil {
					t.Fatal(err)
				}
				var reCorr []Correction
				re.SetSink(func(c Correction) { reCorr = append(reCorr, c) })
				if err := re.Restore(wire); err != nil {
					t.Fatalf("restore at cut %d: %v", cut, err)
				}
				ch2 := ch
				sampler2 := sampler
				if tc.chaos != nil {
					// Replay the same link outcomes: rewind an identical
					// channel+sampler pair and skip the first cut rounds.
					ch2 = faults.NewChannel(per, *tc.chaos)
					sampler2 = noise.NewRoundSampler(d, 0.02, 11, 1)
					drop, err := New(d, 0, 0)
					if err != nil {
						t.Fatal(err)
					}
					feedRounds(t, drop, sampler2, ch2, cut)
				} else {
					sampler2 = noise.NewRoundSampler(d, 0.02, 11, 1)
					drop, err := New(d, 0, 0)
					if err != nil {
						t.Fatal(err)
					}
					feedRounds(t, drop, sampler2, nil, cut)
				}
				feedRounds(t, re, sampler2, ch2, rounds-cut)
				re.Flush()
				reRep := re.Report()

				if got, want := reCorr, refCorr[atCut:]; !sameCorrections(got, want) {
					t.Fatalf("cut %d: corrections diverge: restored %d vs reference suffix %d", cut, len(got), len(want))
				}
				// The restored ledger must equal the reference's: windows,
				// timeouts, degraded commits, shedding episodes — no drift
				// and no double count across the checkpoint boundary.
				if !reflect.DeepEqual(refRep, reRep) {
					t.Fatalf("cut %d: ledger diverged:\nref  %+v\nrest %+v", cut, refRep, reRep)
				}
				if err := reRep.CheckFinal(); err != nil {
					t.Fatalf("cut %d: restored ledger: %v", cut, err)
				}
			}
		})
	}
}

func sameCorrections(a, b []Correction) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSnapshotRestoreMidEpisode pins the mid-shedding-episode contract: a
// snapshot taken while the backlog queue is inside an open shedding episode
// restores with the episode still open, and the stream's eventual Flush
// closes it exactly once — Sheds and Recoveries balance (CheckFinal), with
// no phantom recovery from the restore itself.
func TestSnapshotRestoreMidEpisode(t *testing.T) {
	const d = 5
	dec, err := New(d, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	robust := Robust{DeadlineNS: 50, QueueCap: 1}
	if err := dec.SetRobust(robust); err != nil {
		t.Fatal(err)
	}
	// Saturate the queue with injected stall penalties until it sheds.
	sampler := noise.NewRoundSampler(d, 0.05, 3, 1)
	fed := 0
	for dec.queue.Sheds == 0 {
		dec.AddPenaltyNS(5000)
		if err := dec.PushLayer(sampler.SampleRound()); err != nil {
			t.Fatal(err)
		}
		fed++
		if fed > 10000 {
			t.Fatal("queue never shed")
		}
	}
	snap := dec.Snapshot()
	if !snap.Queue.Shedding {
		t.Fatal("snapshot not taken mid-episode")
	}
	if snap.Queue.Sheds != snap.Queue.Recoveries+1 {
		t.Fatalf("expected exactly one open episode, got sheds=%d recoveries=%d",
			snap.Queue.Sheds, snap.Queue.Recoveries)
	}

	re, err := New(d, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := re.SetRobust(robust); err != nil {
		t.Fatal(err)
	}
	if err := re.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := re.Report(); got.BacklogSheds != snap.Queue.Sheds || got.BacklogRecovers != snap.Queue.Recoveries {
		t.Fatalf("restore perturbed episode counters: %+v vs queue %+v", got, snap.Queue)
	}
	re.Flush()
	rep := re.Report()
	if err := rep.CheckFinal(); err != nil {
		t.Fatalf("flushed ledger after mid-episode restore: %v", err)
	}
	if rep.BacklogSheds != snap.Queue.Sheds || rep.BacklogRecovers != rep.BacklogSheds {
		t.Fatalf("episode not closed exactly once: %+v", rep)
	}
}

// TestRestoreRejectsMalformed exercises the validation guards: restoring
// never partially applies a bad snapshot.
func TestRestoreRejectsMalformed(t *testing.T) {
	dec, err := New(5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.PushLayer([]int32{3}); err != nil {
		t.Fatal(err)
	}
	before := dec.Snapshot()

	bad := []Snapshot{
		{Distance: 7, Window: 7, Commit: 3}, // shape mismatch
		{Distance: 5, Window: 5, Commit: 2, Layers: make([][]int32, 5), Erased: make([]bool, 5)}, // full window
		{Distance: 5, Window: 5, Commit: 2, Layers: [][]int32{{99}}, Erased: []bool{false}},      // index range
		{Distance: 5, Window: 5, Commit: 2, Layers: [][]int32{{1}}, Erased: []bool{}},            // flag count
		{Distance: 5, Window: 5, Commit: 2, Base: -1},                                            // negative base
		{Distance: 5, Window: 5, Commit: 2, PenaltyNS: math.NaN()},                               // NaN penalty
		{Distance: 5, Window: 5, Commit: 2, PenaltyNS: math.Inf(1)},                              // Inf penalty
		{Distance: 5, Window: 5, Commit: 2, PenaltyNS: -1},                                       // negative penalty
	}
	for i, s := range bad {
		if err := dec.Restore(s); err == nil {
			t.Fatalf("bad snapshot %d accepted", i)
		}
	}
	if got := dec.Snapshot(); !reflect.DeepEqual(got, before) {
		t.Fatalf("failed restore mutated decoder: %+v vs %+v", got, before)
	}

	// A checkpoint that was corrupted in storage does not even unmarshal —
	// the caller's decode error fires before Restore ever runs. Pin that the
	// standard round trip catches the truncation rather than yielding a
	// zero-valued (and therefore shape-rejected) snapshot.
	blob, err := json.Marshal(before)
	if err != nil {
		t.Fatal(err)
	}
	var trunc Snapshot
	if err := json.Unmarshal(blob[:len(blob)/2], &trunc); err == nil {
		if err := dec.Restore(trunc); err == nil {
			t.Fatal("truncated checkpoint restored cleanly")
		}
	}
	var garbled Snapshot
	if err := json.Unmarshal([]byte(`{"distance":5,"window":5,"commit":2,"penalty_ns":"NaN"}`), &garbled); err == nil {
		if err := dec.Restore(garbled); err == nil {
			t.Fatal("garbled checkpoint restored cleanly")
		}
	}
}
