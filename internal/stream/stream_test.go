package stream

import (
	"testing"

	"afs/internal/lattice"
	"afs/internal/noise"
)

// feed splits a closed-graph trial (T detector layers) into per-layer
// detection events and streams them through the decoder (either the ring
// Decoder or the pre-rebuild Baseline).
func feed(d pusher, g *lattice.Graph, defects []int32) {
	per := g.LayerVertices()
	layers := make([][]int32, g.Rounds)
	for _, v := range defects {
		t := int(v) / per
		layers[t] = append(layers[t], int32(int(v)%per))
	}
	for _, l := range layers {
		d.PushLayer(l)
	}
}

// verify checks that the committed corrections reproduce exactly the
// detection events of the reference trial, and returns the residual
// data-error mask.
func verify(t *testing.T, g *lattice.Graph, trial *noise.Trial, corr []Correction) noise.Bitset {
	t.Helper()
	per := g.LayerVertices()
	marks := map[int32]bool{}
	toggle := func(v int32) {
		if !g.IsBoundary(v) {
			marks[v] = !marks[v]
		}
	}
	residual := noise.NewBitset(g.NumDataQubits())
	residual.Xor(trial.NetData)
	for _, c := range corr {
		switch c.Kind {
		case lattice.Spatial:
			if c.Round < 0 || c.Round >= g.Rounds {
				t.Fatalf("spatial correction in round %d outside stream", c.Round)
			}
			e := g.Edges[g.SpatialEdge(c.Qubit, c.Round)]
			toggle(e.U)
			toggle(e.V)
			residual.Flip(int(c.Qubit))
		case lattice.Temporal:
			if c.Round < 0 || c.Round >= g.Rounds-1 {
				t.Fatalf("temporal correction in round %d outside stream", c.Round)
			}
			toggle(int32(c.Round*per) + c.Ancilla)
			toggle(int32((c.Round+1)*per) + c.Ancilla)
		}
	}
	for _, v := range trial.Defects {
		marks[v] = !marks[v]
	}
	for v, odd := range marks {
		if odd {
			t.Fatalf("committed corrections do not reproduce the syndrome (vertex %d unbalanced)", v)
		}
	}
	return residual
}

func TestStreamReproducesSyndrome(t *testing.T) {
	const d, T = 5, 20
	g := lattice.New3D(d, T)
	s := noise.NewSampler(g, 0.01, 3, 1)
	var trial noise.Trial
	for i := 0; i < 300; i++ {
		s.Sample(&trial)
		dec, err := New(d, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		feed(dec, g, trial.Defects)
		corr := dec.Flush()
		verify(t, g, &trial, corr)
	}
}

func TestStreamVariousWindowGeometries(t *testing.T) {
	const d, T = 4, 13
	g := lattice.New3D(d, T)
	s := noise.NewSampler(g, 0.02, 9, 2)
	var trial noise.Trial
	for _, cfg := range []struct{ w, c int }{
		{4, 2}, {4, 1}, {4, 3}, {6, 3}, {2, 1}, {20, 10},
	} {
		for i := 0; i < 100; i++ {
			s.Sample(&trial)
			dec, err := New(d, cfg.w, cfg.c)
			if err != nil {
				t.Fatal(err)
			}
			feed(dec, g, trial.Defects)
			verify(t, g, &trial, dec.Flush())
		}
	}
}

func TestStreamEmptyStream(t *testing.T) {
	dec, err := New(5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if corr := dec.Flush(); len(corr) != 0 {
		t.Fatalf("empty stream produced corrections: %v", corr)
	}
	// Quiet layers produce no corrections either.
	for i := 0; i < 12; i++ {
		dec.PushLayer(nil)
	}
	if corr := dec.Flush(); len(corr) != 0 {
		t.Fatalf("noiseless stream produced corrections: %v", corr)
	}
}

func TestStreamReusableAfterFlush(t *testing.T) {
	const d, T = 4, 8
	g := lattice.New3D(d, T)
	s := noise.NewSampler(g, 0.02, 5, 3)
	dec, err := New(d, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var trial noise.Trial
	for i := 0; i < 50; i++ {
		s.Sample(&trial)
		feed(dec, g, trial.Defects)
		verify(t, g, &trial, dec.Flush())
	}
}

// TestStreamAccuracyComparableToMonolithic: sliding-window decoding is
// slightly weaker than decoding the whole history at once (decisions are
// made with finite context), but at a fixed (d, p) the logical failure
// rates must be the same order of magnitude.
func TestStreamAccuracyComparableToMonolithic(t *testing.T) {
	const d, T = 5, 15
	const p = 0.015
	const trials = 8000
	g := lattice.New3D(d, T)
	cut := g.NorthCutQubits()

	// Monolithic failures: a window larger than the stream never slides,
	// so Flush decodes the full history on a closed graph in one shot.
	s := noise.NewSampler(g, p, 7, 1)
	mono := 0
	{
		decMono, err := New(d, T+1, 1)
		if err != nil {
			t.Fatal(err)
		}
		var trial noise.Trial
		for i := 0; i < trials; i++ {
			s.Sample(&trial)
			feed(decMono, g, trial.Defects)
			res := verify(t, g, &trial, decMono.Flush())
			if res.Parity(cut) {
				mono++
			}
		}
	}

	// Streamed failures on the identical trial sequence.
	s = noise.NewSampler(g, p, 7, 1)
	streamed := 0
	{
		dec, err := New(d, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		var trial noise.Trial
		for i := 0; i < trials; i++ {
			s.Sample(&trial)
			feed(dec, g, trial.Defects)
			res := verify(t, g, &trial, dec.Flush())
			if res.Parity(cut) {
				streamed++
			}
		}
	}

	if mono == 0 || streamed == 0 {
		t.Fatalf("expected failures in both modes at p=%g (mono %d, streamed %d)", p, mono, streamed)
	}
	if streamed > 4*mono {
		t.Fatalf("streaming degraded accuracy too much: %d vs %d failures", streamed, mono)
	}
	if streamed < mono/4 {
		t.Fatalf("streaming implausibly better than monolithic: %d vs %d", streamed, mono)
	}
	t.Logf("failures over %d cycles: monolithic %d, streamed %d", trials, mono, streamed)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 0, 0); err == nil {
		t.Error("d=1 accepted")
	}
	if _, err := New(5, 1, 1); err == nil {
		t.Error("window=1 accepted")
	}
	if _, err := New(5, 4, 5); err == nil {
		t.Error("commit>window accepted")
	}
	if _, err := New(5, 4, 4); err == nil {
		t.Error("commit==window accepted (would commit deferred boundary matches)")
	}
	if _, err := New(5, 4, 0); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}
