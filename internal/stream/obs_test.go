package stream

import (
	"bytes"
	"slices"
	"testing"

	"afs/internal/faults"
	"afs/internal/lattice"
	"afs/internal/noise"
	"afs/internal/obs"
)

// runObsEngine drives the same fixed-seed chaos fleet as the determinism
// tests, optionally with a trace installed, and returns the committed
// corrections and merged ledger.
func runObsEngine(t *testing.T, workers int, tr *obs.Trace) ([][]Correction, faults.Report) {
	t.Helper()
	const streams, d, rounds = 5, 5, 300
	out := make([][]Correction, streams)
	eng, err := NewEngine(EngineConfig{
		Streams: streams, Distance: d, Workers: workers,
		Sink:   func(i int, c Correction) { out[i] = append(out[i], c) },
		Robust: Robust{DeadlineNS: 350, QueueCap: 8},
		Chaos: &faults.Config{
			Seed:     99,
			DropRate: 0.02, DuplicateRate: 0.01, CorruptRate: 0.02, StallRate: 0.01,
		},
		Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	samplers := make([]*noise.RoundSampler, streams)
	for i := range samplers {
		samplers[i] = noise.NewRoundSampler(d, 0.01, 71, uint64(i)*0x9e37+1)
	}
	if err := eng.RunRounds(rounds, func(stream, _ int) []int32 {
		return samplers[stream].SampleRound()
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	return out, eng.FaultReport()
}

// TestObsDoesNotPerturbDecoding is the no-perturbation acceptance
// criterion: a fixed-seed run commits bit-identical corrections whether
// metrics are enabled (the default), disabled, or a trace is recording.
func TestObsDoesNotPerturbDecoding(t *testing.T) {
	want, wantRep := runObsEngine(t, 3, nil)

	SetObsEnabled(false)
	gotOff, repOff := runObsEngine(t, 3, nil)
	SetObsEnabled(true)
	gotTraced, repTraced := runObsEngine(t, 3, obs.NewTrace(1<<18))

	for i := range want {
		if !slices.Equal(gotOff[i], want[i]) {
			t.Fatalf("stream %d: corrections changed with metrics disabled", i)
		}
		if !slices.Equal(gotTraced[i], want[i]) {
			t.Fatalf("stream %d: corrections changed with a trace installed", i)
		}
	}
	if repOff != wantRep || repTraced != wantRep {
		t.Fatalf("fault ledger perturbed by observability:\n base   %v\n off    %v\n traced %v",
			wantRep, repOff, repTraced)
	}
}

// TestTraceByteIdenticalAcrossWorkerCounts pins the trace determinism
// contract: the exported Chrome trace of a fixed-seed fleet is the same
// byte stream for any worker count.
func TestTraceByteIdenticalAcrossWorkerCounts(t *testing.T) {
	export := func(workers int) []byte {
		tr := obs.NewTrace(1 << 18)
		runObsEngine(t, workers, tr)
		if tr.Dropped() != 0 {
			t.Fatalf("workers=%d: trace dropped %d events; grow the buffer", workers, tr.Dropped())
		}
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := export(1)
	if len(want) == 0 {
		t.Fatal("empty trace export")
	}
	for _, workers := range []int{2, 5} {
		if got := export(workers); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: exported trace differs from workers=1 (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}
}

// TestObsCountersMatchLedger cross-checks the live counters against the
// decoder's own ledger: the deltas a run adds to the fleet-wide metrics
// must equal the Report the run returns — same events, two accountings.
func TestObsCountersMatchLedger(t *testing.T) {
	type snap struct {
		windows, timeouts, degraded, shed, sheds, recovers, erased uint64
	}
	take := func() snap {
		o := registeredObs
		return snap{
			windows:  o.windows.Value(),
			timeouts: o.timeouts.Value(),
			degraded: o.degraded.Value(),
			shed:     o.shedRounds.Value(),
			sheds:    o.backlogSheds.Value(),
			recovers: o.backlogRecovers.Value(),
			erased:   o.erasedRounds.Value(),
		}
	}

	const d, T = 4, 40
	g := lattice.New3D(d, T)
	s := noise.NewSampler(g, 0.02, 83, 17)
	dec, err := New(d, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.SetRobust(Robust{DeadlineNS: 350, QueueCap: 2}); err != nil {
		t.Fatal(err)
	}
	before := take()
	var trial noise.Trial
	s.Sample(&trial)
	per := g.LayerVertices()
	layers := make([][]int32, T)
	for _, v := range trial.Defects {
		layers[int(v)/per] = append(layers[int(v)/per], int32(int(v)%per))
	}
	for i, l := range layers {
		dec.AddPenaltyNS(1e5) // overload: force timeouts and shedding
		if i%7 == 3 {
			dec.PushErased()
			continue
		}
		if err := dec.PushLayer(l); err != nil {
			t.Fatal(err)
		}
	}
	// The windows counter is a throughput metric and also counts Flush's
	// final closing window; the ledger's Windows is the p_tof denominator
	// and only counts deadline-charged sliding windows — snapshot before
	// Flush so the two accountings cover the same set. Steady-state tallies
	// batch locally (obsFlushWindows), so publish them first.
	dec.flushObs()
	mid := take()
	dec.Flush()
	rep := dec.Report()
	after := take()

	if got := mid.windows - before.windows; got != rep.Windows {
		t.Errorf("windows counter delta %d != ledger %d", got, rep.Windows)
	}
	if got := after.windows - mid.windows; got > 1 {
		t.Errorf("flush decoded %d final windows, want at most 1", got)
	}
	if got := after.timeouts - before.timeouts; got != rep.Timeouts {
		t.Errorf("timeouts counter delta %d != ledger %d", got, rep.Timeouts)
	}
	if got := after.degraded - before.degraded; got != rep.DegradedCommits {
		t.Errorf("degraded counter delta %d != ledger %d", got, rep.DegradedCommits)
	}
	if got := after.shed - before.shed; got != rep.ShedRounds {
		t.Errorf("shed-rounds counter delta %d != ledger %d", got, rep.ShedRounds)
	}
	if got := after.sheds - before.sheds; got != rep.BacklogSheds {
		t.Errorf("backlog-sheds counter delta %d != ledger %d", got, rep.BacklogSheds)
	}
	if got := after.recovers - before.recovers; got != rep.BacklogRecovers {
		t.Errorf("backlog-recovers counter delta %d != ledger %d", got, rep.BacklogRecovers)
	}
	if rep.BacklogSheds == 0 || rep.Timeouts == 0 {
		t.Fatalf("overload produced no degradation to count (sheds %d, timeouts %d)",
			rep.BacklogSheds, rep.Timeouts)
	}
	if got := after.erased - before.erased; got == 0 {
		t.Error("erased-rounds counter did not move despite PushErased calls")
	}
	// A flushed single-stream ledger must balance exactly.
	if err := rep.CheckFinal(); err != nil {
		t.Errorf("flushed ledger fails CheckFinal: %v", err)
	}
}
