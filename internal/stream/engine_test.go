package stream

import (
	"fmt"
	"slices"
	"testing"

	"afs/internal/noise"
)

// runEngine drives an L-stream engine for the given rounds with seeded
// per-stream samplers and returns each stream's committed corrections
// (flushed), collected through per-stream sinks.
func runEngine(t *testing.T, streams, workers, d, w, c, rounds int) [][]Correction {
	t.Helper()
	out := make([][]Correction, streams)
	eng, err := NewEngine(EngineConfig{
		Streams: streams, Distance: d, Window: w, Commit: c, Workers: workers,
		Sink: func(stream int, corr Correction) {
			out[stream] = append(out[stream], corr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	samplers := make([]*noise.RoundSampler, streams)
	for i := range samplers {
		samplers[i] = noise.NewRoundSampler(d, 0.01, 42, uint64(i)*0x9e37+1)
	}
	eng.RunRounds(rounds, func(stream, _ int) []int32 {
		return samplers[stream].SampleRound()
	})
	eng.Flush()
	return out
}

// TestEngineDeterministicAcrossWorkerCounts is the acceptance criterion for
// the multi-stream engine: with a fixed seed, results must be bit-identical
// no matter how many workers decode the fleet.
func TestEngineDeterministicAcrossWorkerCounts(t *testing.T) {
	const streams, d, rounds = 7, 5, 200
	want := runEngine(t, streams, 1, d, d, 0, rounds)
	for _, workers := range []int{2, 3, 5, 16} {
		got := runEngine(t, streams, workers, d, d, 0, rounds)
		for i := range want {
			if !slices.Equal(got[i], want[i]) {
				t.Fatalf("workers=%d stream %d: %d corrections vs %d with workers=1 (or contents differ)",
					workers, i, len(got[i]), len(want[i]))
			}
		}
	}
}

// TestEngineMatchesIndividualDecoders: the engine must be a pure fan-out —
// every stream's output identical to running its Decoder alone on the same
// event sequence.
func TestEngineMatchesIndividualDecoders(t *testing.T) {
	const streams, d, w, c, rounds = 5, 4, 4, 2, 300
	got := runEngine(t, streams, 3, d, w, c, rounds)
	for i := 0; i < streams; i++ {
		dec, err := New(d, w, c)
		if err != nil {
			t.Fatal(err)
		}
		s := noise.NewRoundSampler(d, 0.01, 42, uint64(i)*0x9e37+1)
		for r := 0; r < rounds; r++ {
			dec.PushLayer(s.SampleRound())
		}
		want := dec.Flush()
		if !slices.Equal(got[i], want) {
			t.Fatalf("stream %d: engine output diverged from a solo decoder (%d vs %d corrections)",
				i, len(got[i]), len(want))
		}
	}
}

// TestEnginePushRoundMatchesRunRounds: the two ingestion APIs must commit
// identical corrections, including PushRound's serial fast path for
// non-decode rounds.
func TestEnginePushRoundMatchesRunRounds(t *testing.T) {
	const streams, d, rounds = 4, 4, 250
	want := runEngine(t, streams, 2, d, d, 0, rounds)

	out := make([][]Correction, streams)
	eng, err := NewEngine(EngineConfig{
		Streams: streams, Distance: d, Workers: 2,
		Sink: func(stream int, c Correction) { out[stream] = append(out[stream], c) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	samplers := make([]*noise.RoundSampler, streams)
	for i := range samplers {
		samplers[i] = noise.NewRoundSampler(d, 0.01, 42, uint64(i)*0x9e37+1)
	}
	events := make([][]int32, streams)
	for r := 0; r < rounds; r++ {
		for i := range events {
			events[i] = samplers[i].SampleRound()
		}
		eng.PushRound(events)
	}
	eng.Flush()
	for i := range want {
		if !slices.Equal(out[i], want[i]) {
			t.Fatalf("stream %d: PushRound output diverged from RunRounds", i)
		}
	}
}

// TestEngineRetainedMode: without a sink the engine retains per-stream
// corrections, counts them, and ResetCommitted drops them.
func TestEngineRetainedMode(t *testing.T) {
	const streams, d, rounds = 3, 4, 200
	eng, err := NewEngine(EngineConfig{Streams: streams, Distance: d, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	samplers := make([]*noise.RoundSampler, streams)
	for i := range samplers {
		samplers[i] = noise.NewRoundSampler(d, 0.02, 9, uint64(i)+1)
	}
	eng.RunRounds(rounds, func(stream, _ int) []int32 {
		return samplers[stream].SampleRound()
	})
	eng.Flush()
	var sum uint64
	for i := 0; i < streams; i++ {
		sum += uint64(len(eng.Committed(i)))
	}
	if sum == 0 {
		t.Fatal("noisy fleet committed nothing")
	}
	if eng.TotalCorrections() != sum {
		t.Fatalf("TotalCorrections %d != retained %d", eng.TotalCorrections(), sum)
	}
	eng.ResetCommitted()
	if eng.TotalCorrections() != 0 {
		t.Fatal("ResetCommitted left a nonzero total")
	}
	for i := 0; i < streams; i++ {
		if len(eng.Committed(i)) != 0 {
			t.Fatalf("stream %d retained corrections after ResetCommitted", i)
		}
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(EngineConfig{Streams: 0, Distance: 5}); err == nil {
		t.Error("zero streams accepted")
	}
	if _, err := NewEngine(EngineConfig{Streams: 2, Distance: 1}); err == nil {
		t.Error("invalid distance accepted")
	}
	eng, err := NewEngine(EngineConfig{Streams: 2, Distance: 4, Workers: 9})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Workers() != 2 {
		t.Errorf("workers not clamped to streams: %d", eng.Workers())
	}
	if eng.Streams() != 2 {
		t.Errorf("Streams() = %d", eng.Streams())
	}
	if eng.Decoder(1) == nil {
		t.Error("Decoder(1) nil")
	}
	eng.Close()
	eng.Close() // idempotent
}

// BenchmarkStreamDecoder measures single-stream steady-state throughput of
// the rebuilt ring-buffer decoder at the paper's operating point.
func BenchmarkStreamDecoder(b *testing.B) {
	benchSingle(b, func() pusher {
		d, err := New(11, 11, 0)
		if err != nil {
			b.Fatal(err)
		}
		d.SetSink(func(Correction) {})
		return d
	})
}

// BenchmarkStreamBaseline measures the pre-rebuild decoder on the identical
// workload, for interleaved comparison in cmd/afs-bench.
func BenchmarkStreamBaseline(b *testing.B) {
	benchSingle(b, func() pusher {
		d, err := NewBaseline(11, 11, 0)
		if err != nil {
			b.Fatal(err)
		}
		return d
	})
}

func benchSingle(b *testing.B, mk func() pusher) {
	const d = 11
	s := noise.NewRoundSampler(d, 1e-3, 1, 2)
	rounds := make([][]int32, 4096)
	for i := range rounds {
		rounds[i] = append([]int32(nil), s.SampleRound()...)
	}
	dec := mk()
	for i := 0; i < 2*d; i++ { // warm to steady state
		dec.PushLayer(rounds[i%len(rounds)])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.PushLayer(rounds[i%len(rounds)])
	}
}

// BenchmarkStreamEngine measures aggregate fleet throughput (rounds/s across
// all streams) at a few fleet sizes.
func BenchmarkStreamEngine(b *testing.B) {
	for _, streams := range []int{16, 256} {
		b.Run(fmt.Sprintf("L=%d", streams), func(b *testing.B) {
			const d = 11
			eng, err := NewEngine(EngineConfig{
				Streams: streams, Distance: d,
				Sink: func(int, Correction) {},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			samplers := make([]*noise.RoundSampler, streams)
			for i := range samplers {
				samplers[i] = noise.NewRoundSampler(d, 1e-3, 3, uint64(i)*0x9e37+1)
			}
			feed := func(stream, _ int) []int32 { return samplers[stream].SampleRound() }
			eng.RunRounds(2*d, feed) // warm
			b.ResetTimer()
			eng.RunRounds(b.N, feed)
			b.StopTimer()
			b.ReportMetric(float64(b.N)*float64(streams)/b.Elapsed().Seconds(), "stream-rounds/s")
		})
	}
}
