// Package stream implements continuous sliding-window decoding, the mode a
// deployed AFS decoder actually runs in: syndrome rounds arrive forever,
// and the decoder repeatedly decodes a W-round window, commits the
// corrections in the window's older half, and slides forward.
//
// The paper evaluates isolated logical cycles (d rounds at a time) but
// provisions the hardware for continuous operation — the Spanning Tree
// Memory's edge budget includes one temporal link per vertex, i.e. a
// temporal boundary at the top of every decoding window (see
// internal/storage and lattice.New3DWindow). This package supplies the
// control loop around that window graph:
//
//   - detector layers are buffered as they arrive (PushLayer);
//   - when W layers are buffered, the window graph is decoded; clusters
//     may match forward into the temporal boundary, deferring ambiguous
//     decisions to the future;
//   - corrections in the first C layers (the commit region) are final;
//     a committed temporal edge crossing the commit seam explains half of
//     a defect pair, so the far detection event is toggled before the next
//     window sees it;
//   - corrections in the tentative region are discarded and re-derived by
//     the next window with more context;
//   - Flush decodes whatever remains as a closed window (the stream's
//     final round is measured perfectly, as in the accuracy simulations).
package stream

import (
	"fmt"

	"afs/internal/core"
	"afs/internal/lattice"
)

// Correction is one committed decoding decision in global stream
// coordinates.
type Correction struct {
	// Kind distinguishes data-qubit fixes from measurement-error flags.
	Kind lattice.EdgeKind
	// Qubit is the data qubit for spatial corrections, -1 otherwise.
	Qubit int32
	// Ancilla is the per-layer ancilla index for temporal corrections, -1
	// otherwise.
	Ancilla int32
	// Round is the global detector layer of the correction (for temporal
	// corrections, the earlier of the two layers).
	Round int
}

// Decoder is a sliding-window streaming decoder for one logical qubit and
// one error type. Not safe for concurrent use.
type Decoder struct {
	Distance int
	// Window is W, the layers decoded together (the paper's logical cycle,
	// d, by default). Commit is C, the layers finalized per slide (W/2 by
	// default; 1 <= C <= W).
	Window, Commit int

	// In sliding mode commit < window always holds, so the window's
	// temporal boundary edges — deferred decisions — are never committed.
	g   *lattice.Graph // window graph with temporal boundary
	dec *core.Decoder

	finals map[int]*core.Decoder // closed-graph decoders for Flush, by layer count
	closed map[int]*lattice.Graph

	buffer    [][]int32 // buffered detection events per layer (ancilla indices)
	carry     []int32   // seam toggles for the next window's first layer
	base      int       // global index of buffer[0]
	committed []Correction

	defects []int32 // scratch
	seam    map[int32]bool
}

// New creates a streaming decoder. window == 0 selects d; commit == 0
// selects window/2 (minimum 1). commit must stay below window so that a
// window's temporal-boundary matches remain revisable; a window larger
// than the whole stream yields monolithic decoding at Flush.
func New(distance, window, commit int) (*Decoder, error) {
	if distance < 2 {
		return nil, fmt.Errorf("stream: distance %d < 2", distance)
	}
	if window == 0 {
		window = distance
	}
	if window < 2 {
		return nil, fmt.Errorf("stream: window %d < 2", window)
	}
	if commit == 0 {
		commit = window / 2
		if commit < 1 {
			commit = 1
		}
	}
	if commit < 1 || commit >= window {
		return nil, fmt.Errorf("stream: commit %d outside [1, %d); committing a full window would finalize its deferred boundary matches", commit, window)
	}
	g := lattice.New3DWindow(distance, window)
	return &Decoder{
		Distance: distance,
		Window:   window,
		Commit:   commit,
		g:        g,
		dec:      core.NewDecoder(g, core.Options{}),
		finals:   map[int]*core.Decoder{},
		closed:   map[int]*lattice.Graph{},
		seam:     map[int32]bool{},
	}, nil
}

// PushLayer feeds one round's detection events (per-layer ancilla indices,
// 0 <= index < d(d-1)). The slice is copied; duplicate indices within a
// round are ignored (a detection event either happened or it did not).
// Indices outside the ancilla range panic — they indicate a framing bug in
// the caller, not a noisy channel. Whenever a full window is buffered, it
// is decoded and its commit region finalized.
func (d *Decoder) PushLayer(events []int32) {
	per := int32(d.Distance * (d.Distance - 1))
	layer := make([]int32, 0, len(events))
	for _, x := range events {
		if x < 0 || x >= per {
			panic(fmt.Sprintf("stream: ancilla index %d outside [0,%d)", x, per))
		}
		dup := false
		for _, y := range layer {
			if y == x {
				dup = true
				break
			}
		}
		if !dup {
			layer = append(layer, x)
		}
	}
	d.buffer = append(d.buffer, layer)
	if len(d.buffer) >= d.Window {
		d.decodeWindow(false)
	}
}

// Flush decodes any remaining buffered layers as a closed window (the final
// round of the stream is assumed measured perfectly) and returns all
// committed corrections. The decoder is left ready for a new stream.
func (d *Decoder) Flush() []Correction {
	for len(d.buffer) > 0 {
		d.decodeWindow(true)
	}
	out := d.committed
	d.committed = nil
	d.base = 0
	d.carry = nil
	return out
}

// Committed returns the corrections finalized so far (without flushing).
func (d *Decoder) Committed() []Correction { return d.committed }

// decodeWindow decodes the current buffer prefix. In sliding mode the
// prefix is exactly Window layers on the boundary window graph and only
// the commit region is finalized; in final mode the whole buffer is
// decoded on a closed graph and fully committed.
func (d *Decoder) decodeWindow(final bool) {
	var g *lattice.Graph
	var dec *core.Decoder
	var layers, commit int
	if final {
		layers = len(d.buffer)
		commit = layers
		// A single remaining layer has no temporal structure and is decoded
		// as a 2-D problem; finalDecoder handles both cases.
		g, dec = d.finalDecoder(layers)
	} else {
		layers = d.Window
		commit = d.Commit
		g, dec = d.g, d.dec
	}

	// Build the defect list in window-local vertex ids, applying carried
	// seam toggles to layer 0.
	per := d.Distance * (d.Distance - 1)
	d.defects = d.defects[:0]
	for _, x := range d.carry {
		d.seam[x] = !d.seam[x]
	}
	for t := 0; t < layers; t++ {
		for _, x := range d.buffer[t] {
			if t == 0 && d.seam[x] {
				d.seam[x] = false
				continue // carried toggle cancels the event
			}
			d.defects = append(d.defects, int32(t*per)+x)
		}
		if t == 0 {
			// Remaining seam toggles are new events created by the carry.
			for x, on := range d.seam {
				if on {
					d.defects = append(d.defects, x)
					d.seam[x] = false
				}
			}
		}
	}
	d.carry = d.carry[:0]
	sortInt32(d.defects)

	corr := dec.Decode(d.defects)

	// Commit region: record final corrections; temporal edges crossing the
	// seam toggle the first tentative layer for the next window.
	for _, ei := range corr {
		e := &g.Edges[ei]
		round := int(e.Round)
		if round >= commit {
			continue
		}
		switch e.Kind {
		case lattice.Spatial:
			d.committed = append(d.committed, Correction{
				Kind: lattice.Spatial, Qubit: e.Qubit, Ancilla: -1,
				Round: d.base + round,
			})
		case lattice.Temporal:
			r, c, _ := g.VertexCoords(e.U)
			x := int32(r*d.Distance + c)
			d.committed = append(d.committed, Correction{
				Kind: lattice.Temporal, Qubit: -1, Ancilla: x,
				Round: d.base + round,
			})
			if round == commit-1 && !g.IsBoundary(e.V) {
				// The edge's far end lies in the tentative region: the
				// committed measurement-error decision explains the event
				// at layer `commit`, so cancel it there.
				d.carry = append(d.carry, x)
			}
		}
	}

	// Slide the buffer.
	d.buffer = d.buffer[commit:]
	d.base += commit
}

// finalDecoder returns (building lazily) a closed-graph decoder for the
// given layer count.
func (d *Decoder) finalDecoder(layers int) (*lattice.Graph, *core.Decoder) {
	if dec, ok := d.finals[layers]; ok {
		return d.closed[layers], dec
	}
	var g *lattice.Graph
	if layers == 1 {
		g = lattice.New2D(d.Distance)
	} else {
		g = lattice.New3D(d.Distance, layers)
	}
	dec := core.NewDecoder(g, core.Options{})
	d.finals[layers] = dec
	d.closed[layers] = g
	return g, dec
}

func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
