// Package stream implements continuous sliding-window decoding, the mode a
// deployed AFS decoder actually runs in: syndrome rounds arrive forever,
// and the decoder repeatedly decodes a W-round window, commits the
// corrections in the window's older half, and slides forward.
//
// The paper evaluates isolated logical cycles (d rounds at a time) but
// provisions the hardware for continuous operation — the Spanning Tree
// Memory's edge budget includes one temporal link per vertex, i.e. a
// temporal boundary at the top of every decoding window (see
// internal/storage and lattice.New3DWindow). This package supplies the
// control loop around that window graph:
//
//   - detector layers are ingested into a fixed ring of per-round bitsets
//     (PushLayer); setting a bit is the deduplication;
//   - when W layers are buffered, the window graph is decoded; clusters
//     may match forward into the temporal boundary, deferring ambiguous
//     decisions to the future;
//   - corrections in the first C layers (the commit region) are final;
//     a committed temporal edge crossing the commit seam explains half of
//     a defect pair, so the far detection event is toggled before the next
//     window sees it (one XOR into the ring slot that becomes the next
//     window's first layer);
//   - corrections in the tentative region are discarded and re-derived by
//     the next window with more context;
//   - Flush decodes whatever remains as a closed window (the stream's
//     final round is measured perfectly, as in the accuracy simulations).
//
// The steady-state path allocates nothing: the ring is sized once at W
// layers, the defect scratch and the core decoder's working set reach fixed
// capacities, and committed corrections can be delivered through a sink
// (SetSink) instead of an ever-growing slice. Engine runs many Decoders —
// one per logical qubit — over a shared worker pool.
package stream

import (
	"fmt"
	"math/bits"

	"afs/internal/backlog"
	"afs/internal/core"
	"afs/internal/faults"
	"afs/internal/lattice"
	"afs/internal/microarch"
	"afs/internal/obs"
)

// Correction is one committed decoding decision in global stream
// coordinates.
type Correction struct {
	// Kind distinguishes data-qubit fixes from measurement-error flags.
	Kind lattice.EdgeKind
	// Qubit is the data qubit for spatial corrections, -1 otherwise.
	Qubit int32
	// Ancilla is the per-layer ancilla index for temporal corrections, -1
	// otherwise.
	Ancilla int32
	// Round is the global detector layer of the correction (for temporal
	// corrections, the earlier of the two layers).
	Round int
}

// Decoder is a sliding-window streaming decoder for one logical qubit and
// one error type. Not safe for concurrent use.
type Decoder struct {
	Distance int
	// Window is W, the layers decoded together (the paper's logical cycle,
	// d, by default). Commit is C, the layers finalized per slide (W/2 by
	// default; 1 <= C < W).
	Window, Commit int

	// In sliding mode commit < window always holds, so the window's
	// temporal boundary edges — deferred decisions — are never committed.
	g   *lattice.Graph // shared window graph with temporal boundary
	dec *core.Decoder

	finals map[int]*core.Decoder // closed-graph decoders for Flush, by layer count
	closed map[int]*lattice.Graph

	// The layer ring: Window slots of perWords words each, slot
	// (ringStart+t) % Window holding buffered layer t's detection events as
	// a bitset over ancilla indices. Bit-set ingestion dedupes for free, and
	// scanning slots in layer order yields the defect list already sorted.
	per       int
	perWords  int
	ring      []uint64
	ringStart int
	ringLen   int

	// occ[s] is the number of set bits in ring slot s, maintained at ingest
	// (bits are membership-checked before setting, so duplicate indices
	// within a round cannot double-count) and by the commit seam's carry
	// toggle, zeroed on shed and slide. It lets decodeWindow skip empty
	// slots without scanning their words — at deployed error rates most
	// rounds of a quiet logical qubit are empty, so the per-slide defect
	// scan drops from O(W·perWords) to O(W + faults) — and lets the
	// slide/shed word-zeroing loops skip already-zero slots. Invariant
	// (test-enforced): occ[s] == popcount(slot s's words) at all times.
	occ []int32

	// erased flags the ring slots whose rounds were lost (link erasure or
	// backpressure shedding): the layer is synthesized empty and the next
	// window re-derives context instead of the stream stalling.
	erased []bool

	base      int // global index of buffered layer 0
	committed []Correction
	sink      func(Correction)
	defects   []int32 // scratch, in window-local vertex ids

	// Deadline-aware degradation (SetRobust). All accounting runs in model
	// nanoseconds — never wall clock — so fixed-seed runs stay bit-identical
	// across worker counts.
	robust       Robust
	robustOn     bool
	queue        backlog.BoundedQueue
	penaltyNS    float64 // injected service time charged to the next window
	invArrivalNS float64 // 1/arrival period — queue-lag metric without a division
	w0CostNS     float64 // Model.WindowCost of an empty decode, precomputed by SetRobust
	rep          faults.Report

	// Tile punt (EnableTilePunt): sliding windows whose defect count
	// reaches tileMin are decoded by the tile-parallel Union-Find engine
	// instead of the sequential horizon decode — the heavy-tail windows
	// that drive worst-case decode latency. tdec is rebuilt alongside dec
	// when SetRobust toggles the profile options.
	tdec    *core.TileDecoder
	tileCfg core.TileConfig
	tileMin int

	// disableW0Skip forces weight-0 windows down the full DecodeHorizon
	// path; it exists only so tests can prove the skip is bit-identical.
	disableW0Skip bool

	// Deferred decoding (SetDeferDecode): when on, a window that fills on
	// ingest is not decoded immediately — the decoder marks itself pending
	// and waits for a LaneBatcher (or any state-reading entry point:
	// Flush, Snapshot, the next ingest) to resolve it. This is what lets
	// the cross-stream lane scheduler see many ready windows at once
	// instead of each decoder consuming its own the moment it fills.
	// Mutually exclusive with robust mode, whose deadline clocks assume
	// decode-at-fill.
	deferDecode bool
	pending     bool

	// Observability (internal/obs). om is the fleet-wide metrics sink
	// captured at construction (nil when disabled), omShard the padded-slot
	// hint. The steady-state signals — rounds, windows, corrections,
	// horizon skips, and the three histograms — accumulate in plain local
	// tallies (omRounds..lhLag) and publish into the shared sink every
	// obsFlushWindows window decodes (flushObs), so the per-round and
	// per-window paths carry a couple of plain adds instead of atomics;
	// rare events (timeouts, sheds, erasures) publish immediately. trace,
	// when installed, receives model-time events labeled tid. All of it is
	// write-only from the decode path: results are bit-identical with
	// observability on or off.
	om             *streamObs
	omShard        int
	omRounds       uint64
	omWindows      uint64
	omCorrections  uint64
	omHorizonSkips uint64
	omW0Windows    uint64
	omPending      int
	lhDefects      *obs.LocalHist
	lhCost         *obs.LocalHist
	lhLag          *obs.LocalHist
	trace          *obs.Trace
	tid            int32
}

// obsFlushWindows is how many window decodes the steady-state metric
// tallies may buffer before flushObs publishes them — a freshness bound of
// ~128 windows per stream on scraped totals (well under a millisecond of
// model time), in exchange for keeping atomics off the per-window path
// and amortizing the flush's bin scan to fractions of a nanosecond per
// round.
const obsFlushWindows = 128

// flushObs publishes the locally batched steady-state tallies into the
// shared metrics sink. Called every obsFlushWindows window decodes, on
// final windows, and by Report so ledger/counter cross-checks see
// everything the decoder has done.
func (d *Decoder) flushObs() {
	o := d.om
	if o == nil {
		return
	}
	if d.omRounds != 0 {
		o.rounds.Add(d.omShard, d.omRounds)
		d.omRounds = 0
	}
	if d.omWindows != 0 {
		o.windows.Add(d.omShard, d.omWindows)
		d.omWindows = 0
	}
	if d.omCorrections != 0 {
		o.corrections.Add(d.omShard, d.omCorrections)
		d.omCorrections = 0
	}
	if d.omHorizonSkips != 0 {
		o.horizonSkips.Add(d.omShard, d.omHorizonSkips)
		d.omHorizonSkips = 0
	}
	if d.omW0Windows != 0 {
		o.w0Windows.Add(d.omShard, d.omW0Windows)
		d.omW0Windows = 0
	}
	d.lhDefects.Flush(d.omShard)
	d.lhCost.Flush(d.omShard)
	d.lhLag.Flush(d.omShard)
	d.omPending = 0
}

// Robust configures deadline enforcement and bounded-queue backpressure for
// a streaming decoder. The zero value disables both.
type Robust struct {
	// DeadlineNS is the per-window decode deadline in model nanoseconds
	// (the paper's CDA timeout is 350 ns inside the 400 ns round): a window
	// whose model response time — queueing behind earlier windows plus its
	// own decode cost from Model — exceeds it is recorded as a timeout
	// failure (Eq. 4's p_tof). A window whose own decode cost exceeds it is
	// additionally committed degraded (one layer instead of Window/2);
	// overruns inherited purely from backlog are left to the queue's
	// shedding, since shrinking the commit would only raise the window
	// arrival rate. 0 disables deadline enforcement.
	DeadlineNS float64
	// Model is the memory-access latency model charged per window decode;
	// the zero value is the paper's pipelined design point.
	Model microarch.Model
	// ArrivalNS is the syndrome-round period; 0 selects
	// microarch.SyndromeRoundNS (400 ns).
	ArrivalNS float64
	// QueueCap bounds the decode backlog in rounds: past it, the oldest
	// undecoded round is shed (erased) rather than letting the backlog —
	// and with it every subsequent decode's response time — diverge. 0
	// disables backpressure.
	QueueCap int
}

func (r Robust) enabled() bool { return r.DeadlineNS > 0 || r.QueueCap > 0 }

func (r Robust) arrivalNS() float64 {
	if r.ArrivalNS <= 0 {
		return microarch.SyndromeRoundNS
	}
	return r.ArrivalNS
}

// New creates a streaming decoder. window == 0 selects d; commit == 0
// selects window/2 (minimum 1). commit must stay below window so that a
// window's temporal-boundary matches remain revisable; a window larger
// than the whole stream yields monolithic decoding at Flush.
func New(distance, window, commit int) (*Decoder, error) {
	if distance < 2 {
		return nil, fmt.Errorf("stream: distance %d < 2", distance)
	}
	if window == 0 {
		window = distance
	}
	if window < 2 {
		return nil, fmt.Errorf("stream: window %d < 2", window)
	}
	if commit == 0 {
		commit = window / 2
		if commit < 1 {
			commit = 1
		}
	}
	if commit < 1 || commit >= window {
		return nil, fmt.Errorf("stream: commit %d outside [1, %d); committing a full window would finalize its deferred boundary matches", commit, window)
	}
	g := lattice.Cached3DWindow(distance, window)
	per := distance * (distance - 1)
	perWords := (per + 63) / 64
	d := &Decoder{
		Distance: distance,
		Window:   window,
		Commit:   commit,
		g:        g,
		dec:      core.NewDecoder(g, core.Options{LeanStats: true, SparseShortcut: true}),
		finals:   map[int]*core.Decoder{},
		closed:   map[int]*lattice.Graph{},
		per:      per,
		perWords: perWords,
		ring:     make([]uint64, window*perWords),
		erased:   make([]bool, window),
		occ:      make([]int32, window),
		om:       obsSink.Load(),
		omShard:  nextObsShard(),
	}
	if d.om != nil {
		d.lhDefects = d.om.windowDefects.NewLocal()
		d.lhCost = d.om.windowCostNS.NewLocal()
		d.lhLag = d.om.queueLag.NewLocal()
	}
	return d, nil
}

// SetTrace installs (or, with nil, removes) a model-time event trace for
// this decoder; tid labels its events (a stream or trial id). Tracing
// never perturbs decode results — events are derived from state the
// decoder computes anyway — and emitting into the preallocated trace
// buffer does not allocate.
func (d *Decoder) SetTrace(t *obs.Trace, tid int32) {
	d.trace = t
	d.tid = tid
}

// SetRobust enables (or, with a zero config, disables) deadline enforcement
// and backpressure. It must be called on an empty decoder — at creation or
// after Flush — because it swaps the core decoder for one that records the
// per-cluster execution profile the latency model charges
// (Options.ClusterStats; one append per full-pipeline cluster, so the
// hardened fast path stays within a few percent of the lean one).
func (d *Decoder) SetRobust(cfg Robust) error {
	if d.ringLen != 0 {
		return fmt.Errorf("stream: SetRobust on a decoder with %d buffered layers", d.ringLen)
	}
	if cfg.DeadlineNS < 0 || cfg.QueueCap < 0 {
		return fmt.Errorf("stream: negative deadline or queue cap")
	}
	if d.deferDecode && cfg.enabled() {
		return fmt.Errorf("stream: robust mode and deferred decoding are mutually exclusive")
	}
	wasOn := d.robustOn
	d.robust = cfg
	d.robustOn = cfg.enabled()
	d.queue = backlog.BoundedQueue{ArrivalNS: cfg.arrivalNS(), Cap: cfg.QueueCap}
	d.invArrivalNS = 1 / cfg.arrivalNS()
	d.penaltyNS = 0
	// A weight-0 window skips DecodeHorizon entirely, so its deadline
	// charge is precomputed here: an empty decode leaves DecodeStats at
	// the zero value (no clusters, no defects, counters reset), and
	// WindowCost is a pure function of that value.
	var empty core.DecodeStats
	d.w0CostNS = cfg.Model.WindowCost(&empty)
	if d.robustOn != wasOn {
		// The deadline model needs per-cluster profiles but none of the
		// per-access counters, so the robust decoder stays lean and adds
		// only ClusterStats — the full profile would sit on the growth hot
		// path and cost ~25% throughput.
		opts := core.Options{LeanStats: true, ClusterStats: d.robustOn, SparseShortcut: true}
		d.dec = core.NewDecoder(d.g, opts)
		if d.tdec != nil {
			// Keep the punt engine's profile options in lockstep so the
			// deadline model sees per-cluster stats from either path.
			d.tdec = core.NewTileDecoder(d.g, opts, d.tileCfg)
		}
	}
	return nil
}

// EnableTilePunt routes sliding windows with at least minDefects detection
// events — the heavy near-threshold windows that drive worst-case decode
// latency — through the tile-parallel Union-Find engine (core.TileDecoder)
// instead of the sequential horizon decode; minDefects <= 0 selects
// core.DefaultTileMinDefects, and cfg's zero values select the engine
// defaults. The punt decision is a pure function of the window's defect
// count and the tile decode is bit-identical across worker counts, so
// fixed-seed streams remain exactly reproducible. Committed corrections
// are decision-identical to the unpunted decoder's (the horizon-filtered
// correction agrees with a full decode below the horizon). Like SetRobust
// it must be called on an empty decoder; a zero-Workers config uses
// GOMAXPROCS. Passing minDefects < 0 with an all-zero cfg keeps the
// defaults too; disable by never calling it (the punt has no off switch —
// construct a fresh Decoder instead).
func (d *Decoder) EnableTilePunt(cfg core.TileConfig, minDefects int) error {
	if d.ringLen != 0 {
		return fmt.Errorf("stream: EnableTilePunt on a decoder with %d buffered layers", d.ringLen)
	}
	if minDefects <= 0 {
		minDefects = core.DefaultTileMinDefects
	}
	d.tileCfg = cfg
	d.tileMin = minDefects
	opts := core.Options{LeanStats: true, ClusterStats: d.robustOn}
	d.tdec = core.NewTileDecoder(d.g, opts, cfg)
	return nil
}

// AddPenaltyNS charges injected service time (link retries, stalls,
// reorder buffering — the chaos layer's penalties) to the next window
// decode's deadline budget.
func (d *Decoder) AddPenaltyNS(ns float64) {
	if ns <= 0 {
		return
	}
	d.penaltyNS += ns
	d.rep.PenaltyNS += ns
}

// Report returns the decoder's runtime fault ledger: windows decoded,
// timeout failures, degraded commits, backpressure shedding. Link-side
// counters live in the faults.Channel that feeds the decoder; merge the two
// for the full picture.
func (d *Decoder) Report() faults.Report {
	// Publish any batched tallies first, so a metrics snapshot taken next
	// to the returned ledger covers the same events.
	d.flushObs()
	rep := d.rep
	rep.BacklogSheds = d.queue.Sheds
	rep.BacklogRecovers = d.queue.Recoveries
	return rep
}

// SetSink routes every committed correction to fn the moment it is
// finalized, instead of retaining it for Committed/Flush. With a sink
// installed the decoder holds no per-correction state, so an unbounded
// stream runs in O(Window) memory and the steady-state push path performs
// no allocation. Passing nil restores the retaining behavior.
func (d *Decoder) SetSink(fn func(Correction)) { d.sink = fn }

// Buffered returns the number of layers currently buffered (always below
// Window between calls, since a full window is decoded immediately).
func (d *Decoder) Buffered() int { return d.ringLen }

// PushLayer feeds one round's detection events (per-layer ancilla indices,
// 0 <= index < d(d-1)). The slice is not retained; duplicate indices within
// a round are ignored (a detection event either happened or it did not).
// An index outside the ancilla range returns an error before any state
// changes — malformed input degrades instead of crashing the fleet.
// Whenever a full window is buffered, it is decoded and its commit region
// finalized.
func (d *Decoder) PushLayer(events []int32) error {
	per := int32(d.per)
	for _, x := range events {
		if x < 0 || x >= per {
			return fmt.Errorf("stream: ancilla index %d outside [0,%d)", x, per)
		}
	}
	d.ingest(events, false)
	return nil
}

// PushLayers feeds a batch of rounds in one call: rounds[r] holds the
// r-th round's detection events, exactly as PushLayer takes them. The
// whole batch is validated before any state changes — a malformed round
// anywhere rejects the batch with no layers ingested, so a caller can
// retry or drop it atomically. Window decodes fire at the same fill
// levels as under round-by-round ingestion; results are bit-identical to
// the equivalent PushLayer sequence.
func (d *Decoder) PushLayers(rounds [][]int32) error {
	per := int32(d.per)
	for r, events := range rounds {
		for _, x := range events {
			if x < 0 || x >= per {
				return fmt.Errorf("stream: round %d of batch: ancilla index %d outside [0,%d)", r, x, per)
			}
		}
	}
	for _, events := range rounds {
		d.ingest(events, false)
	}
	return nil
}

// PushErased feeds one *erased* round: a round lost on the link (past the
// retry budget) or shed by backpressure. The layer is synthesized empty and
// flagged; the window decodes around the gap and the next window re-derives
// context, so the stream keeps flowing.
func (d *Decoder) PushErased() {
	d.ingest(nil, true)
}

// SetDeferDecode enables (or disables) deferred window decoding: a window
// that fills on ingest is left buffered and marked pending instead of
// decoding immediately, so a LaneBatcher can resolve many streams' windows
// as one lane group. Pending windows resolve transparently — through the
// scalar path, bit-identically — whenever the decoder's state is needed
// before a batcher gets to it (the next ingest, Flush, Snapshot).
// Incompatible with robust mode: the deadline model's queue clocks assume
// a window is served the round it completes.
func (d *Decoder) SetDeferDecode(on bool) error {
	if on && d.robustOn {
		return fmt.Errorf("stream: robust mode and deferred decoding are mutually exclusive")
	}
	if !on {
		d.resolvePending()
	}
	d.deferDecode = on
	return nil
}

// Pending reports whether a filled window is buffered awaiting a deferred
// decode (always false without SetDeferDecode).
func (d *Decoder) Pending() bool { return d.pending }

// resolvePending decodes a deferred window through the ordinary scalar
// path. Safe to call any time; a no-op unless a window is pending.
func (d *Decoder) resolvePending() {
	if d.pending {
		d.pending = false
		d.decodeWindow(false)
	}
}

// ingest buffers one layer (validated events, or an erased blank) and
// decodes when the window fills.
func (d *Decoder) ingest(events []int32, erased bool) {
	// A deferred window must resolve before the next layer lands — the ring
	// holds exactly Window slots, all of them occupied while pending.
	if d.pending {
		d.resolvePending()
	}
	if d.robustOn {
		sheds, recovers := d.queue.Sheds, d.queue.Recoveries
		if d.queue.Arrive() {
			d.shedOldest()
		}
		// Shedding-episode transitions happen only inside Arrive; publishing
		// them here keeps the live ledger exact without backlog depending on
		// the metrics layer.
		if d.queue.Sheds != sheds {
			if d.om != nil {
				d.om.backlogSheds.Inc(d.omShard)
			}
			if d.trace != nil {
				d.trace.Emit(obs.Event{TS: d.queue.Now(), Arg: d.queue.Lag(), TID: d.tid, Kind: obs.EvShedStart})
			}
		}
		if d.queue.Recoveries != recovers {
			if d.om != nil {
				d.om.backlogRecovers.Inc(d.omShard)
			}
			if d.trace != nil {
				d.trace.Emit(obs.Event{TS: d.queue.Now(), Arg: d.queue.Lag(), TID: d.tid, Kind: obs.EvShedEnd})
			}
		}
	}
	d.omRounds++
	if erased {
		if d.om != nil {
			d.om.erasedRounds.Inc(d.omShard)
		}
		if d.trace != nil {
			ts := float64(d.base+d.ringLen) * d.robust.arrivalNS()
			d.trace.Emit(obs.Event{TS: ts, TID: d.tid, Kind: obs.EvErasedRound})
		}
	}
	si := d.ringStart + d.ringLen
	if si >= d.Window {
		si -= d.Window
	}
	w := d.ring[si*d.perWords : (si+1)*d.perWords]
	for _, x := range events {
		if bit := uint64(1) << (uint(x) & 63); w[x>>6]&bit == 0 {
			w[x>>6] |= bit
			d.occ[si]++
		}
	}
	d.erased[si] = erased
	d.ringLen++
	if d.ringLen >= d.Window {
		if d.deferDecode {
			d.pending = true
		} else {
			d.decodeWindow(false)
		}
	}
}

// shedOldest implements the bounded queue's shed-oldest policy: the oldest
// buffered round that still carries data is erased in place, so the decode
// backlog drains by making future windows cheaper instead of diverging
// (paper §II-C — an unbounded backlog stalls the machine).
func (d *Decoder) shedOldest() {
	for t := 0; t < d.ringLen; t++ {
		si := d.ringStart + t
		if si >= d.Window {
			si -= d.Window
		}
		if d.erased[si] {
			continue
		}
		if d.occ[si] != 0 {
			wi := si * d.perWords
			for k := 0; k < d.perWords; k++ {
				d.ring[wi+k] = 0
			}
			d.occ[si] = 0
		}
		d.erased[si] = true
		d.rep.ShedRounds++
		if d.om != nil {
			d.om.shedRounds.Inc(d.omShard)
		}
		if d.trace != nil {
			d.trace.Emit(obs.Event{TS: d.queue.Now(), Arg: float64(d.base + t), TID: d.tid, Kind: obs.EvShedRound})
		}
		return
	}
}

// Flush decodes any remaining buffered layers as a closed window (the final
// round of the stream is assumed measured perfectly) and returns the
// retained committed corrections (nil when a sink is installed — the sink
// already received them). The decoder is left ready for a new stream.
func (d *Decoder) Flush() []Correction {
	// A pending window is a *sliding* decode the stream still owes; resolve
	// it before the final closed-window loop, which would otherwise decode
	// it with final semantics.
	d.resolvePending()
	for d.ringLen > 0 {
		d.decodeWindow(true)
	}
	out := d.committed
	d.committed = nil
	d.base = 0
	d.ringStart = 0
	// A new stream starts with fresh clocks; the fault ledger is cumulative.
	// Reset closes a still-open shedding episode (counting the recovery), so
	// mirror that close into the live metrics and the trace.
	endTS := d.queue.Now()
	recovers := d.queue.Recoveries
	d.queue.Reset()
	if d.queue.Recoveries != recovers {
		if d.om != nil {
			d.om.backlogRecovers.Inc(d.omShard)
		}
		if d.trace != nil {
			d.trace.Emit(obs.Event{TS: endTS, TID: d.tid, Kind: obs.EvShedEnd})
		}
	}
	d.penaltyNS = 0
	return out
}

// Committed returns the corrections finalized and retained so far (without
// flushing). With a sink installed it is always empty.
func (d *Decoder) Committed() []Correction { return d.committed }

// emit delivers one finalized correction.
func (d *Decoder) emit(c Correction) {
	if d.sink != nil {
		d.sink(c)
		return
	}
	d.committed = append(d.committed, c)
}

// decodeWindow decodes the current buffer prefix. In sliding mode the
// prefix is exactly Window layers on the boundary window graph and only
// the commit region is finalized; in final mode the whole buffer is
// decoded on a closed graph and fully committed.
func (d *Decoder) decodeWindow(final bool) {
	var layers, commit int
	if final {
		layers = d.ringLen
		commit = layers
	} else {
		layers = d.Window
		commit = d.Commit
	}
	d.collectDefects(layers)
	d.decodeCollected(final, layers, commit)
}

// collectDefects rebuilds d.defects from the first `layers` buffered
// layers, in window-local vertex ids.
func (d *Decoder) collectDefects(layers int) {
	// Build the defect list in window-local vertex ids. Scanning layers in
	// order and words in order yields it sorted with no extra pass; the
	// per-layer vertex offset is the only translation needed. Ring slots are
	// indexed directly — this loop runs every slide and slice headers per
	// layer are measurable. Slots with zero occupancy contribute nothing
	// and are skipped without touching their words, so a quiet stream's
	// per-slide scan is O(W) counter loads; the weight-0 window skip below
	// then fires off an empty defect list exactly as before.
	d.defects = d.defects[:0]
	for t := 0; t < layers; t++ {
		si := d.ringStart + t
		if si >= d.Window {
			si -= d.Window
		}
		if d.occ[si] == 0 {
			continue
		}
		wi := si * d.perWords
		off := int32(t * d.per)
		for k := 0; k < d.perWords; k++ {
			w := d.ring[wi+k]
			base := off + int32(k<<6)
			for w != 0 {
				bit := bits.TrailingZeros64(w)
				d.defects = append(d.defects, base+int32(bit))
				w &^= 1 << uint(bit)
			}
		}
	}
}

// decodeCollected decodes d.defects (already collected) and finishes the
// window: the decode dispatch and the robust deadline accounting live
// here; commit/slide/observability live in finishWindow.
func (d *Decoder) decodeCollected(final bool, layers, commit int) {
	// Weight-0 fast path: a window with no detection events has the empty
	// correction, and skipping DecodeHorizon outright is safe because the
	// decoder's reset is deferred, not lost — an empty decode would only
	// restore the previous window's touched state and zero DecodeStats,
	// and the next non-empty decode's reset restores exactly the same
	// state from the same undo logs. The deadline charge uses the
	// precomputed cost of that empty decode (w0CostNS), so robust-mode
	// accounting stays bit-identical too. At deployed error rates most
	// windows of a quiet logical qubit take this path.
	w0 := len(d.defects) == 0 && !d.disableW0Skip
	var g *lattice.Graph
	var dec *core.Decoder
	var corr []int32
	var stats *core.DecodeStats
	if !w0 {
		switch {
		case final:
			// A single remaining layer has no temporal structure and is
			// decoded as a 2-D problem; finalDecoder handles both cases.
			g, dec = d.finalDecoder(layers)
			corr = dec.DecodeHorizon(d.defects, int32(commit))
			stats = &dec.Stats
		case d.tdec != nil && len(d.defects) >= d.tileMin:
			// Heavy-window punt: grow the window's clusters tile-parallel.
			// The full correction is a valid DecodeHorizon result for any
			// horizon (the commit loop below keeps only rounds < commit),
			// and the punt predicate is a pure function of the defect
			// count, so the stream stays bit-identical across worker
			// counts.
			g = d.g
			corr = d.tdec.Decode(d.defects)
			stats = d.tdec.Stats()
		default:
			g, dec = d.g, d.dec
			// Only edges with Round < commit are kept, so the decoder may
			// skip defect groups that provably cannot reach the commit
			// region — the horizon is where a sliding window saves most of
			// its decode work.
			corr = dec.DecodeHorizon(d.defects, int32(commit))
			stats = &dec.Stats
		}
	}

	// winTS is the window's model-time anchor (its first buffered layer's
	// arrival slot) for the trace; cost stays 0 outside deadline mode.
	winTS := float64(d.base) * d.robust.arrivalNS()
	var cost float64
	if !final && d.robustOn {
		// Charge the window against the deadline budget in model time: its
		// decode cost under the memory-access model, plus any injected link
		// penalties (retries, stalls), plus queueing behind earlier windows.
		if w0 {
			cost = d.w0CostNS + d.penaltyNS
		} else {
			cost = d.robust.Model.WindowCost(stats) + d.penaltyNS
		}
		d.penaltyNS = 0
		d.rep.Windows++
		if d.om != nil {
			d.lhCost.Observe(cost)
		}
		response := d.queue.Serve(cost)
		if d.om != nil {
			// response is exactly the post-serve backlog in ns (queueing
			// plus own service), so the lag in arrival periods is one
			// multiply — no second queue call, no division.
			d.lhLag.Observe(response * d.invArrivalNS)
		}
		if d.robust.DeadlineNS > 0 && response > d.robust.DeadlineNS {
			// Deadline overrun: a timeout failure under Eq. 4 (p_tof).
			d.rep.Timeouts++
			if d.om != nil {
				d.om.timeouts.Inc(d.omShard)
			}
			if d.trace != nil {
				d.trace.Emit(obs.Event{TS: winTS, Arg: response, TID: d.tid, Kind: obs.EvTimeout})
			}
			if cost > d.robust.DeadlineNS {
				// Degrade only when this window's own decode is over budget:
				// finalize the oldest layer and defer the rest to the next
				// window, which re-decodes them with more context. The
				// horizon-filtered correction is decision-identical to a
				// full decode's edges below the horizon, so its Round < 1
				// subset IS the one-layer commit — the commit loop's round
				// filter extracts it with no second decode. When only
				// inherited backlog pushed the response over, shrinking the
				// commit would raise the window arrival rate and deepen the
				// very backlog it inherited (a metastable cascade); the
				// bounded queue's shedding is the pressure valve there.
				d.rep.DegradedCommits++
				commit = 1
				if d.om != nil {
					d.om.degraded.Inc(d.omShard)
				}
				if d.trace != nil {
					d.trace.Emit(obs.Event{TS: winTS, Arg: cost, TID: d.tid, Kind: obs.EvDegraded})
				}
			}
		}
	}
	d.finishWindow(g, corr, commit, final, w0, len(d.defects), cost)
}

// commitFast finishes a deferred sliding window whose correction was
// computed by the lane batcher's closed-form fast path: corr holds the
// fast groups' emit edges (window-graph edge ids) and ndefects the
// window's defect count. Only valid on a non-robust decoder — exactly what
// SetDeferDecode guarantees — so the deadline block decodeCollected would
// run is vacuous and the window finishes with zero model cost, identical
// to the scalar path's non-robust decode.
func (d *Decoder) commitFast(corr []int32, ndefects int) {
	w0 := ndefects == 0 && !d.disableW0Skip
	d.finishWindow(d.g, corr, d.Commit, false, w0, ndefects, 0)
}

// decodeGathered finishes a deferred sliding window through the ordinary
// scalar decode, taking the defect list from the lane batcher's gather
// (ascending vertex order — the same list collectDefects would build).
func (d *Decoder) decodeGathered(defects []int32) {
	d.defects = append(d.defects[:0], defects...)
	d.decodeCollected(false, d.Window, d.Commit)
}

// finishWindow commits a decoded window and slides the ring: the commit
// loop with its seam carry, the steady-state observability tallies, and
// the slot recycling. g/corr are the decode's graph and correction (g may
// be nil when corr is empty), ndefects the window's defect count (passed
// explicitly — the lane fast path never materializes d.defects), cost the
// robust model charge (0 otherwise).
func (d *Decoder) finishWindow(g *lattice.Graph, corr []int32, commit int, final, w0 bool, ndefects int, cost float64) {
	// winTS is the window's model-time anchor (its first buffered layer's
	// arrival slot) for the trace; cost stays 0 outside deadline mode.
	winTS := float64(d.base) * d.robust.arrivalNS()

	// Commit region: record final corrections; a temporal edge crossing the
	// seam toggles the layer that becomes the next window's first layer —
	// directly in its ring slot, which the slide below leaves in place.
	var carry []uint64
	carrySI := 0
	if !final {
		carrySI = d.ringStart + commit
		if carrySI >= d.Window {
			carrySI -= d.Window
		}
		carry = d.ring[carrySI*d.perWords : (carrySI+1)*d.perWords]
	}
	committed := 0
	for _, ei := range corr {
		e := &g.Edges[ei]
		round := int(e.Round)
		if round >= commit {
			continue
		}
		committed++
		switch e.Kind {
		case lattice.Spatial:
			d.emit(Correction{
				Kind: lattice.Spatial, Qubit: e.Qubit, Ancilla: -1,
				Round: d.base + round,
			})
		case lattice.Temporal:
			x := g.AncillaIndex(e.U)
			d.emit(Correction{
				Kind: lattice.Temporal, Qubit: -1, Ancilla: x,
				Round: d.base + round,
			})
			if round == commit-1 && !g.IsBoundary(e.V) {
				// The edge's far end lies in the tentative region: the
				// committed measurement-error decision explains the event
				// at layer `commit`, so cancel it there. The toggle can set
				// or clear the bit, so the slot occupancy moves both ways.
				bit := uint64(1) << (uint(x) & 63)
				if carry[x>>6]&bit == 0 {
					d.occ[carrySI]++
				} else {
					d.occ[carrySI]--
				}
				carry[x>>6] ^= bit
			}
		}
	}

	// Tally the window locally: the decode itself and its commit outcome
	// (a window with defects but nothing committable below the horizon is
	// the horizon shortcut's win), publishing to the shared sink every
	// obsFlushWindows decodes and on final windows.
	if d.om != nil {
		d.omWindows++
		if w0 {
			d.omW0Windows++
		}
		d.lhDefects.Observe(float64(ndefects))
		d.omCorrections += uint64(committed)
		if committed == 0 && ndefects > 0 {
			d.omHorizonSkips++
		}
		d.omPending++
		if d.omPending >= obsFlushWindows || final {
			d.flushObs()
		}
	}
	if d.trace != nil {
		d.trace.Emit(obs.Event{TS: winTS, Dur: cost, Arg: float64(ndefects), TID: d.tid, Kind: obs.EvWindow})
	}

	// Slide: clear the consumed slots for reuse and advance the ring.
	// Empty slots (occ == 0) already hold all-zero words and only need
	// their erased flag cleared.
	for t := 0; t < commit; t++ {
		si := d.ringStart + t
		if si >= d.Window {
			si -= d.Window
		}
		if d.occ[si] != 0 {
			wi := si * d.perWords
			for k := 0; k < d.perWords; k++ {
				d.ring[wi+k] = 0
			}
			d.occ[si] = 0
		}
		d.erased[si] = false
	}
	d.ringStart = (d.ringStart + commit) % d.Window
	d.ringLen -= commit
	d.base += commit
}

// finalDecoder returns (building lazily) a closed-graph decoder for the
// given layer count. Graphs come from the process-wide lattice cache, so a
// thousand-stream fleet shares one copy per shape.
func (d *Decoder) finalDecoder(layers int) (*lattice.Graph, *core.Decoder) {
	if dec, ok := d.finals[layers]; ok {
		return d.closed[layers], dec
	}
	var g *lattice.Graph
	if layers == 1 {
		g = lattice.Cached2D(d.Distance)
	} else {
		g = lattice.Cached3D(d.Distance, layers)
	}
	dec := core.NewDecoder(g, core.Options{LeanStats: true, SparseShortcut: true})
	d.finals[layers] = dec
	d.closed[layers] = g
	return g, dec
}
