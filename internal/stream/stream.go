// Package stream implements continuous sliding-window decoding, the mode a
// deployed AFS decoder actually runs in: syndrome rounds arrive forever,
// and the decoder repeatedly decodes a W-round window, commits the
// corrections in the window's older half, and slides forward.
//
// The paper evaluates isolated logical cycles (d rounds at a time) but
// provisions the hardware for continuous operation — the Spanning Tree
// Memory's edge budget includes one temporal link per vertex, i.e. a
// temporal boundary at the top of every decoding window (see
// internal/storage and lattice.New3DWindow). This package supplies the
// control loop around that window graph:
//
//   - detector layers are ingested into a fixed ring of per-round bitsets
//     (PushLayer); setting a bit is the deduplication;
//   - when W layers are buffered, the window graph is decoded; clusters
//     may match forward into the temporal boundary, deferring ambiguous
//     decisions to the future;
//   - corrections in the first C layers (the commit region) are final;
//     a committed temporal edge crossing the commit seam explains half of
//     a defect pair, so the far detection event is toggled before the next
//     window sees it (one XOR into the ring slot that becomes the next
//     window's first layer);
//   - corrections in the tentative region are discarded and re-derived by
//     the next window with more context;
//   - Flush decodes whatever remains as a closed window (the stream's
//     final round is measured perfectly, as in the accuracy simulations).
//
// The steady-state path allocates nothing: the ring is sized once at W
// layers, the defect scratch and the core decoder's working set reach fixed
// capacities, and committed corrections can be delivered through a sink
// (SetSink) instead of an ever-growing slice. Engine runs many Decoders —
// one per logical qubit — over a shared worker pool.
package stream

import (
	"fmt"
	"math/bits"

	"afs/internal/core"
	"afs/internal/lattice"
)

// Correction is one committed decoding decision in global stream
// coordinates.
type Correction struct {
	// Kind distinguishes data-qubit fixes from measurement-error flags.
	Kind lattice.EdgeKind
	// Qubit is the data qubit for spatial corrections, -1 otherwise.
	Qubit int32
	// Ancilla is the per-layer ancilla index for temporal corrections, -1
	// otherwise.
	Ancilla int32
	// Round is the global detector layer of the correction (for temporal
	// corrections, the earlier of the two layers).
	Round int
}

// Decoder is a sliding-window streaming decoder for one logical qubit and
// one error type. Not safe for concurrent use.
type Decoder struct {
	Distance int
	// Window is W, the layers decoded together (the paper's logical cycle,
	// d, by default). Commit is C, the layers finalized per slide (W/2 by
	// default; 1 <= C < W).
	Window, Commit int

	// In sliding mode commit < window always holds, so the window's
	// temporal boundary edges — deferred decisions — are never committed.
	g   *lattice.Graph // shared window graph with temporal boundary
	dec *core.Decoder

	finals map[int]*core.Decoder // closed-graph decoders for Flush, by layer count
	closed map[int]*lattice.Graph

	// The layer ring: Window slots of perWords words each, slot
	// (ringStart+t) % Window holding buffered layer t's detection events as
	// a bitset over ancilla indices. Bit-set ingestion dedupes for free, and
	// scanning slots in layer order yields the defect list already sorted.
	per       int
	perWords  int
	ring      []uint64
	ringStart int
	ringLen   int

	base      int // global index of buffered layer 0
	committed []Correction
	sink      func(Correction)
	defects   []int32 // scratch, in window-local vertex ids
}

// New creates a streaming decoder. window == 0 selects d; commit == 0
// selects window/2 (minimum 1). commit must stay below window so that a
// window's temporal-boundary matches remain revisable; a window larger
// than the whole stream yields monolithic decoding at Flush.
func New(distance, window, commit int) (*Decoder, error) {
	if distance < 2 {
		return nil, fmt.Errorf("stream: distance %d < 2", distance)
	}
	if window == 0 {
		window = distance
	}
	if window < 2 {
		return nil, fmt.Errorf("stream: window %d < 2", window)
	}
	if commit == 0 {
		commit = window / 2
		if commit < 1 {
			commit = 1
		}
	}
	if commit < 1 || commit >= window {
		return nil, fmt.Errorf("stream: commit %d outside [1, %d); committing a full window would finalize its deferred boundary matches", commit, window)
	}
	g := lattice.Cached3DWindow(distance, window)
	per := distance * (distance - 1)
	perWords := (per + 63) / 64
	return &Decoder{
		Distance: distance,
		Window:   window,
		Commit:   commit,
		g:        g,
		dec:      core.NewDecoder(g, core.Options{LeanStats: true, SparseShortcut: true}),
		finals:   map[int]*core.Decoder{},
		closed:   map[int]*lattice.Graph{},
		per:      per,
		perWords: perWords,
		ring:     make([]uint64, window*perWords),
	}, nil
}

// SetSink routes every committed correction to fn the moment it is
// finalized, instead of retaining it for Committed/Flush. With a sink
// installed the decoder holds no per-correction state, so an unbounded
// stream runs in O(Window) memory and the steady-state push path performs
// no allocation. Passing nil restores the retaining behavior.
func (d *Decoder) SetSink(fn func(Correction)) { d.sink = fn }

// slotWords returns the ring words of buffered layer t.
func (d *Decoder) slotWords(t int) []uint64 {
	// ringStart and t are both below Window, so one conditional subtract
	// replaces an integer division on the hot path.
	s := d.ringStart + t
	if s >= d.Window {
		s -= d.Window
	}
	return d.ring[s*d.perWords : (s+1)*d.perWords]
}

// Buffered returns the number of layers currently buffered (always below
// Window between calls, since a full window is decoded immediately).
func (d *Decoder) Buffered() int { return d.ringLen }

// PushLayer feeds one round's detection events (per-layer ancilla indices,
// 0 <= index < d(d-1)). The slice is not retained; duplicate indices within
// a round are ignored (a detection event either happened or it did not).
// Indices outside the ancilla range panic — they indicate a framing bug in
// the caller, not a noisy channel. Whenever a full window is buffered, it
// is decoded and its commit region finalized.
func (d *Decoder) PushLayer(events []int32) {
	w := d.slotWords(d.ringLen)
	per := int32(d.per)
	for _, x := range events {
		if x < 0 || x >= per {
			panic(fmt.Sprintf("stream: ancilla index %d outside [0,%d)", x, per))
		}
		w[x>>6] |= 1 << (uint(x) & 63)
	}
	d.ringLen++
	if d.ringLen >= d.Window {
		d.decodeWindow(false)
	}
}

// Flush decodes any remaining buffered layers as a closed window (the final
// round of the stream is assumed measured perfectly) and returns the
// retained committed corrections (nil when a sink is installed — the sink
// already received them). The decoder is left ready for a new stream.
func (d *Decoder) Flush() []Correction {
	for d.ringLen > 0 {
		d.decodeWindow(true)
	}
	out := d.committed
	d.committed = nil
	d.base = 0
	d.ringStart = 0
	return out
}

// Committed returns the corrections finalized and retained so far (without
// flushing). With a sink installed it is always empty.
func (d *Decoder) Committed() []Correction { return d.committed }

// emit delivers one finalized correction.
func (d *Decoder) emit(c Correction) {
	if d.sink != nil {
		d.sink(c)
		return
	}
	d.committed = append(d.committed, c)
}

// decodeWindow decodes the current buffer prefix. In sliding mode the
// prefix is exactly Window layers on the boundary window graph and only
// the commit region is finalized; in final mode the whole buffer is
// decoded on a closed graph and fully committed.
func (d *Decoder) decodeWindow(final bool) {
	var g *lattice.Graph
	var dec *core.Decoder
	var layers, commit int
	if final {
		layers = d.ringLen
		commit = layers
		// A single remaining layer has no temporal structure and is decoded
		// as a 2-D problem; finalDecoder handles both cases.
		g, dec = d.finalDecoder(layers)
	} else {
		layers = d.Window
		commit = d.Commit
		g, dec = d.g, d.dec
	}

	// Build the defect list in window-local vertex ids. Scanning layers in
	// order and words in order yields it sorted with no extra pass; the
	// per-layer vertex offset is the only translation needed. Ring slots are
	// indexed directly — this loop runs every slide and slice headers per
	// layer are measurable.
	d.defects = d.defects[:0]
	for t := 0; t < layers; t++ {
		si := d.ringStart + t
		if si >= d.Window {
			si -= d.Window
		}
		wi := si * d.perWords
		off := int32(t * d.per)
		for k := 0; k < d.perWords; k++ {
			w := d.ring[wi+k]
			base := off + int32(k<<6)
			for w != 0 {
				bit := bits.TrailingZeros64(w)
				d.defects = append(d.defects, base+int32(bit))
				w &^= 1 << uint(bit)
			}
		}
	}

	// Only edges with Round < commit are kept, so the decoder may skip
	// defect groups that provably cannot reach the commit region — the
	// horizon is where a sliding window saves most of its decode work.
	corr := dec.DecodeHorizon(d.defects, int32(commit))

	// Commit region: record final corrections; a temporal edge crossing the
	// seam toggles the layer that becomes the next window's first layer —
	// directly in its ring slot, which the slide below leaves in place.
	var carry []uint64
	if !final {
		carry = d.slotWords(commit)
	}
	for _, ei := range corr {
		e := &g.Edges[ei]
		round := int(e.Round)
		if round >= commit {
			continue
		}
		switch e.Kind {
		case lattice.Spatial:
			d.emit(Correction{
				Kind: lattice.Spatial, Qubit: e.Qubit, Ancilla: -1,
				Round: d.base + round,
			})
		case lattice.Temporal:
			x := g.AncillaIndex(e.U)
			d.emit(Correction{
				Kind: lattice.Temporal, Qubit: -1, Ancilla: x,
				Round: d.base + round,
			})
			if round == commit-1 && !g.IsBoundary(e.V) {
				// The edge's far end lies in the tentative region: the
				// committed measurement-error decision explains the event
				// at layer `commit`, so cancel it there.
				carry[x>>6] ^= 1 << (uint(x) & 63)
			}
		}
	}

	// Slide: clear the consumed slots for reuse and advance the ring.
	for t := 0; t < commit; t++ {
		si := d.ringStart + t
		if si >= d.Window {
			si -= d.Window
		}
		wi := si * d.perWords
		for k := 0; k < d.perWords; k++ {
			d.ring[wi+k] = 0
		}
	}
	d.ringStart = (d.ringStart + commit) % d.Window
	d.ringLen -= commit
	d.base += commit
}

// finalDecoder returns (building lazily) a closed-graph decoder for the
// given layer count. Graphs come from the process-wide lattice cache, so a
// thousand-stream fleet shares one copy per shape.
func (d *Decoder) finalDecoder(layers int) (*lattice.Graph, *core.Decoder) {
	if dec, ok := d.finals[layers]; ok {
		return d.closed[layers], dec
	}
	var g *lattice.Graph
	if layers == 1 {
		g = lattice.Cached2D(d.Distance)
	} else {
		g = lattice.Cached3D(d.Distance, layers)
	}
	dec := core.NewDecoder(g, core.Options{LeanStats: true, SparseShortcut: true})
	d.finals[layers] = dec
	d.closed[layers] = g
	return g, dec
}
