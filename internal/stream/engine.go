package stream

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"afs/internal/faults"
	"afs/internal/obs"
)

// Engine drives L independent logical-qubit streams over a persistent
// worker pool — the workload shape of the paper's Conjoined Decoder
// Architecture, where one decoding subsystem serves many logical qubits
// continuously. Ingestion is round-batched: each batch feeds the same
// number of rounds to every stream, and workers claim whole streams off a
// shared counter (work stealing, as in the Monte-Carlo engine), so a
// stream whose window decodes slowly never stalls the others.
//
// Determinism: a stream's decoder, its fault channel, and its per-stream
// state advance only under the worker that claimed it for the batch, and
// committed corrections are collected per stream, so results are
// bit-identical for a fixed input regardless of the worker count.
//
// Engine methods must not be called concurrently with each other; the
// concurrency lives inside a batch.
type Engine struct {
	decs   []*Decoder
	chans  []*faults.Channel // per-stream chaos links, nil when cfg.Chaos == nil
	errs   []error           // per-stream sticky ingestion errors
	retain [][]Correction    // per stream, when cfg.Sink == nil
	totals []uint64          // per stream committed-correction counts

	robust  bool // any stream may desync its fill level (degraded commits)
	workers int
	jobs    []chan engineJob
	wg      sync.WaitGroup
	done    sync.WaitGroup
	next    atomic.Int64
	closed  bool

	// Lane batching (cfg.LaneBatch, non-robust engines only): workers claim
	// fixed chunks of up to 64 consecutive streams instead of single
	// streams, deliver each round chunk-wide, and resolve the deferred
	// windows through their per-worker LaneBatcher. Corrections stay
	// bit-identical to per-stream decoding — chunk boundaries and worker
	// count affect grouping, never results.
	lane     bool
	chunk    int
	batchers []*LaneBatcher
}

// EngineConfig configures a multi-stream engine.
type EngineConfig struct {
	// Streams is the number of logical-qubit streams L.
	Streams int
	// Distance, Window, Commit configure every stream's Decoder, with the
	// same defaults as New.
	Distance       int
	Window, Commit int
	// Workers bounds decode parallelism; 0 selects GOMAXPROCS. It is
	// clamped to Streams.
	Workers int
	// Sink, when non-nil, receives every committed correction instead of
	// the engine retaining it (Committed then stays empty). Calls for one
	// stream are serialized; calls for different streams may be concurrent.
	Sink func(stream int, c Correction)
	// Robust configures deadline enforcement and backpressure on every
	// stream decoder; the zero value disables both.
	Robust Robust
	// Chaos, when non-nil, injects link faults on every stream's
	// qubit→decoder channel: each stream gets its own faults.Channel seeded
	// from Chaos.Seed plus a per-stream offset, so fleet runs are
	// reproducible and streams fault independently.
	Chaos *faults.Config
	// Trace, when non-nil, receives every stream's model-time decode events
	// (windows, timeouts, shed/recover episodes), each labeled with its
	// stream index as tid — so a fixed-seed fleet exports the identical
	// trace for any worker count.
	Trace *obs.Trace
	// LaneBatch batches ready-to-decode windows from up to 64 streams into
	// bit-plane lane groups (LaneBatcher) instead of decoding each stream's
	// window as it fills. Corrections are bit-identical to the per-stream
	// path for every worker count and fleet size; only throughput changes.
	// Ignored (off) when Robust is enabled — deadline accounting assumes
	// decode-at-fill, and degraded windows must never enter a lane group.
	LaneBatch bool
}

// engineJob is one round batch (or a flush) broadcast to every worker.
type engineJob struct {
	rounds int
	feed   func(stream, round int) []int32
	flush  bool
}

// NewEngine builds the fleet of stream decoders and starts the worker
// pool. Callers should Close the engine when done with it.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Streams < 1 {
		return nil, fmt.Errorf("stream: engine needs at least one stream")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Streams {
		workers = cfg.Streams
	}
	e := &Engine{
		decs:    make([]*Decoder, cfg.Streams),
		errs:    make([]error, cfg.Streams),
		totals:  make([]uint64, cfg.Streams),
		robust:  cfg.Robust.enabled(),
		workers: workers,
	}
	if cfg.Sink == nil {
		e.retain = make([][]Correction, cfg.Streams)
	}
	for i := 0; i < cfg.Streams; i++ {
		dec, err := New(cfg.Distance, cfg.Window, cfg.Commit)
		if err != nil {
			return nil, err
		}
		if err := dec.SetRobust(cfg.Robust); err != nil {
			return nil, err
		}
		if cfg.Trace != nil {
			dec.SetTrace(cfg.Trace, int32(i))
		}
		i := i
		if cfg.Sink != nil {
			dec.SetSink(func(c Correction) {
				e.totals[i]++
				cfg.Sink(i, c)
			})
		} else {
			dec.SetSink(func(c Correction) {
				e.totals[i]++
				e.retain[i] = append(e.retain[i], c)
			})
		}
		e.decs[i] = dec
	}
	if cfg.Chaos != nil {
		per := cfg.Distance * (cfg.Distance - 1)
		e.chans = make([]*faults.Channel, cfg.Streams)
		for i := range e.chans {
			c := *cfg.Chaos
			c.Seed = faults.StreamSeed(cfg.Chaos.Seed, i)
			e.chans[i] = faults.NewChannel(per, c)
		}
	}
	if cfg.LaneBatch && !e.robust {
		e.lane = true
		for _, dec := range e.decs {
			// Cannot fail: the engine is non-robust by the guard above.
			if err := dec.SetDeferDecode(true); err != nil {
				return nil, err
			}
		}
		// Chunks of up to 64 streams: one lane group per chunk per decode
		// round. ceil(S/workers) keeps every worker busy on small fleets;
		// the 64-lane cap bounds a group to one plane word.
		e.chunk = (cfg.Streams + workers - 1) / workers
		if e.chunk > 64 {
			e.chunk = 64
		}
		e.batchers = make([]*LaneBatcher, workers)
		for w := range e.batchers {
			e.batchers[w] = NewLaneBatcher()
		}
	}
	e.jobs = make([]chan engineJob, workers)
	e.done.Add(workers)
	for w := 0; w < workers; w++ {
		ch := make(chan engineJob, 1)
		e.jobs[w] = ch
		go e.worker(w, ch)
	}
	return e, nil
}

// deliverRound carries one round to stream i — through its fault channel
// when chaos is configured — and ingests it. Ingestion errors stick to the
// stream and suppress its remaining rounds in the batch: a framing bug
// poisons one stream, not the fleet.
func (e *Engine) deliverRound(i int, events []int32) error {
	dec := e.decs[i]
	if e.chans != nil {
		delivered, erased, pen := e.chans[i].Transfer(events)
		dec.AddPenaltyNS(pen)
		if erased {
			dec.PushErased()
			return nil
		}
		return dec.PushLayer(delivered)
	}
	return dec.PushLayer(events)
}

func (e *Engine) worker(w int, ch chan engineJob) {
	defer e.done.Done()
	for job := range ch {
		if e.lane && !job.flush {
			e.laneRounds(e.batchers[w], job)
			e.wg.Done()
			continue
		}
		for {
			i := int(e.next.Add(1) - 1)
			if i >= len(e.decs) {
				break
			}
			if job.flush {
				// Flush resolves any deferred window through the scalar
				// path before closing the stream, so the per-stream claim
				// loop serves lane engines too.
				e.decs[i].Flush()
				continue
			}
			if e.errs[i] != nil {
				continue
			}
			for r := 0; r < job.rounds; r++ {
				if err := e.deliverRound(i, job.feed(i, r)); err != nil {
					e.errs[i] = fmt.Errorf("stream %d: %w", i, err)
					break
				}
			}
		}
		e.wg.Done()
	}
}

// laneRounds is the lane-batched round job: workers claim whole chunks of
// consecutive streams, deliver each round to the chunk, and resolve the
// windows that filled as one lane group per chunk. Round-major order keeps
// the feed contract (per-stream round order, one owner per stream per
// batch) while letting every stream in the chunk reach pending before any
// of them decodes.
func (e *Engine) laneRounds(b *LaneBatcher, job engineJob) {
	for {
		lo := int(e.next.Add(int64(e.chunk))) - e.chunk
		if lo >= len(e.decs) {
			return
		}
		hi := lo + e.chunk
		if hi > len(e.decs) {
			hi = len(e.decs)
		}
		chunk := e.decs[lo:hi]
		for r := 0; r < job.rounds; r++ {
			for i := lo; i < hi; i++ {
				if e.errs[i] != nil {
					continue
				}
				if err := e.deliverRound(i, job.feed(i, r)); err != nil {
					e.errs[i] = fmt.Errorf("stream %d: %w", i, err)
				}
			}
			b.Decode(chunk)
		}
	}
}

// dispatch runs one job across the pool, waits for the barrier, and
// reports any sticky per-stream ingestion errors.
func (e *Engine) dispatch(job engineJob) error {
	if e.closed {
		return errors.New("stream: engine used after Close")
	}
	e.next.Store(0)
	e.wg.Add(e.workers)
	for _, ch := range e.jobs {
		ch <- job
	}
	e.wg.Wait()
	return errors.Join(e.errs...)
}

// Streams returns the fleet size L.
func (e *Engine) Streams() int { return len(e.decs) }

// Workers returns the pool size actually in use.
func (e *Engine) Workers() int { return e.workers }

// Decoder exposes stream i's decoder for inspection; it must not be used
// concurrently with engine batches.
func (e *Engine) Decoder(i int) *Decoder { return e.decs[i] }

// StreamReport returns stream i's merged ledger — its decoder's runtime
// counters (windows, timeouts, degraded commits, shedding) plus its link
// channel's (injected and detected faults, retries, erasures). Like
// Decoder, it must not be called concurrently with engine batches.
func (e *Engine) StreamReport(i int) faults.Report {
	rep := e.decs[i].Report()
	if e.chans != nil {
		rep.Merge(e.chans[i].Report())
	}
	return rep
}

// FaultReport merges every stream's runtime ledger (windows, timeouts,
// degraded commits, shedding) with its link channel's ledger (injected and
// detected faults, retries, erasures) into one fleet-wide report.
func (e *Engine) FaultReport() faults.Report {
	var rep faults.Report
	for i, dec := range e.decs {
		rep.Merge(dec.Report())
		if e.chans != nil {
			rep.Merge(e.chans[i].Report())
		}
	}
	return rep
}

// RunRounds feeds `rounds` rounds to every stream, pulling each round's
// detection events from feed(stream, round). feed is invoked exactly once
// per (stream, round), in round order for any one stream, from the worker
// that owns the stream for this batch — so a per-stream event source (for
// example a seeded noise sampler) stays deterministic for any worker
// count. The returned slice is consumed before the next feed call for the
// same stream. A stream whose feed yields an out-of-range index is
// poisoned (its error is returned, and re-returned by later batches); the
// other streams keep running.
func (e *Engine) RunRounds(rounds int, feed func(stream, round int) []int32) error {
	if rounds <= 0 {
		if e.closed {
			return errors.New("stream: engine used after Close")
		}
		return nil
	}
	return e.dispatch(engineJob{rounds: rounds, feed: feed})
}

// PushRound feeds one round for all L streams: events[i] holds stream i's
// detection events. Rounds that cannot trigger a window decode are
// ingested serially — bit-sets into the ring, far cheaper than a pool
// barrier — while decode rounds fan the fleet out across the workers.
func (e *Engine) PushRound(events [][]int32) error {
	if e.closed {
		return errors.New("stream: engine used after Close")
	}
	if len(events) != len(e.decs) {
		return fmt.Errorf("stream: PushRound got %d event lists for %d streams", len(events), len(e.decs))
	}
	// Without robust degradation all streams ingest in lockstep, so stream
	// 0's fill level is the fleet's: decide once whether this round
	// completes a window. A degraded (deadline-overrun) commit finalizes
	// fewer layers and desyncs fill levels, so robust engines scan.
	willDecode := false
	if e.robust {
		for _, dec := range e.decs {
			if dec.Buffered()+1 >= dec.Window {
				willDecode = true
				break
			}
		}
	} else {
		willDecode = e.decs[0].Buffered()+1 >= e.decs[0].Window
	}
	if !willDecode || (e.workers == 1 && !e.lane) {
		for i := range e.decs {
			if e.errs[i] != nil {
				continue
			}
			if err := e.deliverRound(i, events[i]); err != nil {
				e.errs[i] = fmt.Errorf("stream %d: %w", i, err)
			}
		}
		return errors.Join(e.errs...)
	}
	return e.dispatch(engineJob{rounds: 1, feed: func(stream, _ int) []int32 {
		return events[stream]
	}})
}

// PushRounds feeds a batch of rounds to the whole fleet in one call:
// rounds[r][i] holds stream i's detection events for the r-th round of
// the batch. It is equivalent to calling PushRound once per round, but a
// batch that cannot trigger a window decode on any stream is ingested
// serially (bit-sets into the rings), and a batch that can costs one
// worker-pool barrier instead of one per decode round — the dispatch
// shape the Conjoined Decoder's round-synchronous ingest hardware
// implies. Shape errors reject the batch before any state changes;
// per-stream ingestion errors poison only their stream, like PushRound.
func (e *Engine) PushRounds(rounds [][][]int32) error {
	if e.closed {
		return errors.New("stream: engine used after Close")
	}
	for r := range rounds {
		if len(rounds[r]) != len(e.decs) {
			return fmt.Errorf("stream: PushRounds round %d has %d event lists for %d streams", r, len(rounds[r]), len(e.decs))
		}
	}
	k := len(rounds)
	if k == 0 {
		return nil
	}
	// Same fill-level reasoning as PushRound, over the whole batch: in
	// lockstep mode stream 0's level is the fleet's; robust (degradable)
	// engines scan because degraded commits desync fill levels.
	willDecode := false
	if e.robust {
		for _, dec := range e.decs {
			if dec.Buffered()+k >= dec.Window {
				willDecode = true
				break
			}
		}
	} else {
		willDecode = e.decs[0].Buffered()+k >= e.decs[0].Window
	}
	if !willDecode || (e.workers == 1 && !e.lane) {
		for i := range e.decs {
			if e.errs[i] != nil {
				continue
			}
			for r := 0; r < k; r++ {
				if err := e.deliverRound(i, rounds[r][i]); err != nil {
					e.errs[i] = fmt.Errorf("stream %d: %w", i, err)
					break
				}
			}
		}
		return errors.Join(e.errs...)
	}
	return e.dispatch(engineJob{rounds: k, feed: func(stream, round int) []int32 {
		return rounds[round][stream]
	}})
}

// Flush ends every stream (decoding remainders as closed windows) and
// leaves the engine ready for new streams. Corrections flushed this way
// reach the sink or the retained slices like any others. Sticky ingestion
// errors are returned one last time and cleared — the flushed streams
// start clean.
func (e *Engine) Flush() error {
	err := e.dispatch(engineJob{flush: true})
	for i := range e.errs {
		e.errs[i] = nil
	}
	return err
}

// Committed returns the corrections retained for stream i (engine built
// without a sink). The slice is owned by the engine; it grows until
// ResetCommitted.
func (e *Engine) Committed(i int) []Correction {
	if e.retain == nil {
		return nil
	}
	return e.retain[i]
}

// ResetCommitted drops all retained corrections (and the totals), keeping
// the streams' decoding state untouched.
func (e *Engine) ResetCommitted() {
	for i := range e.totals {
		e.totals[i] = 0
	}
	for i := range e.retain {
		e.retain[i] = e.retain[i][:0]
	}
}

// TotalCorrections returns the number of corrections committed across the
// fleet since construction (or the last ResetCommitted).
func (e *Engine) TotalCorrections() uint64 {
	var sum uint64
	for _, n := range e.totals {
		sum += n
	}
	return sum
}

// Close shuts the worker pool down and waits for the workers to exit, so
// a closed engine leaks no goroutines. The engine must not be used after
// Close; Close is idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, ch := range e.jobs {
		close(ch)
	}
	e.done.Wait()
}
