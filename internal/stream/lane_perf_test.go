package stream

import (
	"os"
	"testing"
	"time"

	"afs/internal/noise"
)

// TestPerfSmokeLaneEngine is the CI perf-smoke gate for cross-stream lane
// batching: at the paper's design point (d=11, p=1e-3) with 256 streams the
// lane-batched engine must sustain at least 0.9x the rounds/s of a scalar
// engine measured in the same run on the identical pregenerated feed.
//
// The floor is a no-regression gate, not a speedup claim: against this
// repo's scalar path — whose sparse shortcut already classifies pairs and
// boundary singles in closed form — the word-parallel certifier lands at
// parity (BENCH_10 measures ~1.0-1.1x here; see EXPERIMENTS.md for the
// cost accounting). What the gate protects is the invariant that turning
// LaneBatch on never costs throughput while the determinism suites hold
// corrections bit-identical. The same-run baseline cancels host speed, and
// 0.9x leaves headroom for single-core CI jitter. Enabled by
// AFS_PERF_SMOKE=1.
func TestPerfSmokeLaneEngine(t *testing.T) {
	if os.Getenv("AFS_PERF_SMOKE") == "" {
		t.Skip("set AFS_PERF_SMOKE=1 to run the pinned-floor perf smoke")
	}
	const (
		streams      = 256
		d            = 11
		p            = 1e-3
		segRounds    = 512 // rounds per timed segment
		reps         = 4
		poolRounds   = 1024
		floorSpeedup = 0.9
	)
	// Pregenerate the feed so the sampler is out of both timed loops and the
	// two engines see byte-identical rounds.
	pool := make([][][]int32, streams)
	for i := range pool {
		s := noise.NewRoundSampler(d, p, 4242, uint64(i)+1)
		pool[i] = make([][]int32, poolRounds)
		for r := range pool[i] {
			pool[i][r] = append([]int32(nil), s.SampleRound()...)
		}
	}
	run := func(lane bool) float64 {
		eng, err := NewEngine(EngineConfig{
			Streams: streams, Distance: d, LaneBatch: lane,
			Sink: func(int, Correction) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		base := 0
		feed := func(i, rr int) []int32 { return pool[i][(base+rr)%poolRounds] }
		if err := eng.RunRounds(4*d, feed); err != nil { // warm scratch
			t.Fatal(err)
		}
		base += 4 * d
		best := 0.0
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			if err := eng.RunRounds(segRounds, feed); err != nil {
				t.Fatal(err)
			}
			if rps := float64(streams*segRounds) / time.Since(start).Seconds(); rps > best {
				best = rps
			}
			base += segRounds
		}
		return best
	}
	scalar := run(false)
	lane := run(true)
	speedup := lane / scalar
	t.Logf("d=%d p=%g L=%d: scalar %.0f rounds/s, lane %.0f rounds/s = %.2fx",
		d, p, streams, scalar, lane, speedup)
	if speedup < floorSpeedup {
		t.Fatalf("lane-batched engine %.3fx of same-run scalar, below pinned floor %.2fx", speedup, floorSpeedup)
	}
}
