package stream

import (
	"math/bits"
	"slices"
	"testing"

	"afs/internal/noise"
)

// checkOcc asserts the slot-occupancy invariant: occ[s] equals the
// popcount of slot s's ring words, for every slot (buffered or free —
// free slots must be zero on both sides).
func checkOcc(t *testing.T, d *Decoder, when string) {
	t.Helper()
	for s := 0; s < d.Window; s++ {
		var pc int32
		for k := 0; k < d.perWords; k++ {
			pc += int32(bits.OnesCount64(d.ring[s*d.perWords+k]))
		}
		if pc != d.occ[s] {
			t.Fatalf("%s: slot %d occupancy %d, words hold %d bits", when, s, d.occ[s], pc)
		}
	}
}

// TestStreamPushLayersMatchesSequential: the batch ingestion entry must be
// bit-identical to round-by-round PushLayer for any batch partition of the
// same round sequence, and a malformed batch must be rejected atomically —
// no layers ingested, the decoder still in lockstep with the reference.
func TestStreamPushLayersMatchesSequential(t *testing.T) {
	const d, rounds = 5, 400
	a, err := New(d, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(d, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	sa := noise.NewRoundSampler(d, 0.01, 77, 1)
	sb := noise.NewRoundSampler(d, 0.01, 77, 1)

	// Varying batch sizes, including batches spanning several window
	// decodes and empty batches.
	sizes := []int{1, 3, 0, 7, 2, 13, 1, 29, 5}
	fed := 0
	si := 0
	for fed < rounds {
		k := sizes[si%len(sizes)]
		si++
		if fed+k > rounds {
			k = rounds - fed
		}
		batch := make([][]int32, k)
		for r := 0; r < k; r++ {
			ev := slices.Clone(sa.SampleRound())
			batch[r] = ev
			if err := b.PushLayer(sb.SampleRound()); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.PushLayers(batch); err != nil {
			t.Fatal(err)
		}
		fed += k

		// Every few batches, offer a malformed one: valid rounds followed
		// by an out-of-range index. It must change nothing.
		if si%3 == 0 {
			buffered := a.Buffered()
			bad := [][]int32{{0}, {1}, {int32(d * (d - 1))}}
			if err := a.PushLayers(bad); err == nil {
				t.Fatal("malformed batch accepted")
			}
			if a.Buffered() != buffered {
				t.Fatalf("rejected batch still ingested layers: %d -> %d", buffered, a.Buffered())
			}
		}
	}
	got, want := a.Flush(), b.Flush()
	if !slices.Equal(got, want) {
		t.Fatalf("PushLayers diverged from sequential PushLayer: %d vs %d corrections", len(got), len(want))
	}
}

// TestStreamW0SkipBitIdentical proves the weight-0 window skip is an
// optimization, not a behavior change: a decoder with the skip forced off
// commits identical corrections and reports an identical fault ledger, in
// plain mode and in robust (deadline + backpressure) mode where the skip
// must also reproduce the empty decode's cost accounting — including
// injected penalties pushing an empty window over its deadline.
func TestStreamW0SkipBitIdentical(t *testing.T) {
	const d, rounds = 4, 600
	for _, robust := range []bool{false, true} {
		a, err := New(d, d, 0) // skip enabled (default)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(d, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		b.disableW0Skip = true
		if robust {
			cfg := Robust{DeadlineNS: 300, QueueCap: 3 * d}
			if err := a.SetRobust(cfg); err != nil {
				t.Fatal(err)
			}
			if err := b.SetRobust(cfg); err != nil {
				t.Fatal(err)
			}
		}
		// p low enough that most windows are empty, high enough that some
		// are not — both sides of the branch run in one stream.
		sa := noise.NewRoundSampler(d, 0.002, 11, 2)
		sb := noise.NewRoundSampler(d, 0.002, 11, 2)
		for r := 0; r < rounds; r++ {
			if robust && r%37 == 0 {
				// A penalty larger than the deadline forces the timeout and
				// degraded-commit paths even on empty windows.
				a.AddPenaltyNS(500)
				b.AddPenaltyNS(500)
			}
			if err := a.PushLayer(sa.SampleRound()); err != nil {
				t.Fatal(err)
			}
			if err := b.PushLayer(sb.SampleRound()); err != nil {
				t.Fatal(err)
			}
		}
		got, want := a.Flush(), b.Flush()
		if !slices.Equal(got, want) {
			t.Fatalf("robust=%v: W0 skip changed corrections: %d vs %d", robust, len(got), len(want))
		}
		if ra, rb := a.Report(), b.Report(); ra != rb {
			t.Fatalf("robust=%v: W0 skip changed the fault ledger:\n skip %+v\n full %+v", robust, ra, rb)
		}
		// An all-empty flush exercises the skip on final (closed) windows.
		for r := 0; r < d+1; r++ {
			a.PushLayer(nil)
			b.PushLayer(nil)
		}
		if got, want := a.Flush(), b.Flush(); len(got) != 0 || len(want) != 0 {
			t.Fatalf("robust=%v: empty stream committed corrections: %d vs %d", robust, len(got), len(want))
		}
	}
}

// TestStreamSlotOccupancyInvariant drives every path that writes ring
// words — duplicate-index ingestion, the commit seam's carry toggle,
// erased rounds, backpressure shedding, slides, and final flushes — and
// checks after each round that the per-slot occupancy counters match the
// actual popcount of the slot words. The counters are what lets
// decodeWindow skip empty slots without scanning, so a drift here would
// silently drop defects.
func TestStreamSlotOccupancyInvariant(t *testing.T) {
	const d, rounds = 5, 500
	for _, robust := range []bool{false, true} {
		dec, err := New(d, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if robust {
			// A tight deadline plus periodic penalties forces timeouts,
			// degraded commits, and queue shedding into the mix.
			if err := dec.SetRobust(Robust{DeadlineNS: 250, QueueCap: 2 * d}); err != nil {
				t.Fatal(err)
			}
		}
		// p high enough that temporal corrections regularly cross the
		// commit seam and exercise the carry-toggle occupancy updates.
		s := noise.NewRoundSampler(d, 0.03, 5, 3)
		for r := 0; r < rounds; r++ {
			switch {
			case r%23 == 11:
				dec.PushErased()
			case r%17 == 4:
				// Duplicate indices within a round must not double-count.
				ev := s.SampleRound()
				ev = append(slices.Clone(ev), ev...)
				if err := dec.PushLayer(ev); err != nil {
					t.Fatal(err)
				}
			default:
				if robust && r%31 == 7 {
					dec.AddPenaltyNS(900)
				}
				if err := dec.PushLayer(s.SampleRound()); err != nil {
					t.Fatal(err)
				}
			}
			checkOcc(t, dec, "after push")
		}
		dec.Flush()
		checkOcc(t, dec, "after flush")
	}
}

// TestStreamW0SkipCounted: quiet windows must show up on the
// afs_stream_w0_windows_total counter, bounded by the window count.
func TestStreamW0SkipCounted(t *testing.T) {
	const d = 4
	dec, err := New(d, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := registeredObs.w0Windows.Value()
	for r := 0; r < 20*d; r++ {
		dec.PushLayer(nil)
	}
	dec.Flush()
	skipped := registeredObs.w0Windows.Value() - before
	if skipped == 0 {
		t.Fatal("no weight-0 windows counted on an all-empty stream")
	}
	if w := registeredObs.windows.Value(); skipped > w {
		t.Fatalf("w0 windows %d exceed total windows %d", skipped, w)
	}
}

// TestEnginePushRoundsMatchesPushRound: the fleet batch entry must commit
// exactly what per-round ingestion commits, for both its serial fast path
// (batches that trigger no decode) and its single-dispatch pool path, at
// one worker and several.
func TestEnginePushRoundsMatchesPushRound(t *testing.T) {
	const streams, d, rounds = 5, 4, 240
	for _, workers := range []int{1, 3} {
		want := runEngine(t, streams, workers, d, d, 0, rounds)

		out := make([][]Correction, streams)
		eng, err := NewEngine(EngineConfig{
			Streams: streams, Distance: d, Workers: workers,
			Sink: func(stream int, c Correction) { out[stream] = append(out[stream], c) },
		})
		if err != nil {
			t.Fatal(err)
		}
		samplers := make([]*noise.RoundSampler, streams)
		for i := range samplers {
			samplers[i] = noise.NewRoundSampler(d, 0.01, 42, uint64(i)*0x9e37+1)
		}
		sizes := []int{1, 2, 5, 3, 11} // mix below and above the window
		fed := 0
		for si := 0; fed < rounds; si++ {
			k := sizes[si%len(sizes)]
			if fed+k > rounds {
				k = rounds - fed
			}
			batch := make([][][]int32, k)
			for r := 0; r < k; r++ {
				batch[r] = make([][]int32, streams)
				for i := 0; i < streams; i++ {
					batch[r][i] = slices.Clone(samplers[i].SampleRound())
				}
			}
			if err := eng.PushRounds(batch); err != nil {
				t.Fatal(err)
			}
			fed += k
		}
		if err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
		eng.Close()
		for i := range want {
			if !slices.Equal(out[i], want[i]) {
				t.Fatalf("workers=%d stream %d: PushRounds diverged from per-round ingestion (%d vs %d corrections)",
					workers, i, len(out[i]), len(want[i]))
			}
		}
	}
}

// TestEnginePushRoundsValidation: shape errors reject the batch before any
// ingestion; the zero-length batch is a no-op.
func TestEnginePushRoundsValidation(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Streams: 2, Distance: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.PushRounds(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := eng.PushRounds([][][]int32{{nil, nil}, {nil}}); err == nil {
		t.Fatal("mis-shaped batch accepted")
	}
	if got := eng.Decoder(0).Buffered(); got != 0 {
		t.Fatalf("rejected batch ingested %d layers", got)
	}
}
