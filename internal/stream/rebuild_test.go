package stream

import (
	"math/rand/v2"
	"slices"
	"testing"

	"afs/internal/core"
	"afs/internal/lattice"
	"afs/internal/noise"
)

// sortCorrections orders a committed-correction list canonically so edge
// sets can be compared regardless of emission order (the rebuilt decoder's
// sparse shortcut may emit a window's corrections in a different order than
// the pre-engine pipeline).
func sortCorrections(cs []Correction) {
	slices.SortFunc(cs, func(a, b Correction) int {
		if a.Round != b.Round {
			return a.Round - b.Round
		}
		if a.Kind != b.Kind {
			return int(a.Kind) - int(b.Kind)
		}
		if a.Qubit != b.Qubit {
			return int(a.Qubit - b.Qubit)
		}
		return int(a.Ancilla - b.Ancilla)
	})
}

// TestStreamMatchesBaselineExactly is the rebuild's differential harness:
// identical event streams through the pre-engine Baseline and the ring-
// buffer Decoder must commit identical correction multisets, window
// geometry by window geometry. This transitively pins the bitset
// ingestion, the seam carry-as-XOR, and the core sparse shortcut to the
// seed implementation's decisions.
func TestStreamMatchesBaselineExactly(t *testing.T) {
	for _, cfg := range []struct{ d, T, w, c int }{
		{3, 17, 3, 1}, {4, 13, 4, 2}, {4, 13, 4, 1}, {4, 13, 4, 3},
		{4, 13, 6, 3}, {4, 13, 2, 1}, {5, 21, 5, 2}, {5, 9, 20, 10},
	} {
		g := lattice.New3D(cfg.d, cfg.T)
		s := noise.NewSampler(g, 0.02, 21, uint64(cfg.w*8+cfg.c))
		dec, err := New(cfg.d, cfg.w, cfg.c)
		if err != nil {
			t.Fatal(err)
		}
		bl, err := NewBaseline(cfg.d, cfg.w, cfg.c)
		if err != nil {
			t.Fatal(err)
		}
		var trial noise.Trial
		for i := 0; i < 120; i++ {
			s.Sample(&trial)
			feed(dec, g, trial.Defects)
			feed(bl, g, trial.Defects)

			// Mid-stream: the already-committed prefixes must agree.
			got := append([]Correction(nil), dec.Committed()...)
			want := append([]Correction(nil), bl.Committed()...)
			sortCorrections(got)
			sortCorrections(want)
			if !slices.Equal(got, want) {
				t.Fatalf("d=%d w=%d c=%d trial %d: mid-stream committed diverged:\n new  %v\n base %v",
					cfg.d, cfg.w, cfg.c, i, got, want)
			}

			got = dec.Flush()
			want = bl.Flush()
			sortCorrections(got)
			sortCorrections(want)
			if !slices.Equal(got, want) {
				t.Fatalf("d=%d w=%d c=%d trial %d: flushed corrections diverged:\n new  %v\n base %v",
					cfg.d, cfg.w, cfg.c, i, got, want)
			}
		}
	}
}

// pusher lets the feed helper serve both the rebuilt Decoder and the
// preserved Baseline.
type pusher interface{ PushLayer([]int32) error }

var (
	_ pusher = (*Decoder)(nil)
	_ pusher = (*Baseline)(nil)
)

// TestStreamSinkMatchesRetained: routing corrections through a sink must
// deliver exactly the sequence Committed would have retained.
func TestStreamSinkMatchesRetained(t *testing.T) {
	const d, T = 4, 20
	g := lattice.New3D(d, T)
	s := noise.NewSampler(g, 0.02, 5, 8)
	retained, err := New(d, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sunk, err := New(d, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var viaSink []Correction
	sunk.SetSink(func(c Correction) { viaSink = append(viaSink, c) })
	var trial noise.Trial
	for i := 0; i < 60; i++ {
		s.Sample(&trial)
		viaSink = viaSink[:0]
		feed(retained, g, trial.Defects)
		feed(sunk, g, trial.Defects)
		want := retained.Flush()
		if out := sunk.Flush(); out != nil {
			t.Fatalf("Flush with a sink returned %d corrections, want none retained", len(out))
		}
		if len(sunk.Committed()) != 0 {
			t.Fatal("Committed must stay empty under a sink")
		}
		if !slices.Equal(viaSink, want) {
			t.Fatalf("trial %d: sink sequence %v != retained %v", i, viaSink, want)
		}
	}
}

// TestStreamSteadyStateMemoryIsBounded is the regression test for the
// pre-rebuild leak: `buffer = buffer[commit:]` kept every consumed layer's
// backing array reachable for the stream's lifetime. The ring buffer must
// hold exactly Window slots forever, and a long steady-state run must not
// allocate at all.
func TestStreamSteadyStateMemoryIsBounded(t *testing.T) {
	const d, w, c = 5, 4, 2
	dec, err := New(d, w, c)
	if err != nil {
		t.Fatal(err)
	}
	var count uint64
	dec.SetSink(func(Correction) { count++ })

	// A deterministic, allocation-free event pattern with realistic density.
	rng := rand.New(rand.NewPCG(2, 7))
	per := d * (d - 1)
	rounds := make([][]int32, 64)
	for i := range rounds {
		for a := 0; a < per; a++ {
			if rng.Float64() < 0.02 {
				rounds[i] = append(rounds[i], int32(a))
			}
		}
	}

	ringWords := len(dec.ring)
	for i := 0; i < 100_000; i++ {
		dec.PushLayer(rounds[i%len(rounds)])
	}
	if len(dec.ring) != ringWords || ringWords != w*dec.perWords {
		t.Fatalf("ring grew: %d words, want %d", len(dec.ring), w*dec.perWords)
	}
	if dec.Buffered() >= w {
		t.Fatalf("buffered %d layers, want < window %d", dec.Buffered(), w)
	}
	if dec.committed != nil {
		t.Fatalf("sink mode retained %d corrections", len(dec.committed))
	}
	if count == 0 {
		t.Fatal("100k noisy rounds committed nothing")
	}
	// O(Window) steady state implies a zero-allocation push path.
	i := 0
	avg := testing.AllocsPerRun(300, func() {
		for r := 0; r < w; r++ {
			dec.PushLayer(rounds[i%len(rounds)])
			i++
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state PushLayer allocates %.2f objects per %d rounds, want 0", avg, w)
	}
}

// monolithicFailure decodes the whole trial on the closed graph at once
// and reports whether a logical error remains on the north cut.
func monolithicFailure(g *lattice.Graph, dec *core.Decoder, trial *noise.Trial, cut []int32, mask *noise.Bitset) bool {
	corr := dec.Decode(trial.Defects)
	mask.Resize(g.NumDataQubits())
	mask.Clear()
	core.ApplyToData(g, corr, mask)
	mask.Xor(trial.NetData)
	return mask.Parity(cut)
}

// TestStreamParityTracksMonolithic is the sliding-window accuracy property
// test. Per-trial agreement with a monolithic decode is NOT an invariant —
// a sliding window decides with finite context, and occasionally commits to
// the other logical class (TestStreamAccuracyComparableToMonolithic bounds
// the aggregate cost). What must hold:
//
//  1. for every trial, the committed corrections reproduce the syndrome
//     (checked by verify), and
//  2. the logical-parity outcome agrees with the monolithic decode on all
//     but a small fraction of trials, across distances and window
//     geometries.
func TestStreamParityTracksMonolithic(t *testing.T) {
	for _, cfg := range []struct {
		d, T, w, c int
		p          float64
	}{
		{3, 12, 3, 1, 0.01},
		{4, 13, 4, 2, 0.01},
		{5, 15, 5, 2, 0.008},
		{4, 16, 6, 3, 0.015},
	} {
		const trials = 400
		g := lattice.New3D(cfg.d, cfg.T)
		cut := g.NorthCutQubits()
		mono := core.NewDecoder(g, core.Options{LeanStats: true})
		s := noise.NewSampler(g, cfg.p, 77, uint64(cfg.d))
		dec, err := New(cfg.d, cfg.w, cfg.c)
		if err != nil {
			t.Fatal(err)
		}
		var trial noise.Trial
		var mask noise.Bitset
		mismatch := 0
		for i := 0; i < trials; i++ {
			s.Sample(&trial)
			feed(dec, g, trial.Defects)
			res := verify(t, g, &trial, dec.Flush())
			streamed := res.Parity(cut)
			if streamed != monolithicFailure(g, mono, &trial, cut, &mask) {
				mismatch++
			}
		}
		if mismatch > trials/10 {
			t.Errorf("d=%d w=%d c=%d p=%g: %d/%d trials changed logical outcome vs monolithic",
				cfg.d, cfg.w, cfg.c, cfg.p, mismatch, trials)
		}
	}
}

// TestStreamMonolithicWindowIsExact: when the window covers the whole
// stream it never slides, so Flush decodes the identical closed graph a
// direct core decode uses — the correction edge sets must match exactly,
// not just in logical outcome.
func TestStreamMonolithicWindowIsExact(t *testing.T) {
	const d, T = 4, 11
	g := lattice.Cached3D(d, T)
	mono := core.NewDecoder(g, core.Options{})
	s := noise.NewSampler(g, 0.02, 13, 2)
	dec, err := New(d, T+5, 1)
	if err != nil {
		t.Fatal(err)
	}
	var trial noise.Trial
	for i := 0; i < 200; i++ {
		s.Sample(&trial)
		feed(dec, g, trial.Defects)
		got := correctionEdges(t, g, dec.Flush())
		want := append([]int32(nil), mono.Decode(trial.Defects)...)
		slices.Sort(want)
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d: streamed edges %v != monolithic %v", i, got, want)
		}
	}
}

// correctionEdges translates committed corrections back to edge indices on
// the closed graph g, sorted.
func correctionEdges(t *testing.T, g *lattice.Graph, corr []Correction) []int32 {
	t.Helper()
	out := make([]int32, 0, len(corr))
	for _, c := range corr {
		switch c.Kind {
		case lattice.Spatial:
			out = append(out, g.SpatialEdge(c.Qubit, c.Round))
		case lattice.Temporal:
			r := int(c.Ancilla) / g.Distance
			col := int(c.Ancilla) % g.Distance
			out = append(out, g.TemporalEdge(r, col, c.Round))
		default:
			t.Fatalf("unknown correction kind %v", c.Kind)
		}
	}
	slices.Sort(out)
	return out
}
