package stream

import (
	"fmt"
	"math"
	"math/bits"

	"afs/internal/backlog"
	"afs/internal/faults"
)

// Snapshot is the serializable dynamic state of a streaming Decoder: the
// buffered (not yet committed) layers with their erasure flags, the global
// round base, the pending deadline penalty, the backlog queue's clocks and
// episode counters, and the runtime fault ledger. Together with the static
// configuration (Distance/Window/Commit and the Robust settings, which the
// caller re-applies before Restore) it is everything a *different* decoder
// instance — on another shard, after a crash — needs to continue the stream
// byte-identically: the sliding-window decode is a pure function of this
// state and the rounds that follow.
//
// The buffered layers are captured post-carry: a committed temporal edge
// crossing the commit seam has already toggled the first buffered layer,
// so restoring the layers verbatim reproduces the exact ring content, not
// merely the raw input rounds. That is what makes a checkpoint + bounded
// round journal sufficient for replay — no unbounded history is needed.
type Snapshot struct {
	Distance int `json:"distance"`
	Window   int `json:"window"`
	Commit   int `json:"commit"`

	// Base is the global round index of buffered layer 0.
	Base int `json:"base"`
	// Layers holds the buffered layers in order, each a sorted list of
	// ancilla indices (the post-carry ring content). Always fewer than
	// Window entries: a full window decodes immediately on ingest.
	Layers [][]int32 `json:"layers"`
	// Erased flags layers synthesized empty (link erasure or shedding).
	Erased []bool `json:"erased"`
	// PenaltyNS is injected service time charged to the next window.
	PenaltyNS float64 `json:"penalty_ns"`
	// Queue is the bounded backlog queue's dynamic state (clocks, open
	// shedding episode, episode counters).
	Queue backlog.QueueState `json:"queue"`
	// Ledger is the decoder's raw runtime fault ledger. Its BacklogSheds/
	// BacklogRecovers fields are zero here — those live in Queue and are
	// folded back in by Report(), exactly as in a live decoder.
	Ledger faults.Report `json:"ledger"`
}

// Snapshot captures the decoder's dynamic state. The returned value shares
// nothing with the decoder and may be serialized or held across further
// pushes. Cost is O(buffered defects), so checkpointing a quiet stream is
// cheap. A deferred (pending) window is resolved first — through the scalar
// path, bit-identically — so the snapshot always holds fewer than Window
// layers, the invariant Restore enforces.
func (d *Decoder) Snapshot() Snapshot {
	d.resolvePending()
	s := Snapshot{
		Distance:  d.Distance,
		Window:    d.Window,
		Commit:    d.Commit,
		Base:      d.base,
		Layers:    make([][]int32, d.ringLen),
		Erased:    make([]bool, d.ringLen),
		PenaltyNS: d.penaltyNS,
		Queue:     d.queue.State(),
		Ledger:    d.rep,
	}
	for t := 0; t < d.ringLen; t++ {
		si := d.ringStart + t
		if si >= d.Window {
			si -= d.Window
		}
		s.Erased[t] = d.erased[si]
		if d.occ[si] == 0 {
			continue
		}
		wi := si * d.perWords
		layer := make([]int32, 0, d.occ[si])
		for k := 0; k < d.perWords; k++ {
			w := d.ring[wi+k]
			base := int32(k << 6)
			for w != 0 {
				layer = append(layer, base+int32(bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
		s.Layers[t] = layer
	}
	return s
}

// Restore overwrites the decoder's dynamic state with a snapshot taken from
// a decoder of the same shape (Distance/Window/Commit must match; apply the
// same SetRobust configuration first — Restore rewinds the queue clocks that
// SetRobust resets). Feeding the restored decoder the same rounds the
// snapshotted one went on to receive reproduces its corrections and its
// fault ledger bit for bit. Any malformed snapshot — shape mismatch, too
// many layers, an out-of-range ancilla index, a non-finite or negative
// penalty — is rejected with an error before any decoder state changes.
func (d *Decoder) Restore(s Snapshot) error {
	if s.Distance != d.Distance || s.Window != d.Window || s.Commit != d.Commit {
		return fmt.Errorf("stream: snapshot shape d=%d W=%d C=%d does not match decoder d=%d W=%d C=%d",
			s.Distance, s.Window, s.Commit, d.Distance, d.Window, d.Commit)
	}
	if len(s.Layers) >= d.Window {
		return fmt.Errorf("stream: snapshot holds %d layers for a %d-round window", len(s.Layers), d.Window)
	}
	if len(s.Erased) != len(s.Layers) {
		return fmt.Errorf("stream: snapshot has %d erasure flags for %d layers", len(s.Erased), len(s.Layers))
	}
	if s.Base < 0 {
		return fmt.Errorf("stream: snapshot base %d negative", s.Base)
	}
	// A corrupt checkpoint (bit flips in transit, a truncated JSON blob
	// hand-patched back together) can carry a non-finite or negative
	// penalty; accepting one would poison every subsequent deadline
	// decision. Same guard the fleet wire protocol applies on decode.
	if math.IsNaN(s.PenaltyNS) || math.IsInf(s.PenaltyNS, 0) || s.PenaltyNS < 0 {
		return fmt.Errorf("stream: snapshot penalty %v not a finite non-negative duration", s.PenaltyNS)
	}
	per := int32(d.per)
	for t, layer := range s.Layers {
		for _, x := range layer {
			if x < 0 || x >= per {
				return fmt.Errorf("stream: snapshot layer %d: ancilla index %d outside [0,%d)", t, x, per)
			}
		}
	}

	for i := range d.ring {
		d.ring[i] = 0
	}
	for i := range d.occ {
		d.occ[i] = 0
		d.erased[i] = false
	}
	d.ringStart = 0
	d.ringLen = len(s.Layers)
	d.base = s.Base
	d.committed = nil
	for t, layer := range s.Layers {
		w := d.ring[t*d.perWords : (t+1)*d.perWords]
		for _, x := range layer {
			if bit := uint64(1) << (uint(x) & 63); w[x>>6]&bit == 0 {
				w[x>>6] |= bit
				d.occ[t]++
			}
		}
		d.erased[t] = s.Erased[t]
	}
	d.penaltyNS = s.PenaltyNS
	d.queue.SetState(s.Queue)
	d.rep = s.Ledger
	// The snapshot stores the raw ledger; episode counters live in Queue
	// and are re-folded by Report(), so clear any copies a foreign encoder
	// may have populated to avoid double counting.
	d.rep.BacklogSheds = 0
	d.rep.BacklogRecovers = 0
	return nil
}
