package stream

import (
	"fmt"

	"afs/internal/core"
	"afs/internal/lattice"
)

// Baseline is the pre-engine streaming decoder, kept verbatim for
// differential testing and as the reference the streaming benchmarks
// measure against (BENCH_2.json's before/after is an interleaved run of
// Baseline and Decoder in the same process). It buffers layers as freshly
// allocated slices, dedupes with an O(k^2) scan, sorts with insertion sort,
// carries seam toggles through a map, and re-slices its buffer on every
// slide — exactly the costs the ring-buffer Decoder removes. Committed
// corrections are identical to Decoder's for identical input.
type Baseline struct {
	Distance       int
	Window, Commit int

	g   *lattice.Graph
	dec *core.Decoder

	finals map[int]*core.Decoder
	closed map[int]*lattice.Graph

	buffer    [][]int32
	carry     []int32
	base      int
	committed []Correction

	defects []int32
	seam    map[int32]bool
}

// NewBaseline creates a pre-engine streaming decoder with the same
// parameter semantics as New.
func NewBaseline(distance, window, commit int) (*Baseline, error) {
	if distance < 2 {
		return nil, fmt.Errorf("stream: distance %d < 2", distance)
	}
	if window == 0 {
		window = distance
	}
	if window < 2 {
		return nil, fmt.Errorf("stream: window %d < 2", window)
	}
	if commit == 0 {
		commit = window / 2
		if commit < 1 {
			commit = 1
		}
	}
	if commit < 1 || commit >= window {
		return nil, fmt.Errorf("stream: commit %d outside [1, %d); committing a full window would finalize its deferred boundary matches", commit, window)
	}
	g := lattice.New3DWindow(distance, window)
	return &Baseline{
		Distance: distance,
		Window:   window,
		Commit:   commit,
		g:        g,
		dec:      core.NewDecoder(g, core.Options{}),
		finals:   map[int]*core.Decoder{},
		closed:   map[int]*lattice.Graph{},
		seam:     map[int32]bool{},
	}, nil
}

// PushLayer feeds one round's detection events, as Decoder.PushLayer.
func (d *Baseline) PushLayer(events []int32) error {
	per := int32(d.Distance * (d.Distance - 1))
	layer := make([]int32, 0, len(events))
	for _, x := range events {
		if x < 0 || x >= per {
			return fmt.Errorf("stream: ancilla index %d outside [0,%d)", x, per)
		}
		dup := false
		for _, y := range layer {
			if y == x {
				dup = true
				break
			}
		}
		if !dup {
			layer = append(layer, x)
		}
	}
	d.buffer = append(d.buffer, layer)
	if len(d.buffer) >= d.Window {
		d.decodeWindow(false)
	}
	return nil
}

// Flush decodes any remaining buffered layers as a closed window and
// returns all committed corrections, as Decoder.Flush.
func (d *Baseline) Flush() []Correction {
	for len(d.buffer) > 0 {
		d.decodeWindow(true)
	}
	out := d.committed
	d.committed = nil
	d.base = 0
	d.carry = nil
	return out
}

// Committed returns the corrections finalized so far (without flushing).
func (d *Baseline) Committed() []Correction { return d.committed }

func (d *Baseline) decodeWindow(final bool) {
	var g *lattice.Graph
	var dec *core.Decoder
	var layers, commit int
	if final {
		layers = len(d.buffer)
		commit = layers
		g, dec = d.finalDecoder(layers)
	} else {
		layers = d.Window
		commit = d.Commit
		g, dec = d.g, d.dec
	}

	per := d.Distance * (d.Distance - 1)
	d.defects = d.defects[:0]
	for _, x := range d.carry {
		d.seam[x] = !d.seam[x]
	}
	for t := 0; t < layers; t++ {
		for _, x := range d.buffer[t] {
			if t == 0 && d.seam[x] {
				d.seam[x] = false
				continue // carried toggle cancels the event
			}
			d.defects = append(d.defects, int32(t*per)+x)
		}
		if t == 0 {
			for x, on := range d.seam {
				if on {
					d.defects = append(d.defects, x)
					d.seam[x] = false
				}
			}
		}
	}
	d.carry = d.carry[:0]
	sortInt32(d.defects)

	corr := dec.Decode(d.defects)

	for _, ei := range corr {
		e := &g.Edges[ei]
		round := int(e.Round)
		if round >= commit {
			continue
		}
		switch e.Kind {
		case lattice.Spatial:
			d.committed = append(d.committed, Correction{
				Kind: lattice.Spatial, Qubit: e.Qubit, Ancilla: -1,
				Round: d.base + round,
			})
		case lattice.Temporal:
			r, c, _ := g.VertexCoords(e.U)
			x := int32(r*d.Distance + c)
			d.committed = append(d.committed, Correction{
				Kind: lattice.Temporal, Qubit: -1, Ancilla: x,
				Round: d.base + round,
			})
			if round == commit-1 && !g.IsBoundary(e.V) {
				d.carry = append(d.carry, x)
			}
		}
	}

	d.buffer = d.buffer[commit:]
	d.base += commit
}

func (d *Baseline) finalDecoder(layers int) (*lattice.Graph, *core.Decoder) {
	if dec, ok := d.finals[layers]; ok {
		return d.closed[layers], dec
	}
	var g *lattice.Graph
	if layers == 1 {
		g = lattice.New2D(d.Distance)
	} else {
		g = lattice.New3D(d.Distance, layers)
	}
	dec := core.NewDecoder(g, core.Options{})
	d.finals[layers] = dec
	d.closed[layers] = g
	return g, dec
}

func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
