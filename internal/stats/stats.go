// Package stats provides the statistical machinery used by the AFS
// evaluation: summary statistics, exact percentiles, histograms, bootstrap
// confidence intervals for Monte-Carlo failure rates, and log-linear tail
// extrapolation for estimating rare-event probabilities (such as the CDA
// timeout-failure probability, which is far below the reach of direct
// Monte-Carlo sampling).
package stats

import (
	"errors"
	"math"
	"math/rand/v2"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs, or 0 when fewer than
// two samples are available.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. NaN samples are ignored; if no real
// samples remain the result is NaN. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	sorted := sortedClean(xs)
	if len(sorted) == 0 {
		return math.NaN()
	}
	return percentileSorted(sorted, p)
}

// PercentileSorted returns the p-th percentile of an already-sorted slice.
// It avoids the copy performed by Percentile and is intended for computing
// several percentiles of the same large sample. sort.Float64s orders NaN
// samples before every real number; that prefix is skipped, so a sample
// containing NaNs yields real low percentiles instead of NaN.
func PercentileSorted(sorted []float64, p float64) float64 {
	for len(sorted) > 0 && math.IsNaN(sorted[0]) {
		sorted = sorted[1:]
	}
	if len(sorted) == 0 {
		return math.NaN()
	}
	return percentileSorted(sorted, p)
}

// sortedClean returns a sorted copy of xs with NaN samples dropped.
// sort.Float64s places NaNs before all real numbers, so the NaN prefix is
// trimmed with one scan.
func sortedClean(xs []float64) []float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	i := 0
	for i < len(sorted) && math.IsNaN(sorted[i]) {
		i++
	}
	return sorted[i:]
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds the summary statistics reported for latency distributions
// in the paper's evaluation (mean, median, p99, p99.9, min/max).
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64
	Min    float64
	Median float64
	P99    float64
	P999   float64
	Max    float64
}

// Summarize computes a Summary of xs. NaN samples are dropped first — one
// propagating NaN would otherwise poison every field — and Count reports
// the samples actually summarized. A single sample yields StdDev 0 (the
// unbiased estimator is undefined at n=1; 0 is the conventional report).
// The input is not modified.
func Summarize(xs []float64) Summary {
	sorted := sortedClean(xs)
	if len(sorted) == 0 {
		return Summary{}
	}
	return Summary{
		Count:  len(sorted),
		Mean:   Mean(sorted),
		StdDev: StdDev(sorted),
		Min:    sorted[0],
		Median: percentileSorted(sorted, 50),
		P99:    percentileSorted(sorted, 99),
		P999:   percentileSorted(sorted, 99.9),
		Max:    sorted[len(sorted)-1],
	}
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Samples outside
// the range are accumulated in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Bins   []uint64
	Under  uint64
	Over   uint64
	Total  uint64
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]uint64, n)}
}

// Add records one sample. NaN is ignored: it fails both range comparisons,
// and the bin-index conversion int(NaN) is platform-defined — historically
// an out-of-range index panic waiting on the first NaN latency.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	h.Total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
		if i == len(h.Bins) { // guard against floating-point edge
			i--
		}
		h.Bins[i]++
	}
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + (float64(i)+0.5)*w
}

// Density returns the fraction of all samples that fell into bin i.
func (h *Histogram) Density(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Bins[i]) / float64(h.Total)
}

// CCDF returns the empirical complementary CDF evaluated at the left edge of
// every bin: CCDF[i] = P(X >= left edge of bin i), including Over samples.
func (h *Histogram) CCDF() []float64 {
	out := make([]float64, len(h.Bins))
	cum := h.Over
	for i := len(h.Bins) - 1; i >= 0; i-- {
		cum += h.Bins[i]
		if h.Total > 0 {
			out[i] = float64(cum) / float64(h.Total)
		}
	}
	return out
}

// RateCI is a two-sided confidence interval for a Bernoulli rate.
type RateCI struct {
	Rate     float64
	Lo, Hi   float64
	Level    float64 // e.g. 0.95
	Failures uint64
	Trials   uint64
}

// WilsonInterval returns the Wilson score interval for k failures out of n
// trials at the given confidence level (two-sided, via normal quantile).
func WilsonInterval(k, n uint64, level float64) RateCI {
	ci := RateCI{Level: level, Failures: k, Trials: n}
	if n == 0 {
		ci.Lo, ci.Hi = 0, 1
		return ci
	}
	p := float64(k) / float64(n)
	ci.Rate = p
	z := normalQuantile(0.5 + level/2)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	ci.Lo = math.Max(0, center-half)
	ci.Hi = math.Min(1, center+half)
	return ci
}

// BootstrapRateCI computes a percentile-bootstrap confidence interval for a
// Bernoulli failure rate with k failures out of n trials, using b bootstrap
// resamples drawn from the empirical distribution. This mirrors the
// bootstrap technique the paper cites [Young, arXiv:1210.3781].
func BootstrapRateCI(k, n uint64, b int, level float64, seed uint64) RateCI {
	ci := RateCI{Level: level, Failures: k, Trials: n}
	if n == 0 {
		ci.Lo, ci.Hi = 0, 1
		return ci
	}
	p := float64(k) / float64(n)
	ci.Rate = p
	if b <= 0 {
		b = 1000
	}
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	rates := make([]float64, b)
	for i := range rates {
		rates[i] = float64(binomialSample(rng, n, p)) / float64(n)
	}
	sort.Float64s(rates)
	alpha := (1 - level) / 2
	ci.Lo = percentileSorted(rates, alpha*100)
	ci.Hi = percentileSorted(rates, (1-alpha)*100)
	return ci
}

// binomialSample draws from Binomial(n, p). For large n it uses a normal
// approximation (accurate enough for bootstrap resampling of rates); for
// small n it sums Bernoulli draws exactly.
func binomialSample(rng *rand.Rand, n uint64, p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	nf := float64(n)
	if nf*p > 30 && nf*(1-p) > 30 {
		x := math.Round(rng.NormFloat64()*math.Sqrt(nf*p*(1-p)) + nf*p)
		if x < 0 {
			return 0
		}
		if x > nf {
			return n
		}
		return uint64(x)
	}
	// Exact for the common sparse case: count geometric skips.
	var k uint64
	logq := math.Log1p(-p)
	var sum float64
	for {
		sum += math.Log(rng.Float64()) / logq
		if sum > nf {
			break
		}
		k++
		if k >= n {
			return n
		}
	}
	return k
}

// normalQuantile returns the inverse standard normal CDF via the
// Acklam/Beasley-Springer-Moro rational approximation (relative error
// < 1.15e-9, far more precision than any use in this package needs).
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p <= 0 {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// ErrTailFit is returned when a tail fit cannot be performed (too few
// distinct tail samples).
var ErrTailFit = errors.New("stats: insufficient tail data for fit")

// TailFit is a fitted exponential tail model log10 P(X > x) = A + B*x,
// obtained by least-squares regression of the empirical log-CCDF over the
// extreme quantiles of a sample. It is used to extrapolate rare-event
// probabilities (e.g. the probability that a CDA decoding round exceeds the
// 350 ns timeout threshold) beyond the reach of direct sampling.
type TailFit struct {
	A, B    float64 // log10 P(X > x) = A + B*x
	XMin    float64 // left edge of the fitted region
	NPoints int     // number of (x, log10 ccdf) points used
	R2      float64 // coefficient of determination of the fit
}

// FitTail fits an exponential tail to the upper (1-q0) fraction of the
// sample (q0 in (0,1), e.g. 0.99 fits the top 1%). The sample slice is not
// modified.
func FitTail(xs []float64, q0 float64) (TailFit, error) {
	if len(xs) < 100 || q0 <= 0 || q0 >= 1 {
		return TailFit{}, ErrTailFit
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	n := len(sorted)
	start := int(q0 * float64(n))
	if n-start < 10 {
		return TailFit{}, ErrTailFit
	}
	// Build (x, log10 ccdf) points at distinct x values in the tail.
	var px, py []float64
	for i := start; i < n; i++ {
		if i > start && sorted[i] == sorted[i-1] {
			continue // keep the first (largest ccdf) point per distinct x
		}
		ccdf := float64(n-i) / float64(n)
		px = append(px, sorted[i])
		py = append(py, math.Log10(ccdf))
	}
	if len(px) < 5 {
		return TailFit{}, ErrTailFit
	}
	a, b, r2 := linearRegression(px, py)
	if b >= 0 {
		return TailFit{}, ErrTailFit // tail must decay
	}
	return TailFit{A: a, B: b, XMin: sorted[start], NPoints: len(px), R2: r2}, nil
}

// Exceedance returns the extrapolated P(X > x) under the fitted tail model.
func (t TailFit) Exceedance(x float64) float64 {
	return math.Pow(10, t.A+t.B*x)
}

// linearRegression fits y = a + b*x by ordinary least squares and returns
// (a, b, R^2).
func linearRegression(xs, ys []float64) (a, b, r2 float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return a, b, 1
	}
	var ssRes float64
	for i := range xs {
		e := ys[i] - (a + b*xs[i])
		ssRes += e * e
	}
	r2 = 1 - ssRes/ssTot
	return a, b, r2
}
