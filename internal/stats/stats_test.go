package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Fatalf("mean = %v", m)
	}
	if v := Variance(xs); !almost(v, 32.0/7, 1e-12) {
		t.Fatalf("variance = %v", v)
	}
	if s := StdDev(xs); !almost(s, math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("stddev = %v", s)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate inputs mishandled")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := map[float64]float64{0: 1, 25: 2, 50: 3, 75: 4, 100: 5, 62.5: 3.5}
	for p, want := range cases {
		if got := Percentile(xs, p); !almost(got, want, 1e-12) {
			t.Errorf("P%.1f = %v, want %v", p, got, want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 5 || xs[4] != 4 {
		t.Fatal("Percentile mutated its input")
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.Count != 1000 || s.Min != 0 || s.Max != 999 {
		t.Fatalf("summary bounds wrong: %+v", s)
	}
	if !almost(s.Median, 499.5, 1e-9) || !almost(s.Mean, 499.5, 1e-9) {
		t.Fatalf("summary center wrong: %+v", s)
	}
	if s.P99 < 985 || s.P99 > 995 || s.P999 < 997 {
		t.Fatalf("summary tails wrong: %+v", s)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	h.Add(-5)
	h.Add(1000)
	if h.Under != 1 || h.Over != 1 || h.Total != 102 {
		t.Fatalf("histogram counters: %+v", h)
	}
	for i := range h.Bins {
		if h.Bins[i] != 10 {
			t.Fatalf("bin %d = %d, want 10", i, h.Bins[i])
		}
		if c := h.BinCenter(i); !almost(c, float64(i*10+5), 1e-12) {
			t.Fatalf("bin center %d = %v", i, c)
		}
	}
	ccdf := h.CCDF()
	if !almost(ccdf[0], 101.0/102, 1e-12) {
		t.Fatalf("ccdf[0] = %v", ccdf[0])
	}
	if !almost(ccdf[9], 11.0/102, 1e-12) {
		t.Fatalf("ccdf[9] = %v", ccdf[9])
	}
}

func TestHistogramEdgeValueGoesToLastBin(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(9.9999999999)
	if h.Bins[9] != 1 {
		t.Fatal("near-edge value lost")
	}
}

func TestWilsonInterval(t *testing.T) {
	ci := WilsonInterval(10, 1000, 0.95)
	if ci.Rate != 0.01 {
		t.Fatalf("rate = %v", ci.Rate)
	}
	if ci.Lo >= ci.Rate || ci.Hi <= ci.Rate {
		t.Fatalf("interval does not bracket the rate: %+v", ci)
	}
	// Wilson 95% for 10/1000 is roughly [0.0054, 0.018].
	if ci.Lo < 0.004 || ci.Lo > 0.007 || ci.Hi < 0.015 || ci.Hi > 0.021 {
		t.Fatalf("interval off: %+v", ci)
	}
	zero := WilsonInterval(0, 1000, 0.95)
	if zero.Lo != 0 || zero.Hi < 0.001 || zero.Hi > 0.01 {
		t.Fatalf("zero-failure interval off: %+v", zero)
	}
	empty := WilsonInterval(0, 0, 0.95)
	if empty.Lo != 0 || empty.Hi != 1 {
		t.Fatalf("empty interval: %+v", empty)
	}
}

func TestBootstrapRateCIBracketsRate(t *testing.T) {
	ci := BootstrapRateCI(50, 10000, 2000, 0.95, 7)
	if ci.Lo > 0.005 || ci.Hi < 0.005 {
		t.Fatalf("bootstrap CI does not bracket: %+v", ci)
	}
	// Roughly binomial: sd ~ sqrt(p(1-p)/n) ~ 7e-4; CI width ~ 4 sd.
	width := ci.Hi - ci.Lo
	if width < 1e-3 || width > 6e-3 {
		t.Fatalf("bootstrap CI width implausible: %v", width)
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	a := BootstrapRateCI(5, 1000, 500, 0.95, 42)
	b := BootstrapRateCI(5, 1000, 500, 0.95, 42)
	if a != b {
		t.Fatal("same seed produced different bootstrap CIs")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := map[float64]float64{
		0.5:    0,
		0.975:  1.959964,
		0.025:  -1.959964,
		0.9995: 3.290527,
	}
	for p, want := range cases {
		if got := normalQuantile(p); !almost(got, want, 1e-4) {
			t.Errorf("quantile(%v) = %v, want %v", p, got, want)
		}
	}
	if !math.IsInf(normalQuantile(0), -1) || !math.IsInf(normalQuantile(1), 1) {
		t.Fatal("extreme quantiles should be infinite")
	}
}

// TestFitTailRecoversExponential: samples from an exponential distribution
// have a log-linear CCDF; the fit must recover the decay rate and
// extrapolate within an order of magnitude.
func TestFitTailRecoversExponential(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	const lambda = 0.05
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = rng.ExpFloat64() / lambda
	}
	fit, err := FitTail(xs, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	// True slope: log10 P(X>x) = -lambda*x*log10(e).
	wantB := -lambda * math.Log10(math.E)
	if math.Abs(fit.B-wantB)/math.Abs(wantB) > 0.15 {
		t.Fatalf("fitted slope %v, want ~%v", fit.B, wantB)
	}
	// Extrapolate P(X > 300) = exp(-15) ~ 3e-7.
	want := math.Exp(-lambda * 300)
	got := fit.Exceedance(300)
	if got < want/10 || got > want*10 {
		t.Fatalf("extrapolated %v, want within 10x of %v", got, want)
	}
	if fit.R2 < 0.95 {
		t.Fatalf("poor fit: R2 = %v", fit.R2)
	}
}

func TestFitTailErrors(t *testing.T) {
	if _, err := FitTail([]float64{1, 2, 3}, 0.9); err == nil {
		t.Fatal("tiny sample should not fit")
	}
	increasing := make([]float64, 1000)
	for i := range increasing {
		increasing[i] = 5 // constant: no decaying tail
	}
	if _, err := FitTail(increasing, 0.9); err == nil {
		t.Fatal("constant sample should not fit")
	}
}

func TestLinearRegression(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	a, b, r2 := linearRegression(xs, ys)
	if !almost(a, 1, 1e-9) || !almost(b, 2, 1e-9) || !almost(r2, 1, 1e-9) {
		t.Fatalf("fit = (%v, %v, %v)", a, b, r2)
	}
}

func TestBinomialSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	// Small-n exact path.
	var sum float64
	const iters = 20000
	for i := 0; i < iters; i++ {
		sum += float64(binomialSample(rng, 100, 0.02))
	}
	if m := sum / iters; math.Abs(m-2) > 0.1 {
		t.Fatalf("small-n binomial mean %v, want 2", m)
	}
	// Large-n normal path.
	sum = 0
	for i := 0; i < iters; i++ {
		sum += float64(binomialSample(rng, 100000, 0.5))
	}
	if m := sum / iters; math.Abs(m-50000) > 50 {
		t.Fatalf("large-n binomial mean %v, want 50000", m)
	}
	if binomialSample(rng, 10, 0) != 0 || binomialSample(rng, 10, 1) != 10 {
		t.Fatal("degenerate p mishandled")
	}
}

func TestPercentileSortedPropertyMatchesPercentile(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		xs := make([]float64, 50+rng.IntN(100))
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		p := float64(pRaw) / 255 * 100
		a := Percentile(xs, p)
		sorted := append([]float64(nil), xs...)
		sortFloats(sorted)
		b := PercentileSorted(sorted, p)
		return almost(a, b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// TestSingleSampleSummary pins the n=1 edge: the unbiased variance is
// undefined at one sample, so StdDev reports the conventional 0 and every
// order statistic collapses to the sample itself.
func TestSingleSampleSummary(t *testing.T) {
	if got := StdDev([]float64{42}); got != 0 {
		t.Fatalf("StdDev(n=1) = %g, want 0", got)
	}
	s := Summarize([]float64{42})
	if s.Count != 1 || s.Mean != 42 || s.StdDev != 0 ||
		s.Min != 42 || s.Median != 42 || s.P99 != 42 || s.P999 != 42 || s.Max != 42 {
		t.Fatalf("Summarize(n=1) = %+v", s)
	}
}

// TestPercentileIgnoresNaN is the regression test for the NaN-poisoning
// bug: sort.Float64s orders NaN before every real number, so a single NaN
// sample used to surface as the minimum and poison every low percentile.
func TestPercentileIgnoresNaN(t *testing.T) {
	nan := math.NaN()
	for _, tc := range []struct {
		name string
		xs   []float64
		p    float64
		want float64
	}{
		{"nan-min", []float64{nan, 1, 2, 3}, 0, 1},
		{"nan-median", []float64{nan, nan, 1, 2, 3}, 50, 2},
		{"nan-max", []float64{3, nan, 1, 2}, 100, 3},
		{"clean", []float64{1, 2, 3}, 50, 2},
	} {
		if got := Percentile(tc.xs, tc.p); got != tc.want {
			t.Errorf("%s: Percentile(%v, %v) = %v, want %v", tc.name, tc.xs, tc.p, got, tc.want)
		}
	}
	if got := Percentile([]float64{nan, nan}, 50); !math.IsNaN(got) {
		t.Errorf("all-NaN sample: got %v, want NaN", got)
	}
	sorted := []float64{nan, nan, 1, 2, 3} // already in sort.Float64s order
	if got := PercentileSorted(sorted, 0); got != 1 {
		t.Errorf("PercentileSorted skipping NaN prefix: got %v, want 1", got)
	}
	if got := PercentileSorted([]float64{nan}, 50); !math.IsNaN(got) {
		t.Errorf("PercentileSorted all-NaN: got %v, want NaN", got)
	}
}

// TestSummarizeDropsNaN: one unmeasurable sample must not poison the run's
// summary; Count reports what was actually summarized.
func TestSummarizeDropsNaN(t *testing.T) {
	s := Summarize([]float64{math.NaN(), 1, 3})
	if s.Count != 2 {
		t.Fatalf("Count = %d, want 2", s.Count)
	}
	if s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Fatalf("Summarize with NaN = %+v", s)
	}
	if math.IsNaN(s.StdDev) {
		t.Fatal("StdDev poisoned by NaN")
	}
	if got := Summarize([]float64{math.NaN()}); got != (Summary{}) {
		t.Fatalf("all-NaN Summarize = %+v, want zero Summary", got)
	}
}

// TestHistogramAddIgnoresNaN: NaN fails both range comparisons and int(NaN)
// is platform-defined — before the guard this was an index panic.
func TestHistogramAddIgnoresNaN(t *testing.T) {
	h := NewHistogram(0, 10, 4)
	h.Add(math.NaN())
	h.Add(5)
	if h.Total != 1 {
		t.Fatalf("Total = %d, want 1 (NaN ignored)", h.Total)
	}
}

// TestHistogramCCDFIncludesUnder pins the CCDF convention: CCDF[i] is
// P(X >= left edge of bin i) over all samples, so Under samples dilute the
// probabilities (they sit below every edge) and CCDF[0] < 1 when Under > 0,
// while Over samples keep every entry positive.
func TestHistogramCCDFIncludesUnder(t *testing.T) {
	h := NewHistogram(0, 4, 4) // unit bins
	for _, x := range []float64{-1, -2, 0.5, 1.5, 2.5, 3.5, 9} {
		h.Add(x)
	}
	ccdf := h.CCDF()
	want := []float64{5.0 / 7, 4.0 / 7, 3.0 / 7, 2.0 / 7}
	for i := range want {
		if math.Abs(ccdf[i]-want[i]) > 1e-12 {
			t.Fatalf("CCDF[%d] = %v, want %v (all: %v)", i, ccdf[i], want[i], ccdf)
		}
	}
	empty := NewHistogram(0, 1, 2).CCDF()
	for i, v := range empty {
		if v != 0 {
			t.Fatalf("empty histogram CCDF[%d] = %v, want 0", i, v)
		}
	}
}
